// Ring under burst churn: the sorted-ring overlay (a simplified Re-Chord
// base ring) wrapped by the departure framework. A third of the ring leaves
// at once; the remaining nodes re-close the ring among themselves.
package main

import (
	"fmt"
	"log"

	"fdp"
)

func main() {
	fmt.Println("Sorted ring under burst churn (framework P′ around SortRing)")
	for _, n := range []int{9, 15, 21} {
		report, err := fdp.SimulateOverlay(fdp.OverlayConfig{
			N:             n,
			Overlay:       fdp.SortRing,
			LeaveFraction: 0.33,
			Seed:          int64(n),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  n=%2d: converged=%v ring-closed=%v exits=%d steps=%d messages=%d\n",
			n, report.Converged, report.TargetReached, report.Exits,
			report.Steps, report.MessagesSent)
		if !report.Converged || !report.TargetReached {
			log.Fatal("ringchurn example failed")
		}
	}
	fmt.Println("OK: the survivors re-form the sorted ring after every burst.")
}
