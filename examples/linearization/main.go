// Linearization under churn: the Section 4 framework P′ wraps the sorted
// list maintenance protocol, so the overlay keeps self-stabilizing to the
// sorted list over the *staying* nodes while leavers are safely excluded —
// even when the initial state is corrupted.
package main

import (
	"fmt"
	"log"

	"fdp"
)

func main() {
	fmt.Println("Sorted-list maintenance with safe departures (framework P′)")
	for _, corrupt := range []float64{0, 0.5} {
		report, err := fdp.SimulateOverlay(fdp.OverlayConfig{
			N:              20,
			Overlay:        fdp.Linearize,
			LeaveFraction:  0.4,
			Seed:           7,
			CorruptAnchors: corrupt,
			JunkPending:    int(corrupt * 10),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n  corruption=%.1f\n", corrupt)
		fmt.Printf("    converged:      %v\n", report.Converged)
		fmt.Printf("    target reached: %v (staying nodes form the sorted list)\n", report.TargetReached)
		fmt.Printf("    leavers exited: %d\n", report.Exits)
		fmt.Printf("    steps:          %d\n", report.Steps)
		fmt.Printf("    verify msgs:    %d (preprocess mode checks)\n",
			report.MessagesByLabel["pverify"])
		if !report.Converged {
			log.Fatal("linearization example failed")
		}
	}
	fmt.Println("\nOK: P′ solved the FDP and the list protocol kept working for the staying nodes.")
}
