// Finite Sleep Problem: when exit is replaced by sleep, no oracle is needed
// at all. Leaving nodes go to sleep once their references are handed off;
// any late message wakes them briefly, so nothing is ever stranded, and
// eventually every leaver is hibernating (asleep, empty channel, and
// unreachable from anything awake).
package main

import (
	"fmt"
	"log"

	"fdp"
)

func main() {
	fmt.Println("Finite Sleep Problem — no oracle required")
	for _, corrupt := range []float64{0, 0.4, 0.8} {
		report, err := fdp.Simulate(fdp.Config{
			N:              18,
			Topology:       fdp.Random,
			LeaveFraction:  0.5,
			Variant:        fdp.FSP, // sleep instead of exit; Oracle ignored
			CorruptBeliefs: corrupt,
			CorruptAnchors: corrupt,
			JunkMessages:   int(corrupt * 20),
			Seed:           11,
			CheckSafety:    true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  corruption=%.1f: converged=%v exits=%d (must be 0) steps=%d\n",
			corrupt, report.Converged, report.Exits, report.Steps)
		if !report.Converged || report.Exits != 0 || report.SafetyViolated {
			log.Fatal("fsp example failed")
		}
	}
	fmt.Println("OK: all leavers hibernate; the impossibility of oracle-free FDP does not apply to FSP.")
}
