// Quickstart: build a 16-node overlay in which half the nodes want to
// leave, run the paper's self-stabilizing departure protocol with the
// SINGLE oracle, and confirm every leaver exited without disconnecting the
// staying nodes.
package main

import (
	"fmt"
	"log"

	"fdp"
)

func main() {
	report, err := fdp.Simulate(fdp.Config{
		N:             16,
		Topology:      fdp.Random, // any weakly connected start works
		LeaveFraction: 0.5,        // 8 of 16 processes want out
		Oracle:        fdp.OracleSingle,
		Seed:          42,   // runs are fully reproducible
		CheckSafety:   true, // verify Lemma 2 throughout the run
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Finite Departure Problem — quickstart")
	fmt.Printf("  converged:       %v (reached a legitimate state)\n", report.Converged)
	fmt.Printf("  leavers exited:  %d\n", report.Exits)
	fmt.Printf("  atomic steps:    %d\n", report.Steps)
	fmt.Printf("  messages sent:   %d\n", report.MessagesSent)
	fmt.Printf("  safety violated: %v (never, with SINGLE)\n", report.SafetyViolated)

	if !report.Converged || report.SafetyViolated {
		log.Fatal("quickstart failed")
	}
	fmt.Println("OK: all leaving nodes are gone, the staying overlay is intact.")
}
