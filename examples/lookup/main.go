// Lookup availability under churn: a DHT-style greedy lookup layer runs on
// top of the maintained sorted list while a third of the nodes leave. The
// departure framework keeps the staying overlay intact, so once departures
// finish, every lookup among staying keys succeeds again.
package main

import (
	"fmt"
	"log"

	"fdp/internal/app"
	"fdp/internal/framework"
	"fdp/internal/oracle"
	"fdp/internal/overlay"
	"fdp/internal/sim"
)

func main() {
	const n = 16
	sc := framework.Build(framework.Config{
		N: n, LeaveFraction: 0.3, Oracle: oracle.Single{}, Seed: 4, ExtraEdges: n / 2,
		MakeOverlay: func(keys overlay.Keys) overlay.Protocol { return app.NewRoutedList(keys) },
	})
	sched := sim.NewRandomScheduler(4, 512)
	staying := sc.StayingNodes()

	launch := func() int {
		for i, from := range staying {
			target := staying[(i+len(staying)/2)%len(staying)]
			sc.World.Enqueue(from, sim.Message{
				Label:   app.LabelRoute,
				Refs:    []sim.RefInfo{{Ref: from, Mode: sim.Staying}},
				Payload: app.RoutePayload{TargetKey: sc.Keys[target], TTL: 4 * n},
			})
		}
		return len(staying)
	}
	totals := func() (delivered, failed int) {
		for _, r := range staying {
			st := sc.Wrappers[r].Overlay().(*app.Routed).Stats()
			delivered += st.Delivered
			failed += st.Failed
		}
		return
	}
	run := func(steps int) {
		for i := 0; i < steps; i++ {
			a, ok := sched.Next(sc.World)
			if !ok {
				return
			}
			sc.World.Execute(a)
		}
	}

	fmt.Println("Greedy lookups over the wrapped sorted list, 30% of nodes leaving")

	// Mid-churn lookups.
	run(5 * n)
	launched := launch()
	for !(sc.World.Legitimate(sim.FDP) && sc.InTarget()) {
		run(n)
	}
	d1, f1 := totals()
	fmt.Printf("  during departures: %d launched, %d delivered, %d failed, %d lost\n",
		launched, d1, f1, launched-d1-f1)

	// Post-convergence lookups: full availability.
	launched2 := launch()
	run(400 * n)
	d2, f2 := totals()
	d2, f2 = d2-d1, f2-f1
	fmt.Printf("  after convergence: %d launched, %d delivered, %d failed\n", launched2, d2, f2)
	if d2 != launched2 {
		log.Fatal("post-convergence lookups must all succeed")
	}
	fmt.Println("OK: the application regains full lookup availability after safe departures.")
}
