// Universality (Theorem 1): morph overlay topologies into one another using
// only the four safe primitives — Introduction, Delegation, Fusion,
// Reversal — with weak connectivity verified after every single step.
package main

import (
	"fmt"
	"log"

	"fdp"
)

// Topology constructors over node indices 0..n-1.
func line(n int) fdp.EdgeList {
	var e fdp.EdgeList
	for i := 0; i+1 < n; i++ {
		e = append(e, [2]int{i, i + 1}, [2]int{i + 1, i})
	}
	return e
}

func ring(n int) fdp.EdgeList {
	e := line(n)
	return append(e, [2]int{n - 1, 0}, [2]int{0, n - 1})
}

func star(n int) fdp.EdgeList {
	var e fdp.EdgeList
	for i := 1; i < n; i++ {
		e = append(e, [2]int{0, i}, [2]int{i, 0})
	}
	return e
}

func clique(n int) fdp.EdgeList {
	var e fdp.EdgeList
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				e = append(e, [2]int{i, j})
			}
		}
	}
	return e
}

func main() {
	const n = 10
	shapes := []struct {
		name  string
		edges fdp.EdgeList
	}{
		{"line", line(n)},
		{"ring", ring(n)},
		{"star", star(n)},
		{"clique", clique(n)},
	}
	fmt.Printf("Theorem 1 in action: morphing %d-node topologies (connectivity verified per op)\n\n", n)
	fmt.Printf("%-16s %14s %8s %8s %8s %8s\n",
		"morph", "clique rounds", "intro", "deleg", "fuse", "rev")
	for _, from := range shapes {
		for _, to := range shapes {
			if from.name == to.name {
				continue
			}
			rep, err := fdp.Morph(n, from.edges, to.edges)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-16s %14d %8d %8d %8d %8d\n",
				from.name+"->"+to.name, rep.CliqueRounds,
				rep.Introductions, rep.Delegations, rep.Fusions, rep.Reversals)
		}
	}
	fmt.Println("\nOK: every morph reached its target without ever losing weak connectivity.")
}
