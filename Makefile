GO ?= go

.PHONY: all ci vet build test race bench

all: vet build test race

# ci is the exact sequence .github/workflows/ci.yml runs.
ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages with real concurrency (goroutine-per-process runtime,
# snapshot locking, the differential harness driving both engines) and the
# model core they exercise run under the race detector.
race:
	$(GO) test -race ./internal/sim/... ./internal/parallel/... ./internal/core/... ./internal/diffval/... ./internal/faults/...

bench:
	$(GO) test -bench . -benchmem -run XXX .
