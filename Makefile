GO ?= go

FDPLINT := bin/fdplint

.PHONY: all ci vet lint lint-unit build test race bench bench-artifacts bench-baseline bench-compare replay-golden fuzz-smoke fuzz-hunt node-churn

all: vet lint build test race replay-golden fuzz-smoke

# ci is the exact sequence .github/workflows/ci.yml runs.
ci: vet lint lint-unit build test race replay-golden fuzz-smoke

vet:
	$(GO) vet ./...

# lint runs the full fdp analysis suite (see DESIGN.md §9 and §14:
# refopacity, detiter, guardpurity, lockorder, obslock, primdecomp,
# atomicdiscipline, lockgraph) in whole-program mode: one process loads the
# module in dependency order, threads cross-package facts through a shared
# store, and checks global properties — the call-graph mover fixpoint, the
# inferred lock-acquisition graph — that per-unit drivers cannot see.
lint: $(FDPLINT)
	$(FDPLINT) ./...

# lint-unit is the unitchecker smoke: the same binary driven by go vet, one
# compilation unit per invocation with facts round-tripped through .vetx
# files. Keeps the vet integration honest without replacing whole-program
# mode.
lint-unit: $(FDPLINT)
	$(GO) vet -vettool=$(FDPLINT) ./...

$(FDPLINT): FORCE
	$(GO) build -o $(FDPLINT) ./cmd/fdplint

FORCE:

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages with real concurrency (goroutine-per-process runtime,
# snapshot locking, the observability registry, the differential harness
# driving both engines) and the model core they exercise run under the race
# detector.
race:
	$(GO) test -race ./internal/sim/... ./internal/parallel/... ./internal/core/... ./internal/diffval/... ./internal/faults/... ./internal/obs/... ./internal/trace/... ./internal/fuzz/... ./internal/transport/... ./internal/node/...

# replay-golden holds the committed journals in cmd/fdpreplay/testdata to
# the replay determinism contract: each must re-drive byte-identically.
# Regenerate deliberately with: go test ./cmd/fdpreplay -update
replay-golden:
	$(GO) test ./cmd/fdpreplay -run TestGoldenJournalsReplayByteIdentically -count=1

# fuzz-smoke replays every committed counterexample fixture byte-identically
# (internal/fuzz/testdata), runs the mutation harness end to end (the
# injected MUTANT-SINGLE bug must be found, shrunk, journaled and replayed),
# then takes a short fresh-fuzz pass over a fixed seed. Single shard,
# deterministic, budgeted well under 30s on one core.
fuzz-smoke:
	$(GO) test ./internal/fuzz -count=1
	$(GO) run ./cmd/fdpfuzz -seed 11 -runs 20 -timeout 5s

# fuzz-hunt is the scheduled long hunt (.github/workflows/fuzz.yml): a
# time-bounded randomized sweep with the seed drawn from the calendar date,
# so each nightly run walks a fresh case sequence while staying exactly
# reproducible from the log line. Shrunk failures land in fuzz-artifacts/
# as replayable journal fixtures for the workflow to upload.
FUZZ_DURATION ?= 10m
fuzz-hunt:
	$(GO) run ./cmd/fdpfuzz -seed $$(date +%Y%m%d) -duration $(FUZZ_DURATION) -out fuzz-artifacts

# node-churn runs a real multi-process churn: NODES fdpnode processes on
# localhost TCP, each owning a slice of one shared scenario, then merges the
# per-node journals and summaries into the run verdict (causal join, every
# leaver exited, Lemma 2 on the survivors). Small n — the processes share
# whatever cores the host has.
NODES ?= 3
NODE_N ?= 12
NODE_SEED ?= 42
NODE_PORT ?= 7450
# NODE_MPORT is the /metrics port base: node i serves on NODE_MPORT+i.
NODE_MPORT ?= 9450
NODE_OUT ?= node-out
# Every node runs with -serve (live per-node /metrics + pprof), -hold (the
# endpoint outlives the run until the TERM below releases it) and an armed
# -stall watchdog. While the fleet runs, fdpnode -scrape aggregates the
# cluster's liveness series and the target asserts each node exposes its own
# fdp_progress_* slice (distinct node labels) plus transport counters; then
# it waits for every summary, winds the fleet down, and merges the verdict.
node-churn:
	$(GO) build -o bin/fdpnode ./cmd/fdpnode
	rm -rf $(NODE_OUT) && mkdir -p $(NODE_OUT)
	@set -e; pids=""; addrs=""; i=0; \
	while [ $$i -lt $(NODES) ]; do \
	  peers=""; j=0; \
	  while [ $$j -lt $(NODES) ]; do \
	    if [ $$j -ne $$i ]; then \
	      [ -n "$$peers" ] && peers="$$peers,"; \
	      peers="$$peers$$j=127.0.0.1:$$(($(NODE_PORT)+$$j))"; \
	    fi; j=$$((j+1)); \
	  done; \
	  [ -n "$$addrs" ] && addrs="$$addrs,"; \
	  addrs="$$addrs 127.0.0.1:$$(($(NODE_MPORT)+$$i))"; \
	  bin/fdpnode -id $$i -nodes $(NODES) -listen 127.0.0.1:$$(($(NODE_PORT)+$$i)) \
	    -peers "$$peers" -n $(NODE_N) -topology line -leave 0.4 -pattern random \
	    -seed $(NODE_SEED) -out $(NODE_OUT) -timeout 60s \
	    -serve 127.0.0.1:$$(($(NODE_MPORT)+$$i)) -hold 60s -stall 10s & \
	  pids="$$pids $$!"; i=$$((i+1)); \
	done; \
	tries=0; \
	until bin/fdpnode -scrape "$$addrs" > $(NODE_OUT)/scrape.txt 2>/dev/null; do \
	  tries=$$((tries+1)); \
	  [ $$tries -lt 150 ] || { echo "node-churn: scrape never succeeded"; exit 1; }; \
	  sleep 0.2; \
	done; \
	i=0; while [ $$i -lt $(NODES) ]; do \
	  grep -q "fdp_progress_leavers_remaining{node=\"$$i\"}" $(NODE_OUT)/scrape.txt \
	    || { echo "node-churn: no fdp_progress series for node $$i"; cat $(NODE_OUT)/scrape.txt; exit 1; }; \
	  i=$$((i+1)); \
	done; \
	grep -q "fdp_transport_frames_total" $(NODE_OUT)/scrape.txt \
	  || { echo "node-churn: no transport series in scrape"; cat $(NODE_OUT)/scrape.txt; exit 1; }; \
	i=0; while [ $$i -lt $(NODES) ]; do \
	  tries=0; \
	  while [ ! -f $(NODE_OUT)/summary-$$i.json ]; do \
	    tries=$$((tries+1)); \
	    [ $$tries -lt 400 ] || { echo "node-churn: node $$i never wrote its summary"; exit 1; }; \
	    sleep 0.2; \
	  done; i=$$((i+1)); \
	done; \
	kill -TERM $$pids; \
	rc=0; for p in $$pids; do wait $$p || rc=1; done; [ $$rc -eq 0 ]
	bin/fdpnode -merge $(NODE_OUT)

bench:
	$(GO) test -bench . -benchmem -run XXX .

# bench-artifacts emits the machine-readable BENCH_<engine>.json files (the
# per-size time-to-exit p50/p99 series of both engines) that the CI bench
# job uploads.
bench-artifacts:
	$(GO) run ./cmd/fdpbench -quick -bench -bench-out bench-out

# bench-baseline regenerates the committed seed baseline in bench/ that
# reviewers diff bench-artifacts output against. The extra large-n sizes
# run only on the concurrent engine (the sequential series is capped at
# its O(n²) feasibility bound).
bench-baseline:
	$(GO) run ./cmd/fdpbench -quick -bench -sizes 8,16,32,64,1000,10000,100000 -bench-out bench

# bench-compare diffs freshly generated bench-out/ artifacts against the
# committed bench/ baseline and fails on a >2x p99 regression at any size
# both series cover. Run bench-artifacts first (CI does).
bench-compare:
	$(GO) run ./cmd/fdpbenchcmp -baseline bench -fresh bench-out -threshold 2.0
