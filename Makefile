GO ?= go

.PHONY: all vet build test race bench

all: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The simulator and the concurrent runtime are the packages with real
# concurrency (goroutine-per-process runtime, snapshot locking); run them
# under the race detector.
race:
	$(GO) test -race ./internal/sim/... ./internal/parallel/...

bench:
	$(GO) test -bench . -benchmem -run XXX .
