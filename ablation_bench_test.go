package fdp

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// scheduler family (does stabilization speed depend on scheduling?), the
// fairness aging bound, the oracle choice, and legitimacy-check cadence.

import (
	"fmt"
	"testing"

	"fdp/internal/churn"
	"fdp/internal/oracle"
	"fdp/internal/sim"
)

// BenchmarkAblationScheduler compares steps-to-legitimacy across the four
// fair schedulers on the same scenario.
func BenchmarkAblationScheduler(b *testing.B) {
	mk := map[string]func(seed int64) sim.Scheduler{
		"random":      func(seed int64) sim.Scheduler { return sim.NewRandomScheduler(seed, 0) },
		"rounds":      func(seed int64) sim.Scheduler { return sim.NewRoundScheduler() },
		"adversarial": func(seed int64) sim.Scheduler { return sim.NewAdversarialScheduler(seed, 0) },
		"fifo":        func(seed int64) sim.Scheduler { return sim.NewFIFOScheduler() },
	}
	for name, factory := range mk {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := churn.Build(churn.Config{
					N: 20, Topology: churn.TopoRandom, LeaveFraction: 0.5,
					Pattern: churn.LeaveRandom,
					Corrupt: churn.Corruption{FlipBeliefs: 0.4, RandomAnchors: 0.4, JunkMessages: 10},
					Oracle:  oracle.Single{}, Seed: int64(i),
				})
				r := sim.Run(s.World, factory(int64(i)), sim.RunOptions{
					Variant: sim.FDP, MaxSteps: 4_000_000,
				})
				if !r.Converged {
					b.Fatalf("%s did not converge", name)
				}
				b.ReportMetric(float64(r.Steps), "steps/run")
			}
		})
	}
}

// BenchmarkAblationAgingBound sweeps the random scheduler's fairness aging
// bound: small bounds approach round-robin, large bounds allow long
// starvation within fairness.
func BenchmarkAblationAgingBound(b *testing.B) {
	for _, bound := range []int{32, 128, 512, 2048} {
		b.Run(fmt.Sprintf("bound=%d", bound), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := churn.Build(churn.Config{
					N: 20, Topology: churn.TopoRandom, LeaveFraction: 0.5,
					Pattern: churn.LeaveRandom, Oracle: oracle.Single{}, Seed: int64(i),
				})
				r := sim.Run(s.World, sim.NewRandomScheduler(int64(i), bound), sim.RunOptions{
					Variant: sim.FDP, MaxSteps: 4_000_000,
				})
				if !r.Converged {
					b.Fatal("no convergence")
				}
				b.ReportMetric(float64(r.Steps), "steps/run")
			}
		})
	}
}

// BenchmarkAblationOracle compares time-to-exit under the safe oracles:
// SINGLE (the paper's choice) vs the ideal ExitSafe vs the stale timeout
// approximation.
func BenchmarkAblationOracle(b *testing.B) {
	cases := map[string]func() sim.Oracle{
		"SINGLE":   func() sim.Oracle { return oracle.Single{} },
		"EXITSAFE": func() sim.Oracle { return oracle.ExitSafe{} },
		"TIMEOUT":  func() sim.Oracle { return oracle.NewTimeoutSingle(5) },
	}
	for name, mk := range cases {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := churn.Build(churn.Config{
					N: 20, Topology: churn.TopoRandom, LeaveFraction: 0.5,
					Pattern: churn.LeaveRandom, Oracle: mk(), Seed: int64(i),
				})
				r := sim.Run(s.World, sim.NewRandomScheduler(int64(i), 0), sim.RunOptions{
					Variant: sim.FDP, MaxSteps: 4_000_000,
				})
				if !r.Converged {
					b.Fatalf("%s did not converge", name)
				}
				b.ReportMetric(float64(r.Steps), "steps/run")
			}
		})
	}
}

// BenchmarkAblationCheckCadence measures the overhead of legitimacy-check
// frequency (the experimenter's instrument, not the protocol).
func BenchmarkAblationCheckCadence(b *testing.B) {
	for _, every := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("every=%d", every), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := churn.Build(churn.Config{
					N: 20, Topology: churn.TopoRandom, LeaveFraction: 0.5,
					Pattern: churn.LeaveRandom, Oracle: oracle.Single{}, Seed: int64(i),
				})
				r := sim.Run(s.World, sim.NewRandomScheduler(int64(i), 0), sim.RunOptions{
					Variant: sim.FDP, MaxSteps: 4_000_000, CheckEvery: every,
				})
				if !r.Converged {
					b.Fatal("no convergence")
				}
			}
		})
	}
}
