package fdp

import (
	"bytes"
	"testing"
	"time"

	"fdp/internal/trace"
)

// TestSimulateJournal exercises the public Journal hook on the sequential
// engine: the emitted journal must be self-describing (header mirrors the
// Config) and satisfy the replay determinism contract.
func TestSimulateJournal(t *testing.T) {
	var buf bytes.Buffer
	rep, err := Simulate(Config{
		N: 20, Topology: Line, LeaveFraction: 0.3, Seed: 4,
		Scheduler: SchedFIFO, CheckSafety: true, Journal: &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatal("run did not converge")
	}
	hdr, recs, err := trace.ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Engine != trace.EngineSim {
		t.Fatalf("engine = %q, want %q", hdr.Engine, trace.EngineSim)
	}
	if hdr.Scenario.N != 20 || hdr.Scenario.Topology != "line" ||
		hdr.Scenario.Scheduler != "fifo" || hdr.Scenario.Seed != 4 {
		t.Fatalf("header does not mirror the config: %+v", hdr.Scenario)
	}
	if len(recs) == 0 {
		t.Fatal("journal is empty")
	}
	div, err := trace.VerifyReplay(hdr, recs)
	if err != nil {
		t.Fatal(err)
	}
	if div != nil {
		t.Fatalf("replay diverged: %s", div)
	}
}

// TestSimulateParallelJournal exercises the Journal hook on the concurrent
// runtime: diffable causal records with the runtime engine tag.
func TestSimulateParallelJournal(t *testing.T) {
	var buf bytes.Buffer
	rep, err := SimulateParallel(Config{
		N: 12, LeaveFraction: 0.4, Seed: 8, Journal: &buf,
	}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatal("parallel run did not converge")
	}
	hdr, recs, err := trace.ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Engine != trace.EngineRuntime {
		t.Fatalf("engine = %q, want %q", hdr.Engine, trace.EngineRuntime)
	}
	if len(recs) == 0 {
		t.Fatal("journal is empty")
	}
	if div := trace.Diff(recs, recs); div != nil {
		t.Fatalf("self-diff must be clean: %s", div)
	}
	if _, err := trace.Replay(hdr, recs); err == nil {
		t.Fatal("runtime journals must refuse replay")
	}
}
