package fdp

// The benchmark harness: one benchmark per experiment of the reproduction
// suite (E1–E11, see DESIGN.md §5 and EXPERIMENTS.md), plus micro-benchmarks
// of the moving parts (protocol steps, primitive applications, snapshot
// predicates). Absolute numbers depend on the host; the *shapes* (who wins,
// how costs scale with n) are what EXPERIMENTS.md records.
//
// Run: go test -bench=. -benchmem

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"fdp/internal/churn"
	"fdp/internal/core"
	"fdp/internal/experiments"
	"fdp/internal/graph"
	"fdp/internal/oracle"
	"fdp/internal/primitives"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

func benchScale() experiments.Scale {
	return experiments.Scale{Sizes: []int{8, 16}, Trials: 2, MaxSteps: 2_000_000}
}

func requirePass(b *testing.B, r experiments.Result) {
	b.Helper()
	if !r.Pass {
		b.Fatalf("%s failed during benchmarking", r.ID)
	}
}

// --- One benchmark per experiment (tables E1..E11) ----------------------

func BenchmarkE1PrimitivesSafety(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.E1PrimitivesSafety(benchScale()))
	}
}

func BenchmarkE2Universality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.E2Universality(benchScale()))
	}
}

func BenchmarkE3Necessity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.E3Necessity())
	}
}

func BenchmarkE4Safety(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.E4Safety(benchScale()))
	}
}

func BenchmarkE5Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.E5Convergence(benchScale()))
	}
}

func BenchmarkE6Potential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.E6Potential(benchScale()))
	}
}

func BenchmarkE7Embedding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.E7Embedding(benchScale()))
	}
}

func BenchmarkE8FSP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.E8FSP(benchScale()))
	}
}

func BenchmarkE9Baseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.E9Baseline(benchScale()))
	}
}

func BenchmarkE10Oracles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.E10Oracles(benchScale()))
	}
}

func BenchmarkE11Parallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.E11Parallel(
			experiments.Scale{Sizes: []int{16}, Trials: 1, MaxSteps: 1_000_000}))
	}
}

func BenchmarkE12Routing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.E12Routing(benchScale()))
	}
}

func BenchmarkE13Faults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.E13Faults(benchScale()))
	}
}

func BenchmarkE14ModelCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.E14ModelCheck())
	}
}

func BenchmarkE15SkipHops(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.E15SkipHops(benchScale()))
	}
}

func BenchmarkE16Differential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requirePass(b, experiments.E16Differential(
			experiments.Scale{Sizes: []int{10}, Trials: 2, MaxSteps: 1_000_000}))
	}
}

// --- Scaling benches: full convergence runs per system size -------------

func BenchmarkConvergenceByN(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := churn.Build(churn.Config{
					N: n, Topology: churn.TopoRandom, LeaveFraction: 0.5,
					Pattern: churn.LeaveRandom, Oracle: oracle.Single{},
					Seed: int64(i),
				})
				r := sim.Run(s.World, sim.NewRandomScheduler(int64(i), 512), sim.RunOptions{
					Variant: sim.FDP, MaxSteps: 10_000_000,
				})
				if !r.Converged {
					b.Fatal("no convergence")
				}
				b.ReportMetric(float64(r.Steps), "steps/run")
				b.ReportMetric(float64(r.Stats.Sent), "msgs/run")
			}
		})
	}
}

func BenchmarkConvergenceByLeaveFraction(b *testing.B) {
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		b.Run(fmt.Sprintf("leave=%.2f", frac), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := churn.Build(churn.Config{
					N: 24, Topology: churn.TopoRandom, LeaveFraction: frac,
					Pattern: churn.LeaveRandom, Oracle: oracle.Single{}, Seed: int64(i),
				})
				r := sim.Run(s.World, sim.NewRandomScheduler(int64(i), 512), sim.RunOptions{
					Variant: sim.FDP, MaxSteps: 10_000_000,
				})
				if !r.Converged {
					b.Fatal("no convergence")
				}
			}
		})
	}
}

// --- Micro-benchmarks ----------------------------------------------------

// BenchmarkSimStep measures raw simulator throughput: atomic actions per
// second on a steady-state system with no leavers.
func BenchmarkSimStep(b *testing.B) {
	s := churn.Build(churn.Config{
		N: 32, Topology: churn.TopoRing, LeaveFraction: 0,
		Oracle: oracle.Single{}, Seed: 1,
	})
	sched := sim.NewRandomScheduler(1, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, ok := sched.Next(s.World)
		if !ok {
			b.Fatal("quiescent")
		}
		s.World.Execute(a)
	}
}

// BenchmarkPG measures from-scratch process-graph construction — what every
// global predicate and oracle evaluation used to pay per call before the
// graph became incrementally maintained (PG() itself is now O(1) amortized).
func BenchmarkPG(b *testing.B) {
	s := churn.Build(churn.Config{
		N: 64, Topology: churn.TopoRandom, LeaveFraction: 0.5,
		Pattern: churn.LeaveRandom, Oracle: oracle.Single{}, Seed: 2,
		Corrupt: churn.Corruption{JunkMessages: 64},
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.World.RebuildPG().NumNodes() == 0 {
			b.Fatal("empty PG")
		}
	}
}

// BenchmarkPhi measures the potential-function evaluation.
func BenchmarkPhi(b *testing.B) {
	s := churn.Build(churn.Config{
		N: 64, Topology: churn.TopoRandom, LeaveFraction: 0.5,
		Pattern: churn.LeaveRandom, Oracle: oracle.Single{}, Seed: 3,
		Corrupt: churn.Corruption{FlipBeliefs: 0.5, JunkMessages: 64},
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.Phi(s.World)
	}
}

// BenchmarkOracleSingle measures one SINGLE evaluation on the incrementally
// maintained process graph, per system size.
func BenchmarkOracleSingle(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := churn.Build(churn.Config{
				N: n, Topology: churn.TopoRandom, LeaveFraction: 0.5,
				Pattern: churn.LeaveRandom, Oracle: oracle.Single{}, Seed: 4,
			})
			u := s.LeavingNodes()[0]
			o := oracle.Single{}
			s.World.PG() // seed the incremental graph outside the timed loop
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o.Evaluate(s.World, u)
			}
		})
	}
}

// BenchmarkOracleSingleRebuild is the from-scratch baseline for
// BenchmarkOracleSingle: it reconstructs the process graph on every
// evaluation, the way the oracle worked before incremental maintenance.
func BenchmarkOracleSingleRebuild(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := churn.Build(churn.Config{
				N: n, Topology: churn.TopoRandom, LeaveFraction: 0.5,
				Pattern: churn.LeaveRandom, Oracle: oracle.Single{}, Seed: 4,
			})
			u := s.LeavingNodes()[0]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pg := s.World.RebuildPG()
				if !pg.HasNode(u) {
					b.Fatal("leaver missing from PG")
				}
				_ = pg.Degree(u)
			}
		})
	}
}

// BenchmarkWorldStep measures full scheduler-pick + Execute throughput per
// system size, with the incremental graph live (as during an oracle-driven
// run): every step pays its O(Δ) maintenance cost.
func BenchmarkWorldStep(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := churn.Build(churn.Config{
				N: n, Topology: churn.TopoRandom, LeaveFraction: 0.5,
				Pattern: churn.LeaveRandom, Oracle: oracle.Single{}, Seed: 7,
			})
			sched := sim.NewRandomScheduler(7, 512)
			s.World.PG() // seed the incremental graph outside the timed loop
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a, ok := sched.Next(s.World)
				if !ok {
					b.Fatal("quiescent")
				}
				s.World.Execute(a)
			}
		})
	}
}

// BenchmarkPrimitiveApply measures raw primitive application on a clique.
func BenchmarkPrimitiveApply(b *testing.B) {
	nodes := ref.NewSpace().NewN(16)
	g := graph.Clique(nodes)
	rng := rand.New(rand.NewSource(5))
	ops := primitives.EnabledOps(g, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := g.Clone()
		_ = primitives.Apply(h, ops[rng.Intn(len(ops))])
	}
}

// BenchmarkTransform measures a full Theorem 1 transformation.
func BenchmarkTransform(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(6))
			nodes := ref.NewSpace().NewN(n)
			from := graph.RandomConnected(nodes, n, rng)
			to := graph.RandomConnected(nodes, n, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g := from.Clone()
				if _, err := primitives.Transform(g, to, primitives.TransformOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelThroughput measures concurrent-runtime event throughput.
func BenchmarkParallelThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := SimulateParallel(Config{N: 32, LeaveFraction: 0.5, Seed: int64(i)}, 60*time.Second)
		if err != nil || !rep.Converged {
			b.Fatalf("parallel run failed: %v %+v", err, rep)
		}
		b.ReportMetric(float64(rep.Steps), "events/run")
	}
}
