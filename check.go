package fdp

import (
	"fmt"

	"fdp/internal/check"
	"fdp/internal/core"
	"fdp/internal/graph"
	"fdp/internal/oracle"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// CheckConfig describes a bounded exhaustive schedule exploration: EVERY
// fair schedule of a small departure scenario is explored up to Depth
// atomic actions, verifying the Lemma 2 safety invariant in each reachable
// state. Keep N tiny (3–4): the state space is exponential.
type CheckConfig struct {
	// N is the number of processes (>= 2).
	N int
	// Leavers is the number of leaving processes, placed in the middle of
	// the topology (the most dangerous spot on a line).
	Leavers int
	// Topology is Line (default), Ring or Clique.
	Topology Topology
	// Depth bounds the schedule length (default 12).
	Depth int
	// MaxStates bounds the exploration (default 1<<20).
	MaxStates int
	// Oracle guards exits (default OracleSingle; OracleUnsafe demonstrates
	// the counterexample).
	Oracle OracleKind
	// Variant selects FDP (default) or FSP (no oracle).
	Variant Variant
}

// CheckReport is the outcome of CheckSchedules.
type CheckReport struct {
	// Safe reports whether no explored schedule violated safety.
	Safe bool
	// StatesExplored counts distinct protocol states expanded.
	StatesExplored int
	// DepthReached is the deepest fully explored level.
	DepthReached int
	// Truncated reports whether MaxStates cut the exploration short.
	Truncated bool
	// LegitimateStates counts explored states satisfying legitimacy.
	LegitimateStates int
	// Counterexample describes the violating schedule when Safe is false.
	Counterexample string
}

// CheckSchedules explores every fair schedule of the configured scenario up
// to the depth bound (bounded explicit-state model checking). With
// OracleSingle the result is expected Safe; with OracleUnsafe it returns the
// concrete schedule on which an early exit disconnects the staying nodes.
func CheckSchedules(cfg CheckConfig) (CheckReport, error) {
	if cfg.N < 2 {
		return CheckReport{}, fmt.Errorf("%w: N = %d", ErrBadConfig, cfg.N)
	}
	if cfg.Leavers < 0 || cfg.Leavers >= cfg.N {
		return CheckReport{}, fmt.Errorf("%w: Leavers = %d of %d", ErrBadConfig, cfg.Leavers, cfg.N)
	}
	coreVariant := core.VariantFDP
	simVariant := sim.FDP
	var orc sim.Oracle
	if cfg.Variant == FSP {
		coreVariant, simVariant = core.VariantFSP, sim.FSP
	} else {
		switch cfg.Oracle {
		case OracleUnsafe:
			orc = oracle.Always(true)
		case OracleExitSafe:
			orc = oracle.ExitSafe{}
		default:
			orc = oracle.Single{}
		}
	}
	//fdplint:ignore refopacity scenario construction — Check mints the initial topology's refs before the protocol runs
	space := ref.NewSpace()
	nodes := space.NewN(cfg.N)
	var g *graph.Graph
	switch cfg.Topology {
	case Ring:
		g = graph.Ring(nodes)
	case Clique:
		g = graph.Clique(nodes)
	default:
		g = graph.Line(nodes)
	}
	leaving := ref.NewSet()
	start := (cfg.N - cfg.Leavers) / 2
	for i := start; i < start+cfg.Leavers; i++ {
		leaving.Add(nodes[i])
	}
	w := sim.NewWorld(orc)
	procs := make(map[ref.Ref]*core.Proc, cfg.N)
	for _, r := range nodes {
		p := core.New(coreVariant)
		procs[r] = p
		mode := sim.Staying
		if leaving.Has(r) {
			mode = sim.Leaving
		}
		w.AddProcess(r, mode, p)
	}
	for _, e := range g.Edges() {
		mode := sim.Staying
		if leaving.Has(e.To) {
			mode = sim.Leaving
		}
		procs[e.From].SetNeighbor(e.To, mode)
	}
	w.SealInitialState()

	out := check.Explore(w, check.Options{
		MaxDepth:         cfg.Depth,
		MaxStates:        cfg.MaxStates,
		Invariant:        check.SafetyInvariant(),
		Variant:          simVariant,
		StopAtLegitimate: true,
	})
	rep := CheckReport{
		Safe:             out.OK(),
		StatesExplored:   out.StatesExplored,
		DepthReached:     out.DepthReached,
		Truncated:        out.Truncated,
		LegitimateStates: out.LegitimateStates,
	}
	if !out.OK() {
		rep.Counterexample = out.Violations[0].String()
	}
	return rep, nil
}
