package fdp

import (
	"fmt"
	"math/rand"
	"time"

	"fdp/internal/core"
	"fdp/internal/experiments"
	"fdp/internal/graph"
	"fdp/internal/parallel"
	"fdp/internal/primitives"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// EdgeList describes a directed graph on the node indices 0..n-1.
type EdgeList [][2]int

// MorphReport is the outcome of a Morph transformation (Theorem 1).
type MorphReport struct {
	// CliqueRounds is how many all-pairs introduction rounds phase one
	// took; the paper bounds it by O(log n).
	CliqueRounds int
	// Introductions, Delegations, Fusions and Reversals count primitive
	// applications.
	Introductions, Delegations, Fusions, Reversals int
}

// TotalPrimitives returns the number of primitive applications.
func (m MorphReport) TotalPrimitives() int {
	return m.Introductions + m.Delegations + m.Fusions + m.Reversals
}

// Morph transforms the weakly connected digraph from into the weakly
// connected digraph to (both on nodes 0..n-1) using only the four safe
// primitives of Section 2, following the constructive proof of Theorem 1.
// Weak connectivity is verified after every primitive application.
func Morph(n int, from, to EdgeList) (MorphReport, error) {
	if n < 1 {
		return MorphReport{}, fmt.Errorf("%w: n = %d", ErrBadConfig, n)
	}
	//fdplint:ignore refopacity scenario construction — Morph mints the node universe before any protocol code runs
	nodes := ref.NewSpace().NewN(n)
	build := func(edges EdgeList, name string) (*graph.Graph, error) {
		g := graph.New()
		for _, r := range nodes {
			g.AddNode(r)
		}
		for _, e := range edges {
			if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
				return nil, fmt.Errorf("%w: edge %v out of range in %s", ErrBadConfig, e, name)
			}
			g.AddEdge(nodes[e[0]], nodes[e[1]], graph.Explicit)
		}
		return g, nil
	}
	g, err := build(from, "from")
	if err != nil {
		return MorphReport{}, err
	}
	target, err := build(to, "to")
	if err != nil {
		return MorphReport{}, err
	}
	stats, err := primitives.Transform(g, target, primitives.TransformOptions{Verify: true})
	if err != nil {
		return MorphReport{}, err
	}
	return MorphReport{
		CliqueRounds:  stats.CliqueRounds,
		Introductions: stats.Introductions,
		Delegations:   stats.Delegations,
		Fusions:       stats.Fusions,
		Reversals:     stats.Reversals,
	}, nil
}

// ExperimentReport is one rendered experiment of the suite.
type ExperimentReport struct {
	ID     string
	Title  string
	Claim  string
	Pass   bool
	Tables []string
	Plots  []string
	Notes  []string
}

// Experiments runs the reproduction suite E1–E16 (quick=true uses the
// CI-scale configuration) and returns the rendered tables and ASCII plots
// that EXPERIMENTS.md records.
func Experiments(quick bool) []ExperimentReport {
	scale := experiments.Full()
	if quick {
		scale = experiments.Quick()
	}
	var out []ExperimentReport
	for _, r := range experiments.All(scale) {
		rep := ExperimentReport{
			ID: r.ID, Title: r.Title, Claim: r.Claim, Pass: r.Pass, Notes: r.Notes,
		}
		for _, tb := range r.Tables {
			rep.Tables = append(rep.Tables, tb.String())
		}
		for _, s := range r.Series {
			rep.Plots = append(rep.Plots, s.ASCIIPlot(60, 12))
		}
		out = append(out, rep)
	}
	return out
}

// buildParallelWorld mirrors the Simulate scenario on the concurrent
// runtime: a random connected topology with the given leave fraction.
func buildParallelWorld(n int, leaveFraction float64, seed int64, variant core.Variant, orc parallel.Oracle) (*parallel.Runtime, int) {
	rng := rand.New(rand.NewSource(seed))
	//fdplint:ignore refopacity scenario construction — the harness mints the world's refs, not protocol logic
	space := ref.NewSpace()
	nodes := space.NewN(n)
	g := graph.RandomConnected(nodes, n/2, rng)
	k := int(leaveFraction * float64(n))
	if k > n-1 {
		k = n - 1
	}
	if k < 0 {
		k = 0
	}
	leaving := ref.NewSet()
	for _, i := range rng.Perm(n)[:k] {
		leaving.Add(nodes[i])
	}
	rt := parallel.NewRuntime(orc)
	procs := make(map[ref.Ref]*core.Proc, n)
	for _, r := range nodes {
		p := core.New(variant)
		procs[r] = p
		mode := sim.Staying
		if leaving.Has(r) {
			mode = sim.Leaving
		}
		rt.AddProcess(r, mode, p)
	}
	for _, e := range g.Edges() {
		mode := sim.Staying
		if leaving.Has(e.To) {
			mode = sim.Leaving
		}
		procs[e.From].SetNeighbor(e.To, mode)
	}
	return rt, leaving.Len()
}

// ensure time is referenced by this file's package docs users.
var _ = time.Second
