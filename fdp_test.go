package fdp

import (
	"errors"
	"testing"
	"time"
)

func TestSimulateDefaults(t *testing.T) {
	rep, err := Simulate(Config{
		N: 12, Topology: Random, LeaveFraction: 0.5,
		Seed: 1, CheckSafety: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatal("default FDP run did not converge")
	}
	if rep.Exits != 6 {
		t.Fatalf("exits = %d, want 6", rep.Exits)
	}
	if rep.SafetyViolated {
		t.Fatal("safety violated with SINGLE oracle")
	}
	if rep.MessagesSent == 0 || rep.MessagesByLabel["present"] == 0 {
		t.Fatal("message accounting empty")
	}
}

func TestSimulateFSP(t *testing.T) {
	rep, err := Simulate(Config{
		N: 10, Topology: Ring, LeaveFraction: 0.4, Variant: FSP,
		Seed: 2, CheckSafety: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged || rep.Exits != 0 {
		t.Fatalf("FSP run wrong: %+v", rep)
	}
}

func TestSimulateAllSchedulers(t *testing.T) {
	for _, s := range []Scheduler{SchedRandom, SchedRounds, SchedAdversarial, SchedFIFO} {
		rep, err := Simulate(Config{
			N: 10, Topology: Line, LeaveFraction: 0.3, Scheduler: s,
			Seed: 3, CheckSafety: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Converged {
			t.Fatalf("scheduler %d did not converge", s)
		}
	}
	rep, _ := Simulate(Config{N: 6, Topology: Line, LeaveFraction: 0.3, Scheduler: SchedRounds, Seed: 4})
	if rep.Rounds == 0 {
		t.Fatal("round scheduler must report rounds")
	}
}

func TestSimulateCorrupted(t *testing.T) {
	rep, err := Simulate(Config{
		N: 14, Topology: Random, LeaveFraction: 0.5,
		CorruptBeliefs: 0.6, CorruptAnchors: 0.6, JunkMessages: 20,
		Seed: 5, CheckSafety: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged || rep.SafetyViolated {
		t.Fatalf("corrupted run wrong: %+v", rep)
	}
}

func TestSimulateUnsafeOracleCanViolate(t *testing.T) {
	violated := false
	for seed := int64(0); seed < 20 && !violated; seed++ {
		rep, err := Simulate(Config{
			N: 9, Topology: Line, LeaveFraction: 0.4, Pattern: LeaveArticulation,
			Oracle: OracleUnsafe, Seed: seed, CheckSafety: true, MaxSteps: 100000,
		})
		if err != nil {
			t.Fatal(err)
		}
		violated = rep.SafetyViolated
	}
	if !violated {
		t.Fatal("OracleUnsafe never violated safety — the guard would be vacuous")
	}
}

func TestSimulateBadConfig(t *testing.T) {
	if _, err := Simulate(Config{N: 0}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("N=0 must be rejected")
	}
	if _, err := Simulate(Config{N: 5, LeaveFraction: 1.5}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("bad fraction must be rejected")
	}
	if _, err := SimulateOverlay(OverlayConfig{N: 0}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("overlay N=0 must be rejected")
	}
	if _, err := Morph(0, nil, nil); !errors.Is(err, ErrBadConfig) {
		t.Fatal("morph n=0 must be rejected")
	}
	if _, err := Morph(3, EdgeList{{0, 9}}, EdgeList{{0, 1}}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("out-of-range edges must be rejected")
	}
	if _, err := SimulateParallel(Config{N: 0}, time.Second); !errors.Is(err, ErrBadConfig) {
		t.Fatal("parallel N=0 must be rejected")
	}
}

func TestSimulateOverlayAllKinds(t *testing.T) {
	for _, o := range []Overlay{Linearize, SortRing, CliqueTC, SkipList} {
		rep, err := SimulateOverlay(OverlayConfig{
			N: 10, Overlay: o, LeaveFraction: 0.3, Seed: 6,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Converged || !rep.TargetReached {
			t.Fatalf("overlay %d: %+v", o, rep)
		}
		if rep.Exits != 3 {
			t.Fatalf("overlay %d: exits = %d, want 3", o, rep.Exits)
		}
	}
}

func TestMorphLineToRing(t *testing.T) {
	line := EdgeList{{0, 1}, {1, 2}, {2, 3}}
	ring := EdgeList{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	rep, err := Morph(4, line, ring)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalPrimitives() == 0 {
		t.Fatal("a nontrivial morph must apply primitives")
	}
	if rep.CliqueRounds > 4 {
		t.Fatalf("clique rounds = %d for n=4", rep.CliqueRounds)
	}
}

func TestMorphIdentity(t *testing.T) {
	g := EdgeList{{0, 1}, {1, 0}}
	rep, err := Morph(2, g, g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalPrimitives() != 0 {
		t.Fatal("identity morph should be free")
	}
}

func TestSimulateParallelSmoke(t *testing.T) {
	rep, err := SimulateParallel(Config{N: 10, LeaveFraction: 0.4, Seed: 7}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged || rep.Exits != 4 {
		t.Fatalf("parallel run wrong: %+v", rep)
	}
}

func TestExperimentsQuickSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite")
	}
	reports := Experiments(true)
	if len(reports) != 16 {
		t.Fatalf("suite has %d experiments, want 16", len(reports))
	}
	for _, r := range reports {
		if !r.Pass {
			t.Errorf("%s (%s) failed", r.ID, r.Title)
		}
		if len(r.Tables) == 0 {
			t.Errorf("%s has no tables", r.ID)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := Config{N: 12, Topology: Random, LeaveFraction: 0.5,
		CorruptBeliefs: 0.4, Seed: 9}
	a, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps || a.MessagesSent != b.MessagesSent {
		t.Fatal("same seed must reproduce the run exactly")
	}
}

func TestCheckSchedulesSafe(t *testing.T) {
	rep, err := CheckSchedules(CheckConfig{N: 3, Leavers: 1, Depth: 12})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe {
		t.Fatalf("SINGLE must be safe on every schedule: %s", rep.Counterexample)
	}
	if rep.StatesExplored == 0 || rep.LegitimateStates == 0 {
		t.Fatalf("exploration empty: %+v", rep)
	}
}

func TestCheckSchedulesCounterexample(t *testing.T) {
	rep, err := CheckSchedules(CheckConfig{N: 3, Leavers: 1, Depth: 8, Oracle: OracleUnsafe})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Safe {
		t.Fatal("the unsafe oracle must yield a counterexample")
	}
	if rep.Counterexample == "" {
		t.Fatal("counterexample schedule missing")
	}
}

func TestCheckSchedulesFSP(t *testing.T) {
	rep, err := CheckSchedules(CheckConfig{N: 3, Leavers: 1, Depth: 10, Variant: FSP})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Safe {
		t.Fatal("FSP must be safe on every schedule")
	}
}

func TestCheckSchedulesBadConfig(t *testing.T) {
	if _, err := CheckSchedules(CheckConfig{N: 1}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("N=1 must be rejected")
	}
	if _, err := CheckSchedules(CheckConfig{N: 3, Leavers: 3}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("all-leaving must be rejected")
	}
}
