// Package fdp is a library for safely excluding leaving nodes from overlay
// networks, reproducing "Towards a Universal Approach for the Finite
// Departure Problem in Overlay Networks" (Koutsopoulos, Scheideler,
// Strothmann; SPAA 2015 brief announcement).
//
// It provides:
//
//   - the self-stabilizing departure protocol of the paper (Algorithms
//     1–3) relying on the SINGLE oracle, and its oracle-free Finite Sleep
//     Problem variant — Simulate;
//   - the Section 4 framework P′ that embeds the departure protocol into
//     overlay-maintenance protocols (linearization, sorted ring, clique) —
//     SimulateOverlay;
//   - the four universal primitives of Section 2 and the constructive
//     Theorem 1 transformation between arbitrary weakly connected
//     topologies — Morph;
//   - a goroutine-per-process concurrent runtime — SimulateParallel;
//   - the full experiment suite E1–E11 regenerating every table and figure
//     of EXPERIMENTS.md — Experiments.
//
// The deterministic discrete-event simulator underneath implements the
// paper's exact model: unbounded non-FIFO channels, weakly fair atomic
// actions, fair message receipt, awake/asleep/gone lifecycle.
package fdp

import (
	"errors"
	"fmt"
	"io"
	"time"

	"fdp/internal/churn"
	"fdp/internal/core"
	"fdp/internal/framework"
	"fdp/internal/obs"
	"fdp/internal/oracle"
	"fdp/internal/parallel"
	"fdp/internal/sim"
	"fdp/internal/trace"
)

// Variant selects the departure flavour.
type Variant int

// Departure variants.
const (
	// FDP — leaving processes irrevocably exit (needs an oracle).
	FDP Variant = iota
	// FSP — leaving processes fall asleep (no oracle needed).
	FSP
)

// Topology selects the initial overlay shape.
type Topology int

// Initial topologies.
const (
	Line Topology = iota
	DirectedLine
	Ring
	Star
	Tree
	Clique
	Hypercube
	Random
)

// LeavePattern selects which processes leave.
type LeavePattern int

// Leave patterns.
const (
	// LeaveRandom marks a uniform random subset.
	LeaveRandom LeavePattern = iota
	// LeaveArticulation prefers cut vertices (adversarial placement).
	LeaveArticulation
	// LeaveBlock marks a contiguous block of the identifier space.
	LeaveBlock
	// LeaveAllButOne marks everyone except a single staying process.
	LeaveAllButOne
)

// OracleKind selects the oracle advising leaving processes.
type OracleKind int

// Oracles.
const (
	// OracleSingle is the paper's SINGLE oracle: true when the caller has
	// edges with at most one other relevant process.
	OracleSingle OracleKind = iota
	// OracleNIDEC is the stricter oracle of Foreback et al.
	OracleNIDEC
	// OracleExitSafe is the ideal ground-truth safety oracle.
	OracleExitSafe
	// OracleTimeoutSingle is a deliberately stale approximation of SINGLE.
	OracleTimeoutSingle
	// OracleUnsafe always answers true; exits may disconnect the overlay.
	// It exists to demonstrate that safety depends on the oracle.
	OracleUnsafe
)

// Scheduler selects the fair scheduler driving the simulation.
type Scheduler int

// Schedulers.
const (
	// SchedRandom picks uniformly among enabled actions (seeded, with a
	// fairness aging bound).
	SchedRandom Scheduler = iota
	// SchedRounds executes canonical asynchronous rounds.
	SchedRounds
	// SchedAdversarial reorders maximally within the fairness bound.
	SchedAdversarial
	// SchedFIFO delivers oldest-first.
	SchedFIFO
)

// Config describes one departure simulation.
type Config struct {
	// N is the number of processes (>= 1).
	N int
	// Topology is the initial overlay shape (default Line).
	Topology Topology
	// LeaveFraction in [0,1] marks that share of processes as leaving
	// (capped so at least one process stays).
	LeaveFraction float64
	// Pattern places the leavers (default LeaveRandom).
	Pattern LeavePattern
	// Variant selects FDP (default) or FSP.
	Variant Variant
	// Oracle advises leavers (default OracleSingle; ignored for FSP).
	Oracle OracleKind
	// Scheduler drives the run (default SchedRandom).
	Scheduler Scheduler
	// Seed makes the run reproducible.
	Seed int64
	// MaxSteps bounds the run (default 1<<20).
	MaxSteps int

	// CorruptBeliefs is the probability that each initial mode belief is
	// flipped (self-stabilization stress).
	CorruptBeliefs float64
	// CorruptAnchors is the probability that each process starts with a
	// random (likely invalid) anchor.
	CorruptAnchors float64
	// JunkMessages injects that many arbitrary initial in-flight messages.
	JunkMessages int

	// CheckSafety verifies the Lemma 2 invariant during the run.
	CheckSafety bool

	// Observe, when non-nil, receives the run's FDP metric series (event
	// counts, message age, mailbox depth, time-to-exit, oracle calls) —
	// see NewObserver.
	Observe *Observer

	// Journal, when non-nil, receives the run's causal event journal:
	// a JSONL stream (header line plus one record per event) that
	// cmd/fdpreplay can verify, diff, and render as spans or a Chrome
	// trace — see internal/trace. Sequential journals replay
	// byte-identically; runtime journals carry the same causal schema
	// but are diff-only.
	Journal io.Writer

	// Stop, when non-nil, interrupts the run when it closes: the simulator
	// finishes the current step and returns with Converged false. Wire it
	// to a signal handler for graceful ^C — the journal written so far
	// stays a valid prefix.
	Stop <-chan struct{}
}

// Report is the outcome of a simulation.
type Report struct {
	// Converged reports whether a legitimate state was reached.
	Converged bool
	// Steps is the number of atomic actions executed.
	Steps int
	// Rounds is the round count (SchedRounds only, else 0).
	Rounds int
	// MessagesSent counts all sends.
	MessagesSent uint64
	// MessagesByLabel breaks sends down per action label.
	MessagesByLabel map[string]uint64
	// Exits is the number of processes that executed exit.
	Exits int
	// MaxChannel is the high-water mark of any channel.
	MaxChannel int
	// SafetyViolated reports a Lemma 2 violation (only with CheckSafety;
	// expected only with OracleUnsafe).
	SafetyViolated bool
	// Interrupted reports that Config.Stop closed before the run finished
	// (Converged is false in that case, but the run is not a failure).
	Interrupted bool
}

// ErrBadConfig is returned for invalid configurations.
var ErrBadConfig = errors.New("fdp: invalid configuration")

func (c *Config) oracle() sim.Oracle {
	switch c.Oracle {
	case OracleNIDEC:
		return oracle.NIDEC{}
	case OracleExitSafe:
		return oracle.ExitSafe{}
	case OracleTimeoutSingle:
		return oracle.NewTimeoutSingle(0)
	case OracleUnsafe:
		return oracle.Always(true)
	default:
		return oracle.Single{}
	}
}

func (c *Config) scheduler() sim.Scheduler {
	switch c.Scheduler {
	case SchedRounds:
		return sim.NewRoundScheduler()
	case SchedAdversarial:
		return sim.NewAdversarialScheduler(c.Seed, 0)
	case SchedFIFO:
		return sim.NewFIFOScheduler()
	default:
		return sim.NewRandomScheduler(c.Seed, 0)
	}
}

func (c *Config) variant() (core.Variant, sim.Variant) {
	if c.Variant == FSP {
		return core.VariantFSP, sim.FSP
	}
	return core.VariantFDP, sim.FDP
}

// Simulate runs the departure protocol of Section 3 on the configured
// scenario and reports the outcome.
func Simulate(cfg Config) (Report, error) {
	if cfg.N < 1 {
		return Report{}, fmt.Errorf("%w: N = %d", ErrBadConfig, cfg.N)
	}
	if cfg.LeaveFraction < 0 || cfg.LeaveFraction > 1 {
		return Report{}, fmt.Errorf("%w: LeaveFraction = %v", ErrBadConfig, cfg.LeaveFraction)
	}
	coreVariant, simVariant := cfg.variant()
	var orc sim.Oracle
	if cfg.Variant == FDP {
		orc = cfg.oracle()
		if cfg.Observe != nil {
			orc = obs.CountOracle(orc, cfg.Observe)
		}
	}
	churnCfg := churn.Config{
		N:             cfg.N,
		Topology:      churn.Topology(cfg.Topology),
		LeaveFraction: cfg.LeaveFraction,
		Pattern:       churn.LeavePattern(cfg.Pattern),
		Corrupt: churn.Corruption{
			FlipBeliefs:   cfg.CorruptBeliefs,
			RandomAnchors: cfg.CorruptAnchors,
			JunkMessages:  cfg.JunkMessages,
		},
		Variant: coreVariant,
		Oracle:  orc,
		Seed:    cfg.Seed,
	}
	s := churn.Build(churnCfg)
	if cfg.Observe != nil {
		obs.InstrumentWorld(s.World, cfg.Observe)
	}
	sched := cfg.scheduler()
	var jw *trace.Writer
	if cfg.Journal != nil {
		jw = trace.NewWriter(cfg.Journal, trace.Header{
			Version:  trace.Version,
			Engine:   trace.EngineSim,
			Scenario: trace.ScenarioFor(churnCfg, sched.Name()),
		})
		s.World.AddEventHook(jw.Record)
	}
	res := sim.Run(s.World, sched, sim.RunOptions{
		Variant:     simVariant,
		MaxSteps:    cfg.MaxSteps,
		CheckSafety: cfg.CheckSafety,
		Stop:        cfg.Stop,
	})
	if jw != nil {
		if err := jw.Err(); err != nil {
			return reportFrom(res), fmt.Errorf("fdp: journal write: %w", err)
		}
	}
	return reportFrom(res), nil
}

func reportFrom(res sim.RunResult) Report {
	return Report{
		Converged:       res.Converged,
		Steps:           res.Steps,
		Rounds:          res.Rounds,
		MessagesSent:    res.Stats.Sent,
		MessagesByLabel: res.Stats.SentByLabel,
		Exits:           res.Stats.Exits,
		MaxChannel:      res.Stats.MaxChannel,
		SafetyViolated:  res.SafetyViolation != nil,
		Interrupted:     res.Interrupted,
	}
}

// Overlay selects the maintenance protocol wrapped by SimulateOverlay.
type Overlay int

// Overlay protocols (members of the class 𝒫).
const (
	// Linearize stabilizes to the doubly-linked sorted list.
	Linearize Overlay = iota
	// SortRing stabilizes to the sorted ring.
	SortRing
	// CliqueTC stabilizes to the complete graph.
	CliqueTC
	// SkipList stabilizes to a two-level skip list (sorted list plus a
	// sorted shortcut list over the even-key nodes).
	SkipList
)

// OverlayConfig describes a Section 4 (framework P′) simulation.
type OverlayConfig struct {
	// N is the number of processes.
	N int
	// Overlay is the wrapped maintenance protocol.
	Overlay Overlay
	// LeaveFraction marks that share of processes as leaving.
	LeaveFraction float64
	// Variant selects FDP (default) or FSP.
	Variant Variant
	// Seed makes the run reproducible.
	Seed int64
	// MaxSteps bounds the run (default 1<<21).
	MaxSteps int
	// CorruptAnchors / JunkPending corrupt the initial state.
	CorruptAnchors float64
	JunkPending    int
}

// OverlayReport extends Report with the overlay outcome.
type OverlayReport struct {
	Report
	// TargetReached reports whether the staying processes form the
	// overlay's target topology.
	TargetReached bool
}

// SimulateOverlay runs the framework P′ of Section 4: the chosen overlay
// maintenance protocol combined with the departure protocol.
func SimulateOverlay(cfg OverlayConfig) (OverlayReport, error) {
	if cfg.N < 1 {
		return OverlayReport{}, fmt.Errorf("%w: N = %d", ErrBadConfig, cfg.N)
	}
	coreVariant, simVariant := cfg.variantPair()
	var orc sim.Oracle
	if coreVariant == core.VariantFDP {
		orc = oracle.Single{}
	}
	s := framework.Build(framework.Config{
		N:              cfg.N,
		Overlay:        framework.OverlayKind(cfg.Overlay),
		LeaveFraction:  cfg.LeaveFraction,
		Variant:        coreVariant,
		Oracle:         orc,
		Seed:           cfg.Seed,
		ExtraEdges:     cfg.N / 2,
		CorruptAnchors: cfg.CorruptAnchors,
		JunkPending:    cfg.JunkPending,
	})
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 1 << 21
	}
	sched := sim.NewRandomScheduler(cfg.Seed, 0)
	check := cfg.N
	done := false
	for s.World.Steps() < maxSteps {
		if s.World.Steps()%check == 0 && s.World.Legitimate(simVariant) && s.InTarget() {
			done = true
			break
		}
		a, ok := sched.Next(s.World)
		if !ok {
			break
		}
		s.World.Execute(a)
	}
	if !done {
		done = s.World.Legitimate(simVariant) && s.InTarget()
	}
	st := s.World.Stats()
	return OverlayReport{
		Report: Report{
			Converged:       done,
			Steps:           s.World.Steps(),
			MessagesSent:    st.Sent,
			MessagesByLabel: st.SentByLabel,
			Exits:           st.Exits,
			MaxChannel:      st.MaxChannel,
		},
		TargetReached: s.InTarget(),
	}, nil
}

func (c *OverlayConfig) variantPair() (core.Variant, sim.Variant) {
	if c.Variant == FSP {
		return core.VariantFSP, sim.FSP
	}
	return core.VariantFDP, sim.FDP
}

// SimulateParallel runs the same scenario as Simulate on the concurrent
// goroutine-per-process runtime, until legitimacy or the wall-clock timeout.
// Only LeaveFraction, N, Variant and Seed of cfg are honoured (topology is
// random — the runtime exists for cross-validation and throughput, not for
// scenario sweeps).
func SimulateParallel(cfg Config, timeout time.Duration) (Report, error) {
	if cfg.N < 1 {
		return Report{}, fmt.Errorf("%w: N = %d", ErrBadConfig, cfg.N)
	}
	coreVariant, simVariant := cfg.variant()
	var orc parallel.Oracle
	if cfg.Variant == FDP {
		orc = cfg.oracle()
		if cfg.Observe != nil {
			orc = obs.CountOracle(orc, cfg.Observe)
		}
	}
	rt, _ := buildParallelWorld(cfg.N, cfg.LeaveFraction, cfg.Seed, coreVariant, orc)
	if cfg.Observe != nil {
		obs.InstrumentRuntime(rt, cfg.Observe)
	}
	var jw *trace.Writer
	if cfg.Journal != nil {
		// Provenance header only: the runtime builds its own random
		// topology, and its journals are diff-able but not replayable.
		jw = trace.NewWriter(cfg.Journal, trace.Header{
			Version: trace.Version,
			Engine:  trace.EngineRuntime,
			Scenario: trace.ScenarioFor(churn.Config{
				N:             cfg.N,
				Topology:      churn.TopoRandom,
				LeaveFraction: cfg.LeaveFraction,
				Variant:       coreVariant,
				Oracle:        orc,
				Seed:          cfg.Seed,
			}, ""),
		})
		rt.SetEventSink(jw.Record)
	}
	ok := rt.RunUntil(func(w *sim.World) bool {
		return w.Legitimate(simVariant)
	}, 2*time.Millisecond, timeout)
	if jw != nil {
		if err := jw.Err(); err != nil {
			return Report{}, fmt.Errorf("fdp: journal write: %w", err)
		}
	}
	return Report{
		Converged:    ok,
		Steps:        int(rt.Events()),
		MessagesSent: rt.Sent(),
		Exits:        int(rt.Gone()), // bounded by Config.N
	}, nil
}
