// Command fdpnode runs one node of a multi-node departure-protocol churn, or
// merges the per-node artifacts of a finished run into a verdict.
//
// Deployment is coordinator-free: every node gets the same scenario flags and
// rebuilds the same global world, keeping the slice it owns (round-robin by
// process index). Peers find each other through -peers; there is no leader.
//
//	fdpnode -id 0 -nodes 3 -listen 127.0.0.1:7450 \
//	        -peers 1=127.0.0.1:7451,2=127.0.0.1:7452 \
//	        -n 12 -topology line -leave 0.4 -seed 42 -out run/
//	fdpnode -merge run/
//
// Run mode writes out/journal-<id>.jsonl (causal event journal, joinable with
// its siblings) and out/summary-<id>.json (final owned-process state). SIGINT
// or SIGTERM winds the node down gracefully: the journal flushes, the summary
// records the interruption, and the exit status stays 0 — partial artifacts
// from an interrupted run are diagnostic input, not an error.
//
// Merge mode reads every summary-*.json and journal-*.jsonl in the directory
// and prints the run verdict: journals must join causally, every leaver must
// have exited with journal evidence, and the survivors must satisfy the
// Lemma 2 connectivity invariant. Exit status 1 on any problem, 2 on I/O or
// usage errors.
//
// -serve ADDR additionally exposes the node's live metrics (per-link
// fdp_transport_* plus per-leaver fdp_progress_*/fdp_stall_*, labeled with
// the node id) and pprof on ADDR for the duration of the run; -hold keeps
// the endpoint up afterwards so a scraper can read the final state. -stall D
// arms the liveness watchdog: a run that makes no departure progress for D
// is classified (livelock / starvation / quiescent-stuck) and the flight
// recorder's recent-event ring is snapshotted to out/flight-<id>.jsonl (a
// joinable journal fragment fdpreplay accepts) next to out/stall-<id>.json.
//
// Scrape mode (fdpnode -scrape addr,addr,...) polls each node's /metrics
// once and prints the per-node liveness series plus a cluster aggregate —
// the quickest way to see which node's leavers are stuck:
//
//	fdpnode -scrape 127.0.0.1:9450,127.0.0.1:9451,127.0.0.1:9452
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"fdp/internal/node"
	"fdp/internal/obs"
	"fdp/internal/trace"
	"fdp/internal/transport"
)

// isClosedErr recognizes the errors a serve goroutine sees during a clean
// shutdown: the listener closed underneath it, nothing more.
func isClosedErr(err error) bool {
	return err == nil || errors.Is(err, http.ErrServerClosed) || errors.Is(err, net.ErrClosed)
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("fdpnode", flag.ContinueOnError)
	var (
		merge  = fs.String("merge", "", "merge mode: verify the run artifacts in this directory")
		scrape = fs.String("scrape", "", "scrape mode: aggregate liveness metrics from these node /metrics addresses (comma separated)")

		id     = fs.Int("id", 0, "this node's id, in [0, nodes)")
		nodes  = fs.Int("nodes", 1, "total node count")
		listen = fs.String("listen", "127.0.0.1:0", "address to accept peer frames on")
		peers  = fs.String("peers", "", "peer addresses as id=host:port, comma separated")
		out    = fs.String("out", ".", "directory for journal-<id>.jsonl and summary-<id>.json")

		n       = fs.Int("n", 16, "number of processes")
		topo    = fs.String("topology", "line", "initial topology (line, ring, tree, clique, hypercube, ...)")
		leave   = fs.Float64("leave", 0.5, "fraction of processes leaving")
		pattern = fs.String("pattern", "random", "leaver placement (random, articulation, block, neighborhood, all-but-one)")
		variant = fs.String("variant", "fdp", "fdp (exit) or fsp (sleep)")
		seed    = fs.Int64("seed", 1, "scenario seed (identical on every node)")

		timeout    = fs.Duration("timeout", 60*time.Second, "wall-clock budget before the node gives up")
		linger     = fs.Duration("linger", 500*time.Millisecond, "post-agreement drain window for late frames")
		roundEvery = fs.Duration("round-every", 50*time.Millisecond, "oracle snapshot round interval")

		serve = fs.String("serve", "", "serve /metrics (Prometheus text) and /debug/pprof on this address during the run (e.g. 127.0.0.1:9450)")
		hold  = fs.Duration("hold", 0, "keep the -serve endpoint up this long after the run finishes (a signal releases it early)")
		stall = fs.Duration("stall", 0, "arm the liveness watchdog with this window; on stall, write flight-<id>.jsonl and stall-<id>.json to -out")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fdpnode -id I -nodes N -listen ADDR -peers LIST [scenario flags] -out DIR")
		fmt.Fprintln(os.Stderr, "       fdpnode -merge DIR")
		fmt.Fprintln(os.Stderr, "       fdpnode -scrape ADDR[,ADDR...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *merge != "" {
		return runMerge(*merge)
	}
	if *scrape != "" {
		return runScrape(*scrape)
	}

	scn := trace.Scenario{N: *n, Topology: *topo, LeaveFraction: *leave,
		Pattern: *pattern, Variant: strings.ToUpper(*variant),
		Oracle: "SINGLE", Seed: *seed}

	peerMap, err := parsePeers(*peers, *id, *nodes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdpnode:", err)
		return 2
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "fdpnode:", err)
		return 2
	}
	jf, err := os.Create(filepath.Join(*out, fmt.Sprintf("journal-%d.jsonl", *id)))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdpnode:", err)
		return 2
	}
	defer jf.Close()

	// One registry per node: the transport's per-link series and the
	// watchdog's per-leaver progress series share the same /metrics page.
	var reg *obs.Registry
	if *serve != "" {
		reg = obs.NewRegistry()
	}
	onStall := func(v obs.StallVerdict, hdr trace.Header, flight []trace.Record, complete bool) {
		fmt.Fprintf(os.Stderr, "fdpnode: node %d stalled: %s (%d flight records, complete=%v)\n",
			*id, v.Kind, len(flight), complete)
		fp := filepath.Join(*out, fmt.Sprintf("flight-%d.jsonl", *id))
		ff, err := os.Create(fp)
		if err == nil {
			err = trace.WriteJournal(ff, hdr, flight)
			if cerr := ff.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdpnode: flight dump:", err)
		}
		vb, err := json.MarshalIndent(v, "", "  ")
		if err == nil {
			err = os.WriteFile(filepath.Join(*out, fmt.Sprintf("stall-%d.json", *id)), append(vb, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdpnode: stall verdict:", err)
		}
	}
	nd, err := node.New(node.Config{ID: *id, Nodes: *nodes, Scenario: scn,
		Journal: jf, MaxWall: *timeout, Linger: *linger, RoundEvery: *roundEvery,
		Metrics: reg, StallWindow: *stall, OnStall: onStall})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdpnode:", err)
		return 2
	}
	tr, err := transport.NewTCP(transport.TCPConfig{
		Self: transport.NodeID(*id), Listen: *listen, Peers: peerMap, Handler: nd,
		Metrics: reg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdpnode:", err)
		return 2
	}
	defer tr.Close()
	if *serve != "" {
		// Same graceful-shutdown path as fdpsim/fdpbench: closing the
		// listener on exit makes Serve return a closed-network error, which
		// is the clean outcome, not a failure.
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdpnode: -serve:", err)
			return 2
		}
		defer ln.Close()
		fmt.Printf("node %d metrics on http://%s/metrics\n", *id, ln.Addr())
		go func() {
			if err := http.Serve(ln, obs.NewServeMux(reg)); !isClosedErr(err) {
				fmt.Fprintln(os.Stderr, "fdpnode: -serve:", err)
			}
		}()
	}
	fmt.Printf("node %d/%d listening on %s (n=%d seed=%d)\n", *id, *nodes, tr.Addr(), *n, *seed)

	// Graceful shutdown: first signal stops the pump, which flushes the
	// journal and writes the summary on its way out; the immediate Interrupt
	// flush bounds the data at risk if the pump is slow to notice. A second
	// signal kills the process the traditional way.
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "fdpnode: signal received, winding down")
		nd.Interrupt()
		close(stop)
		<-sigc
		os.Exit(130)
	}()

	res := nd.Run(tr, stop)
	if err := jf.Sync(); err != nil {
		fmt.Fprintln(os.Stderr, "fdpnode: journal sync:", err)
	}

	sb, err := json.MarshalIndent(res.Summary, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdpnode:", err)
		return 2
	}
	sumPath := filepath.Join(*out, fmt.Sprintf("summary-%d.json", *id))
	if err := os.WriteFile(sumPath, append(sb, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fdpnode:", err)
		return 2
	}

	if *serve != "" && *hold > 0 {
		// Keep the final metric values scrapeable; a signal releases the
		// hold early so supervised runs (the Makefile's node-churn) can
		// wind the fleet down without waiting it out.
		fmt.Printf("holding -serve endpoint for %v\n", *hold)
		select {
		case <-time.After(*hold):
		case <-stop:
		}
	}

	switch {
	case res.Summary.Interrupted:
		fmt.Printf("node %d interrupted after %d steps (journal flushed)\n", *id, res.Summary.Steps)
		return 0
	case res.Summary.TimedOut:
		fmt.Printf("node %d timed out after %d steps: %d/%d owned leavers exited\n",
			*id, res.Summary.Steps, len(res.Summary.Exited), len(res.Summary.Leavers))
		return 1
	default:
		fmt.Printf("node %d done: %d steps, %d/%d owned leavers exited\n",
			*id, res.Summary.Steps, len(res.Summary.Exited), len(res.Summary.Leavers))
		return 0
	}
}

// parsePeers decodes "1=host:port,2=host:port" and demands exactly the other
// nodes' ids — a missing or surplus peer is a deployment typo worth refusing.
func parsePeers(s string, self, nodes int) (map[transport.NodeID]string, error) {
	m := make(map[transport.NodeID]string)
	if s != "" {
		for _, part := range strings.Split(s, ",") {
			id, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
			if !ok {
				return nil, fmt.Errorf("-peers entry %q is not id=addr", part)
			}
			pid, err := strconv.Atoi(id)
			if err != nil || pid < 0 || pid >= nodes {
				return nil, fmt.Errorf("-peers id %q out of range for %d nodes", id, nodes)
			}
			if pid == self {
				return nil, fmt.Errorf("-peers lists this node's own id %d", pid)
			}
			m[transport.NodeID(pid)] = addr
		}
	}
	if len(m) != nodes-1 {
		return nil, fmt.Errorf("-peers has %d entries, want %d (every node but this one)", len(m), nodes-1)
	}
	return m, nil
}

// runScrape polls each address's /metrics once, echoes the liveness and
// transport series per node, and prints a cluster aggregate: the sum of
// leavers remaining across nodes is the run's distance from Lemma 3. Exit
// status 2 if any node cannot be scraped.
func runScrape(list string) int {
	client := &http.Client{Timeout: 5 * time.Second}
	var (
		remaining, grants, denials float64
		failed                     bool
	)
	for _, a := range strings.Split(list, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		resp, err := client.Get("http://" + a + "/metrics")
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdpnode: scrape %s: %v\n", a, err)
			failed = true
			continue
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "fdpnode: scrape %s: status %s\n", a, resp.Status)
			failed = true
			continue
		}
		fmt.Printf("# node %s\n", a)
		for _, line := range strings.Split(string(body), "\n") {
			if !strings.HasPrefix(line, "fdp_progress_") && !strings.HasPrefix(line, "fdp_stall_") &&
				!strings.HasPrefix(line, "fdp_transport_frames_total") {
				continue
			}
			fmt.Println(line)
			name, v, ok := parseSample(line)
			if !ok {
				continue
			}
			switch name {
			case obs.MetricProgressLeavers:
				remaining += v
			case obs.MetricProgressGrants:
				grants += v
			case obs.MetricProgressDenials:
				denials += v
			}
		}
	}
	fmt.Printf("# cluster: leavers_remaining=%g grants=%g denials=%g\n", remaining, grants, denials)
	if failed {
		return 2
	}
	return 0
}

// parseSample splits one Prometheus text line into its metric name (label
// block stripped) and value.
func parseSample(line string) (string, float64, bool) {
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return "", 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(line[sp+1:]), 64)
	if err != nil {
		return "", 0, false
	}
	name := line[:sp]
	if b := strings.IndexByte(name, '{'); b >= 0 {
		name = name[:b]
	}
	return name, v, true
}

// runMerge reads a run directory and prints the merged verdict.
func runMerge(dir string) int {
	sumPaths, err := filepath.Glob(filepath.Join(dir, "summary-*.json"))
	if err != nil || len(sumPaths) == 0 {
		fmt.Fprintf(os.Stderr, "fdpnode: no summary-*.json in %s\n", dir)
		return 2
	}
	sort.Strings(sumPaths)
	var (
		hdrs  []trace.Header
		parts [][]trace.Record
		sums  []node.Summary
	)
	for _, sp := range sumPaths {
		b, err := os.ReadFile(sp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdpnode:", err)
			return 2
		}
		var s node.Summary
		if err := json.Unmarshal(b, &s); err != nil {
			fmt.Fprintf(os.Stderr, "fdpnode: %s: %v\n", sp, err)
			return 2
		}
		jp := filepath.Join(dir, fmt.Sprintf("journal-%d.jsonl", s.Node))
		jf, err := os.Open(jp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdpnode:", err)
			return 2
		}
		hdr, recs, err := trace.ReadJournal(jf)
		jf.Close()
		var trunc *trace.TruncatedError
		if errors.As(err, &trunc) {
			// A torn tail means the node died mid-write; the intact prefix
			// still joins, and the verdict will flag the interruption.
			fmt.Printf("warning: %s truncated at line %d; using %d intact records (last cid %d)\n",
				jp, trunc.Line, trunc.Records, trunc.LastCID)
		} else if err != nil {
			fmt.Fprintf(os.Stderr, "fdpnode: %s: %v\n", jp, err)
			return 2
		}
		hdrs = append(hdrs, hdr)
		parts = append(parts, recs)
		sums = append(sums, s)
	}

	v, err := node.Verify(hdrs, parts, sums)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdpnode:", err)
		return 2
	}
	fmt.Printf("nodes:      %d\n", v.Nodes)
	fmt.Printf("records:    %d joined (%d sends, %d delivers, %d duplicates)\n",
		len(v.Joined.Records), v.Joined.Sends, v.Joined.Delivers, v.Joined.Duplicates)
	fmt.Printf("converged:  %v\n", v.Converged)
	for _, p := range v.Problems {
		fmt.Printf("problem:    %s\n", p)
	}
	if !v.Converged {
		return 1
	}
	return 0
}
