// Command fdpviz renders a departure run for inspection: Graphviz DOT
// snapshots of the process graph (explicit edges solid, implicit dashed, as
// in the paper's figures), the Φ potential decay as CSV, and an ASCII plot.
//
// Example:
//
//	fdpviz -n 12 -leave 0.5 -corrupt 0.8 -seed 3 -dot-every 2000
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fdp/internal/churn"
	"fdp/internal/core"
	"fdp/internal/metrics"
	"fdp/internal/obs"
	"fdp/internal/oracle"
	"fdp/internal/sim"
)

func main() {
	var (
		n        = flag.Int("n", 12, "number of processes")
		leave    = flag.Float64("leave", 0.5, "fraction leaving")
		corrupt  = flag.Float64("corrupt", 0.5, "initial corruption probability")
		seed     = flag.Int64("seed", 1, "random seed")
		outDir   = flag.String("out", ".", "output directory for DOT/CSV files")
		dotEvery = flag.Int("dot-every", 0, "emit a DOT snapshot every k steps (0 = only initial and final)")
		maxSteps = flag.Int("max-steps", 1<<21, "step budget")
		mscLines = flag.Int("msc", 0, "also write a message sequence chart of the most recent k events (0 = off)")
	)
	flag.Parse()

	s := churn.Build(churn.Config{
		N: *n, Topology: churn.TopoRandom, LeaveFraction: *leave,
		Pattern: churn.LeaveRandom,
		Corrupt: churn.Corruption{FlipBeliefs: *corrupt, RandomAnchors: *corrupt, JunkMessages: *n},
		Oracle:  oracle.Single{}, Seed: *seed,
	})

	write := func(name, content string) {
		path := filepath.Join(*outDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fdpviz:", err)
			os.Exit(2)
		}
		fmt.Println("wrote", path)
	}

	write("pg-initial.dot", s.World.PG().DOT("initial"))

	var rec *sim.Recorder
	if *mscLines > 0 {
		rec = sim.NewRecorder(*mscLines).Only(sim.EvTimeout, sim.EvSend, sim.EvDeliver, sim.EvExit, sim.EvSleep, sim.EvWake)
		rec.Attach(s.World)
	}

	// The hook fan-out lets the registry ride alongside the MSC recorder:
	// the same run yields both the event chart and the metric series.
	reg := obs.NewRegistry()
	obs.InstrumentWorld(s.World, reg)

	snapshots := 0
	res := sim.Run(s.World, sim.NewRandomScheduler(*seed, 512), sim.RunOptions{
		Variant: sim.FDP, MaxSteps: *maxSteps, CheckEvery: 5,
		Potential: core.Phi,
		OnStep: func(w *sim.World) {
			if *dotEvery > 0 && w.Steps()%*dotEvery == 0 {
				snapshots++
				write(fmt.Sprintf("pg-step%07d.dot", w.Steps()), w.PG().DOT("snapshot"))
			}
		},
	})

	write("pg-final.dot", s.World.PG().DOT("final"))

	if rec != nil {
		write("run.msc", sim.MSC(rec.Events(), s.Nodes))
	}

	series := &metrics.Series{Name: "phi"}
	for i := range res.PotentialSteps {
		series.Append(float64(res.PotentialSteps[i]), float64(res.PotentialValues[i]))
	}
	write("phi.csv", series.CSV())
	write("metrics.prom", reg.String())

	fmt.Println()
	fmt.Print(series.ASCIIPlot(64, 14))
	fmt.Printf("\nconverged=%v steps=%d messages=%d exits=%d snapshots=%d\n",
		res.Converged, res.Steps, res.Stats.Sent, res.Stats.Exits, snapshots)
	if !res.Converged {
		os.Exit(1)
	}
}
