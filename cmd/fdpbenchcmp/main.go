// Command fdpbenchcmp diffs fresh BENCH_<engine>.json bench artifacts
// against the committed baseline in bench/ and fails on p99 time-to-exit
// regressions beyond a threshold at the sizes both series cover.
//
// Example (the CI bench job):
//
//	fdpbenchcmp -baseline bench -fresh bench-out -threshold 2.0
//
// Only overlapping sizes are compared: the baseline may carry large-n
// points a quick CI run does not reproduce, and vice versa. A baseline
// point with an empty sample (p99 == 0) is skipped — there is nothing to
// regress against.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fdp"
)

// compare returns one human-readable line per overlapping size whose fresh
// p99 exceeds threshold times the baseline p99.
func compare(base, fresh fdp.BenchReport, threshold float64) []string {
	basePoints := make(map[int]fdp.BenchPoint, len(base.Series))
	for _, p := range base.Series {
		basePoints[p.Size] = p
	}
	var regressions []string
	for _, f := range fresh.Series {
		b, ok := basePoints[f.Size]
		if !ok || b.TimeToExit.P99 <= 0 {
			continue
		}
		if f.TimeToExit.P99 > threshold*b.TimeToExit.P99 {
			regressions = append(regressions, fmt.Sprintf(
				"%s n=%d: p99 %.6g %s vs baseline %.6g (%.2fx > %.2fx allowed)",
				fresh.Engine, f.Size, f.TimeToExit.P99, fresh.Unit,
				b.TimeToExit.P99, f.TimeToExit.P99/b.TimeToExit.P99, threshold))
		}
	}
	return regressions
}

func loadReport(path string) (fdp.BenchReport, error) {
	var rep fdp.BenchReport
	payload, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(payload, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func main() {
	var (
		baseline  = flag.String("baseline", "bench", "directory with the committed BENCH_<engine>.json baseline")
		fresh     = flag.String("fresh", "bench-out", "directory with the freshly generated BENCH_<engine>.json artifacts")
		threshold = flag.Float64("threshold", 2.0, "fail when a fresh p99 exceeds this multiple of the baseline p99")
	)
	flag.Parse()

	paths, err := filepath.Glob(filepath.Join(*baseline, "BENCH_*.json"))
	if err != nil || len(paths) == 0 {
		fmt.Fprintf(os.Stderr, "fdpbenchcmp: no BENCH_*.json baseline in %s\n", *baseline)
		os.Exit(2)
	}
	var regressions []string
	for _, basePath := range paths {
		base, err := loadReport(basePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdpbenchcmp:", err)
			os.Exit(2)
		}
		freshPath := filepath.Join(*fresh, filepath.Base(basePath))
		rep, err := loadReport(freshPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdpbenchcmp:", err)
			os.Exit(2)
		}
		overlaps := compare(base, rep, *threshold)
		regressions = append(regressions, overlaps...)
		fmt.Printf("%s: engine %s, %d baseline sizes, %d fresh sizes, %d regression(s)\n",
			filepath.Base(basePath), base.Engine, len(base.Series), len(rep.Series), len(overlaps))
	}
	for _, r := range regressions {
		fmt.Fprintln(os.Stderr, "REGRESSION:", r)
	}
	if len(regressions) > 0 {
		os.Exit(1)
	}
}
