package main

import (
	"strings"
	"testing"

	"fdp"
)

func report(engine string, points map[int]float64) fdp.BenchReport {
	rep := fdp.BenchReport{Name: "fdp-churn-time-to-exit", Engine: engine, Unit: "seconds"}
	for size, p99 := range points {
		rep.Series = append(rep.Series, fdp.BenchPoint{
			Size: size, TimeToExit: fdp.BenchQuantiles{Count: 1, P99: p99},
		})
	}
	return rep
}

func TestCompareFlagsOnlyRealRegressions(t *testing.T) {
	base := report("runtime", map[int]float64{8: 0.001, 64: 0.010, 100000: 30})
	fresh := report("runtime", map[int]float64{8: 0.0019, 64: 0.021, 1000: 0.5})

	got := compare(base, fresh, 2.0)
	// n=8 is within 2x, n=64 is 2.1x over, n=1000 and n=100000 do not
	// overlap — exactly one regression.
	if len(got) != 1 {
		t.Fatalf("compare flagged %d regressions, want 1: %v", len(got), got)
	}
	if !strings.Contains(got[0], "n=64") {
		t.Fatalf("regression names the wrong size: %s", got[0])
	}
}

func TestCompareSkipsEmptyBaselineSamples(t *testing.T) {
	base := report("runtime", map[int]float64{8: 0})
	fresh := report("runtime", map[int]float64{8: 5})
	if got := compare(base, fresh, 2.0); len(got) != 0 {
		t.Fatalf("empty baseline sample must not regress: %v", got)
	}
}

func TestCompareExactThresholdPasses(t *testing.T) {
	base := report("sim", map[int]float64{8: 100})
	fresh := report("sim", map[int]float64{8: 200})
	if got := compare(base, fresh, 2.0); len(got) != 0 {
		t.Fatalf("exactly 2x must pass a 2x threshold: %v", got)
	}
}
