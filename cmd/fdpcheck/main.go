// Command fdpcheck runs the bounded explicit-state model checker: it
// explores EVERY fair schedule of a small departure scenario up to a depth
// bound and verifies the Lemma 2 safety invariant in each reachable state.
// When a violation exists (e.g. with -oracle unsafe), it prints the exact
// schedule that produces it.
//
// Example:
//
//	fdpcheck -n 3 -leavers 1 -depth 14
//	fdpcheck -n 3 -leavers 1 -depth 10 -oracle unsafe
package main

import (
	"flag"
	"fmt"
	"os"

	"fdp/internal/check"
	"fdp/internal/core"
	"fdp/internal/graph"
	"fdp/internal/oracle"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

func main() {
	var (
		n       = flag.Int("n", 3, "number of processes (keep small: the state space is exponential)")
		leavers = flag.Int("leavers", 1, "number of leaving processes (placed in the middle of the line)")
		depth   = flag.Int("depth", 12, "schedule depth bound")
		states  = flag.Int("max-states", 1<<20, "state budget")
		orcName = flag.String("oracle", "single", "single|exitsafe|unsafe")
		variant = flag.String("variant", "fdp", "fdp or fsp")
		topo    = flag.String("topology", "line", "line|ring|clique")
	)
	flag.Parse()
	if *leavers >= *n {
		fmt.Fprintln(os.Stderr, "fdpcheck: need at least one staying process")
		os.Exit(2)
	}

	var orc sim.Oracle
	switch *orcName {
	case "single":
		orc = oracle.Single{}
	case "exitsafe":
		orc = oracle.ExitSafe{}
	case "unsafe":
		orc = oracle.Always(true)
	default:
		fmt.Fprintln(os.Stderr, "fdpcheck: unknown oracle", *orcName)
		os.Exit(2)
	}
	v := core.VariantFDP
	simV := sim.FDP
	if *variant == "fsp" {
		v, simV, orc = core.VariantFSP, sim.FSP, nil
	}

	space := ref.NewSpace()
	nodes := space.NewN(*n)
	var g *graph.Graph
	switch *topo {
	case "ring":
		g = graph.Ring(nodes)
	case "clique":
		g = graph.Clique(nodes)
	default:
		g = graph.Line(nodes)
	}
	// Leavers in the middle: the most dangerous placement on a line.
	leaving := ref.NewSet()
	start := (*n - *leavers) / 2
	for i := start; i < start+*leavers; i++ {
		leaving.Add(nodes[i])
	}
	w := sim.NewWorld(orc)
	procs := make(map[ref.Ref]*core.Proc, *n)
	for _, r := range nodes {
		p := core.New(v)
		procs[r] = p
		mode := sim.Staying
		if leaving.Has(r) {
			mode = sim.Leaving
		}
		w.AddProcess(r, mode, p)
	}
	for _, e := range g.Edges() {
		mode := sim.Staying
		if leaving.Has(e.To) {
			mode = sim.Leaving
		}
		procs[e.From].SetNeighbor(e.To, mode)
	}
	w.SealInitialState()

	out := check.Explore(w, check.Options{
		MaxDepth:         *depth,
		MaxStates:        *states,
		Invariant:        check.SafetyInvariant(),
		Variant:          simV,
		StopAtLegitimate: true,
	})

	fmt.Printf("topology=%s n=%d leavers=%d oracle=%s variant=%s\n",
		*topo, *n, *leavers, *orcName, *variant)
	fmt.Printf("states explored:     %d%s\n", out.StatesExplored, truncNote(out.Truncated))
	fmt.Printf("depth reached:       %d\n", out.DepthReached)
	fmt.Printf("legitimate states:   %d\n", out.LegitimateStates)
	fmt.Printf("frontier (undecided): %d\n", out.FrontierStates)
	if out.OK() {
		fmt.Println("result: SAFE on every explored schedule")
		return
	}
	fmt.Println("result: VIOLATION FOUND")
	fmt.Println(out.Violations[0])
	os.Exit(1)
}

func truncNote(t bool) string {
	if t {
		return " (TRUNCATED by -max-states)"
	}
	return ""
}
