package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fdp/internal/trace"
)

// TestSweepJournalDir smoke-tests the sweep with -journal-dir: every run
// must leave a journal named after its sweep coordinates, and each journal
// must satisfy the replay determinism contract.
func TestSweepJournalDir(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-n", "10", "-leave", "0.3", "-corrupt", "0", "-seeds", "2",
		"-topology", "line", "-journal-dir", dir,
	}, &stdout, &stderr, nil)
	if code != 0 {
		t.Fatalf("fdpsweep exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 3 { // header + 2 seeds
		t.Fatalf("expected 3 CSV lines, got %d:\n%s", len(lines), stdout.String())
	}

	for seed := 0; seed < 2; seed++ {
		name := "n10_leave0.30_corrupt0.00_seed" + string(rune('0'+seed)) + ".jsonl"
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("journal missing: %v", err)
		}
		hdr, recs, err := trace.ReadJournal(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if hdr.Engine != trace.EngineSim || len(recs) == 0 {
			t.Fatalf("%s: engine=%q with %d records", name, hdr.Engine, len(recs))
		}
		div, err := trace.VerifyReplay(hdr, recs)
		if err != nil {
			t.Fatalf("%s: replay: %v", name, err)
		}
		if div != nil {
			t.Fatalf("%s: replay diverged: %s", name, div)
		}
	}
}

// TestSweepNoJournalDir keeps the plain CSV path intact.
func TestSweepNoJournalDir(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-n", "8", "-leave", "0.25", "-corrupt", "0", "-seeds", "1", "-topology", "line"}, &stdout, &stderr, nil)
	if code != 0 {
		t.Fatalf("fdpsweep exited %d\nstderr: %s", code, stderr.String())
	}
	if !strings.HasPrefix(stdout.String(), "n,leave,corrupt,seed,") {
		t.Fatalf("CSV header missing:\n%s", stdout.String())
	}
}
