// Command fdpsweep runs parameter sweeps of the departure protocol and
// emits CSV for plotting: one row per (n, leave fraction, corruption, seed)
// with steps, messages and safety outcome.
//
// Example:
//
//	fdpsweep -n 8,16,32,64 -leave 0.25,0.5,0.75 -corrupt 0,0.5 -seeds 5 > sweep.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fdp/internal/churn"
	"fdp/internal/oracle"
	"fdp/internal/sim"
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		ns       = flag.String("n", "8,16,32", "comma-separated system sizes")
		leaves   = flag.String("leave", "0.25,0.5,0.75", "comma-separated leave fractions")
		corrupts = flag.String("corrupt", "0,0.5", "comma-separated corruption probabilities")
		seeds    = flag.Int("seeds", 3, "seeds per configuration")
		topology = flag.String("topology", "random", "line|ring|star|tree|clique|hypercube|random")
		maxSteps = flag.Int("max-steps", 1<<22, "step budget per run")
	)
	flag.Parse()

	topoMap := map[string]churn.Topology{
		"line": churn.TopoLine, "ring": churn.TopoRing, "star": churn.TopoStar,
		"tree": churn.TopoTree, "clique": churn.TopoClique,
		"hypercube": churn.TopoHypercube, "random": churn.TopoRandom,
	}
	topo, ok := topoMap[*topology]
	if !ok {
		fmt.Fprintln(os.Stderr, "fdpsweep: unknown topology", *topology)
		os.Exit(2)
	}
	sizes, err := parseInts(*ns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdpsweep:", err)
		os.Exit(2)
	}
	fracs, err := parseFloats(*leaves)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdpsweep:", err)
		os.Exit(2)
	}
	corrs, err := parseFloats(*corrupts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdpsweep:", err)
		os.Exit(2)
	}

	fmt.Println("n,leave,corrupt,seed,converged,steps,messages,exits,max_channel,safety_ok")
	bad := 0
	for _, n := range sizes {
		for _, frac := range fracs {
			for _, corr := range corrs {
				for seed := 0; seed < *seeds; seed++ {
					s := churn.Build(churn.Config{
						N: n, Topology: topo, LeaveFraction: frac,
						Pattern: churn.LeaveRandom,
						Corrupt: churn.Corruption{
							FlipBeliefs: corr, RandomAnchors: corr,
							JunkMessages: int(corr * float64(n)),
						},
						Oracle: oracle.Single{}, Seed: int64(seed),
					})
					r := sim.Run(s.World, sim.NewRandomScheduler(int64(seed), 512), sim.RunOptions{
						Variant: sim.FDP, MaxSteps: *maxSteps, CheckSafety: true,
					})
					safetyOK := r.SafetyViolation == nil
					if !r.Converged || !safetyOK {
						bad++
					}
					fmt.Printf("%d,%.2f,%.2f,%d,%v,%d,%d,%d,%d,%v\n",
						n, frac, corr, seed, r.Converged, r.Steps, r.Stats.Sent,
						r.Stats.Exits, r.Stats.MaxChannel, safetyOK)
				}
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "fdpsweep: %d run(s) failed\n", bad)
		os.Exit(1)
	}
}
