// Command fdpsweep runs parameter sweeps of the departure protocol and
// emits CSV for plotting: one row per (n, leave fraction, corruption, seed)
// with steps, messages and safety outcome.
//
// Example:
//
//	fdpsweep -n 8,16,32,64 -leave 0.25,0.5,0.75 -corrupt 0,0.5 -seeds 5 > sweep.csv
//	fdpsweep -n 16 -journal-dir sweeps/   # plus one causal journal per run
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"

	"fdp/internal/churn"
	"fdp/internal/oracle"
	"fdp/internal/sim"
	"fdp/internal/trace"
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// journalRun opens one run's causal journal in dir, named after the sweep
// coordinates so a failing CSV row maps straight to its journal, and hooks
// the writer into the world. The caller closes the file after the run.
func journalRun(dir string, cfg churn.Config, corr float64, seed int, w *sim.World) (*trace.Writer, *os.File, error) {
	name := fmt.Sprintf("n%d_leave%.2f_corrupt%.2f_seed%d.jsonl",
		cfg.N, cfg.LeaveFraction, corr, seed)
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return nil, nil, err
	}
	jw := trace.NewWriter(f, trace.Header{
		Version:  trace.Version,
		Engine:   trace.EngineSim,
		Scenario: trace.ScenarioFor(cfg, "random"),
	})
	w.AddEventHook(jw.Record)
	return jw, f, nil
}

func main() {
	// Graceful ^C: the current run stops at its next step boundary, its
	// journal closes cleanly, and the CSV emitted so far stays usable.
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "fdpsweep: interrupted, finishing current step")
		close(stop)
		<-sigc
		os.Exit(130)
	}()
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, stop))
}

func run(args []string, stdout, stderr io.Writer, stop <-chan struct{}) int {
	fs := flag.NewFlagSet("fdpsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		ns         = fs.String("n", "8,16,32", "comma-separated system sizes")
		leaves     = fs.String("leave", "0.25,0.5,0.75", "comma-separated leave fractions")
		corrupts   = fs.String("corrupt", "0,0.5", "comma-separated corruption probabilities")
		seeds      = fs.Int("seeds", 3, "seeds per configuration")
		topology   = fs.String("topology", "random", "line|ring|star|tree|clique|hypercube|random")
		maxSteps   = fs.Int("max-steps", 1<<22, "step budget per run")
		journalDir = fs.String("journal-dir", "", "write one causal event journal (JSONL) per run into this directory; inspect with fdpreplay")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	topoMap := map[string]churn.Topology{
		"line": churn.TopoLine, "ring": churn.TopoRing, "star": churn.TopoStar,
		"tree": churn.TopoTree, "clique": churn.TopoClique,
		"hypercube": churn.TopoHypercube, "random": churn.TopoRandom,
	}
	topo, ok := topoMap[*topology]
	if !ok {
		fmt.Fprintln(stderr, "fdpsweep: unknown topology", *topology)
		return 2
	}
	sizes, err := parseInts(*ns)
	if err != nil {
		fmt.Fprintln(stderr, "fdpsweep:", err)
		return 2
	}
	fracs, err := parseFloats(*leaves)
	if err != nil {
		fmt.Fprintln(stderr, "fdpsweep:", err)
		return 2
	}
	corrs, err := parseFloats(*corrupts)
	if err != nil {
		fmt.Fprintln(stderr, "fdpsweep:", err)
		return 2
	}
	if *journalDir != "" {
		if err := os.MkdirAll(*journalDir, 0o755); err != nil {
			fmt.Fprintln(stderr, "fdpsweep: -journal-dir:", err)
			return 2
		}
	}

	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}

	fmt.Fprintln(stdout, "n,leave,corrupt,seed,converged,steps,messages,exits,max_channel,safety_ok")
	bad := 0
	for _, n := range sizes {
		for _, frac := range fracs {
			for _, corr := range corrs {
				for seed := 0; seed < *seeds; seed++ {
					if stopped() {
						fmt.Fprintln(stderr, "fdpsweep: interrupted; partial CSV above")
						return 130
					}
					cfg := churn.Config{
						N: n, Topology: topo, LeaveFraction: frac,
						Pattern: churn.LeaveRandom,
						Corrupt: churn.Corruption{
							FlipBeliefs: corr, RandomAnchors: corr,
							JunkMessages: int(corr * float64(n)),
						},
						Oracle: oracle.Single{}, Seed: int64(seed),
					}
					s := churn.Build(cfg)
					var jw *trace.Writer
					var jf *os.File
					if *journalDir != "" {
						jw, jf, err = journalRun(*journalDir, cfg, corr, seed, s.World)
						if err != nil {
							fmt.Fprintln(stderr, "fdpsweep: -journal-dir:", err)
							return 2
						}
					}
					r := sim.Run(s.World, sim.NewRandomScheduler(int64(seed), 512), sim.RunOptions{
						Variant: sim.FDP, MaxSteps: *maxSteps, CheckSafety: true,
						Stop: stop,
					})
					if jw != nil {
						if err := jw.Err(); err != nil {
							jf.Close()
							fmt.Fprintln(stderr, "fdpsweep: journal write:", err)
							return 2
						}
						if err := jf.Close(); err != nil {
							fmt.Fprintln(stderr, "fdpsweep: journal write:", err)
							return 2
						}
					}
					if r.Interrupted {
						fmt.Fprintln(stderr, "fdpsweep: interrupted; partial CSV above")
						return 130
					}
					safetyOK := r.SafetyViolation == nil
					if !r.Converged || !safetyOK {
						bad++
					}
					fmt.Fprintf(stdout, "%d,%.2f,%.2f,%d,%v,%d,%d,%d,%d,%v\n",
						n, frac, corr, seed, r.Converged, r.Steps, r.Stats.Sent,
						r.Stats.Exits, r.Stats.MaxChannel, safetyOK)
				}
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "fdpsweep: %d run(s) failed\n", bad)
		return 1
	}
	return 0
}
