// Command fdpsim runs a single departure-protocol scenario and reports the
// outcome.
//
// Example:
//
//	fdpsim -n 32 -topology random -leave 0.5 -corrupt 0.5 -seed 7 -safety
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"fdp"
)

// isClosedErr recognizes the errors a server goroutine sees during a clean
// shutdown — they are not failures worth reporting.
func isClosedErr(err error) bool {
	return err == nil || errors.Is(err, http.ErrServerClosed) || errors.Is(err, net.ErrClosed)
}

var topologies = map[string]fdp.Topology{
	"line": fdp.Line, "dirline": fdp.DirectedLine, "ring": fdp.Ring,
	"star": fdp.Star, "tree": fdp.Tree, "clique": fdp.Clique,
	"hypercube": fdp.Hypercube, "random": fdp.Random,
}

var patterns = map[string]fdp.LeavePattern{
	"random": fdp.LeaveRandom, "articulation": fdp.LeaveArticulation,
	"block": fdp.LeaveBlock, "allbutone": fdp.LeaveAllButOne,
}

var oracles = map[string]fdp.OracleKind{
	"single": fdp.OracleSingle, "nidec": fdp.OracleNIDEC,
	"exitsafe": fdp.OracleExitSafe, "timeout": fdp.OracleTimeoutSingle,
	"unsafe": fdp.OracleUnsafe,
}

var schedulers = map[string]fdp.Scheduler{
	"random": fdp.SchedRandom, "rounds": fdp.SchedRounds,
	"adversarial": fdp.SchedAdversarial, "fifo": fdp.SchedFIFO,
}

func keysOf[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func main() {
	var (
		n        = flag.Int("n", 16, "number of processes")
		topo     = flag.String("topology", "random", fmt.Sprintf("initial topology %v", keysOf(topologies)))
		leave    = flag.Float64("leave", 0.5, "fraction of processes leaving")
		pattern  = flag.String("pattern", "random", fmt.Sprintf("leaver placement %v", keysOf(patterns)))
		variant  = flag.String("variant", "fdp", "fdp (exit) or fsp (sleep)")
		orc      = flag.String("oracle", "single", fmt.Sprintf("oracle %v", keysOf(oracles)))
		sched    = flag.String("scheduler", "random", fmt.Sprintf("scheduler %v", keysOf(schedulers)))
		seed     = flag.Int64("seed", 1, "random seed (runs are reproducible)")
		corrupt  = flag.Float64("corrupt", 0, "initial-state corruption probability (beliefs and anchors)")
		junk     = flag.Int("junk", 0, "junk in-flight messages injected into the initial state")
		maxSteps = flag.Int("max-steps", 1<<21, "step budget")
		safety   = flag.Bool("safety", true, "check the Lemma 2 safety invariant during the run")
		par      = flag.Bool("parallel", false, "run on the goroutine-per-process runtime instead of the simulator")
		timeout  = flag.Duration("timeout", 30*time.Second, "wall-clock budget for -parallel")
		serve    = flag.String("serve", "", "serve /metrics (Prometheus text) and /debug/pprof on this address during the run (e.g. :9090)")
		hold     = flag.Duration("hold", 0, "keep the -serve endpoint up this long after the run finishes")
		journal  = flag.String("journal", "", "write the causal event journal (JSONL) to this file; inspect it with fdpreplay")
	)
	flag.Parse()

	cfg := fdp.Config{
		N:              *n,
		Topology:       topologies[*topo],
		LeaveFraction:  *leave,
		Pattern:        patterns[*pattern],
		Oracle:         oracles[*orc],
		Scheduler:      schedulers[*sched],
		Seed:           *seed,
		MaxSteps:       *maxSteps,
		CorruptBeliefs: *corrupt,
		CorruptAnchors: *corrupt,
		JunkMessages:   *junk,
		CheckSafety:    *safety,
	}
	if *variant == "fsp" {
		cfg.Variant = fdp.FSP
	}
	if *journal != "" {
		f, err := os.Create(*journal)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdpsim: -journal:", err)
			os.Exit(2)
		}
		defer f.Close()
		cfg.Journal = f
	}
	if *serve != "" {
		cfg.Observe = fdp.NewObserver()
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdpsim: -serve:", err)
			os.Exit(2)
		}
		fmt.Printf("metrics:          http://%s/metrics (pprof at /debug/pprof/)\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, fdp.ObserveMux(cfg.Observe)); !isClosedErr(err) {
				fmt.Fprintln(os.Stderr, "fdpsim: -serve:", err)
			}
		}()
	}

	// Graceful ^C: the sequential engine stops at the next step boundary and
	// reports Interrupted; the concurrent runtime has no stop hook, so for
	// -parallel the handler flushes the journal file and exits directly.
	// A second signal force-kills either way.
	stopc := make(chan struct{})
	cfg.Stop = stopc
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "fdpsim: interrupted, winding down")
		if *par {
			if f, ok := cfg.Journal.(*os.File); ok {
				f.Sync()
			}
			os.Exit(130)
		}
		close(stopc)
		<-sigc
		os.Exit(130)
	}()

	var (
		rep fdp.Report
		err error
	)
	if *par {
		rep, err = fdp.SimulateParallel(cfg, *timeout)
	} else {
		rep, err = fdp.Simulate(cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdpsim:", err)
		os.Exit(2)
	}
	fmt.Printf("converged:        %v\n", rep.Converged)
	fmt.Printf("steps:            %d\n", rep.Steps)
	if rep.Rounds > 0 {
		fmt.Printf("rounds:           %d\n", rep.Rounds)
	}
	fmt.Printf("messages sent:    %d\n", rep.MessagesSent)
	for _, label := range keysOf(rep.MessagesByLabel) {
		fmt.Printf("  %-14s  %d\n", label+":", rep.MessagesByLabel[label])
	}
	fmt.Printf("exits:            %d\n", rep.Exits)
	fmt.Printf("max channel:      %d\n", rep.MaxChannel)
	fmt.Printf("safety violated:  %v\n", rep.SafetyViolated)
	if *serve != "" && *hold > 0 {
		fmt.Printf("holding -serve endpoint for %v\n", *hold)
		time.Sleep(*hold)
	}
	if rep.Interrupted {
		// A clean interrupt is not a failed run: the journal written so far
		// is a valid prefix (fdpreplay diagnoses where it stops).
		fmt.Println("interrupted before convergence")
		return
	}
	if !rep.Converged || rep.SafetyViolated {
		os.Exit(1)
	}
}
