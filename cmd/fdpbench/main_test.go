package main

import "testing"

func TestParseSizes(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		ok   bool
	}{
		{"", nil, true},
		{"  ", nil, true},
		{"64", []int{64}, true},
		{"1000,10000,100000", []int{1000, 10000, 100000}, true},
		{" 8 , 16 , 32 ", []int{8, 16, 32}, true},
		{"8,8", nil, false},       // not strictly increasing
		{"32,16", nil, false},     // decreasing
		{"8,,16", nil, false},     // empty field
		{"8,sixteen", nil, false}, // not an integer
		{"0", nil, false},         // non-positive
		{"-4", nil, false},
	}
	for _, c := range cases {
		got, err := parseSizes(c.in)
		if c.ok != (err == nil) {
			t.Errorf("parseSizes(%q): err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseSizes(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseSizes(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}
