// Command fdpbench runs the reproduction suite E1–E16 and prints every
// table and figure recorded in EXPERIMENTS.md.
//
// Example:
//
//	fdpbench -quick          # CI scale (seconds)
//	fdpbench                 # full scale (minutes)
//	fdpbench -only E5,E6     # a subset
//	fdpbench -only E16       # differential simulator-vs-runtime validation
//	fdpbench -quick -json    # machine-readable summary for CI
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"fdp"
)

// jsonReport is the machine-readable form of one experiment.
type jsonReport struct {
	ID     string   `json:"id"`
	Title  string   `json:"title"`
	Claim  string   `json:"claim"`
	Pass   bool     `json:"pass"`
	Tables []string `json:"tables,omitempty"`
	Notes  []string `json:"notes,omitempty"`
}

func main() {
	var (
		quick   = flag.Bool("quick", false, "run at CI scale")
		only    = flag.String("only", "", "comma-separated experiment IDs (e.g. E2,E5)")
		asJSON  = flag.Bool("json", false, "emit a JSON array instead of text tables")
		noPlots = flag.Bool("no-plots", false, "suppress ASCII plots in text mode")
	)
	flag.Parse()

	wanted := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			wanted[id] = true
		}
	}

	failures := 0
	var jsonOut []jsonReport
	for _, r := range fdp.Experiments(*quick) {
		if len(wanted) > 0 && !wanted[r.ID] {
			continue
		}
		if !r.Pass {
			failures++
		}
		if *asJSON {
			jsonOut = append(jsonOut, jsonReport{
				ID: r.ID, Title: r.Title, Claim: r.Claim, Pass: r.Pass,
				Tables: r.Tables, Notes: r.Notes,
			})
			continue
		}
		status := "PASS"
		if !r.Pass {
			status = "FAIL"
		}
		fmt.Printf("=== %s: %s [%s]\n", r.ID, r.Title, status)
		fmt.Printf("claim: %s\n\n", r.Claim)
		for _, tb := range r.Tables {
			fmt.Println(tb)
		}
		if !*noPlots {
			for _, p := range r.Plots {
				fmt.Println(p)
			}
		}
		for _, n := range r.Notes {
			fmt.Printf("note: %s\n", n)
		}
		fmt.Println()
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "fdpbench:", err)
			os.Exit(2)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "fdpbench: %d experiment(s) failed\n", failures)
		os.Exit(1)
	}
}
