// Command fdpbench runs the reproduction suite E1–E16 and prints every
// table and figure recorded in EXPERIMENTS.md.
//
// Example:
//
//	fdpbench -quick          # CI scale (seconds)
//	fdpbench                 # full scale (minutes)
//	fdpbench -only E5,E6     # a subset
//	fdpbench -only E16       # differential simulator-vs-runtime validation
//	fdpbench -quick -json    # machine-readable summary for CI
//	fdpbench -quick -bench -bench-out out/   # BENCH_<engine>.json artifacts
//	fdpbench -bench -sizes 1000,10000,100000 # large-n churn series
//	fdpbench -bench -serve :9090             # live /metrics while benching
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"

	"fdp"
)

// isClosedErr recognizes the errors a server goroutine sees during a clean
// shutdown — they are not failures worth reporting.
func isClosedErr(err error) bool {
	return err == nil || errors.Is(err, http.ErrServerClosed) || errors.Is(err, net.ErrClosed)
}

// parseSizes parses the -sizes value: a comma-separated, strictly
// increasing list of positive system sizes. An empty string selects the
// scale's default series (nil).
func parseSizes(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var sizes []int
	for _, field := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil {
			return nil, fmt.Errorf("-sizes: %q is not an integer", strings.TrimSpace(field))
		}
		if n <= 0 {
			return nil, fmt.Errorf("-sizes: size %d must be positive", n)
		}
		if len(sizes) > 0 && n <= sizes[len(sizes)-1] {
			return nil, fmt.Errorf("-sizes: %d after %d — the list must be strictly increasing", n, sizes[len(sizes)-1])
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

// writeBench runs the benchmark harness and writes one BENCH_<engine>.json
// per engine into dir.
func writeBench(quick bool, sizes []int, dir string, reg *fdp.Observer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, rep := range fdp.BenchSizes(quick, sizes, reg) {
		payload, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(dir, "BENCH_"+rep.Engine+".json")
		if err := os.WriteFile(path, append(payload, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%s, unit=%s, %d sizes)\n", path, rep.Name, rep.Unit, len(rep.Series))
	}
	return nil
}

// writeJournal records the causal event journal of one representative
// bench-scale sequential run (the largest size's first trial, mirroring
// the bench harness scenario) so a bench regression can be traced event
// by event with fdpreplay.
func writeJournal(quick bool, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	n, maxSteps := 128, 20_000_000
	if quick {
		n, maxSteps = 32, 2_000_000
	}
	_, simErr := fdp.Simulate(fdp.Config{
		N: n, Topology: fdp.Random, LeaveFraction: 0.5,
		Seed: int64(n * 1000), MaxSteps: maxSteps, Journal: f,
	})
	if err := f.Close(); err != nil {
		return err
	}
	if simErr != nil {
		return simErr
	}
	fmt.Printf("wrote %s (causal journal, n=%d)\n", path, n)
	return nil
}

// jsonReport is the machine-readable form of one experiment.
type jsonReport struct {
	ID     string   `json:"id"`
	Title  string   `json:"title"`
	Claim  string   `json:"claim"`
	Pass   bool     `json:"pass"`
	Tables []string `json:"tables,omitempty"`
	Notes  []string `json:"notes,omitempty"`
}

func main() {
	var (
		quick    = flag.Bool("quick", false, "run at CI scale")
		only     = flag.String("only", "", "comma-separated experiment IDs (e.g. E2,E5)")
		asJSON   = flag.Bool("json", false, "emit a JSON array instead of text tables")
		noPlots  = flag.Bool("no-plots", false, "suppress ASCII plots in text mode")
		bench    = flag.Bool("bench", false, "run the time-to-exit benchmark harness instead of the experiment suite")
		benchOut = flag.String("bench-out", ".", "directory for the BENCH_<engine>.json artifacts of -bench")
		sizes    = flag.String("sizes", "", "with -bench: comma-separated, strictly increasing system sizes (e.g. 1000,10000,100000); empty keeps the default series")
		serve    = flag.String("serve", "", "serve /metrics and /debug/pprof on this address while running (e.g. :9090)")
		journal  = flag.String("journal", "", "with -bench: also record the causal event journal (JSONL) of one representative bench-scale run to this file")
	)
	flag.Parse()

	// The suite has no mid-run stop hook; a graceful ^C still deserves a
	// message and a conventional exit code. Artifacts are written whole per
	// experiment, so whatever is on disk at this point is complete.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "fdpbench: interrupted")
		os.Exit(130)
	}()

	var reg *fdp.Observer
	if *serve != "" {
		reg = fdp.NewObserver()
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdpbench: -serve:", err)
			os.Exit(2)
		}
		fmt.Printf("metrics: http://%s/metrics (pprof at /debug/pprof/)\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, fdp.ObserveMux(reg)); !isClosedErr(err) {
				fmt.Fprintln(os.Stderr, "fdpbench: -serve:", err)
			}
		}()
	}
	benchSizes, err := parseSizes(*sizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdpbench:", err)
		os.Exit(2)
	}
	if benchSizes != nil && !*bench {
		fmt.Fprintln(os.Stderr, "fdpbench: -sizes requires -bench")
		os.Exit(2)
	}
	if *bench {
		if err := writeBench(*quick, benchSizes, *benchOut, reg); err != nil {
			fmt.Fprintln(os.Stderr, "fdpbench: -bench:", err)
			os.Exit(2)
		}
		if *journal != "" {
			if err := writeJournal(*quick, *journal); err != nil {
				fmt.Fprintln(os.Stderr, "fdpbench: -journal:", err)
				os.Exit(2)
			}
		}
		return
	}
	if *journal != "" {
		fmt.Fprintln(os.Stderr, "fdpbench: -journal requires -bench")
		os.Exit(2)
	}

	wanted := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			wanted[id] = true
		}
	}

	failures := 0
	var jsonOut []jsonReport
	for _, r := range fdp.Experiments(*quick) {
		if len(wanted) > 0 && !wanted[r.ID] {
			continue
		}
		if !r.Pass {
			failures++
		}
		if *asJSON {
			jsonOut = append(jsonOut, jsonReport{
				ID: r.ID, Title: r.Title, Claim: r.Claim, Pass: r.Pass,
				Tables: r.Tables, Notes: r.Notes,
			})
			continue
		}
		status := "PASS"
		if !r.Pass {
			status = "FAIL"
		}
		fmt.Printf("=== %s: %s [%s]\n", r.ID, r.Title, status)
		fmt.Printf("claim: %s\n\n", r.Claim)
		for _, tb := range r.Tables {
			fmt.Println(tb)
		}
		if !*noPlots {
			for _, p := range r.Plots {
				fmt.Println(p)
			}
		}
		for _, n := range r.Notes {
			fmt.Printf("note: %s\n", n)
		}
		fmt.Println()
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "fdpbench:", err)
			os.Exit(2)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "fdpbench: %d experiment(s) failed\n", failures)
		os.Exit(1)
	}
}
