// Command fdplint runs the fdp static-analysis suite (see
// internal/analysis/all) in one of two modes:
//
//   - Whole-program mode (the default, and what `make lint` runs):
//
//     fdplint [packages]
//
//     loads the module in dependency order via the go build machinery,
//     runs every analyzer over every package with one shared fact store,
//     and prints findings. Patterns default to ./... relative to the
//     current directory.
//
//   - Unitchecker mode, auto-detected when cmd/go invokes the binary with
//     -V=full / -flags / a .cfg argument:
//
//     go vet -vettool=bin/fdplint ./...
//
//     analyzes one compilation unit per invocation, round-tripping facts
//     through the build system's .vetx files.
//
// See DESIGN.md §9 and §14 for the invariants each analyzer enforces and
// the //fdplint:ignore escape hatch.
package main

import (
	"fmt"
	"os"
	"strings"

	"fdp/internal/analysis/all"
	"fdp/internal/analysis/program"
	"fdp/internal/analysis/unit"
)

func main() {
	if unitcheckerInvocation(os.Args[1:]) {
		unit.Main(all.Analyzers()...)
		return
	}

	res, err := program.Run(program.Options{Patterns: os.Args[1:]}, all.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdplint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range res.Diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", res.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(res.Diags) > 0 {
		os.Exit(1)
	}
}

// unitcheckerInvocation detects the go vet protocol: a -V/-flags flag or a
// *.cfg positional argument.
func unitcheckerInvocation(args []string) bool {
	for _, a := range args {
		switch {
		case a == "-flags", a == "--flags",
			a == "-V" || strings.HasPrefix(a, "-V=") || strings.HasPrefix(a, "--V="),
			strings.HasSuffix(a, ".cfg"):
			return true
		}
	}
	return false
}
