// Command fdplint is the repository's custom static analysis tool. It
// bundles the five model-discipline analyzers — refopacity, detiter,
// guardpurity, lockorder and obslock — behind the `go vet -vettool` protocol:
//
//	go build -o bin/fdplint ./cmd/fdplint
//	go vet -vettool=bin/fdplint ./...
//
// See DESIGN.md §9 for the invariants each analyzer enforces and the
// //fdplint:ignore escape hatch.
package main

import (
	"fdp/internal/analysis/detiter"
	"fdp/internal/analysis/guardpurity"
	"fdp/internal/analysis/lockorder"
	"fdp/internal/analysis/obslock"
	"fdp/internal/analysis/refopacity"
	"fdp/internal/analysis/unit"
)

func main() {
	unit.Main(
		refopacity.Analyzer,
		detiter.Analyzer,
		guardpurity.Analyzer,
		lockorder.Analyzer,
		obslock.Analyzer,
	)
}
