// Command fdpreplay inspects causal event journals recorded with the
// -journal flag of fdpsim, fdpbench or fdpsweep (see internal/trace).
//
// Modes:
//
//	fdpreplay journal.jsonl              # re-drive the recorded run, verify byte-identical
//	fdpreplay -diff a.jsonl b.jsonl      # align two journals by causal ID, report first divergence
//	fdpreplay -spans journal.jsonl       # render per-leaver departure span trees
//	fdpreplay -chrome journal.jsonl      # export Chrome trace-event JSON (Perfetto / chrome://tracing)
//	fdpreplay -join j0.jsonl j1.jsonl …  # join per-node journals into one causal order
//
// A journal whose final line was torn off mid-write (crash, SIGKILL, full
// disk) is diagnosed, not rejected: verify mode reports the truncation point
// by causal ID and fails; the inspection modes warn and work on the intact
// prefix.
//
// Exit status: 0 on success, 1 on divergence or failed verification, 2 on
// usage or I/O errors.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"fdp/internal/trace"

	// Registers the fuzzer's mutant oracles so their journals replay here
	// too — the mutation-test harness verifies its shrunk counterexamples
	// with this command.
	_ "fdp/internal/fuzz"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fdpreplay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		diff   = fs.Bool("diff", false, "align two journals by causal ID and report the first diverging event")
		strict = fs.Bool("strict", false, "with -diff: also compare timing fields (step, clock, ages), not just causal structure")
		spans  = fs.Bool("spans", false, "render per-leaver departure span trees instead of verifying")
		chrome = fs.Bool("chrome", false, "export the journal as Chrome trace-event JSON")
		join   = fs.Bool("join", false, "join per-node journals of one multi-node run into a single causal order")
		out    = fs.String("o", "", "write -chrome or -join output to this file instead of stdout")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: fdpreplay [-spans|-chrome [-o out.json]] journal.jsonl")
		fmt.Fprintln(stderr, "       fdpreplay -diff [-strict] a.jsonl b.jsonl")
		fmt.Fprintln(stderr, "       fdpreplay -join [-o joined.jsonl] journal-0.jsonl journal-1.jsonl ...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *join:
		if fs.NArg() < 2 {
			fs.Usage()
			return 2
		}
		return runJoin(fs.Args(), *out, stdout, stderr)
	case *diff:
		if fs.NArg() != 2 {
			fs.Usage()
			return 2
		}
		return runDiff(fs.Arg(0), fs.Arg(1), *strict, stdout, stderr)
	case *spans:
		if fs.NArg() != 1 {
			fs.Usage()
			return 2
		}
		return runSpans(fs.Arg(0), stdout, stderr)
	case *chrome:
		if fs.NArg() != 1 {
			fs.Usage()
			return 2
		}
		return runChrome(fs.Arg(0), *out, stdout, stderr)
	default:
		if fs.NArg() != 1 {
			fs.Usage()
			return 2
		}
		return runVerify(fs.Arg(0), stdout, stderr)
	}
}

// loadJournal reads one journal. A truncated tail (writer killed mid-line) is
// not fatal here: the caller gets the intact prefix plus the truncation
// diagnosis and decides — inspection modes warn and proceed, verification
// refuses.
func loadJournal(path string, stderr io.Writer) (trace.Header, []trace.Record, []byte, *trace.TruncatedError, bool) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "fdpreplay:", err)
		return trace.Header{}, nil, nil, nil, false
	}
	hdr, recs, err := trace.ReadJournal(bytes.NewReader(raw))
	var trunc *trace.TruncatedError
	if errors.As(err, &trunc) {
		return hdr, recs, raw, trunc, true
	}
	if err != nil {
		fmt.Fprintf(stderr, "fdpreplay: %s: %v\n", path, err)
		return trace.Header{}, nil, nil, nil, false
	}
	return hdr, recs, raw, nil, true
}

// warnTrunc reports a truncated journal on stderr for the modes that proceed
// with the intact prefix anyway.
func warnTrunc(path string, trunc *trace.TruncatedError, stderr io.Writer) {
	if trunc != nil {
		fmt.Fprintf(stderr, "fdpreplay: warning: %s truncated at line %d; continuing with %d intact records (last cid %d)\n",
			path, trunc.Line, trunc.Records, trunc.LastCID)
	}
}

// runVerify re-drives the recorded sequential run from the journal's
// scenario header and recorded schedule, then demands the regenerated
// journal be byte-identical to the recording — the replay determinism
// contract of DESIGN.md §11.
func runVerify(path string, stdout, stderr io.Writer) int {
	hdr, recs, raw, trunc, ok := loadJournal(path, stderr)
	if !ok {
		return 2
	}
	if trunc != nil {
		// A torn tail cannot verify byte-identical, but the diagnosis is the
		// useful part: how far the crashed run provably got.
		fmt.Fprintf(stdout, "journal TRUNCATED: %d intact records end at cid %d (line %d torn mid-write)\n",
			trunc.Records, trunc.LastCID, trunc.Line)
		return 1
	}
	replayed, err := trace.Replay(hdr, recs)
	if err != nil {
		fmt.Fprintf(stderr, "fdpreplay: %s: %v\n", path, err)
		return 2
	}
	if div := trace.DiffStrict(recs, replayed); div != nil {
		fmt.Fprintf(stdout, "replay DIVERGED: %s\n", div)
		return 1
	}
	var regen bytes.Buffer
	if err := trace.WriteJournal(&regen, hdr, replayed); err != nil {
		fmt.Fprintln(stderr, "fdpreplay:", err)
		return 2
	}
	if !bytes.Equal(raw, regen.Bytes()) {
		fmt.Fprintf(stdout, "replay DIVERGED: records match but serialized journal differs (%d vs %d bytes)\n",
			len(raw), regen.Len())
		return 1
	}
	fmt.Fprintf(stdout, "replay OK: %d records byte-identical (engine=%s n=%d seed=%d)\n",
		len(recs), hdr.Engine, hdr.Scenario.N, hdr.Scenario.Seed)
	return 0
}

func runDiff(pathA, pathB string, strict bool, stdout, stderr io.Writer) int {
	_, a, _, ta, ok := loadJournal(pathA, stderr)
	if !ok {
		return 2
	}
	warnTrunc(pathA, ta, stderr)
	_, b, _, tb, ok := loadJournal(pathB, stderr)
	if !ok {
		return 2
	}
	warnTrunc(pathB, tb, stderr)
	div := trace.Diff(a, b)
	if strict && div == nil {
		div = trace.DiffStrict(a, b)
	}
	if div != nil {
		fmt.Fprintf(stdout, "journals diverge: %s\n", div)
		return 1
	}
	fmt.Fprintf(stdout, "journals causally identical (%d and %d records)\n", len(a), len(b))
	return 0
}

func runSpans(path string, stdout, stderr io.Writer) int {
	_, recs, _, trunc, ok := loadJournal(path, stderr)
	if !ok {
		return 2
	}
	warnTrunc(path, trunc, stderr)
	sp := trace.BuildSpans(recs)
	fmt.Fprintf(stdout, "%d departure span(s)\n", len(sp))
	io.WriteString(stdout, trace.SpanTrees(sp))
	return 0
}

// runJoin merges the per-node journals of one multi-node run into a single
// causally ordered journal and reports cross-node invariant violations.
func runJoin(paths []string, outPath string, stdout, stderr io.Writer) int {
	hdrs := make([]trace.Header, len(paths))
	parts := make([][]trace.Record, len(paths))
	for i, p := range paths {
		hdr, recs, _, trunc, ok := loadJournal(p, stderr)
		if !ok {
			return 2
		}
		warnTrunc(p, trunc, stderr)
		hdrs[i], parts[i] = hdr, recs
	}
	j, err := trace.Join(hdrs, parts)
	if err != nil {
		fmt.Fprintln(stderr, "fdpreplay:", err)
		return 2
	}
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fmt.Fprintln(stderr, "fdpreplay:", err)
			return 2
		}
		defer f.Close()
		// The joined header keeps node 0's identity; Nodes says how many
		// journals went in.
		if err := trace.WriteJournal(f, hdrs[0], j.Records); err != nil {
			fmt.Fprintln(stderr, "fdpreplay:", err)
			return 2
		}
	}
	fmt.Fprintf(stdout, "joined %d journals: %d records, %d sends, %d delivers, %d duplicates\n",
		j.Nodes, len(j.Records), j.Sends, j.Delivers, j.Duplicates)
	for _, p := range j.Problems {
		fmt.Fprintf(stdout, "problem: %s\n", p)
	}
	if len(j.Problems) > 0 {
		return 1
	}
	return 0
}

func runChrome(path, outPath string, stdout, stderr io.Writer) int {
	hdr, recs, _, trunc, ok := loadJournal(path, stderr)
	if !ok {
		return 2
	}
	warnTrunc(path, trunc, stderr)
	w := stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fmt.Fprintln(stderr, "fdpreplay:", err)
			return 2
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteChrome(w, hdr, recs); err != nil {
		fmt.Fprintln(stderr, "fdpreplay:", err)
		return 2
	}
	return 0
}
