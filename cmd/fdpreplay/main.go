// Command fdpreplay inspects causal event journals recorded with the
// -journal flag of fdpsim, fdpbench or fdpsweep (see internal/trace).
//
// Modes:
//
//	fdpreplay journal.jsonl              # re-drive the recorded run, verify byte-identical
//	fdpreplay -diff a.jsonl b.jsonl      # align two journals by causal ID, report first divergence
//	fdpreplay -spans journal.jsonl       # render per-leaver departure span trees
//	fdpreplay -chrome journal.jsonl      # export Chrome trace-event JSON (Perfetto / chrome://tracing)
//
// Exit status: 0 on success, 1 on divergence or failed verification, 2 on
// usage or I/O errors.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"fdp/internal/trace"

	// Registers the fuzzer's mutant oracles so their journals replay here
	// too — the mutation-test harness verifies its shrunk counterexamples
	// with this command.
	_ "fdp/internal/fuzz"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fdpreplay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		diff   = fs.Bool("diff", false, "align two journals by causal ID and report the first diverging event")
		strict = fs.Bool("strict", false, "with -diff: also compare timing fields (step, clock, ages), not just causal structure")
		spans  = fs.Bool("spans", false, "render per-leaver departure span trees instead of verifying")
		chrome = fs.Bool("chrome", false, "export the journal as Chrome trace-event JSON")
		out    = fs.String("o", "", "write -chrome output to this file instead of stdout")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: fdpreplay [-spans|-chrome [-o out.json]] journal.jsonl")
		fmt.Fprintln(stderr, "       fdpreplay -diff [-strict] a.jsonl b.jsonl")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *diff:
		if fs.NArg() != 2 {
			fs.Usage()
			return 2
		}
		return runDiff(fs.Arg(0), fs.Arg(1), *strict, stdout, stderr)
	case *spans:
		if fs.NArg() != 1 {
			fs.Usage()
			return 2
		}
		return runSpans(fs.Arg(0), stdout, stderr)
	case *chrome:
		if fs.NArg() != 1 {
			fs.Usage()
			return 2
		}
		return runChrome(fs.Arg(0), *out, stdout, stderr)
	default:
		if fs.NArg() != 1 {
			fs.Usage()
			return 2
		}
		return runVerify(fs.Arg(0), stdout, stderr)
	}
}

func loadJournal(path string, stderr io.Writer) (trace.Header, []trace.Record, []byte, bool) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "fdpreplay:", err)
		return trace.Header{}, nil, nil, false
	}
	hdr, recs, err := trace.ReadJournal(bytes.NewReader(raw))
	if err != nil {
		fmt.Fprintf(stderr, "fdpreplay: %s: %v\n", path, err)
		return trace.Header{}, nil, nil, false
	}
	return hdr, recs, raw, true
}

// runVerify re-drives the recorded sequential run from the journal's
// scenario header and recorded schedule, then demands the regenerated
// journal be byte-identical to the recording — the replay determinism
// contract of DESIGN.md §11.
func runVerify(path string, stdout, stderr io.Writer) int {
	hdr, recs, raw, ok := loadJournal(path, stderr)
	if !ok {
		return 2
	}
	replayed, err := trace.Replay(hdr, recs)
	if err != nil {
		fmt.Fprintf(stderr, "fdpreplay: %s: %v\n", path, err)
		return 2
	}
	if div := trace.DiffStrict(recs, replayed); div != nil {
		fmt.Fprintf(stdout, "replay DIVERGED: %s\n", div)
		return 1
	}
	var regen bytes.Buffer
	if err := trace.WriteJournal(&regen, hdr, replayed); err != nil {
		fmt.Fprintln(stderr, "fdpreplay:", err)
		return 2
	}
	if !bytes.Equal(raw, regen.Bytes()) {
		fmt.Fprintf(stdout, "replay DIVERGED: records match but serialized journal differs (%d vs %d bytes)\n",
			len(raw), regen.Len())
		return 1
	}
	fmt.Fprintf(stdout, "replay OK: %d records byte-identical (engine=%s n=%d seed=%d)\n",
		len(recs), hdr.Engine, hdr.Scenario.N, hdr.Scenario.Seed)
	return 0
}

func runDiff(pathA, pathB string, strict bool, stdout, stderr io.Writer) int {
	_, a, _, ok := loadJournal(pathA, stderr)
	if !ok {
		return 2
	}
	_, b, _, ok := loadJournal(pathB, stderr)
	if !ok {
		return 2
	}
	div := trace.Diff(a, b)
	if strict && div == nil {
		div = trace.DiffStrict(a, b)
	}
	if div != nil {
		fmt.Fprintf(stdout, "journals diverge: %s\n", div)
		return 1
	}
	fmt.Fprintf(stdout, "journals causally identical (%d and %d records)\n", len(a), len(b))
	return 0
}

func runSpans(path string, stdout, stderr io.Writer) int {
	_, recs, _, ok := loadJournal(path, stderr)
	if !ok {
		return 2
	}
	sp := trace.BuildSpans(recs)
	fmt.Fprintf(stdout, "%d departure span(s)\n", len(sp))
	io.WriteString(stdout, trace.SpanTrees(sp))
	return 0
}

func runChrome(path, outPath string, stdout, stderr io.Writer) int {
	hdr, recs, _, ok := loadJournal(path, stderr)
	if !ok {
		return 2
	}
	w := stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fmt.Fprintln(stderr, "fdpreplay:", err)
			return 2
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteChrome(w, hdr, recs); err != nil {
		fmt.Fprintln(stderr, "fdpreplay:", err)
		return 2
	}
	return 0
}
