package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"fdp"
	"fdp/internal/sim"
	"fdp/internal/trace"
)

// Regenerate the golden journals with: go test ./cmd/fdpreplay -update
var update = flag.Bool("update", false, "regenerate the golden journals in testdata")

// goldens are the committed journals that CI holds to the byte-identical
// replay contract. Changing the causal model, the journal encoding or the
// simulator's determinism shows up here first; regenerate deliberately
// with -update and review the diff.
var goldens = []struct {
	name string
	scn  trace.Scenario
}{
	{"seq_fdp_line_n24", trace.Scenario{
		N: 24, Topology: "line", LeaveFraction: 0.3, Pattern: "random",
		Variant: "FDP", Oracle: "SINGLE", Seed: 7, Scheduler: "random",
	}},
	{"seq_fsp_ring_n16", trace.Scenario{
		N: 16, Topology: "ring", LeaveFraction: 0.5, Pattern: "random",
		Variant: "FSP", Seed: 9, Scheduler: "random",
	}},
}

func goldenPath(name string) string {
	return filepath.Join("testdata", name+".jsonl")
}

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestGoldenJournalsReplayByteIdentically is the CI gate on the replay
// determinism contract: every committed journal must re-drive to the exact
// bytes on disk.
func TestGoldenJournalsReplayByteIdentically(t *testing.T) {
	for _, g := range goldens {
		t.Run(g.name, func(t *testing.T) {
			path := goldenPath(g.name)
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if _, err := trace.RecordRun(g.scn, &buf, sim.RunOptions{MaxSteps: 200000}); err != nil {
					t.Fatalf("recording %s: %v", g.name, err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			code, out, errOut := runCLI(t, path)
			if code != 0 {
				t.Fatalf("fdpreplay %s exited %d\nstdout: %s\nstderr: %s", path, code, out, errOut)
			}
			if !strings.Contains(out, "replay OK") {
				t.Fatalf("unexpected verify output: %s", out)
			}
		})
	}
}

// TestVerifyReportsDivergence perturbs one recorded event and checks the
// verifier refuses the journal.
func TestVerifyReportsDivergence(t *testing.T) {
	hdr, recs := recordTemp(t)
	// Bump the Lamport clock of a mid-journal record: the schedule is
	// untouched, so the replay runs to completion and regenerates the
	// true event — DiffStrict must trip exactly there.
	k := len(recs) / 2
	recs[k].Clock++
	path := writeTemp(t, "perturbed.jsonl", hdr, recs)

	code, out, _ := runCLI(t, path)
	if code != 1 {
		t.Fatalf("verify of perturbed journal exited %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "DIVERGED") {
		t.Fatalf("verify output lacks divergence report: %s", out)
	}
}

// TestDiffPinpointsPerturbedRuntimeJournal is the acceptance check for
// journal alignment: a parallel-engine journal with one deliberately
// perturbed event must be aligned by causal ID to exactly that event.
func TestDiffPinpointsPerturbedRuntimeJournal(t *testing.T) {
	var buf bytes.Buffer
	rep, err := fdp.SimulateParallel(fdp.Config{
		N: 16, LeaveFraction: 0.4, Seed: 21, Journal: &buf,
	}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatal("parallel run did not converge")
	}
	hdr, recs, err := trace.ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Engine != trace.EngineRuntime {
		t.Fatalf("engine = %q, want %q", hdr.Engine, trace.EngineRuntime)
	}
	if len(recs) < 4 {
		t.Fatalf("runtime journal too small: %d records", len(recs))
	}

	pathA := writeTemp(t, "runtime_a.jsonl", hdr, recs)
	perturbed := make([]trace.Record, len(recs))
	copy(perturbed, recs)
	k := len(perturbed) / 2
	perturbed[k].Peer = "p999"
	pathB := writeTemp(t, "runtime_b.jsonl", hdr, perturbed)

	code, out, errOut := runCLI(t, "-diff", pathA, pathB)
	if code != 1 {
		t.Fatalf("-diff exited %d, want 1\nstdout: %s\nstderr: %s", code, out, errOut)
	}
	// The report must name the exact first diverging causal event.
	wantCID := "cid=" + strconv.FormatUint(recs[k].CID, 10)
	if !strings.Contains(out, "first divergence at "+wantCID) {
		t.Fatalf("-diff did not pinpoint %s:\n%s", wantCID, out)
	}
	if !strings.Contains(out, `field "peer"`) {
		t.Fatalf("-diff did not name the diverging field:\n%s", out)
	}

	// Identical journals must diff clean.
	code, out, _ = runCLI(t, "-diff", pathA, pathA)
	if code != 0 || !strings.Contains(out, "causally identical") {
		t.Fatalf("self-diff exited %d: %s", code, out)
	}
}

func TestSpansMode(t *testing.T) {
	hdr, recs := recordTemp(t)
	path := writeTemp(t, "spans.jsonl", hdr, recs)
	code, out, errOut := runCLI(t, "-spans", path)
	if code != 0 {
		t.Fatalf("-spans exited %d\nstderr: %s", code, errOut)
	}
	if !strings.Contains(out, "departure span(s)") || !strings.Contains(out, "exit") {
		t.Fatalf("-spans output unexpected:\n%.600s", out)
	}
}

func TestChromeMode(t *testing.T) {
	hdr, recs := recordTemp(t)
	path := writeTemp(t, "chrome.jsonl", hdr, recs)
	outPath := filepath.Join(t.TempDir(), "trace.json")
	code, _, errOut := runCLI(t, "-chrome", "-o", outPath, path)
	if code != 0 {
		t.Fatalf("-chrome exited %d\nstderr: %s", code, errOut)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("-chrome output is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("-chrome produced no trace events")
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCLI(t); code != 2 {
		t.Error("no arguments must exit 2")
	}
	if code, _, _ := runCLI(t, "-diff", "only-one.jsonl"); code != 2 {
		t.Error("-diff with one journal must exit 2")
	}
	if code, _, errOut := runCLI(t, filepath.Join(t.TempDir(), "missing.jsonl")); code != 2 || errOut == "" {
		t.Error("missing journal must exit 2 with a diagnostic")
	}
}

// recordTemp records a small deterministic sequential run.
func recordTemp(t *testing.T) (trace.Header, []trace.Record) {
	t.Helper()
	scn := trace.Scenario{
		N: 20, Topology: "line", LeaveFraction: 0.3, Pattern: "random",
		Variant: "FDP", Oracle: "SINGLE", Seed: 5, Scheduler: "random",
	}
	var buf bytes.Buffer
	res, err := trace.RecordRun(scn, &buf, sim.RunOptions{MaxSteps: 200000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("recording run did not converge")
	}
	hdr, recs, err := trace.ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return hdr, recs
}

func writeTemp(t *testing.T, name string, hdr trace.Header, recs []trace.Record) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	var buf bytes.Buffer
	if err := trace.WriteJournal(&buf, hdr, recs); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}
