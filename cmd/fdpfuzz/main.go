// Command fdpfuzz is the adversarial churn fuzzer (see internal/fuzz): it
// generates randomized scenarios — arbitrary topologies, targeted leave
// patterns, corruption extremes, mid-run fault-wave trains — runs each on
// both execution engines under the differential harness, and reports every
// failure: verdict disagreements, safety violations, joint non-convergence,
// panics, builder rejections.
//
//	fdpfuzz -seed 1 -runs 200                 # fixed-seed corpus sweep
//	fdpfuzz -duration 30s                     # time-bounded sweep
//	fdpfuzz -seed 1 -runs 50 -mutate          # mutation test: MUST find failures
//	fdpfuzz -seed 1 -runs 200 -out testdata   # shrink + commit fixtures
//
// Failures are delta-debugged to minimal cases (-shrink, on by default) and,
// with -out, committed as replayable journal fixtures (<name>.jsonl +
// <name>.meta.json) that fdpreplay verifies byte-identically.
//
// Exit status: 0 when no failures were found, 1 when at least one was, 2 on
// usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"fdp/internal/fuzz"
)

func main() {
	// Graceful ^C: the sweep ends after the current case and failures found
	// so far are still shrunk and written as fixtures. A second signal kills.
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "fdpfuzz: interrupted, reporting failures found so far")
		close(stop)
		<-sigc
		os.Exit(130)
	}()
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, stop))
}

func run(args []string, stdout, stderr io.Writer, stop <-chan struct{}) int {
	fs := flag.NewFlagSet("fdpfuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed     = fs.Int64("seed", 1, "generator seed (a fixed seed generates a fixed case sequence)")
		runs     = fs.Int("runs", 0, "number of cases (0: until -duration, or 64 if that is unset too)")
		duration = fs.Duration("duration", 0, "wall-clock budget (0 = unbounded)")
		maxSteps = fs.Int("maxsteps", 0, "sequential step budget per case (0 = 400000)")
		timeout  = fs.Duration("timeout", 0, "concurrent run budget per case (0 = 10s)")
		shrink   = fs.Bool("shrink", true, "delta-debug each failure to a minimal case")
		outDir   = fs.String("out", "", "write shrunk failures as journal fixtures into this directory")
		mutate   = fs.Bool("mutate", false, "inject the broken MUTANT-SINGLE oracle (mutation test: failures are expected)")
		maxFail  = fs.Int("maxfailures", 0, "stop after this many failures (0 = 8)")
		verbose  = fs.Bool("v", false, "log every case and shrink step")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: fdpfuzz [-seed N] [-runs N | -duration D] [-mutate] [-shrink] [-out dir]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return 2
	}

	opts := fuzz.Options{
		Seed:        *seed,
		Runs:        *runs,
		Duration:    *duration,
		MaxSteps:    *maxSteps,
		Timeout:     *timeout,
		Mutate:      *mutate,
		MaxFailures: *maxFail,
		Stop:        stop,
	}
	if *verbose {
		opts.Log = func(format string, args ...any) {
			fmt.Fprintf(stderr, "fdpfuzz: "+format+"\n", args...)
		}
	}

	res := fuzz.Run(opts)
	fmt.Fprintf(stdout, "fdpfuzz: seed=%d ran %d case(s), %d failure(s)\n", *seed, res.Ran, len(res.Failures))

	for i, f := range res.Failures {
		fmt.Fprintf(stdout, "failure %d: %s\n", i, f)
		c := f.Case
		if *shrink {
			shrunk, spent := fuzz.Shrink(f, opts, 0)
			c = shrunk
			fmt.Fprintf(stdout, "  shrunk (%d candidate runs): n=%d topo=%s leavers=%v strikes=%d corrupt=(%.2f,%.2f,%d)\n",
				spent, c.Scenario.N, c.Scenario.Topology, c.Scenario.LeaverIndices,
				len(c.Scenario.Strikes), c.Scenario.FlipBeliefs, c.Scenario.RandomAnchors, c.Scenario.JunkMessages)
		}
		raw, hdr, recs, err := fuzz.Journal(c, opts)
		if err != nil {
			fmt.Fprintf(stderr, "fdpfuzz: journal of failure %d: %v\n", i, err)
			continue
		}
		if f.Kind == fuzz.KindSafetySequential {
			if short, ok := fuzz.ShrinkJournal(hdr, recs); ok {
				fmt.Fprintf(stdout, "  schedule truncated: %d -> %d records\n", len(recs), len(short))
				recs = short
				if rb, err := fuzz.RewriteJournal(hdr, recs); err == nil {
					raw = rb
				}
			}
		}
		if *outDir != "" {
			meta := fuzz.Meta{
				Name: fmt.Sprintf("%s-%03d", f.Kind, i),
				Kind: f.Kind,
				Note: f.Note,
				Case: c,
			}
			if err := fuzz.WriteFixture(*outDir, meta, raw); err != nil {
				fmt.Fprintf(stderr, "fdpfuzz: %v\n", err)
			} else {
				fmt.Fprintf(stdout, "  fixture: %s/%s.jsonl (%d records)\n", *outDir, meta.Name, len(recs))
			}
		}
	}

	if len(res.Failures) > 0 {
		return 1
	}
	return 0
}
