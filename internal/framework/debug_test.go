package framework

import (
	"testing"

	"fdp/internal/core"
	"fdp/internal/oracle"
	"fdp/internal/sim"
)

// TestDebugSingleScenario is a diagnostic: one small scenario with progress
// reporting every 20k steps. Skipped unless run with -run DebugSingle.
func TestDebugSingleScenario(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	s := Build(Config{
		N: 8, Overlay: OverlayLinearize, LeaveFraction: 0.4,
		Oracle: oracle.Single{}, Seed: 0, ExtraEdges: 4,
	})
	sched := sim.NewRandomScheduler(0, 256)
	for s.World.Steps() < 400000 {
		a, ok := sched.Next(s.World)
		if !ok {
			break
		}
		s.World.Execute(a)
		if s.World.Steps()%20000 == 0 {
			st := s.World.Stats()
			t.Logf("step=%d legit=%v target=%v leavers=%d pending=%d inflight=%d phi=%d sentByLabel=%v",
				s.World.Steps(), s.World.Legitimate(sim.FDP), s.InTarget(),
				s.World.LeavingRemaining(), pendingTotal(s), st.TotalInQueue, core.Phi(s.World), st.SentByLabel)
			for _, r := range s.Nodes {
				if s.World.LifeOf(r) == sim.Gone {
					continue
				}
				wr := s.Wrappers[r]
				t.Logf("  node=%v mode=%v ch=%d mlist=%d inner=%d shed=%d anchor=%v",
					r, s.World.ModeOf(r), s.World.ChannelLen(r), wr.PendingCount(),
					len(wr.Overlay().Refs()), len(wr.Refs()), wr.Anchor())
			}
		}
		if s.World.Steps()%1000 == 0 && s.World.Legitimate(sim.FDP) && s.InTarget() {
			t.Logf("converged at step %d", s.World.Steps())
			return
		}
	}
	t.Fatalf("no convergence: legit=%v target=%v leavers=%d pending=%d",
		s.World.Legitimate(sim.FDP), s.InTarget(), s.World.LeavingRemaining(), pendingTotal(s))
}
