package framework

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fdp/internal/core"
	"fdp/internal/overlay"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// fuzzCtx tolerates anything and records nothing but send counts.
type fuzzCtx struct {
	self   ref.Ref
	mode   sim.Mode
	oracle bool
	sent   int
	exited bool
	slept  bool
}

func (c *fuzzCtx) Self() ref.Ref             { return c.self }
func (c *fuzzCtx) Mode() sim.Mode            { return c.mode }
func (c *fuzzCtx) Exit()                     { c.exited = true }
func (c *fuzzCtx) Sleep()                    { c.slept = true }
func (c *fuzzCtx) OracleSays() bool          { return c.oracle }
func (c *fuzzCtx) Send(ref.Ref, sim.Message) { c.sent++ }

// Property: feeding a wrapper arbitrary sequences of arbitrary messages
// (all labels, garbage refs, self refs, wrong modes, malformed payloads)
// never panics, never stores a self reference, and never stores ⊥.
func TestQuickWrapperRobustToArbitraryMessages(t *testing.T) {
	labels := []string{
		LabelVerify, LabelProcess, core.LabelPresent, core.LabelForward,
		overlay.LabelLink, overlay.LabelSeek, overlay.LabelWrap,
		overlay.LabelIntro, overlay.LabelProbe, overlay.LabelLvl1,
		"garbage", "",
	}
	f := func(seedRaw uint16, leavingRaw bool) bool {
		rng := rand.New(rand.NewSource(int64(seedRaw)))
		space := ref.NewSpace()
		self := space.New()
		others := space.NewN(5)
		keys := make(overlay.Keys, 6)
		keys[self] = 0
		for i, r := range others {
			keys[r] = i + 1
		}
		var inner overlay.Protocol
		switch rng.Intn(4) {
		case 0:
			inner = overlay.NewLinearize(keys)
		case 1:
			inner = overlay.NewSortRing(keys)
		case 2:
			inner = overlay.NewSkipList(keys)
		default:
			inner = overlay.NewCliqueTC()
		}
		w := New(inner, core.VariantFDP)
		mode := sim.Staying
		if leavingRaw {
			mode = sim.Leaving
		}
		ctx := &fuzzCtx{self: self, mode: mode}
		for step := 0; step < 60; step++ {
			if rng.Intn(5) == 0 {
				w.Timeout(ctx)
				continue
			}
			nrefs := rng.Intn(3)
			refs := make([]sim.RefInfo, nrefs)
			for i := range refs {
				target := others[rng.Intn(len(others))]
				if rng.Intn(5) == 0 {
					target = self // deliberately poisonous
				}
				refs[i] = sim.RefInfo{Ref: target, Mode: sim.Mode(rng.Intn(4))}
			}
			w.Deliver(ctx, sim.Message{
				Label:   labels[rng.Intn(len(labels))],
				Refs:    refs,
				Payload: rng.Intn(3),
			})
		}
		// Pending entries may legitimately carry the process's own
		// reference (P's periodic self-introduction); the overlay state,
		// the shed set and the anchor must not.
		for _, r := range w.Overlay().Refs() {
			if r == self || r.IsNil() {
				return false
			}
		}
		if w.Anchor() == self {
			return false
		}
		for _, r := range w.Refs() {
			if r.IsNil() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: a staying wrapper's anchor never survives a timeout (staying
// processes need no anchor), and a leaving wrapper never keeps P state
// after its timeout.
func TestQuickWrapperTimeoutInvariants(t *testing.T) {
	f := func(seedRaw uint16) bool {
		rng := rand.New(rand.NewSource(int64(seedRaw)))
		space := ref.NewSpace()
		self := space.New()
		others := space.NewN(4)
		keys := make(overlay.Keys, 5)
		keys[self] = 0
		for i, r := range others {
			keys[r] = i + 1
		}
		// Staying wrapper with a corrupted anchor.
		ws := New(overlay.NewLinearize(keys), core.VariantFDP)
		ws.SetAnchor(others[0], sim.Mode(rng.Intn(2)))
		ws.Timeout(&fuzzCtx{self: self, mode: sim.Staying})
		if !ws.Anchor().IsNil() {
			return false
		}
		// Leaving wrapper with P state and pending entries.
		wl := New(overlay.NewLinearize(keys), core.VariantFDP)
		lin := wl.Overlay().(*overlay.Linearize)
		lin.AddNeighbor(others[1])
		lin.AddNeighbor(others[2])
		wl.InjectPending(others[3], overlay.LabelLink, []ref.Ref{others[1]}, nil)
		wl.Timeout(&fuzzCtx{self: self, mode: sim.Leaving})
		return len(lin.Refs()) == 0 && wl.PendingCount() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// End-to-end fuzz: random framework scenarios with random corruption all
// converge with safety intact.
func TestQuickFrameworkConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("long fuzz")
	}
	f := func(seedRaw uint16) bool {
		rng := rand.New(rand.NewSource(int64(seedRaw)))
		sc := Build(Config{
			N: 6 + rng.Intn(5),
			// Clique's Θ(n²) traffic is covered by TestTheorem4AllOverlays;
			// fuzz the cheaper three for breadth at speed.
			Overlay: []OverlayKind{
				OverlayLinearize, OverlayRing, OverlaySkip,
			}[rng.Intn(3)],
			LeaveFraction:  float64(rng.Intn(50)) / 100,
			Oracle:         singleOracle{},
			Seed:           int64(seedRaw),
			ExtraEdges:     rng.Intn(6),
			CorruptAnchors: float64(rng.Intn(60)) / 100,
			JunkPending:    rng.Intn(5),
		})
		sched := sim.NewRandomScheduler(int64(seedRaw), 256)
		check := len(sc.Nodes)
		for sc.World.Steps() < 2_000_000 {
			if sc.World.Steps()%check == 0 {
				if !sc.World.RelevantComponentsIntact() {
					return false
				}
				if sc.World.Legitimate(sim.FDP) && sc.InTarget() {
					return true
				}
			}
			a, ok := sched.Next(sc.World)
			if !ok {
				break
			}
			sc.World.Execute(a)
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// singleOracle avoids an import cycle with internal/oracle in this test
// file's property (identical to oracle.Single).
type singleOracle struct{}

func (singleOracle) Name() string { return "SINGLE" }
func (singleOracle) Evaluate(w *sim.World, u ref.Ref) bool {
	pg := w.RelevantPG()
	if !pg.HasNode(u) {
		return false
	}
	return pg.Degree(u) <= 1
}
