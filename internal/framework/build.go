package framework

import (
	"fmt"
	"math/rand"

	"fdp/internal/core"
	"fdp/internal/graph"
	"fdp/internal/overlay"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// OverlayKind selects the wrapped protocol P.
type OverlayKind uint8

// Overlay kinds.
const (
	OverlayLinearize OverlayKind = iota
	OverlayRing
	OverlayClique
	OverlaySkip
)

// String names the overlay kind.
func (k OverlayKind) String() string {
	switch k {
	case OverlayLinearize:
		return "linearize"
	case OverlayRing:
		return "sortring"
	case OverlaySkip:
		return "skiplist"
	default:
		return "clique"
	}
}

// Config describes a P′ scenario: an initial topology (possibly far from
// P's target), a set of leaving processes, and optional corruption.
type Config struct {
	N             int
	Overlay       OverlayKind
	LeaveFraction float64
	Variant       core.Variant
	Oracle        sim.Oracle
	Seed          int64
	// ExtraEdges adds random edges beyond the random spanning tree of the
	// initial topology.
	ExtraEdges int
	// CorruptAnchors gives each process a random anchor with probability p.
	CorruptAnchors float64
	// JunkPending injects this many corrupted mlist entries (with random,
	// often wrong, verified modes) into random staying processes.
	JunkPending int
	// MakeOverlay, if non-nil, overrides Overlay with a custom factory
	// (e.g. the routed list of internal/app). The produced protocol must
	// accept AddNeighbor seeding.
	MakeOverlay func(keys overlay.Keys) overlay.Protocol
}

// Scenario is a built P′ world.
type Scenario struct {
	Config   Config
	Nodes    []ref.Ref
	Keys     overlay.Keys
	World    *sim.World
	Wrappers map[ref.Ref]*Wrapper
	Leaving  ref.Set
}

// Build constructs the scenario: a random weakly connected initial graph
// whose edges seed P's neighborhoods, random leavers (at least one staying
// process), and the requested corruption.
//fdp:primitive init
func Build(cfg Config) *Scenario {
	if cfg.N < 1 {
		panic(fmt.Sprintf("framework: N = %d", cfg.N))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	//fdplint:ignore refopacity scenario construction — Build mints the scenario's refs; the wrapper protocol only receives them
	space := ref.NewSpace()
	nodes := space.NewN(cfg.N)
	keys := make(overlay.Keys, cfg.N)
	for i, r := range nodes {
		keys[r] = i
	}
	g := graph.RandomConnected(nodes, cfg.ExtraEdges, rng)

	k := int(cfg.LeaveFraction*float64(cfg.N) + 0.5)
	if k > cfg.N-1 {
		k = cfg.N - 1
	}
	leaving := ref.NewSet()
	for _, i := range rng.Perm(cfg.N)[:k] {
		leaving.Add(nodes[i])
	}

	w := sim.NewWorld(cfg.Oracle)
	wrappers := make(map[ref.Ref]*Wrapper, cfg.N)
	mkOverlay := func() overlay.Protocol {
		if cfg.MakeOverlay != nil {
			return cfg.MakeOverlay(keys)
		}
		switch cfg.Overlay {
		case OverlayLinearize:
			return overlay.NewLinearize(keys)
		case OverlayRing:
			return overlay.NewSortRing(keys)
		case OverlaySkip:
			return overlay.NewSkipList(keys)
		default:
			return overlay.NewCliqueTC()
		}
	}
	type seeder interface{ AddNeighbor(ref.Ref) }
	for _, r := range nodes {
		wr := New(mkOverlay(), cfg.Variant)
		wrappers[r] = wr
		mode := sim.Staying
		if leaving.Has(r) {
			mode = sim.Leaving
		}
		w.AddProcess(r, mode, wr)
	}
	for _, e := range g.Edges() {
		wrappers[e.From].Overlay().(seeder).AddNeighbor(e.To)
	}

	// Corruption.
	for _, r := range nodes {
		if cfg.CorruptAnchors > 0 && rng.Float64() < cfg.CorruptAnchors {
			a := nodes[rng.Intn(cfg.N)]
			if a != r {
				belief := sim.Staying
				if rng.Intn(2) == 0 {
					belief = sim.Leaving
				}
				wrappers[r].SetAnchor(a, belief)
			}
		}
	}
	for i := 0; i < cfg.JunkPending; i++ {
		owner := nodes[rng.Intn(cfg.N)]
		to := nodes[rng.Intn(cfg.N)]
		carried := nodes[rng.Intn(cfg.N)]
		modes := map[ref.Ref]sim.Mode{}
		// Random pre-"verified" modes, frequently wrong.
		for _, r := range []ref.Ref{to, carried} {
			switch rng.Intn(3) {
			case 0:
				modes[r] = sim.Staying
			case 1:
				modes[r] = sim.Leaving
			}
		}
		wrappers[owner].InjectPending(to, overlay.LabelLink, []ref.Ref{carried}, modes)
	}

	w.SealInitialState()
	return &Scenario{
		Config: cfg, Nodes: nodes, Keys: keys, World: w,
		Wrappers: wrappers, Leaving: leaving,
	}
}

// StayingNodes returns the staying processes in deterministic order.
func (s *Scenario) StayingNodes() []ref.Ref {
	var out []ref.Ref
	for _, r := range s.Nodes {
		if !s.Leaving.Has(r) {
			out = append(out, r)
		}
	}
	return out
}

// InTarget reports whether the staying processes have reached P's target
// topology among themselves.
func (s *Scenario) InTarget() bool {
	return overlay.CheckTarget(s.World, s.StayingNodes())
}
