package framework

import (
	"testing"

	"fdp/internal/core"
	"fdp/internal/oracle"
	"fdp/internal/overlay"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// runToLegitAndTarget drives the scenario until the FDP legitimacy
// predicate holds AND the staying processes reach P's target topology.
func runToLegitAndTarget(t *testing.T, s *Scenario, sched sim.Scheduler, maxSteps int) int {
	t.Helper()
	variant := sim.FDP
	if s.Config.Variant == core.VariantFSP {
		variant = sim.FSP
	}
	check := len(s.Nodes)
	for s.World.Steps() < maxSteps {
		if s.World.Steps()%check == 0 {
			if !s.World.RelevantComponentsIntact() {
				t.Fatalf("SAFETY violated at step %d (seed %d)", s.World.Steps(), s.Config.Seed)
			}
			if s.World.Legitimate(variant) && s.InTarget() {
				return s.World.Steps()
			}
		}
		a, ok := sched.Next(s.World)
		if !ok {
			break
		}
		s.World.Execute(a)
	}
	if s.World.Legitimate(variant) && s.InTarget() {
		return s.World.Steps()
	}
	t.Fatalf("no convergence in %d steps (seed %d, overlay %v): legit=%v target=%v leavers-left=%d pending=%d",
		s.World.Steps(), s.Config.Seed, s.Config.Overlay,
		s.World.Legitimate(variant), s.InTarget(), s.World.LeavingRemaining(), pendingTotal(s))
	return 0
}

func pendingTotal(s *Scenario) int {
	total := 0
	for _, w := range s.Wrappers {
		total += w.PendingCount()
	}
	return total
}

// Theorem 4 for all three overlay families: P′ solves the FDP and still
// solves P's own problem (staying processes reach the target topology).
func TestTheorem4AllOverlays(t *testing.T) {
	for _, kind := range []OverlayKind{OverlayLinearize, OverlayRing, OverlaySkip, OverlayClique} {
		for seed := int64(0); seed < 3; seed++ {
			s := Build(Config{
				N: 12, Overlay: kind, LeaveFraction: 0.4,
				Oracle: oracle.Single{}, Seed: seed, ExtraEdges: 6,
			})
			steps := runToLegitAndTarget(t, s, sim.NewRandomScheduler(seed, 256), 2000000)
			if s.World.GoneCount() != s.Leaving.Len() {
				t.Fatalf("%v seed %d: %d of %d leavers gone", kind, seed,
					s.World.GoneCount(), s.Leaving.Len())
			}
			_ = steps
		}
	}
}

// Self-stabilization of P′: corrupted anchors and junk pending entries with
// wrong "verified" modes.
func TestTheorem4Corrupted(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		s := Build(Config{
			N: 10, Overlay: OverlayLinearize, LeaveFraction: 0.4,
			Oracle: oracle.Single{}, Seed: seed, ExtraEdges: 4,
			CorruptAnchors: 0.6, JunkPending: 8,
		})
		runToLegitAndTarget(t, s, sim.NewRandomScheduler(seed+100, 256), 2000000)
	}
}

// The FSP flavour of the framework: leavers hibernate instead of exiting.
func TestFrameworkFSP(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		s := Build(Config{
			N: 10, Overlay: OverlayLinearize, LeaveFraction: 0.4,
			Variant: core.VariantFSP, Seed: seed, ExtraEdges: 4,
		})
		runToLegitAndTarget(t, s, sim.NewRandomScheduler(seed, 256), 2000000)
		if s.World.GoneCount() != 0 {
			t.Fatalf("seed %d: FSP produced gone processes", seed)
		}
		hib := s.World.Hibernating()
		for _, r := range s.Nodes {
			if s.Leaving.Has(r) && !hib.Has(r) {
				t.Fatalf("seed %d: leaver %v not hibernating", seed, r)
			}
		}
	}
}

// No leavers: P′ must behave exactly like a self-stabilizing P and reach
// the target topology.
func TestFrameworkNoLeaversStillSolvesDP(t *testing.T) {
	s := Build(Config{
		N: 10, Overlay: OverlayLinearize, LeaveFraction: 0,
		Oracle: oracle.Single{}, Seed: 5, ExtraEdges: 5,
	})
	runToLegitAndTarget(t, s, sim.NewRoundScheduler(), 2000000)
}

// Under the round scheduler too (different message orderings).
func TestTheorem4RoundScheduler(t *testing.T) {
	s := Build(Config{
		N: 10, Overlay: OverlayRing, LeaveFraction: 0.3,
		Oracle: oracle.Single{}, Seed: 2, ExtraEdges: 5,
	})
	runToLegitAndTarget(t, s, sim.NewRoundScheduler(), 2000000)
}

// --- Wrapper unit behaviour -------------------------------------------

type fwCtx struct {
	self   ref.Ref
	mode   sim.Mode
	oracle bool
	sent   []struct {
		to  ref.Ref
		msg sim.Message
	}
	exited, slept bool
}

func (c *fwCtx) Self() ref.Ref    { return c.self }
func (c *fwCtx) Mode() sim.Mode   { return c.mode }
func (c *fwCtx) Exit()            { c.exited = true }
func (c *fwCtx) Sleep()           { c.slept = true }
func (c *fwCtx) OracleSays() bool { return c.oracle }
func (c *fwCtx) Send(to ref.Ref, m sim.Message) {
	c.sent = append(c.sent, struct {
		to  ref.Ref
		msg sim.Message
	}{to, m})
}

func (c *fwCtx) labelsTo(to ref.Ref, label string) int {
	n := 0
	for _, s := range c.sent {
		if s.to == to && s.msg.Label == label {
			n++
		}
	}
	return n
}

func mkKeys(nodes []ref.Ref) overlay.Keys {
	k := make(overlay.Keys, len(nodes))
	for i, r := range nodes {
		k[r] = i
	}
	return k
}

func TestPreprocessSavesAndVerifies(t *testing.T) {
	nodes := ref.NewSpace().NewN(4)
	keys := mkKeys(nodes)
	w := New(overlay.NewLinearize(keys), core.VariantFDP)
	lin := w.Overlay().(*overlay.Linearize)
	lin.AddNeighbor(nodes[1])
	lin.AddNeighbor(nodes[2])
	ctx := &fwCtx{self: nodes[0], mode: sim.Staying}
	w.Timeout(ctx) // P-timeout: linearize wants to delegate and self-introduce
	if w.PendingCount() == 0 {
		t.Fatal("P sends must be saved in mlist")
	}
	if ctx.labelsTo(nodes[1], LabelVerify)+ctx.labelsTo(nodes[2], LabelVerify) == 0 {
		t.Fatal("verify messages must go out")
	}
	// No P message may leave before verification.
	for _, s := range ctx.sent {
		if s.msg.Label == overlay.LabelLink {
			t.Fatal("unverified P message escaped preprocess")
		}
	}
}

func TestVerifyIsAnswered(t *testing.T) {
	nodes := ref.NewSpace().NewN(2)
	w := New(overlay.NewCliqueTC(), core.VariantFDP)
	ctx := &fwCtx{self: nodes[0], mode: sim.Staying}
	w.Deliver(ctx, sim.NewMessage(LabelVerify, sim.RefInfo{Ref: nodes[1], Mode: sim.Leaving}))
	if ctx.labelsTo(nodes[1], LabelProcess) != 1 {
		t.Fatal("verify must be answered with process")
	}
	// Leaving processes answer too (otherwise verification deadlocks).
	ctx2 := &fwCtx{self: nodes[0], mode: sim.Leaving}
	w2 := New(overlay.NewCliqueTC(), core.VariantFDP)
	w2.Deliver(ctx2, sim.NewMessage(LabelVerify, sim.RefInfo{Ref: nodes[1], Mode: sim.Staying}))
	if ctx2.labelsTo(nodes[1], LabelProcess) != 1 {
		t.Fatal("leaving processes must answer verify")
	}
}

func TestFlushSendsWhenAllStaying(t *testing.T) {
	nodes := ref.NewSpace().NewN(3)
	w := New(overlay.NewCliqueTC(), core.VariantFDP)
	w.InjectPending(nodes[1], overlay.LabelIntro, []ref.Ref{nodes[2]}, nil)
	ctx := &fwCtx{self: nodes[0], mode: sim.Staying}
	w.Deliver(ctx, sim.NewMessage(LabelProcess, sim.RefInfo{Ref: nodes[1], Mode: sim.Staying}))
	if w.PendingCount() != 1 {
		t.Fatal("entry must wait for all modes")
	}
	w.Deliver(ctx, sim.NewMessage(LabelProcess, sim.RefInfo{Ref: nodes[2], Mode: sim.Staying}))
	if w.PendingCount() != 0 {
		t.Fatal("fully verified staying entry must flush")
	}
	if ctx.labelsTo(nodes[1], overlay.LabelIntro) != 1 {
		t.Fatal("P message must be sent after verification")
	}
}

func TestPostprocessExcludesLeaving(t *testing.T) {
	nodes := ref.NewSpace().NewN(3)
	w := New(overlay.NewCliqueTC(), core.VariantFDP)
	cl := w.Overlay().(*overlay.CliqueTC)
	cl.AddNeighbor(nodes[2])
	w.InjectPending(nodes[1], overlay.LabelIntro, []ref.Ref{nodes[2]}, nil)
	ctx := &fwCtx{self: nodes[0], mode: sim.Staying}
	w.Deliver(ctx, sim.NewMessage(LabelProcess, sim.RefInfo{Ref: nodes[1], Mode: sim.Staying}))
	w.Deliver(ctx, sim.NewMessage(LabelProcess, sim.RefInfo{Ref: nodes[2], Mode: sim.Leaving}))
	if w.PendingCount() != 0 {
		t.Fatal("entry must postprocess")
	}
	if ctx.labelsTo(nodes[1], overlay.LabelIntro) != 0 {
		t.Fatal("message with leaving refs must not be sent")
	}
	if ctx.labelsTo(nodes[2], core.LabelForward) == 0 {
		t.Fatal("leaving ref must receive forward(u)")
	}
	for _, r := range cl.Refs() {
		if r == nodes[2] {
			t.Fatal("leaving ref must be excluded from P")
		}
	}
	// The staying target was reintegrated.
	if !has(cl.Refs(), nodes[1]) {
		t.Fatal("staying target must be reintegrated")
	}
}

func TestLeavingReceiverPresentsItself(t *testing.T) {
	nodes := ref.NewSpace().NewN(3)
	w := New(overlay.NewCliqueTC(), core.VariantFDP)
	ctx := &fwCtx{self: nodes[0], mode: sim.Leaving}
	w.Deliver(ctx, sim.Message{Label: overlay.LabelIntro, Refs: []sim.RefInfo{
		{Ref: nodes[1], Mode: sim.Staying}, {Ref: nodes[2], Mode: sim.Staying},
	}})
	if ctx.labelsTo(nodes[1], core.LabelPresent) != 1 || ctx.labelsTo(nodes[2], core.LabelPresent) != 1 {
		t.Fatal("leaving receiver must present itself to all referenced processes")
	}
	if len(w.Overlay().Refs()) != 0 {
		t.Fatal("leaving receiver must not store P references")
	}
}

func TestLeavingTimeoutDissolvesPState(t *testing.T) {
	nodes := ref.NewSpace().NewN(4)
	keys := mkKeys(nodes)
	w := New(overlay.NewLinearize(keys), core.VariantFDP)
	lin := w.Overlay().(*overlay.Linearize)
	lin.AddNeighbor(nodes[1])
	w.InjectPending(nodes[2], overlay.LabelLink, []ref.Ref{nodes[3]}, nil)
	ctx := &fwCtx{self: nodes[0], mode: sim.Leaving, oracle: true}
	w.Timeout(ctx)
	if len(lin.Refs()) != 0 || w.PendingCount() != 0 {
		t.Fatal("leaving timeout must dissolve P state")
	}
	if ctx.exited {
		t.Fatal("must not exit while references are still shed")
	}
	// All stripped refs are still reported as stored (explicit edges).
	refs := ref.NewSet(w.Refs()...)
	for _, r := range []ref.Ref{nodes[1], nodes[2], nodes[3]} {
		if !refs.Has(r) {
			t.Fatalf("shed reference %v lost from Refs()", r)
		}
	}
	// And each got a verify.
	for _, r := range []ref.Ref{nodes[1], nodes[2], nodes[3]} {
		if ctx.labelsTo(r, LabelVerify) != 1 {
			t.Fatalf("shed reference %v not verified", r)
		}
	}
}

func TestLeavingExitsWhenEmptyAndOracleTrue(t *testing.T) {
	nodes := ref.NewSpace().NewN(1)
	w := New(overlay.NewCliqueTC(), core.VariantFDP)
	ctx := &fwCtx{self: nodes[0], mode: sim.Leaving, oracle: true}
	w.Timeout(ctx)
	if !ctx.exited {
		t.Fatal("empty leaving process with oracle true must exit")
	}
}

func TestProcessAnswerRoutesShedRefs(t *testing.T) {
	nodes := ref.NewSpace().NewN(4)
	keys := mkKeys(nodes)
	w := New(overlay.NewLinearize(keys), core.VariantFDP)
	w.Overlay().(*overlay.Linearize).AddNeighbor(nodes[1])
	w.Overlay().(*overlay.Linearize).AddNeighbor(nodes[2])
	ctx := &fwCtx{self: nodes[0], mode: sim.Leaving}
	w.Timeout(ctx) // sheds both
	// First staying answer becomes the anchor.
	w.Deliver(ctx, sim.NewMessage(LabelProcess, sim.RefInfo{Ref: nodes[1], Mode: sim.Staying}))
	if w.Anchor() != nodes[1] {
		t.Fatal("first verified staying ref must become the anchor")
	}
	// Second staying answer is delegated to the anchor.
	w.Deliver(ctx, sim.NewMessage(LabelProcess, sim.RefInfo{Ref: nodes[2], Mode: sim.Staying}))
	if ctx.labelsTo(nodes[1], core.LabelForward) != 1 {
		t.Fatal("subsequent refs must be delegated to the anchor")
	}
	// A leaving answer triggers mutual shedding.
	w.Deliver(ctx, sim.NewMessage(LabelProcess, sim.RefInfo{Ref: nodes[3], Mode: sim.Leaving}))
	if ctx.labelsTo(nodes[3], core.LabelForward) != 1 {
		t.Fatal("leaving refs must get forward(u)")
	}
}

func TestWrapperBeliefsAndVariant(t *testing.T) {
	nodes := ref.NewSpace().NewN(3)
	w := New(overlay.NewCliqueTC(), core.VariantFSP)
	if w.Variant() != core.VariantFSP {
		t.Fatal("variant accessor wrong")
	}
	w.SetAnchor(nodes[1], sim.Staying)
	w.InjectPending(nodes[2], overlay.LabelIntro, nil, map[ref.Ref]sim.Mode{nodes[2]: sim.Leaving})
	bs := w.Beliefs()
	if len(bs) != 2 {
		t.Fatalf("Beliefs = %v, want anchor + 1 verified entry mode", bs)
	}
}
