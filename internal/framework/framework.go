// Package framework implements Section 4: the protocol framework P′ that
// combines an arbitrary overlay-maintenance protocol P ∈ 𝒫 with the
// departure protocol of Section 3, so that leaving processes are safely
// excluded while P keeps operating as specified for the staying processes
// (Theorem 4).
//
// The construction follows the paper:
//
//   - preprocess: whenever P wants to send v <- label(parameters), the
//     message is saved in the message list u.mlist and a verify(u) message
//     is sent to v and to every process reference in parameters. Unanswered
//     verifies are re-sent in timeout. Once every referenced process has
//     answered with a process(x) message (which carries x's true mode —
//     information about oneself is always valid), the message is either
//     sent (all staying) or handed to postprocess.
//   - postprocess: references of leaving processes are excluded from P and
//     their owners are handed our own reference instead (a Reversal, which
//     routes our reference into the leaver's anchor machinery); staying
//     references are reintegrated into P.
//   - leaving receivers: a leaving process does not execute P's actions; it
//     answers label(parameters) messages by sending present messages to the
//     processes in parameters so that references to itself disappear.
//   - every process maintains the additional anchor variable of Section 3;
//     the present/forward actions are adapted so that references exchanged
//     between staying processes are reintegrated into P rather than into a
//     separate neighborhood.
//
// A subtle point the oracle makes work: a pending mlist entry stores
// references, i.e. explicit PG edges, so SINGLE never lets a leaving
// process exit while somebody's unverified message still references it —
// verify messages therefore always reach a live process and are always
// answered. No transport-level failure detection is needed.
//
//fdp:decomposable
package framework

import (
	"fdp/internal/core"
	"fdp/internal/overlay"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// Message labels added by the framework on top of the departure protocol's
// present/forward and P's own labels.
const (
	// LabelVerify is verify(u): "tell me your mode". It carries u's
	// reference and u's true mode.
	LabelVerify = "pverify"
	// LabelProcess is process(x): the answer, carrying x's reference and
	// x's true mode.
	LabelProcess = "pprocess"
)

// entry is one saved message of P awaiting mode verification.
type entry struct {
	to      ref.Ref
	label   string
	refs    []ref.Ref
	payload any
	// modes holds the verified mode per referenced process; absent means
	// unknown (the paper's additional mode value "unknown"). Like any other
	// variable it may hold arbitrary values in the initial state.
	modes map[ref.Ref]sim.Mode
}

// every returns to plus all parameter references, deduplicated, sorted.
func (e *entry) every() []ref.Ref {
	set := ref.NewSet(e.to)
	for _, r := range e.refs {
		set.Add(r)
	}
	return set.Sorted()
}

// sameMessage reports whether two entries describe the same P message
// (target, label and reference list; payloads are not compared — periodic
// P messages are reference-driven).
func (e *entry) sameMessage(o *entry) bool {
	if e.to != o.to || e.label != o.label || len(e.refs) != len(o.refs) {
		return false
	}
	for i := range e.refs {
		if e.refs[i] != o.refs[i] {
			return false
		}
	}
	return true
}

func (e *entry) complete() bool {
	for _, r := range e.every() {
		if m, ok := e.modes[r]; !ok || m == sim.Unknown {
			return false
		}
	}
	return true
}

func (e *entry) allStaying() bool {
	for _, r := range e.every() {
		if e.modes[r] != sim.Staying {
			return false
		}
	}
	return true
}

// Wrapper is one process executing P′. It implements sim.Protocol.
type Wrapper struct {
	inner   overlay.Protocol
	variant core.Variant

	anchor     ref.Ref
	anchorMode sim.Mode

	// mlist: pending messages of P (staying processes only, but an
	// arbitrary initial state may give one to a leaving process; timeout
	// dissolves it there).
	mlist []*entry

	// shed (leaving processes): references stripped out of P awaiting mode
	// verification before being delegated to the anchor.
	shed ref.Set
}

var _ sim.Protocol = (*Wrapper)(nil)
var _ core.BeliefHolder = (*Wrapper)(nil)

// New wraps an overlay protocol instance into P′.
func New(inner overlay.Protocol, variant core.Variant) *Wrapper {
	return &Wrapper{inner: inner, variant: variant, shed: ref.NewSet()}
}

// Overlay exposes the wrapped P instance (for target-topology checks).
func (w *Wrapper) Overlay() overlay.Protocol { return w.inner }

// Variant returns the departure flavour.
func (w *Wrapper) Variant() core.Variant { return w.variant }

// SetAnchor sets the anchor variable — scenario construction only.
//fdp:primitive init
func (w *Wrapper) SetAnchor(v ref.Ref, belief sim.Mode) {
	w.anchor = v
	w.anchorMode = belief
}

// Anchor returns the anchor reference (⊥ = ref.Nil).
func (w *Wrapper) Anchor() ref.Ref { return w.anchor }

// InjectPending adds a (possibly corrupted) mlist entry — scenario
// construction only.
//fdp:primitive init
func (w *Wrapper) InjectPending(to ref.Ref, label string, refs []ref.Ref, modes map[ref.Ref]sim.Mode) {
	if modes == nil {
		modes = make(map[ref.Ref]sim.Mode)
	}
	w.mlist = append(w.mlist, &entry{to: to, label: label, refs: refs, modes: modes})
}

// PendingCount returns the number of unverified saved messages.
func (w *Wrapper) PendingCount() int { return len(w.mlist) }

// Refs implements sim.Protocol: every stored reference — P's neighborhood,
// the anchor, the shed set, and everything referenced by pending entries.
// Completeness here is what lets SINGLE protect verify round-trips.
func (w *Wrapper) Refs() []ref.Ref {
	set := ref.NewSet(w.inner.Refs()...)
	set.Add(w.anchor)
	for r := range w.shed {
		set.Add(r)
	}
	for _, e := range w.mlist {
		for _, r := range e.every() {
			set.Add(r)
		}
	}
	return set.Sorted()
}

// Beliefs implements core.BeliefHolder for the potential function: the
// anchor belief plus every verified mode in pending entries. P's own
// references carry no mode knowledge and contribute nothing.
func (w *Wrapper) Beliefs() []sim.RefInfo {
	var out []sim.RefInfo
	if !w.anchor.IsNil() {
		out = append(out, sim.RefInfo{Ref: w.anchor, Mode: w.anchorMode})
	}
	for _, e := range w.mlist {
		for _, r := range e.every() {
			if m, ok := e.modes[r]; ok {
				out = append(out, sim.RefInfo{Ref: r, Mode: m})
			}
		}
	}
	return out
}

// pctx adapts sim.Context to overlay.Context, routing P's sends through
// preprocess.
type pctx struct {
	w   *Wrapper
	ctx sim.Context
}

func (p *pctx) Self() ref.Ref { return p.ctx.Self() }

func (p *pctx) Send(to ref.Ref, label string, refs []ref.Ref, payload any) {
	p.w.preprocess(p.ctx, to, label, refs, payload)
}

// preprocess implements the paper's preprocess action: save the message and
// verify every referenced process's mode. An identical message already
// saved in mlist is not saved again (Fusion ♠ — P protocols re-send their
// periodic messages every timeout, and duplicating them in mlist while the
// first copy awaits verification would flood the system).
//fdp:primitive fusion,introduction
func (w *Wrapper) preprocess(ctx sim.Context, to ref.Ref, label string, refs []ref.Ref, payload any) {
	if to.IsNil() {
		return
	}
	e := &entry{to: to, label: label, refs: refs, payload: payload, modes: make(map[ref.Ref]sim.Mode)}
	for _, old := range w.mlist {
		if old.sameMessage(e) {
			return
		}
	}
	w.mlist = append(w.mlist, e)
	for _, r := range e.every() {
		if r == ctx.Self() {
			// A process's knowledge of its own mode is always valid — no
			// verification round-trip needed (or possible).
			e.modes[r] = ctx.Mode()
			continue
		}
		ctx.Send(r, verifyMsg(ctx))
	}
}

func verifyMsg(ctx sim.Context) sim.Message {
	return sim.NewMessage(LabelVerify, sim.RefInfo{Ref: ctx.Self(), Mode: ctx.Mode()})
}

// Timeout implements sim.Protocol.
func (w *Wrapper) Timeout(ctx sim.Context) {
	u := ctx.Self()

	// Anchor hygiene, exactly as in Algorithm 1 lines 1-3. ♥ (anchor funnels into u's own channel)
	if !w.anchor.IsNil() && w.anchorMode == sim.Leaving {
		ctx.Send(u, sim.NewMessage(core.LabelPresent, sim.RefInfo{Ref: w.anchor, Mode: w.anchorMode}))
		w.anchor = ref.Nil
	}

	if ctx.Mode() == sim.Leaving {
		w.leavingTimeout(ctx)
		return
	}
	w.stayingTimeout(ctx)
}

//fdp:primitive delegation,fusion,introduction
func (w *Wrapper) stayingTimeout(ctx sim.Context) {
	u := ctx.Self()
	// A staying process needs no anchor: reintegrate it (Algorithm 1 lines
	// 16-18, adapted: it goes back through present and thence into P).
	if !w.anchor.IsNil() {
		ctx.Send(u, sim.NewMessage(core.LabelPresent, sim.RefInfo{Ref: w.anchor, Mode: w.anchorMode}))
		w.anchor = ref.Nil
	}
	// An arbitrary initial state may have put references into shed; a
	// staying process treats them as unknown candidates for P.
	for _, r := range w.shed.Sorted() {
		w.inner.Reintegrate(&pctx{w: w, ctx: ctx}, r)
	}
	w.shed = ref.NewSet()
	// Re-send verify for every still-unknown reference of every pending
	// message ("these verify messages are resent in timeout") — one verify
	// per distinct reference, not per entry.
	unknown := ref.NewSet()
	for _, e := range w.mlist {
		for _, r := range e.every() {
			if r == ctx.Self() {
				e.modes[r] = ctx.Mode() // own mode needs no round-trip
				continue
			}
			if m, ok := e.modes[r]; !ok || m == sim.Unknown {
				unknown.Add(r)
			}
		}
	}
	for _, r := range unknown.Sorted() {
		ctx.Send(r, verifyMsg(ctx))
	}
	w.flush(ctx)
	// P-timeout: the overlay's own periodic action (self-introduction and
	// maintenance), with every send intercepted by preprocess.
	w.inner.Timeout(&pctx{w: w, ctx: ctx})
}

//fdp:primitive reversal,introduction
func (w *Wrapper) leavingTimeout(ctx sim.Context) {
	u := ctx.Self()
	// Dissolve P state: strip every reference P still holds, and every
	// reference in pending messages, into the shed set. The payloads of
	// pending messages are dropped — a leaving process does not execute P.
	for _, r := range w.inner.Refs() {
		w.inner.Exclude(r)
		if r != u && r != w.anchor {
			w.shed.Add(r)
		}
	}
	for _, e := range w.mlist {
		for _, r := range e.every() {
			if r != u && r != w.anchor {
				w.shed.Add(r)
			}
		}
	}
	w.mlist = nil

	if w.shed.Len() > 0 {
		// Verify each stripped reference's mode; the answers route them.
		for _, r := range w.shed.Sorted() {
			ctx.Send(r, verifyMsg(ctx))
		}
		if w.variant == core.VariantFSP {
			ctx.Sleep() // the pending answers will wake us
		}
		return
	}

	if w.variant == core.VariantFDP && ctx.OracleSays() {
		ctx.Exit()
		return
	}
	// Re-verify the anchor: a staying anchor that already shed us stays
	// silent; a leaving one answers with its true mode, clearing invalid
	// (e.g. mutual leaver-to-leaver) anchors.
	if !w.anchor.IsNil() {
		ctx.Send(w.anchor, sim.NewMessage(core.LabelPresent, sim.RefInfo{Ref: u, Mode: sim.Leaving}))
	}
	if w.variant == core.VariantFSP {
		ctx.Sleep()
	}
}

// flush sends or postprocesses every fully verified pending message
// (staying processes only).
//fdp:primitive delegation,reversal,fusion
func (w *Wrapper) flush(ctx sim.Context) {
	u := ctx.Self()
	kept := w.mlist[:0]
	for _, e := range w.mlist {
		if !e.complete() {
			kept = append(kept, e)
			continue
		}
		if e.allStaying() {
			ris := make([]sim.RefInfo, len(e.refs))
			for i, r := range e.refs {
				ris[i] = sim.RefInfo{Ref: r, Mode: sim.Staying}
			}
			ctx.Send(e.to, sim.Message{Label: e.label, Refs: ris, Payload: e.payload})
			continue
		}
		// postprocess: exclude the leaving and the gone, reintegrate the
		// staying.
		for _, r := range e.every() {
			if r == u {
				continue
			}
			switch e.modes[r] {
			case sim.Leaving:
				w.inner.Exclude(r)
				// Reversal ♣: hand the leaver our reference; its anchor
				// machinery will absorb it.
				ctx.Send(r, sim.NewMessage(core.LabelForward, sim.RefInfo{Ref: u, Mode: ctx.Mode()}))
			case sim.Absent:
				// The process is gone: its reference is dead weight and is
				// simply dropped from P (a gone process is removed from PG
				// with all incident edges, so no connectivity is at stake).
				w.inner.Exclude(r)
			default:
				w.inner.Reintegrate(&pctx{w: w, ctx: ctx}, r)
			}
		}
	}
	w.mlist = kept
}

// Deliver implements sim.Protocol.
func (w *Wrapper) Deliver(ctx sim.Context, msg sim.Message) {
	switch msg.Label {
	case LabelVerify:
		w.onVerify(ctx, msg)
	case LabelProcess:
		w.onProcess(ctx, msg)
	case core.LabelPresent:
		if len(msg.Refs) == 1 {
			w.onPF(ctx, msg.Refs[0], false)
		}
	case core.LabelForward:
		if len(msg.Refs) == 1 {
			w.onPF(ctx, msg.Refs[0], true)
		}
	default:
		w.onPMessage(ctx, msg)
	}
}

// onVerify answers with our true mode. The verify itself carried the
// sender's reference and true mode — free, always-valid knowledge, which we
// use to update pending entries.
//fdp:primitive introduction
func (w *Wrapper) onVerify(ctx sim.Context, msg sim.Message) {
	if len(msg.Refs) != 1 {
		return
	}
	x := msg.Refs[0]
	if x.Ref == ctx.Self() {
		return
	}
	w.learn(ctx, x)
	ctx.Send(x.Ref, sim.NewMessage(LabelProcess, sim.RefInfo{Ref: ctx.Self(), Mode: ctx.Mode()}))
}

// onProcess records the answered mode and routes accordingly.
func (w *Wrapper) onProcess(ctx sim.Context, msg sim.Message) {
	if len(msg.Refs) != 1 {
		return
	}
	v := msg.Refs[0]
	if v.Ref == ctx.Self() {
		return
	}
	w.learn(ctx, v)
}

// learn incorporates ground-truth mode knowledge about v (from a process or
// verify message, where the information is about the sender itself).
//fdp:primitive fusion,delegation,reversal
func (w *Wrapper) learn(ctx sim.Context, v sim.RefInfo) {
	u := ctx.Self()
	for _, e := range w.mlist {
		for _, r := range e.every() {
			if r == v.Ref {
				e.modes[r] = v.Mode
			}
		}
	}
	if v.Ref == w.anchor {
		w.anchorMode = v.Mode
		if v.Mode == sim.Leaving {
			w.anchor = ref.Nil
		}
	}
	if ctx.Mode() == sim.Leaving {
		// Route a shed reference now that its mode is known.
		held := w.shed.Has(v.Ref)
		w.shed.Remove(v.Ref)
		switch v.Mode {
		case sim.Staying:
			if w.anchor.IsNil() {
				w.anchor = v.Ref
				w.anchorMode = sim.Staying
			} else if v.Ref != w.anchor {
				// Delegation ♥ to the anchor.
				ctx.Send(w.anchor, sim.NewMessage(core.LabelForward, sim.RefInfo{Ref: v.Ref, Mode: v.Mode}))
			}
		case sim.Leaving:
			// Mutual shedding ♣.
			ctx.Send(v.Ref, sim.NewMessage(core.LabelForward, sim.RefInfo{Ref: u, Mode: sim.Leaving}))
		}
		_ = held
		return
	}
	// Staying process: verified-leaving references are excluded from P
	// (with the Reversal handing over our own reference); verified-staying
	// ones it may simply keep. flush() completes pending messages.
	if v.Mode == sim.Leaving {
		if has(w.inner.Refs(), v.Ref) {
			w.inner.Exclude(v.Ref)
			ctx.Send(v.Ref, sim.NewMessage(core.LabelForward, sim.RefInfo{Ref: u, Mode: sim.Staying}))
		}
	}
	w.flush(ctx)
}

func has(refs []ref.Ref, r ref.Ref) bool {
	for _, x := range refs {
		if x == r {
			return true
		}
	}
	return false
}

// onPF handles the departure protocol's present/forward actions, adapted as
// Section 4 prescribes: references exchanged between staying processes are
// reintegrated into P instead of a separate neighborhood.
//fdp:primitive fusion,delegation,reversal
func (w *Wrapper) onPF(ctx sim.Context, v sim.RefInfo, isForward bool) {
	u := ctx.Self()
	if v.Ref == u {
		return
	}
	// Anchor hygiene (Algorithms 2/3, lines 1-2).
	if v.Ref == w.anchor {
		w.anchorMode = v.Mode
		if v.Mode == sim.Leaving {
			w.anchor = ref.Nil
		}
	}
	if v.Mode == sim.Leaving {
		if ctx.Mode() == sim.Leaving {
			if isForward && !w.anchor.IsNil() {
				// Delegation ♥ (Algorithm 3 line 8).
				ctx.Send(w.anchor, sim.NewMessage(core.LabelForward, v))
				return
			}
			// Reversal ♣ (Algorithm 2 line 5 / Algorithm 3 line 6).
			ctx.Send(v.Ref, sim.NewMessage(core.LabelForward, sim.RefInfo{Ref: u, Mode: sim.Leaving}))
			return
		}
		// Staying: shed from P and reverse (Algorithm 2 lines 7-9 /
		// Algorithm 3 lines 10-12). A delegated reference (forward) must
		// always be bounced — its sender deleted its copy; an introduced
		// one (present) is bounced only if we actually stored it, so that
		// re-verifications from already-shed leavers quiesce.
		held := has(w.inner.Refs(), v.Ref) || w.shed.Has(v.Ref)
		w.inner.Exclude(v.Ref)
		w.shed.Remove(v.Ref)
		if isForward || held {
			ctx.Send(v.Ref, sim.NewMessage(core.LabelForward, sim.RefInfo{Ref: u, Mode: sim.Staying}))
		}
		return
	}
	// Claimed staying.
	if ctx.Mode() == sim.Leaving {
		if !w.anchor.IsNil() {
			if isForward {
				ctx.Send(w.anchor, sim.NewMessage(core.LabelForward, v)) // ♥
			} else {
				ctx.Send(v.Ref, sim.NewMessage(core.LabelForward, sim.RefInfo{Ref: u, Mode: sim.Leaving})) // ♣
			}
			return
		}
		w.anchor = v.Ref // ♠ adopt
		w.anchorMode = sim.Staying
		return
	}
	// Staying-to-staying: into P (the Section 4 adaptation).
	w.inner.Reintegrate(&pctx{w: w, ctx: ctx}, v.Ref)
}

// Undeliverable implements sim.UndeliverableHandler: a message to a gone
// process bounced. Only verify messages matter — every other message the
// wrapper addresses to a possibly-gone process carries nothing but the
// sender's own reference, so dropping it loses nothing. A bounced verify
// means the awaited answer will never come: record the target as Absent in
// every pending entry, drop it from the shed set and from P, and clear it
// as anchor.
func (w *Wrapper) Undeliverable(ctx sim.Context, to ref.Ref, msg sim.Message) {
	if msg.Label != LabelVerify {
		return
	}
	for _, e := range w.mlist {
		for _, r := range e.every() {
			if r == to {
				e.modes[r] = sim.Absent // ♠ belief update on an already-saved entry
			}
		}
	}
	w.shed.Remove(to) // reference to an absent process: no PG edge to keep (fdp:primitive)
	w.inner.Exclude(to)
	if w.anchor == to {
		w.anchor = ref.Nil // absent anchor (fdp:primitive)
	}
	if ctx.Mode() == sim.Staying {
		w.flush(ctx)
	}
}

// onPMessage handles a message of P itself.
func (w *Wrapper) onPMessage(ctx sim.Context, msg sim.Message) {
	u := ctx.Self()
	if ctx.Mode() == sim.Leaving {
		// A leaving process does not execute P's action; it presents itself
		// to every referenced process so references to it disappear.
		for _, ri := range msg.Refs {
			if ri.Ref != u {
				ctx.Send(ri.Ref, sim.NewMessage(core.LabelPresent, sim.RefInfo{Ref: u, Mode: sim.Leaving})) // ♦ presents its own reference
			}
		}
		return
	}
	refs := make([]ref.Ref, 0, len(msg.Refs))
	for _, ri := range msg.Refs {
		refs = append(refs, ri.Ref)
	}
	w.inner.Deliver(&pctx{w: w, ctx: ctx}, msg.Label, refs, msg.Payload)
}
