package fuzz

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"fdp/internal/churn"
	"fdp/internal/trace"
)

// testOptions keeps per-case budgets small enough for CI while matching the
// settings the committed fixtures were recorded with.
func testOptions() Options {
	return Options{Timeout: 5 * time.Second}
}

// Every committed fixture must replay byte-identically: the journal verifies
// against itself, and re-recording the fixture's scenario under the current
// code reproduces the committed bytes exactly.
func TestFixturesReplayByteIdentically(t *testing.T) {
	fixtures, err := LoadFixtures("testdata")
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) == 0 {
		t.Fatal("no fixtures committed under testdata/")
	}
	for _, fx := range fixtures {
		t.Run(fx.Meta.Name, func(t *testing.T) {
			if div, err := trace.VerifyReplay(fx.Header, fx.Records); err != nil || div != nil {
				t.Fatalf("journal does not replay byte-identically: div=%v err=%v", div, err)
			}
			raw, hdr, recs, err := Journal(fx.Meta.Case, testOptions())
			if err != nil {
				t.Fatal(err)
			}
			if fx.Meta.Kind == KindSafetySequential && fx.Meta.Case.Scenario.Oracle == (MutantSingle{}).Name() {
				if short, ok := ShrinkJournal(hdr, recs); ok {
					if raw, err = RewriteJournal(hdr, short); err != nil {
						t.Fatal(err)
					}
				}
			}
			if !bytes.Equal(raw, fx.Raw) {
				t.Fatalf("re-recording the fixture scenario produced different bytes (%d vs %d)", len(raw), len(fx.Raw))
			}
		})
	}
}

// The fixtures for fixed bugs must pass on both engines now; the mutation
// anchor must keep failing, or the fuzzer has lost its ability to detect a
// real guard bug.
func TestFixtureCasesClassify(t *testing.T) {
	fixtures, err := LoadFixtures("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, fx := range fixtures {
		t.Run(fx.Meta.Name, func(t *testing.T) {
			f := Execute(fx.Meta.Case, testOptions())
			mutant := fx.Meta.Case.Scenario.Oracle == (MutantSingle{}).Name()
			switch {
			case mutant && f == nil:
				t.Fatal("the broken MUTANT-SINGLE oracle no longer produces a failure")
			case mutant && f.Kind != KindSafetySequential:
				t.Fatalf("mutation anchor classified %s, want %s", f.Kind, KindSafetySequential)
			case !mutant && f != nil:
				t.Fatalf("fixed bug regressed: %s", f)
			}
		})
	}
}

// The mutation-test harness end to end: a fuzzing run over the seeded corpus
// with the broken oracle injected must find a failure deterministically,
// shrink it to a no-larger case that still fails, and record a journal whose
// replay is byte-identical and still violates Lemma 2.
func TestMutationHarness(t *testing.T) {
	opts := testOptions()
	opts.Seed = 1
	opts.Runs = 10
	opts.Mutate = true
	opts.MaxFailures = 1
	res := Run(opts)
	if len(res.Failures) == 0 {
		t.Fatalf("mutation run found no failures in %d cases", res.Ran)
	}
	f := res.Failures[0]
	if f.Kind != KindSafetySequential {
		t.Fatalf("mutant failure classified %s, want %s", f.Kind, KindSafetySequential)
	}

	shrunk, _ := Shrink(f, opts, 0)
	if shrunk.Scenario.N > f.Case.Scenario.N {
		t.Fatalf("shrinking grew the case: n=%d from n=%d", shrunk.Scenario.N, f.Case.Scenario.N)
	}
	if again := Execute(shrunk, opts); again == nil {
		t.Fatal("shrunk case no longer fails")
	}

	_, hdr, recs, err := Journal(shrunk, opts)
	if err != nil {
		t.Fatal(err)
	}
	if div, err := trace.VerifyReplay(hdr, recs); err != nil || div != nil {
		t.Fatalf("shrunk journal does not replay byte-identically: div=%v err=%v", div, err)
	}
	// ShrinkJournal returns the minimal violating prefix; ok only reports
	// whether truncation shortened anything — a journal that already ends at
	// the violating step is returned unchanged.
	short, _ := ShrinkJournal(hdr, recs)
	if len(short) > len(recs) {
		t.Fatalf("journal shrink grew the journal: %d from %d", len(short), len(recs))
	}
	scn, _, err := trace.ReplayWorld(hdr, short)
	if err != nil {
		t.Fatal(err)
	}
	if scn.World.RelevantComponentsIntact() {
		t.Fatal("truncated journal no longer violates Lemma 2")
	}
}

// A short fresh-fuzz smoke pass over the seeded corpus: the first cases of
// seed 1 must all pass on both engines.
func TestFuzzSmoke(t *testing.T) {
	opts := testOptions()
	opts.Seed = 1
	opts.Runs = 6
	res := Run(opts)
	if res.Ran != 6 {
		t.Fatalf("ran %d cases, want 6", res.Ran)
	}
	for _, f := range res.Failures {
		t.Errorf("unexpected failure: %s", f)
	}
}

// Generate's contract: every case it draws is buildable.
func TestGenerateAlwaysBuildable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		c := Generate(rng)
		cfg, err := c.Scenario.ChurnConfig()
		if err != nil {
			t.Fatalf("case %d: %v (%+v)", i, err, c.Scenario)
		}
		if _, err := churn.TryBuild(cfg); err != nil {
			t.Fatalf("case %d: %v (%+v)", i, err, c.Scenario)
		}
	}
}
