package fuzz

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"fdp/internal/diffval"
	"fdp/internal/trace"
)

// livelockCase seeds the canonical liveness bug: MUTANT-SINGLE-NEVER denies
// every exit, so the protocol keeps delegating and re-asking forever —
// messages flow, grants never come, nobody settles. The dual of the
// MUTANT-SINGLE safety anchor (which grants too much), it anchors the
// watchdog the same way: a watchdog that cannot classify this livelock
// cannot be trusted to explain a real stuck run.
func livelockCase(seed int64) Case {
	return Case{Scenario: trace.Scenario{
		N: 8, Topology: "line", LeaveFraction: 0.5, Pattern: "random",
		Variant: "FDP", Oracle: MutantSingleNever{}.Name(),
		Seed: seed, Scheduler: "random",
	}}
}

func livelockConfig(t *testing.T, c Case) diffval.Config {
	t.Helper()
	cfg, err := c.diffConfig(Options{MaxSteps: 20000, Timeout: 3 * time.Second})
	if err != nil {
		t.Fatalf("diffConfig: %v", err)
	}
	// Tight windows so the stall is classified well inside the budget, and
	// a ring big enough that the sequential snapshot stays a complete
	// (replayable) prefix.
	cfg.StallSteps = 1500
	cfg.StallWindow = 200 * time.Millisecond
	cfg.FlightK = 1 << 16
	return cfg
}

// TestWatchdogClassifiesSeededLivelock re-injects the liveness mutant and
// demands the full observability chain: both engines stall, the watchdog
// calls it a livelock (not starvation, not a bare deadline), the verdict
// carries window evidence, and the sequential flight dump is a complete
// journal fragment that satisfies the byte-identical replay contract —
// exactly what fdpreplay needs to step through the stuck run.
func TestWatchdogClassifiesSeededLivelock(t *testing.T) {
	c := livelockCase(23)
	v := diffval.Run(livelockConfig(t, c), c.Scenario.Seed)

	if v.Sequential.Converged || v.Concurrent.Converged {
		t.Fatalf("never-granting oracle converged: seq=%+v conc=%+v", v.Sequential, v.Concurrent)
	}
	if v.Sequential.SafetyViolated || v.Concurrent.SafetyViolated {
		t.Fatal("liveness mutant violated safety — it must only deny")
	}
	if v.Sequential.Stall != "livelock" {
		t.Fatalf("sequential stall = %q, want livelock", v.Sequential.Stall)
	}
	if v.Concurrent.Stall != "livelock" {
		t.Fatalf("concurrent stall = %q, want livelock", v.Concurrent.Stall)
	}

	rep := v.SequentialStall
	if rep == nil {
		t.Fatal("no sequential stall report")
	}
	if rep.Verdict.WindowDenials == 0 || rep.Verdict.WindowGrants != 0 {
		t.Fatalf("verdict evidence inconsistent with a livelock: %s", rep.Verdict)
	}
	if rep.Verdict.LeaversRemaining == 0 {
		t.Fatalf("livelock verdict with no leavers remaining: %s", rep.Verdict)
	}
	if len(rep.Flight) == 0 {
		t.Fatal("stall report carries no flight records")
	}
	if rep.Spans == "" {
		t.Fatal("stall report carries no departure span trees")
	}
	if !rep.Complete {
		t.Fatalf("flight ring wrapped (%d records) — FlightK too small for the stall window", len(rep.Flight))
	}
	if rep.Header.Engine != trace.EngineSim || rep.Header.Scenario.Oracle != (MutantSingleNever{}).Name() {
		t.Fatalf("flight header does not name the run: %+v", rep.Header)
	}
	div, err := trace.VerifyReplay(rep.Header, rep.Flight)
	if err != nil {
		t.Fatalf("VerifyReplay on flight dump: %v", err)
	}
	if div != nil {
		t.Fatalf("flight dump diverged under replay: %v", div)
	}

	crep := v.ConcurrentStall
	if crep == nil {
		t.Fatal("no concurrent stall report")
	}
	if crep.Verdict.Kind.String() != "livelock" || len(crep.Flight) == 0 {
		t.Fatalf("concurrent report incomplete: kind=%v flight=%d", crep.Verdict.Kind, len(crep.Flight))
	}

	// The fuzzer's classifier surfaces the diagnosis in its failure note.
	f := classify(c, v)
	if f == nil || f.Kind != KindNoConvergence {
		t.Fatalf("classify = %+v, want no-convergence", f)
	}
	if !strings.Contains(f.Note, "sequential=livelock") {
		t.Fatalf("failure note %q does not carry the watchdog diagnosis", f.Note)
	}
}

// TestWatchdogLivelockDeterministic: the sequential side of the seeded
// livelock is a deterministic schedule, so two runs must produce identical
// flight dumps — the property that makes a stall fragment a shareable,
// re-runnable bug report.
func TestWatchdogLivelockDeterministic(t *testing.T) {
	c := livelockCase(23)
	v1 := diffval.Run(livelockConfig(t, c), c.Scenario.Seed)
	v2 := diffval.Run(livelockConfig(t, c), c.Scenario.Seed)
	r1, r2 := v1.SequentialStall, v2.SequentialStall
	if r1 == nil || r2 == nil {
		t.Fatal("missing sequential stall report")
	}
	if r1.Verdict != r2.Verdict {
		t.Fatalf("verdicts differ across identical runs:\n %s\n %s", r1.Verdict, r2.Verdict)
	}
	if !reflect.DeepEqual(r1.Flight, r2.Flight) {
		t.Fatalf("flight dumps differ across identical runs (%d vs %d records)", len(r1.Flight), len(r2.Flight))
	}
}
