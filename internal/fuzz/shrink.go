package fuzz

import (
	"bytes"
	"reflect"

	"fdp/internal/churn"
	"fdp/internal/diffval"
	"fdp/internal/sim"
	"fdp/internal/trace"
)

// Shrink delta-debugs a failing case to a smaller one that still fails,
// returning the minimized case and the number of candidate executions spent.
// "Still fails" accepts ANY failure kind: a shrink step that turns a
// disagreement into a plain sequential safety violation is progress, not a
// different bug.
//
// Sequential-side failures (safety-sequential, no-convergence, build-error)
// are re-checked with the sequential engine only, which keeps shrinking fast
// — a candidate that stops failing sequentially is simply rejected. Failures
// that need both engines (disagreement, concurrent safety, panic) pay for
// the full differential run per candidate.
func Shrink(f *Failure, opts Options, budget int) (Case, int) {
	if budget <= 0 {
		budget = 120
	}
	spent := 0
	interesting := stillFails(f.Kind, opts, &spent, &budget)

	c := f.Case
	for round := 0; round < 4; round++ {
		improved := false

		// Drop the whole wave train, then individual waves.
		if len(c.Scenario.Strikes) > 0 {
			cand := c
			cand.Scenario.Strikes = nil
			if interesting(cand) {
				c, improved = cand, true
			}
		}
		for i := len(c.Scenario.Strikes) - 1; i >= 0; i-- {
			cand := c
			cand.Scenario.Strikes = append(append([]trace.StrikeSpec{},
				c.Scenario.Strikes[:i]...), c.Scenario.Strikes[i+1:]...)
			if interesting(cand) {
				c, improved = cand, true
			}
		}

		// Zero each corruption knob.
		for _, zero := range []func(*trace.Scenario){
			func(s *trace.Scenario) { s.FlipBeliefs = 0 },
			func(s *trace.Scenario) { s.RandomAnchors = 0 },
			func(s *trace.Scenario) { s.JunkMessages = 0 },
			func(s *trace.Scenario) { s.AsleepLeavers = 0 },
		} {
			cand := c
			zero(&cand.Scenario)
			if !reflect.DeepEqual(cand.Scenario, c.Scenario) && interesting(cand) {
				c, improved = cand, true
			}
		}

		// Collapse to a single component, the simplest scheduler, the
		// simplest topology.
		for _, simplify := range []func(*trace.Scenario){
			func(s *trace.Scenario) { s.Components = 0 },
			func(s *trace.Scenario) { s.Scheduler = "fifo" },
			func(s *trace.Scenario) { s.Topology = churn.TopoLine.String() },
		} {
			cand := c
			simplify(&cand.Scenario)
			if !reflect.DeepEqual(cand.Scenario, c.Scenario) && interesting(cand) {
				c, improved = cand, true
			}
		}

		// Halve the system until it stops failing.
		for c.Scenario.N > 2 {
			cand := c
			cand.Scenario.N = c.Scenario.N / 2
			if cand.Scenario.N < 2 {
				cand.Scenario.N = 2
			}
			cand.Scenario.LeaverIndices = trimIndices(c.Scenario.LeaverIndices, cand.Scenario.N)
			if len(c.Scenario.LeaverIndices) > 0 && len(cand.Scenario.LeaverIndices) == 0 {
				break
			}
			if !interesting(cand) {
				break
			}
			c, improved = cand, true
		}

		// Pin the leaver set to explicit indices, then drop leavers one at a
		// time. Pinning skips the pattern's rng draws, so the corruption
		// stream shifts — the candidate is re-run and only accepted if it
		// still fails.
		if len(c.Scenario.LeaverIndices) == 0 {
			if idx := leaversOf(c); len(idx) > 0 {
				cand := c
				cand.Scenario.LeaverIndices = idx
				if interesting(cand) {
					c, improved = cand, true
				}
			}
		}
		for i := len(c.Scenario.LeaverIndices) - 1; i >= 0 && len(c.Scenario.LeaverIndices) > 1; i-- {
			cand := c
			cand.Scenario.LeaverIndices = append(append([]int{},
				c.Scenario.LeaverIndices[:i]...), c.Scenario.LeaverIndices[i+1:]...)
			if interesting(cand) {
				c, improved = cand, true
			}
		}

		if !improved || budget <= 0 {
			break
		}
	}
	return c, spent
}

// stillFails builds the candidate-acceptance predicate for a failure kind.
func stillFails(kind string, opts Options, spent, budget *int) func(Case) bool {
	sequentialOnly := kind == KindSafetySequential || kind == KindNoConvergence || kind == KindBuildError
	return func(cand Case) bool {
		if *budget <= 0 {
			return false
		}
		*budget--
		*spent++
		if sequentialOnly {
			cfg, err := cand.diffConfig(opts)
			if err != nil {
				// A candidate the builder rejects is progress only when the
				// bug being shrunk IS a builder rejection; for safety or
				// convergence failures it is a different (invalid) case.
				return kind == KindBuildError
			}
			if _, err := churn.TryBuild(cfg.Scenario); err != nil {
				return kind == KindBuildError
			}
			if kind == KindBuildError {
				return false // builds fine now: the rejection is gone
			}
			out := diffval.SequentialOutcome(cfg, cand.Scenario.Seed)
			return out.SafetyViolated || !out.Converged
		}
		return Execute(cand, opts) != nil
	}
}

// trimIndices keeps the leaver indices still in range after halving.
func trimIndices(idx []int, n int) []int {
	var out []int
	for _, i := range idx {
		if i < n {
			out = append(out, i)
		}
	}
	return out
}

// leaversOf materializes the pattern-drawn leaver set of a case as explicit
// node indices, so the shrinker can drop leavers individually.
func leaversOf(c Case) []int {
	cfg, err := c.Scenario.ChurnConfig()
	if err != nil {
		return nil
	}
	s, err := churn.TryBuild(cfg)
	if err != nil {
		return nil
	}
	return s.LeaverIndexes()
}

// Journal records the sequential run of a case as a replayable journal and
// returns its bytes alongside the parsed form. The journal's header carries
// every fired wave at the step it actually struck, so trace.VerifyReplay on
// the returned parts is the byte-identical reproduction check fdpreplay
// applies to committed fixtures.
func Journal(c Case, opts Options) ([]byte, trace.Header, []trace.Record, error) {
	cfg, err := c.diffConfig(opts)
	if err != nil {
		return nil, trace.Header{}, nil, err
	}
	if _, err := churn.TryBuild(cfg.Scenario); err != nil {
		return nil, trace.Header{}, nil, err
	}
	var buf bytes.Buffer
	cfg.Journal = &buf
	diffval.SequentialOutcome(cfg, c.Scenario.Seed)
	hdr, recs, err := trace.ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return nil, trace.Header{}, nil, err
	}
	return buf.Bytes(), hdr, recs, nil
}

// RewriteJournal re-serializes a (possibly truncated) journal to the byte
// form fixtures are committed in.
func RewriteJournal(hdr trace.Header, recs []trace.Record) ([]byte, error) {
	var buf bytes.Buffer
	if err := trace.WriteJournal(&buf, hdr, recs); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ShrinkJournal truncates a sequential-safety journal to the shortest
// schedule prefix that still violates Lemma 2, using binary search: once a
// relevant process is disconnected it stays disconnected (references spread
// only by copy-store-send), so the violating prefix set is upward closed.
// The truncated journal replays byte-identically by construction — replay of
// a prefix schedule is the prefix of the replay. Returns the (possibly
// shortened) records and whether truncation applied.
func ShrinkJournal(hdr trace.Header, recs []trace.Record) ([]trace.Record, bool) {
	violates := func(rs []trace.Record) bool {
		scn, _, err := trace.ReplayWorld(hdr, rs)
		if err != nil || scn == nil {
			return false
		}
		return !scn.World.RelevantComponentsIntact()
	}
	if !violates(recs) {
		return recs, false
	}
	bounds := actionBoundaries(recs)
	lo, hi := 0, len(bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if violates(recs[:bounds[mid]]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo >= len(bounds) {
		return recs, false
	}
	return recs[:bounds[lo]], bounds[lo] < len(recs)
}

// actionBoundaries returns, for each schedule action in the record stream,
// the record index just past the action and its consequence records — the
// positions a journal may be truncated at without splitting an atomic step.
func actionBoundaries(recs []trace.Record) []int {
	isAction := func(r trace.Record) bool {
		k, ok := kindOf(r)
		return ok && (k == sim.EvTimeout || k == sim.EvDeliver)
	}
	var bounds []int
	for i := range recs {
		if isAction(recs[i]) && i > 0 {
			bounds = append(bounds, i)
		}
	}
	bounds = append(bounds, len(recs))
	return bounds
}

func kindOf(r trace.Record) (sim.EventKind, bool) {
	for k := 0; k < sim.NumEventKinds; k++ {
		if sim.EventKind(k).String() == r.Kind {
			return sim.EventKind(k), true
		}
	}
	return 0, false
}
