// Package fuzz is the adversarial schedule fuzzer: it generates randomized
// churn scenarios — arbitrary topologies (including the skip-graph-like,
// de Bruijn and random-regular families), targeted leave patterns (cut
// vertices, whole neighborhoods, contiguous blocks), corruption extremes,
// and mid-run fault-wave trains with message duplication — runs each case on
// BOTH execution engines through the differential harness (diffval), and
// classifies any failure: verdict disagreement, safety violation on either
// engine, joint non-convergence, a panic, or a scenario the builder rejects.
//
// Every failing case is a plain-data trace.Scenario, so it can be shrunk
// (see Shrink) by delta-debugging the scenario itself — dropping fault
// waves, zeroing corruption knobs, halving the topology, pinning and then
// dropping individual leavers — and, for sequential failures, truncating the
// recorded schedule to the shortest violating prefix (ShrinkJournal). The
// shrunk case's sequential run is committed as a byte-identical replayable
// journal under testdata/, which fdpreplay and the regression tests replay
// forever after.
package fuzz

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"fdp/internal/churn"
	"fdp/internal/core"
	"fdp/internal/diffval"
	"fdp/internal/faults"
	"fdp/internal/trace"
)

// Failure kinds, ordered roughly by severity.
const (
	// KindSafetySequential: the sequential engine violated Lemma 2.
	KindSafetySequential = "safety-sequential"
	// KindSafetyConcurrent: the concurrent engine violated Lemma 2.
	KindSafetyConcurrent = "safety-concurrent"
	// KindDisagreement: the engines classified the outcome differently.
	KindDisagreement = "disagreement"
	// KindNoConvergence: both engines agree the run never became legitimate.
	KindNoConvergence = "no-convergence"
	// KindPanic: an engine panicked while executing the case.
	KindPanic = "panic"
	// KindBuildError: the scenario builder rejected a case the generator
	// considered well-formed (a churn builder bug, not a generator bug).
	KindBuildError = "build-error"
)

// Case is one generated adversarial scenario: a plain-data trace.Scenario
// (so cases serialize into fixture metadata and journal headers verbatim)
// whose Strikes carry the requested fault-wave train.
type Case struct {
	Scenario trace.Scenario `json:"scenario"`
}

// Failure is one classified fuzzing failure.
type Failure struct {
	Kind    string          `json:"kind"`
	Case    Case            `json:"case"`
	Note    string          `json:"note,omitempty"`
	Verdict diffval.Verdict `json:"-"`
}

func (f *Failure) String() string {
	return fmt.Sprintf("%s: n=%d topo=%s pattern=%s variant=%s oracle=%s sched=%s seed=%d strikes=%d %s",
		f.Kind, f.Case.Scenario.N, f.Case.Scenario.Topology, f.Case.Scenario.Pattern,
		f.Case.Scenario.Variant, f.Case.Scenario.Oracle, f.Case.Scenario.Scheduler,
		f.Case.Scenario.Seed, len(f.Case.Scenario.Strikes), f.Note)
}

// Options tunes a fuzzing run.
type Options struct {
	// Seed seeds the case generator; a given (Seed, Runs, Mutate) triple
	// always generates the same case sequence.
	Seed int64
	// Runs bounds the number of cases (0 = until Duration expires; if both
	// are zero, 64 cases).
	Runs int
	// Duration bounds the wall-clock fuzzing time (0 = unbounded).
	Duration time.Duration
	// MaxSteps bounds each sequential run (0 = diffval's 400000 default).
	MaxSteps int
	// Timeout bounds each concurrent run (0 = 10s; diffval's own default is
	// larger than a fuzzing loop wants).
	Timeout time.Duration
	// Poll is the concurrent legitimacy-polling interval (0 = 1ms).
	Poll time.Duration
	// Mutate injects the deliberately broken MUTANT-SINGLE oracle into every
	// generated case — the mutation-test harness proving the fuzzer detects
	// and shrinks a real guard bug.
	Mutate bool
	// MaxFailures stops the run early once this many failures are collected
	// (0 = 8).
	MaxFailures int
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
	// Stop, when non-nil, ends the sweep after the current case once it
	// closes. Failures found so far are still reported (and shrunk).
	Stop <-chan struct{}
}

func (o Options) timeout() time.Duration {
	if o.Timeout <= 0 {
		return 10 * time.Second
	}
	return o.Timeout
}

func (o Options) maxFailures() int {
	if o.MaxFailures <= 0 {
		return 8
	}
	return o.MaxFailures
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// Result summarizes a fuzzing run.
type Result struct {
	Ran      int
	Failures []*Failure
}

// Generate draws one adversarial case from rng. Cases are always
// buildable by contract (e.g. hypercubes only at powers of two) — a case the
// builder rejects anyway is a churn bug and classified KindBuildError.
func Generate(rng *rand.Rand) Case {
	topos := churn.Topologies()
	topo := topos[rng.Intn(len(topos))]
	n := 2 + rng.Intn(15)
	if topo == churn.TopoHypercube {
		n = 1 << (1 + rng.Intn(3))
	}
	pats := churn.Patterns()
	s := trace.Scenario{
		N:             n,
		Topology:      topo.String(),
		Pattern:       pats[rng.Intn(len(pats))].String(),
		LeaveFraction: 0.1 + 0.8*rng.Float64(),
		Seed:          rng.Int63(),
		Scheduler:     []string{"random", "fifo", "rounds", "adversarial"}[rng.Intn(4)],
	}
	if rng.Intn(4) == 0 {
		s.Variant = core.VariantFSP.String()
	} else {
		s.Variant = core.VariantFDP.String()
		s.Oracle = []string{"SINGLE", "NIDEC", "EXITSAFE"}[rng.Intn(3)]
	}
	// Corruption in three regimes: clean, moderate, extreme.
	switch rng.Intn(3) {
	case 1:
		s.FlipBeliefs = rng.Float64()
		s.RandomAnchors = rng.Float64()
		s.JunkMessages = rng.Intn(8)
	case 2:
		s.FlipBeliefs = 1
		s.RandomAnchors = 1
		s.JunkMessages = 16 + rng.Intn(48)
	}
	// Separate initial components exercise the per-component safety seal.
	// Hypercubes are excluded: the per-component size would leave the
	// power-of-two contract.
	if n >= 6 && topo != churn.TopoHypercube && rng.Intn(4) == 0 {
		s.Components = 2
	}
	// A wave train of 0..2 mid-run strikes, ascending.
	for w, nw := 0, rng.Intn(3); w < nw; w++ {
		s.Strikes = append(s.Strikes, trace.StrikeSpec{
			After:             20 + rng.Intn(480),
			FlipBeliefs:       rng.Float64(),
			ScrambleAnchors:   rng.Float64(),
			JunkMessages:      rng.Intn(12),
			DuplicateMessages: rng.Intn(6),
		})
	}
	sort.Slice(s.Strikes, func(i, j int) bool { return s.Strikes[i].After < s.Strikes[j].After })
	return Case{Scenario: s}
}

// diffConfig lowers a case to the differential harness's configuration.
func (c Case) diffConfig(opts Options) (diffval.Config, error) {
	scn, err := c.Scenario.ChurnConfig()
	if err != nil {
		return diffval.Config{}, err
	}
	waves := make([]faults.Wave, 0, len(c.Scenario.Strikes))
	for _, sp := range c.Scenario.Strikes {
		waves = append(waves, sp.Wave())
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 400000 // diffval's own default; mirrored for the watchdog window
	}
	return diffval.Config{
		Scenario:  scn,
		Waves:     waves,
		Scheduler: c.Scenario.Scheduler,
		MaxSteps:  opts.MaxSteps,
		Timeout:   opts.timeout(),
		Poll:      opts.Poll,
		// The liveness watchdog rides along on every case, so a case that
		// burns its budget reports *why* (livelock / starvation / quiescent)
		// instead of a bare deadline. Eight windows per budget keeps the
		// check overhead negligible while catching a stall well before the
		// budget expires.
		StallSteps:  maxSteps / 8,
		StallWindow: opts.timeout() / 8,
	}, nil
}

// Execute runs one case on both engines and classifies the outcome. A nil
// return means the case passed. Panics anywhere in the engines are caught
// and classified KindPanic.
func Execute(c Case, opts Options) (f *Failure) {
	defer func() {
		if r := recover(); r != nil {
			f = &Failure{Kind: KindPanic, Case: c, Note: fmt.Sprintf("panic: %v", r)}
		}
	}()
	cfg, err := c.diffConfig(opts)
	if err != nil {
		return &Failure{Kind: KindBuildError, Case: c, Note: err.Error()}
	}
	if _, err := churn.TryBuild(cfg.Scenario); err != nil {
		return &Failure{Kind: KindBuildError, Case: c, Note: err.Error()}
	}
	v := diffval.Run(cfg, c.Scenario.Seed)
	return classify(c, v)
}

func classify(c Case, v diffval.Verdict) *Failure {
	switch {
	case v.Sequential.SafetyViolated:
		return &Failure{Kind: KindSafetySequential, Case: c, Verdict: v,
			Note: fmt.Sprintf("sequential Lemma 2 violation after %d steps", v.Sequential.Steps)}
	case v.Concurrent.SafetyViolated:
		return &Failure{Kind: KindSafetyConcurrent, Case: c, Verdict: v,
			Note: fmt.Sprintf("concurrent Lemma 2 violation after %d events", v.Concurrent.Steps)}
	case !v.Agree():
		return &Failure{Kind: KindDisagreement, Case: c, Verdict: v,
			Note: fmt.Sprintf("sequential %+v vs concurrent %+v", v.Sequential, v.Concurrent)}
	case !v.Sequential.Converged:
		note := fmt.Sprintf("both engines stalled (%d steps)", v.Sequential.Steps)
		if v.Sequential.Stall != "" || v.Concurrent.Stall != "" {
			// The watchdog saw the stall happen: say what shape it had
			// instead of a bare deadline (see obs.StallKind).
			note = fmt.Sprintf("both engines stalled (%d steps; watchdog: sequential=%s concurrent=%s)",
				v.Sequential.Steps, orNone(v.Sequential.Stall), orNone(v.Concurrent.Stall))
		}
		return &Failure{Kind: KindNoConvergence, Case: c, Verdict: v, Note: note}
	}
	return nil
}

// orNone renders an absent stall classification explicitly.
func orNone(kind string) string {
	if kind == "" {
		return "none"
	}
	return kind
}

// Run drives the fuzzing loop: generate, execute, collect failures.
func Run(opts Options) Result {
	rng := rand.New(rand.NewSource(opts.Seed))
	runs := opts.Runs
	if runs <= 0 && opts.Duration <= 0 {
		runs = 64
	}
	var deadline time.Time
	if opts.Duration > 0 {
		deadline = time.Now().Add(opts.Duration)
	}
	res := Result{}
	for i := 0; runs <= 0 || i < runs; i++ {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break
		}
		if opts.Stop != nil {
			select {
			case <-opts.Stop:
				return res
			default:
			}
		}
		c := Generate(rng)
		if opts.Mutate {
			c.Scenario.Variant = core.VariantFDP.String()
			c.Scenario.Oracle = MutantSingle{}.Name()
		}
		res.Ran++
		if f := Execute(c, opts); f != nil {
			opts.logf("case %d FAILED: %s", i, f)
			res.Failures = append(res.Failures, f)
			if len(res.Failures) >= opts.maxFailures() {
				break
			}
		} else if (i+1)%25 == 0 {
			opts.logf("%d cases, %d failures", i+1, len(res.Failures))
		}
	}
	return res
}
