package fuzz

import (
	"fdp/internal/ref"
	"fdp/internal/sim"
	"fdp/internal/trace"
)

// MutantSingle is a deliberately broken SINGLE oracle: the guard is loosened
// from degree <= 1 to degree <= 2, so a leaving process may exit while still
// bridging two other relevant processes — exactly the disconnection Lemma 2
// forbids. It exists for the mutation-test harness: a fuzzer that cannot
// find, shrink and replay the failure this mutant plants cannot be trusted
// to find real guard bugs either.
type MutantSingle struct{}

// Name returns "MUTANT-SINGLE".
func (MutantSingle) Name() string { return "MUTANT-SINGLE" }

// Evaluate implements sim.Oracle with the broken guard.
func (MutantSingle) Evaluate(w *sim.World, u ref.Ref) bool {
	deg, relevant := w.RelevantDegree(u)
	return relevant && deg <= 2
}

// JudgeDegree gives the concurrent runtime's incremental-degree fast path
// the same broken guard, so the mutant breaks both engines identically.
func (MutantSingle) JudgeDegree(deg int) bool { return deg <= 2 }

// The mutant registers itself so journals recorded under it replay — the
// shrunk counterexample of a mutation run is verified with the same
// byte-identical replay check as a real fixture.
func init() {
	trace.RegisterOracle(MutantSingle{}.Name(), func() sim.Oracle { return MutantSingle{} })
}
