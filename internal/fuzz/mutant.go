package fuzz

import (
	"fdp/internal/ref"
	"fdp/internal/sim"
	"fdp/internal/trace"
)

// MutantSingle is a deliberately broken SINGLE oracle: the guard is loosened
// from degree <= 1 to degree <= 2, so a leaving process may exit while still
// bridging two other relevant processes — exactly the disconnection Lemma 2
// forbids. It exists for the mutation-test harness: a fuzzer that cannot
// find, shrink and replay the failure this mutant plants cannot be trusted
// to find real guard bugs either.
type MutantSingle struct{}

// Name returns "MUTANT-SINGLE".
func (MutantSingle) Name() string { return "MUTANT-SINGLE" }

// Evaluate implements sim.Oracle with the broken guard.
func (MutantSingle) Evaluate(w *sim.World, u ref.Ref) bool {
	deg, relevant := w.RelevantDegree(u)
	return relevant && deg <= 2
}

// JudgeDegree gives the concurrent runtime's incremental-degree fast path
// the same broken guard, so the mutant breaks both engines identically.
func (MutantSingle) JudgeDegree(deg int) bool { return deg <= 2 }

// MutantSingleNever is the liveness dual of MutantSingle: the guard is
// tightened to never grant, so every departure spins forever — the exact
// livelock shape the watchdog (DESIGN.md §16) must classify. MutantSingle
// plants a Lemma 2 (safety) bug; this mutant plants a Lemma 3 (liveness)
// one. It seeds the deterministic watchdog test: under it, messages keep
// flowing, the oracle keeps denying, and no leaver ever settles.
type MutantSingleNever struct{}

// Name returns "MUTANT-SINGLE-NEVER".
func (MutantSingleNever) Name() string { return "MUTANT-SINGLE-NEVER" }

// Evaluate implements sim.Oracle: no exit is ever granted.
func (MutantSingleNever) Evaluate(*sim.World, ref.Ref) bool { return false }

// JudgeDegree denies on the concurrent runtime's incremental-degree fast
// path too, so the livelock reproduces identically on both engines.
func (MutantSingleNever) JudgeDegree(int) bool { return false }

// The mutants register themselves so journals recorded under them replay —
// the shrunk counterexample of a mutation run (and the watchdog's flight-
// recorder fragment) is verified with the same byte-identical replay check
// as a real fixture.
func init() {
	trace.RegisterOracle(MutantSingle{}.Name(), func() sim.Oracle { return MutantSingle{} })
	trace.RegisterOracle(MutantSingleNever{}.Name(), func() sim.Oracle { return MutantSingleNever{} })
}
