package fuzz

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"fdp/internal/trace"
)

// Meta is the sidecar description committed next to a fixture journal: what
// bug the journal reproduces and the shrunk case that records it.
type Meta struct {
	// Name is the fixture's base name (files <Name>.jsonl + <Name>.meta.json).
	Name string `json:"name"`
	// Kind is the original failure classification (Kind* constants).
	Kind string `json:"kind"`
	// Note describes the bug and, once fixed, the fix the fixture guards.
	Note string `json:"note,omitempty"`
	// Case is the shrunk failing case.
	Case Case `json:"case"`
}

// Fixture is one loaded regression fixture: its metadata and its journal.
type Fixture struct {
	Meta    Meta
	Raw     []byte
	Header  trace.Header
	Records []trace.Record
}

// WriteFixture commits a shrunk counterexample: the journal bytes as
// <name>.jsonl and the metadata as <name>.meta.json in dir.
func WriteFixture(dir string, meta Meta, journal []byte) error {
	if meta.Name == "" {
		return fmt.Errorf("fuzz: fixture needs a name")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, meta.Name+".jsonl"), journal, 0o644); err != nil {
		return err
	}
	mb, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, meta.Name+".meta.json"), append(mb, '\n'), 0o644)
}

// LoadFixtures reads every committed fixture in dir, sorted by name. A
// journal without metadata (or vice versa) is an error — fixtures travel in
// pairs.
func LoadFixtures(dir string) ([]Fixture, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if n := e.Name(); strings.HasSuffix(n, ".jsonl") {
			names = append(names, strings.TrimSuffix(n, ".jsonl"))
		}
	}
	sort.Strings(names)
	out := make([]Fixture, 0, len(names))
	for _, name := range names {
		raw, err := os.ReadFile(filepath.Join(dir, name+".jsonl"))
		if err != nil {
			return nil, err
		}
		hdr, recs, err := trace.ReadJournal(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("fuzz: fixture %s: %w", name, err)
		}
		mb, err := os.ReadFile(filepath.Join(dir, name+".meta.json"))
		if err != nil {
			return nil, fmt.Errorf("fuzz: fixture %s has no metadata: %w", name, err)
		}
		var meta Meta
		if err := json.Unmarshal(mb, &meta); err != nil {
			return nil, fmt.Errorf("fuzz: fixture %s: bad metadata: %w", name, err)
		}
		out = append(out, Fixture{Meta: meta, Raw: raw, Header: hdr, Records: recs})
	}
	return out, nil
}
