package fuzz

import (
	"encoding/json"
	"os"
	"testing"

	"fdp/internal/trace"
)

// fixtureCases are the shrunk counterexamples of every bug the seeded fuzz
// corpus has found, kept as plain scenarios so the journals under testdata/
// can be regenerated (FDPFUZZ_REGEN=1 go test -run TestRegenerateFixtures)
// whenever the journal format changes. Each Note documents the pre-fix
// failure the fixture guards against; the committed journal is the recorded
// sequential run of the scenario under the FIXED code, which the regression
// tests replay byte-identically.
var fixtureCases = []Meta{
	{
		Name: "dead-anchor-delegation",
		Kind: KindSafetySequential,
		Note: "Pre-fix: a leaver anchored at a process that exited kept delegating " +
			"forward(v) into the void; the drop burned the last copy of v's reference " +
			"and split the relevant component (Lemma 2 violation at step 104, EXITSAFE " +
			"+ adversarial schedule). Fixed by core.Proc.Undeliverable: a bounced " +
			"delegation recovers its reference and clears the dead anchor.",
		Case: mustCase(`{"n":8,"topology":"hypercube","leave":0.37545201418108853,"pattern":"all-but-one","variant":"FDP","oracle":"EXITSAFE","seed":2333511498762714912,"scheduler":"adversarial","flip_beliefs":1,"random_anchors":1,"junk_messages":45}`),
	},
	{
		Name: "nidec-rounds-livelock",
		Kind: KindDisagreement,
		Note: "Pre-fix: under the rounds scheduler the leaver's unpaced anchor " +
			"re-verification kept one present(u) in flight at every NIDEC query, so the " +
			"sequential engine livelocked (400k steps) while the concurrent engine " +
			"converged in 9 events. Fixed twice over: two-phase rounds (deliver, then " +
			"time out) and exponential backoff on the re-verification.",
		Case: mustCase(`{"n":2,"topology":"skip-graph","leave":0.2812076726095768,"pattern":"articulation","variant":"FDP","oracle":"NIDEC","seed":3588411843553153217,"scheduler":"rounds"}`),
	},
	{
		Name: "nidec-fifo-phase-lock",
		Kind: KindDisagreement,
		Note: "Pre-fix: the deterministic fifo schedule phase-locked the leaver's " +
			"anchor re-verification against its own oracle queries — the same NIDEC " +
			"livelock as nidec-rounds-livelock, proving the bug was not specific to one " +
			"scheduler. Fixed by the re-verification backoff in core.Proc.",
		Case: mustCase(`{"n":8,"topology":"star","leave":0.7672139728700432,"pattern":"neighborhood","variant":"FDP","oracle":"NIDEC","seed":8562746088568433553,"scheduler":"fifo","strikes":[{"after":49,"flip_beliefs":0.33092546730067074,"scramble_anchors":0.459228440719072,"junk_messages":2,"duplicate_messages":3},{"after":100,"flip_beliefs":0.0051135414358194015,"scramble_anchors":0.00613493732970204,"junk_messages":9}]}`),
	},
	{
		Name: "nidec-fifo-flood",
		Kind: KindDisagreement,
		Note: "Pre-fix: the fifo scheduler's fixed one-timeout-per-three-picks cadence " +
			"let periodic self-introductions outpace delivery on a junk-densified graph " +
			"(average degree > 2), so channels grew without bound and the leavers' NIDEC " +
			"re-verification spent ever longer in flight — an incoming implicit edge at " +
			"almost every oracle query. Sequential livelocked at the 400k-step cap with " +
			"zero exits while the concurrent engine converged in ~350 events. Fixed by " +
			"drain-pacing the fifo scheduler: deliver everything the previous phase " +
			"produced (globally oldest first) before the next timeout pass.",
		Case: mustCase(`{"n":10,"topology":"line","leave":0.21657359497358897,"pattern":"articulation","variant":"FDP","oracle":"NIDEC","seed":6880879019255016384,"scheduler":"fifo","flip_beliefs":1,"random_anchors":1,"junk_messages":61}`),
	},
	{
		Name: "anchor-reintegration-burn",
		Kind: KindSafetySequential,
		Note: "Pre-fix: a staying process reintegrated its corruption-induced anchor " +
			"by sending present(anchor) to itself and deleting its own copy — a " +
			"delegation in introduction's clothing. On delivery the present action's " +
			"silent-consumption branch (sound only for true introductions, whose " +
			"sender keeps a copy) burned what was the process's last reference and " +
			"disconnected it from its component (Lemma 2 violation at step 33, " +
			"EXITSAFE + fifo). Fixed by folding the anchor directly into n — a fusion " +
			"with no in-flight window; a leaving-claimed anchor is then shed by the " +
			"ordinary reversal in the same timeout.",
		Case: mustCase(`{"n":11,"topology":"random-regular","leave":0.7737147148330009,"pattern":"articulation","variant":"FDP","oracle":"EXITSAFE","seed":3992331589594045727,"scheduler":"fifo","flip_beliefs":0.8693134567944469,"random_anchors":0.02378163088641821}`),
	},
	{
		Name: "junk-present-bridge",
		Kind: KindSafetySequential,
		Note: "Pre-fix: a staying process receiving present(v) with v leaving and v " +
			"not in n consumed the message silently, on the reasoning that an " +
			"introduction's sender keeps its own copy. Corruption refutes that: here a " +
			"junk present injected into the initial state was the only bridge between " +
			"two components, and consuming it split them (Lemma 2 violation at step " +
			"228, FSP + fifo, no relevant leaver involved). Fixed by making the " +
			"staying receiver reverse unconditionally — held or not — matching the " +
			"forward action; the reversal flips the edge instead of dropping it, and " +
			"the exchanges it starts are bounded by the leaver's verification backoff " +
			"and FSP sleep, so hibernation is preserved.",
		Case: mustCase(`{"n":12,"topology":"skip-graph","leave":0.18430332757049506,"pattern":"block","variant":"FSP","seed":3278918353585116324,"scheduler":"fifo","flip_beliefs":1,"random_anchors":1,"junk_messages":55,"components":2,"strikes":[{"after":48,"flip_beliefs":0.4233578399306253,"scramble_anchors":0.023518757594747364,"duplicate_messages":2},{"after":141,"flip_beliefs":0.09437368834334392,"scramble_anchors":0.5041821053163268,"junk_messages":4}]}`),
	},
	{
		Name: "mutant-single-guard",
		Kind: KindSafetySequential,
		Note: "Mutation-test anchor, not a fixed bug: the deliberately broken " +
			"MUTANT-SINGLE oracle (degree <= 2) lets a bridging leaver exit and split " +
			"the component. The journal records the violating run the fuzzer found and " +
			"shrank; it must keep violating Lemma 2 on replay, or the fuzzer's ability " +
			"to detect real guard bugs has regressed.",
		Case: mustCase(`{"n":6,"topology":"line","leavers":[0,1,2,4],"leave":0.9266721880875922,"pattern":"random","variant":"FDP","oracle":"MUTANT-SINGLE","seed":2711729604092318900,"scheduler":"random"}`),
	},
}

func mustCase(s string) Case {
	var scn trace.Scenario
	if err := json.Unmarshal([]byte(s), &scn); err != nil {
		panic(err)
	}
	return Case{Scenario: scn}
}

// TestRegenerateFixtures rewrites testdata/ from fixtureCases. It only runs
// when FDPFUZZ_REGEN=1, after a deliberate journal-format change.
func TestRegenerateFixtures(t *testing.T) {
	if os.Getenv("FDPFUZZ_REGEN") != "1" {
		t.Skip("set FDPFUZZ_REGEN=1 to rewrite testdata/")
	}
	for _, meta := range fixtureCases {
		raw, hdr, recs, err := Journal(meta.Case, Options{})
		if err != nil {
			t.Fatalf("%s: %v", meta.Name, err)
		}
		if meta.Kind == KindSafetySequential && meta.Case.Scenario.Oracle == (MutantSingle{}).Name() {
			if short, ok := ShrinkJournal(hdr, recs); ok {
				var err error
				raw, err = RewriteJournal(hdr, short)
				if err != nil {
					t.Fatalf("%s: %v", meta.Name, err)
				}
			}
		}
		if err := WriteFixture("testdata", meta, raw); err != nil {
			t.Fatalf("%s: %v", meta.Name, err)
		}
		t.Logf("wrote testdata/%s.jsonl", meta.Name)
	}
}
