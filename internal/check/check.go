// Package check is a bounded explicit-state model checker for the
// simulator: it explores EVERY fair schedule of a (small) world up to a
// depth bound, verifying an invariant in every reachable state. Where the
// randomized tests sample schedules, the checker enumerates them — on tiny
// instances this gives genuine exhaustiveness, catching scheduler-dependent
// bugs that no number of random runs would.
//
// States are deduplicated by the world fingerprint (protocol variables +
// lifecycle + channel multisets), so the exploration is over the quotient
// transition system the protocol actually induces.
package check

import (
	"fmt"

	"fdp/internal/sim"
)

// Options configures an exploration.
type Options struct {
	// MaxDepth bounds the schedule length explored (number of atomic
	// actions); 0 selects 12.
	MaxDepth int
	// MaxStates aborts the exploration when exceeded; 0 selects 1 << 20.
	MaxStates int
	// Invariant is checked in every reachable state (nil = none). Return
	// a non-nil error to report a violation.
	Invariant func(*sim.World) error
	// Variant selects the legitimacy predicate used for the reachability
	// statistics.
	Variant sim.Variant
	// StopAtLegitimate prunes exploration below legitimate states (their
	// closure is a separate property); default true via NewOptions, false
	// in the zero value.
	StopAtLegitimate bool
}

// Violation is an invariant failure with the schedule that produced it.
type Violation struct {
	Err      error
	Schedule []sim.Action // actions from the initial state to the failure
}

// String renders the violation with its schedule.
func (v Violation) String() string {
	s := fmt.Sprintf("%v after %d actions:", v.Err, len(v.Schedule))
	for _, a := range v.Schedule {
		if a.IsTimeout {
			s += fmt.Sprintf(" %v.timeout", a.Proc)
		} else {
			s += fmt.Sprintf(" %v.recv#%d", a.Proc, a.MsgSeq)
		}
	}
	return s
}

// Outcome reports the exploration results.
type Outcome struct {
	// StatesExplored counts distinct (deduplicated) states expanded.
	StatesExplored int
	// DepthReached is the deepest level fully explored.
	DepthReached int
	// Truncated reports whether MaxStates cut the exploration short.
	Truncated bool
	// Violations holds up to one invariant violation (exploration stops at
	// the first, with its schedule).
	Violations []Violation
	// LegitimateStates counts reached states satisfying the legitimacy
	// predicate.
	LegitimateStates int
	// FrontierStates counts states at the depth bound that are not
	// legitimate (paths that might converge later — the bound cannot
	// decide liveness, only safety).
	FrontierStates int
}

// OK reports whether no violation was found.
func (o Outcome) OK() bool { return len(o.Violations) == 0 }

type node struct {
	w        *sim.World
	depth    int
	schedule []sim.Action
}

// Explore runs a breadth-first exhaustive exploration from w. The input
// world is not modified (exploration works on clones); its protocols must
// implement sim.CloneableProtocol.
func Explore(w *sim.World, opts Options) Outcome {
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 12
	}
	if opts.MaxStates <= 0 {
		opts.MaxStates = 1 << 20
	}
	if w.InitialComponents() == nil {
		w.SealInitialState()
	}
	out := Outcome{}
	root := w.Clone()
	seen := map[string]bool{root.Fingerprint(): true}
	queue := []node{{w: root, depth: 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		out.StatesExplored++
		if out.StatesExplored > opts.MaxStates {
			out.Truncated = true
			return out
		}
		if cur.depth > out.DepthReached {
			out.DepthReached = cur.depth
		}
		if opts.Invariant != nil {
			if err := opts.Invariant(cur.w); err != nil {
				out.Violations = append(out.Violations, Violation{Err: err, Schedule: cur.schedule})
				return out
			}
		}
		legit := cur.w.Legitimate(opts.Variant)
		if legit {
			out.LegitimateStates++
			if opts.StopAtLegitimate {
				continue
			}
		}
		if cur.depth >= opts.MaxDepth {
			if !legit {
				out.FrontierStates++
			}
			continue
		}
		for _, a := range cur.w.EnabledActions() {
			succ := cur.w.Clone()
			succ.Execute(a)
			fp := succ.Fingerprint()
			if seen[fp] {
				continue
			}
			seen[fp] = true
			sched := append(append([]sim.Action{}, cur.schedule...), a)
			queue = append(queue, node{w: succ, depth: cur.depth + 1, schedule: sched})
		}
	}
	return out
}

// SafetyInvariant returns the Lemma 2 invariant as a checker invariant.
func SafetyInvariant() func(*sim.World) error {
	return func(w *sim.World) error {
		if !w.RelevantComponentsIntact() {
			return fmt.Errorf("relevant processes disconnected")
		}
		return nil
	}
}
