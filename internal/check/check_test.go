package check

import (
	"strings"
	"testing"

	"fdp/internal/core"
	"fdp/internal/oracle"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// tinyWorld builds a line a - u - b with u leaving (clean beliefs), the
// minimal instance where an unsafe exit would disconnect a and b.
func tinyWorld(orc sim.Oracle, variant core.Variant) (*sim.World, []ref.Ref) {
	space := ref.NewSpace()
	a, u, b := space.New(), space.New(), space.New()
	w := sim.NewWorld(orc)
	pa, pu, pb := core.New(variant), core.New(variant), core.New(variant)
	w.AddProcess(a, sim.Staying, pa)
	w.AddProcess(u, sim.Leaving, pu)
	w.AddProcess(b, sim.Staying, pb)
	pa.SetNeighbor(u, sim.Leaving)
	pu.SetNeighbor(a, sim.Staying)
	pu.SetNeighbor(b, sim.Staying)
	pb.SetNeighbor(u, sim.Leaving)
	w.SealInitialState()
	return w, []ref.Ref{a, u, b}
}

// Exhaustive safety: across EVERY schedule up to the depth bound, the
// protocol with SINGLE never disconnects relevant processes.
func TestExhaustiveSafetyLine3(t *testing.T) {
	w, _ := tinyWorld(oracle.Single{}, core.VariantFDP)
	out := Explore(w, Options{
		MaxDepth:         14,
		MaxStates:        300000,
		Invariant:        SafetyInvariant(),
		Variant:          sim.FDP,
		StopAtLegitimate: true,
	})
	if !out.OK() {
		t.Fatalf("safety violated:\n%s", out.Violations[0])
	}
	if out.Truncated {
		t.Fatalf("state space truncated at %d states", out.StatesExplored)
	}
	if out.LegitimateStates == 0 {
		t.Fatal("no schedule reached a legitimate state within the bound")
	}
	t.Logf("explored %d states to depth %d; %d legitimate, %d frontier",
		out.StatesExplored, out.DepthReached, out.LegitimateStates, out.FrontierStates)
}

// The checker must FIND the unsafe schedule when the oracle is the constant
// TRUE: u funnels its neighborhood into its own channel and then exits,
// stranding a and b.
func TestExhaustiveFindsUnsafeOracleViolation(t *testing.T) {
	w, _ := tinyWorld(oracle.Always(true), core.VariantFDP)
	out := Explore(w, Options{
		MaxDepth:  10,
		MaxStates: 300000,
		Invariant: SafetyInvariant(),
		Variant:   sim.FDP,
	})
	if out.OK() {
		t.Fatalf("checker failed to find the known unsafe schedule (%d states, depth %d)",
			out.StatesExplored, out.DepthReached)
	}
	v := out.Violations[0]
	if !strings.Contains(v.String(), "timeout") {
		t.Fatalf("violation schedule should involve timeouts: %s", v)
	}
	t.Logf("found violation: %s", v)
}

// FSP safety: exhaustive over schedules with the sleep variant (no oracle).
func TestExhaustiveSafetyFSP(t *testing.T) {
	w, _ := tinyWorld(nil, core.VariantFSP)
	out := Explore(w, Options{
		MaxDepth:         12,
		MaxStates:        300000,
		Invariant:        SafetyInvariant(),
		Variant:          sim.FSP,
		StopAtLegitimate: true,
	})
	if !out.OK() {
		t.Fatalf("FSP safety violated:\n%s", out.Violations[0])
	}
	if out.LegitimateStates == 0 {
		t.Fatal("no schedule hibernated the leaver within the bound")
	}
}

// Corrupted initial beliefs: exhaustive safety for an invalid-information
// start (a believes u staying, u believes a leaving).
func TestExhaustiveSafetyCorrupted(t *testing.T) {
	space := ref.NewSpace()
	a, u := space.New(), space.New()
	w := sim.NewWorld(oracle.Single{})
	pa, pu := core.New(core.VariantFDP), core.New(core.VariantFDP)
	w.AddProcess(a, sim.Staying, pa)
	w.AddProcess(u, sim.Leaving, pu)
	pa.SetNeighbor(u, sim.Staying) // invalid belief
	pu.SetNeighbor(a, sim.Leaving) // invalid belief
	pu.SetAnchor(a, sim.Leaving)   // invalid anchor belief
	w.Enqueue(a, sim.NewMessage(core.LabelForward, sim.RefInfo{Ref: u, Mode: sim.Staying}))
	w.SealInitialState()
	out := Explore(w, Options{
		MaxDepth:         12,
		MaxStates:        300000,
		Invariant:        SafetyInvariant(),
		Variant:          sim.FDP,
		StopAtLegitimate: true,
	})
	if !out.OK() {
		t.Fatalf("corrupted-start safety violated:\n%s", out.Violations[0])
	}
	if out.LegitimateStates == 0 {
		t.Fatal("no schedule converged within the bound")
	}
}

func TestFingerprintDeduplicates(t *testing.T) {
	w, _ := tinyWorld(oracle.Single{}, core.VariantFDP)
	c1, c2 := w.Clone(), w.Clone()
	if c1.Fingerprint() != c2.Fingerprint() {
		t.Fatal("clones must have identical fingerprints")
	}
	// Executing different actions from the same state usually gives
	// different fingerprints.
	acts := c1.EnabledActions()
	c1.Execute(acts[0])
	if c1.Fingerprint() == c2.Fingerprint() {
		t.Fatal("executed world should differ from the original")
	}
}

func TestCloneIndependence(t *testing.T) {
	w, nodes := tinyWorld(oracle.Single{}, core.VariantFDP)
	c := w.Clone()
	// Drive the clone; the original must be untouched.
	for i := 0; i < 50; i++ {
		acts := c.EnabledActions()
		if len(acts) == 0 {
			break
		}
		c.Execute(acts[0])
	}
	if w.Steps() != 0 {
		t.Fatal("original world mutated by clone execution")
	}
	if w.ChannelLen(nodes[0]) != 0 {
		t.Fatal("original channels mutated")
	}
}

func TestExploreTruncation(t *testing.T) {
	w, _ := tinyWorld(oracle.Single{}, core.VariantFDP)
	out := Explore(w, Options{MaxDepth: 20, MaxStates: 5, Variant: sim.FDP})
	if !out.Truncated {
		t.Fatal("tiny MaxStates must truncate")
	}
}

// A violation schedule found by the checker must replay on a fresh copy of
// the same world and reproduce the disconnection.
func TestViolationScheduleReplays(t *testing.T) {
	w, _ := tinyWorld(oracle.Always(true), core.VariantFDP)
	out := Explore(w, Options{
		MaxDepth:  10,
		MaxStates: 300000,
		Invariant: SafetyInvariant(),
		Variant:   sim.FDP,
	})
	if out.OK() {
		t.Fatal("expected a violation to replay")
	}
	fresh := w.Clone()
	replay := sim.NewReplayScheduler(out.Violations[0].Schedule, nil)
	for {
		a, ok := replay.Next(fresh)
		if !ok {
			break
		}
		fresh.Execute(a)
	}
	if replay.Stalled() {
		t.Fatal("violation schedule stalled on a fresh clone")
	}
	if fresh.RelevantComponentsIntact() {
		t.Fatal("replay did not reproduce the disconnection")
	}
}
