// Facts are the cross-package layer of the framework: an analyzer exports
// observations about package-level objects (or whole packages) while
// analyzing the package that declares them, and imports them while
// analyzing downstream packages. Drivers thread one FactStore through every
// package of a program in dependency order — internal/analysis/program
// keeps it in memory, internal/analysis/unit round-trips the facts of each
// package through the build system's .vetx files.
//
// The design mirrors x/tools go/analysis facts with the same deliberate
// subsetting as the rest of this package: fact types are pointers to
// JSON-serializable structs, registered on Analyzer.FactTypes so drivers
// can build the wire registry, and namespaced by their concrete type (each
// analyzer declares its own fact structs, so no analyzer pair collides).
package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// Fact is an observation attached to a package-level object or a package.
// Implementations must be pointers to structs with exported fields that
// survive a JSON round trip (positions are carried as pre-formatted
// "file:line" strings, not token.Pos, which is FileSet-relative).
type Fact interface {
	// AFact marks the type as a fact.
	AFact()
}

type objFactKey struct {
	obj types.Object
	t   reflect.Type
}

type pkgFactKey struct {
	pkg *types.Package
	t   reflect.Type
}

// FactStore holds the facts of one whole-program run.
type FactStore struct {
	obj map[objFactKey]Fact
	pkg map[pkgFactKey]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{
		obj: make(map[objFactKey]Fact),
		pkg: make(map[pkgFactKey]Fact),
	}
}

// ExportObjectFact attaches f to obj, overwriting any previous fact of the
// same concrete type. The fact type must be registered in the analyzer's
// FactTypes (drivers need the registry to serialize facts).
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if obj == nil || obj.Pkg() == nil {
		return
	}
	p.checkFactType(f)
	if p.Facts == nil {
		p.Facts = NewFactStore()
	}
	p.Facts.obj[objFactKey{obj, reflect.TypeOf(f)}] = f
}

// ImportObjectFact copies the fact of ptr's concrete type attached to obj
// into *ptr and reports whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	if p.Facts == nil || obj == nil {
		return false
	}
	f, ok := p.Facts.obj[objFactKey{obj, reflect.TypeOf(ptr)}]
	if !ok {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}

// ExportPackageFact attaches f to the package under analysis.
func (p *Pass) ExportPackageFact(f Fact) {
	p.checkFactType(f)
	if p.Facts == nil {
		p.Facts = NewFactStore()
	}
	p.Facts.pkg[pkgFactKey{p.Pkg, reflect.TypeOf(f)}] = f
}

// ImportPackageFact copies the fact of ptr's concrete type attached to pkg
// (typically an import of the package under analysis) into *ptr and reports
// whether one was found.
func (p *Pass) ImportPackageFact(pkg *types.Package, ptr Fact) bool {
	if p.Facts == nil || pkg == nil {
		return false
	}
	f, ok := p.Facts.pkg[pkgFactKey{pkg, reflect.TypeOf(ptr)}]
	if !ok {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}

func (p *Pass) checkFactType(f Fact) {
	t := reflect.TypeOf(f)
	for _, ft := range p.Analyzer.FactTypes {
		if reflect.TypeOf(ft) == t {
			return
		}
	}
	panic(fmt.Sprintf("%s: fact type %T not registered in Analyzer.FactTypes", p.Analyzer.Name, f))
}

// --- serialization (unitchecker driver) ---------------------------------

// wireFact is one serialized fact. Object is the mini object path within
// the package ("" for a package fact): "Name" for a package-level func,
// var or type; "T.M" for method M of named type T; "T#f" for field f of
// named struct type T.
type wireFact struct {
	Object string          `json:"object,omitempty"`
	Type   string          `json:"type"`
	Data   json.RawMessage `json:"data"`
}

// FactRegistry maps wire names to fact types for every analyzer in the run.
func FactRegistry(analyzers []*Analyzer) map[string]reflect.Type {
	reg := make(map[string]reflect.Type)
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			reg[factName(reflect.TypeOf(f))] = reflect.TypeOf(f)
		}
	}
	return reg
}

// factName is the wire name of a fact type: "lockgraph.FuncLocks" for
// *lockgraph.FuncLocks.
func factName(t reflect.Type) string {
	return strings.TrimPrefix(t.String(), "*")
}

// Encode serializes every fact attached to pkg or its objects, in a
// deterministic order (the vetx file feeds the build cache).
func (s *FactStore) Encode(pkg *types.Package) ([]byte, error) {
	if s == nil {
		return nil, nil
	}
	var out []wireFact
	for k, f := range s.obj {
		if k.obj.Pkg() != pkg {
			continue
		}
		path, ok := objectPath(pkg, k.obj)
		if !ok {
			// Not addressable through export data; an importing package
			// cannot name the object either, so the fact is package-local.
			continue
		}
		data, err := json.Marshal(f)
		if err != nil {
			return nil, fmt.Errorf("encoding fact %T for %s: %w", f, k.obj.Name(), err)
		}
		out = append(out, wireFact{Object: path, Type: factName(k.t), Data: data})
	}
	for k, f := range s.pkg {
		if k.pkg != pkg {
			continue
		}
		data, err := json.Marshal(f)
		if err != nil {
			return nil, fmt.Errorf("encoding package fact %T: %w", f, err)
		}
		out = append(out, wireFact{Type: factName(k.t), Data: data})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Object != out[j].Object {
			return out[i].Object < out[j].Object
		}
		return out[i].Type < out[j].Type
	})
	return json.Marshal(out)
}

// Decode merges facts previously encoded for pkg into the store, resolving
// object paths against pkg (as presented by the current importer). Facts of
// unregistered types or with unresolvable paths are skipped — an older tool
// build or an object absent from export data must not fail the run.
func (s *FactStore) Decode(pkg *types.Package, data []byte, reg map[string]reflect.Type) error {
	if len(data) == 0 {
		return nil
	}
	var in []wireFact
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("decoding facts for %s: %w", pkg.Path(), err)
	}
	for _, w := range in {
		t, ok := reg[w.Type]
		if !ok {
			continue
		}
		f := reflect.New(t.Elem()).Interface().(Fact)
		if err := json.Unmarshal(w.Data, f); err != nil {
			return fmt.Errorf("decoding fact %s for %s: %w", w.Type, pkg.Path(), err)
		}
		if w.Object == "" {
			s.pkg[pkgFactKey{pkg, t}] = f
			continue
		}
		obj := resolveObject(pkg, w.Object)
		if obj == nil {
			continue
		}
		s.obj[objFactKey{obj, t}] = f
	}
	return nil
}

// objectPath encodes a package-level object as a path resolvable from an
// importing package's view of pkg.
func objectPath(pkg *types.Package, obj types.Object) (string, bool) {
	switch o := obj.(type) {
	case *types.Func:
		sig, ok := o.Type().(*types.Signature)
		if !ok {
			return "", false
		}
		recv := sig.Recv()
		if recv == nil {
			if o.Parent() != pkg.Scope() {
				return "", false
			}
			return o.Name(), true
		}
		named := namedOf(recv.Type())
		if named == nil || named.Obj().Pkg() != pkg {
			return "", false
		}
		return named.Obj().Name() + "." + o.Name(), true
	case *types.Var:
		if !o.IsField() {
			if o.Parent() != pkg.Scope() {
				return "", false
			}
			return o.Name(), true
		}
		// Find the named struct type declaring this exact field object.
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == o {
					return name + "#" + o.Name(), true
				}
			}
		}
		return "", false
	case *types.TypeName:
		if o.Parent() != pkg.Scope() {
			return "", false
		}
		return o.Name(), true
	}
	return "", false
}

// resolveObject is the inverse of objectPath against the importer's pkg.
func resolveObject(pkg *types.Package, path string) types.Object {
	if i := strings.IndexByte(path, '#'); i >= 0 {
		tn, ok := pkg.Scope().Lookup(path[:i]).(*types.TypeName)
		if !ok {
			return nil
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			return nil
		}
		for j := 0; j < st.NumFields(); j++ {
			if st.Field(j).Name() == path[i+1:] {
				return st.Field(j)
			}
		}
		return nil
	}
	if i := strings.IndexByte(path, '.'); i >= 0 {
		tn, ok := pkg.Scope().Lookup(path[:i]).(*types.TypeName)
		if !ok {
			return nil
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			return nil
		}
		for j := 0; j < named.NumMethods(); j++ {
			if named.Method(j).Name() == path[i+1:] {
				return named.Method(j)
			}
		}
		return nil
	}
	return pkg.Scope().Lookup(path)
}

// namedOf unwraps a receiver type to its named type.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
