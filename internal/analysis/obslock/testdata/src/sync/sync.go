// Stub of sync: the analyzer recognizes mutex operations by the receiver
// type's package path and name, so the stubs carry the real identities.
package sync

type Mutex struct{ state int32 }

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type RWMutex struct{ state int32 }

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}
