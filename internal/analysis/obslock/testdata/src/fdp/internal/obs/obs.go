// Fixture: package path fdp/internal/obs is the analyzer's scope. The
// Registry shape mirrors the real one: a single registration mutex that
// must remain a leaf, with the hot path entirely outside it.
package obs

import "sync"

type Registry struct {
	mu       sync.Mutex
	renderMu sync.RWMutex
	metrics  map[string]int
}

// The conforming leaf shape: one lock, held briefly, deferred release.
func (r *Registry) lookup(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.metrics[name]
}

// Sequential phases are not nesting: the first lock is released before the
// second is taken.
func (r *Registry) twoPhases(name string) int {
	r.mu.Lock()
	v := r.metrics[name]
	r.mu.Unlock()
	r.renderMu.RLock()
	v++
	r.renderMu.RUnlock()
	return v
}

func (r *Registry) nested() {
	r.mu.Lock()
	r.renderMu.Lock() // want "while holding"
	r.renderMu.Unlock()
	r.mu.Unlock()
}

func (r *Registry) reentrant() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mu.Lock() // want "while holding"
	r.mu.Unlock()
}

// render acquires renderMu, so calling it under mu nests transitively.
func (r *Registry) render() int {
	r.renderMu.RLock()
	defer r.renderMu.RUnlock()
	return len(r.metrics)
}

func (r *Registry) transitiveNesting() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.render() // want "acquires a lock"
}

// Calling an acquirer with nothing held is the intended composition.
func (r *Registry) compose() int {
	n := r.render()
	return n + r.lookup("x")
}

func (r *Registry) earlyReturn(name string) int {
	r.mu.Lock()
	if name == "" {
		return 0 // want "return while holding"
	}
	v := r.metrics[name]
	r.mu.Unlock()
	return v
}

func (r *Registry) leak() {
	r.mu.Lock() // want "never released"
	r.metrics = nil
}

// A hook literal takes its locks when it later runs; registering it under
// the mutex is not nesting.
func (r *Registry) hooks() func() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return func() int { return r.render() }
}
