// Fixture: package path fdp/internal/trace is in the analyzer's scope. The
// Writer shape mirrors the real journal writer: one line mutex that runs
// inside engine event hooks and must stay a leaf.
package trace

import "sync"

type sink struct {
	mu  sync.Mutex
	out []byte
	err error
}

// The conforming leaf shape: one lock, held briefly, deferred release.
func (s *sink) record(line []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.out = append(s.out, line...)
	}
}

type multi struct {
	mu    sync.Mutex
	spans sync.Mutex
}

func (m *multi) nested() {
	m.mu.Lock()
	m.spans.Lock() // want "while holding"
	m.spans.Unlock()
	m.mu.Unlock()
}

// flush acquires the mutex, so calling it with the lock held nests
// transitively.
func (s *sink) flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *sink) recordAndFlush(line []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.out = append(s.out, line...)
	return s.flush() // want "acquires a lock"
}

func (s *sink) leak() {
	s.mu.Lock() // want "never released"
	s.out = nil
}

// The flight-recorder ring shape (trace.Flight): a leaf mutex guards the
// copy-in and copy-out only; rendering — which may take other locks — runs
// after release.
type ring struct {
	mu   sync.Mutex
	buf  []byte
	next int
}

func (r *ring) record(b byte) {
	r.mu.Lock()
	r.buf[r.next] = b
	r.next++
	r.mu.Unlock()
}

type renderer struct {
	mu sync.Mutex
}

func (re *renderer) render(b []byte) []byte {
	re.mu.Lock()
	defer re.mu.Unlock()
	return append([]byte(nil), b...)
}

// The conforming snapshot: copy out under the ring mutex, render after.
func (r *ring) snapshot(re *renderer) []byte {
	r.mu.Lock()
	cp := append([]byte(nil), r.buf...)
	r.mu.Unlock()
	return re.render(cp)
}

// Rendering inside the critical section nests the renderer's lock under the
// ring mutex: the shape Flight.Snapshot must never regress into.
func (r *ring) snapshotLocked(re *renderer) []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return re.render(r.buf) // want "acquires a lock"
}
