// Fixture: package path fdp/internal/trace is in the analyzer's scope. The
// Writer shape mirrors the real journal writer: one line mutex that runs
// inside engine event hooks and must stay a leaf.
package trace

import "sync"

type sink struct {
	mu  sync.Mutex
	out []byte
	err error
}

// The conforming leaf shape: one lock, held briefly, deferred release.
func (s *sink) record(line []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.out = append(s.out, line...)
	}
}

type multi struct {
	mu    sync.Mutex
	spans sync.Mutex
}

func (m *multi) nested() {
	m.mu.Lock()
	m.spans.Lock() // want "while holding"
	m.spans.Unlock()
	m.mu.Unlock()
}

// flush acquires the mutex, so calling it with the lock held nests
// transitively.
func (s *sink) flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *sink) recordAndFlush(line []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.out = append(s.out, line...)
	return s.flush() // want "acquires a lock"
}

func (s *sink) leak() {
	s.mu.Lock() // want "never released"
	s.out = nil
}
