package obslock

import (
	"testing"

	"fdp/internal/analysis/analysistest"
)

func TestObsLock(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "fdp/internal/obs", "fdp/internal/trace")
}
