// Package obslock enforces the locking discipline of the observation
// layers (fdp/internal/obs and fdp/internal/trace): their hot paths are
// lock-free atomics or a single leaf mutex — the registry's registration
// lock, the journal writer's line lock. Concretely, within these packages
// no mutex may be acquired while any mutex is already held, neither
// directly nor through a package-internal call that (transitively)
// acquires one. A nested acquisition is how a metrics or journaling layer
// deadlocks the engines it instruments (hook → registry → hook), so the
// discipline is "one lock at a time, briefly".
//
// Like lockorder, the check is lexical within each function body plus a
// package-wide fixpoint over which functions acquire any mutex; the
// straight-line acquire/release shapes the package uses are exact under
// it, and anything cleverer needs a //fdplint:ignore obslock <reason>.
package obslock

import (
	"go/ast"
	"go/types"
	"sort"

	"fdp/internal/analysis"
)

// Analyzer is the obslock pass.
var Analyzer = &analysis.Analyzer{
	Name: "obslock",
	Doc:  "internal/obs + internal/trace locking discipline: never acquire a lock while holding another (hot paths stay lock-free, every mutex stays a leaf)",
	Run:  run,
}

// targetPkgs are the observation-layer packages whose mutexes must stay
// leaves: the metrics registry and the journal writer both run inside
// engine event hooks, where a nested acquisition deadlocks the engine.
var targetPkgs = map[string]bool{
	"fdp/internal/obs":   true,
	"fdp/internal/trace": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !targetPkgs[analysis.PkgPath(pass.Pkg)] {
		return nil, nil
	}
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	acquirers := lockAcquirers(pass, decls)
	for _, fd := range decls {
		checkFunc(pass, fd, acquirers)
	}
	return nil, nil
}

// mutexOp recognizes <recv>.Lock/RLock/Unlock/RUnlock() on a sync.Mutex or
// sync.RWMutex, returning the receiver key and whether the op acquires.
func mutexOp(pass *analysis.Pass, call *ast.CallExpr) (key string, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	var acq bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acq = true
	case "Unlock", "RUnlock":
		acq = false
	default:
		return "", false, false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return "", false, false
	}
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" ||
		(obj.Name() != "Mutex" && obj.Name() != "RWMutex") {
		return "", false, false
	}
	return types.ExprString(sel.X), acq, true
}

// calleeFunc resolves a call to its *types.Func when it targets a function
// or method of the package under analysis.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		if selection := pass.TypesInfo.Selections[fun]; selection != nil {
			obj = selection.Obj()
		} else {
			obj = pass.TypesInfo.Uses[fun.Sel]
		}
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != analysis.PkgPath(pass.Pkg) {
		return nil
	}
	return fn
}

// lockAcquirers computes the set of package functions that acquire any
// mutex, directly or through package-internal calls.
func lockAcquirers(pass *analysis.Pass, decls []*ast.FuncDecl) map[*types.Func]bool {
	direct := make(map[*types.Func]bool)
	calls := make(map[*types.Func][]*types.Func)
	for _, fd := range decls {
		fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if fn == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, acq, ok := mutexOp(pass, call); ok && acq {
				direct[fn] = true
			}
			if callee := calleeFunc(pass, call); callee != nil {
				calls[fn] = append(calls[fn], callee)
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			if direct[fn] {
				continue
			}
			for _, c := range callees {
				if direct[c] {
					direct[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return direct
}

type opKind int

const (
	opLock opKind = iota
	opUnlock
	opLockCall // call to a function that transitively acquires a mutex
	opReturn
)

type event struct {
	pos      int
	kind     opKind
	key      string
	deferred bool
	node     ast.Node
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, acquirers map[*types.Func]bool) {
	var events []event
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // literals run later; their lock use is their own
		case *ast.DeferStmt:
			if key, acq, ok := mutexOp(pass, n.Call); ok && !acq {
				events = append(events, event{pos: int(n.Pos()), kind: opUnlock, key: key, deferred: true, node: n})
			}
			return false
		case *ast.CallExpr:
			if key, acq, ok := mutexOp(pass, n); ok {
				kind := opUnlock
				if acq {
					kind = opLock
				}
				events = append(events, event{pos: int(n.Pos()), kind: kind, key: key, node: n})
				return true
			}
			if callee := calleeFunc(pass, n); callee != nil && acquirers[callee] {
				events = append(events, event{pos: int(n.Pos()), kind: opLockCall, key: callee.Name(), node: n})
			}
		case *ast.ReturnStmt:
			events = append(events, event{pos: int(n.Pos()), kind: opReturn, node: n})
		}
		return true
	})
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := make(map[string]int)
	lastLock := make(map[string]ast.Node)
	deferredRelease := make(map[string]bool)
	heldKey := func() (string, bool) {
		for key, n := range held {
			if n > 0 {
				return key, true
			}
		}
		return "", false
	}

	for _, ev := range events {
		switch ev.kind {
		case opLock:
			if key, holding := heldKey(); holding {
				pass.Reportf(ev.node.Pos(), "acquiring %s while holding %s; internal/obs never nests locks — the registry mutex must stay a leaf", ev.key, key)
			}
			held[ev.key]++
			lastLock[ev.key] = ev.node
		case opUnlock:
			if ev.deferred {
				deferredRelease[ev.key] = true
				continue
			}
			if held[ev.key] > 0 {
				held[ev.key]--
			}
		case opLockCall:
			if key, holding := heldKey(); holding {
				pass.Reportf(ev.node.Pos(), "calling %s (which acquires a lock) while holding %s; internal/obs never nests locks", ev.key, key)
			}
		case opReturn:
			for key, n := range held {
				if n > 0 && !deferredRelease[key] {
					pass.Reportf(ev.node.Pos(), "return while holding %s with no deferred release", key)
				}
			}
		}
	}
	for key, n := range held {
		if n > 0 && !deferredRelease[key] {
			pass.Reportf(lastLock[key].Pos(), "%s is locked but never released in this function", key)
		}
	}
}
