// Package program is the whole-program fdplint driver: it loads an entire
// module in dependency order and runs every analyzer over every package
// with one shared fact store, so cross-package facts (classified movers,
// atomically-accessed fields, transitive lock acquisitions) flow without
// serialization.
//
// Loading leans on the standard build machinery rather than reimplementing
// it: `go list -deps -export -json <patterns>` yields every package in
// dependency-first order together with the compiler export data of the
// already-built dependencies. Module packages are typechecked from source
// (analyzers need their syntax); standard-library dependencies are imported
// from export data only, so a whole-module run typechecks exactly the
// module's own files.
package program

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"fdp/internal/analysis"
)

// Options configures a whole-program run.
type Options struct {
	// Dir is the module root to analyze; "" means the current directory.
	Dir string
	// Patterns are go-list package patterns; empty means ["./..."].
	Patterns []string
}

// Result carries the run's diagnostics with the FileSet that positions
// them.
type Result struct {
	Fset  *token.FileSet
	Diags []analysis.Diagnostic
}

// listPkg is the subset of `go list -json` output the driver consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Standard   bool
	Export     string
	Imports    []string
	ImportMap  map[string]string
}

// Run analyzes the module at opts.Dir with the given analyzers.
func Run(opts Options, analyzers []*analysis.Analyzer) (*Result, error) {
	pkgs, err := list(opts)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	info := analysis.NewInfo()
	facts := analysis.NewFactStore()

	// srcPkgs holds module packages typechecked from source; everything
	// else resolves through the gc export data `go list -export` produced.
	srcPkgs := make(map[string]*types.Package)
	exportFile := make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			exportFile[p.ImportPath] = p.Export
		}
	}
	gcImporter := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exportFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	var imp importerFunc = func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if pkg, ok := srcPkgs[path]; ok {
			return pkg, nil
		}
		return gcImporter.Import(path)
	}

	res := &Result{Fset: fset}
	for _, p := range pkgs {
		if p.Standard || len(p.GoFiles) == 0 {
			continue // imported on demand from export data
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		tc := &types.Config{
			Importer: importerFunc(func(path string) (*types.Package, error) {
				if mapped, ok := p.ImportMap[path]; ok {
					path = mapped
				}
				return imp(path)
			}),
			Sizes: types.SizesFor("gc", build.Default.GOARCH),
		}
		pkg, err := tc.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typechecking %s: %w", p.ImportPath, err)
		}
		srcPkgs[p.ImportPath] = pkg
		diags, err := analysis.RunPackageFacts(fset, files, pkg, info, analyzers, facts)
		if err != nil {
			return nil, fmt.Errorf("analyzing %s: %w", p.ImportPath, err)
		}
		res.Diags = append(res.Diags, diags...)
	}
	sort.Slice(res.Diags, func(i, j int) bool {
		pi, pj := fset.Position(res.Diags[i].Pos), fset.Position(res.Diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return res.Diags[i].Message < res.Diags[j].Message
	})
	return res, nil
}

// list shells out to `go list -deps -export -json`, which visits packages
// in depth-first post-order: every package appears after all its
// dependencies, exactly the order facts need.
func list(opts Options) ([]*listPkg, error) {
	patterns := opts.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,Name,GoFiles,Standard,Export,Imports,ImportMap"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = opts.Dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, errb.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(&out)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
