package program_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fdp/internal/analysis"
	"fdp/internal/analysis/all"
	"fdp/internal/analysis/program"
)

// repoRoot locates the module root from the test's working directory.
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("no go.mod at %s: %v", root, err)
	}
	return root
}

// TestRepoIsLintClean asserts the whole-program suite over the repository
// itself: the annotations in the tree are the golden state, and any
// unsanctioned move, mixed atomic access, lock-graph defect, or stale
// ignore fails this test.
func TestRepoIsLintClean(t *testing.T) {
	res, err := program.Run(program.Options{Dir: repoRoot(t)}, all.Analyzers())
	if err != nil {
		t.Fatalf("program.Run: %v", err)
	}
	for _, d := range res.Diags {
		t.Errorf("%s: %s (%s)", res.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
}

// copyModule copies go.mod and every non-test tree of .go files into dst,
// skipping build artifacts and fixture trees.
func copyModule(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if info.IsDir() {
			switch info.Name() {
			case ".git", "testdata", "bin", "docs":
				if rel != "." {
					return filepath.SkipDir
				}
			}
			return nil
		}
		if rel != "go.mod" && !strings.HasSuffix(rel, ".go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			return err
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copying module: %v", err)
	}
}

// TestSeededMutationsAreDetected copies the module, seeds one violation per
// new analyzer — an unannotated reference move reached through a helper, a
// mixed plain/atomic access, and a lock-order cycle — and asserts each is
// detected with a path-bearing diagnostic in a single whole-program run.
func TestSeededMutationsAreDetected(t *testing.T) {
	dst := t.TempDir()
	copyModule(t, repoRoot(t), dst)

	write := func(rel, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dst, filepath.FromSlash(rel)), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Mutation 1: a reference move outside the primitive vocabulary, two
	// frames deep so the diagnostic must carry the call path.
	write("internal/core/zz_mutation.go", `package core

import (
	"fdp/internal/ref"
	"fdp/internal/sim"
)

func (p *Proc) MutateBad(v ref.Ref) { p.mutateHelper(v) }

func (p *Proc) mutateHelper(v ref.Ref) { p.n[v] = sim.Staying }
`)
	// Mutation 2: a variable accessed both atomically and plainly.
	write("internal/parallel/zz_mutation_atomic.go", `package parallel

import "sync/atomic"

var mutCount uint64

func mutAdd() uint64  { return atomic.AddUint64(&mutCount, 1) }
func mutPeek() uint64 { return mutCount }

var _ = mutAdd
var _ = mutPeek
`)
	// Mutation 3: two mutexes acquired in both orders — a cycle in the
	// inferred acquisition graph.
	write("internal/parallel/zz_mutation_locks.go", `package parallel

import "sync"

var mutMuA, mutMuB sync.Mutex

func mutAB() {
	mutMuA.Lock()
	mutMuB.Lock()
	mutMuB.Unlock()
	mutMuA.Unlock()
}

func mutBA() {
	mutMuB.Lock()
	mutMuA.Lock()
	mutMuA.Unlock()
	mutMuB.Unlock()
}

var _ = mutAB
var _ = mutBA
`)

	res, err := program.Run(program.Options{Dir: dst}, all.Analyzers())
	if err != nil {
		t.Fatalf("program.Run on mutated copy: %v", err)
	}

	find := func(analyzer string, substrs ...string) analysis.Diagnostic {
		t.Helper()
		for _, d := range res.Diags {
			if d.Analyzer != analyzer {
				continue
			}
			ok := true
			for _, s := range substrs {
				if !strings.Contains(d.Message, s) {
					ok = false
					break
				}
			}
			if ok {
				return d
			}
		}
		t.Errorf("no %s diagnostic containing %q; got:", analyzer, substrs)
		for _, d := range res.Diags {
			t.Logf("  %s: %s (%s)", res.Fset.Position(d.Pos), d.Message, d.Analyzer)
		}
		return analysis.Diagnostic{}
	}

	// Each assertion includes the path fragment, not just the site: the
	// diagnostics must say how the violation is reached.
	find("primdecomp", "MutateBad", "calls mutateHelper", "stores a reference into p.n")
	find("atomicdiscipline", "plain access to mutCount", "sync/atomic at")
	find("lockgraph", "lock cycle", "parallel.mutMuA", "via")

	// The three seeded violations must be the only findings: the copy is
	// otherwise the lint-clean tree.
	for _, d := range res.Diags {
		switch d.Analyzer {
		case "primdecomp", "atomicdiscipline", "lockgraph":
		default:
			t.Errorf("unexpected %s diagnostic: %s", d.Analyzer, d.Message)
		}
	}
}
