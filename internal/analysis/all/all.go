// Package all registers the full fdplint analyzer suite in one place, so
// the drivers (cmd/fdplint in both program and unitchecker mode, the
// mutation tests, make lint) agree on what "the suite" is.
package all

import (
	"fdp/internal/analysis"
	"fdp/internal/analysis/atomicdiscipline"
	"fdp/internal/analysis/detiter"
	"fdp/internal/analysis/guardpurity"
	"fdp/internal/analysis/lockgraph"
	"fdp/internal/analysis/lockorder"
	"fdp/internal/analysis/obslock"
	"fdp/internal/analysis/primdecomp"
	"fdp/internal/analysis/refopacity"
)

// Analyzers is the full suite, in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		refopacity.Analyzer,
		detiter.Analyzer,
		guardpurity.Analyzer,
		lockorder.Analyzer,
		lockgraph.Analyzer,
		obslock.Analyzer,
		primdecomp.Analyzer,
		atomicdiscipline.Analyzer,
	}
}
