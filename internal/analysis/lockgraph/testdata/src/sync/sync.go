// Package sync stubs the mutex API for lockgraph fixtures.
package sync

// Mutex stubs sync.Mutex.
type Mutex struct{ _ int }

// Lock stub.
func (m *Mutex) Lock() {}

// Unlock stub.
func (m *Mutex) Unlock() {}

// RWMutex stubs sync.RWMutex.
type RWMutex struct{ _ int }

// Lock stub.
func (m *RWMutex) Lock() {}

// Unlock stub.
func (m *RWMutex) Unlock() {}

// RLock stub.
func (m *RWMutex) RLock() {}

// RUnlock stub.
func (m *RWMutex) RUnlock() {}
