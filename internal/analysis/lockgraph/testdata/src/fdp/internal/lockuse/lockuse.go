// Package lockuse is the dependent half of the two-package lockgraph
// fixture: its edges combine with lockdep's exported facts into a
// whole-program graph, where the cycle and the leaf violation below are
// only visible across the package boundary.
package lockuse

import (
	"sync"

	"fdp/internal/lockdep"
)

// MuB participates in a cross-package cycle with lockdep.MuA.
var MuB sync.Mutex

// aThenB establishes lockdep.MuA → lockuse.MuB.
func aThenB() {
	lockdep.MuA.Lock()
	MuB.Lock() // want "lock cycle"
	MuB.Unlock()
	lockdep.MuA.Unlock()
}

// bThenA establishes lockuse.MuB → lockdep.MuA through WithA's imported
// summary, closing the cycle.
func bThenA() {
	MuB.Lock()
	lockdep.WithA(func() {}) // want "lock cycle"
	MuB.Unlock()
}

// underLeaf acquires MuB while holding lockdep's leaf mutex, acquired
// through Hold's escaping-acquire summary. The leaf set arrives via the
// package fact.
func underLeaf(g *lockdep.Guard) {
	g.Hold()
	holdMuB() // want "acquiring lockuse.MuB while holding lockdep.Guard.mu violates its //fdp:lockleaf declaration"
	g.Release()
}

func holdMuB() {
	MuB.Lock()
	MuB.Unlock()
}

// pair's mutex is acquired two instances at a time without an order
// declaration: a self-cycle on the merged per-type key.
type pair struct {
	mu sync.Mutex
}

func both(a, b *pair) {
	a.mu.Lock()
	b.mu.Lock() // want "lock self-cycle: lockuse.pair.mu acquired while already held"
	b.mu.Unlock()
	a.mu.Unlock()
}

// opair declares the consistent instance order, sanctioning the self-edge.
type opair struct {
	mu sync.Mutex //fdp:lockordered ascending address order
}

func oboth(a, b *opair) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// MuC exercises the pause/resume handoff idiom: freeze acquires and
// installs a deferred release, so repeated calls from a polling loop must
// not look like re-acquisition.
var MuC sync.Mutex

func acquireC() { MuC.Lock() }
func releaseC() { MuC.Unlock() }

func freeze() {
	acquireC()
	defer releaseC()
}

func waitLoop() {
	for i := 0; i < 3; i++ {
		freeze()
	}
}

var (
	_ = aThenB
	_ = bThenA
	_ = underLeaf
	_ = both
	_ = oboth
	_ = waitLoop
)

// renderUnderRing acquires MuB while holding the flight ring's leaf (taken
// through Hold's escaping-acquire summary): the cross-package form of the
// snapshot-renders-outside-the-lock discipline.
func renderUnderRing(r *lockdep.Ring) {
	r.Hold()
	holdMuB() // want "acquiring lockuse.MuB while holding lockdep.Ring.mu violates its //fdp:lockleaf declaration"
	r.ReleaseRing()
}

var _ = renderUnderRing
