// Package lockdep is the dependency half of the two-package lockgraph
// fixture: it declares mutexes whose annotations and function summaries
// must flow to the dependent package (lockuse) as facts.
package lockdep

import "sync"

// MuA is acquired both directly and through WithA by the dependent package.
var MuA sync.Mutex

// WithA runs f with MuA held. Its summary (acquires lockdep.MuA) is
// exported as an object fact; lockuse calling it under its own mutex must
// produce a cross-package edge.
func WithA(f func()) {
	MuA.Lock()
	f()
	MuA.Unlock()
}

// Guard carries a leaf-annotated mutex.
type Guard struct {
	mu sync.Mutex //fdp:lockleaf
}

// Hold acquires the leaf and leaks the acquisition to the caller.
func (g *Guard) Hold() { g.mu.Lock() }

// Release balances Hold.
func (g *Guard) Release() { g.mu.Unlock() }

// bad acquires another mutex under the leaf: diagnosed in this package.
func bad(g *Guard) {
	g.mu.Lock()
	MuA.Lock() // want "acquiring lockdep.MuA while holding lockdep.Guard.mu violates its //fdp:lockleaf declaration"
	MuA.Unlock()
	g.mu.Unlock()
}

var _ = bad
