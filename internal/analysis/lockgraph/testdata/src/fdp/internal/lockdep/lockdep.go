// Package lockdep is the dependency half of the two-package lockgraph
// fixture: it declares mutexes whose annotations and function summaries
// must flow to the dependent package (lockuse) as facts.
package lockdep

import "sync"

// MuA is acquired both directly and through WithA by the dependent package.
var MuA sync.Mutex

// WithA runs f with MuA held. Its summary (acquires lockdep.MuA) is
// exported as an object fact; lockuse calling it under its own mutex must
// produce a cross-package edge.
func WithA(f func()) {
	MuA.Lock()
	f()
	MuA.Unlock()
}

// Guard carries a leaf-annotated mutex.
type Guard struct {
	mu sync.Mutex //fdp:lockleaf
}

// Hold acquires the leaf and leaks the acquisition to the caller.
func (g *Guard) Hold() { g.mu.Lock() }

// Release balances Hold.
func (g *Guard) Release() { g.mu.Unlock() }

// bad acquires another mutex under the leaf: diagnosed in this package.
func bad(g *Guard) {
	g.mu.Lock()
	MuA.Lock() // want "acquiring lockdep.MuA while holding lockdep.Guard.mu violates its //fdp:lockleaf declaration"
	MuA.Unlock()
	g.mu.Unlock()
}

var _ = bad

// Ring mirrors the flight recorder (trace.Flight): a //fdp:lockleaf mutex
// guarding a bounded ring, held for the copy only.
type Ring struct {
	mu  sync.Mutex //fdp:lockleaf
	buf []int
}

// Push is the conforming hot-path shape: lock, write, unlock — nothing
// acquired underneath.
func (r *Ring) Push(v int) {
	r.mu.Lock()
	r.buf = append(r.buf, v)
	r.mu.Unlock()
}

// Hold and ReleaseRing expose an escaping acquisition of the ring leaf for
// the cross-package half of the fixture.
func (r *Ring) Hold() { r.mu.Lock() }

// ReleaseRing balances Hold.
func (r *Ring) ReleaseRing() { r.mu.Unlock() }

// renderLocked renders (acquires MuA) inside the ring's critical section:
// the regression the leaf declaration exists to catch.
func renderLocked(r *Ring) {
	r.mu.Lock()
	MuA.Lock() // want "acquiring lockdep.MuA while holding lockdep.Ring.mu violates its //fdp:lockleaf declaration"
	MuA.Unlock()
	r.mu.Unlock()
}

var _ = renderLocked
