// Package lockgraph infers the whole-program mutex acquisition graph and
// verifies it stays an order: nodes are lock identities (a named type's
// mutex field, or a package-level mutex variable), and an edge A → B means
// some function acquires B while holding A — directly, or through any
// statically resolvable chain of calls, across package boundaries. A cycle
// in that graph is a potential deadlock; lockgraph reports the acquisition
// that closes one, with the full path of every participating edge.
//
// Unlike the hand-maintained rank list the lockorder analyzer used to
// carry, the DESIGN.md §12 order (freezeMu → actMu → one leaf) is not
// configuration here: the established edges freezeMu → actMu → {mbMu,
// exitMu, oracleMu} are inferred from the pause/epoch code itself, so any
// later acquisition against that order closes a cycle and is reported with
// no analyzer change. The one §12 clause that is an assertion rather than
// an inference — leaf-ness — is declared in the source it binds:
//
//	mbMu sync.Mutex //fdp:lockleaf
//
// marks a mutex terminal, and lockgraph reports any acquisition performed
// while it is held.
//
// Per function, the analysis is lexical in source order (the same
// approximation lockorder documents: exact for the straight-line and
// branch-local-release §12 patterns). Across functions it is a fixpoint
// over summaries — which locks a function may acquire (with an example
// path), which it still holds when it returns (pauseAll), and which it
// releases without acquiring (resumeAll) — exported as facts so callers in
// other packages see through calls. Escaping acquisitions make the
// pause/resume handoff a first-class pattern instead of an ignore site:
// a caller of pauseAll is analyzed as holding freezeMu and actMu until its
// matching resumeAll call. Interface-dispatched calls are opaque (no
// callee, no summary) — edges through them are not inferred, which is the
// usual trade of a static call graph.
package lockgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"fdp/internal/analysis"
)

// Analyzer is the lockgraph pass.
var Analyzer = &analysis.Analyzer{
	Name:      "lockgraph",
	Doc:       "infer the whole-program mutex acquisition graph, report cycles (with full acquisition paths) and acquisitions under a //fdp:lockleaf mutex",
	Run:       run,
	FactTypes: []analysis.Fact{(*FuncLocks)(nil), (*PkgGraph)(nil)},
}

// LeafDirective marks a mutex declaration as terminal.
const LeafDirective = "//fdp:lockleaf"

// OrderedDirective marks a mutex whose instances (the analysis merges all
// instances of a field into one node) are always acquired in a globally
// consistent instance order — ascending shard index, ascending pid — so a
// self-edge on the merged node is sanctioned rather than a deadlock.
const OrderedDirective = "//fdp:lockordered"

// FuncLocks summarizes one function's lock behavior for its callers.
type FuncLocks struct {
	// Acquires maps every lock the function may acquire, directly or
	// transitively, to an example acquisition path (call frames, outermost
	// first, each "func (file:line)").
	Acquires map[string][]string `json:"acquires,omitempty"`
	// EscapingAcquires are locks still held when the function returns
	// (the pauseAll half of a handoff pair).
	EscapingAcquires []string `json:"escaping_acquires,omitempty"`
	// EscapingReleases are locks released without a prior acquisition in
	// the function (the resumeAll half).
	EscapingReleases []string `json:"escaping_releases,omitempty"`
}

// AFact marks FuncLocks as a fact.
func (*FuncLocks) AFact() {}

// Edge is one inferred acquisition-order edge with an example path.
type Edge struct {
	From string   `json:"from"`
	To   string   `json:"to"`
	Path []string `json:"path"` // call frames, outermost first
	Pos  string   `json:"pos"`  // "file:line" of the acquiring statement
}

// PkgGraph is the acquisition graph visible at a package: every edge and
// leaf declaration of the package and its transitive dependencies.
type PkgGraph struct {
	Edges []Edge `json:"edges,omitempty"`
	// Leaves and Ordered carry the //fdp:lockleaf and //fdp:lockordered
	// declarations, so the assertions bind cross-package acquisitions too.
	Leaves  []string `json:"leaves,omitempty"`
	Ordered []string `json:"ordered,omitempty"`
}

// AFact marks PkgGraph as a fact.
func (*PkgGraph) AFact() {}

// --- lock identity -------------------------------------------------------

// isMutexType reports whether t (after deref) is sync.Mutex or
// sync.RWMutex.
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// lockKey names the mutex in recv (the X of recv.Lock()): a field key
// "pkg.Type.field" merging every instance of the type, or a package-level
// var key "pkg.var". Locals and unresolvable expressions return ok=false —
// they cannot participate in a cross-function cycle under this analysis.
func lockKey(pass *analysis.Pass, recv ast.Expr) (string, bool) {
	switch x := recv.(type) {
	case *ast.SelectorExpr:
		sel := pass.TypesInfo.Selections[x]
		if sel == nil {
			// Qualified package-level var: pkg.Mu
			if obj, ok := pass.TypesInfo.Uses[x.Sel].(*types.Var); ok && !obj.IsField() && obj.Pkg() != nil {
				return obj.Pkg().Name() + "." + obj.Name(), true
			}
			return "", false
		}
		field, ok := sel.Obj().(*types.Var)
		if !ok || !field.IsField() {
			return "", false
		}
		recvT := sel.Recv()
		if ptr, isPtr := recvT.(*types.Pointer); isPtr {
			recvT = ptr.Elem()
		}
		named, isNamed := recvT.(*types.Named)
		if !isNamed || named.Obj().Pkg() == nil {
			return "", false
		}
		return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + field.Name(), true
	case *ast.Ident:
		obj, ok := pass.TypesInfo.Uses[x].(*types.Var)
		if !ok || obj.IsField() || obj.Pkg() == nil {
			return "", false
		}
		if obj.Parent() != obj.Pkg().Scope() {
			return "", false // local mutex: out of scope
		}
		return obj.Pkg().Name() + "." + obj.Name(), true
	}
	return "", false
}

// mutexOp recognizes recv.Lock/RLock/Unlock/RUnlock() on a sync mutex.
func mutexOp(pass *analysis.Pass, call *ast.CallExpr) (key string, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	var acq bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acq = true
	case "Unlock", "RUnlock":
		acq = false
	default:
		return "", false, false
	}
	if !isMutexType(pass.TypesInfo.TypeOf(sel.X)) {
		return "", false, false
	}
	k, kOK := lockKey(pass, sel.X)
	if !kOK {
		return "", false, false
	}
	return k, acq, true
}

// calleeFunc resolves a call to its static *types.Func (any package).
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		if selection := pass.TypesInfo.Selections[fun]; selection != nil {
			obj = selection.Obj()
		} else {
			obj = pass.TypesInfo.Uses[fun.Sel]
		}
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	if sig, sigOK := fn.Type().(*types.Signature); sigOK && sig.Recv() != nil {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			return nil // dynamic dispatch: no static summary
		}
	}
	return fn
}

// --- per-function op sequences ------------------------------------------

type opKind int

const (
	opLock opKind = iota
	opUnlock
	opCall
	opDeferCall // deferred call: its escaping releases apply at return
)

type op struct {
	pos      token.Pos
	kind     opKind
	key      string      // opLock/opUnlock
	deferred bool        // opUnlock via defer
	callee   *types.Func // opCall
}

type funcInfo struct {
	fn   *types.Func
	decl *ast.FuncDecl
	ops  []op
}

func collect(pass *analysis.Pass) []*funcInfo {
	var infos []*funcInfo
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			fi := &funcInfo{fn: fn, decl: fd}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					return false // literals run later; their locks are their own
				case *ast.GoStmt:
					// The spawned goroutine runs concurrently: the caller
					// neither holds locks across it nor inherits what it
					// acquires or leaves held.
					return false
				case *ast.DeferStmt:
					if key, acq, ok := mutexOp(pass, n.Call); ok && !acq {
						fi.ops = append(fi.ops, op{pos: n.Pos(), kind: opUnlock, key: key, deferred: true})
					} else if callee := calleeFunc(pass, n.Call); callee != nil {
						fi.ops = append(fi.ops, op{pos: n.Pos(), kind: opDeferCall, callee: callee})
					}
					return false
				case *ast.CallExpr:
					if key, acq, ok := mutexOp(pass, n); ok {
						kind := opUnlock
						if acq {
							kind = opLock
						}
						fi.ops = append(fi.ops, op{pos: n.Pos(), kind: kind, key: key})
						return true
					}
					if callee := calleeFunc(pass, n); callee != nil {
						fi.ops = append(fi.ops, op{pos: n.Pos(), kind: opCall, callee: callee})
					}
				}
				return true
			})
			sort.SliceStable(fi.ops, func(i, j int) bool { return fi.ops[i].pos < fi.ops[j].pos })
			infos = append(infos, fi)
		}
	}
	return infos
}

// --- summary fixpoint ----------------------------------------------------

// summarize replays fi's ops against the current summaries and returns the
// resulting FuncLocks plus, when record is non-nil, the edges the replay
// creates (only wanted on the final, post-fixpoint replay).
func summarize(pass *analysis.Pass, fi *funcInfo, local map[*types.Func]*FuncLocks, record func(from, to string, path []string, pos token.Pos)) *FuncLocks {
	frame := func(pos token.Pos) string {
		p := pass.Fset.Position(pos)
		return fmt.Sprintf("%s (%s:%d)", fi.fn.Name(), shortFile(p.Filename), p.Line)
	}
	lookup := func(fn *types.Func) *FuncLocks {
		if s, ok := local[fn]; ok {
			return s
		}
		s := new(FuncLocks)
		if pass.ImportObjectFact(fn, s) {
			return s
		}
		return nil
	}

	out := &FuncLocks{Acquires: make(map[string][]string)}
	held := make(map[string]int)
	heldKeys := func() []string {
		var ks []string
		for k, n := range held {
			if n > 0 {
				ks = append(ks, k)
			}
		}
		sort.Strings(ks)
		return ks
	}
	var deferredReleases []string
	var deferredCalls []*types.Func
	escapingReleases := map[string]bool{}

	acquire := func(key string, path []string, pos token.Pos) {
		if _, seen := out.Acquires[key]; !seen {
			out.Acquires[key] = path
		}
		if record != nil {
			for _, h := range heldKeys() {
				record(h, key, path, pos)
			}
		}
	}

	for _, o := range fi.ops {
		switch o.kind {
		case opLock:
			acquire(o.key, []string{frame(o.pos)}, o.pos)
			held[o.key]++
		case opUnlock:
			if o.deferred {
				deferredReleases = append(deferredReleases, o.key)
				continue
			}
			if held[o.key] > 0 {
				held[o.key]--
			} else {
				escapingReleases[o.key] = true
			}
		case opCall:
			s := lookup(o.callee)
			if s == nil {
				continue
			}
			for _, key := range sortedKeys(s.Acquires) {
				acquire(key, append([]string{frame(o.pos)}, s.Acquires[key]...), o.pos)
			}
			for _, key := range s.EscapingAcquires {
				held[key]++
			}
			for _, key := range s.EscapingReleases {
				if held[key] > 0 {
					held[key]--
				} else {
					escapingReleases[key] = true
				}
			}
		case opDeferCall:
			deferredCalls = append(deferredCalls, o.callee)
		}
	}
	for _, key := range deferredReleases {
		if held[key] > 0 {
			held[key]--
		}
	}
	// A deferred call runs at return: its escaping releases (the resumeAll
	// half of a handoff) close what the body left open, exactly like a
	// deferred Unlock. Its acquisitions still count for the caller.
	for _, callee := range deferredCalls {
		s := lookup(callee)
		if s == nil {
			continue
		}
		for _, key := range sortedKeys(s.Acquires) {
			if _, seen := out.Acquires[key]; !seen {
				out.Acquires[key] = s.Acquires[key]
			}
		}
		for _, key := range s.EscapingReleases {
			if held[key] > 0 {
				held[key]--
			}
		}
	}
	out.EscapingAcquires = heldKeys()
	out.EscapingReleases = sortedSet(escapingReleases)
	return out
}

func sortedKeys(m map[string][]string) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortedSet(m map[string]bool) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func size(s *FuncLocks) int {
	return len(s.Acquires) + len(s.EscapingAcquires) + len(s.EscapingReleases)
}

// shortFile trims a filename to its last two path segments for readable
// frames.
func shortFile(name string) string {
	parts := strings.Split(name, "/")
	if len(parts) > 2 {
		parts = parts[len(parts)-2:]
	}
	return strings.Join(parts, "/")
}

// --- leaf declarations ---------------------------------------------------

// collectAnnotated finds struct fields and package-level vars of mutex type
// whose declaration carries the given directive.
func collectAnnotated(pass *analysis.Pass, directive string) []string {
	var leaves []string
	hasDirective := func(cgs ...*ast.CommentGroup) bool {
		for _, cg := range cgs {
			if cg == nil {
				continue
			}
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, directive) {
					return true
				}
			}
		}
		return false
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !hasDirective(field.Doc, field.Comment) {
					continue
				}
				t := pass.TypesInfo.TypeOf(field.Type)
				if !isMutexType(t) {
					continue
				}
				for _, name := range field.Names {
					leaves = append(leaves, pass.Pkg.Name()+"."+ts.Name.Name+"."+name.Name)
				}
			}
			return true
		})
		// Package-level mutex vars.
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || !hasDirective(gd.Doc, vs.Doc, vs.Comment) {
					continue
				}
				for _, name := range vs.Names {
					if obj, ok := pass.TypesInfo.Defs[name].(*types.Var); ok && isMutexType(obj.Type()) {
						leaves = append(leaves, pass.Pkg.Name()+"."+name.Name)
					}
				}
			}
		}
	}
	sort.Strings(leaves)
	return leaves
}

// --- the pass ------------------------------------------------------------

func run(pass *analysis.Pass) (any, error) {
	infos := collect(pass)

	// Intra-package fixpoint: summaries grow monotonically, so iterate
	// until the total size stops changing.
	local := make(map[*types.Func]*FuncLocks, len(infos))
	for _, fi := range infos {
		local[fi.fn] = &FuncLocks{Acquires: map[string][]string{}}
	}
	prev := -1
	for iter := 0; iter < 2*len(infos)+2; iter++ { // cap guards pathological recursion
		total := 0
		for _, fi := range infos {
			s := summarize(pass, fi, local, nil)
			local[fi.fn] = s
			total += size(s)
		}
		if total == prev {
			break
		}
		prev = total
	}

	// Export the per-function summaries so callers in downstream packages
	// see through calls into this package.
	for _, fi := range infos {
		if s := local[fi.fn]; size(s) > 0 {
			pass.ExportObjectFact(fi.fn, s)
		}
	}

	// Final replay records this package's edges.
	type localEdge struct {
		Edge
		pos token.Pos
	}
	var localEdges []localEdge
	edgeSeen := make(map[string]bool)
	for _, fi := range infos {
		fi := fi
		summarize(pass, fi, local, func(from, to string, path []string, pos token.Pos) {
			p := pass.Fset.Position(pos)
			e := localEdge{Edge: Edge{From: from, To: to, Path: path, Pos: fmt.Sprintf("%s:%d", shortFile(p.Filename), p.Line)}, pos: pos}
			sig := from + "→" + to + "@" + e.Pos
			if edgeSeen[sig] {
				return
			}
			edgeSeen[sig] = true
			localEdges = append(localEdges, e)
		})
	}

	// Merge the dependency graphs. Self-edges never enter the merged graph:
	// a sanctioned (//fdp:lockordered) one carries no cross-lock order
	// information, and an unsanctioned one is diagnosed below.
	merged := &PkgGraph{}
	leafSet := make(map[string]bool)
	orderedSet := make(map[string]bool)
	haveEdge := make(map[string]bool)
	addEdge := func(e Edge) {
		sig := e.From + "→" + e.To + "@" + e.Pos
		if e.From == e.To || haveEdge[sig] {
			return
		}
		haveEdge[sig] = true
		merged.Edges = append(merged.Edges, e)
	}
	for _, imp := range pass.Pkg.Imports() {
		g := new(PkgGraph)
		if !pass.ImportPackageFact(imp, g) {
			continue
		}
		for _, e := range g.Edges {
			addEdge(e)
		}
		for _, l := range g.Leaves {
			leafSet[l] = true
		}
		for _, o := range g.Ordered {
			orderedSet[o] = true
		}
	}
	for _, l := range collectAnnotated(pass, LeafDirective) {
		leafSet[l] = true
	}
	for _, o := range collectAnnotated(pass, OrderedDirective) {
		orderedSet[o] = true
	}
	depEdgeCount := len(merged.Edges)
	for _, e := range localEdges {
		addEdge(e.Edge)
	}
	merged.Leaves = sortedSet(leafSet)
	merged.Ordered = sortedSet(orderedSet)
	sort.Slice(merged.Edges[:depEdgeCount], func(i, j int) bool { // keep dep edges deterministic
		a, b := merged.Edges[i], merged.Edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Pos < b.Pos
	})
	pass.ExportPackageFact(merged)

	// adjacency for reachability
	succ := make(map[string][]Edge)
	for _, e := range merged.Edges {
		succ[e.From] = append(succ[e.From], e)
	}

	// Diagnostics: every local edge is checked against the merged graph.
	for _, e := range localEdges {
		if leafSet[e.From] {
			pass.Reportf(e.pos, "acquiring %s while holding %s violates its //fdp:lockleaf declaration (leaf locks are terminal); path: %s",
				e.To, e.From, strings.Join(e.Path, " → "))
			continue
		}
		if e.From == e.To {
			if !orderedSet[e.From] {
				pass.Reportf(e.pos, "lock self-cycle: %s acquired while already held; path: %s (if every holder acquires instances in a consistent order, declare //fdp:lockordered on the mutex)",
					e.To, strings.Join(e.Path, " → "))
			}
			continue
		}
		if chain := findPath(succ, e.To, e.From); chain != nil {
			var cycle []string
			var detail []string
			cycle = append(cycle, e.From, e.To)
			detail = append(detail, fmt.Sprintf("%s → %s via %s", e.From, e.To, strings.Join(e.Path, " → ")))
			for _, ce := range chain {
				cycle = append(cycle, ce.To)
				detail = append(detail, fmt.Sprintf("%s → %s via %s", ce.From, ce.To, strings.Join(ce.Path, " → ")))
			}
			pass.Reportf(e.pos, "lock cycle: %s; %s", strings.Join(cycle, " → "), strings.Join(detail, "; "))
		}
	}
	return nil, nil
}

// findPath returns a shortest edge chain from → … → to in the graph, or
// nil if to is unreachable.
func findPath(succ map[string][]Edge, from, to string) []Edge {
	type qe struct {
		node string
		path []Edge
	}
	visited := map[string]bool{from: true}
	queue := []qe{{node: from}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range succ[cur.node] {
			if visited[e.To] {
				continue
			}
			next := append(append([]Edge{}, cur.path...), e)
			if e.To == to {
				return next
			}
			visited[e.To] = true
			queue = append(queue, qe{node: e.To, path: next})
		}
	}
	return nil
}
