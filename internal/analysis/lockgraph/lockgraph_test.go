package lockgraph

import (
	"testing"

	"fdp/internal/analysis/analysistest"
)

// TestLockGraph runs the two-package fixture dependency-first, so lockuse
// imports the FuncLocks and PkgGraph facts lockdep exported — the cycle,
// the cross-package leaf violation, and the handoff idiom are only
// checkable with that fact flow.
func TestLockGraph(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "fdp/internal/lockdep", "fdp/internal/lockuse")
}
