// Fixture: a non-protocol package may use the whole ref surface freely.
package other

import "fdp/internal/ref"

func Build(n int) []ref.Ref {
	space := ref.NewSpace()
	nodes := space.NewN(n)
	ref.Sort(nodes)
	if ref.Less(nodes[0], nodes[1]) {
		return nodes[:ref.Index(nodes[1])]
	}
	return nodes
}
