// Stub of fdp/internal/ref with just enough surface for the fixtures to
// typecheck; the analyzer keys on the import path and identifier names.
package ref

type Ref struct{ id int32 }

func (r Ref) IsNil() bool    { return r.id == 0 }
func (r Ref) String() string { return "p" }

type Space struct{ next int32 }

func NewSpace() *Space        { return &Space{next: 1} }
func (s *Space) New() Ref     { s.next++; return Ref{id: s.next - 1} }
func (s *Space) NewN(n int) []Ref {
	out := make([]Ref, n)
	for i := range out {
		out[i] = s.New()
	}
	return out
}

func Index(r Ref) int      { return int(r.id) - 1 }
func ByIndex(i int) Ref    { return Ref{id: int32(i) + 1} }
func Less(a, b Ref) bool   { return a.id < b.id }
func Sort(refs []Ref)      {}
func Wire(r Ref) uint32    { return uint32(r.id) }
func FromWire(i uint32) Ref { return Ref{id: int32(i)} }

type Set map[Ref]struct{}

func NewSet(refs ...Ref) Set { return Set{} }
func (s Set) Add(r Ref)      { s[r] = struct{}{} }
func (s Set) Sorted() []Ref  { return nil }
