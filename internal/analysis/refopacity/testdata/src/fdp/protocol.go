// Fixture: package path "fdp" is a protocol package, so the simulator-only
// ref surface is off-limits.
package fdp

import "fdp/internal/ref"

func ordering(a, b ref.Ref) bool {
	return ref.Less(a, b) // want "ref.Less imposes an order on references"
}

func identity(r ref.Ref) int {
	return ref.Index(r) // want "ref.Index exposes the reference's integer identity"
}

func minting() ref.Ref {
	return ref.ByIndex(3) // want "ref.ByIndex mints a reference from an integer identity"
}

func space() []ref.Ref {
	var s *ref.Space // want "ref.Space is the reference-minting authority"
	s = ref.NewSpace() // want "ref.NewSpace mints fresh references"
	return s.NewN(2)
}

func render(r ref.Ref) string {
	return r.String() // want "protocol code must not render Ref.String"
}

func wiring(r ref.Ref) uint32 {
	return ref.Wire(r) // want "ref.Wire serializes the reference's integer identity for the wire"
}

func unwiring(id uint32) ref.Ref {
	return ref.FromWire(id) // want "ref.FromWire mints a reference from a wire identity"
}

// The sanctioned operations stay silent: copy, store, send-shaped pass,
// ==-compare, and deterministic iteration via ref.Sort / Set.Sorted.
func sanctioned(a, b ref.Ref, s ref.Set) bool {
	c := a
	stored := []ref.Ref{c, b}
	ref.Sort(stored)
	for _, r := range s.Sorted() {
		if r == a {
			return true
		}
	}
	return stored[0] == b
}

// Suppression: scenario construction inside a protocol package may opt out
// with a reasoned directive, trailing or on the line above.
func suppressedTrailing() []ref.Ref {
	return ref.NewSpace().NewN(1) //fdplint:ignore refopacity fixture exercises trailing suppression
}

func suppressedAbove() []ref.Ref {
	//fdplint:ignore refopacity fixture exercises line-above suppression
	return ref.NewSpace().NewN(1)
}

// A directive for a different analyzer does not suppress this one.
func wrongAnalyzer() []ref.Ref {
	//fdplint:ignore detiter suppressing the wrong analyzer must not help
	return ref.NewSpace().NewN(1) // want "ref.NewSpace mints fresh references"
}
