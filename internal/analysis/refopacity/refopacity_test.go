package refopacity

import (
	"testing"

	"fdp/internal/analysis/analysistest"
)

func TestRefOpacity(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer,
		"fdp",                // protocol package: violations flagged
		"fdp/internal/other", // simulator-side package: full surface allowed
	)
}
