// Package refopacity enforces the paper's copy-store-send discipline
// (Section 1.1) on protocol code: the only operations a protocol may
// perform on a process reference are copying it, storing it, sending it,
// and testing two references for equality. Ordering, integer identities
// and reference minting exist in package fdp/internal/ref strictly for the
// simulator's bookkeeping; this analyzer keeps them from escaping into the
// protocol layer, where using them would make the reproduction prove a
// theorem about a stronger model than the paper's.
//
// Scope: the protocol packages — the root package fdp (fdp.go/morph.go
// protocol plumbing), fdp/internal/framework, fdp/internal/primitives and
// fdp/internal/overlay — excluding _test.go files (tests build scenarios,
// which requires minting references).
//
// Flagged:
//   - any use of ref.Index, ref.ByIndex or ref.Less (integer identity /
//     ordering on references);
//   - any use of ref.Space or ref.NewSpace (protocols cannot mint
//     references, only receive them);
//   - explicit calls to Ref.String (a rendered reference invites parsing,
//     which would recover the forbidden integer identity).
//
// Deliberately allowed: ref.Sort and ref.Set.Sorted — deterministic
// iteration order is a simulation artifact required for per-seed
// reproducibility (sim.Protocol's documented contract), not a protocol
// decision; and scenario-construction sites inside protocol packages may
// suppress with //fdplint:ignore refopacity <reason>.
package refopacity

import (
	"go/ast"

	"fdp/internal/analysis"
)

// RefPkgPath is the package whose simulator-only surface is protected.
const RefPkgPath = "fdp/internal/ref"

// protocolPkgs are the packages bound by the copy-store-send discipline.
var protocolPkgs = map[string]bool{
	"fdp":                     true,
	"fdp/internal/framework":  true,
	"fdp/internal/primitives": true,
	"fdp/internal/overlay":    true,
}

// denied maps simulator-only identifiers of package ref to the reason they
// are off-limits for protocols.
var denied = map[string]string{
	"Index":    "exposes the reference's integer identity",
	"ByIndex":  "mints a reference from an integer identity",
	"Less":     "imposes an order on references",
	"NewSpace": "mints fresh references",
	"Space":    "is the reference-minting authority",
	"Wire":     "serializes the reference's integer identity for the wire",
	"FromWire": "mints a reference from a wire identity",
}

// Analyzer is the refopacity pass.
var Analyzer = &analysis.Analyzer{
	Name: "refopacity",
	Doc:  "protocol packages may only copy, store, send and ==-compare refs (paper §1.1 copy-store-send model)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if !protocolPkgs[analysis.PkgPath(pass.Pkg)] {
		return nil, nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				obj := pass.TypesInfo.Uses[n]
				if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != RefPkgPath {
					return true
				}
				if why, bad := denied[obj.Name()]; bad {
					pass.Reportf(n.Pos(), "ref.%s %s; protocol code may only copy, store, send or ==-compare references", obj.Name(), why)
				}
			case *ast.SelectorExpr:
				// Explicit Ref.String() renderings (method value or call).
				sel := pass.TypesInfo.Selections[n]
				if sel == nil {
					return true
				}
				if fn, ok := sel.Obj().(interface{ FullName() string }); ok {
					if fn.FullName() == "(fdp/internal/ref.Ref).String" {
						pass.Reportf(n.Pos(), "protocol code must not render Ref.String(): a rendered reference invites parsing, recovering the forbidden identity")
					}
				}
			}
			return true
		})
	}
	return nil, nil
}
