// Package analysistest runs an analyzer over golden fixture packages and
// checks the reported diagnostics against expectations written in the
// fixtures themselves, x/tools style:
//
//	bad()    // want "regexp matching the message"
//
// Fixtures live in <analyzer>/testdata/src/<import/path>/*.go. The loader
// is hermetic: imports resolve inside the testdata/src tree only, so
// fixtures stub the packages their checks key on (fdp/internal/ref,
// fdp/internal/sim, sync, time, …) with just enough API to typecheck.
// Stubbing the real import paths is what lets the analyzers' package-path
// scoping and denylists match exactly as they do on the real module, with
// no dependency on the module's own source from inside a test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"fdp/internal/analysis"
)

// Run loads each named fixture package from dir/src and checks a's
// diagnostics against the `// want` expectations in the package's files.
//
// The listed packages share one fact store and are analyzed in the order
// given, so a multi-package fixture exercises cross-package fact flow:
// list the dependency first and the dependent package imports whatever
// facts the analyzer exported for it. Imported-but-unlisted packages
// (stubs) are typechecked but never analyzed.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := &loader{
		root: filepath.Join(dir, "src"),
		fset: token.NewFileSet(),
		pkgs: make(map[string]*loadedPkg),
		info: analysis.NewInfo(),
	}
	facts := analysis.NewFactStore()
	for _, path := range pkgPaths {
		lp, err := l.load(path)
		if err != nil {
			t.Fatalf("loading fixture package %s: %v", path, err)
		}
		diags, err := analysis.RunPackageFacts(l.fset, lp.files, lp.pkg, l.info, []*analysis.Analyzer{a}, facts)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		checkWants(t, l.fset, lp.files, diags)
	}
}

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
}

// loader typechecks fixture packages, resolving imports inside root only.
// All packages share one FileSet and one types.Info so analyzer passes see
// selections and uses across the stub packages.
type loader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*loadedPkg
	info *types.Info
}

func (l *loader) load(path string) (*loadedPkg, error) {
	if lp, ok := l.pkgs[path]; ok {
		if lp == nil {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		return lp, nil
	}
	l.pkgs[path] = nil // cycle marker
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	tc := &types.Config{Importer: importerFunc(l.importPkg)}
	pkg, err := tc.Check(path, l.fset, files, l.info)
	if err != nil {
		return nil, err
	}
	lp := &loadedPkg{pkg: pkg, files: files}
	l.pkgs[path] = lp
	return lp, nil
}

func (l *loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	lp, err := l.load(path)
	if err != nil {
		return nil, fmt.Errorf("fixture import %q: %w (stub it under testdata/src)", path, err)
	}
	return lp.pkg, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// expectation is one `// want "re"` entry.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	met  bool
}

// wantRe also matches a want expectation embedded later in a comment
// (`//fdp:nondecomposable reason // want "..."`), for diagnostics that
// anchor on a directive comment's own line.
var wantRe = regexp.MustCompile("\\bwant\\s+([\"`].*)$")

// parseWants extracts expectations from the fixture files. Each comment
// may carry several quoted or backquoted regexps:
//
//	x() // want "first" `second`
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, lit := range splitQuoted(t, pos, m[1]) {
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, lit, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, text: lit})
				}
			}
		}
	}
	return wants
}

// splitQuoted parses a sequence of Go string literals.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var lit, rest string
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated backquote in want comment", pos)
			}
			lit, rest = s[1:1+end], s[2+end:]
		case '"':
			// Walk to the closing quote, honoring escapes.
			i := 1
			for i < len(s) && (s[i] != '"' || s[i-1] == '\\') {
				i++
			}
			if i == len(s) {
				t.Fatalf("%s: unterminated quote in want comment", pos)
			}
			var err error
			lit, err = strconv.Unquote(s[:i+1])
			if err != nil {
				t.Fatalf("%s: bad want literal %s: %v", pos, s[:i+1], err)
			}
			rest = s[i+1:]
		default:
			t.Fatalf("%s: want expects quoted regexps, got %q", pos, s)
		}
		out = append(out, lit)
		s = strings.TrimSpace(rest)
	}
	return out
}

// checkWants matches diagnostics against expectations one-to-one by file
// and line.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := parseWants(t, fset, files)
	sort.SliceStable(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", pos, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.text)
		}
	}
}
