// Package unit implements the command-line protocol `go vet -vettool=`
// expects from an analysis tool, against the internal/analysis framework.
// It is a dependency-free sibling of x/tools' unitchecker: the build tool
// invokes the binary as
//
//	fdplint -V=full          # describe the executable (for build caching)
//	fdplint -flags           # describe accepted flags in JSON
//	fdplint [flags] foo.cfg  # analyze one compilation unit
//
// where foo.cfg is a JSON description of a single package: its Go files,
// the import-path resolution map, and the compiler export-data file of
// every dependency. Typechecking therefore needs no source for imports —
// go/importer's gc importer reads the export data the build already
// produced.
package unit

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"strings"

	"fdp/internal/analysis"
)

// config mirrors the JSON compilation-unit description written by cmd/go
// (see x/tools unitchecker.Config; field names are the wire format).
type config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// versionFlag implements the -V=full handshake: cmd/go runs the tool with
// -V=full and derives a build-cache key from the output, which must look
// like "<progname> version devel ... buildID=<hex>".
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	prog, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(prog)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel buildID=%x\n", prog, h.Sum(nil))
	os.Exit(0)
	return nil
}

// Main is the entry point of a vettool built from the given analyzers.
func Main(analyzers ...*analysis.Analyzer) {
	log.SetFlags(0)
	log.SetPrefix("fdplint: ")

	flag.Var(versionFlag{}, "V", "print version and exit")
	printFlags := flag.Bool("flags", false, "print analyzer flags in JSON")
	// Accepted for go vet compatibility; fdplint has no JSON output mode
	// beyond an empty findings object.
	jsonOut := flag.Bool("json", false, "emit JSON output")
	flag.Parse()

	if *printFlags {
		// Tell go vet which flags the tool accepts, so it can validate the
		// command line before fanning out per-package invocations.
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		flags := []jsonFlag{{"V", true, "print version and exit"}, {"json", true, "emit JSON output"}}
		data, err := json.MarshalIndent(flags, "", "\t")
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(data)
		os.Exit(0)
	}

	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		log.Fatalf(`invoking fdplint directly is unsupported; run it via "go vet -vettool="`)
	}
	run(args[0], analyzers, *jsonOut)
}

func run(cfgFile string, analyzers []*analysis.Analyzer, jsonOut bool) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(config)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", cfgFile, err)
	}

	// The vetx output carries this package's serialized facts to dependent
	// packages' invocations (and feeds the build cache); it must exist even
	// when empty, or cmd/go fails the action.
	writeVetx := func(data []byte) {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
				log.Fatalf("failed to write vetx output: %v", err)
			}
		}
	}

	// Dependency packages are analyzed only for facts. Only this module's
	// own packages ever export fdplint facts, so everything else — the
	// entire standard library — takes the empty-vetx fast path and is never
	// typechecked from source.
	if cfg.VetxOnly && !strings.HasPrefix(cfg.ImportPath, "fdp/") && cfg.ImportPath != "fdp" {
		writeVetx(nil)
		os.Exit(0)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				os.Exit(0) // the compiler will report it
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	// Resolve imports through the export-data files the build produced.
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})

	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := analysis.NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		log.Fatal(err)
	}

	// Import the facts of module dependencies from their .vetx files, keyed
	// to the dependency packages as this compile's importer presents them.
	facts := analysis.NewFactStore()
	registry := analysis.FactRegistry(analyzers)
	for path, vetx := range cfg.PackageVetx {
		if !strings.HasPrefix(path, "fdp/") && path != "fdp" {
			continue
		}
		data, err := os.ReadFile(vetx)
		if err != nil || len(data) == 0 {
			continue // a dep with no facts wrote an empty vetx
		}
		depPkg, err := compilerImporter.Import(path)
		if err != nil {
			continue // not imported by this unit's sources after all
		}
		if err := facts.Decode(depPkg, data, registry); err != nil {
			log.Fatal(err)
		}
	}

	diags, err := analysis.RunPackageFacts(fset, files, pkg, info, analyzers, facts)
	if err != nil {
		log.Fatal(err)
	}
	vetx, err := facts.Encode(pkg)
	if err != nil {
		log.Fatal(err)
	}
	writeVetx(vetx)

	if cfg.VetxOnly {
		// A module package outside the vet patterns: facts computed and
		// written, diagnostics suppressed (go vet reports only on the
		// packages it was asked about).
		os.Exit(0)
	}

	if jsonOut {
		printJSON(os.Stdout, fset, cfg.ID, diags)
		os.Exit(0)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

// printJSON emits the x/tools JSON tree shape: {pkgID: {analyzer: [diag]}}.
func printJSON(w io.Writer, fset *token.FileSet, id string, diags []analysis.Diagnostic) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := make(map[string][]jsonDiag)
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
			Posn:    fset.Position(d.Pos).String(),
			Message: d.Message,
		})
	}
	tree := map[string]map[string][]jsonDiag{id: byAnalyzer}
	data, err := json.MarshalIndent(tree, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	w.Write(data)
	fmt.Fprintln(w)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
