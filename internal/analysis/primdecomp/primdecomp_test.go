package primdecomp

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"fdp/internal/analysis"
	"fdp/internal/analysis/analysistest"
)

// TestPrimDecomp checks the golden fixtures: the sanctioning rules, the
// mover fixpoint with path-bearing diagnostics, the backstop for
// stance-less protocol packages, and stance conflicts.
func TestPrimDecomp(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer,
		"fdp/internal/protogood", "fdp/internal/nostance", "fdp/internal/conflict")
}

// runOnSource analyzes a single self-contained fixture file and returns
// the diagnostics, for directives whose reports anchor on the directive
// comment itself (no room for a same-line want expectation).
func runOnSource(t *testing.T, src string) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "tiny.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := analysis.NewInfo()
	pkg, err := (&types.Config{}).Check("fdp/internal/tiny", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	diags, err := analysis.RunPackage(fset, []*ast.File{f}, pkg, info, []*analysis.Analyzer{Analyzer})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return diags
}

func wantOne(t *testing.T, diags []analysis.Diagnostic, substr string) {
	t.Helper()
	if len(diags) != 1 || !strings.Contains(diags[0].Message, substr) {
		t.Fatalf("want exactly one diagnostic containing %q, got %v", substr, diags)
	}
}

func TestNondecomposableNeedsReason(t *testing.T) {
	wantOne(t, runOnSource(t, `// Package tiny claims to be outside 𝒫 without saying why.
//
//fdp:nondecomposable
package tiny
`), "needs a reason")
}

func TestUnknownPrimitiveKind(t *testing.T) {
	wantOne(t, runOnSource(t, `// Package tiny misdeclares a primitive kind.
//
//fdp:decomposable
package tiny

//fdp:primitive frobnicate
func helper() {}
`), `unknown primitive kind "frobnicate"`)
}

func TestEmptyPrimitiveKinds(t *testing.T) {
	wantOne(t, runOnSource(t, `// Package tiny classifies a function with no kinds.
//
//fdp:decomposable
package tiny

//fdp:primitive
func helper() {}
`), "needs at least one kind")
}
