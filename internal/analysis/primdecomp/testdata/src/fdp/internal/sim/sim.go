// Package sim stubs the simulator surface primdecomp keys on: the Context
// sender, the World mutators, and the Protocol interface the backstop
// diagnostic looks for.
package sim

import "fdp/internal/ref"

// Mode stubs sim.Mode.
type Mode int

// RefInfo stubs sim.RefInfo.
type RefInfo struct {
	Ref  ref.Ref
	Mode Mode
}

// Message stubs sim.Message.
type Message struct {
	Label string
	Refs  []RefInfo
}

// Context stubs sim.Context.
type Context interface {
	Self() ref.Ref
	Send(to ref.Ref, msg Message)
}

// Protocol stubs sim.Protocol.
type Protocol interface {
	Timeout(ctx Context)
	Refs() []ref.Ref
}

// World stubs sim.World.
type World struct{ _ int }

// Enqueue stubs message injection.
func (w *World) Enqueue(to ref.Ref, msg Message) {}

// AddProcess stubs process creation.
func (w *World) AddProcess(r ref.Ref, m Mode, p Protocol) {}
