// Package nostance declares a protocol implementor but takes no
// decomposability stance: the backstop diagnostic anchors at the package
// clause.
package nostance // want "package declares protocol implementor Quiet but takes no decomposability stance"

import (
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// Quiet implements sim.Protocol without any stance directive.
type Quiet struct{ n ref.Set }

// Timeout implements sim.Protocol.
func (q *Quiet) Timeout(ctx sim.Context) {}

// Refs implements sim.Protocol.
func (q *Quiet) Refs() []ref.Ref { return nil }
