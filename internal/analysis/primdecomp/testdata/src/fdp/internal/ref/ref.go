// Package ref stubs the reference types primdecomp keys on.
package ref

// Ref stubs ref.Ref.
type Ref uint32

// Nil is the null reference.
var Nil Ref

// Set stubs ref.Set.
type Set map[Ref]struct{}

// NewSet returns a set of the given refs.
func NewSet(rs ...Ref) Set {
	s := make(Set, len(rs))
	for _, r := range rs {
		s[r] = struct{}{}
	}
	return s
}

// Add inserts r.
func (s Set) Add(r Ref) { s[r] = struct{}{} }

// Remove deletes r.
func (s Set) Remove(r Ref) { delete(s, r) }
