// Package protogood is a decomposable fixture protocol: a mix of
// sanctioned moves (suit markers, classified functions), unsanctioned
// direct moves, and an unsanctioned move reached only through an
// unexported helper — the diagnostic must surface at the exported caller
// with the full call path.
//
//fdp:decomposable
package protogood

import (
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// P implements sim.Protocol.
type P struct {
	n       ref.Set
	beliefs map[ref.Ref]sim.Mode
	anchor  ref.Ref
}

// Timeout is fully sanctioned: every move carries its primitive.
func (p *P) Timeout(ctx sim.Context) {
	for r := range p.n {
		ctx.Send(r, sim.Message{Label: "present", Refs: []sim.RefInfo{{Ref: ctx.Self()}}}) // ♦ self-introduction
	}
	// Fusion ♠: the anchor folds back into the neighborhood.
	p.n.Add(p.anchor)
}

// Refs implements sim.Protocol.
func (p *P) Refs() []ref.Ref {
	out := make([]ref.Ref, 0, len(p.n))
	for r := range p.n {
		out = append(out, r)
	}
	return out
}

// Absorb stores an incoming reference without declaring a primitive.
func (p *P) Absorb(v ref.Ref) {
	p.n.Add(v) // want "unsanctioned reference move outside the primitive vocabulary: Absorb .*: mutates the reference set p.n"
}

// Believe writes through a ref-keyed map: the key is the reference, so the
// store is a move even though the element type is plain data.
func (p *P) Believe(v ref.Ref, m sim.Mode) {
	p.beliefs[v] = m // want "unsanctioned reference move outside the primitive vocabulary: Believe .*: stores a reference into p.beliefs"
}

// Exclude moves only through the unexported helper; the path in the
// diagnostic must name both frames.
func (p *P) Exclude(v ref.Ref) {
	p.drop(v) // want "unsanctioned reference move outside the primitive vocabulary: Exclude .*: calls drop → drop .*: deletes a reference entry from p.n"
}

func (p *P) drop(v ref.Ref) {
	delete(p.n, v)
}

// SetNeighbor is scenario construction, classified out of the audit.
//
//fdp:primitive init
func (p *P) SetNeighbor(v ref.Ref) {
	p.n.Add(v)
}

// Reintegrate is a genuine primitive, declared as such.
//
//fdp:primitive fusion
func (p *P) Reintegrate(v ref.Ref) {
	p.n.Add(v)
}
