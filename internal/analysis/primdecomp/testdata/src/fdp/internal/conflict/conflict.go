// Package conflict declares both stances at once.
//
//fdp:decomposable
//fdp:nondecomposable it is also outside 𝒫, somehow // want "conflicting decomposability stances in one package"
package conflict
