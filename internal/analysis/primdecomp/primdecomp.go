// Package primdecomp machine-checks the paper's central discipline: a
// protocol in 𝒫 is safe to wrap (Theorems 1 and 4) exactly because every
// action decomposes into the four safe primitives — Introduction ♦,
// Delegation ♥, Fusion ♠, Reversal ♣ — plus the model-level absorb step
// and the exit action. internal/primitives proves the primitives preserve
// the process graph on toy graphs; primdecomp pins the production
// protocols to that vocabulary statically: in a package declared
// decomposable, every statement that moves or stores a reference or
// mutates process-graph edges must be sanctioned by the primitive
// vocabulary, and helpers are classified once with violations reported as
// a call path from the protocol surface.
//
// Package stance (package documentation, one per package):
//
//	//fdp:decomposable
//	//fdp:nondecomposable <reason>
//
// A package that declares a sim.Protocol or overlay.Protocol implementor
// must take a stance — the Foreback et al. baseline is deliberately
// nondecomposable (plain deletion instead of Reversal) and says so; every
// other protocol package opts in and is then checked.
//
// Sanctioning, from finest to coarsest:
//
//   - A statement-level marker: a comment on the move's line (or the line
//     above the statement) containing a suit symbol ♦ ♥ ♠ ♣ or the token
//     fdp:primitive. This is the showcase style of internal/core, where
//     each Algorithm 1-3 line cites its primitive.
//   - A function-level classification in the doc comment:
//
//	//fdp:primitive <kind>[,<kind>...]
//
//     with kinds introduction, delegation, fusion, reversal, absorb, exit,
//     init. Every move in a classified function is sanctioned, and calls
//     to it from anywhere are too — helpers are classified once. The init
//     kind marks scenario-construction surfaces (the model's arbitrary
//     initial states), not protocol actions.
//
// Moves are: sends through (sim.Context).Send / (overlay.Context).Send /
// (*sim.World).Enqueue / (*sim.World).AddProcess; stores into
// struct-field-rooted locations whose type involves ref.Ref (fields,
// ref-keyed or ref-valued maps, slices, nested structs); delete on such
// maps; and ref.Set Add/Remove on field-rooted sets. Purely local
// bookkeeping (locals, parameters, return-value assembly) moves nothing in
// the process graph and is exempt. ctx.Exit and ctx.Sleep are the model's
// own actions and need no marker.
//
// Unsanctioned moves propagate bottom-up as facts: an unclassified helper
// that moves becomes a mover, its callers inherit mover-ness, and the
// diagnostic fires at the protocol surface (an exported function or
// method) with the full offending path.
package primdecomp

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"fdp/internal/analysis"
)

// Analyzer is the primdecomp pass.
var Analyzer = &analysis.Analyzer{
	Name:      "primdecomp",
	Doc:       "protocol packages must decompose every reference move into the sanctioned primitive vocabulary (♦ ♥ ♠ ♣, absorb, exit) of internal/primitives",
	Run:       run,
	FactTypes: []analysis.Fact{(*MoverFact)(nil)},
}

// MoverFact marks a function that performs an unsanctioned reference move,
// with one representative path (frames outermost-first, each
// "func (file:line): what").
type MoverFact struct {
	Path []string `json:"path"`
}

// AFact marks MoverFact as a fact.
func (*MoverFact) AFact() {}

// Directives.
const (
	StanceDecomposable    = "//fdp:decomposable"
	StanceNondecomposable = "//fdp:nondecomposable"
	PrimitiveDirective    = "//fdp:primitive"
)

var validKinds = map[string]bool{
	"introduction": true, // ♦
	"delegation":   true, // ♥
	"fusion":       true, // ♠
	"reversal":     true, // ♣
	"absorb":       true, // the model-level absorb step
	"exit":         true, // the model-level exit action
	"init":         true, // scenario construction: the arbitrary initial state
}

// suitMarkers sanction a single statement.
var suitMarkers = []string{"♦", "♥", "♠", "♣", "fdp:primitive"}

// senders are the call surfaces that put a reference in flight or mutate
// the world's process set.
var senders = map[string]string{
	"(fdp/internal/sim.Context).Send":     "sends a reference-bearing message",
	"(fdp/internal/overlay.Context).Send": "sends a P-protocol message",
	"(*fdp/internal/sim.World).Enqueue":   "enqueues a message into the world",
	"(*fdp/internal/sim.World).AddProcess": "adds a process to the world",
}

// refSetMutators mutate a ref.Set in place.
var refSetMutators = map[string]bool{
	"(fdp/internal/ref.Set).Add":    true,
	"(fdp/internal/ref.Set).Remove": true,
}

func run(pass *analysis.Pass) (any, error) {
	stance, stancePos := packageStance(pass)
	implementor := protocolImplementor(pass)
	if stance == "" {
		if implementor != "" {
			pass.Reportf(stancePos, "package declares protocol implementor %s but takes no decomposability stance; add //fdp:decomposable or //fdp:nondecomposable <reason> to the package documentation", implementor)
		}
		return nil, nil
	}
	if stance != "decomposable" {
		return nil, nil // nondecomposable: stance recorded, nothing enforced
	}

	sanctioned := sanctionedLines(pass)

	// Collect per-function move info.
	type moveSite struct {
		pos  token.Pos
		desc string
	}
	type callSite struct {
		pos    token.Pos
		callee *types.Func
	}
	type funcInfo struct {
		fn         *types.Func
		classified bool
		moves      []moveSite // direct, unsanctioned
		calls      []callSite
	}
	var infos []*funcInfo
	byFn := make(map[*types.Func]*funcInfo)

	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			fi := &funcInfo{fn: fn, classified: classification(pass, fd)}
			unsanctioned := func(pos token.Pos) bool {
				p := pass.Fset.Position(pos)
				return !sanctioned[p.Filename][p.Line]
			}
			describe := func(pos token.Pos, what string) string {
				p := pass.Fset.Position(pos)
				return fmt.Sprintf("%s (%s:%d): %s", fn.Name(), shortFile(p.Filename), p.Line, what)
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						// m[k] = v adds the key to the map: judge the map's
						// type (a ref-keyed map gains a reference even when
						// the element is plain data).
						t := pass.TypesInfo.TypeOf(lhs)
						if ix, isIx := lhs.(*ast.IndexExpr); isIx {
							t = pass.TypesInfo.TypeOf(ix.X)
						}
						if fieldRooted(pass, lhs) && involvesRef(t) && unsanctioned(n.Pos()) {
							fi.moves = append(fi.moves, moveSite{n.Pos(), describe(n.Pos(), "stores a reference into "+types.ExprString(lhs))})
							break
						}
					}
				case *ast.CallExpr:
					// delete(m, k) on a field-rooted ref-bearing map
					if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" && len(n.Args) == 2 {
						if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin &&
							fieldRooted(pass, n.Args[0]) && involvesRef(pass.TypesInfo.TypeOf(n.Args[0])) && unsanctioned(n.Pos()) {
							fi.moves = append(fi.moves, moveSite{n.Pos(), describe(n.Pos(), "deletes a reference entry from "+types.ExprString(n.Args[0]))})
						}
						return true
					}
					callee := calleeFunc(pass, n)
					if callee == nil {
						return true
					}
					full := callee.FullName()
					if what, isSender := senders[full]; isSender {
						if unsanctioned(n.Pos()) {
							fi.moves = append(fi.moves, moveSite{n.Pos(), describe(n.Pos(), what)})
						}
						return true
					}
					if refSetMutators[full] {
						if sel, selOK := n.Fun.(*ast.SelectorExpr); selOK && fieldRooted(pass, sel.X) && unsanctioned(n.Pos()) {
							fi.moves = append(fi.moves, moveSite{n.Pos(), describe(n.Pos(), "mutates the reference set "+types.ExprString(sel.X))})
						}
						return true
					}
					fi.calls = append(fi.calls, callSite{n.Pos(), callee})
				}
				return true
			})
			infos = append(infos, fi)
			byFn[fn] = fi
		}
	}

	// Bottom-up mover propagation: intra-package fixpoint over the call
	// graph, with imported facts as the cross-package base.
	movers := make(map[*types.Func]*MoverFact)
	calleePath := func(fn *types.Func) *MoverFact {
		if fi, ok := byFn[fn]; ok {
			if fi.classified {
				return nil
			}
			return movers[fn]
		}
		f := new(MoverFact)
		if pass.ImportObjectFact(fn, f) {
			return f
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range infos {
			if fi.classified || movers[fi.fn] != nil {
				continue
			}
			if len(fi.moves) > 0 {
				movers[fi.fn] = &MoverFact{Path: []string{fi.moves[0].desc}}
				changed = true
				continue
			}
			for _, c := range fi.calls {
				if mf := calleePath(c.callee); mf != nil {
					p := pass.Fset.Position(c.pos)
					frame := fmt.Sprintf("%s (%s:%d): calls %s", fi.fn.Name(), shortFile(p.Filename), p.Line, c.callee.Name())
					movers[fi.fn] = &MoverFact{Path: append([]string{frame}, mf.Path...)}
					changed = true
					break
				}
			}
		}
	}

	// Diagnostics fire at the protocol surface: exported movers (which
	// include every interface method a protocol implements). Unexported
	// movers export their fact instead, so a cross-package caller inherits
	// the path; exported movers are diagnosed once, here.
	for _, fi := range infos {
		mf := movers[fi.fn]
		if mf == nil {
			continue
		}
		if !ast.IsExported(fi.fn.Name()) {
			pass.ExportObjectFact(fi.fn, mf)
			continue
		}
		pos := fi.fn.Pos()
		if len(fi.moves) > 0 {
			pos = fi.moves[0].pos
		} else {
			for _, c := range fi.calls {
				if calleePath(c.callee) != nil {
					pos = c.pos
					break
				}
			}
		}
		pass.Reportf(pos, "unsanctioned reference move outside the primitive vocabulary: %s; mark the move with its primitive (♦ ♥ ♠ ♣ or //fdp:primitive) or classify the function with //fdp:primitive <kind> — see internal/primitives",
			strings.Join(mf.Path, " → "))
	}
	return nil, nil
}

// --- directives ----------------------------------------------------------

// packageStance scans the package's non-test files for a stance directive.
// The returned pos anchors the missing-stance diagnostic (package clause of
// the first file).
func packageStance(pass *analysis.Pass) (string, token.Pos) {
	stance := ""
	var anchor token.Pos
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		if anchor == token.NoPos {
			anchor = f.Name.Pos()
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				switch {
				case strings.HasPrefix(c.Text, StanceNondecomposable):
					rest := strings.TrimPrefix(c.Text, StanceNondecomposable)
					if strings.TrimSpace(rest) == "" {
						pass.Reportf(c.Pos(), "//fdp:nondecomposable needs a reason: why is this protocol outside 𝒫?")
					}
					if stance == "decomposable" {
						pass.Reportf(c.Pos(), "conflicting decomposability stances in one package")
					}
					stance = "nondecomposable"
				case strings.HasPrefix(c.Text, StanceDecomposable):
					if stance == "nondecomposable" {
						pass.Reportf(c.Pos(), "conflicting decomposability stances in one package")
					}
					stance = "decomposable"
				}
			}
		}
	}
	return stance, anchor
}

// classification reports whether fd's doc carries //fdp:primitive, and
// validates the kinds.
func classification(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if !strings.HasPrefix(c.Text, PrimitiveDirective) {
			continue
		}
		rest := strings.TrimPrefix(c.Text, PrimitiveDirective)
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue // run-on prefix: not the directive
		}
		kinds := strings.FieldsFunc(rest, func(r rune) bool { return r == ' ' || r == '\t' || r == ',' })
		if len(kinds) == 0 {
			pass.Reportf(c.Pos(), "//fdp:primitive needs at least one kind (introduction, delegation, fusion, reversal, absorb, exit, init)")
			return true
		}
		for _, k := range kinds {
			if !validKinds[k] {
				pass.Reportf(c.Pos(), "unknown primitive kind %q (want introduction, delegation, fusion, reversal, absorb, exit, init)", k)
			}
		}
		return true
	}
	return false
}

// sanctionedLines marks, per file, the lines covered by a statement-level
// primitive marker: the marker's line, the line below it, and the full
// span of any statement starting on either (mirroring //fdplint:ignore).
func sanctionedLines(pass *analysis.Pass) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	mark := func(file string, line int) {
		if out[file] == nil {
			out[file] = make(map[int]bool)
		}
		out[file][line] = true
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		marked := make(map[int]bool)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !isMarker(c.Text) {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				mark(pos.Filename, pos.Line)
				mark(pos.Filename, pos.Line+1)
				marked[pos.Line] = true
				marked[pos.Line+1] = true
			}
		}
		if len(marked) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if _, ok := n.(ast.Stmt); !ok {
				return true
			}
			start := pass.Fset.Position(n.Pos())
			if !marked[start.Line] {
				return true
			}
			end := pass.Fset.Position(n.End())
			for line := start.Line; line <= end.Line; line++ {
				mark(start.Filename, line)
			}
			return true
		})
	}
	return out
}

func isMarker(text string) bool {
	if strings.HasPrefix(text, PrimitiveDirective) {
		return true
	}
	for _, m := range suitMarkers {
		if strings.Contains(text, m) {
			return true
		}
	}
	return false
}

// --- protocol-implementor backstop ---------------------------------------

// protocolImplementor returns the name of a non-test package-level type
// implementing sim.Protocol or overlay.Protocol, or "".
func protocolImplementor(pass *analysis.Pass) string {
	var ifaces []*types.Interface
	consider := func(pkg *types.Package) {
		switch analysis.PkgPath(pkg) {
		case "fdp/internal/sim", "fdp/internal/overlay":
			if tn, ok := pkg.Scope().Lookup("Protocol").(*types.TypeName); ok {
				if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
					ifaces = append(ifaces, iface)
				}
			}
		}
	}
	consider(pass.Pkg)
	for _, imp := range pass.Pkg.Imports() {
		consider(imp)
	}
	if len(ifaces) == 0 {
		return ""
	}
	// Only types declared in non-test files count.
	nonTestPos := func(pos token.Pos) bool {
		name := pass.Fset.Position(pos).Filename
		return !strings.HasSuffix(name, "_test.go")
	}
	scope := pass.Pkg.Scope()
	var names []string
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() || !nonTestPos(tn.Pos()) {
			continue
		}
		if _, isIface := tn.Type().Underlying().(*types.Interface); isIface {
			continue
		}
		for _, iface := range ifaces {
			if types.Implements(tn.Type(), iface) || types.Implements(types.NewPointer(tn.Type()), iface) {
				names = append(names, name)
				break
			}
		}
	}
	if len(names) == 0 {
		return ""
	}
	sort.Strings(names)
	return names[0]
}

// --- move recognition ----------------------------------------------------

// fieldRooted reports whether expr contains a struct-field selection — the
// store target (or mutated set) lives in process state, not a local.
func fieldRooted(pass *analysis.Pass, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s := pass.TypesInfo.Selections[sel]; s != nil {
			if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// involvesRef reports whether t can hold a reference: ref.Ref itself, or
// any composite reachable from it (ref.Set, []ref.Ref, maps keyed or
// valued by refs, structs with ref fields, sim.RefInfo, messages, …).
func involvesRef(t types.Type) bool {
	return involves(t, make(map[types.Type]bool))
}

func involves(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && analysis.PkgPath(obj.Pkg()) == "fdp/internal/ref" && (obj.Name() == "Ref" || obj.Name() == "Set") {
			return true
		}
		return involves(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Pointer:
		return involves(u.Elem(), seen)
	case *types.Slice:
		return involves(u.Elem(), seen)
	case *types.Array:
		return involves(u.Elem(), seen)
	case *types.Map:
		return involves(u.Key(), seen) || involves(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if involves(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// calleeFunc resolves a call to its *types.Func (interface methods
// included — the sender set is interface methods).
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		if selection := pass.TypesInfo.Selections[fun]; selection != nil {
			obj = selection.Obj()
		} else {
			obj = pass.TypesInfo.Uses[fun.Sel]
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

func shortFile(name string) string {
	parts := strings.Split(name, "/")
	if len(parts) > 2 {
		parts = parts[len(parts)-2:]
	}
	return strings.Join(parts, "/")
}
