// Stub of fdp/internal/ref for the lockorder fixtures.
package ref

type Ref struct{ id int32 }
