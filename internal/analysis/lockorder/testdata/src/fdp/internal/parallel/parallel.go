// Fixture: package path fdp/internal/parallel is the analyzer's scope.
// The Runtime shape mirrors the real one: snap guards snapshots, oracleMu
// serializes oracle evaluation, lock order is snap → oracleMu.
package parallel

import (
	"sync"

	"fdp/internal/ref"
	"fdp/internal/sim"
)

type Runtime struct {
	snap     sync.RWMutex
	oracleMu sync.Mutex
	oracle   sim.Oracle
	world    *sim.World
}

// The §8-conforming shape: snap first, oracleMu inside, Evaluate under it.
func (rt *Runtime) validate(u ref.Ref) bool {
	rt.snap.Lock()
	defer rt.snap.Unlock()
	rt.oracleMu.Lock()
	defer rt.oracleMu.Unlock()
	return rt.oracle.Evaluate(rt.world, u)
}

// Lexical release is as good as a deferred one.
func (rt *Runtime) coordinate(u ref.Ref) bool {
	rt.oracleMu.Lock()
	ok := rt.oracle.Evaluate(rt.world, u)
	rt.oracleMu.Unlock()
	return ok
}

func (rt *Runtime) inverted(u ref.Ref) {
	rt.oracleMu.Lock()
	rt.snap.Lock() // want "inverts the §8 lock order"
	rt.snap.Unlock()
	rt.oracleMu.Unlock()
}

func (rt *Runtime) freeze() {
	rt.snap.Lock()
	rt.snap.Unlock()
}

// freeze acquires snap, so calling it under oracleMu inverts the order
// transitively.
func (rt *Runtime) transitiveInversion() {
	rt.oracleMu.Lock()
	rt.freeze() // want "acquires the snapshot lock"
	rt.oracleMu.Unlock()
}

func (rt *Runtime) unguarded(u ref.Ref) bool {
	return rt.oracle.Evaluate(rt.world, u) // want "outside an oracleMu critical section"
}

func (rt *Runtime) leakOnReturn(cond bool) {
	rt.snap.Lock()
	if cond {
		return // want "return while holding rt.snap"
	}
	rt.snap.Unlock()
}

func (rt *Runtime) neverReleased() {
	rt.oracleMu.Lock() // want "locked but never released"
}

func (rt *Runtime) releaseWithoutAcquire() {
	rt.snap.Unlock() // want "released without a preceding acquisition"
}

// The branch-local-release idiom is fine: every path unlocks.
func (rt *Runtime) branchRelease(cond bool) bool {
	rt.snap.RLock()
	if cond {
		rt.snap.RUnlock()
		return false
	}
	rt.snap.RUnlock()
	return true
}

// Suppression with a reason is honoured.
func (rt *Runtime) audited(u ref.Ref) bool {
	//fdplint:ignore lockorder fixture exercises suppression; caller holds oracleMu
	return rt.oracle.Evaluate(rt.world, u)
}
