// Fixture: package path fdp/internal/parallel is the analyzer's scope.
// The Runtime shape mirrors the real sharded one (§12): freezeMu and the
// per-shard actMu pause the world, {mbMu, exitMu, oracleMu} are terminal
// leaves, and the legacy snap lock still counts as pause-class.
package parallel

import (
	"sync"

	"fdp/internal/ref"
	"fdp/internal/sim"
)

type shard struct {
	actMu sync.RWMutex
	mbMu  sync.Mutex
}

type Runtime struct {
	snap     sync.RWMutex // legacy pause-class lock, pre-§12 shape
	freezeMu sync.Mutex
	oracleMu sync.Mutex
	exitMu   sync.Mutex
	sh       *shard
	oracle   sim.Oracle
	world    *sim.World
}

// The §12-conforming shape: pause classes ascending, one leaf inside,
// Evaluate under oracleMu.
func (rt *Runtime) validate(u ref.Ref) bool {
	rt.freezeMu.Lock()
	defer rt.freezeMu.Unlock()
	rt.sh.actMu.Lock()
	defer rt.sh.actMu.Unlock()
	rt.oracleMu.Lock()
	defer rt.oracleMu.Unlock()
	return rt.oracle.Evaluate(rt.world, u)
}

// The legacy conforming shape: snap first, oracleMu inside.
func (rt *Runtime) validateLegacy(u ref.Ref) bool {
	rt.snap.Lock()
	defer rt.snap.Unlock()
	rt.oracleMu.Lock()
	defer rt.oracleMu.Unlock()
	return rt.oracle.Evaluate(rt.world, u)
}

// Lexical release is as good as a deferred one.
func (rt *Runtime) coordinate(u ref.Ref) bool {
	rt.oracleMu.Lock()
	ok := rt.oracle.Evaluate(rt.world, u)
	rt.oracleMu.Unlock()
	return ok
}

// Sequential leaf use is fine: the first leaf is released before the next.
func (rt *Runtime) leafHandoff() {
	rt.sh.mbMu.Lock()
	rt.sh.mbMu.Unlock()
	rt.exitMu.Lock()
	rt.exitMu.Unlock()
}

func (rt *Runtime) inverted(u ref.Ref) {
	rt.oracleMu.Lock()
	rt.snap.Lock() // want "inverts the §12 lock order"
	rt.snap.Unlock()
	rt.oracleMu.Unlock()
}

func (rt *Runtime) pauseUnderAct() {
	rt.sh.actMu.RLock()
	rt.freezeMu.Lock() // want "inverts the §12 lock order"
	rt.freezeMu.Unlock()
	rt.sh.actMu.RUnlock()
}

// Leaves are terminal: no second leaf may nest inside one.
func (rt *Runtime) nestedLeaves() {
	rt.exitMu.Lock()
	rt.sh.mbMu.Lock() // want "inverts the §12 lock order"
	rt.sh.mbMu.Unlock()
	rt.exitMu.Unlock()
}

func (rt *Runtime) actUnderLeaf() {
	rt.sh.mbMu.Lock()
	rt.sh.actMu.RLock() // want "inverts the §12 lock order"
	rt.sh.actMu.RUnlock()
	rt.sh.mbMu.Unlock()
}

func (rt *Runtime) freeze() {
	rt.freezeMu.Lock()
	rt.freezeMu.Unlock()
}

// freeze pauses the world, so calling it under a leaf inverts the order
// transitively.
func (rt *Runtime) transitiveInversion() {
	rt.oracleMu.Lock()
	rt.freeze() // want "pauses the world"
	rt.oracleMu.Unlock()
}

// ...and calling it while already holding a pause-class lock self-deadlocks.
func (rt *Runtime) reentrantPause() {
	rt.sh.actMu.RLock()
	rt.freeze() // want "pauses the world"
	rt.sh.actMu.RUnlock()
}

func (rt *Runtime) push() {
	rt.sh.mbMu.Lock()
	rt.sh.mbMu.Unlock()
}

// push acquires a leaf, so calling it while holding another leaf nests
// leaves transitively.
func (rt *Runtime) transitiveLeafNest() {
	rt.exitMu.Lock()
	rt.push() // want "leaves never nest"
	rt.exitMu.Unlock()
}

// Calling a leaf acquirer with nothing held is the normal shape.
func (rt *Runtime) leafCallClean() {
	rt.push()
}

func (rt *Runtime) unguarded(u ref.Ref) bool {
	return rt.oracle.Evaluate(rt.world, u) // want "outside an oracleMu critical section"
}

func (rt *Runtime) leakOnReturn(cond bool) {
	rt.snap.Lock()
	if cond {
		return // want "return while holding rt.snap"
	}
	rt.snap.Unlock()
}

func (rt *Runtime) neverReleased() {
	rt.oracleMu.Lock() // want "locked but never released"
}

func (rt *Runtime) releaseWithoutAcquire() {
	rt.snap.Unlock() // want "released without a preceding acquisition"
}

// The branch-local-release idiom is fine: every path unlocks.
func (rt *Runtime) branchRelease(cond bool) bool {
	rt.snap.RLock()
	if cond {
		rt.snap.RUnlock()
		return false
	}
	rt.snap.RUnlock()
	return true
}

// Suppression with a reason is honoured — the real pauseAll/resumeAll
// handoff pair relies on it.
func (rt *Runtime) audited(u ref.Ref) bool {
	//fdplint:ignore lockorder fixture exercises suppression; caller holds oracleMu
	return rt.oracle.Evaluate(rt.world, u)
}
