// Fixture: package path fdp/internal/parallel is the analyzer's scope.
// The Runtime shape mirrors the real sharded one (§12). lockorder checks
// only the local half of the discipline — Lock/Unlock pairing and
// Evaluate-under-oracleMu serialization; acquisition ORDER is the
// lockgraph analyzer's job (see its fixtures).
package parallel

import (
	"sync"

	"fdp/internal/ref"
	"fdp/internal/sim"
)

type shard struct {
	actMu sync.RWMutex
	mbMu  sync.Mutex
}

type Runtime struct {
	snap     sync.RWMutex // legacy pause-class lock, pre-§12 shape
	freezeMu sync.Mutex
	oracleMu sync.Mutex
	exitMu   sync.Mutex
	sh       *shard
	oracle   sim.Oracle
	world    *sim.World
}

// The §12-conforming shape: pause classes ascending, one leaf inside,
// Evaluate under oracleMu, everything deferred.
func (rt *Runtime) validate(u ref.Ref) bool {
	rt.freezeMu.Lock()
	defer rt.freezeMu.Unlock()
	rt.sh.actMu.Lock()
	defer rt.sh.actMu.Unlock()
	rt.oracleMu.Lock()
	defer rt.oracleMu.Unlock()
	return rt.oracle.Evaluate(rt.world, u)
}

// Lexical release is as good as a deferred one.
func (rt *Runtime) coordinate(u ref.Ref) bool {
	rt.oracleMu.Lock()
	ok := rt.oracle.Evaluate(rt.world, u)
	rt.oracleMu.Unlock()
	return ok
}

// Sequential leaf use is fine: the first leaf is released before the next.
func (rt *Runtime) leafHandoff() {
	rt.sh.mbMu.Lock()
	rt.sh.mbMu.Unlock()
	rt.exitMu.Lock()
	rt.exitMu.Unlock()
}

func (rt *Runtime) unguarded(u ref.Ref) bool {
	return rt.oracle.Evaluate(rt.world, u) // want "outside an oracleMu critical section"
}

func (rt *Runtime) leakOnReturn(cond bool) {
	rt.snap.Lock()
	if cond {
		return // want "return while holding rt.snap"
	}
	rt.snap.Unlock()
}

func (rt *Runtime) neverReleased() {
	rt.oracleMu.Lock() // want "locked but never released"
}

func (rt *Runtime) releaseWithoutAcquire() {
	rt.snap.Unlock() // want "released without a preceding acquisition"
}

// The branch-local-release idiom is fine: every path unlocks.
func (rt *Runtime) branchRelease(cond bool) bool {
	rt.snap.RLock()
	if cond {
		rt.snap.RUnlock()
		return false
	}
	rt.snap.RUnlock()
	return true
}

// Suppression with a reason is honoured — the real pauseAll/resumeAll
// handoff pair relies on it.
func (rt *Runtime) audited(u ref.Ref) bool {
	//fdplint:ignore lockorder fixture exercises suppression; caller holds oracleMu
	return rt.oracle.Evaluate(rt.world, u)
}
