// Stub of fdp/internal/sim for the lockorder fixtures.
package sim

import "fdp/internal/ref"

type World struct{ Steps int }

type Oracle interface {
	Name() string
	Evaluate(w *World, u ref.Ref) bool
}
