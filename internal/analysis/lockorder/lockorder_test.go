package lockorder

import (
	"testing"

	"fdp/internal/analysis/analysistest"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "fdp/internal/parallel")
}
