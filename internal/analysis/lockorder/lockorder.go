// Package lockorder enforces the DESIGN.md §12 locking discipline of the
// sharded concurrent runtime (fdp/internal/parallel):
//
//  1. Lock order: freezeMu → actMu (per shard, ascending) → at most one
//     leaf of {mbMu, exitMu, oracleMu}. Acquiring a lock of an earlier
//     class while holding a later one — directly, or through a function
//     that (transitively) pauses the world — inverts the order and can
//     deadlock against the coordinator's epoch pause. The legacy global
//     `snap` lock counts as pause-class, so pre-§12 code keeps its old
//     snap → oracleMu rule as a special case.
//  2. Leaf discipline: the leaves are terminal. While any of mbMu, exitMu
//     or oracleMu is held, no other lock may be acquired — not directly,
//     and not through a package function that acquires a leaf itself.
//  3. Pairing: every Lock/RLock must be released on all paths — either a
//     matching (deferred or lexically later) Unlock/RUnlock of the same
//     receiver, with no return statement inside the held region.
//  4. Serialization: every sim.Oracle.Evaluate call site in the package
//     must run under oracleMu, so stateful oracles never race with
//     themselves between the coordinator and validateExit.
//
// The checks are lexical within each function body (events in source
// order), plus two package-wide fixpoints computing which functions acquire
// pause-class and leaf-class locks transitively. That is an approximation —
// Go lock usage is not statically decidable — but it is exact for the
// straight-line and branch-local-release patterns §12 prescribes. The one
// sanctioned exception, the pauseAll/resumeAll handoff (locks acquired in
// one function and released in its inverse), carries the
// //fdplint:ignore lockorder <reason> it deserves.
package lockorder

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"fdp/internal/analysis"
)

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "internal/parallel locking discipline: freezeMu → actMu → one leaf, leaves never nest, all locks released on all paths, oracle evaluation serialized (DESIGN.md §12)",
	Run:  run,
}

const targetPkg = "fdp/internal/parallel"

func run(pass *analysis.Pass) (any, error) {
	if analysis.PkgPath(pass.Pkg) != targetPkg {
		return nil, nil
	}
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	pausers := rankAcquirers(pass, decls, func(r int) bool { return r == rankPause || r == rankAct })
	leafers := rankAcquirers(pass, decls, func(r int) bool { return r == rankLeaf })
	for _, fd := range decls {
		checkFunc(pass, fd, pausers, leafers)
	}
	return nil, nil
}

// --- mutex-operation recognition ---------------------------------------

type opKind int

const (
	opLock opKind = iota
	opUnlock
	opPauseCall // call to a function that transitively acquires a pause-class lock
	opLeafCall  // call to a function that transitively acquires a leaf lock
	opEvaluate  // sim.Oracle.Evaluate call
	opReturn
)

type event struct {
	pos      int // token.Pos as int, for sorting
	kind     opKind
	key      string // mutex receiver expression, e.g. "rt.oracleMu"
	deferred bool
	node     ast.Node
}

// mutexOp recognizes <recv>.Lock/RLock/Unlock/RUnlock() where recv is a
// sync.Mutex or sync.RWMutex, returning the receiver key and whether the
// op acquires.
func mutexOp(pass *analysis.Pass, call *ast.CallExpr) (key string, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	var acq bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acq = true
	case "Unlock", "RUnlock":
		acq = false
	default:
		return "", false, false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return "", false, false
	}
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" ||
		(obj.Name() != "Mutex" && obj.Name() != "RWMutex") {
		return "", false, false
	}
	return types.ExprString(sel.X), acq, true
}

// §12 lock classes, in acquisition order. rankNone locks (a mutex the
// runtime does not know about) get pairing checks only.
const (
	rankNone  = -1
	rankPause = 0 // freezeMu, and the legacy global snap lock
	rankAct   = 1 // per-shard actMu
	rankLeaf  = 2 // mbMu, exitMu, oracleMu — terminal
)

func lockRank(key string) int {
	switch {
	case hasField(key, "snap"), hasField(key, "freezeMu"):
		return rankPause
	case hasField(key, "actMu"):
		return rankAct
	case hasField(key, "mbMu"), hasField(key, "exitMu"), hasField(key, "oracleMu"):
		return rankLeaf
	}
	return rankNone
}

func hasField(key, field string) bool {
	return key == field || strings.HasSuffix(key, "."+field)
}

func isOracleMuKey(key string) bool { return hasField(key, "oracleMu") }

// calleeFunc resolves a call to its *types.Func when it targets a function
// or method of the package under analysis.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		if selection := pass.TypesInfo.Selections[fun]; selection != nil {
			obj = selection.Obj()
		} else {
			obj = pass.TypesInfo.Uses[fun.Sel]
		}
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != targetPkg {
		return nil
	}
	return fn
}

// isOracleEvaluate reports whether the call is sim.Oracle.Evaluate.
func isOracleEvaluate(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil {
		return false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok {
		return false
	}
	return fn.FullName() == "(fdp/internal/sim.Oracle).Evaluate"
}

// --- transitive-acquirer fixpoint --------------------------------------

// rankAcquirers computes the set of package functions that acquire a lock
// whose rank satisfies want, directly or through package-internal calls.
func rankAcquirers(pass *analysis.Pass, decls []*ast.FuncDecl, want func(int) bool) map[*types.Func]bool {
	direct := make(map[*types.Func]bool)
	calls := make(map[*types.Func][]*types.Func)
	declObj := func(fd *ast.FuncDecl) *types.Func {
		fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		return fn
	}
	for _, fd := range decls {
		fn := declObj(fd)
		if fn == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if key, acq, ok := mutexOp(pass, call); ok && acq && want(lockRank(key)) {
				direct[fn] = true
			}
			if callee := calleeFunc(pass, call); callee != nil {
				calls[fn] = append(calls[fn], callee)
			}
			return true
		})
	}
	// Propagate to a fixpoint.
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			if direct[fn] {
				continue
			}
			for _, c := range callees {
				if direct[c] {
					direct[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return direct
}

// --- per-function lexical check ----------------------------------------

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, pausers, leafers map[*types.Func]bool) {
	var events []event
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // literals run later; their lock use is their own
		case *ast.DeferStmt:
			if key, acq, ok := mutexOp(pass, n.Call); ok && !acq {
				events = append(events, event{pos: int(n.Pos()), kind: opUnlock, key: key, deferred: true, node: n})
			}
			return false // don't double-count the deferred call below
		case *ast.CallExpr:
			if key, acq, ok := mutexOp(pass, n); ok {
				kind := opUnlock
				if acq {
					kind = opLock
				}
				events = append(events, event{pos: int(n.Pos()), kind: kind, key: key, node: n})
				return true
			}
			if isOracleEvaluate(pass, n) {
				events = append(events, event{pos: int(n.Pos()), kind: opEvaluate, node: n})
			} else if callee := calleeFunc(pass, n); callee != nil {
				// A pause-acquirer that also touches leaves reports as the
				// pause call: the world pause is the stronger operation.
				if pausers[callee] {
					events = append(events, event{pos: int(n.Pos()), kind: opPauseCall, key: callee.Name(), node: n})
				} else if leafers[callee] {
					events = append(events, event{pos: int(n.Pos()), kind: opLeafCall, key: callee.Name(), node: n})
				}
			}
		case *ast.ReturnStmt:
			events = append(events, event{pos: int(n.Pos()), kind: opReturn, node: n})
		}
		return true
	})
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := make(map[string]int) // key -> lexically open Lock count
	lastLock := make(map[string]ast.Node)
	everLocked := make(map[string]bool)
	deferredRelease := make(map[string]bool)
	// heldOfRank returns one lexically held key whose rank satisfies want.
	heldOfRank := func(want func(int) bool) string {
		keys := make([]string, 0, len(held))
		for key, n := range held {
			if n > 0 && want(lockRank(key)) {
				keys = append(keys, key)
			}
		}
		if len(keys) == 0 {
			return ""
		}
		sort.Strings(keys) // deterministic diagnostics
		return keys[0]
	}
	leafHeld := func() string { return heldOfRank(func(r int) bool { return r == rankLeaf }) }
	oracleMuHeld := func() bool {
		for key, n := range held {
			if n > 0 && isOracleMuKey(key) {
				return true
			}
		}
		return false
	}

	for _, ev := range events {
		switch ev.kind {
		case opLock:
			rk := lockRank(ev.key)
			// Ascending-order rule: a ranked lock may only be acquired while
			// every held ranked lock has an equal or earlier class; leaves
			// admit no equal either (they never nest). Unranked locks are
			// still forbidden under a leaf.
			var over string
			if rk == rankNone {
				over = leafHeld()
			} else {
				over = heldOfRank(func(r int) bool {
					return r > rk || (r == rankLeaf && rk == rankLeaf)
				})
			}
			if over != "" {
				pass.Reportf(ev.node.Pos(), "acquiring %s while holding %s inverts the §12 lock order (freezeMu → actMu → one leaf of {mbMu, exitMu, oracleMu}) and can deadlock", ev.key, over)
			}
			held[ev.key]++
			everLocked[ev.key] = true
			lastLock[ev.key] = ev.node
		case opUnlock:
			if ev.deferred {
				deferredRelease[ev.key] = true
				continue
			}
			if held[ev.key] > 0 {
				held[ev.key]--
			} else if !everLocked[ev.key] && !deferredRelease[ev.key] {
				// held==0 after an earlier Lock is the branch-local-release
				// pattern (Lock; if c {Unlock; return}; …; Unlock) — only an
				// Unlock with no Lock anywhere before it is a sure bug.
				pass.Reportf(ev.node.Pos(), "%s released without a preceding acquisition in this function", ev.key)
			}
		case opPauseCall:
			// Pausing the world re-acquires freezeMu and every actMu, so any
			// held runtime lock — pause-class (self-deadlock) or leaf
			// (order inversion) — is fatal.
			if over := heldOfRank(func(r int) bool { return r != rankNone }); over != "" {
				pass.Reportf(ev.node.Pos(), "calling %s (which pauses the world) while holding %s inverts the §12 lock order and can deadlock", ev.key, over)
			}
		case opLeafCall:
			if over := leafHeld(); over != "" {
				pass.Reportf(ev.node.Pos(), "calling %s (which acquires a leaf lock) while holding %s violates the §12 leaf discipline: leaves never nest", ev.key, over)
			}
		case opEvaluate:
			if !oracleMuHeld() && !deferredOracleMu(deferredRelease, held) {
				pass.Reportf(ev.node.Pos(), "oracle.Evaluate outside an oracleMu critical section; §12 serializes all oracle evaluations so stateful oracles never race with themselves")
			}
		case opReturn:
			for key, n := range held {
				if n > 0 && !deferredRelease[key] {
					pass.Reportf(ev.node.Pos(), "return while holding %s with no deferred release; every Lock needs an Unlock on all paths", key)
				}
			}
		}
	}
	for key, n := range held {
		if n > 0 && !deferredRelease[key] {
			pass.Reportf(lastLock[key].Pos(), "%s is locked but never released in this function", key)
		}
	}
}

// deferredOracleMu reports whether an oracleMu key is lexically held via a
// deferred unlock (Lock(); defer Unlock() keeps the region open to the end
// of the function, so held[] alone under-approximates).
func deferredOracleMu(deferredRelease map[string]bool, held map[string]int) bool {
	for key := range deferredRelease {
		if isOracleMuKey(key) {
			return true
		}
	}
	_ = held
	return false
}
