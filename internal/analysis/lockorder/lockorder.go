// Package lockorder enforces the local half of the DESIGN.md §12 locking
// discipline of the sharded concurrent runtime (fdp/internal/parallel):
//
//  1. Pairing: every Lock/RLock must be released on all paths — either a
//     matching (deferred or lexically later) Unlock/RUnlock of the same
//     receiver, with no return statement inside the held region.
//  2. Serialization: every sim.Oracle.Evaluate call site in the package
//     must run under oracleMu, so stateful oracles never race with
//     themselves between the coordinator and validateExit.
//
// The global half — the freezeMu → actMu → leaf acquisition ORDER that an
// earlier version of this analyzer checked against a hand-maintained rank
// table — is now the lockgraph analyzer's job: lockgraph infers the
// whole-program acquisition graph from the code and rejects cycles and
// //fdp:lockleaf violations, so the order is a property of the inferred
// graph rather than a list this file would have to keep in sync with the
// runtime.
//
// The checks are lexical within each function body (events in source
// order). That is an approximation — Go lock usage is not statically
// decidable — but it is exact for the straight-line and
// branch-local-release patterns §12 prescribes. The one sanctioned
// exception, the pauseAll/resumeAll handoff (locks acquired in one
// function and released in its inverse), carries the
// //fdplint:ignore lockorder <reason> it deserves.
package lockorder

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"fdp/internal/analysis"
)

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "internal/parallel lock hygiene: all locks released on all paths, oracle evaluation serialized under oracleMu (DESIGN.md §12)",
	Run:  run,
}

const targetPkg = "fdp/internal/parallel"

func run(pass *analysis.Pass) (any, error) {
	if analysis.PkgPath(pass.Pkg) != targetPkg {
		return nil, nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil, nil
}

// --- mutex-operation recognition ---------------------------------------

type opKind int

const (
	opLock opKind = iota
	opUnlock
	opEvaluate // sim.Oracle.Evaluate call
	opReturn
)

type event struct {
	pos      int // token.Pos as int, for sorting
	kind     opKind
	key      string // mutex receiver expression, e.g. "rt.oracleMu"
	deferred bool
	node     ast.Node
}

// mutexOp recognizes <recv>.Lock/RLock/Unlock/RUnlock() where recv is a
// sync.Mutex or sync.RWMutex, returning the receiver key and whether the
// op acquires.
func mutexOp(pass *analysis.Pass, call *ast.CallExpr) (key string, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	var acq bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acq = true
	case "Unlock", "RUnlock":
		acq = false
	default:
		return "", false, false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return "", false, false
	}
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" ||
		(obj.Name() != "Mutex" && obj.Name() != "RWMutex") {
		return "", false, false
	}
	return types.ExprString(sel.X), acq, true
}

func hasField(key, field string) bool {
	return key == field || strings.HasSuffix(key, "."+field)
}

func isOracleMuKey(key string) bool { return hasField(key, "oracleMu") }

// isOracleEvaluate reports whether the call is sim.Oracle.Evaluate.
func isOracleEvaluate(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil {
		return false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok {
		return false
	}
	return fn.FullName() == "(fdp/internal/sim.Oracle).Evaluate"
}

// --- per-function lexical check ----------------------------------------

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var events []event
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // literals run later; their lock use is their own
		case *ast.DeferStmt:
			if key, acq, ok := mutexOp(pass, n.Call); ok && !acq {
				events = append(events, event{pos: int(n.Pos()), kind: opUnlock, key: key, deferred: true, node: n})
			}
			return false // don't double-count the deferred call below
		case *ast.CallExpr:
			if key, acq, ok := mutexOp(pass, n); ok {
				kind := opUnlock
				if acq {
					kind = opLock
				}
				events = append(events, event{pos: int(n.Pos()), kind: kind, key: key, node: n})
				return true
			}
			if isOracleEvaluate(pass, n) {
				events = append(events, event{pos: int(n.Pos()), kind: opEvaluate, node: n})
			}
		case *ast.ReturnStmt:
			events = append(events, event{pos: int(n.Pos()), kind: opReturn, node: n})
		}
		return true
	})
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := make(map[string]int) // key -> lexically open Lock count
	lastLock := make(map[string]ast.Node)
	everLocked := make(map[string]bool)
	deferredRelease := make(map[string]bool)
	oracleMuHeld := func() bool {
		for key, n := range held {
			if n > 0 && isOracleMuKey(key) {
				return true
			}
		}
		return false
	}

	for _, ev := range events {
		switch ev.kind {
		case opLock:
			held[ev.key]++
			everLocked[ev.key] = true
			lastLock[ev.key] = ev.node
		case opUnlock:
			if ev.deferred {
				deferredRelease[ev.key] = true
				continue
			}
			if held[ev.key] > 0 {
				held[ev.key]--
			} else if !everLocked[ev.key] && !deferredRelease[ev.key] {
				// held==0 after an earlier Lock is the branch-local-release
				// pattern (Lock; if c {Unlock; return}; …; Unlock) — only an
				// Unlock with no Lock anywhere before it is a sure bug.
				pass.Reportf(ev.node.Pos(), "%s released without a preceding acquisition in this function", ev.key)
			}
		case opEvaluate:
			if !oracleMuHeld() && !deferredOracleMu(deferredRelease, held) {
				pass.Reportf(ev.node.Pos(), "oracle.Evaluate outside an oracleMu critical section; §12 serializes all oracle evaluations so stateful oracles never race with themselves")
			}
		case opReturn:
			for key, n := range held {
				if n > 0 && !deferredRelease[key] {
					pass.Reportf(ev.node.Pos(), "return while holding %s with no deferred release; every Lock needs an Unlock on all paths", key)
				}
			}
		}
	}
	for key, n := range held {
		if n > 0 && !deferredRelease[key] {
			pass.Reportf(lastLock[key].Pos(), "%s is locked but never released in this function", key)
		}
	}
}

// deferredOracleMu reports whether an oracleMu key is lexically held via a
// deferred unlock (Lock(); defer Unlock() keeps the region open to the end
// of the function, so held[] alone under-approximates).
func deferredOracleMu(deferredRelease map[string]bool, held map[string]int) bool {
	for key := range deferredRelease {
		if isOracleMuKey(key) {
			return true
		}
	}
	_ = held
	return false
}
