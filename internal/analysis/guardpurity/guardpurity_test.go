package guardpurity

import (
	"testing"

	"fdp/internal/analysis/analysistest"
)

func TestGuardPurity(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "fdp/internal/oracle")
}
