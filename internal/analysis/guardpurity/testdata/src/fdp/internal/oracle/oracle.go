// Fixture: oracle Evaluate methods and world-predicate literals passed to
// the run drivers are guards; mutating the world (or messaging) from one
// is flagged, while observing — and mutating the oracle's own receiver —
// is fine. A predicate literal handed to anything but a driver is not a
// guard.
package oracle

import (
	"fdp/internal/parallel"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

type Impure struct{ calls int }

func (o *Impure) Name() string { return "impure" }

func (o *Impure) Evaluate(w *sim.World, u ref.Ref) bool {
	w.Execute()    // want "guard calls .*World.*Execute"
	w.Enqueue(sim.Message{To: u}) // want "guard calls .*World.*Enqueue"
	w.Steps = 0    // want "guard mutates state reachable from its parameter w"
	w.Steps++      // want "guard mutates state reachable from its parameter w"
	w.Counters()["probe"] = 1 // observation via getter is not a tracked write
	o.calls++      // receiver state is the oracle's own business
	return w.Awake(u)
}

type Pure struct{ evals int }

func (o *Pure) Name() string { return "pure" }

func (o *Pure) Evaluate(w *sim.World, u ref.Ref) bool {
	o.evals++
	return w.Awake(u) && !u.IsNil()
}

func drive(rt *parallel.Runtime, u ref.Ref) {
	rt.RunUntil(func(w *sim.World) bool {
		w.ForceAsleep(u) // want "guard calls .*World.*ForceAsleep"
		w.Steps = 1      // want "guard mutates state reachable from its parameter w"
		return w.Awake(u)
	}, 0, 0)
	rt.WaitUntil(func(w *sim.World) bool {
		w.Steps = 2 // want "guard mutates state reachable from its parameter w"
		return w.Steps > 10
	}, 0, 0)
	rt.RunUntil(func(w *sim.World) bool {
		return w.Steps > 10
	}, 0, 0)
}

// An assertion-style helper that runs the predicate once synchronously is
// not a run driver; its literal is not a guard and may mutate freely.
func checkOnce(w *sim.World, pred func(*sim.World) bool) bool { return pred(w) }

func assert(w *sim.World, u ref.Ref) bool {
	return checkOnce(w, func(w *sim.World) bool {
		w.ForceAsleep(u)
		w.Steps = 1
		return w.Awake(u)
	})
}

// A context helper that is not a guard may mutate freely.
func helper(ctx sim.Context, u ref.Ref, w *sim.World) {
	ctx.Send(u, sim.Message{To: u})
	ctx.Exit()
	w.Steps = 5
	w.SealInitialState()
}

// Suppression works for guards too.
type Instrumented struct{}

func (o Instrumented) Name() string { return "instrumented" }

func (o Instrumented) Evaluate(w *sim.World, u ref.Ref) bool {
	//fdplint:ignore guardpurity fixture exercises suppression on a guard body
	w.Steps++
	return true
}
