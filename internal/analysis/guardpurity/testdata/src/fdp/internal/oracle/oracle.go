// Fixture: oracle Evaluate methods and world-predicate literals are
// guards; mutating the world (or messaging) from one is flagged, while
// observing — and mutating the oracle's own receiver — is fine.
package oracle

import (
	"fdp/internal/ref"
	"fdp/internal/sim"
)

type Impure struct{ calls int }

func (o *Impure) Name() string { return "impure" }

func (o *Impure) Evaluate(w *sim.World, u ref.Ref) bool {
	w.Execute()    // want "guard calls .*World.*Execute"
	w.Enqueue(sim.Message{To: u}) // want "guard calls .*World.*Enqueue"
	w.Steps = 0    // want "guard mutates state reachable from its parameter w"
	w.Steps++      // want "guard mutates state reachable from its parameter w"
	w.Counters()["probe"] = 1 // observation via getter is not a tracked write
	o.calls++      // receiver state is the oracle's own business
	return w.Awake(u)
}

type Pure struct{ evals int }

func (o *Pure) Name() string { return "pure" }

func (o *Pure) Evaluate(w *sim.World, u ref.Ref) bool {
	o.evals++
	return w.Awake(u) && !u.IsNil()
}

func runUntil(pred func(w *sim.World) bool) {}

func drive(u ref.Ref) {
	runUntil(func(w *sim.World) bool {
		w.ForceAsleep(u) // want "guard calls .*World.*ForceAsleep"
		w.Steps = 1      // want "guard mutates state reachable from its parameter w"
		return w.Awake(u)
	})
	runUntil(func(w *sim.World) bool {
		return w.Steps > 10
	})
}

// A context helper that is not a guard may mutate freely.
func helper(ctx sim.Context, u ref.Ref, w *sim.World) {
	ctx.Send(u, sim.Message{To: u})
	ctx.Exit()
	w.Steps = 5
	w.SealInitialState()
}

// Suppression works for guards too.
type Instrumented struct{}

func (o Instrumented) Name() string { return "instrumented" }

func (o Instrumented) Evaluate(w *sim.World, u ref.Ref) bool {
	//fdplint:ignore guardpurity fixture exercises suppression on a guard body
	w.Steps++
	return true
}
