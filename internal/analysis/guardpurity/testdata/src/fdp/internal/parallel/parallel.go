// Stub of fdp/internal/parallel: just the run-driver entry points whose
// predicate arguments guardpurity treats as guards.
package parallel

import "fdp/internal/sim"

type Runtime struct{}

func (rt *Runtime) RunUntil(pred func(*sim.World) bool, poll, timeout int) bool  { return false }
func (rt *Runtime) WaitUntil(pred func(*sim.World) bool, poll, timeout int) bool { return false }
