// Stub of fdp/internal/sim: just the guard-relevant surface — the Oracle
// shape, the Context mutators and the World with its mutating methods.
package sim

import "fdp/internal/ref"

type Message struct{ To ref.Ref }

type World struct {
	Steps    int
	counters map[string]int
}

func (w *World) Execute() bool                    { return false }
func (w *World) Enqueue(m Message)                {}
func (w *World) AddProcess(r ref.Ref)             {}
func (w *World) ForceAsleep(r ref.Ref)            {}
func (w *World) SealInitialState()                {}
func (w *World) SetInitialComponents(n int)       {}
func (w *World) SetEventHook(h func())            {}
func (w *World) Awake(r ref.Ref) bool             { return true }
func (w *World) Counters() map[string]int         { return w.counters }

type Context interface {
	Self() ref.Ref
	Send(to ref.Ref, m Message)
	Exit()
	Sleep()
}

type Oracle interface {
	Name() string
	Evaluate(w *World, u ref.Ref) bool
}
