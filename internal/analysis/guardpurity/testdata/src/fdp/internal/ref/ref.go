// Stub of fdp/internal/ref for the guardpurity fixtures.
package ref

type Ref struct{ id int32 }

func (r Ref) IsNil() bool { return r.id == 0 }
