// Package guardpurity enforces that guard functions are side-effect-free.
// In the paper's model a guard is a predicate over the process's local
// state that decides whether an action is enabled; evaluating it must not
// change the system (Section 1.1). The reproduction's guards are the
// oracles (sim.Oracle.Evaluate — the exit guard of Section 1.3) and the
// world predicates passed to the run drivers (func(*sim.World) bool);
// both are evaluated speculatively, repeatedly, and — in the parallel
// runtime — on frozen snapshots, so a guard that sends a message or
// mutates world state corrupts the run in schedule-dependent ways no seed
// can reproduce.
//
// For every guard body (including nested function literals) the pass
// flags:
//
//   - calls to the known mutating methods of the model surface:
//     sim.Context.{Send,Exit,Sleep}, (*sim.World) mutators (Execute,
//     Enqueue, AddProcess, ForceAsleep, SealInitialState,
//     SetInitialComponents, SetEventHook), the parallel runtime's
//     mutators (Start, Stop, Mutate, Enqueue, AddProcess, ForceAsleep)
//     and MutableView.{Enqueue,Reseal};
//   - assignments (and ++/--) through a guard parameter: `w.x = y` on the
//     *sim.World parameter mutates the very state the guard is supposed
//     to only observe. Rebinding the parameter itself (`w = nil`) is
//     harmless and not flagged.
//
// Mutation of the oracle's own receiver is permitted: stateful oracles
// (e.g. the unsound timeout ablation) are simulator-internal and their
// statefulness is part of what the experiments measure.
package guardpurity

import (
	"go/ast"
	"go/types"

	"fdp/internal/analysis"
)

// mutators is the denylist of methods a guard must not call, keyed by
// types.Func.FullName.
var mutators = map[string]bool{
	"(fdp/internal/sim.Context).Send":               true,
	"(fdp/internal/sim.Context).Exit":               true,
	"(fdp/internal/sim.Context).Sleep":              true,
	"(*fdp/internal/sim.World).Execute":             true,
	"(*fdp/internal/sim.World).Enqueue":             true,
	"(*fdp/internal/sim.World).AddProcess":          true,
	"(*fdp/internal/sim.World).ForceAsleep":         true,
	"(*fdp/internal/sim.World).SealInitialState":    true,
	"(*fdp/internal/sim.World).SetInitialComponents": true,
	"(*fdp/internal/sim.World).SetEventHook":        true,
	"(*fdp/internal/parallel.Runtime).Start":        true,
	"(*fdp/internal/parallel.Runtime).Stop":         true,
	"(*fdp/internal/parallel.Runtime).Mutate":       true,
	"(*fdp/internal/parallel.Runtime).Enqueue":      true,
	"(*fdp/internal/parallel.Runtime).AddProcess":   true,
	"(*fdp/internal/parallel.Runtime).ForceAsleep":  true,
	"(*fdp/internal/parallel.MutableView).Enqueue":  true,
	"(*fdp/internal/parallel.MutableView).Reseal":   true,
}

// Analyzer is the guardpurity pass.
var Analyzer = &analysis.Analyzer{
	Name: "guardpurity",
	Doc:  "guard functions (oracle Evaluate methods, world predicates) must not send messages or mutate world state",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil && isOracleEvaluate(pass, n) {
					checkGuardBody(pass, n.Body, paramObjs(pass, n.Type))
				}
			case *ast.FuncLit:
				if isPredicateArg(pass, f, n) {
					checkGuardBody(pass, n.Body, paramObjs(pass, n.Type))
				}
			}
			return true
		})
	}
	return nil, nil
}

// isOracleEvaluate reports whether decl is a method implementing
// sim.Oracle's Evaluate(w *sim.World, u ref.Ref) bool.
func isOracleEvaluate(pass *analysis.Pass, decl *ast.FuncDecl) bool {
	if decl.Name.Name != "Evaluate" || decl.Recv == nil {
		return false
	}
	obj, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	if sig.Params().Len() != 2 || sig.Results().Len() != 1 {
		return false
	}
	return isNamed(sig.Params().At(0).Type(), "fdp/internal/sim", "World", true) &&
		isNamed(sig.Params().At(1).Type(), "fdp/internal/ref", "Ref", false) &&
		types.Identical(sig.Results().At(0).Type(), types.Typ[types.Bool])
}

// isPredicateArg reports whether lit appears as a call argument in a
// position whose parameter type is func(*sim.World) bool — the run
// drivers' world-predicate shape.
func isPredicateArg(pass *analysis.Pass, f *ast.File, lit *ast.FuncLit) bool {
	sig, ok := pass.TypesInfo.Types[lit].Type.(*types.Signature)
	if !ok {
		return false
	}
	if sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	if !isNamed(sig.Params().At(0).Type(), "fdp/internal/sim", "World", true) ||
		!types.Identical(sig.Results().At(0).Type(), types.Typ[types.Bool]) {
		return false
	}
	// Only literals passed directly to a call count as guards; a stored
	// predicate used for, say, a one-shot assertion is the caller's
	// business.
	used := false
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			if arg == ast.Expr(lit) {
				used = true
			}
		}
		return !used
	})
	return used
}

func isNamed(t types.Type, pkgPath, name string, wantPtr bool) bool {
	if wantPtr {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			return false
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// paramObjs collects the parameter objects of the guard, for the
// parameter-mutation check.
func paramObjs(pass *analysis.Pass, ft *ast.FuncType) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

func checkGuardBody(pass *analysis.Pass, body *ast.BlockStmt, params map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection := pass.TypesInfo.Selections[sel]
			if selection == nil {
				return true
			}
			fn, ok := selection.Obj().(*types.Func)
			if !ok {
				return true
			}
			if mutators[fn.FullName()] {
				pass.Reportf(n.Pos(), "guard calls %s; guards must be side-effect-free (paper §1.1: guards only observe state)", fn.FullName())
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if root := mutatedParamRoot(pass, lhs, params); root != "" {
					pass.Reportf(lhs.Pos(), "guard mutates state reachable from its parameter %s; guards must be side-effect-free", root)
				}
			}
		case *ast.IncDecStmt:
			if root := mutatedParamRoot(pass, n.X, params); root != "" {
				pass.Reportf(n.X.Pos(), "guard mutates state reachable from its parameter %s; guards must be side-effect-free", root)
			}
		}
		return true
	})
}

// mutatedParamRoot returns the parameter name when expr is a selector or
// index chain rooted at a guard parameter (w.stats.Steps, w.byRef[r], …).
// A bare parameter identifier (plain rebinding) returns "".
func mutatedParamRoot(pass *analysis.Pass, expr ast.Expr, params map[types.Object]bool) string {
	depth := 0
	for {
		switch e := expr.(type) {
		case *ast.SelectorExpr:
			expr = e.X
			depth++
		case *ast.IndexExpr:
			expr = e.X
			depth++
		case *ast.StarExpr:
			expr = e.X
			depth++
		case *ast.Ident:
			if depth > 0 && params[pass.TypesInfo.Uses[e]] {
				return e.Name
			}
			return ""
		default:
			return ""
		}
	}
}
