// Package guardpurity enforces that guard functions are side-effect-free.
// In the paper's model a guard is a predicate over the process's local
// state that decides whether an action is enabled; evaluating it must not
// change the system (Section 1.1). The reproduction's guards are the
// oracles (sim.Oracle.Evaluate — the exit guard of Section 1.3) and the
// func(*sim.World) bool predicate literals passed to the run-driver entry
// points (Runtime.RunUntil / Runtime.WaitUntil); both are evaluated
// speculatively, repeatedly, and — in the parallel runtime — on frozen
// snapshots, so a guard that sends a message or mutates world state
// corrupts the run in schedule-dependent ways no seed can reproduce. A
// predicate literal handed to anything else (say a one-shot assertion
// helper) is not a guard and is the caller's business.
//
// For every guard body (including nested function literals) the pass
// flags:
//
//   - calls to the known mutating methods of the model surface:
//     sim.Context.{Send,Exit,Sleep}, (*sim.World) mutators (Execute,
//     Enqueue, AddProcess, ForceAsleep, SealInitialState,
//     SetInitialComponents, SetEventHook), the parallel runtime's
//     mutators (Start, Stop, Mutate, Enqueue, AddProcess, ForceAsleep)
//     and MutableView.{Enqueue,Reseal};
//   - assignments (and ++/--) through a guard parameter: `w.x = y` on the
//     *sim.World parameter mutates the very state the guard is supposed
//     to only observe. Rebinding the parameter itself (`w = nil`) is
//     harmless and not flagged.
//
// Mutation of the oracle's own receiver is permitted: stateful oracles
// (e.g. the unsound timeout ablation) are simulator-internal and their
// statefulness is part of what the experiments measure.
package guardpurity

import (
	"go/ast"
	"go/types"

	"fdp/internal/analysis"
)

// mutators is the denylist of methods a guard must not call, keyed by
// types.Func.FullName.
var mutators = map[string]bool{
	"(fdp/internal/sim.Context).Send":               true,
	"(fdp/internal/sim.Context).Exit":               true,
	"(fdp/internal/sim.Context).Sleep":              true,
	"(*fdp/internal/sim.World).Execute":             true,
	"(*fdp/internal/sim.World).Enqueue":             true,
	"(*fdp/internal/sim.World).AddProcess":          true,
	"(*fdp/internal/sim.World).ForceAsleep":         true,
	"(*fdp/internal/sim.World).SealInitialState":    true,
	"(*fdp/internal/sim.World).SetInitialComponents": true,
	"(*fdp/internal/sim.World).SetEventHook":        true,
	"(*fdp/internal/parallel.Runtime).Start":        true,
	"(*fdp/internal/parallel.Runtime).Stop":         true,
	"(*fdp/internal/parallel.Runtime).Mutate":       true,
	"(*fdp/internal/parallel.Runtime).Enqueue":      true,
	"(*fdp/internal/parallel.Runtime).AddProcess":   true,
	"(*fdp/internal/parallel.Runtime).ForceAsleep":  true,
	"(*fdp/internal/parallel.MutableView).Enqueue":  true,
	"(*fdp/internal/parallel.MutableView).Reseal":   true,
}

// drivers is the allowlist of run-driver entry points whose predicate
// arguments are guards, keyed by types.Func.FullName.
var drivers = map[string]bool{
	"(*fdp/internal/parallel.Runtime).RunUntil":  true,
	"(*fdp/internal/parallel.Runtime).WaitUntil": true,
}

// Analyzer is the guardpurity pass.
var Analyzer = &analysis.Analyzer{
	Name: "guardpurity",
	Doc:  "guard functions (oracle Evaluate methods, run-driver world predicates) must not send messages or mutate world state",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil && isOracleEvaluate(pass, n) {
					checkGuardBody(pass, n.Body, paramObjs(pass, n.Type))
				}
			case *ast.CallExpr:
				if !isDriverCall(pass, n) {
					return true
				}
				for _, arg := range n.Args {
					if lit, ok := arg.(*ast.FuncLit); ok && isWorldPredicate(pass, lit) {
						checkGuardBody(pass, lit.Body, paramObjs(pass, lit.Type))
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// isOracleEvaluate reports whether decl is a method implementing
// sim.Oracle's Evaluate(w *sim.World, u ref.Ref) bool.
func isOracleEvaluate(pass *analysis.Pass, decl *ast.FuncDecl) bool {
	if decl.Name.Name != "Evaluate" || decl.Recv == nil {
		return false
	}
	obj, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	if sig.Params().Len() != 2 || sig.Results().Len() != 1 {
		return false
	}
	return isNamed(sig.Params().At(0).Type(), "fdp/internal/sim", "World", true) &&
		isNamed(sig.Params().At(1).Type(), "fdp/internal/ref", "Ref", false) &&
		types.Identical(sig.Results().At(0).Type(), types.Typ[types.Bool])
}

// isDriverCall reports whether call invokes one of the known run-driver
// entry points.
func isDriverCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil {
		return false
	}
	fn, ok := selection.Obj().(*types.Func)
	return ok && drivers[fn.FullName()]
}

// isWorldPredicate reports whether lit has the drivers' world-predicate
// shape, func(*sim.World) bool.
func isWorldPredicate(pass *analysis.Pass, lit *ast.FuncLit) bool {
	sig, ok := pass.TypesInfo.Types[lit].Type.(*types.Signature)
	if !ok {
		return false
	}
	if sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	return isNamed(sig.Params().At(0).Type(), "fdp/internal/sim", "World", true) &&
		types.Identical(sig.Results().At(0).Type(), types.Typ[types.Bool])
}

func isNamed(t types.Type, pkgPath, name string, wantPtr bool) bool {
	if wantPtr {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			return false
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// paramObjs collects the parameter objects of the guard, for the
// parameter-mutation check.
func paramObjs(pass *analysis.Pass, ft *ast.FuncType) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

func checkGuardBody(pass *analysis.Pass, body *ast.BlockStmt, params map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection := pass.TypesInfo.Selections[sel]
			if selection == nil {
				return true
			}
			fn, ok := selection.Obj().(*types.Func)
			if !ok {
				return true
			}
			if mutators[fn.FullName()] {
				pass.Reportf(n.Pos(), "guard calls %s; guards must be side-effect-free (paper §1.1: guards only observe state)", fn.FullName())
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if root := mutatedParamRoot(pass, lhs, params); root != "" {
					pass.Reportf(lhs.Pos(), "guard mutates state reachable from its parameter %s; guards must be side-effect-free", root)
				}
			}
		case *ast.IncDecStmt:
			if root := mutatedParamRoot(pass, n.X, params); root != "" {
				pass.Reportf(n.X.Pos(), "guard mutates state reachable from its parameter %s; guards must be side-effect-free", root)
			}
		}
		return true
	})
}

// mutatedParamRoot returns the parameter name when expr is a selector or
// index chain rooted at a guard parameter (w.stats.Steps, w.byRef[r], …).
// A bare parameter identifier (plain rebinding) returns "".
func mutatedParamRoot(pass *analysis.Pass, expr ast.Expr, params map[types.Object]bool) string {
	depth := 0
	for {
		switch e := expr.(type) {
		case *ast.SelectorExpr:
			expr = e.X
			depth++
		case *ast.IndexExpr:
			expr = e.X
			depth++
		case *ast.StarExpr:
			expr = e.X
			depth++
		case *ast.Ident:
			if depth > 0 && params[pass.TypesInfo.Uses[e]] {
				return e.Name
			}
			return ""
		default:
			return ""
		}
	}
}
