// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// typechecked package through a Pass and reports position-tagged
// Diagnostics, and may export Facts about package-level objects that
// downstream packages import (see facts.go). The module cannot vendor
// x/tools (the build environment is offline), so the subset the fdplint
// analyzers need — no Requires graph, no SSA — is implemented here
// directly on go/ast and go/types. The API mirrors x/tools deliberately:
// if the dependency ever becomes available, each analyzer ports by
// changing one import line.
//
// The drivers live alongside:
//
//   - internal/analysis/program typechecks the whole module in dependency
//     order (via `go list -deps -export -json`) and runs every analyzer
//     over every package with one shared fact store — the mode behind
//     `make lint` and a bare `fdplint ./...`.
//   - internal/analysis/unit implements the `go vet -vettool=` protocol so
//     cmd/fdplint also runs under the standard build machinery, with facts
//     serialized through the build system's .vetx files.
//   - internal/analysis/analysistest loads golden-fixture packages from an
//     analyzer's testdata/src tree and checks reported diagnostics against
//     `// want "regexp"` comments, threading facts across the listed
//     fixture packages in order.
//
// Suppression: a comment of the form
//
//	//fdplint:ignore <analyzer> <reason>
//
// suppresses that analyzer's diagnostics on the comment's line, on the
// line below it (so the directive can trail the offending line or sit on
// its own line above it), and across the full line span of any statement
// or declaration starting on either of those lines (so a directive covers
// a wrapped call or range whose diagnostic anchors on a later line). The
// reason is mandatory; a bare or malformed directive is itself reported.
// Filtering happens in RunPackage, so every driver and every analyzer
// gets the facility for free.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and in
	// //fdplint:ignore directives.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run inspects the package presented by pass and reports findings via
	// pass.Report/Reportf. The result value is unused (kept for x/tools API
	// parity).
	Run func(pass *Pass) (any, error)
	// FactTypes lists prototype values of every Fact type the analyzer
	// exports (see facts.go). Drivers use it to decide which analyzers must
	// run on dependency packages and to build the serialization registry.
	FactTypes []Fact
}

// Pass presents one typechecked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
	// Facts is the program-wide fact store, shared across packages and
	// analyzers by whole-program drivers. Nil under a bare RunPackage; the
	// fact methods allocate lazily so single-package analyzers still work.
	Facts *FactStore
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding. Analyzer is filled in by the driver.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// IgnoreDirective is the comment prefix of the suppression facility.
const IgnoreDirective = "//fdplint:ignore"

// directive is one well-formed //fdplint:ignore comment. hits counts the
// diagnostics it suppressed, so a directive that suppresses nothing can
// itself be reported (a stale ignore silently disables future findings on
// its line).
type directive struct {
	name   string // analyzer the directive names
	pos    token.Pos
	inTest bool
	hits   int
}

// ignoreSet records, per analyzer name, the file lines on which
// diagnostics are suppressed and by which directives.
type ignoreSet map[string]map[string]map[int][]*directive // analyzer -> filename -> line

func (s ignoreSet) add(d *directive, file string, line int) {
	byFile := s[d.name]
	if byFile == nil {
		byFile = make(map[string]map[int][]*directive)
		s[d.name] = byFile
	}
	if byFile[file] == nil {
		byFile[file] = make(map[int][]*directive)
	}
	for _, have := range byFile[file][line] {
		if have == d {
			return
		}
	}
	byFile[file][line] = append(byFile[file][line], d)
}

// suppressed reports whether a diagnostic of the named analyzer at
// file:line is covered, and credits the covering directives.
func (s ignoreSet) suppressed(name, file string, line int) bool {
	ds := s[name][file][line]
	for _, d := range ds {
		d.hits++
	}
	return len(ds) > 0
}

// collectIgnores scans every comment of every file for //fdplint:ignore
// directives. Malformed directives (run-on prefix, no analyzer name, or no
// reason) are reported as diagnostics of the pseudo-analyzer "fdplint" so
// that a typo never silently disables a check.
func collectIgnores(fset *token.FileSet, files []*ast.File) (ignoreSet, []*directive, []Diagnostic) {
	ignores := make(ignoreSet)
	var all []*directive
	var bad []Diagnostic
	for _, f := range files {
		inTest := IsTestFile(fset, f)
		// targets maps each directive-covered line to the directives
		// active there, for the statement-span extension below.
		targets := make(map[int][]*directive)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, IgnoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, IgnoreDirective)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					// A run-on variant like //fdplint:ignoreX must not pass
					// as a directive with analyzer name "X...".
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Message:  "malformed fdplint directive: want //fdplint:ignore <analyzer> <reason>",
						Analyzer: "fdplint",
					})
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Message:  "fdplint:ignore needs an analyzer name and a reason: //fdplint:ignore <analyzer> <reason>",
						Analyzer: "fdplint",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				d := &directive{name: fields[0], pos: c.Pos(), inTest: inTest}
				all = append(all, d)
				// Suppress the directive's own line and the next one, so the
				// directive works both trailing the offending statement and on
				// a line of its own above it.
				ignores.add(d, pos.Filename, pos.Line)
				ignores.add(d, pos.Filename, pos.Line+1)
				targets[pos.Line] = append(targets[pos.Line], d)
				targets[pos.Line+1] = append(targets[pos.Line+1], d)
			}
		}
		if len(targets) == 0 {
			continue
		}
		// A directive attaches to the statement or declaration starting on a
		// covered line; diagnostics for a multi-line statement (a wrapped
		// call, a range over a long composite) may anchor on any of its
		// lines, so suppress its whole line span.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case ast.Stmt, ast.Decl:
			default:
				return true
			}
			start := fset.Position(n.Pos())
			ds := targets[start.Line]
			if len(ds) == 0 {
				return true
			}
			end := fset.Position(n.End())
			for _, d := range ds {
				for line := start.Line; line <= end.Line; line++ {
					ignores.add(d, start.Filename, line)
				}
			}
			return true
		})
	}
	return ignores, all, bad
}

// RunPackage runs the analyzers over one typechecked package, applies the
// //fdplint:ignore suppressions, and returns the surviving diagnostics in
// file/position order. Facts stay package-local; whole-program drivers use
// RunPackageFacts with a shared store instead.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunPackageFacts(fset, files, pkg, info, analyzers, nil)
}

// RunPackageFacts is RunPackage with an explicit fact store: facts exported
// by earlier packages of the same run are importable, and facts exported
// here become visible to packages analyzed later. It also reports unused
// //fdplint:ignore directives — a directive naming an analyzer in this run
// that suppressed no diagnostic is itself a finding (pseudo-analyzer
// "fdplint"), so stale ignores can't silently accumulate.
func RunPackageFacts(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, facts *FactStore) ([]Diagnostic, error) {
	ignores, directives, diags := collectIgnores(fset, files)
	if facts == nil {
		facts = NewFactStore()
	}
	inRun := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		inRun[a.Name] = true
		var collected []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Facts:     facts,
			Report: func(d Diagnostic) {
				d.Analyzer = a.Name
				collected = append(collected, d)
			},
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range collected {
			pos := fset.Position(d.Pos)
			if ignores.suppressed(a.Name, pos.Filename, pos.Line) {
				continue
			}
			diags = append(diags, d)
		}
	}
	// Unused-directive findings: only for analyzers that actually ran (a
	// single-analyzer fixture run must not flag another analyzer's
	// directives), and not in test files (most analyzers skip those, so
	// their directives could never score a hit).
	for _, d := range directives {
		if d.hits == 0 && !d.inTest && inRun[d.name] {
			diags = append(diags, Diagnostic{
				Pos:      d.pos,
				Message:  fmt.Sprintf("unused fdplint:ignore directive: no %s diagnostic is suppressed here", d.name),
				Analyzer: "fdplint",
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// IsTestFile reports whether the file's name ends in _test.go. The fdplint
// disciplines bind protocol and simulator code; tests do scenario
// construction and bookkeeping that legitimately use simulator-only
// helpers, wall-clock deadlines and seeded randomness.
func IsTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// PkgPath normalizes a package path as reported by the build system:
// "fdp/internal/sim [fdp/internal/sim.test]" (a test variant) has the
// bracket part stripped so scope checks match the plain import path.
func PkgPath(pkg *types.Package) string {
	path := pkg.Path()
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return path
}
