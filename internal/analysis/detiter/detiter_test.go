package detiter

import (
	"testing"

	"fdp/internal/analysis/analysistest"
)

func TestDetIter(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer,
		"fdp/internal/sim",     // deterministic package: violations flagged
		"fdp/internal/trace",   // journal subsystem: violations flagged
		"fdp/internal/harness", // out of scope: everything allowed
	)
}
