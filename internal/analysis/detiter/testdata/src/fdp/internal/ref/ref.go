// Stub of fdp/internal/ref for the detiter fixtures.
package ref

type Ref struct{ id int32 }

func Sort(refs []Ref) {}

type Set map[Ref]struct{}

func (s Set) Sorted() []Ref { return nil }
