// Fixture: package path fdp/internal/sim is a deterministic package, so
// unsorted map ranges, global randomness and wall-clock reads are flagged.
package sim

import (
	"math/rand"
	"sort"
	"time"

	"fdp/internal/ref"
)

func scheduleOver(m map[ref.Ref]int) int {
	total := 0
	for _, v := range m { // want "range over map is iteration-order nondeterministic"
		total += v
	}
	return total
}

// Exemption (a): a single-statement map copy is order-insensitive.
func copyStats(src map[string]uint64) map[string]uint64 {
	dst := make(map[string]uint64, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// Exemption (b): collect-then-sort, via ref.Sort …
func sortedRefs(s map[ref.Ref]struct{}) []ref.Ref {
	out := make([]ref.Ref, 0, len(s))
	for r := range s {
		out = append(out, r)
	}
	ref.Sort(out)
	return out
}

// … and via the sort package.
func sortedKeys(m map[int]bool) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Collecting without sorting leaks iteration order into the result.
func unsortedKeys(m map[int]bool) []int {
	keys := make([]int, 0, len(m))
	for k := range m { // want "range over map is iteration-order nondeterministic"
		keys = append(keys, k)
	}
	return keys
}

func globalDraws() int {
	n := rand.Intn(10)         // want "rand.Intn draws from the process-global generator"
	_ = rand.Float64()         // want "rand.Float64 draws from the process-global generator"
	_ = rand.Perm(n)           // want "rand.Perm draws from the process-global generator"
	return n
}

// Seeded generators are the sanctioned randomness.
func seededDraws(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	if rng.Float64() > 0.5 {
		return rng.Intn(10)
	}
	return 0
}

func wallClock() time.Duration {
	start := time.Now() // want "time.Now reads the wall clock in a deterministic package"
	return time.Since(start) // want "time.Since reads the wall clock in a deterministic package"
}

// Suppression with a reason is honoured.
func orderInsensitive(m map[int]int) int {
	max := 0
	//fdplint:ignore detiter max of a map is order-insensitive
	for _, v := range m {
		if v > max {
			max = v
		}
	}
	return max
}
