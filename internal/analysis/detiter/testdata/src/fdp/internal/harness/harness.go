// Fixture: a package outside the deterministic set may range maps, draw
// global randomness and read the clock freely.
package harness

import (
	"math/rand"
	"time"
)

func Free(m map[int]int) int {
	total := rand.Intn(10)
	for _, v := range m {
		total += v
	}
	_ = time.Now()
	return total
}
