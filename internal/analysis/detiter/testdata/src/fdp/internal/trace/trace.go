// Fixture: package path fdp/internal/trace is a deterministic package —
// journals must be byte-identical across identical runs, so the writer and
// every record analysis must not leak map order, global randomness, or
// wall-clock reads.
package trace

import (
	"math/rand"
	"sort"
	"time"
)

type record struct {
	CID  uint64
	Proc string
}

// Span building indexes by causal ID but must walk records in slice order.
func spansByProc(recs []record) map[string][]record {
	out := make(map[string][]record)
	for _, r := range recs {
		out[r.Proc] = append(out[r.Proc], r)
	}
	return out
}

// Rendering the index by ranging the map leaks iteration order into the
// journal text.
func renderAll(spans map[string][]record) []string {
	var out []string
	for proc := range spans { // want "range over map is iteration-order nondeterministic"
		out = append(out, proc)
	}
	return out
}

// Collect-then-sort is the sanctioned shape.
func renderSorted(spans map[string][]record) []string {
	procs := make([]string, 0, len(spans))
	for proc := range spans {
		procs = append(procs, proc)
	}
	sort.Strings(procs)
	return procs
}

// Journal timestamps would make byte-identical replay impossible.
func stamp() time.Time {
	return time.Now() // want "time.Now reads the wall clock in a deterministic package"
}

// Sampling records with global randomness breaks replay too.
func sample(recs []record) record {
	return recs[rand.Intn(len(recs))] // want "rand.Intn draws from the process-global generator"
}
