// Stub of math/rand: package-level draws hit the process-global generator
// (what detiter flags); a seeded *Rand is the sanctioned alternative.
package rand

type Source interface{ Int63() int64 }

type Rand struct{}

func New(src Source) *Rand        { return &Rand{} }
func NewSource(seed int64) Source { return nil }

func (r *Rand) Intn(n int) int   { return 0 }
func (r *Rand) Float64() float64 { return 0 }

func Intn(n int) int   { return 0 }
func Float64() float64 { return 0 }
func Perm(n int) []int { return nil }
