// Stub of sort for the detiter fixtures.
package sort

func Slice(x interface{}, less func(i, j int) bool) {}
func Ints(x []int)                                  {}
func Strings(x []string)                            {}
