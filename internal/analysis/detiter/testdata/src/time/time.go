// Stub of time for the detiter fixtures.
package time

type Time struct{}

type Duration int64

func Now() Time              { return Time{} }
func Since(t Time) Duration  { return 0 }
func Until(t Time) Duration  { return 0 }
func Sleep(d Duration)       {}
