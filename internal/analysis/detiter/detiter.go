// Package detiter enforces per-seed determinism in the deterministic
// packages (fdp/internal/sim, core, churn, faults): identical seeds must
// yield identical runs, which is what makes replay debugging, the
// differential harness and every experiment table reproducible. The two
// bug classes PR 2 had to flush out dynamically — map-iteration-order
// leaking into scheduling decisions, and draws from process-global
// randomness — are exactly what this pass rejects from the program text.
//
// Flagged in non-test files of the deterministic packages:
//
//   - `range` over a map, unless the loop is one of the two provably
//     order-insensitive shapes:
//     (a) a single-statement map/set copy `dst[k] = v` (the destination's
//     final content does not depend on iteration order), or
//     (b) a single-statement collect `s = append(s, k)` whose slice is
//     subsequently passed to a sort (ref.Sort, sort.*, slices.Sort*)
//     later in the same function — the sanctioned collect-then-sort
//     idiom behind ref.Set.Sorted and Proc.NeighborRefs;
//   - calls to math/rand (and math/rand/v2) package-level functions, which
//     draw from the process-global generator (constructors rand.New,
//     rand.NewSource etc. are allowed — seeded *rand.Rand instances are
//     the deterministic way to randomize);
//   - any use of time.Now, time.Since or time.Until: wall-clock reads make
//     control flow machine- and load-dependent.
//
// Genuinely order-insensitive loops that fit neither exemption can state
// that with //fdplint:ignore detiter <reason>.
package detiter

import (
	"go/ast"
	"go/token"
	"go/types"

	"fdp/internal/analysis"
)

// deterministicPkgs must produce identical behaviour for identical seeds.
var deterministicPkgs = map[string]bool{
	"fdp/internal/sim":    true,
	"fdp/internal/core":   true,
	"fdp/internal/churn":  true,
	"fdp/internal/faults": true,
	// The journal/replay subsystem: a journal written twice from the same
	// schedule must be byte-identical, so the writer and every analysis
	// over records (spans, diffs, exports) must be order-deterministic.
	"fdp/internal/trace": true,
}

// globalRandAllowed lists math/rand identifiers that do NOT draw from the
// process-global source.
var globalRandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
	"Source": true, "Source64": true, "Rand": true, "Zipf": true, // types
	"PCG": true, "ChaCha8": true,
}

// clockDenied are the wall-clock reads.
var clockDenied = map[string]bool{"Now": true, "Since": true, "Until": true}

// Analyzer is the detiter pass.
var Analyzer = &analysis.Analyzer{
	Name: "detiter",
	Doc:  "deterministic packages must not iterate maps unsorted, draw global randomness, or read the wall clock",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if !deterministicPkgs[analysis.PkgPath(pass.Pkg)] {
		return nil, nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		checkFile(pass, f)
	}
	return nil, nil
}

func checkFile(pass *analysis.Pass, f *ast.File) {
	// Walk function by function so the collect-then-sort exemption can see
	// the whole enclosing body.
	ast.Inspect(f, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.FuncDecl:
			body = n.Body
		case *ast.FuncLit:
			body = n.Body
		default:
			return true
		}
		if body != nil {
			checkBody(pass, body)
		}
		return true
	})

	// Global randomness and wall-clock reads are position-independent.
	ast.Inspect(f, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		// Methods (rng.Intn on a seeded *rand.Rand) also belong to package
		// math/rand; only package-level functions draw from the global
		// generator.
		if fn, isFn := obj.(*types.Func); isFn {
			if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Recv() != nil {
				return true
			}
		}
		switch obj.Pkg().Path() {
		case "math/rand", "math/rand/v2":
			if !globalRandAllowed[obj.Name()] {
				pass.Reportf(id.Pos(), "rand.%s draws from the process-global generator; use a seeded *rand.Rand so runs are reproducible per seed", obj.Name())
			}
		case "time":
			if clockDenied[obj.Name()] {
				pass.Reportf(id.Pos(), "time.%s reads the wall clock in a deterministic package; thread logical steps (World.Steps) instead", obj.Name())
			}
		}
		return true
	})
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // nested functions get their own walk
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if isMapCopy(pass, rs) || isCollectThenSort(pass, body, rs) {
			return true
		}
		pass.Reportf(rs.Pos(), "range over map is iteration-order nondeterministic; iterate a sorted slice (ref.Set.Sorted, collect-then-sort) or annotate //fdplint:ignore detiter <reason>")
		return true
	})
}

// isMapCopy reports whether the range body is a single `dst[k] = v` (or
// `dst[k] += v` style) map assignment — an order-insensitive copy/merge.
func isMapCopy(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 {
		return false
	}
	ix, ok := as.Lhs[0].(*ast.IndexExpr)
	if !ok {
		return false
	}
	tv, ok := pass.TypesInfo.Types[ix.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// isCollectThenSort reports whether the range body is a single
// `s = append(s, ...)` whose slice is passed to a sorting call later in
// the same enclosing function body.
func isCollectThenSort(pass *analysis.Pass, enclosing *ast.BlockStmt, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Tok != token.ASSIGN {
		return false
	}
	target, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" || len(call.Args) == 0 {
		return false
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok || first.Name != target.Name {
		return false
	}
	targetObj := pass.TypesInfo.Uses[first]
	if targetObj == nil {
		targetObj = pass.TypesInfo.Defs[target]
	}

	// Look for a later sorting call taking the same slice.
	sorted := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || len(call.Args) == 0 {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		arg, ok := call.Args[0].(*ast.Ident)
		if ok && pass.TypesInfo.Uses[arg] == targetObj {
			sorted = true
		}
		return true
	})
	return sorted
}

// isSortCall recognizes ref.Sort, the sort package and the slices package.
func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "fdp/internal/ref":
		return obj.Name() == "Sort"
	case "sort", "slices":
		return true
	}
	return false
}
