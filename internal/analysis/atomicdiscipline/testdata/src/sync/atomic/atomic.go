// Package atomic stubs the address-taking sync/atomic API.
package atomic

// AddUint64 stub.
func AddUint64(addr *uint64, delta uint64) uint64 {
	*addr += delta
	return *addr
}

// LoadUint64 stub.
func LoadUint64(addr *uint64) uint64 { return *addr }

// StoreUint64 stub.
func StoreUint64(addr *uint64, val uint64) { *addr = val }
