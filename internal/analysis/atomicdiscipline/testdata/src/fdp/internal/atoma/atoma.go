// Package atoma is the declaring half of the two-package atomicdiscipline
// fixture: fields and vars first accessed atomically here taint downstream
// packages through object facts.
package atoma

import "sync/atomic"

// Counter mixes atomic and plain access to the same field in one package.
type Counter struct {
	hits uint64
}

// Inc is the sanctioned atomic access.
func (c *Counter) Inc() { atomic.AddUint64(&c.hits, 1) }

// Snapshot reads the field plainly: a mixed-access data race.
func (c *Counter) Snapshot() uint64 {
	return c.hits // want "plain access to c.hits"
}

// NewCounter initializes through a composite literal, which is exempt:
// construction happens before the value is shared.
func NewCounter() *Counter { return &Counter{hits: 0} }

// Gauge exports a field whose atomic taint must reach other packages.
type Gauge struct {
	Val uint64
}

// Bump is the atomic access establishing Val's fact.
func (g *Gauge) Bump() { atomic.AddUint64(&g.Val, 1) }

// Total is a package-level var accessed atomically here and plainly in
// atomb.
var Total uint64

// AddTotal is the atomic access establishing Total's fact.
func AddTotal() uint64 { return atomic.AddUint64(&Total, 1) }
