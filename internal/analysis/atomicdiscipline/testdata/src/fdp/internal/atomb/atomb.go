// Package atomb is the downstream half of the two-package atomicdiscipline
// fixture: the tainted objects arrive as imported facts, and an ignore
// directive here must suppress a diagnostic raised against an upstream
// fact.
package atomb

import (
	"sync/atomic"

	"fdp/internal/atoma"
)

// ReadTotal reads the upstream atomic var plainly.
func ReadTotal() uint64 {
	return atoma.Total // want "plain access to Total"
}

// ReadGauge reads the upstream atomic field plainly.
func ReadGauge(g *atoma.Gauge) uint64 {
	return g.Val // want "plain access to g.Val"
}

// OkTotal goes through sync/atomic: qualified atomic access is sanctioned.
func OkTotal() uint64 { return atomic.LoadUint64(&atoma.Total) }

// Audited suppresses the cross-package diagnostic with an ignore; the
// directive counts as used, so no unused-ignore diagnostic fires either.
func Audited() uint64 {
	//fdplint:ignore atomicdiscipline consistent snapshot taken under external serialization
	return atoma.Total
}

// Unrelated carries an ignore that suppresses nothing: the facility itself
// reports it.
func Unrelated() uint64 {
	//fdplint:ignore atomicdiscipline nothing here needs suppression // want "unused fdplint:ignore directive: no atomicdiscipline diagnostic is suppressed here"
	return 0
}
