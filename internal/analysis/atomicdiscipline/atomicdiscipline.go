// Package atomicdiscipline enforces the all-or-nothing rule of sync/atomic:
// once any code accesses a variable through the atomic functions, every
// access to that variable — in any package of the program — must be
// atomic. A single plain load racing an atomic store is a data race the
// race detector only catches if a test happens to drive both sides; this
// analyzer catches the mix statically.
//
// A struct field or package-level variable becomes "atomic" when its
// address is passed to a sync/atomic function (atomic.LoadUint64(&s.seq),
// atomic.AddInt64(&ops, 1), …). The discovery is exported as an object
// fact, so a package that takes the address atomically taints the field
// for every downstream package. Any other appearance of the variable —
// plain read, plain write, address-take for non-atomic purposes — is
// reported, except inside composite literals (construction happens before
// the value is shared, and the atomic package itself documents that
// initialization may be plain).
//
// The typed atomics (atomic.Uint64, atomic.Bool, …) make this discipline
// structural and are what the runtime packages actually use; this analyzer
// exists to keep the address-passing style from quietly regressing into a
// mixed regime. Facts flow forward only: a plain access compiled before
// the first atomic access of the same field (an upstream package, with the
// atomic use downstream) is out of scope — in this codebase fields are
// accessed atomically where they are declared, so the declaring package
// always exports the fact first.
package atomicdiscipline

import (
	"fmt"
	"go/ast"
	"go/types"

	"fdp/internal/analysis"
)

// Analyzer is the atomicdiscipline pass.
var Analyzer = &analysis.Analyzer{
	Name:      "atomicdiscipline",
	Doc:       "a variable accessed through sync/atomic must be accessed atomically everywhere; mixed plain/atomic access is a data race",
	Run:       run,
	FactTypes: []analysis.Fact{(*AtomicFact)(nil)},
}

// AtomicFact marks a field or package-level variable as atomically
// accessed; Pos is the "file:line" of the first atomic access seen.
type AtomicFact struct {
	Pos string `json:"pos"`
}

// AFact marks AtomicFact as a fact.
func (*AtomicFact) AFact() {}

func run(pass *analysis.Pass) (any, error) {
	// Pass 1: find &x arguments of sync/atomic calls. sanctioned holds the
	// ast.Expr occurrences that ARE the atomic access (and so must not be
	// flagged by pass 2); atomicObjs the tainted objects with first-seen
	// position.
	sanctioned := make(map[ast.Expr]bool)
	atomicObjs := make(map[types.Object]string)
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				obj := addressedObject(pass, un.X)
				if obj == nil {
					continue
				}
				sanctioned[un.X] = true
				// For a qualified var (&pkg.V) pass 2 visits the Sel ident
				// on its own; sanction it too.
				if sel, isSel := un.X.(*ast.SelectorExpr); isSel {
					sanctioned[sel.Sel] = true
				}
				if _, seen := atomicObjs[obj]; !seen {
					p := pass.Fset.Position(un.Pos())
					atomicObjs[obj] = fmt.Sprintf("%s:%d", p.Filename, p.Line)
				}
			}
			return true
		})
	}
	for obj, pos := range atomicObjs {
		pass.ExportObjectFact(obj, &AtomicFact{Pos: pos})
	}

	// isAtomic consults local discoveries first, then imported facts (the
	// field may be declared — and atomically used — upstream).
	posOf := func(obj types.Object) (string, bool) {
		if pos, ok := atomicObjs[obj]; ok {
			return pos, true
		}
		var f AtomicFact
		if pass.ImportObjectFact(obj, &f) {
			return f.Pos, true
		}
		return "", false
	}

	// Pass 2: any other appearance of a tainted object is a mixed access.
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		inComposite := make(map[ast.Expr]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if cl, ok := n.(*ast.CompositeLit); ok {
				for _, elt := range cl.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						inComposite[kv.Key] = true
					}
				}
			}
			var obj types.Object
			var expr ast.Expr
			switch e := n.(type) {
			case *ast.SelectorExpr:
				if s := pass.TypesInfo.Selections[e]; s != nil {
					if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
						obj, expr = v, e
					}
				}
			case *ast.Ident:
				if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok && !v.IsField() && v.Parent() == v.Pkg().Scope() {
					obj, expr = v, e
				}
			}
			if obj == nil || sanctioned[expr] || inComposite[expr] {
				return true
			}
			if pos, ok := posOf(obj); ok {
				pass.Reportf(expr.Pos(), "plain access to %s, which is accessed atomically (sync/atomic at %s); every access to an atomically-used variable must go through sync/atomic", types.ExprString(expr), shortPos(pos))
				return false
			}
			return true
		})
	}
	return nil, nil
}

// isAtomicCall reports whether call invokes a package-level function of
// sync/atomic (the address-taking API; typed-atomic methods never take an
// outside address).
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if analysis.PkgPath(fn.Pkg()) != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// addressedObject resolves &expr's operand to a struct field or
// package-level variable (the objects facts can name); locals return nil —
// a local can't be shared across packages and escape analysis is out of
// scope here.
func addressedObject(pass *analysis.Pass, expr ast.Expr) types.Object {
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		if s := pass.TypesInfo.Selections[e]; s != nil {
			if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
				return v
			}
			return nil
		}
		// Qualified package-level var: pkg.V.
		if v, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v
		}
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v
		}
	case *ast.IndexExpr:
		return addressedObject(pass, e.X)
	}
	return nil
}

// shortPos trims a position's filename to its last two path segments.
func shortPos(pos string) string {
	slash := 0
	for i := len(pos) - 1; i >= 0; i-- {
		if pos[i] == '/' {
			slash++
			if slash == 2 {
				return pos[i+1:]
			}
		}
	}
	return pos
}
