package atomicdiscipline

import (
	"testing"

	"fdp/internal/analysis/analysistest"
)

// TestAtomicDiscipline runs the two-package fixture dependency-first, so
// atomb sees the AtomicFacts atoma exported for its field and var, and the
// ignore-suppression interplay is exercised against a cross-package
// diagnostic.
func TestAtomicDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "fdp/internal/atoma", "fdp/internal/atomb")
}
