package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// typecheck parses and checks one synthetic file so RunPackage has a real
// *types.Package to hand the analyzer.
func typecheck(t *testing.T, src string) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := NewInfo()
	pkg, err := (&types.Config{}).Check("fixture", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, []*ast.File{f}, pkg, info
}

// lineReporter flags every line containing the marker comment "BAD".
func lineReporter(name string) *Analyzer {
	return &Analyzer{
		Name: name,
		Doc:  "test analyzer",
		Run: func(pass *Pass) (any, error) {
			for _, f := range pass.Files {
				for _, cg := range f.Comments {
					for _, c := range cg.List {
						if strings.Contains(c.Text, "BAD") {
							pass.Reportf(c.Pos(), "flagged")
						}
					}
				}
			}
			return nil, nil
		},
	}
}

func TestIgnoreSuppressesOwnAndNextLine(t *testing.T) {
	src := `package fixture

//fdplint:ignore probe reason one
var a = 1 // BAD suppressed by the directive above

var b = 2 // BAD not suppressed
`
	fset, files, pkg, info := typecheck(t, src)
	diags, err := RunPackage(fset, files, pkg, info, []*Analyzer{lineReporter("probe")})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if line := fset.Position(diags[0].Pos).Line; line != 6 {
		t.Fatalf("surviving diagnostic on line %d, want 6", line)
	}
}

func TestIgnoreForOtherAnalyzerDoesNotSuppress(t *testing.T) {
	src := `package fixture

//fdplint:ignore somethingelse reason
var a = 1 // BAD
`
	fset, files, pkg, info := typecheck(t, src)
	diags, err := RunPackage(fset, files, pkg, info, []*Analyzer{lineReporter("probe")})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Analyzer != "probe" {
		t.Fatalf("got %v, want one probe diagnostic", diags)
	}
}

func TestMalformedIgnoreIsReported(t *testing.T) {
	src := `package fixture

//fdplint:ignore probe
var a = 1 // BAD
`
	fset, files, pkg, info := typecheck(t, src)
	diags, err := RunPackage(fset, files, pkg, info, []*Analyzer{lineReporter("probe")})
	if err != nil {
		t.Fatal(err)
	}
	// The reasonless directive is itself a finding, and it suppresses
	// nothing, so the BAD line still fires too.
	var gotFdplint, gotProbe bool
	for _, d := range diags {
		switch d.Analyzer {
		case "fdplint":
			gotFdplint = true
		case "probe":
			gotProbe = true
		}
	}
	if !gotFdplint || !gotProbe {
		t.Fatalf("got %v, want both a fdplint and a probe diagnostic", diags)
	}
}

func TestIgnoreCoversMultiLineStatement(t *testing.T) {
	src := `package fixture

func add(xs ...int) int { return len(xs) }

func f() int {
	//fdplint:ignore probe wrapped call
	x := add(
		1, // BAD suppressed: later line of the annotated statement
		2,
	)
	return x + add(1) // BAD not suppressed: outside the statement span
}
`
	fset, files, pkg, info := typecheck(t, src)
	diags, err := RunPackage(fset, files, pkg, info, []*Analyzer{lineReporter("probe")})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if line := fset.Position(diags[0].Pos).Line; line != 11 {
		t.Fatalf("surviving diagnostic on line %d, want 11", line)
	}
}

func TestRunOnDirectivePrefixIsReported(t *testing.T) {
	src := `package fixture

//fdplint:ignoreX probe reason
var a = 1 // BAD
`
	fset, files, pkg, info := typecheck(t, src)
	diags, err := RunPackage(fset, files, pkg, info, []*Analyzer{lineReporter("probe")})
	if err != nil {
		t.Fatal(err)
	}
	// The run-on directive is itself a finding and suppresses nothing.
	var gotFdplint, gotProbe bool
	for _, d := range diags {
		switch d.Analyzer {
		case "fdplint":
			gotFdplint = true
		case "probe":
			gotProbe = true
		}
	}
	if !gotFdplint || !gotProbe {
		t.Fatalf("got %v, want both a fdplint and a probe diagnostic", diags)
	}
}

func TestPkgPathStripsTestVariant(t *testing.T) {
	pkg := types.NewPackage("fdp/internal/sim [fdp/internal/sim.test]", "sim")
	if got := PkgPath(pkg); got != "fdp/internal/sim" {
		t.Fatalf("PkgPath = %q", got)
	}
	plain := types.NewPackage("fdp/internal/sim", "sim")
	if got := PkgPath(plain); got != "fdp/internal/sim" {
		t.Fatalf("PkgPath = %q", got)
	}
}

func TestDiagnosticsSortedByPosition(t *testing.T) {
	src := `package fixture

var b = 2 // BAD second
var a = 1 // BAD first
`
	fset, files, pkg, info := typecheck(t, src)
	diags, err := RunPackage(fset, files, pkg, info, []*Analyzer{lineReporter("probe")})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2", len(diags))
	}
	if fset.Position(diags[0].Pos).Line > fset.Position(diags[1].Pos).Line {
		t.Fatal("diagnostics not sorted by line")
	}
}
