// Package oracle implements the oracles of Section 1.3. An oracle is a
// predicate O: PG × P -> {true,false} over the current process graph of
// relevant processes and the calling process. Foreback et al. showed that
// no local-control protocol can decide when a departure is safe, so any FDP
// solution must rely on one.
//
// The paper's protocol relies on SINGLE, chosen for its simplicity ("we
// expect it to be easily implementable via timeouts in practice"). For the
// baseline of Foreback et al. we also provide NIDEC, and for ablations an
// unsound timeout approximation of SINGLE and trivially unsafe/over-safe
// oracles.
package oracle

import (
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// Single is the SINGLE oracle: it evaluates to true for a process u iff u
// has edges (in either direction, explicit or implicit) with at most one
// other relevant process in PG.
type Single struct{}

// Name returns "SINGLE".
func (Single) Name() string { return "SINGLE" }

// Evaluate implements sim.Oracle. It uses the world's incremental degree
// query — O(1) when nothing hibernates — instead of materializing the
// relevant process graph.
func (Single) Evaluate(w *sim.World, u ref.Ref) bool {
	deg, relevant := w.RelevantDegree(u)
	if !relevant {
		// u itself is not relevant (cannot happen for a calling process,
		// which is awake); be conservative.
		return false
	}
	return deg <= 1
}

// JudgeDegree is the degree-only form of Evaluate: SINGLE's verdict is a
// pure function of the caller's relevant degree. Engines that maintain that
// degree incrementally (the concurrent runtime's epoch fast path) judge
// exits through it without materializing a world snapshot.
func (Single) JudgeDegree(deg int) bool { return deg <= 1 }

// NIDEC is the oracle of Foreback et al. [15]: true for u iff No process
// holds a reference of u (no Incoming Edges) and u's Channel is empty
// ("DEC": departure channel empty). It is strictly stronger than needed for
// safety and requires the leaving process to have shed all incoming edges
// before it may go.
type NIDEC struct{}

// Name returns "NIDEC".
func (NIDEC) Name() string { return "NIDEC" }

// Evaluate implements sim.Oracle. Like Single it avoids materializing the
// relevant process graph: it checks for a relevant predecessor directly on
// the incrementally maintained PG.
func (NIDEC) Evaluate(w *sim.World, u ref.Ref) bool {
	if w.ChannelLen(u) != 0 {
		return false
	}
	rel := w.Relevant()
	if !rel.Has(u) {
		return false
	}
	return !w.PG().HasPredIn(u, rel)
}

// ExitSafe is the ideal "ground truth" oracle used to *verify* exits in
// tests, not by protocols: true iff removing u and its incident edges from
// PG does not disconnect any two other relevant processes that are currently
// weakly connected. SINGLE(u) implies ExitSafe(u); the converse fails, which
// experiment E10 quantifies as missed exit opportunities.
type ExitSafe struct{}

// Name returns "EXITSAFE".
func (ExitSafe) Name() string { return "EXITSAFE" }

// Evaluate implements sim.Oracle.
func (ExitSafe) Evaluate(w *sim.World, u ref.Ref) bool {
	pg := w.RelevantPG()
	if !pg.HasNode(u) {
		return true
	}
	// The other members of u's weakly connected component must remain
	// weakly connected once u and its incident edges are removed.
	var others []ref.Ref
	for _, comp := range pg.WeaklyConnectedComponents() {
		for _, m := range comp {
			if m == u {
				for _, x := range comp {
					if x != u {
						others = append(others, x)
					}
				}
				break
			}
		}
	}
	if len(others) <= 1 {
		return true
	}
	h := pg.Clone()
	h.RemoveNode(u)
	reach := h.UndirectedReach(others[0])
	for _, x := range others[1:] {
		if !reach.Has(x) {
			return false
		}
	}
	return true
}

// Always answers a constant; Always(true) is deliberately unsafe (a leaving
// process may exit immediately) and is used by negative tests to show that
// the protocol's safety indeed depends on the oracle.
type Always bool

// Name returns "TRUE" or "FALSE".
func (a Always) Name() string {
	if a {
		return "TRUE"
	}
	return "FALSE"
}

// Evaluate implements sim.Oracle.
func (a Always) Evaluate(*sim.World, ref.Ref) bool { return bool(a) }

// JudgeDegree returns the constant, ignoring the degree: Always is a
// degree-judged oracle in the trivial sense, so the concurrent runtime's
// epoch fast path covers the unsafe-oracle ablations too.
func (a Always) JudgeDegree(int) bool { return bool(a) }

// TimeoutSingle approximates SINGLE the way a practical deployment would:
// instead of a consistent global snapshot, it remembers the answer computed
// some steps ago (staleness) and refreshes it only every Period calls. A
// stale answer can be wrong in both directions; experiment E10 measures the
// consequences.
type TimeoutSingle struct {
	// Period is the refresh interval in oracle calls per process.
	Period int

	calls map[ref.Ref]int
	last  map[ref.Ref]bool
}

// NewTimeoutSingle returns a timeout-approximate SINGLE with the given
// refresh period (<=0 selects 3).
func NewTimeoutSingle(period int) *TimeoutSingle {
	if period <= 0 {
		period = 3
	}
	return &TimeoutSingle{
		Period: period,
		calls:  make(map[ref.Ref]int),
		last:   make(map[ref.Ref]bool),
	}
}

// Name returns "SINGLE~timeout".
func (o *TimeoutSingle) Name() string { return "SINGLE~timeout" }

// Evaluate implements sim.Oracle.
func (o *TimeoutSingle) Evaluate(w *sim.World, u ref.Ref) bool {
	o.calls[u]++
	if o.calls[u]%o.Period == 1 || o.Period == 1 {
		o.last[u] = Single{}.Evaluate(w, u)
	}
	return o.last[u]
}

// EC is the weakest oracle from the Foreback et al. [15] taxonomy: true for
// u iff u's Channel is Empty. It ignores references other processes hold,
// so exits it permits can disconnect the overlay — the negative result the
// taxonomy uses to show channel-emptiness alone is insufficient.
type EC struct{}

// Name returns "EC".
func (EC) Name() string { return "EC" }

// Evaluate implements sim.Oracle.
func (EC) Evaluate(w *sim.World, u ref.Ref) bool {
	return w.ChannelLen(u) == 0
}
