package oracle

import (
	"testing"

	"fdp/internal/ref"
	"fdp/internal/sim"
)

// holder is a protocol fixture that just stores references.
type holder struct{ refs ref.Set }

func newHolder(rs ...ref.Ref) *holder { return &holder{refs: ref.NewSet(rs...)} }

func (h *holder) Timeout(sim.Context)              {}
func (h *holder) Deliver(sim.Context, sim.Message) {}
func (h *holder) Refs() []ref.Ref                  { return h.refs.Sorted() }

// lineWorld builds a bidirected line of n staying processes.
func lineWorld(n int) (*sim.World, []ref.Ref) {
	space := ref.NewSpace()
	nodes := space.NewN(n)
	w := sim.NewWorld(nil)
	for i, r := range nodes {
		h := newHolder()
		if i > 0 {
			h.refs.Add(nodes[i-1])
		}
		if i+1 < n {
			h.refs.Add(nodes[i+1])
		}
		w.AddProcess(r, sim.Staying, h)
	}
	w.SealInitialState()
	return w, nodes
}

func TestSingleOnLine(t *testing.T) {
	w, nodes := lineWorld(4)
	o := Single{}
	if !o.Evaluate(w, nodes[0]) {
		t.Fatal("endpoint has one neighbor: SINGLE must be true")
	}
	if o.Evaluate(w, nodes[1]) {
		t.Fatal("middle node has two neighbors: SINGLE must be false")
	}
}

func TestSingleCountsBothDirectionsAndImplicit(t *testing.T) {
	space := ref.NewSpace()
	a, b, c := space.New(), space.New(), space.New()
	w := sim.NewWorld(nil)
	w.AddProcess(a, sim.Leaving, newHolder(b))
	w.AddProcess(b, sim.Staying, newHolder())
	w.AddProcess(c, sim.Staying, newHolder())
	w.SealInitialState()
	o := Single{}
	if !o.Evaluate(w, a) {
		t.Fatal("one explicit neighbor: SINGLE true")
	}
	// An in-flight message in a's channel carrying c's reference creates an
	// implicit edge (a,c): SINGLE must now be false.
	w.Enqueue(a, sim.NewMessage("m", sim.RefInfo{Ref: c, Mode: sim.Staying}))
	if o.Evaluate(w, a) {
		t.Fatal("implicit edge must count against SINGLE")
	}
	// A message in c's channel carrying a's reference is an edge (c,a):
	// also counts (either direction).
	w2, nodes2 := lineWorld(2)
	w2.Enqueue(nodes2[1], sim.NewMessage("m", sim.RefInfo{Ref: nodes2[0], Mode: sim.Staying}))
	if !o.Evaluate(w2, nodes2[0]) {
		t.Fatal("still only one distinct neighbor")
	}
}

func TestSingleIgnoresIrrelevantProcesses(t *testing.T) {
	// A hibernating neighbor must not count.
	space := ref.NewSpace()
	a, b := space.New(), space.New()
	w := sim.NewWorld(nil)
	w.AddProcess(a, sim.Leaving, newHolder(b))
	sleeper := &sleepOnTimeout{}
	w.AddProcess(b, sim.Leaving, sleeper)
	w.SealInitialState()
	// b sleeps; but a (awake) holds a ref to b, so b has an awake
	// predecessor and is NOT hibernating: SINGLE(a) sees 1 neighbor.
	w.Execute(sim.Action{Proc: b, IsTimeout: true})
	if !(Single{}).Evaluate(w, a) {
		t.Fatal("one relevant neighbor: true")
	}
}

type sleepOnTimeout struct{}

func (s *sleepOnTimeout) Timeout(ctx sim.Context)          { ctx.Sleep() }
func (s *sleepOnTimeout) Deliver(sim.Context, sim.Message) {}
func (s *sleepOnTimeout) Refs() []ref.Ref                  { return nil }

func TestNIDEC(t *testing.T) {
	space := ref.NewSpace()
	a, b := space.New(), space.New()
	w := sim.NewWorld(nil)
	w.AddProcess(a, sim.Leaving, newHolder(b)) // a -> b
	w.AddProcess(b, sim.Staying, newHolder())
	w.SealInitialState()
	o := NIDEC{}
	if !o.Evaluate(w, a) {
		t.Fatal("a has no incoming edges and empty channel: NIDEC true")
	}
	if o.Evaluate(w, b) {
		t.Fatal("b has an incoming edge: NIDEC false")
	}
	w.Enqueue(a, sim.NewMessage("m"))
	if o.Evaluate(w, a) {
		t.Fatal("nonempty channel: NIDEC false")
	}
}

func TestExitSafe(t *testing.T) {
	w, nodes := lineWorld(4)
	o := ExitSafe{}
	if !o.Evaluate(w, nodes[0]) || !o.Evaluate(w, nodes[3]) {
		t.Fatal("line endpoints are safe to remove")
	}
	if o.Evaluate(w, nodes[1]) || o.Evaluate(w, nodes[2]) {
		t.Fatal("line middles are cut vertices: unsafe")
	}
}

func TestExitSafeIsolatedNode(t *testing.T) {
	space := ref.NewSpace()
	a := space.New()
	w := sim.NewWorld(nil)
	w.AddProcess(a, sim.Leaving, newHolder())
	w.SealInitialState()
	if !(ExitSafe{}).Evaluate(w, a) {
		t.Fatal("isolated node is always safe to remove")
	}
}

func TestSingleImpliesExitSafe(t *testing.T) {
	// On a variety of topologies, wherever SINGLE holds, ExitSafe holds.
	for n := 2; n <= 7; n++ {
		w, nodes := lineWorld(n)
		for _, u := range nodes {
			if (Single{}).Evaluate(w, u) && !(ExitSafe{}).Evaluate(w, u) {
				t.Fatalf("n=%d: SINGLE true but exit unsafe for %v", n, u)
			}
		}
	}
}

func TestAlways(t *testing.T) {
	w, nodes := lineWorld(2)
	if !(Always(true)).Evaluate(w, nodes[0]) || (Always(false)).Evaluate(w, nodes[0]) {
		t.Fatal("constant oracles broken")
	}
	if Always(true).Name() != "TRUE" || Always(false).Name() != "FALSE" {
		t.Fatal("names wrong")
	}
}

func TestTimeoutSingleGoesStale(t *testing.T) {
	w, nodes := lineWorld(3)
	o := NewTimeoutSingle(4)
	u := nodes[0]
	// First call computes fresh: endpoint -> true.
	if !o.Evaluate(w, u) {
		t.Fatal("fresh answer must be true for endpoint")
	}
	// Topology changes: u gains a second neighbor via an implicit edge.
	w.Enqueue(u, sim.NewMessage("m", sim.RefInfo{Ref: nodes[2], Mode: sim.Staying}))
	if !(Single{}).Evaluate(w, u) == false {
		t.Fatal("exact oracle must now say false")
	}
	// Stale answers persist until the refresh period elapses.
	if !o.Evaluate(w, u) {
		t.Fatal("stale answer expected to remain true")
	}
	o.Evaluate(w, u)
	o.Evaluate(w, u)
	if o.Evaluate(w, u) { // 5th call refreshes
		t.Fatal("refreshed answer must be false")
	}
}

func TestOracleNames(t *testing.T) {
	if (Single{}).Name() != "SINGLE" || (NIDEC{}).Name() != "NIDEC" ||
		(ExitSafe{}).Name() != "EXITSAFE" || NewTimeoutSingle(0).Name() != "SINGLE~timeout" {
		t.Fatal("oracle names wrong")
	}
}

func TestECOracle(t *testing.T) {
	w, nodes := lineWorld(3)
	if !(EC{}).Evaluate(w, nodes[1]) {
		t.Fatal("empty channel: EC true")
	}
	w.Enqueue(nodes[1], sim.NewMessage("m"))
	if (EC{}).Evaluate(w, nodes[1]) {
		t.Fatal("nonempty channel: EC false")
	}
	if (EC{}).Name() != "EC" {
		t.Fatal("name wrong")
	}
	// EC ignores incoming edges entirely — the middle of a line satisfies
	// it even though its removal disconnects the endpoints. That is the
	// taxonomy's point: channel emptiness alone is not a safe exit guard.
	if !(EC{}).Evaluate(w, nodes[0]) {
		t.Fatal("EC must be true for any empty-channel process")
	}
	if (ExitSafe{}).Evaluate(w, nodes[1]) {
		t.Fatal("the middle of a line is not exit-safe")
	}
}
