package parallel

import (
	"sort"
	"time"

	"fdp/internal/ref"
	"fdp/internal/sim"
)

// This file is the runtime's port of the simulator's sim.Event/Recorder
// model (DESIGN.md §10): the same event kinds the sequential engine emits,
// recorded concurrently without a global trace lock.
//
//   - Per-kind counts are always on: one atomic counter per EventKind,
//     maintained by every action. They are what the differential
//     event-parity test compares between engines.
//   - Per-process ring buffers (EnableTrace) keep the last-K events of each
//     process. Each ring is written only by the owning shard's worker while
//     it holds the shard's action read lock (or by the coordinator under a
//     full pause, for batched exit events) and is read only under a full
//     pause, so the action locks order every write before every read with
//     no extra locking on the hot path.
//   - An optional event sink (SetEventSink) receives every event
//     synchronously from the emitting goroutine; it must be safe for
//     concurrent use (the obs bridge feeds atomic registry metrics).
//
// Event.Step on runtime events is the global executed-action count at
// emission time — the closest concurrent analogue of the simulator's step
// counter, good enough to order a dump for post-mortem reading.

// evRing is a bounded per-process event ring. Single writer (the owning
// shard's worker under the action read lock, or the coordinator under a
// full pause); readers pause the world, which excludes all writers.
type evRing struct {
	buf   []sim.Event
	next  int
	total uint64
}

func (r *evRing) record(e sim.Event) {
	if cap(r.buf) == 0 {
		return
	}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % len(r.buf)
	}
	r.total++
}

func (r *evRing) events() []sim.Event {
	out := make([]sim.Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// EnableTrace turns on per-process event rings keeping the most recent
// perProc events of each process (perProc <= 0 selects 256). Must be
// called after all AddProcess calls and before Start.
func (rt *Runtime) EnableTrace(perProc int) {
	if perProc <= 0 {
		perProc = 256
	}
	rt.traceCap = perProc
	for _, p := range rt.byPid {
		p.ring = &evRing{buf: make([]sim.Event, 0, perProc)}
	}
}

// SetEventSink installs fn as a synchronous observer of every emitted
// event. fn runs on the emitting goroutine and MUST be safe for concurrent
// use (obs registry metrics are). Must be called before Start; nil clears.
func (rt *Runtime) SetEventSink(fn func(sim.Event)) { rt.eventSink = fn }

// SetOracleHook installs fn as an observer of every exit-validation
// verdict (granted or denied), from both the frozen-snapshot epoch path
// and the incremental-degree fast path. fn runs on the coordinator
// goroutine and must be safe for concurrent use with the event sink (the
// liveness watchdog's hook only touches atomics). Must be called before
// Start; nil clears.
func (rt *Runtime) SetOracleHook(fn func(ref.Ref, bool)) { rt.oracleHook = fn }

// record is the runtime's emit: per-kind counter, owner ring, sink. The
// caller must hold the owning shard's action read lock or a full pause (see
// the evRing contract above).
func (p *proc) record(e sim.Event) {
	rt := p.rt
	if int(e.Kind) < len(rt.kindCounts) {
		rt.kindCounts[e.Kind].Add(1)
	}
	if p.ring != nil {
		e.Step = int(rt.events.Load())
		p.ring.record(e)
	}
	if rt.eventSink != nil {
		rt.eventSink(e)
	}
}

// EventKindCounts returns the number of events emitted so far per kind.
// The counts are always maintained (no EnableTrace needed) and are the
// series the differential event-parity test compares against the
// sequential engine's recorder.
func (rt *Runtime) EventKindCounts() map[sim.EventKind]uint64 {
	out := make(map[sim.EventKind]uint64, sim.NumEventKinds)
	for k := range rt.kindCounts {
		if n := rt.kindCounts[k].Load(); n > 0 {
			out[sim.EventKind(k)] = n
		}
	}
	return out
}

// TraceEvents returns the retained events of every process, merged and
// ordered by the global action count at emission (ties keep per-process
// order). Empty unless EnableTrace was called. Safe to call while running
// and after Stop.
func (rt *Runtime) TraceEvents() []sim.Event {
	rt.pauseAll()
	defer rt.resumeAll()
	var out []sim.Event
	for _, r := range rt.order {
		if ring := rt.procs[r].ring; ring != nil {
			out = append(out, ring.events()...)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Step < out[j].Step })
	return out
}

// CausalIDs returns how many causal identities (events and messages) the
// runtime has assigned so far — the high-water mark of Event.CID. Always
// maintained; safe to read concurrently.
func (rt *Runtime) CausalIDs() uint64 { return rt.causal.Load() }

// StartTime returns when Start launched the goroutines (zero before
// Start). Exit latencies are measured from it.
func (rt *Runtime) StartTime() time.Time { return rt.startTime }

// ExitLatencies returns the wall-clock time from Start to each committed
// exit, in commit order — the runtime's time-to-exit-per-leaver series.
// Commits append to per-shard buffers; the merge sorts the combined series,
// which recovers commit order because every latency is measured from the
// same monotonic start time.
func (rt *Runtime) ExitLatencies() []time.Duration {
	var out []time.Duration
	for _, sh := range rt.shards {
		sh.latMu.Lock()
		out = append(out, sh.exitLat...)
		sh.latMu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MailboxDepths returns the current queue length of every non-gone
// process, a consistent snapshot of mailbox depth.
func (rt *Runtime) MailboxDepths() []int {
	rt.pauseAll()
	defer rt.resumeAll()
	out := make([]int, 0, len(rt.order))
	for _, r := range rt.order {
		p := rt.procs[r]
		if p.life.Load() == 2 {
			continue
		}
		out = append(out, p.mb.len())
	}
	return out
}
