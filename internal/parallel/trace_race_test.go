package parallel

import (
	"sync"
	"testing"
	"time"

	"fdp/internal/core"
	"fdp/internal/oracle"
	"fdp/internal/sim"
)

// TestTraceCausalIDsConcurrentReads hammers TraceEvents from several
// goroutines while actions fire, under -race: every observed snapshot must
// be internally consistent — no duplicated causal IDs — and the final
// trace must account for every emitted event (per-kind counters) with
// unique, in-range CIDs. The ring capacity is large enough that nothing is
// evicted, so a missing CID would mean a dropped event.
func TestTraceCausalIDsConcurrentReads(t *testing.T) {
	rt, _, leaving := buildRuntime(24, 0.4, 11, core.VariantFDP, oracle.Single{})
	rt.EnableTrace(1 << 17)
	rt.Start()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				evs := rt.TraceEvents()
				seen := make(map[uint64]bool, len(evs))
				for _, e := range evs {
					if e.CID == 0 {
						t.Error("event without causal ID in live snapshot")
						return
					}
					if seen[e.CID] {
						t.Errorf("duplicated causal ID %d in live snapshot", e.CID)
						return
					}
					seen[e.CID] = true
				}
			}
		}()
	}

	deadline := time.Now().Add(15 * time.Second)
	for rt.Gone() < uint64(leaving.Len()) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	rt.Stop()
	close(stop)
	wg.Wait()
	if rt.Gone() != uint64(leaving.Len()) {
		t.Fatalf("runtime settled %d of %d leavers", rt.Gone(), leaving.Len())
	}

	final := rt.TraceEvents()
	var total uint64
	for _, n := range rt.EventKindCounts() {
		total += n
	}
	if uint64(len(final)) != total {
		t.Fatalf("trace retained %d events, per-kind counters saw %d (dropped or duplicated events)", len(final), total)
	}
	high := rt.CausalIDs()
	seen := make(map[uint64]bool, len(final))
	for _, e := range final {
		if e.CID == 0 || e.CID > high {
			t.Fatalf("event CID %d out of range (0, %d]", e.CID, high)
		}
		if seen[e.CID] {
			t.Fatalf("duplicated causal ID %d in final trace", e.CID)
		}
		seen[e.CID] = true
		if e.Kind == sim.EvDeliver && e.MsgID == 0 {
			t.Fatalf("delivery without message identity: %+v", e)
		}
	}
}
