package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fdp/internal/core"
	"fdp/internal/oracle"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// countingProto counts its deliveries and does nothing else: no sends, no
// sleep, no exit. Every injected message must surface here exactly once.
type countingProto struct{ delivered *atomic.Uint64 }

func (c *countingProto) Timeout(sim.Context)              {}
func (c *countingProto) Deliver(sim.Context, sim.Message) { c.delivered.Add(1) }
func (c *countingProto) Refs() []ref.Ref                  { return nil }

// Batched mailbox drain must not lose or duplicate messages while Enqueue
// races the worker's popInto/unpop cycle. Four injector goroutines push
// through the pause-the-world Mutate path (serialized against the shard
// batch pops) while the workers drain in popBatch-sized chunks; the
// delivery counter must land exactly on the injected total and every
// mailbox must end empty.
func TestBatchDrainUnderConcurrentEnqueue(t *testing.T) {
	const procs, injectors, perInjector = 8, 4, 500

	var delivered atomic.Uint64
	space := ref.NewSpace()
	nodes := space.NewN(procs)
	rt := NewRuntime(nil)
	rt.SetShards(3)
	for _, r := range nodes {
		rt.AddProcess(r, sim.Staying, &countingProto{delivered: &delivered})
	}
	rt.Start()
	defer rt.Stop()

	var wg sync.WaitGroup
	for g := 0; g < injectors; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perInjector; i++ {
				to := nodes[(g*perInjector+i)%len(nodes)]
				rt.Mutate(func(v *MutableView) {
					if !v.Enqueue(to, sim.NewMessage("inject")) {
						t.Errorf("enqueue to live process %v refused", to)
					}
				})
			}
		}(g)
	}
	wg.Wait()

	const want = injectors * perInjector
	deadline := time.Now().Add(30 * time.Second)
	for delivered.Load() < want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := delivered.Load(); got != want {
		t.Fatalf("delivered %d of %d injected messages", got, want)
	}
	if got := rt.KindCount(sim.EvDeliver); got != want {
		t.Fatalf("deliver event counter %d, want %d", got, want)
	}
	for i, depth := range rt.MailboxDepths() {
		if depth != 0 {
			t.Fatalf("mailbox %d still holds %d messages after full drain", i, depth)
		}
	}
}

// Rebalancing moves processes between shards while actions fire. Under
// -race this doubles as the memory-safety check; here we also assert the
// causal-ID ledger survives: no event is dropped or double-recorded across
// a shard handoff, and the runtime still converges.
func TestRebalanceKeepsCausalIDsUnique(t *testing.T) {
	rt, _, leaving := buildShardedRuntime(24, 0.4, 17, core.VariantFDP, oracle.Single{}, 3)
	rt.EnableTrace(1 << 17)
	rt.Start()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rt.Rebalance()
			time.Sleep(200 * time.Microsecond)
		}
	}()

	deadline := time.Now().Add(20 * time.Second)
	for rt.Gone() < uint64(leaving.Len()) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	rt.Stop()
	if rt.Gone() != uint64(leaving.Len()) {
		t.Fatalf("runtime settled %d of %d leavers under rebalance pressure", rt.Gone(), leaving.Len())
	}

	final := rt.TraceEvents()
	var total uint64
	for _, n := range rt.EventKindCounts() {
		total += n
	}
	if uint64(len(final)) != total {
		t.Fatalf("trace retained %d events, per-kind counters saw %d (rebalance dropped or duplicated events)", len(final), total)
	}
	high := rt.CausalIDs()
	seen := make(map[uint64]bool, len(final))
	for _, e := range final {
		if e.CID == 0 || e.CID > high {
			t.Fatalf("event CID %d out of range (0, %d]", e.CID, high)
		}
		if seen[e.CID] {
			t.Fatalf("duplicated causal ID %d after shard rebalances", e.CID)
		}
		seen[e.CID] = true
	}
}

// Multi-shard FDP convergence: on a single-core machine the default shard
// count is one, so this pins the cross-shard send/validate paths with an
// explicit worker pool.
func TestShardedFDPConvergence(t *testing.T) {
	for _, shards := range []int{2, 4} {
		rt, _, leaving := buildShardedRuntime(20, 0.5, int64(shards), core.VariantFDP, oracle.Single{}, shards)
		if rt.Shards() != shards {
			t.Fatalf("SetShards(%d) built %d shards", shards, rt.Shards())
		}
		ok := rt.RunUntil(func(w *sim.World) bool {
			return w.Legitimate(sim.FDP)
		}, 2*time.Millisecond, 30*time.Second)
		if !ok {
			t.Fatalf("%d shards: no convergence (gone=%d of %d)", shards, rt.Gone(), leaving.Len())
		}
		final := rt.Freeze()
		if !final.RelevantComponentsIntact() {
			t.Fatalf("%d shards: staying processes disconnected", shards)
		}
	}
}

// Multi-shard FSP convergence: hibernation (zero exits) across an explicit
// worker pool, including the awake-counter bookkeeping that gates worker
// sleep.
func TestShardedFSPConvergence(t *testing.T) {
	rt, nodes, leaving := buildShardedRuntime(16, 0.5, 9, core.VariantFSP, nil, 3)
	ok := rt.RunUntil(func(w *sim.World) bool {
		return w.Legitimate(sim.FSP)
	}, 2*time.Millisecond, 30*time.Second)
	if !ok {
		t.Fatal("sharded FSP did not converge")
	}
	if rt.Gone() != 0 {
		t.Fatal("FSP must not produce gone processes")
	}
	final := rt.Freeze()
	hib := final.Hibernating()
	for _, r := range nodes {
		if leaving.Has(r) && !hib.Has(r) {
			t.Fatalf("leaver %v not hibernating in sharded final snapshot", r)
		}
	}
}
