// Package parallel is the concurrent runtime: one goroutine per process,
// real mailboxes, true parallel execution on all cores. It runs the same
// Protocol implementations as the sequential simulator (they only ever see
// the sim.Context interface) and is used to cross-validate the simulator's
// outcomes and to measure event throughput (experiment E11).
//
// Concurrency design ("share memory by communicating" where possible, a
// coarse snapshot lock where the model demands a consistent global view):
//
//   - Each process's protocol state is owned by its goroutine; nobody else
//     touches it.
//   - Mailboxes are mutex+cond queues with unbounded capacity, matching the
//     model's channels (no loss, no bound). FIFO order per mailbox is one
//     legal schedule of the non-FIFO model.
//   - Every action executes under the read side of a global RWMutex; global
//     snapshots (oracle evaluation, legitimacy detection, exit validation)
//     take the write side. This gives honest parallelism between snapshot
//     points.
//   - exit is validated under the write lock: a process's cached oracle
//     answer may be stale, so the coordinator re-evaluates SINGLE on a
//     consistent snapshot before committing the exit — exactly the "check
//     then act atomically" the sequential model provides for free.
package parallel

import (
	"sync"
	"sync/atomic"
	"time"

	"fdp/internal/graph"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// mailbox is an unbounded FIFO queue with blocking receive.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []sim.Message
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) push(msg sim.Message) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.queue = append(m.queue, msg)
	m.cond.Signal()
	return true
}

// tryPop returns immediately.
func (m *mailbox) tryPop() (sim.Message, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.queue) == 0 {
		return sim.Message{}, false
	}
	msg := m.queue[0]
	m.queue = m.queue[1:]
	return msg, true
}

// waitPop blocks until a message arrives or the mailbox closes; the second
// result is false when closed and drained.
func (m *mailbox) waitPop() (sim.Message, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return sim.Message{}, false
	}
	msg := m.queue[0]
	m.queue = m.queue[1:]
	return msg, true
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.queue = nil
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

func (m *mailbox) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}

func (m *mailbox) snapshot() []sim.Message {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]sim.Message, len(m.queue))
	copy(out, m.queue)
	return out
}

// proc is one concurrent process.
type proc struct {
	id    ref.Ref
	mode  sim.Mode
	proto sim.Protocol
	mb    *mailbox

	// life is read concurrently (sends, snapshots) and written by the
	// owner goroutine / coordinator: 0 awake, 1 asleep, 2 gone.
	life atomic.Int32

	wantExit  bool
	wantSleep bool

	// oracleOK caches the coordinator's last oracle evaluation for this
	// process. Reads are cheap and may be stale; exits are re-validated
	// under the snapshot lock.
	oracleOK atomic.Bool

	rt *Runtime
}

// Runtime drives a set of processes concurrently.
type Runtime struct {
	procs  map[ref.Ref]*proc
	order  []ref.Ref
	oracle sim.Oracle // evaluated on frozen snapshots via the World shim

	snap sync.RWMutex // actions: RLock; snapshots: Lock

	events atomic.Uint64 // executed actions (timeouts + deliveries)
	sent   atomic.Uint64
	exits  atomic.Int32

	stop      atomic.Bool
	wg        sync.WaitGroup
	initially [][]ref.Ref
}

// Oracle is re-exported so callers pass the same oracles as the simulator.
type Oracle = sim.Oracle

// NewRuntime returns an empty runtime with the given oracle (may be nil).
func NewRuntime(oracle Oracle) *Runtime {
	return &Runtime{procs: make(map[ref.Ref]*proc), oracle: oracle}
}

// AddProcess registers a process before Start.
func (rt *Runtime) AddProcess(r ref.Ref, mode sim.Mode, proto sim.Protocol) {
	if _, dup := rt.procs[r]; dup {
		panic("parallel: duplicate process")
	}
	p := &proc{id: r, mode: mode, proto: proto, mb: newMailbox(), rt: rt}
	rt.procs[r] = p
	rt.order = append(rt.order, r)
	ref.Sort(rt.order)
}

// Enqueue injects an initial in-flight message before Start.
func (rt *Runtime) Enqueue(to ref.Ref, msg sim.Message) {
	rt.procs[to].mb.push(msg)
}

// Events returns the number of executed actions so far.
func (rt *Runtime) Events() uint64 { return rt.events.Load() }

// Sent returns the number of sent messages so far.
func (rt *Runtime) Sent() uint64 { return rt.sent.Load() }

// Gone returns the number of exited processes.
func (rt *Runtime) Gone() int { return int(rt.exits.Load()) }

// ctx implements sim.Context for a process action.
type pctx struct{ p *proc }

func (c *pctx) Self() ref.Ref  { return c.p.id }
func (c *pctx) Mode() sim.Mode { return c.p.mode }

func (c *pctx) Send(to ref.Ref, msg sim.Message) {
	if to.IsNil() {
		return
	}
	target := c.p.rt.procs[to]
	if target == nil || target.life.Load() == 2 {
		return
	}
	c.p.rt.sent.Add(1)
	target.mb.push(msg)
}

func (c *pctx) Exit()  { c.p.wantExit = true }
func (c *pctx) Sleep() { c.p.wantSleep = true }

// OracleSays gives the process's cached view, refreshed periodically by the
// coordinator; the authoritative re-check happens in validateExit under the
// snapshot lock. (Taking the snapshot lock here would deadlock: the calling
// action already holds its read side.)
func (c *pctx) OracleSays() bool {
	if c.p.rt.oracle == nil {
		return false
	}
	return c.p.oracleOK.Load()
}

// run is the per-process goroutine body.
func (p *proc) run() {
	defer p.rt.wg.Done()
	for !p.rt.stop.Load() {
		if p.life.Load() == 2 {
			return
		}
		var msg sim.Message
		var haveMsg bool
		if p.life.Load() == 1 { // asleep: block until a message arrives
			msg, haveMsg = p.mb.waitPop()
			if !haveMsg {
				if p.rt.stop.Load() || p.life.Load() == 2 {
					return
				}
				continue
			}
			p.life.Store(0) // processing a message wakes the process
		} else {
			msg, haveMsg = p.mb.tryPop()
		}

		ctx := &pctx{p: p}
		p.wantExit, p.wantSleep = false, false

		p.rt.snap.RLock()
		if haveMsg {
			p.proto.Deliver(ctx, msg)
		} else {
			p.proto.Timeout(ctx)
		}
		p.rt.snap.RUnlock()
		p.rt.events.Add(1)

		if p.wantExit {
			if p.rt.validateExit(p) {
				return
			}
		} else if p.wantSleep {
			p.life.Store(1)
		}
		if !haveMsg {
			// Idle timeout loop: yield so other goroutines (and the
			// coordinator) get the CPU.
			time.Sleep(50 * time.Microsecond)
		}
	}
}

// validateExit re-evaluates the oracle under the snapshot (write) lock and
// commits the exit only if it still holds — the concurrent-world equivalent
// of the model's atomic guard evaluation.
func (rt *Runtime) validateExit(p *proc) bool {
	rt.snap.Lock()
	defer rt.snap.Unlock()
	if rt.oracle != nil && !rt.oracle.Evaluate(rt.freezeUnderLock(), p.id) {
		return false
	}
	p.life.Store(2)
	p.mb.close()
	rt.exits.Add(1)
	return true
}

// Start launches all process goroutines plus the oracle coordinator.
func (rt *Runtime) Start() {
	rt.initially = rt.freezeLocked().PG().WeaklyConnectedComponents()
	for _, r := range rt.order {
		rt.wg.Add(1)
		go rt.procs[r].run()
	}
	if rt.oracle != nil {
		rt.wg.Add(1)
		go rt.coordinate()
	}
}

// coordinate periodically refreshes every live leaving process's cached
// oracle answer on a consistent snapshot.
func (rt *Runtime) coordinate() {
	defer rt.wg.Done()
	for !rt.stop.Load() {
		w := rt.freezeLocked()
		for _, r := range rt.order {
			p := rt.procs[r]
			if p.mode == sim.Leaving && p.life.Load() != 2 {
				p.oracleOK.Store(rt.oracle.Evaluate(w, r))
			}
		}
		time.Sleep(500 * time.Microsecond)
	}
}

// Stop signals all goroutines to finish and waits for them. Mailboxes are
// closed so that processes blocked in waitPop (asleep, FSP) wake up and
// observe the stop flag.
func (rt *Runtime) Stop() {
	rt.stop.Store(true)
	for _, p := range rt.procs {
		p.mb.close()
	}
	rt.wg.Wait()
}

// RunUntil drives the system until predicate(frozen world) is true or the
// timeout elapses; it returns whether the predicate held. The predicate is
// evaluated on consistent snapshots every pollEvery.
func (rt *Runtime) RunUntil(pred func(*sim.World) bool, pollEvery, timeout time.Duration) bool {
	rt.Start()
	defer rt.Stop()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		w := rt.freezeLocked()
		if pred(w) {
			return true
		}
		time.Sleep(pollEvery)
	}
	return pred(rt.freezeLocked())
}

// freezeLocked takes the snapshot lock and builds a sequential sim.World
// mirroring the current global state, so every predicate and oracle written
// for the simulator works unchanged on the concurrent runtime.
func (rt *Runtime) freezeLocked() *sim.World {
	rt.snap.Lock()
	defer rt.snap.Unlock()
	return rt.freezeUnderLock()
}

func (rt *Runtime) freezeUnderLock() *sim.World {
	w := sim.NewWorld(rt.oracle)
	for _, r := range rt.order {
		p := rt.procs[r]
		if p.life.Load() == 2 {
			continue
		}
		fp := &frozenProto{refs: p.proto.Refs()}
		if bh, ok := p.proto.(interface{ Beliefs() []sim.RefInfo }); ok {
			fp.beliefs = bh.Beliefs() // copied under the snapshot lock
		}
		w.AddProcess(r, p.mode, fp)
	}
	for _, r := range rt.order {
		p := rt.procs[r]
		if p.life.Load() == 2 {
			continue
		}
		if p.life.Load() == 1 {
			w.ForceAsleep(r)
		}
		for _, m := range p.mb.snapshot() {
			w.Enqueue(r, m)
		}
	}
	if rt.initially != nil {
		w.SealInitialState()
	}
	// Seed the incremental process graph while we still hold the snapshot
	// lock: the frozen world is immutable afterwards, so the coordinator and
	// predicates hit warm per-generation caches on every query.
	w.PG()
	return w
}

// frozenProto is an immutable stand-in exposing the stored references and
// mode beliefs captured at snapshot time, so predicates (including the
// potential function Φ) evaluate on a consistent, race-free copy.
type frozenProto struct {
	refs    []ref.Ref
	beliefs []sim.RefInfo
}

func (f *frozenProto) Timeout(sim.Context)              {}
func (f *frozenProto) Deliver(sim.Context, sim.Message) {}
func (f *frozenProto) Refs() []ref.Ref                  { return f.refs }

// Beliefs returns the mode knowledge captured at snapshot time.
func (f *frozenProto) Beliefs() []sim.RefInfo { return f.beliefs }

// InitialComponents returns the weakly-connected components at Start time.
func (rt *Runtime) InitialComponents() [][]ref.Ref { return rt.initially }

// PGSnapshot returns a consistent process graph of the current state.
func (rt *Runtime) PGSnapshot() *graph.Graph { return rt.freezeLocked().PG() }
