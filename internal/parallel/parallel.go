// Package parallel is the concurrent runtime: a sharded M:N scheduler that
// drives up to hundreds of thousands of processes on a fixed worker pool,
// with true parallel execution on all cores. It runs the same Protocol
// implementations as the sequential simulator (they only ever see the
// sim.Context interface) and is used to cross-validate the simulator's
// outcomes (experiment E16, internal/diffval) and to measure event
// throughput and time-to-exit at scale (experiment E11, the bench harness).
//
// Architecture (DESIGN.md §12):
//
//   - The runtime is split into shards, one worker goroutine each (default
//     GOMAXPROCS). Every process is interned to a compact uint32 pid and
//     owned by exactly one shard; each worker alternates bounded delivery
//     and timeout rounds over its own processes, so scheduling costs O(work)
//     instead of O(goroutines).
//   - Mailboxes are plain queues behind a single per-shard lock (mbMu) that
//     also guards the shard's run queue: a push takes one brief leaf lock,
//     the worker drains messages in batches under one hold, and wake-ups
//     are amortized to one notification per newly-runnable process.
//   - Every action executes under the read side of its shard's action lock
//     (actMu). A consistent global view — snapshots, exit validation,
//     Mutate — takes the write side of every shard in ascending order
//     (pauseAll), replacing the old single global RWMutex: workers contend
//     only on their own shard's cache line, and the pause cost is paid per
//     epoch instead of per oracle question.
//   - exit is validated in epoch batches: a process requesting exit is
//     suspended (it executes no further actions — its guard must still hold
//     at commit time), and the coordinator validates all pending requests
//     against ONE sealed snapshot per epoch, folding every commit back into
//     the snapshot (sim.World.MarkGone) so later requests in the same batch
//     are judged against the post-commit state. One O(n) freeze now serves
//     a whole batch of exits — the change that takes churn runs past
//     n=100k — while keeping the model's "check then act atomically"
//     semantics: a stale cached oracle answer can request an exit but never
//     commit one.
//   - Workers are paced, not greedy: timeout rounds fire at most once per
//     timeoutTick (weak fairness needs periodic timeouts, not timeout
//     storms at CPU speed), a hot worker yields the processor after every
//     productive round so the coordinator keeps its cadence even on
//     single-core hosts, an idle worker sleeps until its next timeout round
//     is due, and a shard blocks entirely once every owned process is
//     asleep or gone; a message push wakes it immediately.
//
// Oracles used with this runtime must be stateless values (like
// oracle.Single); evaluations are serialized by oracleMu and run on sealed
// snapshots, never on live state.
//
//fdp:nondecomposable runtime machinery: implements the model itself (delivery, absorption, exit commits), not a protocol in 𝒫; frozenProto is a snapshot shim, not a protocol
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fdp/internal/graph"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// Idle sleep bounds for the shard workers and the coordinator's epoch
// cadence. Small enough that timeout-driven protocol progress stays fast,
// large enough that a converged system does not spin. The coordinator
// additionally never sleeps less than pauseDutyFactor times the last epoch's
// pause, so at n=100k the world is not frozen back-to-back.
const (
	idleMin         = 5 * time.Microsecond
	idleMax         = time.Millisecond
	coordMin        = 200 * time.Microsecond
	coordMax        = 4 * time.Millisecond
	pauseDutyFactor = 3
)

// proc is one concurrent process.
type proc struct {
	id    ref.Ref
	pid   uint32 // dense index into Runtime.byPid
	mode  sim.Mode
	proto sim.Protocol
	mb    mailbox // guarded by the owning shard's mbMu (or a full pause)

	// shard is the owning shard's index. Rewritten only under a full pause
	// (rebalance); read atomically by senders on other shards.
	shard atomic.Uint32

	// inRun reports whether the process sits in its shard's run queue (or is
	// being drained right now). Guarded by the owning shard's mbMu.
	inRun bool

	// life is read concurrently (sends, snapshots) and written by the owning
	// worker / coordinator: 0 awake, 1 asleep, 2 gone.
	life atomic.Int32

	// exitPending suspends the process between its exit request and the
	// coordinator's batched verdict: the worker delivers nothing to it and
	// runs no timeouts on it, so the state the guard was evaluated in cannot
	// drift before the commit. Set by the worker (CAS), cleared by the
	// coordinator under a full pause.
	exitPending atomic.Bool

	wantExit  bool
	wantSleep bool

	// clock is the process's Lamport clock and curCID the causal ID of the
	// current action's trigger event. Both are touched only under the
	// shard's action read lock by the one worker that owns the process (or
	// under a full pause), so they need no further synchronization.
	clock  uint64
	curCID uint64

	// ring is the per-process trace ring (nil unless EnableTrace). Written
	// only by the owning worker under the action read lock (or under a full
	// pause for the exit event); read under a full pause.
	ring *evRing

	// oracleOK caches the coordinator's last oracle evaluation for this
	// process. Reads are cheap and may be stale; exits are re-validated on a
	// sealed snapshot (or the incremental degree counters) before
	// committing.
	oracleOK atomic.Bool

	// nbr is the incremental relevant-degree multiset: distinct neighbor
	// pid → number of current PG edges with it (see degree.go). Non-nil
	// only for live leaving processes of degree-tracked runs; guarded by
	// degMu (pair updates lock both endpoints in ascending pid order).
	nbr   map[uint32]int32
	degMu sync.Mutex //fdp:lockordered pair updates lock both endpoints in ascending pid order

	// refsA/refsB are the action-diff scratch buffers of degree tracking,
	// touched only by the owning worker (or under a full pause).
	refsA []ref.Ref
	refsB []ref.Ref

	rt *Runtime
}

// Runtime drives a set of processes concurrently.
type Runtime struct {
	procs  map[ref.Ref]*proc
	order  []ref.Ref
	byPid  []*proc
	shards []*shard
	oracle sim.Oracle // evaluated on frozen snapshots via the World shim

	// freezeMu serializes world pausers (coordinator epochs, Freeze, Mutate,
	// validateExit) ahead of the per-shard action locks; see pauseAll.
	freezeMu sync.Mutex

	// oracleMu serializes oracle evaluations so stateful oracles never race
	// with themselves. Leaf lock: nothing else is acquired under it.
	oracleMu sync.Mutex //fdp:lockleaf

	// exitMu guards the pending-exit list. Leaf lock. The exit-latency
	// series lives in per-shard buffers (shard.exitLat) so commits touch no
	// global state beyond this queue.
	exitMu       sync.Mutex //fdp:lockleaf
	pendingExits []*proc

	// exitKick is a capacity-1 signal that exit requests are pending, so the
	// coordinator runs an early epoch instead of sleeping out its interval.
	exitKick chan struct{}

	// causal is the runtime's causal-ID counter, the concurrent analogue of
	// the simulator's. Enqueue seeds it past any transplanted message's CID
	// (MirrorWorld preserves the build world's IDs), so the initial causal
	// vocabulary is identical across engines and fresh IDs never collide.
	causal atomic.Uint64

	// trackDeg enables incremental relevant-degree counters (degree.go):
	// set at Start when the oracle's verdict is a pure degree function.
	// leavers indexes the Leaving processes for the epoch cache refresh;
	// asleep counts processes with life==1 — while it is zero nothing can
	// hibernate and the counters equal the frozen world's RelevantDegree.
	trackDeg bool
	leavers  []*proc
	asleep   atomic.Int64

	events     atomic.Uint64 // executed actions (timeouts + deliveries)
	sent       atomic.Uint64
	dropped    atomic.Uint64 // sends to gone/closed targets (vanish, like the model)
	exits      atomic.Uint64
	exitDenied atomic.Uint64 // exit requests rejected by revalidation
	epochs     atomic.Uint64 // coordinator epochs (world pauses for batch validation)

	// kindCounts mirrors the sequential engine's per-kind event stream as
	// always-on atomic counters (see events.go).
	kindCounts [sim.NumEventKinds]atomic.Uint64
	traceCap   int             // per-proc ring capacity set by EnableTrace
	eventSink  func(sim.Event) // optional synchronous observer (obs bridge)
	// oracleHook, when set, observes every exit-validation verdict — the
	// grant/denial stream the liveness watchdog classifies stalls from.
	// Called from the coordinator's epoch (both the frozen-world and the
	// incremental-degree path) outside oracleMu; must touch only state
	// safe for that goroutine (atomics).
	oracleHook func(ref.Ref, bool)
	startTime  time.Time // set by Start; exit latencies measured from it

	stop     atomic.Bool
	stopCh   chan struct{} // closed by Stop; unblocks idle waits promptly
	stopOnce sync.Once
	wg       sync.WaitGroup

	// initially is the weakly-connected-component partition captured at
	// Start (and re-captured by MutableView.Reseal after a fault strike).
	// Written only before the goroutines exist or under a full pause.
	initially [][]ref.Ref
}

// Oracle is re-exported so callers pass the same oracles as the simulator.
type Oracle = sim.Oracle

// NewRuntime returns an empty runtime with the given oracle (may be nil) and
// one shard per GOMAXPROCS.
func NewRuntime(oracle Oracle) *Runtime {
	rt := &Runtime{
		procs:    make(map[ref.Ref]*proc),
		oracle:   oracle,
		stopCh:   make(chan struct{}),
		exitKick: make(chan struct{}, 1),
	}
	rt.makeShards(runtime.GOMAXPROCS(0))
	return rt
}

// SetShards fixes the worker count. Must be called before any AddProcess;
// processes are dealt pid-modulo-k until a rebalance.
func (rt *Runtime) SetShards(k int) {
	if k < 1 {
		panic("parallel: SetShards needs at least one shard")
	}
	if len(rt.byPid) > 0 {
		panic("parallel: SetShards after AddProcess")
	}
	rt.makeShards(k)
}

// Shards returns the worker-shard count.
func (rt *Runtime) Shards() int { return len(rt.shards) }

func (rt *Runtime) makeShards(k int) {
	rt.shards = make([]*shard, k)
	for i := range rt.shards {
		rt.shards[i] = &shard{idx: i, rt: rt, notify: make(chan struct{}, 1)}
	}
}

// AddProcess registers a process before Start.
func (rt *Runtime) AddProcess(r ref.Ref, mode sim.Mode, proto sim.Protocol) {
	if _, dup := rt.procs[r]; dup {
		panic("parallel: duplicate process")
	}
	p := &proc{id: r, pid: uint32(len(rt.byPid)), mode: mode, proto: proto, rt: rt}
	if rt.traceCap > 0 {
		p.ring = &evRing{buf: make([]sim.Event, 0, rt.traceCap)}
	}
	sh := rt.shards[int(p.pid)%len(rt.shards)]
	p.shard.Store(uint32(sh.idx))
	sh.pids = append(sh.pids, p.pid)
	rt.byPid = append(rt.byPid, p)
	rt.procs[r] = p
	if mode == sim.Leaving {
		rt.leavers = append(rt.leavers, p)
	}
	rt.order = append(rt.order, r)
	ref.Sort(rt.order)
}

// Enqueue injects an initial in-flight message before Start. Messages that
// already carry a causal identity (transplanted from a sequential world by
// MirrorWorld) keep it and advance the runtime's causal counter past it;
// bare messages get a fresh CID.
func (rt *Runtime) Enqueue(to ref.Ref, msg sim.Message) {
	if msg.CID() == 0 {
		msg = sim.StampCausal(msg, rt.causal.Add(1), 0, 0)
	} else if cur := rt.causal.Load(); msg.CID() > cur {
		rt.causal.Store(msg.CID())
	}
	rt.push(rt.procs[to], msg)
}

// Inject delivers a message arriving from outside the runtime (the wire
// transport) into a live process's mailbox while the workers are running.
// Messages that already carry a causal identity keep it, and the runtime's
// causal counter is CAS-advanced past it so locally minted CIDs stay unique
// within this runtime; bare messages get a fresh CID. It reports whether the
// message was accepted — false for an unknown reference, a gone process, or
// a closed mailbox, in which case the caller owes the origin an
// undeliverable bounce.
//
// Locking: push requires its caller to run under some shard's action read
// lock (any shard's read side blocks pauseAll, which takes every write
// side). Inject takes the target's current shard's actMu; push re-resolves
// the shard under mbMu, so a concurrent rebalance is harmless.
func (rt *Runtime) Inject(to ref.Ref, msg sim.Message) bool {
	p := rt.procs[to]
	if p == nil || p.life.Load() == 2 {
		return false
	}
	if msg.CID() == 0 {
		msg = sim.StampCausal(msg, rt.causal.Add(1), 0, 0)
	} else {
		for {
			cur := rt.causal.Load()
			if msg.CID() <= cur || rt.causal.CompareAndSwap(cur, msg.CID()) {
				break
			}
		}
	}
	sh := rt.shards[p.shard.Load()]
	sh.actMu.RLock()
	_, ok := rt.push(p, msg)
	sh.actMu.RUnlock()
	return ok
}

// KindCount returns the number of events of kind k emitted so far.
func (rt *Runtime) KindCount(k sim.EventKind) uint64 {
	if int(k) >= len(rt.kindCounts) {
		return 0
	}
	return rt.kindCounts[k].Load()
}

// ForceAsleep starts a process in the asleep state. It mirrors
// sim.World.ForceAsleep for scenario transplantation (FSP worlds whose
// initial state contains asleep processes) and must be called before Start.
func (rt *Runtime) ForceAsleep(r ref.Ref) {
	rt.procs[r].life.Store(1)
	rt.asleep.Add(1)
}

// Events returns the number of executed actions so far.
func (rt *Runtime) Events() uint64 { return rt.events.Load() }

// Sent returns the number of sent messages so far (including drops, like
// the simulator's Stats.Sent).
func (rt *Runtime) Sent() uint64 { return rt.sent.Load() }

// Dropped returns the number of sends that vanished because the target was
// gone (or exiting concurrently).
func (rt *Runtime) Dropped() uint64 { return rt.dropped.Load() }

// Gone returns the number of exited processes. The counter is a uint64 end
// to end (no truncating int conversion) so exit accounting stays exact at
// any scale.
func (rt *Runtime) Gone() uint64 { return rt.exits.Load() }

// ExitDenied returns how many exit requests the batched revalidation
// rejected because the stale cached oracle answer no longer held.
// Observability for the validateExit contention tests.
func (rt *Runtime) ExitDenied() uint64 { return rt.exitDenied.Load() }

// Epochs returns how many epoch pauses the coordinator has run.
func (rt *Runtime) Epochs() uint64 { return rt.epochs.Load() }

// ctx implements sim.Context for a process action.
type pctx struct{ p *proc }

func (c *pctx) Self() ref.Ref  { return c.p.id }
func (c *pctx) Mode() sim.Mode { return c.p.mode }

func (c *pctx) Send(to ref.Ref, msg sim.Message) {
	if to.IsNil() {
		return
	}
	rt := c.p.rt
	rt.sent.Add(1)
	// Causal stamp, mirroring the simulator's Send: fresh CID, parent = the
	// action event being executed, clock = the sender's Lamport time.
	msg = sim.StampCausal(msg, rt.causal.Add(1), c.p.curCID, c.p.clock)
	target := rt.procs[to]
	// The life check is advisory (the target may exit between it and the
	// push); push itself refuses on a closed mailbox, so the pair behaves
	// like the model's "sends to gone processes vanish".
	depth, pushed := 0, false
	if target != nil && target.life.Load() != 2 {
		depth, pushed = rt.push(target, msg)
	}
	if !pushed {
		rt.dropped.Add(1)
		c.p.record(sim.Event{Kind: sim.EvDrop, Proc: c.p.id, Peer: to, Label: msg.Label,
			CID: msg.CID(), Parent: msg.CausalParent(), MsgID: msg.CID(), Clock: c.p.clock})
		// Transport-level failure detection, same contract as the
		// sequential Context: the sender learns within its own atomic
		// action that the message was undeliverable. Safe here: the
		// handler runs on the owning worker under the action read lock.
		if h, ok := c.p.proto.(sim.UndeliverableHandler); ok {
			h.Undeliverable(c, to, msg)
		}
		return
	}
	c.p.record(sim.Event{Kind: sim.EvSend, Proc: c.p.id, Peer: to, Label: msg.Label, Depth: depth,
		CID: msg.CID(), Parent: msg.CausalParent(), MsgID: msg.CID(), MsgSeq: msg.Seq(), Clock: c.p.clock})
}

func (c *pctx) Exit()  { c.p.wantExit = true }
func (c *pctx) Sleep() { c.p.wantSleep = true }

// OracleSays gives the process's cached view, refreshed every epoch by the
// coordinator; the authoritative re-check happens on a sealed snapshot
// before any exit commits. (Freezing here would deadlock: the calling action
// already holds its shard's action read lock.)
func (c *pctx) OracleSays() bool {
	if c.p.rt.oracle == nil {
		return false
	}
	return c.p.oracleOK.Load()
}

// deliverAction executes one delivery on p under the shard's action read
// lock. depth is the queue length right after this message's removal. It
// returns true when the action took p out of circulation for this batch
// (exit committed, or exit requested and the process suspended).
func (p *proc) deliverAction(sh *shard, msg sim.Message, depth int) bool {
	ctx := &pctx{p: p}
	p.wantExit, p.wantSleep = false, false
	// Lamport merge: the delivery happens after the send.
	if c := msg.SendClock(); c > p.clock {
		p.clock = c
	}
	p.clock++
	if p.life.Load() == 1 {
		p.life.Store(0) // processing a message wakes the process
		sh.awake.Add(1)
		p.rt.asleep.Add(-1)
		p.record(sim.Event{Kind: sim.EvWake, Proc: p.id,
			CID: p.rt.causal.Add(1), Parent: msg.CID(), Clock: p.clock})
	}
	p.curCID = p.rt.causal.Add(1)
	p.record(sim.Event{Kind: sim.EvDeliver, Proc: p.id, Peer: msg.From(), Label: msg.Label, Depth: depth,
		CID: p.curCID, Parent: msg.CID(), MsgID: msg.CID(), MsgSeq: msg.Seq(), Clock: p.clock})
	if p.rt.trackDeg {
		// The message leaves the in-flight state: its implicit edges drop,
		// and whatever the handler stores reappears via the explicit diff.
		p.rt.removeMsgPairs(p, &msg)
		p.beginRefs()
		p.proto.Deliver(ctx, msg)
		p.syncRefs()
	} else {
		p.proto.Deliver(ctx, msg)
	}
	return p.finishAction(sh)
}

// timeoutAction executes one timeout on p under the shard's action read
// lock.
func (p *proc) timeoutAction(sh *shard) bool {
	ctx := &pctx{p: p}
	p.wantExit, p.wantSleep = false, false
	p.clock++
	p.curCID = p.rt.causal.Add(1)
	p.record(sim.Event{Kind: sim.EvTimeout, Proc: p.id, CID: p.curCID, Clock: p.clock})
	if p.rt.trackDeg {
		p.beginRefs()
		p.proto.Timeout(ctx)
		p.syncRefs()
	} else {
		p.proto.Timeout(ctx)
	}
	return p.finishAction(sh)
}

// finishAction applies the deferred lifecycle transitions of one atomic
// action, mirroring the sequential engine's post-action block. Exit wins
// over sleep. With no oracle configured the exit commits immediately (there
// is no guard to revalidate); otherwise the process suspends and the
// request joins the coordinator's next epoch batch.
func (p *proc) finishAction(sh *shard) bool {
	rt := p.rt
	if p.wantSleep && !p.wantExit {
		p.record(sim.Event{Kind: sim.EvSleep, Proc: p.id,
			CID: rt.causal.Add(1), Parent: p.curCID, Clock: p.clock})
	}
	rt.events.Add(1)
	if p.wantExit {
		if rt.oracle == nil {
			rt.commitExit(p)
			return true
		}
		if p.exitPending.CompareAndSwap(false, true) {
			rt.requestExit(p)
		}
		return true
	}
	if p.wantSleep {
		p.life.Store(1)
		sh.awake.Add(-1)
		rt.asleep.Add(1)
	}
	return false
}

// requestExit queues p for the coordinator's next batched validation and
// kicks an early epoch.
func (rt *Runtime) requestExit(p *proc) {
	rt.exitMu.Lock()
	rt.pendingExits = append(rt.pendingExits, p)
	rt.exitMu.Unlock()
	select {
	case rt.exitKick <- struct{}{}:
	default:
	}
}

// commitExit makes p gone: mailbox closed (retaining its queue for terminal
// snapshots), shard bookkeeping updated, latency recorded, EvExit emitted.
// Callers: the owning worker under its action read lock (oracle-free path)
// or the coordinator / validateExit under a full pause.
func (rt *Runtime) commitExit(p *proc) {
	sh := rt.shards[p.shard.Load()]
	wasAwake := p.life.Load() == 0
	p.life.Store(2)
	sh.mbMu.Lock()
	p.mb.closed = true
	sh.mbMu.Unlock()
	if wasAwake {
		sh.awake.Add(-1)
	} else {
		rt.asleep.Add(-1)
	}
	if rt.trackDeg {
		// Degree-tracked commits only happen under the coordinator's full
		// pause, so the pair erasure races with no mutator.
		rt.dropPairsOf(p)
	}
	rt.exits.Add(1)
	sh.latMu.Lock()
	sh.exitLat = append(sh.exitLat, time.Since(rt.startTime))
	sh.latMu.Unlock()
	p.record(sim.Event{Kind: sim.EvExit, Proc: p.id,
		CID: rt.causal.Add(1), Parent: p.curCID, Clock: p.clock})
}

// validateExit pauses the world, re-evaluates the oracle on a sealed
// snapshot and commits p's exit only if the guard still holds — the
// concurrent-world equivalent of the model's atomic guard evaluation. A
// stale oracleOK cache can therefore request an exit but never commit one.
// The coordinator batches many requests per pause via validateExitOn; this
// entry point pays one pause for one request (tests, direct use). Callers
// must not hold any shard's action lock.
func (rt *Runtime) validateExit(p *proc) bool {
	rt.pauseAll()
	defer rt.resumeAll()
	var w *sim.World
	if rt.oracle != nil {
		w = rt.freezeUnderPause()
	}
	return rt.validateExitOn(w, p)
}

// validateExitOn validates one exit request against the sealed snapshot w
// and commits or denies it. A commit is folded back into w (MarkGone) so the
// next request validated on the same snapshot is judged against the
// post-commit state — required for oracles that are not monotone under
// departures. Caller holds the world paused.
func (rt *Runtime) validateExitOn(w *sim.World, p *proc) bool {
	if rt.oracle != nil {
		rt.oracleMu.Lock()
		ok := rt.oracle.Evaluate(w, p.id)
		rt.oracleMu.Unlock()
		if rt.oracleHook != nil {
			rt.oracleHook(p.id, ok)
		}
		if !ok {
			p.oracleOK.Store(false) // the cache was stale; stop re-requesting
			rt.exitDenied.Add(1)
			p.exitPending.Store(false)
			rt.reschedule(p)
			return false
		}
		w.MarkGone(p.id)
	}
	p.exitPending.Store(false)
	rt.commitExit(p)
	return true
}

// Start launches the shard workers plus the oracle coordinator.
func (rt *Runtime) Start() {
	rt.startTime = time.Now()
	rt.initially = rt.freezeLocked().PG().WeaklyConnectedComponents()
	if _, ok := rt.oracle.(degreeOracle); ok {
		// Degree-judged oracle: maintain incremental relevant-degree
		// counters so epochs validate exits without cloning the world.
		// Seeded before the workers exist; push/deliver/action-diff keep
		// them current from here on (degree.go).
		rt.trackDeg = true
		rt.reseedDegrees()
	}
	for _, sh := range rt.shards {
		var awake int32
		for _, pid := range sh.pids {
			if rt.byPid[pid].life.Load() == 0 {
				awake++
			}
		}
		sh.awake.Store(awake)
		rt.wg.Add(1)
		go sh.worker()
	}
	if rt.oracle != nil {
		rt.wg.Add(1)
		go rt.coordinate()
	}
}

// coordinate runs the epoch loop: each epoch pauses the world once, seals
// one snapshot, validates every pending exit on it, and refreshes every
// live leaving process's cached oracle answer. The cadence adapts twice
// over — while actions execute it runs every coordMin, while the system is
// quiet the interval doubles up to coordMax, and it never sleeps less than
// pauseDutyFactor times the last epoch's own duration, so large worlds are
// not frozen back-to-back. A pending exit request kicks an early epoch so
// small systems keep sub-millisecond exit latency.
func (rt *Runtime) coordinate() {
	defer rt.wg.Done()
	interval := coordMin
	var lastEvents uint64
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()

	for !rt.stop.Load() {
		began := time.Now()
		rt.epoch()
		cost := time.Since(began)

		if ev := rt.events.Load(); ev == lastEvents {
			if interval < coordMax {
				interval *= 2
				if interval > coordMax {
					interval = coordMax
				}
			}
		} else {
			lastEvents = ev
			interval = coordMin
		}
		wait := interval
		if floor := pauseDutyFactor * cost; floor > wait {
			wait = floor
		}
		timer.Reset(wait)
		select {
		case <-timer.C:
		case <-rt.exitKick:
			if !timer.Stop() {
				<-timer.C
			}
		case <-rt.stopCh:
			if !timer.Stop() {
				<-timer.C
			}
		}
	}
}

// epoch is one coordinator round under a single world pause: seal a
// snapshot, settle the pending exit batch on it, refresh the oracle caches,
// rebalance if the shards have drifted apart.
func (rt *Runtime) epoch() {
	rt.pauseAll()
	defer rt.resumeAll()
	rt.epochs.Add(1)
	if jd, ok := rt.oracle.(degreeOracle); ok && rt.trackDeg && rt.asleep.Load() == 0 {
		// Fast path: nothing is asleep, so nothing hibernates and the
		// incremental counters equal the frozen world's RelevantDegree —
		// O(pending + leavers) instead of an O(n+m) world clone.
		rt.epochFast(jd)
		rt.maybeRebalance()
		return
	}
	w := rt.freezeUnderPause()
	for _, p := range rt.takePendingExits() {
		rt.validateExitOn(w, p)
	}
	rt.oracleMu.Lock()
	for _, r := range rt.order {
		p := rt.procs[r]
		if p.mode == sim.Leaving && p.life.Load() != 2 {
			p.oracleOK.Store(rt.oracle.Evaluate(w, r))
		}
	}
	rt.oracleMu.Unlock()
	rt.maybeRebalance()
}

// takePendingExits claims the current exit batch. A process appears at most
// once: requestExit is guarded by the exitPending CAS and the flag is only
// cleared under the pause the batch is processed in.
func (rt *Runtime) takePendingExits() []*proc {
	rt.exitMu.Lock()
	defer rt.exitMu.Unlock()
	batch := rt.pendingExits
	rt.pendingExits = nil
	return batch
}

// Stop signals all workers to finish, waits for them, then leaves every
// mailbox closed-but-intact: undelivered messages stay queued so a
// post-Stop Freeze still counts every in-flight reference.
func (rt *Runtime) Stop() {
	rt.stop.Store(true)
	rt.stopOnce.Do(func() { close(rt.stopCh) })
	rt.wg.Wait()
	rt.pauseAll()
	for _, p := range rt.byPid {
		p.mb.closed = true
	}
	rt.resumeAll()
}

// RunUntil drives the system until predicate(frozen world) is true or the
// timeout elapses; it returns whether the predicate held. The predicate is
// evaluated on consistent snapshots every pollEvery.
func (rt *Runtime) RunUntil(pred func(*sim.World) bool, pollEvery, timeout time.Duration) bool {
	rt.Start()
	defer rt.Stop()
	return rt.WaitUntil(pred, pollEvery, timeout)
}

// WaitUntil blocks until pred holds on a consistent frozen snapshot,
// re-evaluating every poll tick, or until timeout elapses, and returns the
// final verdict (the predicate is re-checked once at the deadline). The
// effective poll interval adapts to the freeze cost: it is never shorter
// than pauseDutyFactor times the last evaluation's duration, so polling a
// large world cannot freeze it back-to-back. The runtime must be started;
// callers own Start/Stop.
func (rt *Runtime) WaitUntil(pred func(*sim.World) bool, poll, timeout time.Duration) bool {
	began := time.Now()
	if pred(rt.freezeLocked()) {
		return true
	}
	cost := time.Since(began)
	if poll <= 0 {
		poll = time.Millisecond
	}
	effective := func() time.Duration {
		if floor := pauseDutyFactor * cost; floor > poll {
			return floor
		}
		return poll
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	tick := time.NewTimer(effective())
	defer tick.Stop()
	for {
		select {
		case <-timer.C:
			return pred(rt.freezeLocked())
		case <-tick.C:
			began = time.Now()
			if pred(rt.freezeLocked()) {
				return true
			}
			cost = time.Since(began)
			tick.Reset(effective())
		}
	}
}

// Freeze returns a consistent sequential snapshot of the current global
// state as a sim.World, so every predicate and oracle written for the
// simulator works unchanged on the concurrent runtime. Safe to call before
// Start, while running, and after Stop (where it sees the terminal state
// including undelivered messages).
func (rt *Runtime) Freeze() *sim.World { return rt.freezeLocked() }

// freezeLocked pauses the world and builds the frozen world.
func (rt *Runtime) freezeLocked() *sim.World {
	rt.pauseAll()
	defer rt.resumeAll()
	return rt.freezeUnderPause()
}

// freezeUnderPause builds the frozen world. Caller holds the world paused
// (every shard's action lock), so process state and mailboxes are plain
// data.
func (rt *Runtime) freezeUnderPause() *sim.World {
	w := sim.NewWorld(rt.oracle)
	for _, r := range rt.order {
		p := rt.procs[r]
		if p.life.Load() == 2 {
			continue
		}
		fp := &frozenProto{refs: p.proto.Refs()}
		if bh, ok := p.proto.(interface{ Beliefs() []sim.RefInfo }); ok {
			fp.beliefs = bh.Beliefs() // copied under the pause
		}
		w.AddProcess(r, p.mode, fp)
	}
	for _, r := range rt.order {
		p := rt.procs[r]
		if p.life.Load() == 2 {
			continue
		}
		if p.life.Load() == 1 {
			w.ForceAsleep(r)
		}
		for _, m := range p.mb.queue[p.mb.head:] {
			w.Enqueue(r, m)
		}
	}
	// Judge safety and legitimacy condition (iii) against the components
	// captured at Start time. Re-sealing the snapshot's own PG here (as an
	// earlier revision did) adopts any disconnection that already happened
	// as the new reference partition, making every safety check on frozen
	// worlds vacuously pass — the differential harness caught unsafe-oracle
	// runs "converging legitimately" that way.
	if rt.initially != nil {
		w.SetInitialComponents(rt.initially)
	}
	// Seed the incremental process graph while the world is still paused:
	// the frozen world is immutable afterwards, so the coordinator and
	// predicates hit warm per-generation caches on every query.
	w.PG()
	return w
}

// frozenProto is an immutable stand-in exposing the stored references and
// mode beliefs captured at snapshot time, so predicates (including the
// potential function Φ) evaluate on a consistent, race-free copy.
type frozenProto struct {
	refs    []ref.Ref
	beliefs []sim.RefInfo
}

func (f *frozenProto) Timeout(sim.Context)              {}
func (f *frozenProto) Deliver(sim.Context, sim.Message) {}
func (f *frozenProto) Refs() []ref.Ref                  { return f.refs }

// Beliefs returns the mode knowledge captured at snapshot time.
func (f *frozenProto) Beliefs() []sim.RefInfo { return f.beliefs }

// InitialComponents returns the weakly-connected components at Start time
// (or at the last Reseal).
func (rt *Runtime) InitialComponents() [][]ref.Ref { return rt.initially }

// PGSnapshot returns a consistent process graph of the current state.
func (rt *Runtime) PGSnapshot() *graph.Graph { return rt.freezeLocked().PG() }

// --- Pause-the-world mutation (fault injection) ------------------------

// MutableView is the exclusive access Mutate hands its callback: every
// worker is paused (the callback runs under the full pause), so protocol
// state may be read and corrupted freely. The view must not escape the
// callback.
type MutableView struct{ rt *Runtime }

// Mutate pauses the world and runs fn with exclusive access to the live
// protocol states and mailboxes. It is how the fault injector strikes a
// RUNNING runtime: no action executes concurrently with fn, matching the
// simulator's between-actions strike semantics.
func (rt *Runtime) Mutate(fn func(v *MutableView)) {
	rt.pauseAll()
	defer rt.resumeAll()
	fn(&MutableView{rt: rt})
	// A strike may rewrite stored references or inject messages without any
	// action running: rebuild the incremental degree counters before the
	// world resumes (the counter analogue of sim.World.InvalidatePG).
	rt.reseedDegrees()
}

// Live returns the references of all non-gone processes in deterministic
// order.
func (v *MutableView) Live() []ref.Ref {
	out := make([]ref.Ref, 0, len(v.rt.order))
	for _, r := range v.rt.order {
		if v.rt.procs[r].life.Load() != 2 {
			out = append(out, r)
		}
	}
	return out
}

// Alive reports whether r names a registered, non-gone process.
func (v *MutableView) Alive(r ref.Ref) bool {
	p := v.rt.procs[r]
	return p != nil && p.life.Load() != 2
}

// ModeOf returns the true mode of r.
func (v *MutableView) ModeOf(r ref.Ref) sim.Mode { return v.rt.procs[r].mode }

// ProtocolOf returns the live protocol instance of r for in-place
// corruption. Exclusive access: the workers are paused.
func (v *MutableView) ProtocolOf(r ref.Ref) sim.Protocol { return v.rt.procs[r].proto }

// Enqueue injects a message into r's mailbox (spurious junk, or a displaced
// reference kept in flight). Messages to gone processes vanish, like sends.
// Injected messages get a fresh causal identity with no parent — they are
// faults, nothing in the trace caused them.
func (v *MutableView) Enqueue(to ref.Ref, msg sim.Message) bool {
	p := v.rt.procs[to]
	if p == nil || p.life.Load() == 2 {
		return false
	}
	_, ok := v.rt.push(p, sim.StampCausal(msg, v.rt.causal.Add(1), 0, 0))
	return ok
}

// ChannelSnapshot returns a copy of r's pending (undelivered) messages in
// mailbox order. Exclusive access: the workers are paused, so the mailbox is
// plain data. Gone or unknown processes have no channel.
func (v *MutableView) ChannelSnapshot(r ref.Ref) []sim.Message {
	p := v.rt.procs[r]
	if p == nil || p.life.Load() == 2 {
		return nil
	}
	out := make([]sim.Message, p.mb.len())
	copy(out, p.mb.queue[p.mb.head:])
	return out
}

// Reseal re-captures the weakly-connected-component partition of the
// current state as the new reference point for safety and legitimacy — the
// post-fault state is the new "arbitrary initial state" convergence is
// measured from, exactly like faults.Strike's re-seal on the simulator.
func (v *MutableView) Reseal() {
	v.rt.initially = v.rt.freezeUnderPause().PG().WeaklyConnectedComponents()
}
