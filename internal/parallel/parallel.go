// Package parallel is the concurrent runtime: one goroutine per process,
// real mailboxes, true parallel execution on all cores. It runs the same
// Protocol implementations as the sequential simulator (they only ever see
// the sim.Context interface) and is used to cross-validate the simulator's
// outcomes (experiment E16, internal/diffval) and to measure event
// throughput (experiment E11).
//
// Concurrency design ("share memory by communicating" where possible, a
// coarse snapshot lock where the model demands a consistent global view):
//
//   - Each process's protocol state is owned by its goroutine; nobody else
//     touches it while actions run.
//   - Mailboxes are mutex+cond queues with unbounded capacity, matching the
//     model's channels (no loss, no bound). FIFO order per mailbox is one
//     legal schedule of the non-FIFO model. A closed mailbox stops
//     accepting and delivering messages but RETAINS its queue, so terminal
//     snapshots still see every in-flight reference (implicit edges).
//   - Every action executes under the read side of a global RWMutex; global
//     snapshots (oracle evaluation, legitimacy detection, exit validation,
//     fault injection via Mutate) take the write side. This gives honest
//     parallelism between snapshot points.
//   - exit is validated under the write lock: a process's cached oracle
//     answer may be stale, so validateExit re-evaluates the oracle on a
//     consistent snapshot before committing the exit — exactly the "check
//     then act atomically" the sequential model provides for free.
//   - Idle processes are event-driven: a timeout that finds no work waits
//     on the mailbox's notify channel with an exponentially growing backoff
//     (idleMin..idleMax) instead of busy-sleeping a fixed interval. A
//     message arrival wakes the process immediately; the backoff cap bounds
//     the latency of purely timeout-driven progress.
//
// Oracles used with this runtime must be stateless values (like
// oracle.Single); evaluations run concurrently from the coordinator and
// from validateExit and are serialized only by oracleMu, not by the
// snapshot lock.
package parallel

import (
	"sync"
	"sync/atomic"
	"time"

	"fdp/internal/graph"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// Idle backoff bounds for the per-process event loop and the coordinator's
// refresh cadence. Small enough that timeout-driven protocol progress stays
// fast, large enough that a converged system does not spin.
const (
	idleMin  = 5 * time.Microsecond
	idleMax  = time.Millisecond
	coordMin = 200 * time.Microsecond
	coordMax = 4 * time.Millisecond
)

// mailbox is an unbounded FIFO queue with blocking receive.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []sim.Message
	closed bool
	// notify is a capacity-1 wakeup signal for the owner's idle wait; push
	// raises it so an idling process reacts to new work immediately instead
	// of sleeping out its backoff interval.
	notify chan struct{}
}

func newMailbox() *mailbox {
	m := &mailbox{notify: make(chan struct{}, 1)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// push enqueues msg and returns the queue depth after the append (0 and
// false when the mailbox is closed).
func (m *mailbox) push(msg sim.Message) (int, bool) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return 0, false
	}
	m.queue = append(m.queue, msg)
	depth := len(m.queue)
	m.cond.Signal()
	m.mu.Unlock()
	select {
	case m.notify <- struct{}{}:
	default:
	}
	return depth, true
}

// tryPop returns immediately; a closed mailbox delivers nothing (its
// remaining queue is retained for terminal snapshots). The int result is
// the queue depth after the pop.
func (m *mailbox) tryPop() (sim.Message, int, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || len(m.queue) == 0 {
		return sim.Message{}, 0, false
	}
	msg := m.queue[0]
	m.queue = m.queue[1:]
	return msg, len(m.queue), true
}

// waitPop blocks until a message arrives or the mailbox closes; the last
// result is false when the mailbox is closed. The int result is the queue
// depth after the pop.
func (m *mailbox) waitPop() (sim.Message, int, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if m.closed || len(m.queue) == 0 {
		return sim.Message{}, 0, false
	}
	msg := m.queue[0]
	m.queue = m.queue[1:]
	return msg, len(m.queue), true
}

// close stops deliveries and further pushes but RETAINS the queued
// messages: they are in-flight state the terminal freeze must still count
// (an earlier revision nilled the queue here, silently dropping every
// reference carried by undelivered messages from post-Stop snapshots).
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

func (m *mailbox) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}

func (m *mailbox) snapshot() []sim.Message {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]sim.Message, len(m.queue))
	copy(out, m.queue)
	return out
}

// proc is one concurrent process.
type proc struct {
	id    ref.Ref
	mode  sim.Mode
	proto sim.Protocol
	mb    *mailbox

	// life is read concurrently (sends, snapshots) and written by the
	// owner goroutine / coordinator: 0 awake, 1 asleep, 2 gone.
	life atomic.Int32

	wantExit  bool
	wantSleep bool

	// clock is the process's Lamport clock and curCID the causal ID of the
	// current action's trigger event. Both are touched only by the owner
	// goroutine (validateExit included: it runs on the owner), so they need
	// no synchronization beyond the mailbox transfer of message clocks.
	clock  uint64
	curCID uint64

	// ring is the per-process trace ring (nil unless EnableTrace). Written
	// only by the owner goroutine under the action RLock (or the snapshot
	// write lock for the exit event); read under the snapshot write lock.
	ring *evRing

	// oracleOK caches the coordinator's last oracle evaluation for this
	// process. Reads are cheap and may be stale; exits are re-validated
	// under the snapshot lock.
	oracleOK atomic.Bool

	rt *Runtime
}

// Runtime drives a set of processes concurrently.
type Runtime struct {
	procs  map[ref.Ref]*proc
	order  []ref.Ref
	oracle sim.Oracle // evaluated on frozen snapshots via the World shim

	snap sync.RWMutex // actions: RLock; snapshots and Mutate: Lock

	// oracleMu serializes oracle evaluations that run outside the snapshot
	// lock (the coordinator evaluates on a private frozen world after
	// releasing it) against validateExit's evaluation under the lock, so
	// stateful oracles do not race with themselves.
	oracleMu sync.Mutex

	// causal is the runtime's causal-ID counter, the concurrent analogue of
	// the simulator's. Enqueue seeds it past any transplanted message's CID
	// (MirrorWorld preserves the build world's IDs), so the initial causal
	// vocabulary is identical across engines and fresh IDs never collide.
	causal atomic.Uint64

	events     atomic.Uint64 // executed actions (timeouts + deliveries)
	sent       atomic.Uint64
	dropped    atomic.Uint64 // sends to gone/closed targets (vanish, like the model)
	exits      atomic.Int32
	exitDenied atomic.Uint64 // exit requests rejected by revalidation

	// kindCounts mirrors the sequential engine's per-kind event stream as
	// always-on atomic counters (see events.go).
	kindCounts [sim.NumEventKinds]atomic.Uint64
	traceCap   int             // per-proc ring capacity set by EnableTrace
	eventSink  func(sim.Event) // optional synchronous observer (obs bridge)
	startTime  time.Time       // set by Start; exit latencies measured from it

	// exitLatency records time-to-exit per committed exit, appended by
	// validateExit under the snapshot write lock.
	exitLatency []time.Duration

	stop     atomic.Bool
	stopCh   chan struct{} // closed by Stop; unblocks idle waits promptly
	stopOnce sync.Once
	wg       sync.WaitGroup

	// initially is the weakly-connected-component partition captured at
	// Start (and re-captured by MutableView.Reseal after a fault strike).
	// Written only before the goroutines exist or under the snapshot lock.
	initially [][]ref.Ref
}

// Oracle is re-exported so callers pass the same oracles as the simulator.
type Oracle = sim.Oracle

// NewRuntime returns an empty runtime with the given oracle (may be nil).
func NewRuntime(oracle Oracle) *Runtime {
	return &Runtime{
		procs:  make(map[ref.Ref]*proc),
		oracle: oracle,
		stopCh: make(chan struct{}),
	}
}

// AddProcess registers a process before Start.
func (rt *Runtime) AddProcess(r ref.Ref, mode sim.Mode, proto sim.Protocol) {
	if _, dup := rt.procs[r]; dup {
		panic("parallel: duplicate process")
	}
	p := &proc{id: r, mode: mode, proto: proto, mb: newMailbox(), rt: rt}
	if rt.traceCap > 0 {
		p.ring = &evRing{buf: make([]sim.Event, 0, rt.traceCap)}
	}
	rt.procs[r] = p
	rt.order = append(rt.order, r)
	ref.Sort(rt.order)
}

// Enqueue injects an initial in-flight message before Start. Messages that
// already carry a causal identity (transplanted from a sequential world by
// MirrorWorld) keep it and advance the runtime's causal counter past it;
// bare messages get a fresh CID.
func (rt *Runtime) Enqueue(to ref.Ref, msg sim.Message) {
	if msg.CID() == 0 {
		msg = sim.StampCausal(msg, rt.causal.Add(1), 0, 0)
	} else if cur := rt.causal.Load(); msg.CID() > cur {
		rt.causal.Store(msg.CID())
	}
	rt.procs[to].mb.push(msg)
}

// KindCount returns the number of events of kind k emitted so far.
func (rt *Runtime) KindCount(k sim.EventKind) uint64 {
	if int(k) >= len(rt.kindCounts) {
		return 0
	}
	return rt.kindCounts[k].Load()
}

// ForceAsleep starts a process in the asleep state. It mirrors
// sim.World.ForceAsleep for scenario transplantation (FSP worlds whose
// initial state contains asleep processes) and must be called before Start.
func (rt *Runtime) ForceAsleep(r ref.Ref) {
	rt.procs[r].life.Store(1)
}

// Events returns the number of executed actions so far.
func (rt *Runtime) Events() uint64 { return rt.events.Load() }

// Sent returns the number of sent messages so far (including drops, like
// the simulator's Stats.Sent).
func (rt *Runtime) Sent() uint64 { return rt.sent.Load() }

// Dropped returns the number of sends that vanished because the target was
// gone (or exiting concurrently).
func (rt *Runtime) Dropped() uint64 { return rt.dropped.Load() }

// Gone returns the number of exited processes.
func (rt *Runtime) Gone() int { return int(rt.exits.Load()) }

// ExitDenied returns how many exit requests the revalidation under the
// snapshot lock rejected because the stale cached oracle answer no longer
// held. Observability for the validateExit contention tests.
func (rt *Runtime) ExitDenied() uint64 { return rt.exitDenied.Load() }

// ctx implements sim.Context for a process action.
type pctx struct{ p *proc }

func (c *pctx) Self() ref.Ref  { return c.p.id }
func (c *pctx) Mode() sim.Mode { return c.p.mode }

func (c *pctx) Send(to ref.Ref, msg sim.Message) {
	if to.IsNil() {
		return
	}
	rt := c.p.rt
	rt.sent.Add(1)
	// Causal stamp, mirroring the simulator's Send: fresh CID, parent = the
	// action event being executed, clock = the sender's Lamport time.
	msg = sim.StampCausal(msg, rt.causal.Add(1), c.p.curCID, c.p.clock)
	target := rt.procs[to]
	// The life check is advisory (the target may exit between it and the
	// push); push itself refuses on a closed mailbox, so the pair behaves
	// like the model's "sends to gone processes vanish".
	depth, pushed := 0, false
	if target != nil && target.life.Load() != 2 {
		depth, pushed = target.mb.push(msg)
	}
	if !pushed {
		rt.dropped.Add(1)
		c.p.record(sim.Event{Kind: sim.EvDrop, Proc: c.p.id, Peer: to, Label: msg.Label,
			CID: msg.CID(), Parent: msg.CausalParent(), MsgID: msg.CID(), Clock: c.p.clock})
		// Transport-level failure detection, same contract as the
		// sequential Context: the sender learns within its own atomic
		// action that the message was undeliverable. Safe here: the
		// handler runs on the owner goroutine under the action RLock.
		if h, ok := c.p.proto.(sim.UndeliverableHandler); ok {
			h.Undeliverable(c, to, msg)
		}
		return
	}
	c.p.record(sim.Event{Kind: sim.EvSend, Proc: c.p.id, Peer: to, Label: msg.Label, Depth: depth,
		CID: msg.CID(), Parent: msg.CausalParent(), MsgID: msg.CID(), MsgSeq: msg.Seq(), Clock: c.p.clock})
}

func (c *pctx) Exit()  { c.p.wantExit = true }
func (c *pctx) Sleep() { c.p.wantSleep = true }

// OracleSays gives the process's cached view, refreshed periodically by the
// coordinator; the authoritative re-check happens in validateExit under the
// snapshot lock. (Taking the snapshot lock here would deadlock: the calling
// action already holds its read side.)
func (c *pctx) OracleSays() bool {
	if c.p.rt.oracle == nil {
		return false
	}
	return c.p.oracleOK.Load()
}

// run is the per-process goroutine body.
func (p *proc) run() {
	defer p.rt.wg.Done()
	backoff := idleMin
	idleTimer := time.NewTimer(time.Hour)
	if !idleTimer.Stop() {
		<-idleTimer.C
	}
	defer idleTimer.Stop()

	for !p.rt.stop.Load() {
		if p.life.Load() == 2 {
			return
		}
		var msg sim.Message
		var haveMsg, woke bool
		var depth int
		if p.life.Load() == 1 { // asleep: block until a message arrives
			msg, depth, haveMsg = p.mb.waitPop()
			if !haveMsg {
				if p.rt.stop.Load() || p.life.Load() == 2 {
					return
				}
				continue
			}
			p.life.Store(0) // processing a message wakes the process
			woke = true
		} else {
			msg, depth, haveMsg = p.mb.tryPop()
		}

		ctx := &pctx{p: p}
		p.wantExit, p.wantSleep = false, false

		// The trace events of one action (wake, deliver/timeout, the sends
		// inside the protocol code, sleep) are all recorded under the action
		// RLock: the per-proc ring's single-writer contract relies on the
		// snapshot lock ordering every ring write before every drain.
		p.rt.snap.RLock()
		if haveMsg {
			// Lamport merge: the delivery happens after the send.
			if c := msg.SendClock(); c > p.clock {
				p.clock = c
			}
			p.clock++
			if woke {
				p.record(sim.Event{Kind: sim.EvWake, Proc: p.id,
					CID: p.rt.causal.Add(1), Parent: msg.CID(), Clock: p.clock})
			}
			p.curCID = p.rt.causal.Add(1)
			p.record(sim.Event{Kind: sim.EvDeliver, Proc: p.id, Peer: msg.From(), Label: msg.Label, Depth: depth,
				CID: p.curCID, Parent: msg.CID(), MsgID: msg.CID(), MsgSeq: msg.Seq(), Clock: p.clock})
			p.proto.Deliver(ctx, msg)
		} else {
			p.clock++
			p.curCID = p.rt.causal.Add(1)
			p.record(sim.Event{Kind: sim.EvTimeout, Proc: p.id, CID: p.curCID, Clock: p.clock})
			p.proto.Timeout(ctx)
		}
		if p.wantSleep && !p.wantExit {
			p.record(sim.Event{Kind: sim.EvSleep, Proc: p.id,
				CID: p.rt.causal.Add(1), Parent: p.curCID, Clock: p.clock})
		}
		p.rt.snap.RUnlock()
		p.rt.events.Add(1)

		if p.wantExit {
			if p.rt.validateExit(p) {
				return
			}
		} else if p.wantSleep {
			p.life.Store(1)
		}

		if haveMsg {
			backoff = idleMin
			continue
		}
		// Idle timeout loop: wait for new work (mailbox notify) or the next
		// timeout slot, whichever comes first. The backoff doubles while the
		// process stays idle and resets on the next delivery, so a busy
		// system runs flat out and a converged one barely wakes.
		idleTimer.Reset(backoff)
		select {
		case <-p.mb.notify:
			if !idleTimer.Stop() {
				<-idleTimer.C
			}
		case <-p.rt.stopCh:
			if !idleTimer.Stop() {
				<-idleTimer.C
			}
		case <-idleTimer.C:
		}
		if backoff < idleMax {
			backoff *= 2
			if backoff > idleMax {
				backoff = idleMax
			}
		}
	}
}

// validateExit re-evaluates the oracle under the snapshot (write) lock and
// commits the exit only if it still holds — the concurrent-world equivalent
// of the model's atomic guard evaluation. A stale oracleOK cache can
// therefore request an exit but never commit one.
func (rt *Runtime) validateExit(p *proc) bool {
	rt.snap.Lock()
	defer rt.snap.Unlock()
	if rt.oracle != nil {
		w := rt.freezeUnderLock()
		rt.oracleMu.Lock()
		ok := rt.oracle.Evaluate(w, p.id)
		rt.oracleMu.Unlock()
		if !ok {
			p.oracleOK.Store(false) // the cache was stale; stop re-requesting
			rt.exitDenied.Add(1)
			return false
		}
	}
	p.life.Store(2)
	p.mb.close()
	rt.exits.Add(1)
	rt.exitLatency = append(rt.exitLatency, time.Since(rt.startTime))
	p.record(sim.Event{Kind: sim.EvExit, Proc: p.id,
		CID: rt.causal.Add(1), Parent: p.curCID, Clock: p.clock})
	return true
}

// Start launches all process goroutines plus the oracle coordinator.
func (rt *Runtime) Start() {
	rt.startTime = time.Now()
	rt.initially = rt.freezeLocked().PG().WeaklyConnectedComponents()
	for _, r := range rt.order {
		rt.wg.Add(1)
		go rt.procs[r].run()
	}
	if rt.oracle != nil {
		rt.wg.Add(1)
		go rt.coordinate()
	}
}

// coordinate periodically refreshes every live leaving process's cached
// oracle answer on a consistent snapshot. The cadence adapts: while actions
// execute it refreshes every coordMin, and while the system is quiet the
// interval doubles up to coordMax, so a converged (or FSP-hibernated)
// system is not frozen 2000 times a second for nothing.
func (rt *Runtime) coordinate() {
	defer rt.wg.Done()
	interval := coordMin
	var lastEvents uint64
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()

	for !rt.stop.Load() {
		w := rt.freezeLocked()
		rt.oracleMu.Lock()
		for _, r := range rt.order {
			p := rt.procs[r]
			if p.mode == sim.Leaving && p.life.Load() != 2 {
				p.oracleOK.Store(rt.oracle.Evaluate(w, r))
			}
		}
		rt.oracleMu.Unlock()

		if ev := rt.events.Load(); ev == lastEvents {
			if interval < coordMax {
				interval *= 2
				if interval > coordMax {
					interval = coordMax
				}
			}
		} else {
			lastEvents = ev
			interval = coordMin
		}
		timer.Reset(interval)
		select {
		case <-timer.C:
		case <-rt.stopCh:
			if !timer.Stop() {
				<-timer.C
			}
		}
	}
}

// Stop signals all goroutines to finish and waits for them, then leaves the
// mailboxes closed-but-intact: undelivered messages stay queued so a
// post-Stop Freeze still counts every in-flight reference. Closing wakes
// processes blocked in waitPop (asleep, FSP); the stop channel wakes idle
// backoff waits.
func (rt *Runtime) Stop() {
	rt.stop.Store(true)
	rt.stopOnce.Do(func() { close(rt.stopCh) })
	for _, p := range rt.procs {
		p.mb.close()
	}
	rt.wg.Wait()
}

// RunUntil drives the system until predicate(frozen world) is true or the
// timeout elapses; it returns whether the predicate held. The predicate is
// evaluated on consistent snapshots every pollEvery.
func (rt *Runtime) RunUntil(pred func(*sim.World) bool, pollEvery, timeout time.Duration) bool {
	rt.Start()
	defer rt.Stop()
	return rt.WaitUntil(pred, pollEvery, timeout)
}

// WaitUntil blocks until pred holds on a consistent frozen snapshot,
// re-evaluating every poll tick, or until timeout elapses, and returns the
// final verdict (the predicate is re-checked once at the deadline). Unlike
// a deadline busy-poll, the wait is a single timer plus a ticker, with no
// wall-clock reads in the loop condition. The runtime must be started;
// callers own Start/Stop.
func (rt *Runtime) WaitUntil(pred func(*sim.World) bool, poll, timeout time.Duration) bool {
	if pred(rt.freezeLocked()) {
		return true
	}
	if poll <= 0 {
		poll = time.Millisecond
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		select {
		case <-timer.C:
			return pred(rt.freezeLocked())
		case <-ticker.C:
			if pred(rt.freezeLocked()) {
				return true
			}
		}
	}
}

// Freeze returns a consistent sequential snapshot of the current global
// state as a sim.World, so every predicate and oracle written for the
// simulator works unchanged on the concurrent runtime. Safe to call before
// Start, while running, and after Stop (where it sees the terminal state
// including undelivered messages).
func (rt *Runtime) Freeze() *sim.World { return rt.freezeLocked() }

// freezeLocked takes the snapshot lock and builds the frozen world.
func (rt *Runtime) freezeLocked() *sim.World {
	rt.snap.Lock()
	defer rt.snap.Unlock()
	return rt.freezeUnderLock()
}

func (rt *Runtime) freezeUnderLock() *sim.World {
	w := sim.NewWorld(rt.oracle)
	for _, r := range rt.order {
		p := rt.procs[r]
		if p.life.Load() == 2 {
			continue
		}
		fp := &frozenProto{refs: p.proto.Refs()}
		if bh, ok := p.proto.(interface{ Beliefs() []sim.RefInfo }); ok {
			fp.beliefs = bh.Beliefs() // copied under the snapshot lock
		}
		w.AddProcess(r, p.mode, fp)
	}
	for _, r := range rt.order {
		p := rt.procs[r]
		if p.life.Load() == 2 {
			continue
		}
		if p.life.Load() == 1 {
			w.ForceAsleep(r)
		}
		for _, m := range p.mb.snapshot() {
			w.Enqueue(r, m)
		}
	}
	// Judge safety and legitimacy condition (iii) against the components
	// captured at Start time. Re-sealing the snapshot's own PG here (as an
	// earlier revision did) adopts any disconnection that already happened
	// as the new reference partition, making every safety check on frozen
	// worlds vacuously pass — the differential harness caught unsafe-oracle
	// runs "converging legitimately" that way.
	if rt.initially != nil {
		w.SetInitialComponents(rt.initially)
	}
	// Seed the incremental process graph while we still hold the snapshot
	// lock: the frozen world is immutable afterwards, so the coordinator and
	// predicates hit warm per-generation caches on every query.
	w.PG()
	return w
}

// frozenProto is an immutable stand-in exposing the stored references and
// mode beliefs captured at snapshot time, so predicates (including the
// potential function Φ) evaluate on a consistent, race-free copy.
type frozenProto struct {
	refs    []ref.Ref
	beliefs []sim.RefInfo
}

func (f *frozenProto) Timeout(sim.Context)              {}
func (f *frozenProto) Deliver(sim.Context, sim.Message) {}
func (f *frozenProto) Refs() []ref.Ref                  { return f.refs }

// Beliefs returns the mode knowledge captured at snapshot time.
func (f *frozenProto) Beliefs() []sim.RefInfo { return f.beliefs }

// InitialComponents returns the weakly-connected components at Start time
// (or at the last Reseal).
func (rt *Runtime) InitialComponents() [][]ref.Ref { return rt.initially }

// PGSnapshot returns a consistent process graph of the current state.
func (rt *Runtime) PGSnapshot() *graph.Graph { return rt.freezeLocked().PG() }

// --- Pause-the-world mutation (fault injection) ------------------------

// MutableView is the exclusive access Mutate hands its callback: every
// process goroutine is paused (the callback runs under the snapshot write
// lock), so protocol state may be read and corrupted freely. The view must
// not escape the callback.
type MutableView struct{ rt *Runtime }

// Mutate pauses the world under the snapshot (write) lock and runs fn with
// exclusive access to the live protocol states and mailboxes. It is how the
// fault injector strikes a RUNNING runtime: no action executes concurrently
// with fn, matching the simulator's between-actions strike semantics.
func (rt *Runtime) Mutate(fn func(v *MutableView)) {
	rt.snap.Lock()
	defer rt.snap.Unlock()
	fn(&MutableView{rt: rt})
}

// Live returns the references of all non-gone processes in deterministic
// order.
func (v *MutableView) Live() []ref.Ref {
	out := make([]ref.Ref, 0, len(v.rt.order))
	for _, r := range v.rt.order {
		if v.rt.procs[r].life.Load() != 2 {
			out = append(out, r)
		}
	}
	return out
}

// Alive reports whether r names a registered, non-gone process.
func (v *MutableView) Alive(r ref.Ref) bool {
	p := v.rt.procs[r]
	return p != nil && p.life.Load() != 2
}

// ModeOf returns the true mode of r.
func (v *MutableView) ModeOf(r ref.Ref) sim.Mode { return v.rt.procs[r].mode }

// ProtocolOf returns the live protocol instance of r for in-place
// corruption. Exclusive access: the owner goroutine is paused.
func (v *MutableView) ProtocolOf(r ref.Ref) sim.Protocol { return v.rt.procs[r].proto }

// Enqueue injects a message into r's mailbox (spurious junk, or a displaced
// reference kept in flight). Messages to gone processes vanish, like sends.
// Injected messages get a fresh causal identity with no parent — they are
// faults, nothing in the trace caused them.
func (v *MutableView) Enqueue(to ref.Ref, msg sim.Message) bool {
	p := v.rt.procs[to]
	if p == nil || p.life.Load() == 2 {
		return false
	}
	_, ok := p.mb.push(sim.StampCausal(msg, v.rt.causal.Add(1), 0, 0))
	return ok
}

// Reseal re-captures the weakly-connected-component partition of the
// current state as the new reference point for safety and legitimacy — the
// post-fault state is the new "arbitrary initial state" convergence is
// measured from, exactly like faults.Strike's re-seal on the simulator.
func (v *MutableView) Reseal() {
	v.rt.initially = v.rt.freezeUnderLock().PG().WeaklyConnectedComponents()
}
