package parallel

// Incremental relevant-degree tracking — the fast path of epoch validation.
//
// The SINGLE oracle's verdict for a process u is a pure function of u's
// degree in the relevant process graph: the number of distinct other live
// processes u shares an edge with, explicit (a stored reference, either
// direction) or implicit (a reference in a message queued to either side).
// The sequential engine answers that in O(1) from its incrementally
// maintained PG; the concurrent runtime used to rebuild a full sim.World
// clone every epoch just to ask it — an O(n+m) rebuild whose allocation and
// GC cost dominates the machine at n=100k (profiled at ~80% of total CPU).
//
// Instead, the runtime mirrors the sequential engine's bookkeeping: every
// LEAVING process carries a neighbor multiset (nbr: distinct neighbor pid →
// number of current edges with it), updated at the three places edges
// change —
//
//   - a message push adds one edge (receiver, r) per reference r it carries;
//     a delivery removes them (in-flight references are implicit PG edges);
//   - an action that changes its process's stored references is diffed
//     (refs-before vs refs-after, as multisets) — only the acting process's
//     own explicit edges can change, so the diff is local;
//   - an exit commit deletes every pair involving the leaver (PG drops the
//     node), and additions are gated on both endpoints being alive, so a
//     stale stored reference to a gone process never re-counts.
//
// Pairs with both endpoints staying are not tracked — no oracle ever asks
// for a stayer's degree. len(nbr) then IS the leaver's relevant degree
// whenever nothing in the system is asleep (every FDP state; asleep
// processes require the sequential hibernation sweep, so the coordinator
// falls back to the frozen-world path if rt.asleep is ever nonzero).
//
// Synchronization: each pair update locks the two endpoints' degMu in
// ascending pid order (plain mutexes unrelated to the §12 ranked locks;
// they guard only the nbr maps and nest under nothing but each other).
// Mutators run under some shard's action read lock — or under the full
// pause — so they can never race the coordinator's pause-side reads,
// exit-commit cleanup, or reseeding.

import (
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// degreeOracle is implemented by oracles whose verdict is a pure function
// of the SINGLE-style relevant degree (oracle.Single, oracle.Always). For
// these the coordinator validates exits and refreshes caches from the
// runtime's incremental counters, skipping the per-epoch world clone.
type degreeOracle interface {
	JudgeDegree(deg int) bool
}

// pairDelta applies d (+1 add, -1 remove) to the edge pair (a, r). Adds are
// gated like sim.World.isLiveTarget: unregistered, self, or gone endpoints
// contribute nothing. Removes clamp — a pair already erased by an exit
// commit (or never counted because an endpoint was gone) is a no-op, which
// is exactly the sequential engine's "removals no-op after RemoveNode".
func (rt *Runtime) pairDelta(a *proc, r ref.Ref, d int32) {
	b := rt.procs[r]
	if b == nil || b == a {
		return
	}
	if a.nbr == nil && b.nbr == nil {
		return // stayer-stayer pair: untracked
	}
	if d > 0 && (a.life.Load() == 2 || b.life.Load() == 2) {
		return
	}
	lo, hi := a, b
	if lo.pid > hi.pid {
		lo, hi = hi, lo
	}
	lo.degMu.Lock()
	hi.degMu.Lock()
	if a.nbr != nil {
		bumpNbr(a.nbr, b.pid, d)
	}
	if b.nbr != nil {
		bumpNbr(b.nbr, a.pid, d)
	}
	hi.degMu.Unlock()
	lo.degMu.Unlock()
}

func bumpNbr(m map[uint32]int32, v uint32, d int32) {
	c := m[v] + d
	if c <= 0 {
		delete(m, v)
	} else {
		m[v] = c
	}
}

// addMsgPairs counts the implicit edges of msg, about to be queued to p.
// Called before the message becomes poppable, so a racing delivery can
// never remove a pair before it was added.
func (rt *Runtime) addMsgPairs(p *proc, msg *sim.Message) {
	for _, ri := range msg.Refs {
		rt.pairDelta(p, ri.Ref, 1)
	}
}

// removeMsgPairs drops the implicit edges of msg: either it was just
// delivered (the references move into the action's explicit diff), or the
// push that counted it was refused by a closed mailbox and is being undone.
func (rt *Runtime) removeMsgPairs(p *proc, msg *sim.Message) {
	for _, ri := range msg.Refs {
		rt.pairDelta(p, ri.Ref, -1)
	}
}

// beginRefs snapshots p's stored references before an action; syncRefs
// diffs the snapshot against the post-action state and applies the explicit
// edge deltas. Only the acting process's own stored references can change,
// so the diff is local to p. The common case — an action that stored
// nothing new — is detected by an order-preserving scan without sorting.
func (p *proc) beginRefs() {
	p.refsA = append(p.refsA[:0], p.proto.Refs()...)
}

func (p *proc) syncRefs() {
	after := p.proto.Refs()
	if len(after) == len(p.refsA) {
		same := true
		for i, r := range after {
			if r != p.refsA[i] {
				same = false
				break
			}
		}
		if same {
			return
		}
	}
	p.refsB = append(p.refsB[:0], after...)
	ref.Sort(p.refsA)
	ref.Sort(p.refsB)
	i, j := 0, 0
	for i < len(p.refsA) || j < len(p.refsB) {
		switch {
		case j >= len(p.refsB) || (i < len(p.refsA) && ref.Less(p.refsA[i], p.refsB[j])):
			p.rt.pairDelta(p, p.refsA[i], -1)
			i++
		case i >= len(p.refsA) || ref.Less(p.refsB[j], p.refsA[i]):
			p.rt.pairDelta(p, p.refsB[j], 1)
			j++
		default:
			i++
			j++
		}
	}
}

// dropPairsOf erases every pair involving the exiting p, mirroring the
// sequential PG's RemoveNode: the neighbors' counts drop immediately, and
// stale references to p left behind in stores or in flight are inert (adds
// are life-gated, removes clamp). Caller holds the world paused.
func (rt *Runtime) dropPairsOf(p *proc) {
	for v := range p.nbr {
		if q := rt.byPid[v]; q.nbr != nil {
			delete(q.nbr, p.pid)
		}
	}
	p.nbr = nil
}

// reseedDegrees rebuilds every live leaver's neighbor multiset from scratch
// — the counter analogue of sim.World.InvalidatePG. Called at Start (the
// initial state: pre-seeded stores and injected in-flight messages) and at
// the end of every Mutate, whose callback may have rewritten protocol
// reference state without running any action. Caller holds the world
// paused (or the workers do not exist yet).
func (rt *Runtime) reseedDegrees() {
	if !rt.trackDeg {
		return
	}
	for _, p := range rt.leavers {
		if p.life.Load() != 2 {
			if p.nbr == nil {
				p.nbr = make(map[uint32]int32, 8)
			} else {
				clear(p.nbr)
			}
		}
	}
	for _, p := range rt.byPid {
		if p.life.Load() == 2 {
			continue
		}
		for _, r := range p.proto.Refs() {
			rt.pairDelta(p, r, 1)
		}
		for i := range p.mb.queue[p.mb.head:] {
			m := &p.mb.queue[p.mb.head+i]
			rt.addMsgPairs(p, m)
		}
	}
}

// epochFast settles the pending exit batch and refreshes the leavers'
// cached oracle answers from the incremental degree counters — no world
// clone, no oracle evaluation on a snapshot. Each commit erases its pairs
// before the next request is judged, so the batch sees post-commit degrees
// exactly as the frozen path's MarkGone fold-in provides. JudgeDegree is a
// pure function of an int, so the oracleMu serialization of stateful
// Evaluate calls is not needed here; the full pause already excludes every
// mutator. Caller holds the world paused.
func (rt *Runtime) epochFast(jd degreeOracle) {
	for _, p := range rt.takePendingExits() {
		ok := jd.JudgeDegree(len(p.nbr))
		if rt.oracleHook != nil {
			rt.oracleHook(p.id, ok)
		}
		if ok {
			p.exitPending.Store(false)
			rt.commitExit(p)
		} else {
			p.oracleOK.Store(false) // the cache was stale; stop re-requesting
			rt.exitDenied.Add(1)
			p.exitPending.Store(false)
			rt.reschedule(p)
		}
	}
	for _, p := range rt.leavers {
		if p.life.Load() == 2 {
			continue
		}
		if ok := jd.JudgeDegree(len(p.nbr)); ok != p.oracleOK.Load() {
			p.oracleOK.Store(ok)
		}
	}
}
