package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fdp/internal/sim"
)

// Per-iteration work budgets of a shard worker. One worker iteration holds
// the shard's action lock once for up to deliverBudget deliveries plus up to
// timeoutBudget timeout actions, so the freeze latency of pauseAll is bounded
// by one iteration's work. Deliveries outnumber timeouts 8:1 so queues drain
// faster than timeout storms refill them (every staying process sends to all
// its neighbors on every timeout).
const (
	deliverBudget = 1024
	timeoutBudget = 128
	// popBatch bounds how many messages one mailbox yields per queue-lock
	// hold; FIFO fairness across the shard's mailboxes, amortized locking
	// within one.
	popBatch = 32
	// timeoutTick paces timeout rounds: a shard fires at most one round per
	// tick. The model only requires weak fairness — every awake process
	// times out infinitely often — not timeouts at CPU speed; unpaced, the
	// timeout storm of every staying process re-sending to all neighbors
	// dominates the event stream and starves delivery work of CPU.
	timeoutTick = 200 * time.Microsecond
)

// mailbox is an unbounded FIFO message queue. It has no lock of its own: all
// access is synchronized externally by the owning shard's single queue lock
// (mbMu) — one lock per shard instead of one per process — or by a full
// world pause, which excludes every worker and therefore every mbMu user.
// A closed mailbox stops accepting and delivering messages but RETAINS its
// queue: undelivered messages are in-flight state (implicit PG edges) the
// terminal freeze must still count.
type mailbox struct {
	queue  []sim.Message
	head   int // queue[head:] is live; popped slots are reused by compaction
	closed bool
}

func (m *mailbox) len() int { return len(m.queue) - m.head }

// popInto moves up to max messages into buf and returns it with the queue
// depth after the pop. Closed mailboxes deliver nothing.
func (m *mailbox) popInto(buf []sim.Message, max int) ([]sim.Message, int) {
	if m.closed {
		return buf, 0
	}
	k := m.len()
	if k > max {
		k = max
	}
	buf = append(buf, m.queue[m.head:m.head+k]...)
	m.head += k
	if m.head == len(m.queue) {
		m.queue, m.head = m.queue[:0], 0
	} else if m.head > 64 && m.head >= len(m.queue)/2 {
		n := copy(m.queue, m.queue[m.head:])
		m.queue, m.head = m.queue[:n], 0
	}
	return buf, m.len()
}

// unpop puts popped-but-undelivered messages back at the front of the queue,
// preserving order. Used when an action suspends or exits its process in the
// middle of a delivery batch: the remaining messages were never delivered
// and must stay in-flight (a later close retains them for the terminal
// freeze).
func (m *mailbox) unpop(rest []sim.Message) {
	if len(rest) == 0 {
		return
	}
	merged := make([]sim.Message, 0, len(rest)+m.len())
	merged = append(merged, rest...)
	merged = append(merged, m.queue[m.head:]...)
	m.queue, m.head = merged, 0
}

// shard is one worker's slice of the runtime: a disjoint set of processes, a
// run queue of processes with deliverable messages, and the two locks of the
// §12 discipline — actMu (the pause point every action runs under) and mbMu
// (the leaf lock guarding every owned mailbox plus the run queue).
type shard struct {
	idx int
	rt  *Runtime

	// actMu is the shard's action lock: the worker holds the read side for
	// one bounded iteration of deliveries and timeouts; pauseAll takes the
	// write side of every shard (in ascending index order) to quiesce the
	// world for snapshots, exit validation and Mutate.
	actMu sync.RWMutex

	// mbMu is the shard's single queue lock: it guards the mailboxes of all
	// owned processes, the run queue, and the procs' inRun flags. Strictly a
	// leaf: no other lock is ever acquired under it. Senders on other shards
	// take it briefly per push; the worker amortizes it over message batches.
	mbMu   sync.Mutex //fdp:lockleaf
	runq   []uint32
	rqHead int

	// notify is a capacity-1 wakeup: raised when a push makes a process
	// newly runnable (not per message — batch notification), when a denied
	// exiter is rescheduled, and after a rebalance.
	notify chan struct{}

	// pids are the owned processes. Written only under a full pause
	// (AddProcess pre-Start, rebalance); read by the worker.
	pids   []uint32
	cursor int       // round-robin position of the timeout scan
	nextTO time.Time // earliest moment of the next timeout round (worker-private)

	// awake counts owned processes in the awake state; 0 lets the worker
	// block indefinitely instead of polling (FSP hibernation).
	awake atomic.Int32

	// latMu guards the shard's exit-latency buffer. Commits append here
	// (owning worker or coordinator under pause — never both at once, the
	// lock is for the concurrent reader); ExitLatencies merges the shard
	// buffers at read time. Strictly a leaf.
	latMu   sync.Mutex //fdp:lockleaf
	exitLat []time.Duration
}

func (sh *shard) wake() {
	select {
	case sh.notify <- struct{}{}:
	default:
	}
}

// push enqueues msg into p's mailbox under p's shard's queue lock, making p
// runnable if it wasn't. Reports the queue depth after the append and
// whether the push was accepted (a closed mailbox refuses). Callers run
// under some shard's action read lock, under a full pause, or before Start.
func (rt *Runtime) push(p *proc, msg sim.Message) (int, bool) {
	if rt.trackDeg && len(msg.Refs) > 0 {
		// Count the implicit edges before the message becomes poppable, so
		// a racing delivery can never remove a pair before it was added; a
		// refused push undoes the count below.
		rt.addMsgPairs(p, &msg)
	}
	sh := rt.shards[p.shard.Load()]
	sh.mbMu.Lock()
	if p.mb.closed {
		sh.mbMu.Unlock()
		if rt.trackDeg && len(msg.Refs) > 0 {
			rt.removeMsgPairs(p, &msg)
		}
		return 0, false
	}
	p.mb.queue = append(p.mb.queue, msg)
	depth := p.mb.len()
	newlyRunnable := false
	if !p.inRun && !p.exitPending.Load() {
		p.inRun = true
		sh.runq = append(sh.runq, p.pid)
		newlyRunnable = true
	}
	sh.mbMu.Unlock()
	if newlyRunnable {
		sh.wake()
	}
	return depth, true
}

// reschedule makes a denied exiter runnable again if deliveries queued up
// while it was suspended. Called by the coordinator under a full pause.
func (rt *Runtime) reschedule(p *proc) {
	sh := rt.shards[p.shard.Load()]
	sh.mbMu.Lock()
	runnable := !p.mb.closed && p.mb.len() > 0 && !p.inRun
	if runnable {
		p.inRun = true
		sh.runq = append(sh.runq, p.pid)
	}
	sh.mbMu.Unlock()
	if runnable {
		sh.wake()
	}
}

// nextBatch pops the next runnable process and up to max of its messages
// under one queue-lock hold. It returns nil when the run queue is empty.
// Stale entries (gone, suspended, or drained processes) are skipped. A
// process whose queue is still non-empty after the pop is re-appended, so
// heavy receivers round-robin with everyone else.
func (sh *shard) nextBatch(buf []sim.Message, max int) (*proc, []sim.Message, int) {
	sh.mbMu.Lock()
	defer sh.mbMu.Unlock()
	// A hot run queue (processes re-appended faster than the head drains)
	// never fully empties, so compact the consumed prefix periodically.
	if sh.rqHead > 256 && sh.rqHead >= len(sh.runq)/2 {
		n := copy(sh.runq, sh.runq[sh.rqHead:])
		sh.runq, sh.rqHead = sh.runq[:n], 0
	}
	for sh.rqHead < len(sh.runq) {
		pid := sh.runq[sh.rqHead]
		sh.rqHead++
		if sh.rqHead == len(sh.runq) {
			sh.runq, sh.rqHead = sh.runq[:0], 0
		}
		p := sh.rt.byPid[pid]
		if p.exitPending.Load() || p.life.Load() == 2 || p.mb.closed || p.mb.len() == 0 {
			p.inRun = false
			continue
		}
		batch, depth := p.mb.popInto(buf, max)
		if depth > 0 {
			sh.runq = append(sh.runq, pid)
		} else {
			p.inRun = false
		}
		return p, batch, depth
	}
	return nil, buf, 0
}

// deliverRound drains up to deliverBudget messages from the shard's run
// queue, executing the delivery action of each under the already-held action
// read lock. Returns the number of deliveries executed.
func (sh *shard) deliverRound(scratch *[]sim.Message) int {
	delivered := 0
	for delivered < deliverBudget {
		p, batch, depth := sh.nextBatch((*scratch)[:0], min(popBatch, deliverBudget-delivered))
		if p == nil {
			break
		}
		*scratch = batch
		for i := range batch {
			delivered++
			// Depth mirrors the sequential engine's EvDeliver depth: queue
			// length right after this message's removal.
			if p.deliverAction(sh, batch[i], depth+len(batch)-1-i) {
				// The action exited or suspended the process: the rest of the
				// batch was never delivered and goes back in flight.
				sh.mbMu.Lock()
				p.mb.unpop(batch[i+1:])
				sh.mbMu.Unlock()
				break
			}
		}
	}
	return delivered
}

// timeoutRound executes up to timeoutBudget timeout actions, round-robin
// over the shard's awake processes (one full scan at most). Suspended
// (exit-pending) processes are skipped: they must not act between their exit
// request and the coordinator's verdict.
func (sh *shard) timeoutRound() int {
	n := len(sh.pids)
	ran := 0
	for scanned := 0; scanned < n && ran < timeoutBudget; scanned++ {
		if sh.cursor >= n {
			sh.cursor = 0
		}
		p := sh.rt.byPid[sh.pids[sh.cursor]]
		sh.cursor++
		if p.life.Load() != 0 || p.exitPending.Load() {
			continue
		}
		p.timeoutAction(sh)
		ran++
	}
	return ran
}

// worker is the shard's goroutine body: run bounded delivery rounds flat
// out while messages flow, fire a timeout round at most once per
// timeoutTick, and block entirely once every owned process is asleep or
// gone (FSP hibernation). A push from any shard raises notify and cuts the
// idle sleep short. After every productive round the worker yields the
// processor: on a box with few cores a hot shard otherwise monopolizes its
// P for the ~10ms async-preemption slice and the coordinator (whose epoch
// refreshes the oracle caches and commits exits) runs an order of magnitude
// below its intended cadence — exit latency is then scheduler-quantum
// bound, not protocol bound.
func (sh *shard) worker() {
	rt := sh.rt
	defer rt.wg.Done()
	idleTimer := time.NewTimer(time.Hour)
	if !idleTimer.Stop() {
		<-idleTimer.C
	}
	defer idleTimer.Stop()
	var scratch []sim.Message

	for !rt.stop.Load() {
		sh.actMu.RLock()
		delivered := sh.deliverRound(&scratch)
		timeouts := 0
		if now := time.Now(); !now.Before(sh.nextTO) {
			timeouts = sh.timeoutRound()
			sh.nextTO = now.Add(timeoutTick)
		}
		sh.actMu.RUnlock()

		if delivered > 0 || timeouts > 0 {
			runtime.Gosched()
			continue
		}
		if sh.awake.Load() == 0 {
			// Nothing to do and nothing will time out: hibernate until a
			// message arrives or the runtime stops.
			select {
			case <-sh.notify:
			case <-rt.stopCh:
			}
			continue
		}
		// Idle but awake processes remain: sleep until the next timeout
		// round is due (clamped so a stale tick never spins and a long one
		// never delays a wakeup past idleMax).
		d := time.Until(sh.nextTO)
		if d < idleMin {
			d = idleMin
		} else if d > idleMax {
			d = idleMax
		}
		idleTimer.Reset(d)
		select {
		case <-sh.notify:
			if !idleTimer.Stop() {
				<-idleTimer.C
			}
		case <-rt.stopCh:
			if !idleTimer.Stop() {
				<-idleTimer.C
			}
		case <-idleTimer.C:
		}
	}
}

// --- world pause ---------------------------------------------------------

// pauseAll quiesces the world: freezeMu serializes pausers (the coordinator,
// Freeze, Mutate, validateExit), then every shard's action lock is taken in
// ascending index order. With all write sides held no action executes, no
// send is in flight, and every mailbox, ring and protocol state is safe to
// read or mutate without further locking. Paired with resumeAll.
func (rt *Runtime) pauseAll() {
	rt.freezeMu.Lock() //fdplint:ignore lockorder pauseAll/resumeAll are a handoff pair; resumeAll releases what pauseAll acquires
	for _, sh := range rt.shards {
		sh.actMu.Lock() //fdplint:ignore lockorder pauseAll acquires every shard's action lock; resumeAll releases them in reverse
	}
}

// resumeAll releases the pause taken by pauseAll, in reverse order.
func (rt *Runtime) resumeAll() {
	for i := len(rt.shards) - 1; i >= 0; i-- {
		rt.shards[i].actMu.Unlock() //fdplint:ignore lockorder releases the locks pauseAll acquired
	}
	rt.freezeMu.Unlock() //fdplint:ignore lockorder releases the pause freezeMu taken in pauseAll
}

// --- rebalance -----------------------------------------------------------

// Rebalance redistributes the live processes evenly across the shards under
// a full pause. Long churn runs decay the initial pid-modulo balance as
// processes exit; the coordinator triggers this automatically when the
// spread exceeds rebalanceRatio, and tests drive it directly.
func (rt *Runtime) Rebalance() {
	rt.pauseAll()
	defer rt.resumeAll()
	rt.rebalanceUnderPause()
}

// rebalanceRatio is the max/min live-process spread beyond which the
// coordinator rebalances at an epoch boundary.
const rebalanceRatio = 2

// rebalanceUnderPause deals the live processes round-robin across shards and
// rebuilds every run queue from mailbox state. Caller holds the world
// paused, so mailboxes, inRun flags and shard assignments are plain data.
func (rt *Runtime) rebalanceUnderPause() {
	for _, sh := range rt.shards {
		sh.pids = sh.pids[:0]
		sh.runq, sh.rqHead = sh.runq[:0], 0
		sh.cursor = 0
		sh.awake.Store(0)
	}
	i := 0
	for _, r := range rt.order {
		p := rt.procs[r]
		if p.life.Load() == 2 {
			p.inRun = false
			continue
		}
		sh := rt.shards[i%len(rt.shards)]
		i++
		p.shard.Store(uint32(sh.idx))
		sh.pids = append(sh.pids, p.pid)
		if p.life.Load() == 0 {
			sh.awake.Add(1)
		}
		p.inRun = !p.mb.closed && p.mb.len() > 0 && !p.exitPending.Load()
		if p.inRun {
			sh.runq = append(sh.runq, p.pid)
		}
	}
	for _, sh := range rt.shards {
		sh.wake()
	}
}

// maybeRebalance rebalances when the live-process spread across shards
// exceeds rebalanceRatio. Caller holds the world paused.
func (rt *Runtime) maybeRebalance() {
	if len(rt.shards) < 2 {
		return
	}
	minLive, maxLive := -1, 0
	for _, sh := range rt.shards {
		live := 0
		for _, pid := range sh.pids {
			if rt.byPid[pid].life.Load() != 2 {
				live++
			}
		}
		if minLive < 0 || live < minLive {
			minLive = live
		}
		if live > maxLive {
			maxLive = live
		}
	}
	if maxLive > rebalanceRatio*minLive+rebalanceRatio {
		rt.rebalanceUnderPause()
	}
}
