package parallel

import (
	"testing"
	"time"

	"fdp/internal/core"
	"fdp/internal/oracle"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// TestIncrementalDegreeMatchesFrozenWorld pauses a running churn system at
// random moments and checks, for every live leaver, that the incremental
// neighbor multiset (degree.go) reports exactly the frozen world's
// RelevantDegree — the quantity the epoch fast path judges exits on. A
// mid-run Mutate injects junk in-flight references to exercise the reseed
// path as well.
func TestIncrementalDegreeMatchesFrozenWorld(t *testing.T) {
	for _, shards := range []int{1, 3} {
		rt, nodes, leaving := buildShardedRuntime(512, 0.5, 41, core.VariantFDP, oracle.Single{}, shards)
		rt.Start()
		if !rt.trackDeg {
			t.Fatal("Single must enable degree tracking")
		}
		deadline := time.Now().Add(20 * time.Second)
		checks, struck := 0, false
		for time.Now().Before(deadline) {
			if rt.Gone() == uint64(leaving.Len()) && checks > 0 {
				break
			}
			if !struck && rt.Gone() > 3 {
				// Junk in-flight references mid-run: Mutate must reseed the
				// counters to match.
				rt.Mutate(func(v *MutableView) {
					live := v.Live()
					for i := 0; i < 5 && i < len(live); i++ {
						v.Enqueue(live[i], sim.NewMessage("junk",
							sim.RefInfo{Ref: nodes[(i*7)%len(nodes)], Mode: sim.Staying}))
					}
				})
				struck = true
			}
			checks++
			rt.pauseAll()
			w := rt.freezeUnderPause()
			for _, p := range rt.leavers {
				if p.life.Load() == 2 {
					continue
				}
				want, rel := w.RelevantDegree(p.id)
				if !rel {
					rt.resumeAll()
					t.Fatalf("shards=%d: live leaver %v not relevant in frozen world", shards, p.id)
				}
				if got := len(p.nbr); got != want {
					rt.resumeAll()
					t.Fatalf("shards=%d: leaver %v incremental degree %d, frozen world says %d (checks=%d)",
						shards, p.id, got, want, checks)
				}
			}
			rt.resumeAll()
			time.Sleep(500 * time.Microsecond)
		}
		rt.Stop()
		if rt.Gone() != uint64(leaving.Len()) {
			t.Fatalf("shards=%d: only %d/%d exits", shards, rt.Gone(), leaving.Len())
		}
		if checks < 3 {
			t.Fatalf("shards=%d: too few mid-run checks (%d)", shards, checks)
		}
		if !struck {
			t.Fatalf("shards=%d: strike never fired", shards)
		}
	}
}

// TestEpochFastPathJudgesExits asserts the fast path actually runs (no
// frozen world needed) and still refuses unsafe exits: with Always(false)
// no process may ever leave, with Single everyone must.
func TestEpochFastPathJudgesExits(t *testing.T) {
	rt, _, _ := buildRuntime(12, 0.5, 7, core.VariantFDP, oracle.Always(false))
	rt.Start()
	if !rt.trackDeg {
		t.Fatal("Always must enable degree tracking")
	}
	time.Sleep(50 * time.Millisecond)
	rt.Stop()
	if rt.Gone() != 0 {
		t.Fatalf("Always(false) under the fast path let %d exits through", rt.Gone())
	}
	if rt.Epochs() == 0 {
		t.Fatal("coordinator never ran an epoch")
	}
}

// TestDegreeSeedCountsInitialInFlight checks the Start-time reseed counts
// pre-Start injected messages as implicit edges: a leaver whose only tie to
// the system is a reference travelling in a message must report degree 1.
func TestDegreeSeedCountsInitialInFlight(t *testing.T) {
	space := ref.NewSpace()
	nodes := space.NewN(3)
	rt := NewRuntime(oracle.Single{})
	rt.AddProcess(nodes[0], sim.Staying, core.New(core.VariantFDP))
	rt.AddProcess(nodes[1], sim.Staying, core.New(core.VariantFDP))
	rt.AddProcess(nodes[2], sim.Leaving, core.New(core.VariantFDP))
	// nodes[0] is being told about the leaver: the ref rides in flight.
	rt.Enqueue(nodes[0], sim.NewMessage("intro", sim.RefInfo{Ref: nodes[2], Mode: sim.Leaving}))
	rt.Start()
	defer rt.Stop()
	rt.pauseAll()
	leaver := rt.procs[nodes[2]]
	got := len(leaver.nbr)
	w := rt.freezeUnderPause()
	want, _ := w.RelevantDegree(nodes[2])
	rt.resumeAll()
	if got != want || want == 0 {
		t.Fatalf("seeded degree %d, frozen world %d (want equal and nonzero)", got, want)
	}
}
