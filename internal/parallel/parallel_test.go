package parallel

import (
	"math/rand"
	"testing"
	"time"

	"fdp/internal/core"
	"fdp/internal/graph"
	"fdp/internal/oracle"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// buildRuntime mirrors churn.Build for the concurrent runtime: a random
// connected topology of core.Proc processes with the given leavers.
func buildRuntime(n int, leaveFrac float64, seed int64, variant core.Variant, o Oracle) (*Runtime, []ref.Ref, ref.Set) {
	return buildShardedRuntime(n, leaveFrac, seed, variant, o, 0)
}

// buildShardedRuntime is buildRuntime with an explicit worker-shard count
// (shards <= 0 keeps the GOMAXPROCS default). On single-core machines the
// default collapses to one shard, so multi-shard code paths — cross-shard
// sends, per-shard pause ordering, rebalancing — need the explicit count.
func buildShardedRuntime(n int, leaveFrac float64, seed int64, variant core.Variant, o Oracle, shards int) (*Runtime, []ref.Ref, ref.Set) {
	rng := rand.New(rand.NewSource(seed))
	space := ref.NewSpace()
	nodes := space.NewN(n)
	g := graph.RandomConnected(nodes, n/2, rng)
	k := int(leaveFrac * float64(n))
	if k > n-1 {
		k = n - 1
	}
	leaving := ref.NewSet()
	for _, i := range rng.Perm(n)[:k] {
		leaving.Add(nodes[i])
	}
	rt := NewRuntime(o)
	if shards > 0 {
		rt.SetShards(shards)
	}
	procs := make(map[ref.Ref]*core.Proc, n)
	for _, r := range nodes {
		p := core.New(variant)
		procs[r] = p
		mode := sim.Staying
		if leaving.Has(r) {
			mode = sim.Leaving
		}
		rt.AddProcess(r, mode, p)
	}
	for _, e := range g.Edges() {
		mode := sim.Staying
		if leaving.Has(e.To) {
			mode = sim.Leaving
		}
		procs[e.From].SetNeighbor(e.To, mode)
	}
	return rt, nodes, leaving
}

func TestMailboxBatchPop(t *testing.T) {
	var mb mailbox
	if batch, _ := mb.popInto(nil, 4); len(batch) != 0 {
		t.Fatal("empty mailbox must not pop")
	}
	mb.queue = append(mb.queue, sim.NewMessage("a"), sim.NewMessage("b"), sim.NewMessage("c"))
	batch, depth := mb.popInto(nil, 2)
	if len(batch) != 2 || batch[0].Label != "a" || batch[1].Label != "b" {
		t.Fatalf("FIFO batch broken: %v", batch)
	}
	if depth != 1 || mb.len() != 1 {
		t.Fatalf("depth after batch pop = %d (len %d), want 1", depth, mb.len())
	}
	// An action that suspends its process mid-batch puts the remainder back
	// in front, preserving order.
	mb.unpop(batch[1:])
	if mb.len() != 2 || mb.queue[mb.head].Label != "b" {
		t.Fatalf("unpop broke order: %v", mb.queue[mb.head:])
	}
	mb.closed = true
	if batch, _ := mb.popInto(nil, 4); len(batch) != 0 {
		t.Fatal("closed mailbox must not deliver")
	}
}

// Regression: close used to nil the queue, so any message still queued at
// close time vanished from terminal snapshots — in-flight references
// (implicit PG edges) silently dropped. A push after close is refused AND
// the queue already in place survives.
func TestMailboxPushAfterCloseRetainsQueue(t *testing.T) {
	space := ref.NewSpace()
	a, b := space.New(), space.New()
	rt := NewRuntime(nil)
	rt.AddProcess(a, sim.Staying, &fixedRefsProto{})
	rt.AddProcess(b, sim.Staying, &fixedRefsProto{})
	rt.Enqueue(b, sim.NewMessage("one", sim.RefInfo{Ref: a, Mode: sim.Staying}))
	rt.Enqueue(b, sim.NewMessage("two"))
	pb := rt.procs[b]
	pb.mb.closed = true
	if _, ok := rt.push(pb, sim.NewMessage("late")); ok {
		t.Fatal("closed mailbox must reject pushes")
	}
	if got := pb.mb.len(); got != 2 {
		t.Fatalf("closed mailbox retained %d messages, want 2", got)
	}
	// The in-flight reference carried by the retained message must still be
	// an implicit PG edge of the terminal freeze.
	if w := rt.Freeze(); w.ChannelLen(b) != 2 || !w.PG().HasEdge(b, a) {
		t.Fatal("terminal freeze lost in-flight state of a closed mailbox")
	}
}

// The concurrent runtime must reach the same legitimate states as the
// sequential simulator: all leavers gone, staying processes connected.
func TestParallelFDPConvergence(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rt, _, leaving := buildRuntime(16, 0.5, seed, core.VariantFDP, oracle.Single{})
		ok := rt.RunUntil(func(w *sim.World) bool {
			return w.Legitimate(sim.FDP)
		}, 2*time.Millisecond, 30*time.Second)
		if !ok {
			t.Fatalf("seed %d: no convergence (gone=%d of %d)", seed, rt.Gone(), leaving.Len())
		}
		if rt.Gone() != uint64(leaving.Len()) {
			t.Fatalf("seed %d: gone=%d want %d", seed, rt.Gone(), leaving.Len())
		}
		// Safety on the final snapshot.
		final := rt.freezeLocked()
		if !final.RelevantComponentsIntact() {
			t.Fatalf("seed %d: staying processes disconnected", seed)
		}
	}
}

func TestParallelFSPConvergence(t *testing.T) {
	rt, nodes, leaving := buildRuntime(12, 0.5, 7, core.VariantFSP, nil)
	ok := rt.RunUntil(func(w *sim.World) bool {
		return w.Legitimate(sim.FSP)
	}, 2*time.Millisecond, 30*time.Second)
	if !ok {
		t.Fatal("FSP did not converge concurrently")
	}
	if rt.Gone() != 0 {
		t.Fatal("FSP must not produce gone processes")
	}
	final := rt.freezeLocked()
	hib := final.Hibernating()
	for _, r := range nodes {
		if leaving.Has(r) && !hib.Has(r) {
			t.Fatalf("leaver %v not hibernating in final snapshot", r)
		}
	}
}

// Exits must be validated: with the unsafe Always(true) oracle the
// validated-exit path still lets processes exit (no deadlock), while with
// Always(false) nobody ever exits.
func TestParallelExitValidation(t *testing.T) {
	rt, _, _ := buildRuntime(8, 0.4, 3, core.VariantFDP, oracle.Always(false))
	ok := rt.RunUntil(func(w *sim.World) bool {
		return w.Legitimate(sim.FDP)
	}, 2*time.Millisecond, 300*time.Millisecond)
	if ok || rt.Gone() != 0 {
		t.Fatal("Always(false) oracle must prevent all exits")
	}
}

func TestParallelSnapshotConsistency(t *testing.T) {
	rt, nodes, _ := buildRuntime(10, 0.3, 11, core.VariantFDP, oracle.Single{})
	rt.Start()
	defer rt.Stop()
	// Snapshots taken while the system runs must be internally consistent:
	// every edge endpoint resolves, and the world evaluates predicates
	// without panicking.
	stop := time.After(500 * time.Millisecond)
	for running := true; running; {
		select {
		case <-stop:
			running = false
		default:
		}
		w := rt.freezeLocked()
		pg := w.PG()
		for _, e := range pg.Edges() {
			if !pg.HasNode(e.From) || !pg.HasNode(e.To) {
				t.Fatal("dangling edge in snapshot")
			}
		}
		_ = w.RelevantComponentsIntact()
		_ = core.Phi(w)
	}
	_ = nodes
}

func TestParallelEventThroughputCounters(t *testing.T) {
	rt, _, _ := buildRuntime(8, 0.25, 5, core.VariantFDP, oracle.Single{})
	rt.Start()
	time.Sleep(50 * time.Millisecond)
	rt.Stop()
	if rt.Events() == 0 {
		t.Fatal("no events executed")
	}
	if rt.Sent() == 0 {
		t.Fatal("no messages sent")
	}
}

// fixedRefsProto stores an externally mutable reference slice and does
// nothing on its own. Mutation happens only via Runtime.Mutate (under the
// snapshot write lock), so tests stay race-free.
type fixedRefsProto struct{ refs []ref.Ref }

func (s *fixedRefsProto) Timeout(sim.Context)              {}
func (s *fixedRefsProto) Deliver(sim.Context, sim.Message) {}
func (s *fixedRefsProto) Refs() []ref.Ref                  { return s.refs }

// Regression for the freeze re-seal bug the differential harness flushed
// out: freezeUnderLock used to call SealInitialState on the snapshot itself,
// adopting any disconnection that had already happened as the reference
// partition — so RelevantComponentsIntact/StayingComponentsPreserved on
// frozen worlds were vacuously true and unsafe-oracle runs "converged
// legitimately". The frozen world must judge against the Start partition.
func TestFreezeJudgesAgainstStartComponents(t *testing.T) {
	space := ref.NewSpace()
	a, b := space.New(), space.New()
	pa := &fixedRefsProto{refs: []ref.Ref{b}}
	pb := &fixedRefsProto{refs: []ref.Ref{a}}
	rt := NewRuntime(nil)
	rt.AddProcess(a, sim.Staying, pa)
	rt.AddProcess(b, sim.Staying, pb)
	rt.Start()
	defer rt.Stop()

	// Corrupt the state without resealing: both stayers drop every
	// reference, splitting the single initial component in two.
	rt.Mutate(func(*MutableView) {
		pa.refs, pb.refs = nil, nil
	})

	w := rt.Freeze()
	if w.RelevantComponentsIntact() {
		t.Fatal("frozen world must judge Lemma 2 against the Start components, not its own re-seal")
	}
	if w.StayingComponentsPreserved() {
		t.Fatal("frozen world must see the staying-component split")
	}
}

// Mutate + Reseal is the fault-injection contract: after an explicit reseal
// the post-fault state becomes the new reference partition, so the same
// disconnection is no longer a violation.
func TestMutateResealAdoptsNewPartition(t *testing.T) {
	space := ref.NewSpace()
	a, b := space.New(), space.New()
	pa := &fixedRefsProto{refs: []ref.Ref{b}}
	pb := &fixedRefsProto{refs: []ref.Ref{a}}
	rt := NewRuntime(nil)
	rt.AddProcess(a, sim.Staying, pa)
	rt.AddProcess(b, sim.Staying, pb)
	rt.Start()
	defer rt.Stop()

	rt.Mutate(func(v *MutableView) {
		pa.refs, pb.refs = nil, nil
		v.Reseal()
	})

	if got := len(rt.InitialComponents()); got != 2 {
		t.Fatalf("reseal captured %d components, want 2", got)
	}
	if w := rt.Freeze(); !w.RelevantComponentsIntact() {
		t.Fatal("after reseal the split state is the new reference partition")
	}
}

// Regression for Stop() discarding in-flight state: messages still queued
// when the runtime stops must appear in post-Stop snapshots — they carry
// references (implicit PG edges) the terminal safety verdict depends on.
func TestStopRetainsInFlightMessages(t *testing.T) {
	space := ref.NewSpace()
	a, b := space.New(), space.New()
	rt := NewRuntime(nil)
	rt.AddProcess(a, sim.Staying, &fixedRefsProto{refs: []ref.Ref{b}})
	rt.AddProcess(b, sim.Staying, &fixedRefsProto{refs: []ref.Ref{a}})
	for i := 0; i < 3; i++ {
		rt.Enqueue(b, sim.NewMessage("pending"))
	}
	// Never started: all three messages are still in flight at Stop time.
	rt.Stop()
	w := rt.Freeze()
	if got := w.ChannelLen(b); got != 3 {
		t.Fatalf("post-Stop snapshot sees %d queued messages, want 3", got)
	}
	if got := w.Stats().TotalInQueue; got != 3 {
		t.Fatalf("post-Stop stats count %d in-flight messages, want 3", got)
	}
}

// undeliverableRecorder records transport-failure callbacks. It is only
// exercised single-threadedly in tests, so plain fields are fine.
type undeliverableRecorder struct {
	fixedRefsProto
	failed []ref.Ref
}

func (u *undeliverableRecorder) Undeliverable(_ sim.Context, to ref.Ref, _ sim.Message) {
	u.failed = append(u.failed, to)
}

// Sends to gone or unknown targets must count as sent AND dropped (simulator
// parity) and must invoke the sender's UndeliverableHandler within the same
// action, exactly like sim.procCtx.Send.
func TestSendToGoneCountsDropAndNotifies(t *testing.T) {
	space := ref.NewSpace()
	a, b := space.New(), space.New()
	rec := &undeliverableRecorder{}
	rt := NewRuntime(nil)
	rt.AddProcess(a, sim.Staying, rec)
	rt.AddProcess(b, sim.Staying, &fixedRefsProto{})
	rt.procs[b].life.Store(2) // b is gone

	ctx := &pctx{p: rt.procs[a]}
	ctx.Send(b, sim.NewMessage("x"))
	ctx.Send(space.New(), sim.NewMessage("y")) // unknown target
	ctx.Send(a, sim.NewMessage("z"))           // deliverable (self)

	if got := rt.Sent(); got != 3 {
		t.Fatalf("Sent=%d, want 3 (drops still count as sent)", got)
	}
	if got := rt.Dropped(); got != 2 {
		t.Fatalf("Dropped=%d, want 2", got)
	}
	if len(rec.failed) != 2 || rec.failed[0] != b {
		t.Fatalf("UndeliverableHandler saw %v, want [b, unknown]", rec.failed)
	}
	if got := rt.procs[a].mb.len(); got != 1 {
		t.Fatalf("self-send not delivered: mailbox len %d", got)
	}
}

// The validateExit contention stress from the issue: leaving processes with
// deliberately stale oracleOK=true caches race to exit while the SINGLE
// oracle actually forbids it (several stayers hold each leaver's reference).
// The revalidation under the snapshot write lock must deny every attempt: a
// stale cache can REQUEST an exit but never COMMIT one.
func TestValidateExitStaleCacheNeverCommits(t *testing.T) {
	space := ref.NewSpace()
	leavers := space.NewN(4)
	stayers := space.NewN(3)
	rt := NewRuntime(oracle.Single{})
	for _, l := range leavers {
		// Empty neighborhood: a core leaver with no refs asks the oracle on
		// every timeout and requests exit whenever the cache says yes.
		rt.AddProcess(l, sim.Leaving, core.New(core.VariantFDP))
	}
	for _, s := range stayers {
		// Each stayer pins every leaver: SINGLE's relevant degree is 3 >= 2,
		// so the honest oracle answer is always false.
		rt.AddProcess(s, sim.Staying, &fixedRefsProto{refs: append([]ref.Ref(nil), leavers...)})
	}
	rt.Start()

	// Adversarially re-prime the stale caches faster than the coordinator
	// can correct them, for a sustained burst of doomed exit attempts.
	stop := time.After(100 * time.Millisecond)
	reprime := time.NewTicker(20 * time.Microsecond)
	for running := true; running; {
		select {
		case <-stop:
			running = false
		case <-reprime.C:
			for _, l := range leavers {
				rt.procs[l].oracleOK.Store(true)
			}
		}
	}
	reprime.Stop()
	rt.Stop()

	if got := rt.Gone(); got != 0 {
		t.Fatalf("%d unsafe exits committed despite failing oracle", got)
	}
	if rt.ExitDenied() == 0 {
		t.Fatal("no exit attempt was ever denied — the stale caches never reached validateExit")
	}
	// Deterministic direct check on the terminal state, independent of the
	// race timing above.
	p := rt.procs[leavers[0]]
	p.oracleOK.Store(true)
	if rt.validateExit(p) {
		t.Fatal("validateExit committed an exit the oracle forbids")
	}
}

func TestParallelDuplicatePanics(t *testing.T) {
	rt := NewRuntime(nil)
	r := ref.NewSpace().New()
	rt.AddProcess(r, sim.Staying, core.New(core.VariantFDP))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddProcess must panic")
		}
	}()
	rt.AddProcess(r, sim.Staying, core.New(core.VariantFDP))
}
