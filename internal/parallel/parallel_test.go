package parallel

import (
	"math/rand"
	"testing"
	"time"

	"fdp/internal/core"
	"fdp/internal/graph"
	"fdp/internal/oracle"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// buildRuntime mirrors churn.Build for the concurrent runtime: a random
// connected topology of core.Proc processes with the given leavers.
func buildRuntime(n int, leaveFrac float64, seed int64, variant core.Variant, o Oracle) (*Runtime, []ref.Ref, ref.Set) {
	rng := rand.New(rand.NewSource(seed))
	space := ref.NewSpace()
	nodes := space.NewN(n)
	g := graph.RandomConnected(nodes, n/2, rng)
	k := int(leaveFrac * float64(n))
	if k > n-1 {
		k = n - 1
	}
	leaving := ref.NewSet()
	for _, i := range rng.Perm(n)[:k] {
		leaving.Add(nodes[i])
	}
	rt := NewRuntime(o)
	procs := make(map[ref.Ref]*core.Proc, n)
	for _, r := range nodes {
		p := core.New(variant)
		procs[r] = p
		mode := sim.Staying
		if leaving.Has(r) {
			mode = sim.Leaving
		}
		rt.AddProcess(r, mode, p)
	}
	for _, e := range g.Edges() {
		mode := sim.Staying
		if leaving.Has(e.To) {
			mode = sim.Leaving
		}
		procs[e.From].SetNeighbor(e.To, mode)
	}
	return rt, nodes, leaving
}

func TestMailboxBasics(t *testing.T) {
	mb := newMailbox()
	if _, ok := mb.tryPop(); ok {
		t.Fatal("empty mailbox must not pop")
	}
	mb.push(sim.NewMessage("a"))
	mb.push(sim.NewMessage("b"))
	if mb.len() != 2 {
		t.Fatal("len wrong")
	}
	m, ok := mb.tryPop()
	if !ok || m.Label != "a" {
		t.Fatal("FIFO broken")
	}
	snap := mb.snapshot()
	if len(snap) != 1 || snap[0].Label != "b" {
		t.Fatal("snapshot wrong")
	}
	mb.close()
	if mb.push(sim.NewMessage("c")) {
		t.Fatal("closed mailbox must reject pushes")
	}
	if _, ok := mb.waitPop(); ok {
		t.Fatal("closed+drained mailbox must return false")
	}
}

func TestMailboxWaitPopWakes(t *testing.T) {
	mb := newMailbox()
	done := make(chan sim.Message, 1)
	go func() {
		m, _ := mb.waitPop()
		done <- m
	}()
	time.Sleep(5 * time.Millisecond)
	mb.push(sim.NewMessage("wake"))
	select {
	case m := <-done:
		if m.Label != "wake" {
			t.Fatal("wrong message")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waitPop never woke")
	}
}

// The concurrent runtime must reach the same legitimate states as the
// sequential simulator: all leavers gone, staying processes connected.
func TestParallelFDPConvergence(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rt, _, leaving := buildRuntime(16, 0.5, seed, core.VariantFDP, oracle.Single{})
		ok := rt.RunUntil(func(w *sim.World) bool {
			return w.Legitimate(sim.FDP)
		}, 2*time.Millisecond, 30*time.Second)
		if !ok {
			t.Fatalf("seed %d: no convergence (gone=%d of %d)", seed, rt.Gone(), leaving.Len())
		}
		if rt.Gone() != leaving.Len() {
			t.Fatalf("seed %d: gone=%d want %d", seed, rt.Gone(), leaving.Len())
		}
		// Safety on the final snapshot.
		final := rt.freezeLocked()
		if !final.RelevantComponentsIntact() {
			t.Fatalf("seed %d: staying processes disconnected", seed)
		}
	}
}

func TestParallelFSPConvergence(t *testing.T) {
	rt, nodes, leaving := buildRuntime(12, 0.5, 7, core.VariantFSP, nil)
	ok := rt.RunUntil(func(w *sim.World) bool {
		return w.Legitimate(sim.FSP)
	}, 2*time.Millisecond, 30*time.Second)
	if !ok {
		t.Fatal("FSP did not converge concurrently")
	}
	if rt.Gone() != 0 {
		t.Fatal("FSP must not produce gone processes")
	}
	final := rt.freezeLocked()
	hib := final.Hibernating()
	for _, r := range nodes {
		if leaving.Has(r) && !hib.Has(r) {
			t.Fatalf("leaver %v not hibernating in final snapshot", r)
		}
	}
}

// Exits must be validated: with the unsafe Always(true) oracle the
// validated-exit path still lets processes exit (no deadlock), while with
// Always(false) nobody ever exits.
func TestParallelExitValidation(t *testing.T) {
	rt, _, _ := buildRuntime(8, 0.4, 3, core.VariantFDP, oracle.Always(false))
	ok := rt.RunUntil(func(w *sim.World) bool {
		return w.Legitimate(sim.FDP)
	}, 2*time.Millisecond, 300*time.Millisecond)
	if ok || rt.Gone() != 0 {
		t.Fatal("Always(false) oracle must prevent all exits")
	}
}

func TestParallelSnapshotConsistency(t *testing.T) {
	rt, nodes, _ := buildRuntime(10, 0.3, 11, core.VariantFDP, oracle.Single{})
	rt.Start()
	defer rt.Stop()
	// Snapshots taken while the system runs must be internally consistent:
	// every edge endpoint resolves, and the world evaluates predicates
	// without panicking.
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		w := rt.freezeLocked()
		pg := w.PG()
		for _, e := range pg.Edges() {
			if !pg.HasNode(e.From) || !pg.HasNode(e.To) {
				t.Fatal("dangling edge in snapshot")
			}
		}
		_ = w.RelevantComponentsIntact()
		_ = core.Phi(w)
	}
	_ = nodes
}

func TestParallelEventThroughputCounters(t *testing.T) {
	rt, _, _ := buildRuntime(8, 0.25, 5, core.VariantFDP, oracle.Single{})
	rt.Start()
	time.Sleep(50 * time.Millisecond)
	rt.Stop()
	if rt.Events() == 0 {
		t.Fatal("no events executed")
	}
	if rt.Sent() == 0 {
		t.Fatal("no messages sent")
	}
}

func TestParallelDuplicatePanics(t *testing.T) {
	rt := NewRuntime(nil)
	r := ref.NewSpace().New()
	rt.AddProcess(r, sim.Staying, core.New(core.VariantFDP))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddProcess must panic")
		}
	}()
	rt.AddProcess(r, sim.Staying, core.New(core.VariantFDP))
}
