package parallel

import (
	"sync/atomic"
	"testing"
	"time"

	"fdp/internal/ref"
	"fdp/internal/sim"
)

// idleRuntime builds a started single-process runtime whose protocol does
// nothing, so WaitUntil timing is not perturbed by real work.
func idleRuntime(t *testing.T) *Runtime {
	t.Helper()
	space := ref.NewSpace()
	rt := NewRuntime(nil)
	rt.AddProcess(space.New(), sim.Staying, &fixedRefsProto{})
	rt.Start()
	t.Cleanup(func() { rt.Stop() })
	return rt
}

// A predicate that becomes true after the last poll tick but before the
// deadline must still be observed: WaitUntil re-checks once when the timer
// fires. With a poll interval far beyond the timeout, the deadline re-check
// is the ONLY chance to see the flip.
func TestWaitUntilTrueExactlyAtDeadline(t *testing.T) {
	rt := idleRuntime(t)
	var flag atomic.Bool
	timer := time.AfterFunc(30*time.Millisecond, func() { flag.Store(true) })
	defer timer.Stop()

	start := time.Now()
	ok := rt.WaitUntil(func(*sim.World) bool { return flag.Load() },
		time.Hour, 150*time.Millisecond)
	if !ok {
		t.Fatal("WaitUntil missed a predicate that was true at the deadline")
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("returned after %v — only the deadline re-check could have seen the flip", elapsed)
	}
}

func TestWaitUntilFalseAtDeadline(t *testing.T) {
	rt := idleRuntime(t)
	if rt.WaitUntil(func(*sim.World) bool { return false }, time.Millisecond, 30*time.Millisecond) {
		t.Fatal("WaitUntil returned true for an always-false predicate")
	}
}

// poll <= 0 must fall back to a small default, not panic in NewTicker or
// spin: the predicate flips long before the generous timeout, and a working
// poll loop observes it promptly.
func TestWaitUntilPollDefaulting(t *testing.T) {
	for _, poll := range []time.Duration{0, -time.Second} {
		rt := idleRuntime(t)
		var flag atomic.Bool
		timer := time.AfterFunc(20*time.Millisecond, func() { flag.Store(true) })
		start := time.Now()
		ok := rt.WaitUntil(func(*sim.World) bool { return flag.Load() }, poll, 10*time.Second)
		timer.Stop()
		if !ok {
			t.Fatalf("poll=%v: WaitUntil timed out", poll)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("poll=%v: took %v — default poll interval not applied", poll, elapsed)
		}
	}
}

// An immediately-true predicate returns before any timer is consulted, even
// with a zero timeout, and sees a real frozen snapshot.
func TestWaitUntilImmediateTrue(t *testing.T) {
	rt := idleRuntime(t)
	var sawProc bool
	ok := rt.WaitUntil(func(w *sim.World) bool {
		sawProc = len(w.Refs()) == 1
		return true
	}, time.Hour, 0)
	if !ok {
		t.Fatal("WaitUntil false for an immediately-true predicate")
	}
	if !sawProc {
		t.Fatal("predicate did not receive a frozen snapshot of the runtime")
	}
}
