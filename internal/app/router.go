// Package app implements an application layer on top of the maintained
// overlay: greedy key-based routing — the lookup primitive that motivates
// list/ring/skip-list overlays (Chord-style DHTs) in the first place. It
// exists to measure what safe departures buy the application: lookup
// availability before, during and after churn (experiment E12), and what
// richer overlays buy it: hop counts on the skip list vs the plain list
// (experiment E15).
//
// Routed wraps any overlay protocol (staying in the class 𝒫 — routing only
// introduces and delegates references) and adds three message labels:
//
//	oroute(origin; target,hops) — forwarded greedily towards the target key;
//	odone(origin)               — success notification back to the origin;
//	ofail(origin)               — failure notification (greedy dead end).
//
//fdp:decomposable
package app

import (
	"fdp/internal/overlay"
	"fdp/internal/ref"
)

// Message labels of the routing layer.
const (
	LabelRoute = "oroute"
	LabelDone  = "odone"
	LabelFail  = "ofail"
)

// RoutePayload is the reference-free part of an oroute message.
type RoutePayload struct {
	// TargetKey is the key being looked up.
	TargetKey int
	// Hops counts forwarding steps so far.
	Hops int
	// TTL bounds the route length (guards against routing loops while the
	// overlay is still stabilizing).
	TTL int
}

// DonePayload reports a completed lookup back to the origin.
type DonePayload struct {
	TargetKey int
	Hops      int
}

// Stats counts lookup outcomes at the origin.
type Stats struct {
	Launched  int
	Delivered int
	Failed    int
	TotalHops int
}

// Routed adds greedy key routing on top of any overlay protocol.
type Routed struct {
	inner overlay.Protocol
	keys  overlay.Keys

	stats Stats
}

var _ overlay.Protocol = (*Routed)(nil)
var _ overlay.TargetChecker = (*Routed)(nil)

// NewRouted wraps the given overlay protocol.
func NewRouted(inner overlay.Protocol, keys overlay.Keys) *Routed {
	return &Routed{inner: inner, keys: keys}
}

// NewRoutedList returns greedy routing over the sorted-list overlay.
func NewRoutedList(keys overlay.Keys) *Routed {
	return NewRouted(overlay.NewLinearize(keys), keys)
}

// NewRoutedSkip returns greedy routing over the two-level skip list, whose
// level-1 shortcuts roughly halve hop counts.
func NewRoutedSkip(keys overlay.Keys) *Routed {
	return NewRouted(overlay.NewSkipList(keys), keys)
}

// Inner exposes the wrapped overlay.
func (r *Routed) Inner() overlay.Protocol { return r.inner }

// AddNeighbor seeds the wrapped overlay — scenario construction only.
func (r *Routed) AddNeighbor(v ref.Ref) {
	r.inner.(interface{ AddNeighbor(ref.Ref) }).AddNeighbor(v)
}

// Name implements overlay.Protocol.
func (r *Routed) Name() string { return "routed-" + r.inner.Name() }

// Stats returns this process's lookup counters (meaningful at origins).
func (r *Routed) Stats() Stats { return r.stats }

// Timeout implements overlay.Protocol.
func (r *Routed) Timeout(ctx overlay.Context) { r.inner.Timeout(ctx) }

// Refs implements overlay.Protocol.
func (r *Routed) Refs() []ref.Ref { return r.inner.Refs() }

// Reintegrate implements overlay.Protocol.
func (r *Routed) Reintegrate(ctx overlay.Context, v ref.Ref) { r.inner.Reintegrate(ctx, v) }

// Exclude implements overlay.Protocol.
func (r *Routed) Exclude(v ref.Ref) { r.inner.Exclude(v) }

// Lin exposes the linearization state when the wrapped overlay has one, so
// overlay.AsLinearize works through the wrapper.
func (r *Routed) Lin() *overlay.Linearize { return overlay.AsLinearize(r.inner) }

// InTarget implements overlay.TargetChecker by unwrapping to the inner
// overlay's own target predicate.
func (r *Routed) InTarget(members []ref.Ref, lookup func(ref.Ref) overlay.Protocol) bool {
	tc, ok := r.inner.(overlay.TargetChecker)
	if !ok {
		return false
	}
	return tc.InTarget(members, func(m ref.Ref) overlay.Protocol {
		if rt, ok := lookup(m).(*Routed); ok {
			return rt.inner
		}
		return lookup(m)
	})
}

// Launch starts a lookup for targetKey from this process. ttl bounds the
// route (<=0 selects 64).
func (r *Routed) Launch(ctx overlay.Context, targetKey, ttl int) {
	if ttl <= 0 {
		ttl = 64
	}
	r.stats.Launched++
	r.route(ctx, ctx.Self(), RoutePayload{TargetKey: targetKey, TTL: ttl})
}

// Deliver implements overlay.Protocol.
func (r *Routed) Deliver(ctx overlay.Context, label string, refs []ref.Ref, payload any) {
	switch label {
	case LabelRoute:
		if len(refs) != 1 {
			return
		}
		p, ok := payload.(RoutePayload)
		if !ok {
			return
		}
		r.route(ctx, refs[0], p)
	case LabelDone:
		p, ok := payload.(DonePayload)
		if !ok {
			return
		}
		r.stats.Delivered++
		r.stats.TotalHops += p.Hops
	case LabelFail:
		r.stats.Failed++
	default:
		r.inner.Deliver(ctx, label, refs, payload)
	}
}

// route forwards a lookup greedily: to ourselves if the key matches, else
// to the stored reference strictly closest to the target key; a dead end or
// exhausted TTL fails back to the origin.
//fdp:primitive delegation,introduction
func (r *Routed) route(ctx overlay.Context, origin ref.Ref, p RoutePayload) {
	self := ctx.Self()
	myKey := r.keys[self]
	if p.TargetKey == myKey {
		if origin == self {
			r.stats.Delivered++
			r.stats.TotalHops += p.Hops
			return
		}
		ctx.Send(origin, LabelDone, []ref.Ref{self}, DonePayload{TargetKey: p.TargetKey, Hops: p.Hops})
		return
	}
	if p.Hops >= p.TTL {
		r.fail(ctx, origin, self)
		return
	}
	best := ref.Nil
	bestDist := abs(myKey - p.TargetKey)
	for _, v := range r.inner.Refs() {
		if d := abs(r.keys[v] - p.TargetKey); d < bestDist {
			best, bestDist = v, d
		}
	}
	if best.IsNil() {
		// No stored reference is closer than we are: greedy dead end. On a
		// converged overlay this means the key is absent.
		r.fail(ctx, origin, self)
		return
	}
	p.Hops++
	ctx.Send(best, LabelRoute, []ref.Ref{origin}, p)
}

//fdp:primitive introduction
func (r *Routed) fail(ctx overlay.Context, origin, self ref.Ref) {
	if origin == self {
		r.stats.Failed++
		return
	}
	ctx.Send(origin, LabelFail, []ref.Ref{self}, nil)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
