package app

import (
	"math/rand"
	"testing"

	"fdp/internal/graph"
	"fdp/internal/overlay"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// buildRoutedWorld installs RoutedList processes on a topology.
func buildRoutedWorld(g *graph.Graph, nodes []ref.Ref) (*sim.World, overlay.Keys, map[ref.Ref]*Routed) {
	keys := make(overlay.Keys, len(nodes))
	for i, r := range nodes {
		keys[r] = i
	}
	w := sim.NewWorld(nil)
	procs := make(map[ref.Ref]*Routed, len(nodes))
	for _, r := range nodes {
		p := NewRoutedList(keys)
		procs[r] = p
		w.AddProcess(r, sim.Staying, &overlay.Standalone{P: p})
	}
	for _, e := range g.Edges() {
		procs[e.From].AddNeighbor(e.To)
	}
	w.SealInitialState()
	return w, keys, procs
}

// drive runs the world for a bounded number of steps.
func drive(w *sim.World, sched sim.Scheduler, steps int) {
	for i := 0; i < steps; i++ {
		a, ok := sched.Next(w)
		if !ok {
			return
		}
		w.Execute(a)
	}
}

// launch enqueues a lookup at origin.
func launch(w *sim.World, origin ref.Ref, targetKey int) {
	w.Enqueue(origin, sim.Message{
		Label:   LabelRoute,
		Refs:    []sim.RefInfo{{Ref: origin, Mode: sim.Staying}},
		Payload: RoutePayload{TargetKey: targetKey, TTL: 64},
	})
}

func totals(procs map[ref.Ref]*Routed) Stats {
	var t Stats
	for _, p := range procs {
		s := p.Stats()
		t.Delivered += s.Delivered
		t.Failed += s.Failed
		t.TotalHops += s.TotalHops
	}
	return t
}

func TestRoutingOnConvergedList(t *testing.T) {
	nodes := ref.NewSpace().NewN(10)
	w, _, procs := buildRoutedWorld(graph.Line(nodes), nodes)
	sched := sim.NewRandomScheduler(1, 128)
	// Launch one lookup from every node to every key.
	launched := 0
	for _, from := range nodes {
		for k := range nodes {
			launch(w, from, k)
			launched++
		}
	}
	drive(w, sched, 200000)
	got := totals(procs)
	if got.Delivered != launched {
		t.Fatalf("delivered %d of %d lookups (failed %d)", got.Delivered, launched, got.Failed)
	}
	// On the sorted list, hops equal key distance; the mean over all pairs
	// of 10 keys is 3.3, so the total is bounded accordingly.
	if got.TotalHops == 0 {
		t.Fatal("hop accounting missing")
	}
}

func TestRoutingAbsentKeyFails(t *testing.T) {
	nodes := ref.NewSpace().NewN(6)
	w, _, procs := buildRoutedWorld(graph.Line(nodes), nodes)
	launch(w, nodes[2], 999) // no such key
	launch(w, nodes[3], -7)  // no such key
	drive(w, sim.NewRandomScheduler(2, 128), 50000)
	got := totals(procs)
	if got.Failed != 2 || got.Delivered != 0 {
		t.Fatalf("absent keys must fail: %+v", got)
	}
}

func TestRoutingSelfLookup(t *testing.T) {
	nodes := ref.NewSpace().NewN(4)
	w, _, procs := buildRoutedWorld(graph.Line(nodes), nodes)
	launch(w, nodes[1], 1) // own key
	drive(w, sim.NewRandomScheduler(3, 128), 10000)
	if procs[nodes[1]].Stats().Delivered != 1 {
		t.Fatal("self lookup must deliver locally")
	}
}

func TestRoutingTTLGuardsUnconvergedOverlay(t *testing.T) {
	// On a random (not yet linearized) overlay, greedy routing may wander;
	// the TTL must bound it and report failure rather than looping.
	rng := rand.New(rand.NewSource(4))
	nodes := ref.NewSpace().NewN(12)
	w, _, procs := buildRoutedWorld(graph.RandomConnected(nodes, 6, rng), nodes)
	for _, from := range nodes {
		launch(w, from, 11)
	}
	drive(w, sim.NewRandomScheduler(4, 128), 300000)
	got := totals(procs)
	if got.Delivered+got.Failed != len(nodes) {
		t.Fatalf("lookups lost: delivered=%d failed=%d of %d",
			got.Delivered, got.Failed, len(nodes))
	}
}

func TestRoutingWhileLinearizing(t *testing.T) {
	// Lookups launched while the overlay still stabilizes must all resolve
	// (delivered or failed) — none may be stranded, since every route hop
	// targets a live stored reference.
	rng := rand.New(rand.NewSource(5))
	nodes := ref.NewSpace().NewN(10)
	w, _, procs := buildRoutedWorld(graph.RandomConnected(nodes, 5, rng), nodes)
	sched := sim.NewRandomScheduler(5, 128)
	launched := 0
	for i := 0; i < 40; i++ {
		drive(w, sched, 200)
		launch(w, nodes[i%len(nodes)], rng.Intn(len(nodes)))
		launched++
	}
	drive(w, sched, 400000)
	got := totals(procs)
	if got.Delivered+got.Failed != launched {
		t.Fatalf("stranded lookups: delivered=%d failed=%d of %d",
			got.Delivered, got.Failed, launched)
	}
	if got.Delivered == 0 {
		t.Fatal("no lookup delivered at all")
	}
}

func TestLaunchAPI(t *testing.T) {
	nodes := ref.NewSpace().NewN(3)
	keys := overlay.Keys{nodes[0]: 0, nodes[1]: 1, nodes[2]: 2}
	p := NewRoutedList(keys)
	p.AddNeighbor(nodes[1])
	ctx := &recordCtx{self: nodes[0]}
	p.Launch(ctx, 2, 0)
	if p.Stats().Launched != 1 {
		t.Fatal("launch not counted")
	}
	if len(ctx.sent) != 1 || ctx.sent[0].label != LabelRoute {
		t.Fatalf("launch must emit a route message: %+v", ctx.sent)
	}
}

type recordCtx struct {
	self ref.Ref
	sent []struct {
		to    ref.Ref
		label string
	}
}

func (c *recordCtx) Self() ref.Ref { return c.self }
func (c *recordCtx) Send(to ref.Ref, label string, refs []ref.Ref, payload any) {
	c.sent = append(c.sent, struct {
		to    ref.Ref
		label string
	}{to, label})
}

func TestRoutedReintegrateAndInTarget(t *testing.T) {
	nodes := ref.NewSpace().NewN(3)
	keys := overlay.Keys{nodes[0]: 0, nodes[1]: 1, nodes[2]: 2}
	a := NewRoutedList(keys)
	b := NewRoutedList(keys)
	c := NewRoutedList(keys)
	ctx := &recordCtx{self: nodes[0]}
	a.Reintegrate(ctx, nodes[1])
	if len(a.Refs()) != 1 {
		t.Fatal("Reintegrate delegation broken")
	}
	// Build the sorted-list target by hand and check InTarget through the
	// wrapper (lookup returns *Routed instances).
	b.AddNeighbor(nodes[0])
	b.AddNeighbor(nodes[2])
	c.AddNeighbor(nodes[1])
	lookup := func(r ref.Ref) overlay.Protocol {
		switch r {
		case nodes[0]:
			return a
		case nodes[1]:
			return b
		default:
			return c
		}
	}
	if !a.InTarget(nodes, lookup) {
		t.Fatal("hand-built sorted list not recognized")
	}
	// Break it: remove one edge.
	c.Exclude(nodes[1])
	if a.InTarget(nodes, lookup) {
		t.Fatal("broken list reported in target")
	}
}

func TestRoutedDeliverMalformed(t *testing.T) {
	nodes := ref.NewSpace().NewN(2)
	keys := overlay.Keys{nodes[0]: 0, nodes[1]: 1}
	r := NewRoutedList(keys)
	ctx := &recordCtx{self: nodes[0]}
	// Malformed payloads and ref counts must be ignored without panics.
	r.Deliver(ctx, LabelRoute, []ref.Ref{nodes[1]}, "not a payload")
	r.Deliver(ctx, LabelRoute, nil, RoutePayload{TargetKey: 1})
	r.Deliver(ctx, LabelDone, nil, "junk")
	r.Deliver(ctx, LabelFail, nil, nil)
	st := r.Stats()
	if st.Delivered != 0 || st.Failed != 1 {
		t.Fatalf("malformed handling wrong: %+v", st)
	}
	if len(ctx.sent) != 0 {
		t.Fatal("malformed messages must not trigger sends")
	}
}
