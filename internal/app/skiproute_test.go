package app

import (
	"testing"

	"fdp/internal/graph"
	"fdp/internal/overlay"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

func buildSkipWorld(nodes []ref.Ref) (*sim.World, map[ref.Ref]*Routed) {
	keys := make(overlay.Keys, len(nodes))
	for i, r := range nodes {
		keys[r] = i
	}
	w := sim.NewWorld(nil)
	procs := make(map[ref.Ref]*Routed, len(nodes))
	for _, r := range nodes {
		p := NewRoutedSkip(keys)
		procs[r] = p
		w.AddProcess(r, sim.Staying, &overlay.Standalone{P: p})
	}
	g := graph.Line(nodes)
	for _, e := range g.Edges() {
		procs[e.From].AddNeighbor(e.To)
	}
	w.SealInitialState()
	return w, procs
}

// runUntilTarget drives until the skip list converged.
func runUntilTarget(t *testing.T, w *sim.World, nodes []ref.Ref, maxSteps int) {
	t.Helper()
	sched := sim.NewRandomScheduler(9, 256)
	for w.Steps() < maxSteps {
		if w.Steps()%len(nodes) == 0 && overlay.CheckTarget(w, nodes) {
			return
		}
		a, ok := sched.Next(w)
		if !ok {
			break
		}
		w.Execute(a)
	}
	if !overlay.CheckTarget(w, nodes) {
		t.Fatal("skip list did not converge")
	}
}

func TestSkipRoutingHalvesHops(t *testing.T) {
	const n = 16
	// Sorted list baseline.
	nodesL := ref.NewSpace().NewN(n)
	wl, _, procsL := buildRoutedWorld(graph.Line(nodesL), nodesL)
	// Skip list.
	nodesS := ref.NewSpace().NewN(n)
	ws, procsS := buildSkipWorld(nodesS)
	runUntilTarget(t, ws, nodesS, 600000)

	// End-to-end lookup (key 0 -> key n-1), the worst case.
	launch(wl, nodesL[0], n-1)
	launch(ws, nodesS[0], n-1)
	drive(wl, sim.NewRandomScheduler(1, 128), 100000)
	drive(ws, sim.NewRandomScheduler(1, 128), 100000)

	hopsList := totals(procsL).TotalHops
	hopsSkip := totals(procsS).TotalHops
	if totals(procsL).Delivered != 1 || totals(procsS).Delivered != 1 {
		t.Fatalf("lookups not delivered: list=%+v skip=%+v", totals(procsL), totals(procsS))
	}
	if hopsList != n-1 {
		t.Fatalf("list hops = %d, want %d", hopsList, n-1)
	}
	// The level-1 shortcuts cover even keys: the route takes ~n/2 hops.
	if hopsSkip > n/2+2 {
		t.Fatalf("skip hops = %d, want about %d", hopsSkip, n/2)
	}
	t.Logf("hops: list=%d skip=%d", hopsList, hopsSkip)
}

func TestRoutedWrapperDelegation(t *testing.T) {
	nodes := ref.NewSpace().NewN(4)
	keys := overlay.Keys{nodes[0]: 0, nodes[1]: 1, nodes[2]: 2, nodes[3]: 3}
	r := NewRoutedSkip(keys)
	if r.Name() != "routed-skiplist" {
		t.Fatalf("Name = %q", r.Name())
	}
	r.AddNeighbor(nodes[1])
	if len(r.Refs()) != 1 {
		t.Fatal("AddNeighbor/Refs delegation broken")
	}
	r.Exclude(nodes[1])
	if len(r.Refs()) != 0 {
		t.Fatal("Exclude delegation broken")
	}
	if r.Inner().Name() != "skiplist" {
		t.Fatal("Inner accessor broken")
	}
	if overlay.AsLinearize(r) == nil {
		t.Fatal("AsLinearize must see through the Routed wrapper")
	}
}
