package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fdp/internal/churn"
	"fdp/internal/core"
	"fdp/internal/graph"
	"fdp/internal/oracle"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// Multi-component initial states: the legitimacy condition (iii) is defined
// per weakly connected component of the initial PG. Build two disjoint rings
// in one world and verify each component's staying processes stay connected
// within their own component.
func TestFDPMultipleComponents(t *testing.T) {
	space := ref.NewSpace()
	ringA := space.NewN(6)
	ringB := space.NewN(6)
	w := sim.NewWorld(oracle.Single{})
	procs := map[ref.Ref]*core.Proc{}
	leaving := ref.NewSet(ringA[1], ringA[3], ringB[0], ringB[5])
	install := func(nodes []ref.Ref) {
		g := graph.Ring(nodes)
		for _, r := range nodes {
			p := core.New(core.VariantFDP)
			procs[r] = p
			mode := sim.Staying
			if leaving.Has(r) {
				mode = sim.Leaving
			}
			w.AddProcess(r, mode, p)
		}
		for _, e := range g.Edges() {
			mode := sim.Staying
			if leaving.Has(e.To) {
				mode = sim.Leaving
			}
			procs[e.From].SetNeighbor(e.To, mode)
		}
	}
	install(ringA)
	install(ringB)
	w.SealInitialState()
	if len(w.InitialComponents()) != 2 {
		t.Fatalf("components = %d, want 2", len(w.InitialComponents()))
	}
	res := sim.Run(w, sim.NewRandomScheduler(3, 256), sim.RunOptions{
		Variant: sim.FDP, MaxSteps: 400000, CheckSafety: true,
	})
	if res.SafetyViolation != nil {
		t.Fatal(res.SafetyViolation)
	}
	if !res.Converged {
		t.Fatal("multi-component world did not converge")
	}
	if w.GoneCount() != 4 {
		t.Fatalf("gone = %d, want 4", w.GoneCount())
	}
	// The two components must still be separate: no cross-edges appeared.
	pg := w.PG()
	for _, a := range ringA {
		for _, b := range ringB {
			if w.LifeOf(a) != sim.Gone && w.LifeOf(b) != sim.Gone && pg.SameWeakComponent(a, b) {
				t.Fatal("components merged — the protocol invented cross-component references")
			}
		}
	}
}

// Property: from any seeded random scenario, the run converges, safety
// holds, Φ ends at zero, and anchors are consistent.
func TestQuickConvergenceProperty(t *testing.T) {
	f := func(seedRaw uint16, nRaw, fracRaw uint8) bool {
		n := 4 + int(nRaw)%12
		topo := churn.Topology(int(seedRaw) % 8)
		if topo == churn.TopoHypercube {
			// Hypercubes exist only at power-of-two sizes.
			n = 1 << (2 + int(nRaw)%2)
		}
		frac := float64(fracRaw%90) / 100
		cfg := churn.Config{
			N: n, Topology: topo, LeaveFraction: frac,
			Pattern: churn.LeavePattern(int(seedRaw) % 3),
			Corrupt: churn.Corruption{
				FlipBeliefs:   float64(seedRaw%100) / 150,
				RandomAnchors: float64(seedRaw%70) / 100,
				JunkMessages:  int(seedRaw % 12),
			},
			Oracle: oracle.Single{}, Seed: int64(seedRaw),
		}
		s := churn.Build(cfg)
		sched := sim.NewRandomScheduler(int64(seedRaw), 256)
		res := sim.Run(s.World, sched, sim.RunOptions{
			Variant: sim.FDP, MaxSteps: 600000, CheckSafety: true,
		})
		if res.SafetyViolation != nil || !res.Converged {
			return false
		}
		// Closure: legitimacy persists, and residual invalid information
		// (legitimacy does not require Φ = 0) eventually vanishes.
		budget := 2000 * n
		for i := 0; i < budget; i++ {
			if core.Phi(s.World) == 0 && core.AnchorsConsistent(s.World) {
				break
			}
			a, ok := sched.Next(s.World)
			if !ok {
				break
			}
			s.World.Execute(a)
		}
		return s.World.Legitimate(sim.FDP) &&
			core.Phi(s.World) == 0 && core.AnchorsConsistent(s.World)
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: a leaving process never stores ordinary neighbors after
// processing any message sequence (its N only refills transiently between
// funnel timeouts; after a timeout it is empty again).
func TestQuickLeavingFunnelsEverything(t *testing.T) {
	f := func(seedRaw uint16) bool {
		rng := rand.New(rand.NewSource(int64(seedRaw)))
		space := ref.NewSpace()
		u := space.New()
		others := space.NewN(5)
		p := core.New(core.VariantFDP)
		// Arbitrary initial neighborhood with arbitrary beliefs.
		for _, v := range others {
			if rng.Intn(2) == 0 {
				belief := sim.Staying
				if rng.Intn(2) == 0 {
					belief = sim.Leaving
				}
				p.SetNeighbor(v, belief)
			}
		}
		ctx := &countingCtx{self: u}
		p.Timeout(ctx)
		return len(p.Neighbors()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

type countingCtx struct {
	self ref.Ref
	sent int
}

func (c *countingCtx) Self() ref.Ref             { return c.self }
func (c *countingCtx) Mode() sim.Mode            { return sim.Leaving }
func (c *countingCtx) Send(ref.Ref, sim.Message) { c.sent++ }
func (c *countingCtx) Exit()                     {}
func (c *countingCtx) Sleep()                    {}
func (c *countingCtx) OracleSays() bool          { return false }

// Property: handler actions never store a reference to the process itself.
func TestQuickNoSelfReferences(t *testing.T) {
	f := func(seedRaw uint16) bool {
		rng := rand.New(rand.NewSource(int64(seedRaw)))
		space := ref.NewSpace()
		u := space.New()
		others := space.NewN(4)
		p := core.New(core.VariantFDP)
		mode := sim.Staying
		if rng.Intn(2) == 0 {
			mode = sim.Leaving
		}
		ctx := &modeCtx{self: u, mode: mode}
		labels := []string{core.LabelPresent, core.LabelForward}
		for step := 0; step < 30; step++ {
			var v ref.Ref
			if rng.Intn(4) == 0 {
				v = u // deliberately feed self-references
			} else {
				v = others[rng.Intn(len(others))]
			}
			claim := sim.Staying
			if rng.Intn(2) == 0 {
				claim = sim.Leaving
			}
			p.Deliver(ctx, sim.NewMessage(labels[rng.Intn(2)], sim.RefInfo{Ref: v, Mode: claim}))
		}
		for _, r := range p.Refs() {
			if r == u {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

type modeCtx struct {
	self ref.Ref
	mode sim.Mode
}

func (c *modeCtx) Self() ref.Ref             { return c.self }
func (c *modeCtx) Mode() sim.Mode            { return c.mode }
func (c *modeCtx) Send(ref.Ref, sim.Message) {}
func (c *modeCtx) Exit()                     {}
func (c *modeCtx) Sleep()                    {}
func (c *modeCtx) OracleSays() bool          { return false }
