// Package core implements the paper's primary contribution: the
// self-stabilizing protocol for the Finite Departure Problem of Section 3
// (Algorithms 1–3: timeout, present and forward) and its Finite Sleep
// Problem variant (Section 4, last paragraph).
//
// Every branch of the three actions decomposes into one of the four
// primitives of Section 2; the code comments carry the paper's suit
// annotations (♦ Introduction, ♥ Delegation, ♠ Fusion, ♣ Reversal), which
// is what makes Lemma 2 (safety) an instance of Lemma 1.
//
// Protocol state per process u:
//
//   - u.N       — the neighborhood set: all ordinary stored references,
//     each with u's knowledge of that process's mode (u.mode(v));
//   - u.anchor  — a special reference, not in u.N, used only by leaving
//     processes: a process u believes to be staying, to which u delegates
//     every reference it wants to get rid of.
//
// Since the protocol is self-stabilizing, any of this information may
// initially be arbitrary (wrong beliefs, stale anchors, junk in flight).
//
//fdp:decomposable
package core

import (
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// Message labels of the protocol. A present(v) message introduces the
// reference v to the receiver (Introduction ♦); a forward(v) message
// delegates v to the receiver (Delegation ♥). Both carry the sender's mode
// knowledge of v, and information a process sends about itself is always
// its true mode.
const (
	LabelPresent = "present"
	LabelForward = "forward"
)

// Variant selects the departure flavour.
type Variant uint8

const (
	// VariantFDP uses exit guarded by the oracle (Section 3).
	VariantFDP Variant = iota
	// VariantFSP uses sleep and no oracle (Section 4, last paragraph).
	VariantFSP
)

// String names the variant.
func (v Variant) String() string {
	if v == VariantFDP {
		return "FDP"
	}
	return "FSP"
}

// Proc is one process running the departure protocol.
type Proc struct {
	variant Variant

	// n is the neighborhood set u.N with u.mode(v) per member.
	n map[ref.Ref]sim.Mode
	// anchor is the special anchor variable (⊥ = ref.Nil) and u's belief
	// about its mode.
	anchor     ref.Ref
	anchorMode sim.Mode

	// verifyGap and sinceVerify pace the anchor re-verification of Algorithm
	// 1 lines 9–10 with exponential backoff: the verification fires on the
	// first eligible timeout after adopting an anchor and then with doubling
	// gaps (capped). Pacing is indistinguishable from a slower timer in the
	// asynchronous model, so the paper's correctness argument is unaffected —
	// but it is what keeps oracles whose guard inspects in-flight state
	// (NIDEC's no-incoming-edges condition) satisfiable under deterministic
	// fair schedulers: an unpaced leaver re-introduces itself every timeout,
	// and a phase-locked schedule can keep that self-introduction in flight
	// at every single oracle query, livelocking the departure (found by the
	// churn fuzzer under both the rounds and fifo schedulers). Both counters
	// reset whenever the anchor changes, so corruption of the pacing state
	// only delays — never prevents — the cycle-dissolving verification.
	verifyGap   int
	sinceVerify int
}

// maxVerifyGap caps the re-verification backoff so a corrupted or
// long-stable anchor is still re-verified within a bounded number of
// timeouts.
const maxVerifyGap = 4096

var (
	_ sim.Protocol             = (*Proc)(nil)
	_ sim.UndeliverableHandler = (*Proc)(nil)
)

// New returns a fresh process state with empty neighborhood and no anchor.
func New(variant Variant) *Proc {
	return &Proc{variant: variant, n: make(map[ref.Ref]sim.Mode)}
}

// Variant returns the process's departure flavour.
func (p *Proc) Variant() Variant { return p.variant }

// UsesSleep reports whether the process uses the FSP variant.
func (p *Proc) UsesSleep() bool { return p.variant == VariantFSP }

// SetNeighbor stores v in u.N with the given mode belief — scenario
// construction only (possibly deliberately invalid, for self-stabilization
// experiments).
//fdp:primitive init
func (p *Proc) SetNeighbor(v ref.Ref, belief sim.Mode) {
	if v.IsNil() {
		return
	}
	p.n[v] = belief
}

// RemoveNeighbor removes v from u.N — scenario construction only.
//fdp:primitive init
func (p *Proc) RemoveNeighbor(v ref.Ref) { delete(p.n, v) }

// SetAnchor sets the anchor variable — scenario construction only.
//fdp:primitive init
func (p *Proc) SetAnchor(v ref.Ref, belief sim.Mode) {
	p.anchor = v
	p.anchorMode = belief
	p.resetVerifyPacing()
}

// resetVerifyPacing re-arms the anchor re-verification backoff; called
// whenever the anchor variable changes, so a fresh (or freshly corrupted)
// anchor is verified on the next eligible timeout.
func (p *Proc) resetVerifyPacing() {
	p.verifyGap = 0
	p.sinceVerify = 0
}

// RepointAnchor replaces the anchor with v (and the given belief) and
// returns the displaced reference together with its stored belief. Callers
// that must preserve the reference multiset — the fault injector, whose
// contract forbids burning the last copy of a reference — re-inject the
// returned reference as an in-flight message. The returned Ref is ref.Nil
// when no anchor was stored.
//fdp:primitive init
func (p *Proc) RepointAnchor(v ref.Ref, belief sim.Mode) sim.RefInfo {
	old := sim.RefInfo{Ref: p.anchor, Mode: p.anchorMode}
	p.anchor = v
	p.anchorMode = belief
	p.resetVerifyPacing()
	return old
}

// Anchor returns the anchor reference (⊥ = ref.Nil).
func (p *Proc) Anchor() ref.Ref { return p.anchor }

// AnchorBelief returns u.mode(anchor); meaningful only when Anchor() != ⊥.
func (p *Proc) AnchorBelief() sim.Mode { return p.anchorMode }

// Neighbors returns a copy of u.N with beliefs.
func (p *Proc) Neighbors() map[ref.Ref]sim.Mode {
	out := make(map[ref.Ref]sim.Mode, len(p.n))
	for r, m := range p.n {
		out[r] = m
	}
	return out
}

// NeighborRefs returns the members of u.N in deterministic order.
func (p *Proc) NeighborRefs() []ref.Ref {
	out := make([]ref.Ref, 0, len(p.n))
	for r := range p.n {
		out = append(out, r)
	}
	ref.Sort(out)
	return out
}

// Refs implements sim.Protocol: all stored references (u.N plus the
// anchor) — the explicit edges of PG.
func (p *Proc) Refs() []ref.Ref {
	out := p.NeighborRefs()
	if !p.anchor.IsNil() {
		out = append(out, p.anchor)
	}
	return out
}

// Beliefs returns every stored reference together with the stored mode
// belief, for the potential function Φ.
func (p *Proc) Beliefs() []sim.RefInfo {
	out := make([]sim.RefInfo, 0, len(p.n)+1)
	for _, r := range p.NeighborRefs() {
		out = append(out, sim.RefInfo{Ref: r, Mode: p.n[r]})
	}
	if !p.anchor.IsNil() {
		out = append(out, sim.RefInfo{Ref: p.anchor, Mode: p.anchorMode})
	}
	return out
}

// present builds a present(v) message carrying the given belief about v.
func present(v ref.Ref, belief sim.Mode) sim.Message {
	return sim.NewMessage(LabelPresent, sim.RefInfo{Ref: v, Mode: belief})
}

// forward builds a forward(v) message carrying the given belief about v.
func forward(v ref.Ref, belief sim.Mode) sim.Message {
	return sim.NewMessage(LabelForward, sim.RefInfo{Ref: v, Mode: belief})
}

// Timeout implements Algorithm 1 (u.timeout).
func (p *Proc) Timeout(ctx sim.Context) {
	u := ctx.Self()

	// Lines 1–3: an anchor believed to be leaving is not a valid anchor;
	// move its reference into u's own channel for regular processing. Only a
	// leaver may do this: a leaving receiver of its own present always
	// answers with a reversal (Algorithm 2 line 5), but a staying receiver
	// consumes a present for a reference it does not hold silently — and
	// since this self-present deleted the anchor copy, that would burn what
	// may be the last copy of the reference (the anchor-reintegration-burn
	// fixture). Staying processes fold their anchor into n below instead.
	if ctx.Mode() == sim.Leaving && !p.anchor.IsNil() && p.anchorMode == sim.Leaving {
		ctx.Send(u, present(p.anchor, p.anchorMode)) // ♦ (reference kept in flight)
		p.anchor = ref.Nil
	}

	if ctx.Mode() == sim.Leaving {
		if len(p.n) == 0 {
			if p.variant == VariantFDP && ctx.OracleSays() {
				// Lines 5–7: exit when the oracle SINGLE allows it.
				ctx.Exit()
				return
			}
			// Lines 9–10: re-verify the anchor. A staying anchor that has
			// already shed us answers with a reversal we delegate straight
			// back (a bounded exchange); a leaving one answers with its true
			// mode, which clears the invalid anchor — this is what breaks
			// mutual-anchor cycles between two leavers. The
			// verification is paced with exponential backoff (see verifyGap):
			// each re-introduction puts a reference of u in flight, and
			// sending one on every timeout lets a deterministic schedule keep
			// NIDEC's guard false at every query.
			if !p.anchor.IsNil() {
				if p.sinceVerify >= p.verifyGap {
					ctx.Send(p.anchor, present(u, sim.Leaving)) // ♦ self-introduction
					p.sinceVerify = 0
					if p.verifyGap == 0 {
						p.verifyGap = 1
					} else if p.verifyGap < maxVerifyGap {
						p.verifyGap *= 2
					}
				} else {
					p.sinceVerify++
				}
			}
			if p.variant == VariantFSP {
				// FSP: no oracle; go to sleep. Incoming messages wake the
				// process again, so no reference can be stranded.
				ctx.Sleep()
			}
			return
		}
		// Lines 12–14: funnel the entire neighborhood into u's own channel;
		// the forward handler will adopt an anchor and delegate the rest.
		for _, v := range p.NeighborRefs() {
			ctx.Send(u, forward(v, p.n[v])) // reference kept in flight (♦/♣)
		}
		p.n = make(map[ref.Ref]sim.Mode) // ♦/♣ every reference is in flight above
		if p.variant == VariantFSP {
			// Sleep immediately; the just-sent self-messages wake us.
			ctx.Sleep()
		}
		return
	}

	// Staying branch (lines 15–22). A staying process needs no anchor:
	// reintegrate it as an ordinary reference. The fold-back is a direct
	// store (♠ fusion with any copy already in n), NOT a present to self: a
	// self-present deletes the anchor copy, so on delivery it is a
	// delegation in introduction's clothing — and the silent-consumption
	// branch of the present action (sound only for true introductions,
	// whose sender keeps a copy) would burn what may be the last copy of
	// the reference. The churn fuzzer found exactly that as a Lemma 2
	// violation: a staying process with a corrupted anchor to a leaver
	// reintegrated it, consumed the self-present silently, and disconnected
	// itself (the anchor-reintegration-burn fixture). This store handles
	// anchors of either claimed mode; a leaving-claimed one is shed by the
	// reversal in the loop below within the same timeout. ♠
	if !p.anchor.IsNil() {
		if p.anchor != u {
			p.n[p.anchor] = p.anchorMode
		}
		p.anchor = ref.Nil
	}
	for _, v := range p.NeighborRefs() {
		if p.n[v] == sim.Leaving {
			delete(p.n, v)                       // ♣ drop the reference ...
			ctx.Send(v, present(u, sim.Staying)) // ... and hand v our own: ♣ reversal
			continue
		}
		ctx.Send(v, present(u, sim.Staying)) // ♦ periodic self-introduction
	}
}

// Deliver implements sim.Protocol, dispatching to the present and forward
// actions. Unknown labels are ignored (the model drops such messages).
func (p *Proc) Deliver(ctx sim.Context, msg sim.Message) {
	if len(msg.Refs) != 1 {
		return
	}
	ri := msg.Refs[0]
	switch msg.Label {
	case LabelPresent:
		p.onPresent(ctx, ri)
	case LabelForward:
		p.onForward(ctx, ri)
	}
}

// onPresent implements Algorithm 2 (u.present(v)).
func (p *Proc) onPresent(ctx sim.Context, ri sim.RefInfo) {
	u := ctx.Self()
	v, claim := ri.Ref, ri.Mode
	if v == u {
		// References to oneself carry no connectivity information; they are
		// discarded (a safe fusion-like cleanup, see DESIGN.md).
		return
	}
	// Incoming information refreshes stored knowledge about v.
	if _, ok := p.n[v]; ok {
		p.n[v] = claim // ♠ belief refresh on a stored edge
	}
	// Lines 1–2: an anchor reported to be leaving is dropped. ♠
	if v == p.anchor {
		p.anchorMode = claim
		if claim == sim.Leaving {
			p.anchor = ref.Nil
		}
	}
	if claim == sim.Leaving {
		if ctx.Mode() == sim.Leaving {
			// Line 5: two leaving processes bounce their own references so
			// each can shed the other. ♣
			ctx.Send(v, forward(u, sim.Leaving))
			return
		}
		// Lines 7–9: a staying process sheds a leaving reference and hands
		// the leaver its own reference instead (♣ reversal) — held or not,
		// matching the forward action. An earlier version consumed a present
		// for a reference it did not hold silently, reasoning that an
		// introduction's sender keeps its own copy; the churn fuzzer refuted
		// that for corrupted states, where a junk present can be the only
		// bridge between two components and burning it splits them (the
		// junk-present-bridge fixture). The reversal flips the edge instead
		// of dropping it, and the exchange it starts terminates: the leaver
		// delegates the reply to its anchor (self-discarded when the anchor
		// is us), and its verification backoff and FSP sleep bound any
		// repeats — so leavers still hibernate.
		delete(p.n, v) // ♣ reversal (with the send below)
		ctx.Send(v, forward(u, sim.Staying))
		return
	}
	// claim == staying.
	if ctx.Mode() == sim.Leaving {
		if !p.anchor.IsNil() {
			// Line 13: already anchored; tell v about ourselves so v can
			// shed any reference to u. ♣
			ctx.Send(v, forward(u, sim.Leaving))
			return
		}
		// Line 15: adopt v as anchor. ♠ (reference stored)
		p.anchor = v
		p.anchorMode = sim.Staying
		p.resetVerifyPacing()
		return
	}
	// Line 17: staying processes store staying references. ♠
	p.n[v] = claim
}

// Undeliverable implements sim.UndeliverableHandler: a message u sent
// bounced because its target is gone. This is the transport-level failure
// detection the model's postprocess presupposes ("postprocess is able to
// handle messages that cannot be delivered").
//
// Two things need repair. First, a gone target is never a valid anchor:
// clear it, or u would keep delegating into the void forever. Second, a
// bounced forward is a Delegation (♥) whose sender deleted its own copy —
// if the carried reference is neither u itself nor the dead target, the
// bounced message may hold the LAST copy of that reference, and losing it
// can disconnect relevant processes (a Lemma 2 violation). Recover it by
// re-sending it to u's own channel, where the forward action processes it
// again under the repaired anchor. A bounced present needs no recovery: an
// Introduction's (♦) sender kept its own copy, so no connectivity hinges on
// the message.
func (p *Proc) Undeliverable(ctx sim.Context, to ref.Ref, msg sim.Message) {
	if p.anchor == to {
		p.anchor = ref.Nil // a gone target is never a valid anchor (fdp:primitive)
	}
	if msg.Label != LabelForward || len(msg.Refs) != 1 {
		return
	}
	ri := msg.Refs[0]
	if ri.Ref == ctx.Self() || ri.Ref == to {
		// Our own reference (we keep ourselves) or a reference to the dead
		// process itself (never again an edge of PG): nothing to preserve.
		return
	}
	ctx.Send(ctx.Self(), forward(ri.Ref, ri.Mode)) // ♥ reference kept in flight
}

// onForward implements Algorithm 3 (u.forward(v)).
func (p *Proc) onForward(ctx sim.Context, ri sim.RefInfo) {
	u := ctx.Self()
	v, claim := ri.Ref, ri.Mode
	if v == u {
		return
	}
	if _, ok := p.n[v]; ok {
		p.n[v] = claim // ♠ belief refresh on a stored edge
	}
	// Lines 1–2. ♠
	if v == p.anchor {
		p.anchorMode = claim
		if claim == sim.Leaving {
			p.anchor = ref.Nil
		}
	}
	if claim == sim.Leaving {
		if ctx.Mode() == sim.Leaving {
			if p.anchor.IsNil() {
				// Line 6: no anchor yet — bounce our reference to v. ♣
				ctx.Send(v, forward(u, sim.Leaving))
				return
			}
			// Line 8: delegate v's reference to the anchor. ♥
			// (The only place invalid information could be copied — but v
			// is not kept, so Φ does not increase; see Lemma 3.)
			ctx.Send(p.anchor, forward(v, claim)) // ♥
			return
		}
		// Lines 10–12: staying process sheds v and reverses the edge. ♣
		delete(p.n, v)
		ctx.Send(v, forward(u, sim.Staying)) // ♣
		return
	}
	// claim == staying.
	if ctx.Mode() == sim.Leaving {
		if !p.anchor.IsNil() {
			// Line 16: pass the reference on to the anchor. ♥
			ctx.Send(p.anchor, forward(v, claim))
			return
		}
		// Line 18: adopt v as anchor. ♠
		p.anchor = v
		p.anchorMode = sim.Staying
		p.resetVerifyPacing()
		return
	}
	// Line 20: staying processes store staying references. ♠
	p.n[v] = claim
}
