package core

import (
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// Phi computes the potential function Φ of the Lemma 3 proof: the amount of
// invalid information in the system, i.e. the number of edges (x,y) —
// explicit or implicit — such that mode(y) differs from x's knowledge
// x.mode(y). The protocol never increases Φ, and as long as Φ > 0 it
// eventually decreases, which drives the liveness argument.
//
// Edges to gone processes are not part of PG and do not count.
func Phi(w *sim.World) int {
	phi := 0
	for _, x := range w.Refs() {
		if w.LifeOf(x) == sim.Gone {
			continue
		}
		// Explicit edges: stored beliefs of any protocol exposing them.
		if holder, ok := w.ProtocolOf(x).(BeliefHolder); ok {
			for _, b := range holder.Beliefs() {
				if countsAsInvalid(w, b) {
					phi++
				}
			}
		}
		// Implicit edges: claims in the channel.
		for _, m := range w.ChannelSnapshot(x) {
			for _, b := range m.Refs {
				if countsAsInvalid(w, b) {
					phi++
				}
			}
		}
	}
	return phi
}

// BeliefHolder is implemented by protocols that store mode knowledge along
// with references (Proc does; the Section 4 framework wrapper does too).
type BeliefHolder interface {
	Beliefs() []sim.RefInfo
}

func countsAsInvalid(w *sim.World, b sim.RefInfo) bool {
	if b.Ref.IsNil() {
		return false
	}
	// Unknown references occur in snapshot worlds that omit gone
	// processes; like gone ones, they are outside PG and never count.
	if !w.Has(b.Ref) || w.LifeOf(b.Ref) == sim.Gone {
		return false
	}
	// Unknown is the framework's "not verified yet" marker, not a mode
	// claim; it never counts as invalid information.
	if b.Mode == sim.Unknown {
		return false
	}
	return b.Mode != w.ModeOf(b.Ref)
}

// Valid reports whether the system state is valid per Section 3: no
// relevant process has invalid information stored or in flight (Φ would be
// 0 if additionally no irrelevant process held any).
func Valid(w *sim.World) bool { return Phi(w) == 0 }

// AnchorsConsistent reports whether every staying process has anchor ⊥ and
// every leaving process's anchor (if any) references a staying process —
// the anchor part of a legitimate state. Used by closure tests.
func AnchorsConsistent(w *sim.World) bool {
	for _, x := range w.Refs() {
		if w.LifeOf(x) == sim.Gone {
			continue
		}
		p, ok := w.ProtocolOf(x).(*Proc)
		if !ok {
			continue
		}
		a := p.Anchor()
		if a.IsNil() {
			continue
		}
		if w.ModeOf(x) == sim.Staying {
			return false
		}
		if w.LifeOf(a) != sim.Gone && w.ModeOf(a) != sim.Staying {
			return false
		}
	}
	return true
}

// LeaversWithNeighbors returns the leaving processes that still store
// ordinary (non-anchor) references — a progress metric for traces.
func LeaversWithNeighbors(w *sim.World) []ref.Ref {
	var out []ref.Ref
	for _, x := range w.Refs() {
		if w.LifeOf(x) == sim.Gone || w.ModeOf(x) != sim.Leaving {
			continue
		}
		if p, ok := w.ProtocolOf(x).(*Proc); ok && len(p.Neighbors()) > 0 {
			out = append(out, x)
		}
	}
	return out
}
