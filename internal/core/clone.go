package core

import (
	"fmt"
	"strings"

	"fdp/internal/sim"
)

// CloneProtocol implements sim.CloneableProtocol, enabling exhaustive
// schedule exploration of worlds running the departure protocol.
//fdp:primitive init
func (p *Proc) CloneProtocol() sim.Protocol {
	c := New(p.variant)
	for r, m := range p.n {
		c.n[r] = m
	}
	c.anchor = p.anchor
	c.anchorMode = p.anchorMode
	c.verifyGap = p.verifyGap
	c.sinceVerify = p.sinceVerify
	return c
}

// FingerprintState implements sim.FingerprintableProtocol: the full
// variable assignment — neighborhood with beliefs, anchor with belief, and
// the variant.
func (p *Proc) FingerprintState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "v%d;a%v:%d;g%d.%d;", p.variant, p.anchor, p.anchorMode, p.verifyGap, p.sinceVerify)
	for _, r := range p.NeighborRefs() {
		fmt.Fprintf(&b, "%v:%d,", r, p.n[r])
	}
	return b.String()
}

var (
	_ sim.CloneableProtocol       = (*Proc)(nil)
	_ sim.FingerprintableProtocol = (*Proc)(nil)
)
