package core_test

import (
	"testing"

	"fdp/internal/churn"
	"fdp/internal/core"
	"fdp/internal/oracle"
	"fdp/internal/sim"
)

func schedulers(seed int64) map[string]func() sim.Scheduler {
	return map[string]func() sim.Scheduler{
		"random":      func() sim.Scheduler { return sim.NewRandomScheduler(seed, 256) },
		"rounds":      func() sim.Scheduler { return sim.NewRoundScheduler() },
		"adversarial": func() sim.Scheduler { return sim.NewAdversarialScheduler(seed, 128) },
		"fifo":        func() sim.Scheduler { return sim.NewFIFOScheduler() },
	}
}

func runScenario(t *testing.T, s *churn.Scenario, sched sim.Scheduler, maxSteps int) sim.RunResult {
	t.Helper()
	variant := sim.FDP
	if s.Config.Variant == core.VariantFSP {
		variant = sim.FSP
	}
	res := sim.Run(s.World, sched, sim.RunOptions{
		Variant:     variant,
		MaxSteps:    maxSteps,
		CheckSafety: true,
	})
	if res.SafetyViolation != nil {
		t.Fatalf("SAFETY violated (%s, n=%d, topo=%v, seed=%d): %v",
			sched.Name(), s.Config.N, s.Config.Topology, s.Config.Seed, res.SafetyViolation)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d steps (%s, n=%d, topo=%v, leave=%.2f, seed=%d); %d leavers remain",
			res.Steps, sched.Name(), s.Config.N, s.Config.Topology,
			s.Config.LeaveFraction, s.Config.Seed, s.World.LeavingRemaining())
	}
	return res
}

// Theorem 3: from clean initial states the protocol solves the FDP on every
// topology, under every scheduler.
func TestFDPCleanStatesAllTopologies(t *testing.T) {
	topos := []churn.Topology{
		churn.TopoLine, churn.TopoDirectedLine, churn.TopoRing, churn.TopoStar,
		churn.TopoTree, churn.TopoClique, churn.TopoHypercube, churn.TopoRandom,
	}
	for _, topo := range topos {
		for name, mk := range schedulers(42) {
			s := churn.Build(churn.Config{
				N: 16, Topology: topo, LeaveFraction: 0.5,
				Pattern: churn.LeaveRandom, Oracle: oracle.Single{}, Seed: 7,
			})
			res := runScenario(t, s, mk(), 400000)
			if s.World.GoneCount() != s.Leaving.Len() {
				t.Fatalf("%v/%s: %d of %d leavers gone", topo, name,
					s.World.GoneCount(), s.Leaving.Len())
			}
			_ = res
		}
	}
}

// Self-stabilization: convergence from corrupted initial states — flipped
// beliefs, random anchors, junk in-flight messages.
func TestFDPCorruptedStates(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		s := churn.Build(churn.Config{
			N: 20, Topology: churn.TopoRandom, LeaveFraction: 0.5,
			Pattern: churn.LeaveRandom,
			Corrupt: churn.Corruption{
				FlipBeliefs:   0.5,
				RandomAnchors: 0.7,
				JunkMessages:  30,
			},
			Oracle: oracle.Single{}, Seed: seed,
		})
		runScenario(t, s, sim.NewRandomScheduler(seed, 256), 600000)
	}
}

// Adversarial leaver placement: articulation points leave.
func TestFDPArticulationLeavers(t *testing.T) {
	for _, topo := range []churn.Topology{churn.TopoLine, churn.TopoStar, churn.TopoTree} {
		s := churn.Build(churn.Config{
			N: 15, Topology: topo, LeaveFraction: 0.4,
			Pattern: churn.LeaveArticulation, Oracle: oracle.Single{}, Seed: 3,
		})
		runScenario(t, s, sim.NewRoundScheduler(), 400000)
	}
}

// Extreme churn: everybody but one process leaves.
func TestFDPAllButOneLeave(t *testing.T) {
	s := churn.Build(churn.Config{
		N: 12, Topology: churn.TopoRing, Pattern: churn.LeaveAllButOne,
		Oracle: oracle.Single{}, Seed: 11,
	})
	runScenario(t, s, sim.NewRandomScheduler(5, 256), 400000)
	if s.World.GoneCount() != 11 {
		t.Fatalf("gone = %d, want 11", s.World.GoneCount())
	}
}

// Nobody leaves: the protocol must keep the overlay intact and do nothing
// harmful (it still runs its periodic self-introduction).
func TestFDPNoLeavers(t *testing.T) {
	s := churn.Build(churn.Config{
		N: 8, Topology: churn.TopoRing, LeaveFraction: 0,
		Oracle: oracle.Single{}, Seed: 1,
	})
	res := sim.Run(s.World, sim.NewRandomScheduler(1, 256), sim.RunOptions{
		Variant: sim.FDP, MaxSteps: 5000, CheckSafety: true,
	})
	if res.SafetyViolation != nil {
		t.Fatal(res.SafetyViolation)
	}
	if !res.Converged {
		t.Fatal("a state with no leavers should be legitimate immediately")
	}
}

// Lemma 2 at full resolution: on small systems, check the safety invariant
// after every single step.
func TestFDPSafetyEveryStep(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		s := churn.Build(churn.Config{
			N: 8, Topology: churn.TopoRandom, LeaveFraction: 0.5,
			Pattern: churn.LeaveRandom,
			Corrupt: churn.Corruption{FlipBeliefs: 0.4, RandomAnchors: 0.5, JunkMessages: 10},
			Oracle:  oracle.Single{}, Seed: seed,
		})
		res := sim.Run(s.World, sim.NewRandomScheduler(seed, 128), sim.RunOptions{
			Variant: sim.FDP, MaxSteps: 200000, SafetyEveryStep: true,
		})
		if res.SafetyViolation != nil {
			t.Fatalf("seed %d: %v", seed, res.SafetyViolation)
		}
		if !res.Converged {
			t.Fatalf("seed %d: no convergence", seed)
		}
	}
}

// Lemma 3's potential argument: Φ never increases along any computation.
func TestPhiNonIncreasing(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		s := churn.Build(churn.Config{
			N: 12, Topology: churn.TopoRandom, LeaveFraction: 0.4,
			Pattern: churn.LeaveRandom,
			Corrupt: churn.Corruption{FlipBeliefs: 0.6, RandomAnchors: 0.5, JunkMessages: 20},
			Oracle:  oracle.Single{}, Seed: seed,
		})
		last := core.Phi(s.World)
		res := sim.Run(s.World, sim.NewRandomScheduler(seed, 128), sim.RunOptions{
			Variant:  sim.FDP,
			MaxSteps: 300000,
			OnStep: func(w *sim.World) {
				phi := core.Phi(w)
				if phi > last {
					t.Fatalf("seed %d: Φ increased %d -> %d at step %d", seed, last, phi, w.Steps())
				}
				last = phi
			},
		})
		if !res.Converged {
			t.Fatalf("seed %d: no convergence", seed)
		}
		if last != 0 {
			t.Fatalf("seed %d: Φ = %d in legitimate state, want 0", seed, last)
		}
	}
}

// Closure: once legitimate, the system stays legitimate.
func TestFDPClosure(t *testing.T) {
	s := churn.Build(churn.Config{
		N: 10, Topology: churn.TopoRing, LeaveFraction: 0.5,
		Pattern: churn.LeaveRandom, Oracle: oracle.Single{}, Seed: 9,
	})
	sched := sim.NewRandomScheduler(9, 128)
	res := runScenario(t, s, sched, 300000)
	_ = res
	// Keep running: every state must remain legitimate.
	for i := 0; i < 3000; i++ {
		a, ok := sched.Next(s.World)
		if !ok {
			break
		}
		s.World.Execute(a)
		if i%100 == 0 && !s.World.Legitimate(sim.FDP) {
			t.Fatalf("legitimacy lost at closure step %d", i)
		}
	}
	if !s.World.Legitimate(sim.FDP) {
		t.Fatal("legitimacy lost during closure run")
	}
	if !core.AnchorsConsistent(s.World) {
		t.Fatal("anchors inconsistent in legitimate state")
	}
}

// The oracle matters: with the unsafe Always(true) oracle a leaving cut
// vertex can exit early and disconnect the staying processes.
func TestUnsafeOracleViolatesSafety(t *testing.T) {
	violated := false
	for seed := int64(0); seed < 20 && !violated; seed++ {
		s := churn.Build(churn.Config{
			N: 9, Topology: churn.TopoLine, LeaveFraction: 0.4,
			Pattern: churn.LeaveArticulation,
			Oracle:  oracle.Always(true), Seed: seed,
		})
		res := sim.Run(s.World, sim.NewRandomScheduler(seed, 64), sim.RunOptions{
			Variant: sim.FDP, MaxSteps: 100000, SafetyEveryStep: true,
		})
		if res.SafetyViolation != nil {
			violated = true
		}
	}
	if !violated {
		t.Fatal("Always(true) oracle never violated safety in 20 attempts; the SINGLE guard appears vacuous")
	}
}

// FSP: without any oracle, leaving processes end up hibernating (Section 4).
func TestFSPConvergence(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		s := churn.Build(churn.Config{
			N: 14, Topology: churn.TopoRandom, LeaveFraction: 0.5,
			Pattern: churn.LeaveRandom, Variant: core.VariantFSP,
			Corrupt: churn.Corruption{FlipBeliefs: 0.3, RandomAnchors: 0.4, JunkMessages: 10},
			Oracle:  nil, // no oracle needed for the FSP
			Seed:    seed,
		})
		res := sim.Run(s.World, sim.NewRandomScheduler(seed, 256), sim.RunOptions{
			Variant: sim.FSP, MaxSteps: 600000, CheckSafety: true,
		})
		if res.SafetyViolation != nil {
			t.Fatalf("seed %d: %v", seed, res.SafetyViolation)
		}
		if !res.Converged {
			t.Fatalf("seed %d: FSP did not converge in %d steps (%d leavers awake)",
				seed, res.Steps, s.World.LeavingRemaining())
		}
		// Every leaver is hibernating, none gone.
		if s.World.GoneCount() != 0 {
			t.Fatalf("seed %d: FSP produced gone processes", seed)
		}
		hib := s.World.Hibernating()
		for _, l := range s.LeavingNodes() {
			if !hib.Has(l) {
				t.Fatalf("seed %d: leaver %v not hibernating", seed, l)
			}
		}
	}
}

// FSP wake-up: a hibernating process resumes computation when a message
// arrives (the defining difference from the FDP).
func TestFSPWakeOnMessage(t *testing.T) {
	s := churn.Build(churn.Config{
		N: 6, Topology: churn.TopoLine, LeaveFraction: 0.34,
		Pattern: churn.LeaveRandom, Variant: core.VariantFSP, Seed: 2,
	})
	res := sim.Run(s.World, sim.NewRoundScheduler(), sim.RunOptions{
		Variant: sim.FSP, MaxSteps: 300000,
	})
	if !res.Converged {
		t.Fatal("FSP did not converge")
	}
	leaver := s.LeavingNodes()[0]
	if s.World.LifeOf(leaver) != sim.Asleep {
		t.Fatal("leaver should be asleep")
	}
	// Poke it: it must wake and process the message.
	s.World.Enqueue(leaver, sim.NewMessage(core.LabelPresent,
		sim.RefInfo{Ref: s.StayingNodes()[0], Mode: sim.Staying}))
	for _, a := range s.World.EnabledActions() {
		if a.Proc == leaver && !a.IsTimeout {
			s.World.Execute(a)
		}
	}
	if s.World.LifeOf(leaver) != sim.Awake {
		t.Fatal("message must wake an asleep process")
	}
}

// Determinism: identical seeds yield identical outcomes.
func TestRunsAreDeterministic(t *testing.T) {
	run := func() (int, uint64) {
		s := churn.Build(churn.Config{
			N: 12, Topology: churn.TopoRandom, LeaveFraction: 0.5,
			Pattern: churn.LeaveRandom,
			Corrupt: churn.Corruption{FlipBeliefs: 0.5, RandomAnchors: 0.5, JunkMessages: 15},
			Oracle:  oracle.Single{}, Seed: 77,
		})
		res := sim.Run(s.World, sim.NewRandomScheduler(77, 256), sim.RunOptions{
			Variant: sim.FDP, MaxSteps: 400000,
		})
		if !res.Converged {
			t.Fatal("no convergence")
		}
		return res.Steps, res.Stats.Sent
	}
	s1, m1 := run()
	s2, m2 := run()
	if s1 != s2 || m1 != m2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", s1, m1, s2, m2)
	}
}

// Scale check: convergence holds on a larger instance.
func TestFDPLargerInstance(t *testing.T) {
	if testing.Short() {
		t.Skip("large instance")
	}
	s := churn.Build(churn.Config{
		N: 64, Topology: churn.TopoRandom, LeaveFraction: 0.5,
		Pattern: churn.LeaveRandom,
		Corrupt: churn.Corruption{FlipBeliefs: 0.3, RandomAnchors: 0.3, JunkMessages: 50},
		Oracle:  oracle.Single{}, Seed: 123,
	})
	res := sim.Run(s.World, sim.NewRandomScheduler(123, 512), sim.RunOptions{
		Variant: sim.FDP, MaxSteps: 4000000, CheckEvery: 64,
	})
	if !res.Converged {
		t.Fatalf("n=64 did not converge in %d steps (%d leavers remain)",
			res.Steps, s.World.LeavingRemaining())
	}
}

func TestValidAndLeaversWithNeighbors(t *testing.T) {
	s := churn.Build(churn.Config{
		N: 8, Topology: churn.TopoRing, LeaveFraction: 0.25,
		Pattern: churn.LeaveRandom, Oracle: oracle.Single{}, Seed: 21,
	})
	if !core.Valid(s.World) {
		t.Fatal("clean build must be valid (Φ=0)")
	}
	if got := core.LeaversWithNeighbors(s.World); len(got) != 2 {
		t.Fatalf("both leavers start with neighbors, got %v", got)
	}
	res := sim.Run(s.World, sim.NewRandomScheduler(21, 256), sim.RunOptions{
		Variant: sim.FDP, MaxSteps: 300000,
	})
	if !res.Converged {
		t.Fatal("no convergence")
	}
	if got := core.LeaversWithNeighbors(s.World); len(got) != 0 {
		t.Fatalf("gone leavers cannot have neighbors: %v", got)
	}
}
