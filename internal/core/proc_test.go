package core

import (
	"testing"

	"fdp/internal/ref"
	"fdp/internal/sim"
)

// ctxStub records the effects of a single action execution.
type ctxStub struct {
	self   ref.Ref
	mode   sim.Mode
	oracle bool
	sent   []sentMsg
	exited bool
	slept  bool
}

type sentMsg struct {
	to  ref.Ref
	msg sim.Message
}

func (c *ctxStub) Self() ref.Ref    { return c.self }
func (c *ctxStub) Mode() sim.Mode   { return c.mode }
func (c *ctxStub) Exit()            { c.exited = true }
func (c *ctxStub) Sleep()           { c.slept = true }
func (c *ctxStub) OracleSays() bool { return c.oracle }
func (c *ctxStub) Send(to ref.Ref, m sim.Message) {
	c.sent = append(c.sent, sentMsg{to: to, msg: m})
}

func (c *ctxStub) sentTo(to ref.Ref, label string) []sim.Message {
	var out []sim.Message
	for _, s := range c.sent {
		if s.to == to && s.msg.Label == label {
			out = append(out, s.msg)
		}
	}
	return out
}

func refs3() (ref.Ref, ref.Ref, ref.Ref) {
	s := ref.NewSpace()
	return s.New(), s.New(), s.New()
}

// --- Algorithm 1: timeout -------------------------------------------------

func TestTimeoutLeavingAnchorBelievedLeavingIsDropped(t *testing.T) {
	u, a, _ := refs3()
	p := New(VariantFDP)
	p.SetAnchor(a, sim.Leaving)
	ctx := &ctxStub{self: u, mode: sim.Leaving}
	p.Timeout(ctx)
	if !p.Anchor().IsNil() {
		t.Fatal("anchor believed leaving must be dropped (lines 1-3)")
	}
	// The reference is not lost: it travels to u itself as present(a).
	msgs := ctx.sentTo(u, LabelPresent)
	if len(msgs) != 1 || msgs[0].Refs[0].Ref != a || msgs[0].Refs[0].Mode != sim.Leaving {
		t.Fatalf("anchor reference must be re-presented to self, got %v", ctx.sent)
	}
}

func TestTimeoutLeavingExitRequiresOracleAndEmptyN(t *testing.T) {
	u, a, _ := refs3()
	p := New(VariantFDP)
	ctx := &ctxStub{self: u, mode: sim.Leaving, oracle: false}
	p.Timeout(ctx)
	if ctx.exited {
		t.Fatal("must not exit when oracle says false")
	}
	ctx = &ctxStub{self: u, mode: sim.Leaving, oracle: true}
	p.Timeout(ctx)
	if !ctx.exited {
		t.Fatal("empty N + oracle true must exit (lines 5-7)")
	}
	// Nonempty N: no exit even with oracle true.
	p2 := New(VariantFDP)
	p2.SetNeighbor(a, sim.Staying)
	ctx = &ctxStub{self: u, mode: sim.Leaving, oracle: true}
	p2.Timeout(ctx)
	if ctx.exited {
		t.Fatal("nonempty N must funnel, not exit")
	}
}

func TestTimeoutLeavingVerifiesAnchor(t *testing.T) {
	u, a, _ := refs3()
	p := New(VariantFDP)
	p.SetAnchor(a, sim.Staying)
	ctx := &ctxStub{self: u, mode: sim.Leaving, oracle: false}
	p.Timeout(ctx)
	msgs := ctx.sentTo(a, LabelPresent)
	if len(msgs) != 1 || msgs[0].Refs[0].Ref != u || msgs[0].Refs[0].Mode != sim.Leaving {
		t.Fatal("leaving process with empty N must verify its anchor (lines 9-10)")
	}
}

func TestTimeoutLeavingFunnelsNeighborhood(t *testing.T) {
	u, a, b := refs3()
	p := New(VariantFDP)
	p.SetNeighbor(a, sim.Staying)
	p.SetNeighbor(b, sim.Leaving)
	ctx := &ctxStub{self: u, mode: sim.Leaving}
	p.Timeout(ctx)
	if len(p.Neighbors()) != 0 {
		t.Fatal("N must be emptied (line 14)")
	}
	msgs := ctx.sentTo(u, LabelForward)
	if len(msgs) != 2 {
		t.Fatalf("both neighbors must be funnelled to self, got %d", len(msgs))
	}
	// Beliefs travel with the references.
	beliefs := map[ref.Ref]sim.Mode{}
	for _, m := range msgs {
		beliefs[m.Refs[0].Ref] = m.Refs[0].Mode
	}
	if beliefs[a] != sim.Staying || beliefs[b] != sim.Leaving {
		t.Fatal("funnelled references must carry the stored beliefs")
	}
}

func TestTimeoutStayingDropsAnchorAndLeavingNeighbors(t *testing.T) {
	u, a, b := refs3()
	p := New(VariantFDP)
	p.SetAnchor(a, sim.Staying)
	p.SetNeighbor(b, sim.Leaving)
	ctx := &ctxStub{self: u, mode: sim.Staying}
	p.Timeout(ctx)
	if !p.Anchor().IsNil() {
		t.Fatal("staying process must clear its anchor (lines 16-18)")
	}
	if len(ctx.sentTo(u, LabelPresent)) != 0 {
		t.Fatal("staying process must not send its anchor to itself: the self-present " +
			"deletes the only copy and can be burned on delivery (anchor-reintegration-burn)")
	}
	if got := p.Neighbors(); len(got) != 1 || got[a] != sim.Staying {
		t.Fatalf("staying anchor must be folded into n, got %v", got)
	}
	if len(ctx.sentTo(a, LabelPresent)) != 1 {
		t.Fatal("reintegrated anchor must receive the periodic self-introduction")
	}
	// b still receives present(u): reversal.
	msgs := ctx.sentTo(b, LabelPresent)
	if len(msgs) != 1 || msgs[0].Refs[0].Ref != u || msgs[0].Refs[0].Mode != sim.Staying {
		t.Fatal("dropped leaving neighbor must receive present(u)")
	}
}

func TestTimeoutStayingSelfIntroducesToAll(t *testing.T) {
	u, a, b := refs3()
	p := New(VariantFDP)
	p.SetNeighbor(a, sim.Staying)
	p.SetNeighbor(b, sim.Staying)
	ctx := &ctxStub{self: u, mode: sim.Staying}
	p.Timeout(ctx)
	if len(ctx.sentTo(a, LabelPresent)) != 1 || len(ctx.sentTo(b, LabelPresent)) != 1 {
		t.Fatal("staying process must self-introduce to every neighbor (line 22)")
	}
	if len(p.Neighbors()) != 2 {
		t.Fatal("staying neighbors must be kept")
	}
}

func TestTimeoutFSPSleeps(t *testing.T) {
	u, a, _ := refs3()
	p := New(VariantFSP)
	ctx := &ctxStub{self: u, mode: sim.Leaving}
	p.Timeout(ctx)
	if !ctx.slept {
		t.Fatal("FSP leaving process with empty N must sleep")
	}
	if ctx.exited {
		t.Fatal("FSP must never exit")
	}
	// With a nonempty N it funnels first, then sleeps; the self-messages
	// will wake it.
	p2 := New(VariantFSP)
	p2.SetNeighbor(a, sim.Staying)
	ctx = &ctxStub{self: u, mode: sim.Leaving}
	p2.Timeout(ctx)
	if !ctx.slept || len(ctx.sentTo(u, LabelForward)) != 1 {
		t.Fatal("FSP funnel+sleep broken")
	}
}

func TestTimeoutFSPStayingNeverSleeps(t *testing.T) {
	u, a, _ := refs3()
	p := New(VariantFSP)
	p.SetNeighbor(a, sim.Staying)
	ctx := &ctxStub{self: u, mode: sim.Staying}
	p.Timeout(ctx)
	if ctx.slept {
		t.Fatal("staying processes never sleep")
	}
}

// --- Algorithm 2: present -------------------------------------------------

func deliver(p *Proc, ctx *ctxStub, label string, v ref.Ref, claim sim.Mode) {
	p.Deliver(ctx, sim.NewMessage(label, sim.RefInfo{Ref: v, Mode: claim}))
}

func TestPresentClearsLeavingAnchor(t *testing.T) {
	u, a, _ := refs3()
	p := New(VariantFDP)
	p.SetAnchor(a, sim.Staying)
	ctx := &ctxStub{self: u, mode: sim.Leaving}
	deliver(p, ctx, LabelPresent, a, sim.Leaving)
	if !p.Anchor().IsNil() {
		t.Fatal("present(anchor) with claim leaving must clear the anchor (lines 1-2)")
	}
}

func TestPresentLeavingToLeaving(t *testing.T) {
	u, v, _ := refs3()
	p := New(VariantFDP)
	ctx := &ctxStub{self: u, mode: sim.Leaving}
	deliver(p, ctx, LabelPresent, v, sim.Leaving)
	msgs := ctx.sentTo(v, LabelForward)
	if len(msgs) != 1 || msgs[0].Refs[0].Ref != u || msgs[0].Refs[0].Mode != sim.Leaving {
		t.Fatal("leaving u must bounce forward(u) to leaving v (line 5)")
	}
}

func TestPresentLeavingToStayingShedsReference(t *testing.T) {
	u, v, _ := refs3()
	p := New(VariantFDP)
	p.SetNeighbor(v, sim.Staying) // stale belief
	ctx := &ctxStub{self: u, mode: sim.Staying}
	deliver(p, ctx, LabelPresent, v, sim.Leaving)
	if len(p.Neighbors()) != 0 {
		t.Fatal("staying u must shed the leaving reference (lines 7-8)")
	}
	if len(ctx.sentTo(v, LabelForward)) != 1 {
		t.Fatal("staying u must reverse the edge with forward(u) (line 9)")
	}
}

func TestPresentStayingToLeavingAdoptsAnchor(t *testing.T) {
	u, v, w := refs3()
	p := New(VariantFDP)
	ctx := &ctxStub{self: u, mode: sim.Leaving}
	deliver(p, ctx, LabelPresent, v, sim.Staying)
	if p.Anchor() != v || p.AnchorBelief() != sim.Staying {
		t.Fatal("anchorless leaving u must adopt staying v as anchor (line 15)")
	}
	if len(ctx.sent) != 0 {
		t.Fatal("adoption sends nothing")
	}
	// With an anchor already set, v gets forward(u) instead.
	ctx2 := &ctxStub{self: u, mode: sim.Leaving}
	deliver(p, ctx2, LabelPresent, w, sim.Staying)
	if p.Anchor() != v {
		t.Fatal("anchor must not change")
	}
	if len(ctx2.sentTo(w, LabelForward)) != 1 {
		t.Fatal("anchored leaving u must send forward(u) to v (line 13)")
	}
}

func TestPresentStayingToStayingStores(t *testing.T) {
	u, v, _ := refs3()
	p := New(VariantFDP)
	ctx := &ctxStub{self: u, mode: sim.Staying}
	deliver(p, ctx, LabelPresent, v, sim.Staying)
	if got := p.Neighbors()[v]; got != sim.Staying {
		t.Fatal("staying u must store staying v (line 17)")
	}
	// Duplicate delivery fuses (set semantics).
	deliver(p, ctx, LabelPresent, v, sim.Staying)
	if len(p.Neighbors()) != 1 {
		t.Fatal("duplicate reference must fuse")
	}
}

func TestPresentRefreshesStoredBelief(t *testing.T) {
	u, v, _ := refs3()
	p := New(VariantFDP)
	p.SetNeighbor(v, sim.Staying)
	ctx := &ctxStub{self: u, mode: sim.Staying}
	deliver(p, ctx, LabelPresent, v, sim.Leaving)
	if _, still := p.Neighbors()[v]; still {
		t.Fatal("belief refresh must lead to shedding the now-leaving neighbor")
	}
}

func TestPresentSelfReferenceDiscarded(t *testing.T) {
	u, _, _ := refs3()
	p := New(VariantFDP)
	ctx := &ctxStub{self: u, mode: sim.Staying}
	deliver(p, ctx, LabelPresent, u, sim.Staying)
	if len(p.Neighbors()) != 0 || len(ctx.sent) != 0 {
		t.Fatal("self-references must be discarded")
	}
}

// --- Algorithm 3: forward -------------------------------------------------

func TestForwardLeavingNoAnchorBounces(t *testing.T) {
	u, v, _ := refs3()
	p := New(VariantFDP)
	ctx := &ctxStub{self: u, mode: sim.Leaving}
	deliver(p, ctx, LabelForward, v, sim.Leaving)
	if len(ctx.sentTo(v, LabelForward)) != 1 {
		t.Fatal("anchorless leaving u must bounce forward(u) to v (line 6)")
	}
}

func TestForwardLeavingWithAnchorDelegates(t *testing.T) {
	u, v, a := refs3()
	p := New(VariantFDP)
	p.SetAnchor(a, sim.Staying)
	ctx := &ctxStub{self: u, mode: sim.Leaving}
	deliver(p, ctx, LabelForward, v, sim.Leaving)
	msgs := ctx.sentTo(a, LabelForward)
	if len(msgs) != 1 || msgs[0].Refs[0].Ref != v || msgs[0].Refs[0].Mode != sim.Leaving {
		t.Fatal("anchored leaving u must delegate v to its anchor (line 8)")
	}
	// The reference is not stored: Φ cannot increase.
	if len(p.Neighbors()) != 0 {
		t.Fatal("delegated reference must not be stored")
	}
}

func TestForwardStayingShedsLeaving(t *testing.T) {
	u, v, _ := refs3()
	p := New(VariantFDP)
	p.SetNeighbor(v, sim.Staying)
	ctx := &ctxStub{self: u, mode: sim.Staying}
	deliver(p, ctx, LabelForward, v, sim.Leaving)
	if len(p.Neighbors()) != 0 || len(ctx.sentTo(v, LabelForward)) != 1 {
		t.Fatal("staying u must shed and reverse (lines 10-12)")
	}
}

func TestForwardStayingClaimAdoptionAndDelegation(t *testing.T) {
	u, v, a := refs3()
	// Anchorless leaving u adopts.
	p := New(VariantFDP)
	ctx := &ctxStub{self: u, mode: sim.Leaving}
	deliver(p, ctx, LabelForward, v, sim.Staying)
	if p.Anchor() != v {
		t.Fatal("anchorless leaving u must adopt v (line 18)")
	}
	// Anchored leaving u delegates to the anchor.
	p2 := New(VariantFDP)
	p2.SetAnchor(a, sim.Staying)
	ctx2 := &ctxStub{self: u, mode: sim.Leaving}
	deliver(p2, ctx2, LabelForward, v, sim.Staying)
	if len(ctx2.sentTo(a, LabelForward)) != 1 {
		t.Fatal("anchored leaving u must delegate v to anchor (line 16)")
	}
	// Staying u stores.
	p3 := New(VariantFDP)
	ctx3 := &ctxStub{self: u, mode: sim.Staying}
	deliver(p3, ctx3, LabelForward, v, sim.Staying)
	if p3.Neighbors()[v] != sim.Staying {
		t.Fatal("staying u must store v (line 20)")
	}
}

func TestForwardClearsLeavingAnchor(t *testing.T) {
	u, a, _ := refs3()
	p := New(VariantFDP)
	p.SetAnchor(a, sim.Staying)
	ctx := &ctxStub{self: u, mode: sim.Leaving}
	deliver(p, ctx, LabelForward, a, sim.Leaving)
	if !p.Anchor().IsNil() {
		t.Fatal("forward(anchor) claiming leaving must clear the anchor (lines 1-2)")
	}
	// And then falls through: claim leaving + mode leaving + anchor now ⊥:
	// bounce forward(u) to a.
	if len(ctx.sentTo(a, LabelForward)) != 1 {
		t.Fatal("cleared-anchor fallthrough must bounce forward(u)")
	}
}

func TestUnknownLabelAndMalformedIgnored(t *testing.T) {
	u, v, _ := refs3()
	p := New(VariantFDP)
	ctx := &ctxStub{self: u, mode: sim.Staying}
	p.Deliver(ctx, sim.NewMessage("bogus", sim.RefInfo{Ref: v, Mode: sim.Staying}))
	p.Deliver(ctx, sim.NewMessage(LabelPresent)) // no refs
	if len(p.Neighbors()) != 0 || len(ctx.sent) != 0 {
		t.Fatal("unknown/malformed messages must be ignored")
	}
}

func TestRefsIncludesAnchor(t *testing.T) {
	u, v, a := refs3()
	_ = u
	p := New(VariantFDP)
	p.SetNeighbor(v, sim.Staying)
	p.SetAnchor(a, sim.Staying)
	rs := p.Refs()
	if len(rs) != 2 {
		t.Fatalf("Refs must include N and anchor, got %v", rs)
	}
	bs := p.Beliefs()
	if len(bs) != 2 {
		t.Fatalf("Beliefs must include N and anchor, got %v", bs)
	}
}

func TestVariantAccessors(t *testing.T) {
	if New(VariantFDP).UsesSleep() || !New(VariantFSP).UsesSleep() {
		t.Fatal("UsesSleep wrong")
	}
	if VariantFDP.String() != "FDP" || VariantFSP.String() != "FSP" {
		t.Fatal("Variant names wrong")
	}
}

func TestAccessorsAndClone(t *testing.T) {
	u, v, a := refs3()
	_ = u
	p := New(VariantFSP)
	if p.Variant() != VariantFSP {
		t.Fatal("Variant accessor wrong")
	}
	p.SetNeighbor(v, sim.Staying)
	p.SetNeighbor(ref.Nil, sim.Staying) // ⊥ must be ignored
	p.SetAnchor(a, sim.Leaving)
	if len(p.Neighbors()) != 1 {
		t.Fatal("⊥ stored as neighbor")
	}
	p.RemoveNeighbor(v)
	if len(p.Neighbors()) != 0 {
		t.Fatal("RemoveNeighbor broken")
	}
	p.SetNeighbor(v, sim.Leaving)
	c := p.CloneProtocol().(*Proc)
	if c.Variant() != VariantFSP || c.Anchor() != a || c.Neighbors()[v] != sim.Leaving {
		t.Fatal("clone incomplete")
	}
	c.SetNeighbor(v, sim.Staying)
	if p.Neighbors()[v] != sim.Leaving {
		t.Fatal("clone not independent")
	}
	if p.FingerprintState() == c.FingerprintState() {
		t.Fatal("fingerprint must reflect belief changes")
	}
}
