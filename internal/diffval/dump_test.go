package diffval

import (
	"strings"
	"testing"
	"time"

	"fdp/internal/churn"
	"fdp/internal/oracle"
	"fdp/internal/sim"
)

// TestDumpJoinableByCausalID is the regression test for the causal
// coordinates in divergence dumps: both engines' trace renderings must
// carry cid= (and the delivery lines msg=), so a cross-engine disagreement
// can be aligned event by event — and joined against journals — instead of
// eyeballed. An earlier revision dumped events without identities, leaving
// the two dumps uncorrelatable.
func TestDumpJoinableByCausalID(t *testing.T) {
	cfg := Config{
		Scenario: churn.Config{
			N: 10, Topology: churn.TopoLine, LeaveFraction: 0.3,
			Pattern: churn.LeaveRandom, Oracle: oracle.Single{},
		},
		TraceK: 4096,
	}
	scn := cfg.Scenario
	scn.Seed = 5

	_, seqTrace, _ := runSequential(cfg, scn, sim.FDP, 50000, 5)
	_, concTrace, _ := runConcurrent(cfg, scn, sim.FDP, 10*time.Second, time.Millisecond, 5)

	for name, tr := range map[string]string{"sequential": seqTrace, "concurrent": concTrace} {
		if !strings.Contains(tr, "cid=") {
			t.Errorf("%s trace lacks causal IDs:\n%.400s", name, tr)
		}
		if !strings.Contains(tr, "clock=") {
			t.Errorf("%s trace lacks Lamport clocks:\n%.400s", name, tr)
		}
		if !strings.Contains(tr, "msg=") {
			t.Errorf("%s trace lacks message identities:\n%.400s", name, tr)
		}
	}

	v := Verdict{Seed: 5, SequentialTrace: seqTrace, ConcurrentTrace: concTrace}
	if dump := v.Dump(); !strings.Contains(dump, "cid=") {
		t.Errorf("Verdict.Dump lost the causal IDs:\n%.400s", dump)
	}
}
