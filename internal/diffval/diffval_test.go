package diffval

import (
	"bytes"
	"testing"
	"time"

	"fdp/internal/churn"
	"fdp/internal/core"
	"fdp/internal/faults"
	"fdp/internal/oracle"
	"fdp/internal/parallel"
	"fdp/internal/sim"
	"fdp/internal/trace"
)

func fdpConfig() Config {
	return Config{
		Scenario: churn.Config{
			N: 10, Topology: churn.TopoRandom, LeaveFraction: 0.4,
			Pattern: churn.LeaveRandom,
			Corrupt: churn.Corruption{FlipBeliefs: 0.3, RandomAnchors: 0.3, JunkMessages: 4},
			Variant: core.VariantFDP, Oracle: oracle.Single{},
		},
	}
}

func fspConfig() Config {
	return Config{
		Scenario: churn.Config{
			N: 8, Topology: churn.TopoRandom, LeaveFraction: 0.5,
			Pattern: churn.LeaveRandom,
			Corrupt: churn.Corruption{FlipBeliefs: 0.25, JunkMessages: 3},
			Variant: core.VariantFSP,
		},
	}
}

func assertAgreement(t *testing.T, name string, vs []Verdict, wantConverged bool) {
	t.Helper()
	for _, v := range vs {
		if !v.Agree() {
			t.Errorf("%s seed %d: engines disagree:\n  sequential %+v\n  concurrent %+v",
				name, v.Seed, v.Sequential, v.Concurrent)
			continue
		}
		if v.Sequential.SafetyViolated {
			t.Errorf("%s seed %d: safety violated: %+v", name, v.Seed, v.Sequential)
		}
		if wantConverged && !v.Sequential.Converged {
			t.Errorf("%s seed %d: no convergence: seq %+v conc %+v",
				name, v.Seed, v.Sequential, v.Concurrent)
		}
		if wantConverged && !v.Sequential.LeaversSettled {
			t.Errorf("%s seed %d: leavers not settled: %+v", name, v.Seed, v.Sequential)
		}
	}
}

// The tentpole check: 30 FDP seeds with corrupted initial states must
// produce identical verdicts on both engines — converged, safe, all leavers
// gone, staying components preserved.
func TestDifferentialFDP(t *testing.T) {
	vs := RunSeeds(fdpConfig(), 30)
	assertAgreement(t, "fdp", vs, true)
	for _, v := range vs {
		want := goneWanted(fdpConfig(), v.Seed)
		if v.Concurrent.Gone != want {
			t.Errorf("fdp seed %d: concurrent gone=%d, want %d leavers departed", v.Seed, v.Concurrent.Gone, want)
		}
	}
}

// 20 FSP seeds: no exits on either side, every leaver hibernating.
func TestDifferentialFSP(t *testing.T) {
	vs := RunSeeds(fspConfig(), 20)
	assertAgreement(t, "fsp", vs, true)
	for _, v := range vs {
		if v.Sequential.Gone != 0 || v.Concurrent.Gone != 0 {
			t.Errorf("fsp seed %d: FSP must not produce gone processes: %+v / %+v",
				v.Seed, v.Sequential, v.Concurrent)
		}
	}
}

// A mid-run transient fault must not break the agreement: both engines are
// struck with the same fault class and both must re-converge safely.
func TestDifferentialWithStrike(t *testing.T) {
	cfg := fdpConfig()
	cfg.Strike = &faults.Config{FlipBeliefs: 0.5, ScrambleAnchors: 0.5, JunkMessages: 5}
	cfg.StrikeAfter = 60
	vs := RunSeeds(cfg, 8)
	assertAgreement(t, "strike", vs, true)
}

// The deadline must stay observable across sequential wait phases: when
// the strike-budget wait consumes the whole budget, the convergence wait
// must still return promptly instead of ticking forever on a drained
// one-shot timer channel.
func TestWaitForSharedDeadlineBoundsBothPhases(t *testing.T) {
	deadline := make(chan struct{})
	timer := time.AfterFunc(5*time.Millisecond, func() { close(deadline) })
	defer timer.Stop()

	never := func() bool { return false }
	if waitFor(never, time.Millisecond, deadline) {
		t.Fatal("first phase: cond never holds, waitFor must report false")
	}
	done := make(chan bool, 1)
	go func() { done <- waitFor(never, time.Millisecond, deadline) }()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("second phase: cond never holds, waitFor must report false")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("second phase hung: expired deadline not observed after the first phase consumed it")
	}
}

// goneWanted recomputes the scenario's leaver count for a seed.
func goneWanted(cfg Config, seed int64) uint64 {
	scn := cfg.Scenario
	scn.Seed = seed
	return uint64(churn.Build(scn).Leaving.Len())
}

// MirrorWorld must transplant the full state: modes, protocol clones (not
// aliases), sleep states, and channel contents.
func TestMirrorWorldTransplantsState(t *testing.T) {
	scn := fspConfig().Scenario
	scn.Seed = 3
	scn.Corrupt.AsleepLeavers = 1.0
	s := churn.Build(scn)
	rt := MirrorWorld(s.World, nil)

	w := rt.Freeze()
	if len(w.Refs()) != len(s.World.Refs()) {
		t.Fatalf("process count differs: %d vs %d", len(w.Refs()), len(s.World.Refs()))
	}
	for _, r := range s.World.Refs() {
		if w.ModeOf(r) != s.World.ModeOf(r) {
			t.Fatalf("mode of %v differs", r)
		}
		if w.LifeOf(r) != s.World.LifeOf(r) {
			t.Fatalf("life of %v differs: %v vs %v", r, w.LifeOf(r), s.World.LifeOf(r))
		}
		if got, want := w.ChannelLen(r), s.World.ChannelLen(r); got != want {
			t.Fatalf("channel of %v differs: %d vs %d", r, got, want)
		}
	}
	// The transplant must be a clone: corrupting the runtime's copy must not
	// leak back into the source world's protocol state.
	r0 := s.Nodes[0]
	extra := s.Space.New()
	rt.Mutate(func(v *parallel.MutableView) {
		v.ProtocolOf(r0).(*core.Proc).SetNeighbor(extra, sim.Staying)
	})
	for _, held := range s.Procs[r0].Refs() {
		if held == extra {
			t.Fatal("MirrorWorld aliased protocol state instead of cloning it")
		}
	}
}

// A wave train must hit both engines (same wave seeds) and the engines must
// still agree on the verdict.
func TestDifferentialWithWaveTrain(t *testing.T) {
	cfg := fdpConfig()
	cfg.Waves = []faults.Wave{
		{Config: faults.Config{FlipBeliefs: 0.4, JunkMessages: 3}, After: 60},
		{Config: faults.Config{ScrambleAnchors: 0.5, DuplicateMessages: 2}, After: 200},
	}
	assertAgreement(t, "wave-train", RunSeeds(cfg, 4), true)
}

// The sequential side of a verdict must be reproducible from its journal:
// Run with a Journal writer emits a replayable journal whose replay is
// byte-identical, including the strike steps.
func TestRunJournalReplays(t *testing.T) {
	cfg := fdpConfig()
	cfg.Waves = []faults.Wave{{Config: faults.Config{FlipBeliefs: 0.5, JunkMessages: 4}, After: 80}}
	var buf bytes.Buffer
	cfg.Journal = &buf
	v := Run(cfg, 3)
	hdr, recs, err := trace.ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("journal unreadable: %v", err)
	}
	if len(hdr.Scenario.Strikes) != 1 {
		t.Fatalf("journal strikes = %+v", hdr.Scenario.Strikes)
	}
	if got := uint64(len(recs)); got == 0 || v.Sequential.Steps == 0 {
		t.Fatalf("empty journal (%d recs, %d steps)", got, v.Sequential.Steps)
	}
	div, err := trace.VerifyReplay(hdr, recs)
	if err != nil {
		t.Fatalf("VerifyReplay: %v", err)
	}
	if div != nil {
		t.Fatalf("diffval journal diverged on replay: %+v", div)
	}
	// Determinism: journaling the same seed again is byte-identical.
	var again bytes.Buffer
	cfg.Journal = &again
	Run(cfg, 3)
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("re-running the same seed changed the journal bytes")
	}
}

// Named schedulers change the explored sequential schedule but never the
// verdict agreement.
func TestDifferentialNamedSchedulers(t *testing.T) {
	for _, name := range []string{"fifo", "rounds", "adversarial"} {
		cfg := fdpConfig()
		cfg.Scheduler = name
		assertAgreement(t, "scheduler-"+name, RunSeeds(cfg, 2), true)
	}
}
