package diffval

import (
	"strings"
	"testing"
	"time"

	"fdp/internal/churn"
	"fdp/internal/core"
	"fdp/internal/oracle"
	"fdp/internal/sim"
)

// TestEventKindParity is the differential trace check of the obs layer:
// for an identical scenario both engines must emit the same event
// vocabulary. Schedule-dependent kinds (timeout, send, deliver) may differ
// in magnitude — the engines legally explore different schedules — but
// both must emit them, and the schedule-independent exit count must match
// exactly (one exit per leaver on every admissible schedule).
func TestEventKindParity(t *testing.T) {
	scn := churn.Config{
		N: 12, Topology: churn.TopoRandom, LeaveFraction: 0.5, Pattern: churn.LeaveRandom,
		Corrupt: churn.Corruption{FlipBeliefs: 0.3, RandomAnchors: 0.3, JunkMessages: 4},
		Variant: core.VariantFDP, Oracle: oracle.Single{}, Seed: 11,
	}

	// Sequential engine: record every event (capacity above any plausible
	// event count for this scenario size).
	seq := churn.Build(scn)
	rec := sim.NewRecorder(1 << 20)
	rec.Attach(seq.World)
	res := sim.Run(seq.World, sim.NewRandomScheduler(11, 256), sim.RunOptions{
		Variant: sim.FDP, MaxSteps: 400000, CheckSafety: true,
	})
	if !res.Converged {
		t.Fatalf("sequential run did not converge: %+v", res)
	}
	seqCounts := rec.CountByKind()

	// Concurrent engine, same scenario build.
	conc := churn.Build(scn)
	rt := MirrorWorld(conc.World, scn.Oracle)
	if !rt.RunUntil(func(w *sim.World) bool { return w.Legitimate(sim.FDP) },
		time.Millisecond, 30*time.Second) {
		t.Fatal("concurrent run did not converge")
	}
	concCounts := rt.EventKindCounts()

	// Exact agreement on the schedule-independent series.
	if uint64(seqCounts[sim.EvExit]) != concCounts[sim.EvExit] {
		t.Fatalf("exit counts differ: sequential %d, concurrent %d",
			seqCounts[sim.EvExit], concCounts[sim.EvExit])
	}
	// Tolerance check on the schedule-dependent series: both engines must
	// emit the kind at all, and deliveries can never exceed what entered
	// the channels (sends minus drops plus initial junk).
	for _, k := range []sim.EventKind{sim.EvTimeout, sim.EvSend, sim.EvDeliver} {
		if seqCounts[k] == 0 {
			t.Errorf("sequential engine emitted no %v events", k)
		}
		if concCounts[k] == 0 {
			t.Errorf("concurrent engine emitted no %v events", k)
		}
	}
	initialJunk := uint64(scn.Corrupt.JunkMessages)
	if max := concCounts[sim.EvSend] - concCounts[sim.EvDrop] + initialJunk; concCounts[sim.EvDeliver] > max {
		t.Errorf("concurrent deliveries %d exceed enqueued messages %d",
			concCounts[sim.EvDeliver], max)
	}
	if rt.KindCount(sim.EvSend) != concCounts[sim.EvSend] {
		t.Errorf("KindCount disagrees with EventKindCounts: %d vs %d",
			rt.KindCount(sim.EvSend), concCounts[sim.EvSend])
	}
}

// TestTracesFilledOnDisagreementPlumbing drives both engine runners
// directly and pins that each produces a non-empty last-K dump — the
// material Run copies into the Verdict when verdicts diverge — and that an
// agreeing Run leaves the Verdict traces empty.
func TestTracesFilledOnDisagreementPlumbing(t *testing.T) {
	cfg := fdpConfig()
	scn := cfg.Scenario
	scn.Seed = 3

	seqOut, seqTrace, _ := runSequential(cfg, scn, sim.FDP, 400000, 3)
	if !seqOut.Converged {
		t.Fatalf("sequential runner did not converge: %+v", seqOut)
	}
	if seqTrace == "" || !strings.Contains(seqTrace, "exit") {
		t.Fatalf("sequential trace missing exit events:\n%s", seqTrace)
	}
	concOut, concTrace, _ := runConcurrent(cfg, scn, sim.FDP, 30*time.Second, time.Millisecond, 3)
	if !concOut.Converged {
		t.Fatalf("concurrent runner did not converge: %+v", concOut)
	}
	if concTrace == "" || !strings.Contains(concTrace, "exit") {
		t.Fatalf("concurrent trace missing exit events:\n%s", concTrace)
	}

	v := Run(cfg, 3)
	if !v.Agree() {
		t.Fatalf("engines unexpectedly disagreed: %+v", v)
	}
	if v.SequentialTrace != "" || v.ConcurrentTrace != "" || v.Dump() != "" {
		t.Fatal("agreeing verdict should carry no traces")
	}
	// The Dump rendering itself, on a synthetic disagreement.
	v.SequentialTrace, v.ConcurrentTrace = seqTrace, concTrace
	if d := v.Dump(); !strings.Contains(d, "diverged") || !strings.Contains(d, "exit") {
		t.Fatalf("Dump rendering incomplete:\n%s", d)
	}
}
