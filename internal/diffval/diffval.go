// Package diffval is the differential cross-validation harness: it runs the
// SAME scenario (topology, churn, corruption, optional mid-run fault
// strike) on both execution engines — the sequential simulator (sim.World,
// one legal schedule at a time) and the concurrent runtime
// (parallel.Runtime, true parallelism with real mailboxes) — and compares
// their safety and liveness VERDICTS.
//
// The two engines cannot be compared step-by-step: the concurrent runtime
// explores schedules the sequential driver never draws, and vice versa. But
// the paper's guarantees are schedule-independent — Lemma 2 (relevant
// processes stay weakly connected per initial component) and Lemma 3 (every
// leaving process eventually departs) hold for EVERY admissible schedule —
// so the engines must agree on the outcome classification: converged or
// not, safety intact or violated, leavers settled or not, staying
// components preserved or not. Any disagreement is a bug in one of the
// engines (historically: in the concurrent one; this harness flushed out
// the frozen-snapshot re-seal bug, the mailbox close that discarded
// in-flight references, and the missing drop accounting in parallel sends).
package diffval

import (
	"fmt"
	"io"
	"time"

	"fdp/internal/churn"
	"fdp/internal/core"
	"fdp/internal/faults"
	"fdp/internal/obs"
	"fdp/internal/parallel"
	"fdp/internal/ref"
	"fdp/internal/sim"
	"fdp/internal/trace"
)

// Config describes one differential scenario. The same Scenario config is
// built independently for each engine; churn.Build is deterministic per
// seed and ref.Space hands out identical references, so both sides start
// from bit-identical states.
type Config struct {
	// Scenario is the churn configuration; its Seed field is overwritten by
	// the per-run seed.
	Scenario churn.Config
	// MaxSteps bounds the sequential run (0 = a generous default).
	MaxSteps int
	// Timeout bounds the concurrent run (0 = 20s).
	Timeout time.Duration
	// Poll is the concurrent legitimacy-polling interval (0 = 1ms).
	Poll time.Duration
	// Strike, if non-nil, injects a mid-run transient fault on both sides.
	// Legacy single-wave form: equivalent to one Waves entry at StrikeAfter.
	Strike *faults.Config
	// StrikeAfter is the strike point: sequential steps on the simulator,
	// executed events on the runtime. Only meaningful with Strike.
	StrikeAfter int
	// Waves is the general form of Strike: a train of mid-run fault waves,
	// each fired once the engine reaches its After point (sequential steps /
	// concurrent events), with injector seeds faults.WaveSeed(seed, i) on
	// BOTH engines. Waves and Strike compose; Strike is prepended.
	Waves []faults.Wave
	// Scheduler names the sequential scheduler (trace.SchedulerByName);
	// empty selects the default random scheduler. The concurrent engine has
	// no scheduler — its interleavings come from the machine.
	Scheduler string
	// Journal, when non-nil, receives the sequential run as a replayable
	// trace journal (header + records, trace.WriteJournal format) with every
	// fired wave recorded at the step it actually struck. Replaying that
	// journal byte-identically reproduces the sequential side of the verdict.
	Journal io.Writer
	// TraceK is how many recent events each engine retains for the
	// dump-on-disagreement diagnostics (0 = 64, negative = disabled).
	TraceK int
	// StallSteps enables the sequential liveness watchdog: every StallSteps
	// executed steps, a window with remaining leavers and no settles is
	// classified (livelock / starvation / quiescent, see obs.StallKind) and
	// the first stall captures a flight-recorder snapshot. 0 disables.
	StallSteps int
	// StallWindow is the concurrent watchdog's wall-clock window, checked
	// from the legitimacy-polling loop. 0 disables.
	StallWindow time.Duration
	// FlightK bounds each engine's flight-recorder ring (0 =
	// trace.DefaultFlightCap). A ring that never wraps yields a snapshot
	// that is a complete, replayable prefix of the run.
	FlightK int
}

// waves flattens the legacy Strike/StrikeAfter pair and Waves into the
// wave train both engines apply.
func (c Config) waves() []faults.Wave {
	if c.Strike == nil {
		return c.Waves
	}
	out := make([]faults.Wave, 0, len(c.Waves)+1)
	out = append(out, faults.Wave{Config: *c.Strike, After: c.StrikeAfter})
	return append(out, c.Waves...)
}

// scheduler resolves the sequential scheduler. The default keeps the
// harness's historical random scheduler; named schedulers come from the
// trace registry so journal headers name what actually ran.
func (c Config) scheduler(seed int64) (sim.Scheduler, string) {
	if c.Scheduler == "" {
		return sim.NewRandomScheduler(seed, 256), "random"
	}
	sched, err := trace.SchedulerByName(c.Scheduler, seed)
	if err != nil {
		panic(fmt.Sprintf("diffval: %v", err))
	}
	return sched, c.Scheduler
}

func (c Config) traceK() int {
	if c.TraceK < 0 {
		return 0
	}
	if c.TraceK == 0 {
		return 64
	}
	return c.TraceK
}

// Outcome classifies one engine's terminal state.
type Outcome struct {
	// Converged reports a legitimate state within the budget with safety
	// intact.
	Converged bool
	// SafetyViolated reports a Lemma 2 violation: some relevant process
	// became disconnected from its initial component. Reference loss is
	// irreversible (references spread only by copy-store-send along existing
	// PG edges), so a terminal-state check is equivalent to a continuous one.
	SafetyViolated bool
	// Gone counts departed processes (FDP exits; always 0 for FSP).
	Gone uint64
	// LeaversSettled reports the Lemma 3 goal: every initial leaver is gone
	// (FDP) or hibernating (FSP).
	LeaversSettled bool
	// StayingPreserved reports that the staying processes of each initial
	// component still form one weakly connected cluster.
	StayingPreserved bool
	// Steps is the executed sequential steps / concurrent events
	// (informational; never compared).
	Steps uint64
	// Stall is the watchdog's classification ("livelock", "starvation",
	// "quiescent") when the run failed to converge and a stall was
	// detected; empty otherwise. Informational, never compared — the two
	// engines legitimately stall in different shapes (the sequential
	// scheduler can starve a queue the parallel shards drain).
	Stall string `json:"stall,omitempty"`
}

// StallReport is the evidence captured at an engine's FIRST stall verdict:
// the classification plus a flight-recorder snapshot, rendered the same
// way a finished run's artifacts are. For the sequential engine a
// Complete snapshot is a replayable journal prefix (Header names the
// scenario; trace.VerifyReplay accepts it); the concurrent engine's
// snapshot is one real interleaving, joinable and diffable but not
// replayable.
type StallReport struct {
	// Verdict is the watchdog classification and its window evidence.
	Verdict obs.StallVerdict
	// Header frames Flight as a journal fragment for WriteJournal /
	// fdpreplay.
	Header trace.Header
	// Flight is the flight-recorder snapshot, oldest event first.
	Flight []trace.Record
	// Complete reports the ring never wrapped: Flight is the entire event
	// stream from step 0.
	Complete bool
	// Spans renders the per-leaver departure span trees of the snapshot —
	// the causal story of how far each stuck departure got.
	Spans string
}

// Verdict pairs the two engines' outcomes for one seed.
type Verdict struct {
	Seed       int64
	Sequential Outcome
	Concurrent Outcome

	// SequentialStall and ConcurrentStall carry each engine's first stall
	// report when its watchdog was enabled and fired; nil otherwise.
	SequentialStall *StallReport
	ConcurrentStall *StallReport

	// SequentialTrace and ConcurrentTrace hold the last-K trace events of
	// each engine (sim.FormatEvents rendering), filled in ONLY when the
	// verdicts disagree — the post-mortem a bare "engines diverged on seed
	// 17" never gave. Empty on agreement.
	SequentialTrace string
	ConcurrentTrace string
}

// Dump renders the disagreement diagnostics (empty when the engines
// agreed).
func (v Verdict) Dump() string {
	if v.SequentialTrace == "" && v.ConcurrentTrace == "" {
		return ""
	}
	return fmt.Sprintf("seed %d diverged\nsequential %+v\nlast events:\n%sconcurrent %+v\nlast events:\n%s",
		v.Seed, v.Sequential, v.SequentialTrace, v.Concurrent, v.ConcurrentTrace)
}

// Agree reports whether the engines reached the same classification. Steps
// is excluded: schedule lengths legitimately differ.
func (v Verdict) Agree() bool {
	a, b := v.Sequential, v.Concurrent
	return a.Converged == b.Converged &&
		a.SafetyViolated == b.SafetyViolated &&
		a.Gone == b.Gone &&
		a.LeaversSettled == b.LeaversSettled &&
		a.StayingPreserved == b.StayingPreserved
}

// MirrorWorld builds a concurrent runtime from a sequential world: the
// world is cloned (protocol states, modes, sleep states, channel contents)
// and the clones are transplanted, so the runtime starts from exactly the
// state w is in while w itself stays usable. Gone processes are omitted —
// the runtime, like the model, has no notion of a struct for a departed
// process.
func MirrorWorld(w *sim.World, orc parallel.Oracle) *parallel.Runtime {
	src := w.Clone()
	rt := parallel.NewRuntime(orc)
	for _, r := range src.Refs() {
		if src.LifeOf(r) == sim.Gone {
			continue
		}
		rt.AddProcess(r, src.ModeOf(r), src.ProtocolOf(r))
	}
	for _, r := range src.Refs() {
		if src.LifeOf(r) == sim.Gone {
			continue
		}
		if src.LifeOf(r) == sim.Asleep {
			rt.ForceAsleep(r)
		}
		for _, m := range src.ChannelSnapshot(r) {
			rt.Enqueue(r, m)
		}
	}
	return rt
}

// Run executes the scenario on both engines and returns the paired verdict.
func Run(cfg Config, seed int64) Verdict {
	scn := cfg.Scenario
	scn.Seed = seed
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 400000
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 20 * time.Second
	}
	poll := cfg.Poll
	if poll <= 0 {
		poll = time.Millisecond
	}
	variant := sim.FDP
	if scn.Variant == core.VariantFSP {
		variant = sim.FSP
	}
	seqOut, seqTrace, seqStall := runSequential(cfg, scn, variant, maxSteps, seed)
	concOut, concTrace, concStall := runConcurrent(cfg, scn, variant, timeout, poll, seed)
	v := Verdict{Seed: seed, Sequential: seqOut, Concurrent: concOut,
		SequentialStall: seqStall, ConcurrentStall: concStall}
	if !v.Agree() {
		// Keep the dumps only on divergence: a Verdict slice over 50+ seeds
		// stays small, and the traces point straight at the diverging run.
		v.SequentialTrace, v.ConcurrentTrace = seqTrace, concTrace
	}
	return v
}

// SequentialOutcome runs only the sequential engine of the scenario —
// exactly the sequential side of Run (same scheduler, same wave seeds, same
// journal hook), without paying for a concurrent run. The fuzz shrinker uses
// it as the fast still-failing predicate for sequential-side failures.
func SequentialOutcome(cfg Config, seed int64) Outcome {
	scn := cfg.Scenario
	scn.Seed = seed
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 400000
	}
	variant := sim.FDP
	if scn.Variant == core.VariantFSP {
		variant = sim.FSP
	}
	out, _, _ := runSequential(cfg, scn, variant, maxSteps, seed)
	return out
}

// RunSeeds runs seeds 0..n-1 and returns the verdicts.
func RunSeeds(cfg Config, n int) []Verdict {
	out := make([]Verdict, 0, n)
	for seed := int64(0); seed < int64(n); seed++ {
		out = append(out, Run(cfg, seed))
	}
	return out
}

// Disagreements filters the verdicts where the engines diverged.
func Disagreements(vs []Verdict) []Verdict {
	var out []Verdict
	for _, v := range vs {
		if !v.Agree() {
			out = append(out, v)
		}
	}
	return out
}

func runSequential(cfg Config, scn churn.Config, variant sim.Variant, maxSteps int, seed int64) (Outcome, string, *StallReport) {
	s := churn.Build(scn)
	leavers := s.LeavingNodes()
	sched, schedName := cfg.scheduler(seed)
	opts := sim.RunOptions{Variant: variant, CheckSafety: true}

	var rec *sim.Recorder
	if k := cfg.traceK(); k > 0 {
		rec = sim.NewRecorder(k)
		rec.Attach(s.World)
	}
	var recs []trace.Record
	if cfg.Journal != nil {
		s.World.AddEventHook(func(e sim.Event) { recs = append(recs, trace.FromEvent(e)) })
	}

	waves := cfg.waves()
	var stall *StallReport
	fired := make([]trace.StrikeSpec, 0, len(waves))
	if cfg.StallSteps > 0 {
		prog := obs.NewProgress(nil, "", leavers)
		flight := trace.NewFlight(cfg.FlightK)
		s.World.AddEventHook(flight.Record)
		s.World.AddEventHook(prog.NoteEvent)
		s.World.SetOracleHook(prog.NoteOracle)
		wd := obs.NewStepWatchdog(prog, cfg.StallSteps)
		w := s.World
		opts.OnStep = func(*sim.World) {
			v, stalled := wd.Tick(w.Steps(), func() int { return w.Stats().TotalInQueue })
			if stalled && stall == nil {
				fl, complete := flight.Snapshot()
				hs := trace.ScenarioFor(scn, schedName)
				hs.Strikes = append([]trace.StrikeSpec(nil), fired...)
				stall = &StallReport{
					Verdict:  v,
					Header:   trace.Header{Version: trace.Version, Engine: trace.EngineSim, Scenario: hs},
					Flight:   fl,
					Complete: complete,
					Spans:    trace.SpanTrees(trace.BuildSpansFor(fl, leaverNames(leavers))),
				}
			}
		}
	}
	var res sim.RunResult
	for i, wv := range waves {
		if wv.After > s.World.Steps() {
			opts.MaxSteps = wv.After
			res = sim.Run(s.World, sched, opts)
			if res.SafetyViolation != nil {
				break
			}
		}
		// After a strike the leavers set is unchanged (strikes corrupt
		// values, never modes), so Lemma 3 is still judged on `leavers`.
		faults.New(wv.Config, faults.WaveSeed(seed, i)).Strike(s.World)
		sp := trace.StrikeSpecFor(wv)
		sp.After = s.World.Steps()
		fired = append(fired, sp)
	}
	if res.SafetyViolation == nil {
		opts.MaxSteps = s.World.Steps() + maxSteps
		res = sim.Run(s.World, sched, opts)
	}
	if cfg.Journal != nil {
		hs := trace.ScenarioFor(scn, schedName)
		hs.Strikes = fired
		// A journal write failure surfaces on the reader side (truncated or
		// missing journal); the verdict itself is unaffected.
		_ = trace.WriteJournal(cfg.Journal,
			trace.Header{Version: trace.Version, Engine: trace.EngineSim, Scenario: hs}, recs)
	}

	out := Outcome{
		Converged:        res.Converged && res.SafetyViolation == nil,
		SafetyViolated:   res.SafetyViolation != nil,
		Gone:             goneCount(s.World, s.Nodes),
		LeaversSettled:   leaversSettledWorld(s.World, leavers, variant),
		StayingPreserved: res.SafetyViolation == nil && s.World.StayingComponentsPreserved(),
		Steps:            uint64(s.World.Steps()),
	}
	if !out.Converged && stall != nil {
		out.Stall = stall.Verdict.Kind.String()
	}
	dump := ""
	if rec != nil {
		dump = rec.Dump()
	}
	return out, dump, stall
}

func runConcurrent(cfg Config, scn churn.Config, variant sim.Variant, timeout, poll time.Duration, seed int64) (Outcome, string, *StallReport) {
	s := churn.Build(scn)
	leavers := s.LeavingNodes()
	rt := MirrorWorld(s.World, scn.Oracle)
	if k := cfg.traceK(); k > 0 {
		rt.EnableTrace(k)
	}
	var stall *StallReport
	var wd *obs.Watchdog
	var flight *trace.Flight
	if cfg.StallWindow > 0 {
		prog := obs.NewProgress(nil, "", leavers)
		flight = trace.NewFlight(cfg.FlightK)
		rt.SetEventSink(func(e sim.Event) {
			flight.Record(e)
			prog.NoteEvent(e)
		})
		rt.SetOracleHook(prog.NoteOracle)
		wd = obs.NewWatchdog(prog, cfg.StallWindow)
	}
	rt.Start()
	// checkStall runs from the single polling goroutine below; the runtime
	// has no cheap queue-depth counter, so pending is approximated from the
	// always-on atomics (sends that neither delivered nor dropped).
	checkStall := func() {
		if wd == nil {
			return
		}
		pending := func() int {
			return int(rt.Sent() - rt.KindCount(sim.EvDeliver) - rt.Dropped())
		}
		if v, stalled := wd.Tick(rt.Events(), pending); stalled && stall == nil {
			fl, complete := flight.Snapshot()
			hs := trace.ScenarioFor(scn, "")
			stall = &StallReport{
				Verdict:  v,
				Header:   trace.Header{Version: trace.Version, Engine: trace.EngineRuntime, Scenario: hs},
				Flight:   fl,
				Complete: complete,
				Spans:    trace.SpanTrees(trace.BuildSpansFor(fl, leaverNames(leavers))),
			}
		}
	}

	// One deadline bounds both wait phases — the same total budget the
	// replaced wall-clock loop used. A closed channel, unlike a one-shot
	// time.After value, stays observable: if the strike-budget wait burns
	// the whole budget, the convergence wait below still sees the expiry
	// instead of ticking forever.
	deadline := make(chan struct{})
	timer := time.AfterFunc(timeout, func() { close(deadline) })
	defer timer.Stop()
	for i, wv := range cfg.waves() {
		// The concurrent strike point: the same event budget the sequential
		// side used as a step budget.
		waitFor(func() bool { return rt.Events() >= uint64(wv.After) }, poll, deadline)
		faults.New(wv.Config, faults.WaveSeed(seed, i)).StrikeRuntime(rt)
	}

	converged := waitFor(func() bool {
		checkStall()
		return rt.Freeze().Legitimate(variant)
	}, poll, deadline)
	rt.Stop()
	final := rt.Freeze()

	violated := !final.RelevantComponentsIntact()
	out := Outcome{
		Converged:        converged && !violated,
		SafetyViolated:   violated,
		Gone:             rt.Gone(),
		LeaversSettled:   leaversSettledRuntime(final, leavers, variant),
		StayingPreserved: !violated && final.StayingComponentsPreserved(),
		Steps:            rt.Events(),
	}
	if !out.Converged && stall != nil {
		out.Stall = stall.Verdict.Kind.String()
	}
	return out, sim.FormatEvents(rt.TraceEvents()), stall
}

// leaverNames renders the leaver set as journal proc names — the seeds a
// stall dump's span trees are built from (a stuck departure has no exit
// record to be discovered by).
func leaverNames(leavers []ref.Ref) []string {
	names := make([]string, len(leavers))
	for i, l := range leavers {
		names[i] = l.String()
	}
	return names
}

// waitFor re-evaluates cond every poll tick until it holds or deadline is
// closed, returning the final verdict (cond is re-checked once at expiry).
// A closed deadline makes waitFor return immediately, so sequential waits
// sharing one deadline all respect the same total budget.
func waitFor(cond func() bool, poll time.Duration, deadline <-chan struct{}) bool {
	if cond() {
		return true
	}
	if poll <= 0 {
		poll = time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		select {
		case <-deadline:
			return cond()
		case <-ticker.C:
			if cond() {
				return true
			}
		}
	}
}

func goneCount(w *sim.World, nodes []ref.Ref) uint64 {
	var n uint64
	for _, r := range nodes {
		if w.LifeOf(r) == sim.Gone {
			n++
		}
	}
	return n
}

// leaversSettledWorld checks Lemma 3 on the simulator's terminal state.
func leaversSettledWorld(w *sim.World, leavers []ref.Ref, variant sim.Variant) bool {
	if variant == sim.FDP {
		for _, r := range leavers {
			if w.LifeOf(r) != sim.Gone {
				return false
			}
		}
		return true
	}
	hib := w.Hibernating()
	for _, r := range leavers {
		if !hib.Has(r) {
			return false
		}
	}
	return true
}

// leaversSettledRuntime checks Lemma 3 on a frozen runtime snapshot, where
// gone processes are simply absent.
func leaversSettledRuntime(final *sim.World, leavers []ref.Ref, variant sim.Variant) bool {
	if variant == sim.FDP {
		for _, r := range leavers {
			if final.Has(r) {
				return false
			}
		}
		return true
	}
	hib := final.Hibernating()
	for _, r := range leavers {
		if !hib.Has(r) {
			return false
		}
	}
	return true
}
