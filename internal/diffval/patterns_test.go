package diffval

import (
	"testing"

	"fdp/internal/churn"
	"fdp/internal/core"
	"fdp/internal/oracle"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// The builder invariant behind Lemma 2's premise: every weakly connected
// component of the initial process graph keeps at least one staying process,
// no matter how adversarial the leaver-selection pattern is. The cut-vertex
// (articulation) pattern deliberately targets the processes whose removal
// disconnects the graph, and the neighborhood pattern marks an entire closed
// neighborhood as leaving except one survivor — both must still leave a
// stayer in every component, on the sequential engine's sealed component
// partition and on the concurrent runtime mirrored from the same world.
func TestLeavePatternsPreserveStayers(t *testing.T) {
	patterns := []churn.LeavePattern{
		churn.LeaveArticulation,
		churn.LeaveNeighborhood,
		churn.LeaveAllButOne,
	}
	fractions := []float64{0.4, 0.8, 1.0}
	sizes := []int{2, 3, 4, 7, 8, 16}
	built := 0
	for _, topo := range churn.Topologies() {
		for _, pat := range patterns {
			for _, n := range sizes {
				for _, frac := range fractions {
					for _, comps := range []int{0, 2} {
						for seed := int64(1); seed <= 3; seed++ {
							cfg := churn.Config{
								N: n, Topology: topo, LeaveFraction: frac,
								Pattern: pat, Variant: core.VariantFDP,
								Oracle: oracle.Single{}, Seed: seed,
								Components: comps,
							}
							s, err := churn.TryBuild(cfg)
							if err != nil {
								// Degenerate configs (hypercube at a
								// non-power-of-two size, a component split the
								// topology cannot host) are the builder's typed
								// rejections, not pattern failures.
								continue
							}
							built++
							checkStayers(t, s)
						}
					}
				}
			}
		}
	}
	if built < 100 {
		t.Fatalf("only %d configurations built; the sweep lost its coverage", built)
	}
}

// checkStayers asserts the invariant on both engines' view of the initial
// state.
func checkStayers(t *testing.T, s *churn.Scenario) {
	t.Helper()
	cfg := s.Config
	stayerIn := func(w *sim.World, comp []ref.Ref) bool {
		for _, r := range comp {
			if w.ModeOf(r) == sim.Staying {
				return true
			}
		}
		return false
	}
	for _, comp := range s.World.InitialComponents() {
		if !stayerIn(s.World, comp) {
			t.Fatalf("%v pattern=%s n=%d comps=%d seed=%d: sequential component %v has no staying process",
				cfg.Topology, cfg.Pattern, cfg.N, cfg.Components, cfg.Seed, comp)
		}
	}
	// Mirror onto the concurrent runtime and judge its own frozen view of
	// the process graph — the state the runtime's oracle coordinator would
	// seal at Start.
	rt := MirrorWorld(s.World, cfg.Oracle)
	frozen := rt.Freeze()
	for _, comp := range frozen.PG().WeaklyConnectedComponents() {
		if !stayerIn(frozen, comp) {
			t.Fatalf("%v pattern=%s n=%d comps=%d seed=%d: concurrent component %v has no staying process",
				cfg.Topology, cfg.Pattern, cfg.N, cfg.Components, cfg.Seed, comp)
		}
	}
}
