package transport

import (
	"fmt"
	"net"
	"sync"
	"time"

	"fdp/internal/obs"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// TCPConfig configures one node's endpoint of the wire transport.
type TCPConfig struct {
	// Self is this node's id; frames it sends carry it as the sender.
	Self NodeID
	// Listen is the address to accept peer connections on ("127.0.0.1:0"
	// picks a free port; Addr reports the bound address).
	Listen string
	// Peers maps every other node id to its listen address. Links dial
	// lazily, on the first frame.
	Peers map[NodeID]string
	// Handler receives inbound frames and locally synthesized bounces.
	// Calls arrive on transport goroutines.
	Handler Handler
	// Metrics, if non-nil, receives the per-link counters
	// (fdp_transport_frames_total, _bytes_total, _redials_total,
	// _bounces_total, labeled by link and direction).
	Metrics *obs.Registry

	// DialTimeout bounds one dial attempt (default 2s); WriteTimeout
	// bounds one frame write (default 5s). RedialBudget is how many
	// dial-and-write attempts a single frame gets before it bounces
	// (default 5); BackoffBase the delay after the first failed attempt
	// (default 25ms), doubling per attempt and capped at one second.
	DialTimeout  time.Duration
	WriteTimeout time.Duration
	RedialBudget int
	BackoffBase  time.Duration
}

// TCP is the wire transport: one listener for inbound frames, one lazily
// dialed, serially written link per peer. Frames are length-prefixed (see
// wire.go); a frame that cannot be written within the redial budget comes
// back to the local handler as a bounce, which is the transport-level
// failure detection the protocol's undeliverable path models.
type TCP struct {
	cfg TCPConfig
	ln  net.Listener

	mu    sync.Mutex
	links map[NodeID]*link
	conns map[net.Conn]struct{} // inbound, tracked so Close unblocks readers
	done  bool

	wg sync.WaitGroup
}

var _ Transport = (*TCP)(nil)

// outFrame is one queued frame plus what the writer needs to bounce it.
type outFrame struct {
	kind byte
	to   ref.Ref // data frames only
	msg  sim.Message
	buf  []byte
}

// link is the outbound half of one peer connection: a queue drained by one
// writer goroutine, which owns the conn and the redial state.
type link struct {
	t    *TCP
	peer NodeID
	addr string
	q    chan outFrame
	stop chan struct{}
	conn net.Conn // writer-goroutine private

	frames, bytes, redials, bounces *obs.Counter
}

// NewTCP opens the listener and starts the accept loop. Links to peers come
// up on first use.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	if cfg.Handler == nil {
		return nil, fmt.Errorf("transport: TCPConfig.Handler is required")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 5 * time.Second
	}
	if cfg.RedialBudget <= 0 {
		cfg.RedialBudget = 5
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 25 * time.Millisecond
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, err
	}
	t := &TCP{cfg: cfg, ln: ln,
		links: make(map[NodeID]*link), conns: make(map[net.Conn]struct{})}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address (useful with ":0").
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// SetPeer registers (or updates) a peer address before traffic to it
// starts. It exists for the ":0" bootstrap order — open every listener
// first, then exchange addresses. An already-dialed link keeps its address.
func (t *TCP) SetPeer(node NodeID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cfg.Peers == nil {
		t.cfg.Peers = make(map[NodeID]string)
	}
	t.cfg.Peers[node] = addr
}

// Send queues a data frame for the peer owning to. False means refused
// outright (closed transport, unknown peer, unencodable payload, or a full
// queue on an already-dead link) — the caller treats it as the model's drop
// path. True means queued; a later link failure surfaces as a bounce.
func (t *TCP) Send(node NodeID, to ref.Ref, msg sim.Message) bool {
	return t.enqueue(node, frameData, to, msg, nil)
}

// SendBounce returns an undeliverable message to its sending node. Best
// effort: a bounce that cannot be shipped is dropped (the sender's verify
// backoff re-probes gone peers anyway).
func (t *TCP) SendBounce(node NodeID, to ref.Ref, msg sim.Message) bool {
	return t.enqueue(node, frameBounce, to, msg, nil)
}

// SendControl ships an opaque control payload to one peer, best effort.
func (t *TCP) SendControl(node NodeID, payload []byte) bool {
	return t.enqueue(node, frameControl, ref.Nil, sim.Message{}, payload)
}

// BroadcastControl ships an opaque control payload to every peer.
func (t *TCP) BroadcastControl(payload []byte) {
	t.mu.Lock()
	peers := make([]NodeID, 0, len(t.cfg.Peers))
	for id := range t.cfg.Peers {
		peers = append(peers, id)
	}
	t.mu.Unlock()
	// Deterministic order costs nothing and keeps traces readable.
	for i := 1; i < len(peers); i++ {
		for j := i; j > 0 && peers[j] < peers[j-1]; j-- {
			peers[j], peers[j-1] = peers[j-1], peers[j]
		}
	}
	for _, id := range peers {
		t.SendControl(id, payload)
	}
}

func (t *TCP) enqueue(node NodeID, kind byte, to ref.Ref, msg sim.Message, payload []byte) bool {
	var body []byte
	var err error
	if kind == frameControl {
		body = append([]byte(nil), payload...)
	} else if body, err = encodeDataBody(to, msg); err != nil {
		return false
	}
	l := t.link(node)
	if l == nil {
		return false
	}
	f := outFrame{kind: kind, to: to, msg: msg, buf: encodeFrame(kind, t.cfg.Self, body)}
	select {
	case l.q <- f:
		return true
	default:
		// Queue full: the link is dead or badly behind. Refusing is the
		// honest answer — for data frames the caller's drop path runs the
		// sender's undeliverable callback immediately.
		return false
	}
}

// link returns (creating on first use) the outbound link to a peer.
func (t *TCP) link(node NodeID) *link {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return nil
	}
	if l, ok := t.links[node]; ok {
		return l
	}
	addr, ok := t.cfg.Peers[node]
	if !ok {
		return nil
	}
	l := &link{t: t, peer: node, addr: addr,
		q: make(chan outFrame, 4096), stop: make(chan struct{})}
	if r := t.cfg.Metrics; r != nil {
		lbl := fmt.Sprintf("{link=\"%d->%d\"}", t.cfg.Self, node)
		l.frames = r.Counter("fdp_transport_frames_total"+lbl, "frames written per link")
		l.bytes = r.Counter("fdp_transport_bytes_total"+lbl, "bytes written per link")
		l.redials = r.Counter("fdp_transport_redials_total"+lbl, "reconnect attempts per link")
		l.bounces = r.Counter("fdp_transport_bounces_total"+lbl, "frames bounced after redial budget per link")
	}
	t.links[node] = l
	t.wg.Add(1)
	go l.writeLoop()
	return l
}

// writeLoop drains the link's queue, dialing on demand and redialing with
// exponential backoff. One frame gets RedialBudget attempts; exhausting
// them bounces data frames to the local handler and drops the rest.
func (l *link) writeLoop() {
	defer l.t.wg.Done()
	defer func() {
		if l.conn != nil {
			l.conn.Close()
		}
	}()
	for {
		var f outFrame
		select {
		case <-l.stop:
			return
		case f = <-l.q:
		}
		if !l.writeFrame(f) {
			if f.kind == frameData {
				if l.bounces != nil {
					l.bounces.Inc()
				}
				l.t.cfg.Handler.HandleBounce(LocalBounce, f.to, f.msg)
			}
		}
	}
}

func (l *link) writeFrame(f outFrame) bool {
	backoff := l.t.cfg.BackoffBase
	for attempt := 0; attempt < l.t.cfg.RedialBudget; attempt++ {
		if attempt > 0 {
			if l.redials != nil {
				l.redials.Inc()
			}
			select {
			case <-l.stop:
				return false
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
		}
		if l.conn == nil {
			conn, err := net.DialTimeout("tcp", l.addr, l.t.cfg.DialTimeout)
			if err != nil {
				continue
			}
			l.conn = conn
		}
		l.conn.SetWriteDeadline(time.Now().Add(l.t.cfg.WriteTimeout))
		if _, err := l.conn.Write(f.buf); err != nil {
			// The write may have been torn mid-frame; the peer's reader
			// resynchronizes by dropping the connection, so a redial here
			// can retransmit a frame the peer already processed — that is
			// the duplicate-delivery case journals tolerate.
			l.conn.Close()
			l.conn = nil
			continue
		}
		if l.frames != nil {
			l.frames.Inc()
			l.bytes.Add(uint64(len(f.buf)))
		}
		return true
	}
	return false
}

// acceptLoop accepts peer connections and spawns a reader per connection.
func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.done {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.conns[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// readLoop parses frames off one inbound connection and dispatches them.
// Any framing error drops the connection — the peer's writer redials and
// retransmits, which is where duplicate deliveries come from.
func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
	}()
	var rx, rxBytes *obs.Counter
	for {
		kind, from, body, err := readFrame(conn)
		if err != nil {
			return
		}
		if t.cfg.Metrics != nil && rx == nil {
			lbl := fmt.Sprintf("{link=\"%d->%d\",dir=\"rx\"}", from, t.cfg.Self)
			rx = t.cfg.Metrics.Counter("fdp_transport_frames_total"+lbl, "frames read per link")
			rxBytes = t.cfg.Metrics.Counter("fdp_transport_bytes_total"+lbl, "bytes read per link")
		}
		if rx != nil {
			rx.Inc()
			rxBytes.Add(uint64(len(body)))
		}
		switch kind {
		case frameData, frameBounce:
			to, msg, err := decodeDataBody(body)
			if err != nil {
				return // poisoned stream; force the peer to retransmit
			}
			if kind == frameData {
				t.cfg.Handler.HandleDeliver(from, to, msg)
			} else {
				t.cfg.Handler.HandleBounce(from, to, msg)
			}
		case frameControl:
			t.cfg.Handler.HandleControl(from, body)
		default:
			return
		}
	}
}

// Close tears the transport down: the listener and every connection close,
// queued frames are abandoned, and all transport goroutines exit before
// Close returns.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return nil
	}
	t.done = true
	for _, l := range t.links {
		close(l.stop)
	}
	for c := range t.conns {
		c.Close()
	}
	t.mu.Unlock()
	err := t.ln.Close()
	t.wg.Wait()
	return err
}
