package transport

import (
	"fmt"
	"sync"

	"fdp/internal/ref"
	"fdp/internal/sim"
)

// Loopback connects any number of in-process nodes through the real wire
// codec: every Send seals the message into frame bytes and every delivery
// decodes them again, so a loopback run covers exactly the serialization
// path the TCP transport uses — minus the sockets. The node tests use it to
// check verdict parity between a multi-node run and the sequential
// simulator without binding ports.
//
// Chaos hooks make links misbehave deterministically: Drop turns a frame
// into an immediate bounce to its sender (a link failure detected at send
// time), Duplicate delivers a frame twice (a redial retransmitting a frame
// the peer already processed). Hooks are consulted on the sender's
// goroutine; set them before traffic starts.
type Loopback struct {
	mu    sync.Mutex
	ports []*Port

	// Drop, if set, is consulted per data frame; true bounces the frame
	// back to the sending port's handler instead of delivering it.
	Drop func(from, to NodeID, msg sim.Message) bool
	// Duplicate, if set, is consulted per data frame; true delivers the
	// frame twice.
	Duplicate func(from, to NodeID, msg sim.Message) bool
}

// NewLoopback returns an empty mesh; attach a port per node.
func NewLoopback() *Loopback { return &Loopback{} }

// Attach adds a node with the given handler and returns its transport
// endpoint. Node ids are assigned in attach order, starting at 0.
func (l *Loopback) Attach(h Handler) *Port {
	l.mu.Lock()
	defer l.mu.Unlock()
	p := &Port{l: l, id: NodeID(len(l.ports)), h: h}
	l.ports = append(l.ports, p)
	return p
}

func (l *Loopback) port(id NodeID) *Port {
	l.mu.Lock()
	defer l.mu.Unlock()
	if int(id) < 0 || int(id) >= len(l.ports) {
		return nil
	}
	p := l.ports[id]
	if p.closed {
		return nil
	}
	return p
}

// Port is one node's endpoint on a Loopback mesh.
type Port struct {
	l  *Loopback
	id NodeID
	h  Handler

	mu     sync.Mutex
	closed bool
}

var _ Transport = (*Port)(nil)

// ID returns the port's node id.
func (p *Port) ID() NodeID { return p.id }

// Send seals msg and delivers it to the target node's handler, applying the
// mesh's chaos hooks.
func (p *Port) Send(node NodeID, to ref.Ref, msg sim.Message) bool {
	body, err := encodeDataBody(to, msg)
	if err != nil {
		return false
	}
	dst := p.l.port(node)
	if dst == nil || p.isClosed() {
		return false
	}
	if p.l.Drop != nil && p.l.Drop(p.id, node, msg) {
		// The link "failed" with the frame in hand: the sender's handler
		// owes the original sender an undeliverable callback, exactly as
		// the TCP transport does when a redial budget runs out.
		p.h.HandleBounce(LocalBounce, to, msg)
		return true
	}
	n := 1
	if p.l.Duplicate != nil && p.l.Duplicate(p.id, node, msg) {
		n = 2
	}
	for i := 0; i < n; i++ {
		if !deliver(dst, frameData, p.id, body) {
			return false
		}
	}
	return true
}

// SendBounce seals the undeliverable message and returns it to the node
// that sent it.
func (p *Port) SendBounce(node NodeID, to ref.Ref, msg sim.Message) bool {
	body, err := encodeDataBody(to, msg)
	if err != nil {
		return false
	}
	dst := p.l.port(node)
	if dst == nil || p.isClosed() {
		return false
	}
	return deliver(dst, frameBounce, p.id, body)
}

// SendControl ships an opaque control payload to one peer.
func (p *Port) SendControl(node NodeID, payload []byte) bool {
	dst := p.l.port(node)
	if dst == nil || p.isClosed() {
		return false
	}
	return deliver(dst, frameControl, p.id, append([]byte(nil), payload...))
}

// BroadcastControl ships an opaque control payload to every other port.
func (p *Port) BroadcastControl(payload []byte) {
	p.l.mu.Lock()
	n := len(p.l.ports)
	p.l.mu.Unlock()
	for id := 0; id < n; id++ {
		if NodeID(id) != p.id {
			p.SendControl(NodeID(id), payload)
		}
	}
}

// Close detaches the port; frames to or from it are refused afterwards.
func (p *Port) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	return nil
}

func (p *Port) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// deliver round-trips the frame through the wire encoding and dispatches it
// on the destination handler, synchronously on the caller's goroutine.
func deliver(dst *Port, kind byte, from NodeID, body []byte) bool {
	// Encode and re-read the full frame so loopback traffic exercises the
	// exact byte path TCP uses; a codec asymmetry fails loudly here.
	gotKind, gotFrom, gotBody, err := readFrameBytes(encodeFrame(kind, from, body))
	if err != nil || gotKind != kind || gotFrom != from {
		panic(fmt.Sprintf("transport: loopback frame did not round-trip: %v", err))
	}
	switch kind {
	case frameData, frameBounce:
		to, msg, err := decodeDataBody(gotBody)
		if err != nil {
			panic(fmt.Sprintf("transport: loopback body did not round-trip: %v", err))
		}
		if kind == frameData {
			dst.h.HandleDeliver(from, to, msg)
		} else {
			dst.h.HandleBounce(from, to, msg)
		}
	case frameControl:
		dst.h.HandleControl(from, gotBody)
	}
	return true
}
