package transport

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"fdp/internal/ref"
	"fdp/internal/sim"
)

// Frame kinds. A frame on the wire is a big-endian uint32 length (of
// everything after itself) followed by one kind byte, the sender's node id
// as a uvarint, and the kind-specific body.
const (
	frameData    byte = 0 // body: encoded (target, message)
	frameBounce  byte = 1 // body: encoded (target, message) being returned
	frameControl byte = 2 // body: opaque node-layer payload
)

// maxFrame bounds a single frame. The largest legitimate frames are initial
// present/forward messages (one RefInfo) plus label and causal metadata —
// well under a kilobyte; a megabyte guard means a corrupt or adversarial
// length prefix cannot make a reader allocate unbounded memory.
const maxFrame = 1 << 20

// encodeFrame renders a complete frame: length prefix, kind, sender node,
// body.
func encodeFrame(kind byte, from NodeID, body []byte) []byte {
	var fromBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(fromBuf[:], uint64(from))
	total := 1 + n + len(body)
	out := make([]byte, 4, 4+total)
	binary.BigEndian.PutUint32(out, uint32(total))
	out = append(out, kind)
	out = append(out, fromBuf[:n]...)
	return append(out, body...)
}

// readFrame reads one complete frame, tolerating arbitrary segmentation of
// the underlying stream (io.ReadFull reassembles split writes and partial
// reads). It returns the kind, the sending node and the body.
func readFrame(r io.Reader) (byte, NodeID, []byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, 0, nil, err
	}
	total := binary.BigEndian.Uint32(lenBuf[:])
	if total < 2 || total > maxFrame {
		return 0, 0, nil, fmt.Errorf("transport: frame length %d out of range", total)
	}
	raw := make([]byte, total)
	if _, err := io.ReadFull(r, raw); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF // a torn frame, not a clean close
		}
		return 0, 0, nil, err
	}
	kind := raw[0]
	from, n := binary.Uvarint(raw[1:])
	if n <= 0 {
		return 0, 0, nil, fmt.Errorf("transport: bad frame sender")
	}
	return kind, NodeID(from), raw[1+n:], nil
}

// readFrameBytes parses one frame from an in-memory buffer (loopback and
// tests).
func readFrameBytes(b []byte) (byte, NodeID, []byte, error) {
	return readFrame(bytes.NewReader(b))
}

// Payload tags. The model allows reference-free extra parameters of any
// type; on the wire the codec supports the types the repository's protocols
// actually send. Anything else refuses to encode — the send then takes the
// model's drop path, which is loud in tests rather than silently wrong.
const (
	payNil    byte = 0
	payString byte = 1
	payInt64  byte = 2
	payInt    byte = 3
	payBool   byte = 4
	payBytes  byte = 5
)

// encodeDataBody seals (to, msg) as a data/bounce frame body. References
// travel as their ref.Wire identities — the codec is the only code outside
// package ref that sees them, and only between identically built spaces
// (every node rebuilds the same scenario from the same seed).
func encodeDataBody(to ref.Ref, msg sim.Message) ([]byte, error) {
	body := make([]byte, 0, 64)
	body = putUvarint(body, uint64(ref.Wire(to)))
	body = putUvarint(body, uint64(ref.Wire(msg.From())))
	body = putUvarint(body, uint64(len(msg.Label)))
	body = append(body, msg.Label...)
	body = putUvarint(body, uint64(len(msg.Refs)))
	for _, ri := range msg.Refs {
		body = putUvarint(body, uint64(ref.Wire(ri.Ref)))
		body = append(body, byte(ri.Mode))
	}
	body = putUvarint(body, msg.CID())
	body = putUvarint(body, msg.CausalParent())
	body = putUvarint(body, msg.SendClock())
	switch p := msg.Payload.(type) {
	case nil:
		body = append(body, payNil)
	case string:
		body = append(body, payString)
		body = putUvarint(body, uint64(len(p)))
		body = append(body, p...)
	case int64:
		body = append(body, payInt64)
		body = putUvarint(body, uint64(p))
	case int:
		body = append(body, payInt)
		body = putUvarint(body, uint64(p))
	case bool:
		body = append(body, payBool)
		if p {
			body = append(body, 1)
		} else {
			body = append(body, 0)
		}
	case []byte:
		body = append(body, payBytes)
		body = putUvarint(body, uint64(len(p)))
		body = append(body, p...)
	default:
		return nil, fmt.Errorf("transport: payload type %T not wire-encodable", msg.Payload)
	}
	if len(body) > maxFrame-16 {
		return nil, fmt.Errorf("transport: message body %d bytes exceeds frame bound", len(body))
	}
	return body, nil
}

// decodeDataBody is the inverse of encodeDataBody: it rebuilds the target
// reference and the message, restoring sender and causal metadata.
func decodeDataBody(body []byte) (ref.Ref, sim.Message, error) {
	d := &decoder{buf: body}
	to := ref.FromWire(uint32(d.uvarint()))
	fromProc := ref.FromWire(uint32(d.uvarint()))
	label := string(d.bytes(int(d.uvarint())))
	nrefs := int(d.uvarint())
	if nrefs > len(body) { // each RefInfo takes ≥2 bytes; cheap sanity bound
		return ref.Nil, sim.Message{}, fmt.Errorf("transport: ref count %d exceeds body", nrefs)
	}
	refs := make([]sim.RefInfo, 0, nrefs)
	for i := 0; i < nrefs; i++ {
		r := ref.FromWire(uint32(d.uvarint()))
		refs = append(refs, sim.RefInfo{Ref: r, Mode: sim.Mode(d.byte())})
	}
	cid, parent, lclock := d.uvarint(), d.uvarint(), d.uvarint()
	msg := sim.NewMessage(label, refs...)
	switch tag := d.byte(); tag {
	case payNil:
	case payString:
		msg.Payload = string(d.bytes(int(d.uvarint())))
	case payInt64:
		msg.Payload = int64(d.uvarint())
	case payInt:
		msg.Payload = int(d.uvarint())
	case payBool:
		msg.Payload = d.byte() != 0
	case payBytes:
		msg.Payload = append([]byte(nil), d.bytes(int(d.uvarint()))...)
	default:
		if d.err == nil {
			d.err = fmt.Errorf("transport: unknown payload tag %d", tag)
		}
	}
	if d.err == nil && len(d.buf) != d.off {
		d.err = fmt.Errorf("transport: %d trailing bytes after message", len(d.buf)-d.off)
	}
	if d.err != nil {
		return ref.Nil, sim.Message{}, d.err
	}
	msg = sim.StampCausal(msg, cid, parent, lclock)
	msg = sim.WithSender(msg, fromProc)
	return to, msg, nil
}

func putUvarint(dst []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	return append(dst, buf[:n]...)
}

// decoder reads the body sequentially with a sticky error, so decode code
// stays linear instead of threading an error through every field.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("transport: truncated frame body at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.err = fmt.Errorf("transport: truncated frame body at offset %d", d.off)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.err = fmt.Errorf("transport: truncated frame body at offset %d", d.off)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}
