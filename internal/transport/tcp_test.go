package transport

import (
	"net"
	"testing"
	"time"

	"fdp/internal/obs"
)

// waitFor polls cond for up to two seconds — transport delivery is
// asynchronous, so tests wait for effects rather than sleeping blind.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func newPair(t *testing.T, reg *obs.Registry) (*TCP, *TCP, *collector, *collector) {
	t.Helper()
	h0, h1 := &collector{}, &collector{}
	t0, err := NewTCP(TCPConfig{Self: 0, Listen: "127.0.0.1:0", Handler: h0, Metrics: reg,
		Peers: map[NodeID]string{}})
	if err != nil {
		t.Fatal(err)
	}
	t1, err := NewTCP(TCPConfig{Self: 1, Listen: "127.0.0.1:0", Handler: h1, Metrics: reg,
		Peers: map[NodeID]string{0: t0.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	t0.cfg.Peers[1] = t1.Addr()
	t.Cleanup(func() { t0.Close(); t1.Close() })
	return t0, t1, h0, h1
}

func TestTCPDeliversWithMetadataAndMetrics(t *testing.T) {
	rs := testRefs(5)
	reg := obs.NewRegistry()
	t0, t1, h0, h1 := newPair(t, reg)

	msg := sampleMessage(rs, int64(-4))
	if !t0.Send(1, rs[4], msg) {
		t.Fatal("send refused")
	}
	waitFor(t, "delivery", func() bool { d, _, _ := h1.counts(); return d == 1 })
	got := h1.delivers[0]
	if h1.deliverTo[0] != rs[4] || got.Label != msg.Label || got.From() != rs[3] ||
		got.CID() != msg.CID() || got.CausalParent() != msg.CausalParent() ||
		got.SendClock() != msg.SendClock() || got.Payload != int64(-4) {
		t.Fatalf("message mangled in flight: %+v", got)
	}

	// Bounce and control travel the same stream.
	if !t1.SendBounce(0, rs[4], got) {
		t.Fatal("bounce refused")
	}
	t1.BroadcastControl([]byte("oq"))
	waitFor(t, "bounce+control", func() bool { _, b, c := h0.counts(); return b == 1 && c == 1 })
	if h0.bounces[0].CID() != msg.CID() || h0.controls[0] != "oq" {
		t.Fatalf("bounce/control mangled: %+v %v", h0.bounces, h0.controls)
	}

	if c := reg.Counter("fdp_transport_frames_total{link=\"0->1\"}", ""); c.Value() != 1 {
		t.Fatalf("tx frame counter = %d, want 1", c.Value())
	}
	if c := reg.Counter("fdp_transport_frames_total{link=\"1->0\",dir=\"rx\"}", ""); c.Value() != 2 {
		t.Fatalf("rx frame counter = %d, want 2 (bounce+control)", c.Value())
	}
	if t0.Send(7, rs[4], msg) {
		t.Fatal("send to unknown peer accepted")
	}
}

// TestTCPReassemblesSplitFrames drives a listener with a hand-rolled peer
// that dribbles one frame byte by byte and then packs many frames into one
// write — both segmentations must decode identically.
func TestTCPReassemblesSplitFrames(t *testing.T) {
	rs := testRefs(5)
	h := &collector{}
	tr, err := NewTCP(TCPConfig{Self: 0, Listen: "127.0.0.1:0", Handler: h,
		Peers: map[NodeID]string{}})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	conn, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	body, err := encodeDataBody(rs[4], sampleMessage(rs, "x"))
	if err != nil {
		t.Fatal(err)
	}
	frame := encodeFrame(frameData, 1, body)

	// Byte-by-byte: the reader must block on partial reads, not error.
	for _, b := range frame {
		if _, err := conn.Write([]byte{b}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "dribbled frame", func() bool { d, _, _ := h.counts(); return d == 1 })

	// Three frames coalesced into one write must yield three deliveries.
	batch := append(append(append([]byte(nil), frame...), frame...), frame...)
	if _, err := conn.Write(batch); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "coalesced frames", func() bool { d, _, _ := h.counts(); return d == 4 })
	if h.delivers[3].CID() != h.delivers[0].CID() {
		t.Fatal("coalesced frames decoded differently")
	}
}

// TestTCPSurvivesMidFrameDrop cuts a connection halfway through a frame:
// the torn frame must vanish without a delivery or a panic, and a fresh
// connection must deliver normally afterwards.
func TestTCPSurvivesMidFrameDrop(t *testing.T) {
	rs := testRefs(5)
	h := &collector{}
	tr, err := NewTCP(TCPConfig{Self: 0, Listen: "127.0.0.1:0", Handler: h,
		Peers: map[NodeID]string{}})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	body, err := encodeDataBody(rs[4], sampleMessage(rs, nil))
	if err != nil {
		t.Fatal(err)
	}
	frame := encodeFrame(frameData, 1, body)

	conn, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame[:len(frame)/2]); err != nil {
		t.Fatal(err)
	}
	conn.Close() // the drop: half a frame then RST/FIN

	// A retransmitting peer reconnects and sends the frame twice — the
	// duplicate-delivery case the journals tolerate.
	conn2, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.Write(append(append([]byte(nil), frame...), frame...)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "retransmitted frames", func() bool { d, _, _ := h.counts(); return d == 2 })
	if h.delivers[0].CID() != h.delivers[1].CID() {
		t.Fatal("duplicate delivery changed identity")
	}
}

// TestTCPDialRetryAndBounce covers the outbound failure paths: a peer that
// comes up late is reached by redial, and a peer that never comes up
// bounces the frame after the budget runs out.
func TestTCPDialRetryAndBounce(t *testing.T) {
	rs := testRefs(5)

	// Reserve an address, then close it so nothing listens there yet.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lateAddr := probe.Addr().String()
	probe.Close()

	h0 := &collector{}
	t0, err := NewTCP(TCPConfig{Self: 0, Listen: "127.0.0.1:0", Handler: h0,
		Peers:        map[NodeID]string{1: lateAddr},
		RedialBudget: 50, BackoffBase: 5 * time.Millisecond, DialTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()

	msg := sampleMessage(rs, nil)
	if !t0.Send(1, rs[4], msg) {
		t.Fatal("send refused")
	}
	time.Sleep(20 * time.Millisecond) // let a few dial attempts fail first
	h1 := &collector{}
	t1, err := NewTCP(TCPConfig{Self: 1, Listen: lateAddr, Handler: h1,
		Peers: map[NodeID]string{0: t0.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	waitFor(t, "redial delivery", func() bool { d, _, _ := h1.counts(); return d == 1 })

	// A link that never comes up: the frame must come back as a bounce
	// carrying the original message.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	h2 := &collector{}
	t2, err := NewTCP(TCPConfig{Self: 2, Listen: "127.0.0.1:0", Handler: h2,
		Peers:        map[NodeID]string{3: deadAddr},
		RedialBudget: 3, BackoffBase: time.Millisecond, DialTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer t2.Close()
	if !t2.Send(3, rs[4], msg) {
		t.Fatal("send refused outright; failure should be async")
	}
	waitFor(t, "budget-exhausted bounce", func() bool { _, b, _ := h2.counts(); return b == 1 })
	if h2.bounceTo[0] != rs[4] || h2.bounces[0].CID() != msg.CID() {
		t.Fatalf("bounce mangled: %+v to %v", h2.bounces, h2.bounceTo)
	}
}
