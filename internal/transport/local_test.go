package transport

import (
	"sync"
	"testing"

	"fdp/internal/ref"
	"fdp/internal/sim"
)

// collector is a Handler that records everything it receives.
type collector struct {
	mu       sync.Mutex
	delivers []sim.Message
	deliverTo []ref.Ref
	bounces  []sim.Message
	bounceTo []ref.Ref
	controls []string
}

func (c *collector) HandleDeliver(from NodeID, to ref.Ref, msg sim.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.delivers = append(c.delivers, msg)
	c.deliverTo = append(c.deliverTo, to)
}

func (c *collector) HandleBounce(from NodeID, to ref.Ref, msg sim.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bounces = append(c.bounces, msg)
	c.bounceTo = append(c.bounceTo, to)
}

func (c *collector) HandleControl(from NodeID, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.controls = append(c.controls, string(payload))
}

func (c *collector) counts() (int, int, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.delivers), len(c.bounces), len(c.controls)
}

func TestLoopbackDeliversThroughWireCodec(t *testing.T) {
	rs := testRefs(5)
	mesh := NewLoopback()
	h0, h1 := &collector{}, &collector{}
	p0, p1 := mesh.Attach(h0), mesh.Attach(h1)
	if p0.ID() != 0 || p1.ID() != 1 {
		t.Fatalf("port ids %d,%d", p0.ID(), p1.ID())
	}

	msg := sampleMessage(rs, "route")
	if !p0.Send(1, rs[4], msg) {
		t.Fatal("send refused")
	}
	if d, _, _ := h1.counts(); d != 1 {
		t.Fatalf("delivers = %d, want 1", d)
	}
	got := h1.delivers[0]
	if h1.deliverTo[0] != rs[4] || got.Label != msg.Label || got.From() != rs[3] ||
		got.CID() != msg.CID() || got.SendClock() != msg.SendClock() {
		t.Fatalf("message mangled in flight: %+v", got)
	}

	// A bounce goes back to the origin node's handler with the original
	// message intact.
	if !p1.SendBounce(0, rs[4], got) {
		t.Fatal("bounce refused")
	}
	if _, b, _ := h0.counts(); b != 1 || h0.bounceTo[0] != rs[4] || h0.bounces[0].CID() != msg.CID() {
		t.Fatalf("bounce mangled: %+v to %v", h0.bounces, h0.bounceTo)
	}

	// Control broadcast reaches every other port, not the sender.
	p0.BroadcastControl([]byte("done"))
	if _, _, c := h0.counts(); c != 0 {
		t.Fatal("broadcast echoed to sender")
	}
	if _, _, c := h1.counts(); c != 1 || h1.controls[0] != "done" {
		t.Fatalf("control lost: %v", h1.controls)
	}

	// Unknown peers and closed ports refuse.
	if p0.Send(9, rs[4], msg) {
		t.Fatal("send to unknown node accepted")
	}
	p1.Close()
	if p0.Send(1, rs[4], msg) {
		t.Fatal("send to closed port accepted")
	}
}

func TestLoopbackChaosHooks(t *testing.T) {
	rs := testRefs(5)
	mesh := NewLoopback()
	h0, h1 := &collector{}, &collector{}
	p0, _ := mesh.Attach(h0), mesh.Attach(h1)

	drop := true
	mesh.Drop = func(from, to NodeID, msg sim.Message) bool { return drop }
	msg := sampleMessage(rs, nil)
	if !p0.Send(1, rs[4], msg) {
		t.Fatal("dropped send must still be accepted (failure is async in the real transport)")
	}
	if d, b, _ := h0.counts(); b != 1 || d != 0 {
		t.Fatalf("drop must bounce to sender: delivers=%d bounces=%d", d, b)
	}
	if dd, _, _ := h1.counts(); dd != 0 {
		t.Fatal("dropped frame reached the receiver")
	}

	drop = false
	mesh.Duplicate = func(from, to NodeID, msg sim.Message) bool { return true }
	if !p0.Send(1, rs[4], msg) {
		t.Fatal("send refused")
	}
	if d, _, _ := h1.counts(); d != 2 {
		t.Fatalf("duplicate hook delivered %d times, want 2", d)
	}
}
