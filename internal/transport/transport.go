// Package transport carries protocol messages between engines. The model of
// Section 1.1 has exactly one channel primitive — "u <- action(params)" with
// no loss, no duplication bound and no FIFO order — and the repository grew
// three ways to realize it: the sequential simulator's per-process channel
// multiset, the concurrent runtime's sharded mailboxes, and (this package's
// reason to exist) length-prefixed TCP frames between OS processes. The
// first two satisfy Engine natively; the third is the Transport
// implementations here, which move a sealed wire encoding of a message to
// the node owning its target and inject it there.
//
// The wire codec (wire.go) serializes references through ref.Wire/FromWire
// only — protocol packages never see the bytes, so the refopacity and
// primdecomp disciplines are untouched: to every protocol a reference is
// still an opaque value, and a remote send is still the single atomic-action
// move it was on one engine. Frames carry the full causal metadata (CID,
// parent, Lamport clock), so journals written on different nodes join into
// one happens-before order (trace.Join).
//
// Delivery failure is a first-class outcome, not an exception: a frame whose
// target is gone on the owning node, or whose link died past its redial
// budget, comes back as a bounce, which the node layer feeds to the engine's
// undeliverable path (sim.World.Bounce) — the transport-level failure
// detection Section 4's postprocess action presupposes.
package transport

import (
	"fdp/internal/parallel"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// NodeID identifies one engine instance (one OS process in a multi-node
// run, one attached port on an in-process Loopback).
type NodeID int

// LocalBounce is the Handler.HandleBounce sender for bounces the transport
// synthesizes itself when a link dies: no peer ever saw the frame.
const LocalBounce NodeID = -1

// Engine is the delivery surface a local engine exposes to its node's
// transport: inject one causally stamped message into the target process's
// channel, reporting false when the target is unknown or gone (the caller
// then owes the origin a bounce). Both local engines satisfy it natively —
// the simulator's channel multiset and the runtime's sharded mailboxes are
// the two in-process implementations of the model's channel, the wire
// transport the third.
type Engine interface {
	Inject(to ref.Ref, msg sim.Message) bool
}

var (
	_ Engine = (*sim.World)(nil)
	_ Engine = (*parallel.Runtime)(nil)
)

// Handler is the receiving half a node registers with its transport. Calls
// arrive on transport goroutines (or, for Loopback, synchronously inside
// the sender's action): implementations must be safe for concurrent use and
// must not call back into the transport's Close.
type Handler interface {
	// HandleDeliver hands over a data frame: msg (sender and causal
	// metadata restored) addressed to the local process to.
	HandleDeliver(from NodeID, to ref.Ref, msg sim.Message)
	// HandleBounce reports that a message this node's engine sent could
	// not be delivered. from is the peer that refused it (target gone on
	// the owning node) or LocalBounce when the transport itself gave up
	// (link dead past its redial budget — the frame never arrived, which
	// oracle accounting must treat differently from a frame that did). to
	// is the unreachable target, msg the original message (msg.From() is
	// the local sender owed the undeliverable callback).
	HandleBounce(from NodeID, to ref.Ref, msg sim.Message)
	// HandleControl hands over an opaque control payload (oracle rounds,
	// done gossip — the node layer's coordination traffic).
	HandleControl(from NodeID, payload []byte)
}

// Transport moves frames between nodes. Send/SendBounce/SendControl are
// asynchronous and safe for concurrent use; a true return means the frame
// was accepted for delivery (which may still end in a bounce), false that
// it was refused outright (unknown peer, closed transport, unencodable
// payload) — for Send, the caller treats that as the model's drop path.
type Transport interface {
	// Send routes a data frame to the given node's engine.
	Send(node NodeID, to ref.Ref, msg sim.Message) bool
	// SendBounce returns an undeliverable message to the node that sent
	// it, where the handler owes it to the original sender.
	SendBounce(node NodeID, to ref.Ref, msg sim.Message) bool
	// SendControl ships an opaque control payload to one peer.
	SendControl(node NodeID, payload []byte) bool
	// BroadcastControl ships an opaque control payload to every peer.
	BroadcastControl(payload []byte)
	// Close tears the transport down: listeners close, queued frames are
	// abandoned, in-flight handler calls complete.
	Close() error
}
