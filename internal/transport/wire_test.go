package transport

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"fdp/internal/ref"
	"fdp/internal/sim"
)

func testRefs(n int) []ref.Ref { return ref.NewSpace().NewN(n) }

func sampleMessage(rs []ref.Ref, payload any) sim.Message {
	m := sim.NewMessage("forward",
		sim.RefInfo{Ref: rs[0], Mode: sim.Leaving},
		sim.RefInfo{Ref: rs[1], Mode: sim.Staying},
		sim.RefInfo{Ref: rs[2], Mode: sim.Unknown})
	m.Payload = payload
	m = sim.StampCausal(m, 1<<40|7, 1<<40|3, 42)
	return sim.WithSender(m, rs[3])
}

func TestDataBodyRoundTrip(t *testing.T) {
	rs := testRefs(5)
	payloads := []any{nil, "route", int64(-9), 17, true, []byte{0, 1, 2}}
	for _, p := range payloads {
		msg := sampleMessage(rs, p)
		body, err := encodeDataBody(rs[4], msg)
		if err != nil {
			t.Fatalf("encode (%T payload): %v", p, err)
		}
		to, got, err := decodeDataBody(body)
		if err != nil {
			t.Fatalf("decode (%T payload): %v", p, err)
		}
		if to != rs[4] || got.Label != msg.Label || got.From() != rs[3] {
			t.Fatalf("endpoints wrong: to=%v label=%q from=%v", to, got.Label, got.From())
		}
		if !reflect.DeepEqual(got.Refs, msg.Refs) {
			t.Fatalf("refs did not round-trip: %v vs %v", got.Refs, msg.Refs)
		}
		if !reflect.DeepEqual(got.Payload, p) {
			t.Fatalf("payload did not round-trip: %#v vs %#v", got.Payload, p)
		}
		if got.CID() != msg.CID() || got.CausalParent() != msg.CausalParent() || got.SendClock() != msg.SendClock() {
			t.Fatalf("causal metadata lost: cid=%d parent=%d clock=%d", got.CID(), got.CausalParent(), got.SendClock())
		}
	}
	if _, err := encodeDataBody(rs[0], sim.Message{Label: "x", Payload: struct{ X int }{1}}); err == nil {
		t.Fatal("unencodable payload accepted")
	}
}

func TestFrameRoundTripAndGuards(t *testing.T) {
	body := []byte("control-payload")
	raw := encodeFrame(frameControl, 3, body)
	kind, from, got, err := readFrameBytes(raw)
	if err != nil || kind != frameControl || from != 3 || !bytes.Equal(got, body) {
		t.Fatalf("frame round-trip: kind=%d from=%d body=%q err=%v", kind, from, got, err)
	}

	// A frame length beyond the guard must refuse before allocating.
	huge := make([]byte, 8)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0xff
	if _, _, _, err := readFrameBytes(huge); err == nil {
		t.Fatal("oversized frame length accepted")
	}

	// A torn frame (stream ends mid-body) is an unexpected EOF, not a
	// clean close.
	if _, _, _, err := readFrameBytes(raw[:len(raw)-3]); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn frame: got %v, want %v", err, io.ErrUnexpectedEOF)
	}

	// Truncated bodies at every cut point must error, never panic or
	// fabricate a message.
	rs := testRefs(5)
	full, err := encodeDataBody(rs[4], sampleMessage(rs, "p"))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := decodeDataBody(full[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded successfully", cut, len(full))
		}
	}
	if _, _, err := decodeDataBody(append(full, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
