package graph

import (
	"math/rand"

	"fdp/internal/ref"
)

// Generators for the initial topologies used across experiments. Every
// generator takes the node list explicitly so that references remain under
// the caller's Space; all produced graphs are weakly connected (a
// precondition of the paper's initial states) and use explicit edges.

// Line builds the directed sorted list p0 -> p1 -> ... -> pn-1 with edges in
// both directions, the target topology of the linearization protocol.
func Line(nodes []ref.Ref) *Graph {
	g := New()
	for _, n := range nodes {
		g.AddNode(n)
	}
	for i := 0; i+1 < len(nodes); i++ {
		g.AddEdge(nodes[i], nodes[i+1], Explicit)
		g.AddEdge(nodes[i+1], nodes[i], Explicit)
	}
	return g
}

// DirectedLine builds the one-directional list p0 -> p1 -> ... -> pn-1.
func DirectedLine(nodes []ref.Ref) *Graph {
	g := New()
	for _, n := range nodes {
		g.AddNode(n)
	}
	for i := 0; i+1 < len(nodes); i++ {
		g.AddEdge(nodes[i], nodes[i+1], Explicit)
	}
	return g
}

// Ring builds the bidirected cycle p0 - p1 - ... - pn-1 - p0.
func Ring(nodes []ref.Ref) *Graph {
	g := Line(nodes)
	if len(nodes) > 2 {
		g.AddEdge(nodes[len(nodes)-1], nodes[0], Explicit)
		g.AddEdge(nodes[0], nodes[len(nodes)-1], Explicit)
	}
	return g
}

// Clique builds the complete digraph: every ordered pair (u,v), u != v.
func Clique(nodes []ref.Ref) *Graph {
	g := New()
	for _, n := range nodes {
		g.AddNode(n)
	}
	for _, a := range nodes {
		for _, b := range nodes {
			if a != b {
				g.AddEdge(a, b, Explicit)
			}
		}
	}
	return g
}

// Star builds the star with nodes[0] as hub, edges in both directions.
func Star(nodes []ref.Ref) *Graph {
	g := New()
	for _, n := range nodes {
		g.AddNode(n)
	}
	for _, leaf := range nodes[1:] {
		g.AddEdge(nodes[0], leaf, Explicit)
		g.AddEdge(leaf, nodes[0], Explicit)
	}
	return g
}

// BinaryTree builds the complete binary tree in heap order with edges in
// both directions.
func BinaryTree(nodes []ref.Ref) *Graph {
	g := New()
	for _, n := range nodes {
		g.AddNode(n)
	}
	for i := 1; i < len(nodes); i++ {
		parent := (i - 1) / 2
		g.AddEdge(nodes[parent], nodes[i], Explicit)
		g.AddEdge(nodes[i], nodes[parent], Explicit)
	}
	return g
}

// Hypercube builds the d-dimensional hypercube on 2^d nodes (len(nodes)
// must be a power of two), with edges in both directions.
func Hypercube(nodes []ref.Ref) *Graph {
	g := New()
	n := len(nodes)
	for _, v := range nodes {
		g.AddNode(v)
	}
	for i := 0; i < n; i++ {
		for bit := 1; bit < n; bit <<= 1 {
			j := i ^ bit
			if j > i && j < n {
				g.AddEdge(nodes[i], nodes[j], Explicit)
				g.AddEdge(nodes[j], nodes[i], Explicit)
			}
		}
	}
	return g
}

// RandomConnected builds a random weakly connected digraph: a random
// spanning tree (guaranteeing weak connectivity) plus extra random directed
// edges so that the expected number of additional edges is extra. The edge
// directions of the tree edges are random, matching the paper's arbitrary
// weakly connected initial states.
func RandomConnected(nodes []ref.Ref, extra int, rng *rand.Rand) *Graph {
	g := New()
	for _, n := range nodes {
		g.AddNode(n)
	}
	if len(nodes) < 2 {
		return g
	}
	perm := rng.Perm(len(nodes))
	for i := 1; i < len(perm); i++ {
		a := nodes[perm[i]]
		b := nodes[perm[rng.Intn(i)]]
		if rng.Intn(2) == 0 {
			g.AddEdge(a, b, Explicit)
		} else {
			g.AddEdge(b, a, Explicit)
		}
	}
	for k := 0; k < extra; k++ {
		i, j := rng.Intn(len(nodes)), rng.Intn(len(nodes))
		if i != j && !g.HasEdge(nodes[i], nodes[j]) {
			g.AddEdge(nodes[i], nodes[j], Explicit)
		}
	}
	return g
}

// RandomTree builds a random spanning tree with random edge directions.
func RandomTree(nodes []ref.Ref, rng *rand.Rand) *Graph {
	return RandomConnected(nodes, 0, rng)
}
