package graph

import (
	"math/rand"

	"fdp/internal/ref"
)

// Generators for the initial topologies used across experiments. Every
// generator takes the node list explicitly so that references remain under
// the caller's Space; all produced graphs are weakly connected (a
// precondition of the paper's initial states) and use explicit edges.

// Line builds the directed sorted list p0 -> p1 -> ... -> pn-1 with edges in
// both directions, the target topology of the linearization protocol.
func Line(nodes []ref.Ref) *Graph {
	g := New()
	for _, n := range nodes {
		g.AddNode(n)
	}
	for i := 0; i+1 < len(nodes); i++ {
		g.AddEdge(nodes[i], nodes[i+1], Explicit)
		g.AddEdge(nodes[i+1], nodes[i], Explicit)
	}
	return g
}

// DirectedLine builds the one-directional list p0 -> p1 -> ... -> pn-1.
func DirectedLine(nodes []ref.Ref) *Graph {
	g := New()
	for _, n := range nodes {
		g.AddNode(n)
	}
	for i := 0; i+1 < len(nodes); i++ {
		g.AddEdge(nodes[i], nodes[i+1], Explicit)
	}
	return g
}

// Ring builds the bidirected cycle p0 - p1 - ... - pn-1 - p0.
func Ring(nodes []ref.Ref) *Graph {
	g := Line(nodes)
	if len(nodes) > 2 {
		g.AddEdge(nodes[len(nodes)-1], nodes[0], Explicit)
		g.AddEdge(nodes[0], nodes[len(nodes)-1], Explicit)
	}
	return g
}

// Clique builds the complete digraph: every ordered pair (u,v), u != v.
func Clique(nodes []ref.Ref) *Graph {
	g := New()
	for _, n := range nodes {
		g.AddNode(n)
	}
	for _, a := range nodes {
		for _, b := range nodes {
			if a != b {
				g.AddEdge(a, b, Explicit)
			}
		}
	}
	return g
}

// Star builds the star with nodes[0] as hub, edges in both directions.
func Star(nodes []ref.Ref) *Graph {
	g := New()
	for _, n := range nodes {
		g.AddNode(n)
	}
	for _, leaf := range nodes[1:] {
		g.AddEdge(nodes[0], leaf, Explicit)
		g.AddEdge(leaf, nodes[0], Explicit)
	}
	return g
}

// BinaryTree builds the complete binary tree in heap order with edges in
// both directions.
func BinaryTree(nodes []ref.Ref) *Graph {
	g := New()
	for _, n := range nodes {
		g.AddNode(n)
	}
	for i := 1; i < len(nodes); i++ {
		parent := (i - 1) / 2
		g.AddEdge(nodes[parent], nodes[i], Explicit)
		g.AddEdge(nodes[i], nodes[parent], Explicit)
	}
	return g
}

// Hypercube builds the d-dimensional hypercube on 2^d nodes (len(nodes)
// must be a power of two), with edges in both directions.
func Hypercube(nodes []ref.Ref) *Graph {
	g := New()
	n := len(nodes)
	for _, v := range nodes {
		g.AddNode(v)
	}
	for i := 0; i < n; i++ {
		for bit := 1; bit < n; bit <<= 1 {
			j := i ^ bit
			if j > i && j < n {
				g.AddEdge(nodes[i], nodes[j], Explicit)
				g.AddEdge(nodes[j], nodes[i], Explicit)
			}
		}
	}
	return g
}

// RandomConnected builds a random weakly connected digraph: a random
// spanning tree (guaranteeing weak connectivity) plus extra random directed
// edges so that the expected number of additional edges is extra. The edge
// directions of the tree edges are random, matching the paper's arbitrary
// weakly connected initial states.
func RandomConnected(nodes []ref.Ref, extra int, rng *rand.Rand) *Graph {
	g := New()
	for _, n := range nodes {
		g.AddNode(n)
	}
	if len(nodes) < 2 {
		return g
	}
	perm := rng.Perm(len(nodes))
	for i := 1; i < len(perm); i++ {
		a := nodes[perm[i]]
		b := nodes[perm[rng.Intn(i)]]
		if rng.Intn(2) == 0 {
			g.AddEdge(a, b, Explicit)
		} else {
			g.AddEdge(b, a, Explicit)
		}
	}
	for k := 0; k < extra; k++ {
		i, j := rng.Intn(len(nodes)), rng.Intn(len(nodes))
		if i != j && !g.HasEdge(nodes[i], nodes[j]) {
			g.AddEdge(nodes[i], nodes[j], Explicit)
		}
	}
	return g
}

// RandomTree builds a random spanning tree with random edge directions.
func RandomTree(nodes []ref.Ref, rng *rand.Rand) *Graph {
	return RandomConnected(nodes, 0, rng)
}

// SkipGraph builds a deterministic skip-graph-like overlay: the nodes form a
// sorted base list (level 0), and every node additionally links to the nodes
// at distance 2, 4, 8, ... in list order — the perfect-skip-list express
// lanes that give skip graphs their O(log n) routing. All edges are
// bidirectional; the base list alone makes the graph connected at every n.
func SkipGraph(nodes []ref.Ref) *Graph {
	g := Line(nodes)
	for dist := 2; dist < len(nodes); dist <<= 1 {
		for i := 0; i+dist < len(nodes); i += dist {
			g.AddEdge(nodes[i], nodes[i+dist], Explicit)
			g.AddEdge(nodes[i+dist], nodes[i], Explicit)
		}
	}
	return g
}

// DeBruijn builds the generalized binary de Bruijn digraph GB(2, n): node i
// has directed edges to (2i) mod n and (2i+1) mod n (self-loops skipped).
// Generalized de Bruijn digraphs are strongly — hence weakly — connected for
// every n >= 1, with diameter at most ceil(log2 n), which is what makes them
// a standard constant-degree overlay.
func DeBruijn(nodes []ref.Ref) *Graph {
	g := New()
	n := len(nodes)
	for _, v := range nodes {
		g.AddNode(v)
	}
	for i := 0; i < n; i++ {
		for r := 0; r < 2; r++ {
			j := (2*i + r) % n
			if j != i && !g.HasEdge(nodes[i], nodes[j]) {
				g.AddEdge(nodes[i], nodes[j], Explicit)
			}
		}
	}
	return g
}

// RandomRegular builds a connected random graph with near-uniform degree d:
// a ring guarantees connectivity (and degree 2), then each extra degree
// round superimposes a random partial matching drawn from rng. Every edge is
// bidirectional. Degrees are exactly d except where a matching round cannot
// place an edge (duplicate or self pair), so the graph is "random
// d-regular-ish" in the configuration-model sense. d is clamped to n-1.
func RandomRegular(nodes []ref.Ref, d int, rng *rand.Rand) *Graph {
	n := len(nodes)
	if d >= n {
		d = n - 1
	}
	if n <= 3 || d >= n-1 {
		// Too small for a ring-plus-matchings to add anything: the clique is
		// the unique (n-1)-regular graph and the best effort below it.
		return Clique(nodes)
	}
	g := Ring(nodes)
	for round := 2; round < d; round++ {
		perm := rng.Perm(n)
		for i := 0; i+1 < n; i += 2 {
			a, b := nodes[perm[i]], nodes[perm[i+1]]
			if a != b && !g.HasEdge(a, b) {
				g.AddEdge(a, b, Explicit)
				g.AddEdge(b, a, Explicit)
			}
		}
	}
	return g
}
