package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fdp/internal/ref"
)

func TestWeaklyConnectedBasics(t *testing.T) {
	g := New()
	if !g.WeaklyConnected() {
		t.Fatal("empty graph counts as weakly connected")
	}
	nodes, _ := mkNodes(3)
	g.AddNode(nodes[0])
	if !g.WeaklyConnected() {
		t.Fatal("singleton is weakly connected")
	}
	g.AddNode(nodes[1])
	if g.WeaklyConnected() {
		t.Fatal("two isolated nodes are disconnected")
	}
	g.AddEdge(nodes[0], nodes[1], Implicit)
	if !g.WeaklyConnected() {
		t.Fatal("implicit edge must connect")
	}
}

func TestWeaklyConnectedComponents(t *testing.T) {
	nodes, _ := mkNodes(6)
	g := New()
	g.AddEdge(nodes[0], nodes[1], Explicit)
	g.AddEdge(nodes[2], nodes[1], Explicit) // direction must not matter
	g.AddEdge(nodes[3], nodes[4], Explicit)
	g.AddNode(nodes[5])
	comps := g.WeaklyConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 || len(comps[2]) != 1 {
		t.Fatalf("component sizes %v unexpected", comps)
	}
}

func TestSameWeakComponent(t *testing.T) {
	nodes, _ := mkNodes(4)
	g := New()
	g.AddEdge(nodes[0], nodes[1], Explicit)
	g.AddNode(nodes[2])
	if !g.SameWeakComponent(nodes[0], nodes[1]) {
		t.Fatal("connected pair reported disconnected")
	}
	if g.SameWeakComponent(nodes[0], nodes[2]) {
		t.Fatal("disconnected pair reported connected")
	}
	if g.SameWeakComponent(nodes[0], nodes[3]) {
		t.Fatal("non-node must not be in any component")
	}
	if !g.SameWeakComponent(nodes[2], nodes[2]) {
		t.Fatal("node must be in its own component")
	}
}

func TestReachableDirected(t *testing.T) {
	nodes, _ := mkNodes(3)
	g := DirectedLine(nodes)
	if !g.Reachable(nodes[0], nodes[2]) {
		t.Fatal("forward reachability failed")
	}
	if g.Reachable(nodes[2], nodes[0]) {
		t.Fatal("directed reachability must respect direction")
	}
}

func TestForwardReachAll(t *testing.T) {
	nodes, _ := mkNodes(5)
	g := New()
	g.AddEdge(nodes[0], nodes[1], Explicit)
	g.AddEdge(nodes[1], nodes[2], Explicit)
	g.AddEdge(nodes[3], nodes[4], Explicit)
	reach := g.ForwardReachAll([]ref.Ref{nodes[0], nodes[3]})
	for _, n := range []ref.Ref{nodes[0], nodes[1], nodes[2], nodes[3], nodes[4]} {
		if !reach.Has(n) {
			t.Fatalf("%v missing from multi-source reach", n)
		}
	}
	reach2 := g.ForwardReachAll([]ref.Ref{nodes[3]})
	if reach2.Has(nodes[0]) || !reach2.Has(nodes[4]) {
		t.Fatal("single-source reach wrong")
	}
}

func TestStronglyConnectedComponents(t *testing.T) {
	nodes, _ := mkNodes(5)
	g := New()
	// Cycle 0->1->2->0, plus 2->3, isolated 4.
	g.AddEdge(nodes[0], nodes[1], Explicit)
	g.AddEdge(nodes[1], nodes[2], Explicit)
	g.AddEdge(nodes[2], nodes[0], Explicit)
	g.AddEdge(nodes[2], nodes[3], Explicit)
	g.AddNode(nodes[4])
	comps := g.StronglyConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("SCCs = %d, want 3 (%v)", len(comps), comps)
	}
	if len(comps[0]) != 3 {
		t.Fatalf("first SCC should be the 3-cycle, got %v", comps)
	}
	if g.StronglyConnected() {
		t.Fatal("graph with sink must not be strongly connected")
	}
}

func TestStronglyConnectedClique(t *testing.T) {
	nodes, _ := mkNodes(6)
	if !Clique(nodes).StronglyConnected() {
		t.Fatal("clique must be strongly connected")
	}
	if !Ring(nodes).StronglyConnected() {
		t.Fatal("bidirected ring must be strongly connected")
	}
	if DirectedLine(nodes).StronglyConnected() {
		t.Fatal("directed line must not be strongly connected")
	}
}

func TestShortestPath(t *testing.T) {
	nodes, _ := mkNodes(5)
	g := DirectedLine(nodes)
	path := g.ShortestPath(nodes[0], nodes[4])
	if len(path) != 5 {
		t.Fatalf("path length %d, want 5", len(path))
	}
	if path[0] != nodes[0] || path[4] != nodes[4] {
		t.Fatal("path endpoints wrong")
	}
	if g.ShortestPath(nodes[4], nodes[0]) != nil {
		t.Fatal("reverse path must not exist")
	}
	self := g.ShortestPath(nodes[2], nodes[2])
	if len(self) != 1 {
		t.Fatal("trivial path wrong")
	}
	// A shortcut should shorten the path.
	g.AddEdge(nodes[0], nodes[3], Explicit)
	if got := g.ShortestPath(nodes[0], nodes[4]); len(got) != 3 {
		t.Fatalf("shortcut path length %d, want 3", len(got))
	}
}

func TestDiameter(t *testing.T) {
	nodes, _ := mkNodes(8)
	if d := Line(nodes).Diameter(); d != 7 {
		t.Fatalf("line diameter %d, want 7", d)
	}
	if d := Clique(nodes).Diameter(); d != 1 {
		t.Fatalf("clique diameter %d, want 1", d)
	}
	disconnected := New()
	disconnected.AddNode(nodes[0])
	disconnected.AddNode(nodes[1])
	if d := disconnected.Diameter(); d != -1 {
		t.Fatalf("disconnected diameter %d, want -1", d)
	}
}

func TestArticulationPoints(t *testing.T) {
	nodes, _ := mkNodes(5)
	g := Star(nodes)
	pts := g.ArticulationPoints()
	if len(pts) != 1 || pts[0] != nodes[0] {
		t.Fatalf("star hub must be the sole articulation point, got %v", pts)
	}
	if pts := Clique(nodes).ArticulationPoints(); len(pts) != 0 {
		t.Fatalf("clique has no articulation points, got %v", pts)
	}
	line := Line(nodes)
	if pts := line.ArticulationPoints(); len(pts) != 3 {
		t.Fatalf("5-line must have 3 articulation points, got %v", pts)
	}
}

func TestBidirectedExtension(t *testing.T) {
	nodes, _ := mkNodes(3)
	g := DirectedLine(nodes)
	h := g.BidirectedExtension()
	for i := 0; i+1 < len(nodes); i++ {
		if !h.HasEdge(nodes[i], nodes[i+1]) || !h.HasEdge(nodes[i+1], nodes[i]) {
			t.Fatal("bidirected extension missing a direction")
		}
	}
	if h.NumEdges() != 4 {
		t.Fatalf("edges = %d, want 4", h.NumEdges())
	}
	if !h.StronglyConnected() {
		t.Fatal("bidirected extension of a weakly connected graph must be strongly connected")
	}
}

// Property: the bidirected extension of any weakly connected random graph is
// strongly connected — the fact the Theorem 1 proof relies on.
func TestQuickBidirectedExtensionStronglyConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw)%30
		local := rand.New(rand.NewSource(seed))
		nodes, _ := mkNodes(n)
		g := RandomConnected(nodes, local.Intn(2*n), local)
		return g.BidirectedExtension().StronglyConnected()
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: removing a non-articulation node keeps the component count.
func TestQuickArticulationDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(12)
		nodes, _ := mkNodes(n)
		g := RandomConnected(nodes, rng.Intn(n), rng)
		arts := ref.NewSet(g.ArticulationPoints()...)
		for _, v := range nodes {
			h := g.Clone()
			h.RemoveNode(v)
			disconnects := len(h.WeaklyConnectedComponents()) > 1
			if disconnects != arts.Has(v) {
				t.Fatalf("trial %d: articulation mismatch for %v", trial, v)
			}
		}
	}
}

func TestUndirectedReach(t *testing.T) {
	nodes, _ := mkNodes(4)
	g := New()
	g.AddEdge(nodes[0], nodes[1], Explicit)
	g.AddEdge(nodes[2], nodes[1], Implicit) // reverse direction must not matter
	g.AddNode(nodes[3])
	reach := g.UndirectedReach(nodes[0])
	if !reach.Has(nodes[0]) || !reach.Has(nodes[1]) || !reach.Has(nodes[2]) {
		t.Fatalf("reach from %v missing connected nodes: %v", nodes[0], reach.Sorted())
	}
	if reach.Has(nodes[3]) {
		t.Fatal("isolated node must not be reachable")
	}
	if g.UndirectedReach(ref.Ref{}) != nil {
		t.Fatal("non-node start must yield nil")
	}
}
