package graph

import (
	"math/rand"
	"strings"
	"testing"

	"fdp/internal/ref"
)

func mkNodes(n int) ([]ref.Ref, *ref.Space) {
	s := ref.NewSpace()
	return s.NewN(n), s
}

func TestAddEdgeRegistersNodes(t *testing.T) {
	nodes, _ := mkNodes(2)
	g := New()
	g.AddEdge(nodes[0], nodes[1], Explicit)
	if !g.HasNode(nodes[0]) || !g.HasNode(nodes[1]) {
		t.Fatal("endpoints not registered")
	}
	if !g.HasEdge(nodes[0], nodes[1]) {
		t.Fatal("edge missing")
	}
	if g.HasEdge(nodes[1], nodes[0]) {
		t.Fatal("reverse edge should not exist")
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	nodes, _ := mkNodes(1)
	g := New()
	g.AddEdge(nodes[0], nodes[0], Explicit)
	if g.NumEdges() != 0 {
		t.Fatal("self-loop must be ignored")
	}
}

func TestNilIgnored(t *testing.T) {
	nodes, _ := mkNodes(1)
	g := New()
	g.AddNode(nodes[0])
	g.AddEdge(ref.Nil, nodes[0], Explicit)
	g.AddEdge(nodes[0], ref.Nil, Explicit)
	g.AddNode(ref.Nil)
	if g.NumEdges() != 0 || g.NumNodes() != 1 {
		t.Fatalf("⊥ edges must be ignored; edges=%d nodes=%d", g.NumEdges(), g.NumNodes())
	}
}

func TestMultiplicityAndKinds(t *testing.T) {
	nodes, _ := mkNodes(2)
	a, b := nodes[0], nodes[1]
	g := New()
	g.AddEdge(a, b, Explicit)
	g.AddEdge(a, b, Implicit)
	g.AddEdge(a, b, Implicit)
	if g.EdgeCount(a, b) != 3 {
		t.Fatalf("EdgeCount = %d, want 3", g.EdgeCount(a, b))
	}
	if !g.HasEdgeKind(a, b, Explicit) || !g.HasEdgeKind(a, b, Implicit) {
		t.Fatal("kinds missing")
	}
	if !g.RemoveEdge(a, b, Explicit) {
		t.Fatal("explicit removal failed")
	}
	if g.HasEdgeKind(a, b, Explicit) {
		t.Fatal("explicit copy should be gone")
	}
	if g.EdgeCount(a, b) != 2 {
		t.Fatalf("EdgeCount after removal = %d, want 2", g.EdgeCount(a, b))
	}
	if g.RemoveEdge(a, b, Explicit) {
		t.Fatal("removing absent explicit edge must fail")
	}
}

func TestRemoveEdgeCleansAdjacency(t *testing.T) {
	nodes, _ := mkNodes(2)
	a, b := nodes[0], nodes[1]
	g := New()
	g.AddEdge(a, b, Implicit)
	g.RemoveEdge(a, b, Implicit)
	if g.HasEdge(a, b) {
		t.Fatal("edge should be gone")
	}
	if len(g.Pred(b)) != 0 {
		t.Fatal("reverse adjacency not cleaned")
	}
	if len(g.Succ(a)) != 0 {
		t.Fatal("forward adjacency not cleaned")
	}
}

func TestRemoveNode(t *testing.T) {
	nodes, _ := mkNodes(3)
	g := Line(nodes)
	g.RemoveNode(nodes[1])
	if g.HasNode(nodes[1]) {
		t.Fatal("node still present")
	}
	if g.HasEdge(nodes[0], nodes[1]) || g.HasEdge(nodes[1], nodes[2]) ||
		g.HasEdge(nodes[1], nodes[0]) || g.HasEdge(nodes[2], nodes[1]) {
		t.Fatal("incident edges not removed")
	}
	if g.WeaklyConnected() {
		t.Fatal("removing middle node must disconnect a 3-line")
	}
}

func TestCloneIndependence(t *testing.T) {
	nodes, _ := mkNodes(4)
	g := Ring(nodes)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.RemoveNode(nodes[0])
	if g.Equal(c) {
		t.Fatal("mutation leaked into original")
	}
	if !g.HasNode(nodes[0]) {
		t.Fatal("original mutated")
	}
}

func TestEdgesDeterministicOrder(t *testing.T) {
	nodes, _ := mkNodes(4)
	g := Clique(nodes)
	e1 := g.Edges()
	e2 := g.Edges()
	if len(e1) != 12 {
		t.Fatalf("clique(4) edges = %d, want 12", len(e1))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("Edges() order nondeterministic")
		}
	}
}

func TestUndirectedNeighborsAndDegree(t *testing.T) {
	nodes, _ := mkNodes(3)
	a, b, c := nodes[0], nodes[1], nodes[2]
	g := New()
	g.AddEdge(a, b, Explicit)
	g.AddEdge(c, a, Implicit)
	got := g.UndirectedNeighbors(a)
	if len(got) != 2 {
		t.Fatalf("neighbors of a = %v, want 2 entries", got)
	}
	if g.Degree(a) != 2 || g.Degree(b) != 1 || g.Degree(c) != 1 {
		t.Fatal("degrees wrong")
	}
}

func TestInducedSubgraph(t *testing.T) {
	nodes, _ := mkNodes(4)
	g := Clique(nodes)
	keep := ref.NewSet(nodes[0], nodes[1])
	s := g.InducedSubgraph(keep)
	if s.NumNodes() != 2 || s.NumEdges() != 2 {
		t.Fatalf("induced subgraph nodes=%d edges=%d", s.NumNodes(), s.NumEdges())
	}
	if s.HasNode(nodes[2]) {
		t.Fatal("excluded node present")
	}
}

func TestEqualAndSameSimpleDigraph(t *testing.T) {
	nodes, _ := mkNodes(2)
	a, b := nodes[0], nodes[1]
	g, h := New(), New()
	g.AddEdge(a, b, Explicit)
	h.AddEdge(a, b, Implicit)
	if g.Equal(h) {
		t.Fatal("kind-sensitive Equal must distinguish explicit/implicit")
	}
	if !g.SameSimpleDigraph(h) {
		t.Fatal("simple digraph view must ignore kinds")
	}
	h.AddEdge(a, b, Implicit)
	if !g.SameSimpleDigraph(h) {
		t.Fatal("simple digraph view must ignore multiplicity")
	}
	h.AddEdge(b, a, Explicit)
	if g.SameSimpleDigraph(h) {
		t.Fatal("extra edge must be detected")
	}
}

func TestDOTOutput(t *testing.T) {
	nodes, _ := mkNodes(2)
	g := New()
	g.AddEdge(nodes[0], nodes[1], Implicit)
	dot := g.DOT("test")
	if !strings.Contains(dot, "style=dashed") {
		t.Fatal("implicit edge must be dashed")
	}
	if !strings.Contains(dot, "digraph") {
		t.Fatal("not a digraph")
	}
}

func TestGeneratorsShapes(t *testing.T) {
	nodes, _ := mkNodes(8)
	cases := []struct {
		name  string
		g     *Graph
		edges int
	}{
		{"line", Line(nodes), 14},
		{"directedline", DirectedLine(nodes), 7},
		{"ring", Ring(nodes), 16},
		{"clique", Clique(nodes), 56},
		{"star", Star(nodes), 14},
		{"tree", BinaryTree(nodes), 14},
		{"hypercube", Hypercube(nodes), 24},
	}
	for _, c := range cases {
		if c.g.NumNodes() != 8 {
			t.Errorf("%s: nodes = %d", c.name, c.g.NumNodes())
		}
		if c.g.NumEdges() != c.edges {
			t.Errorf("%s: edges = %d, want %d", c.name, c.g.NumEdges(), c.edges)
		}
		if !c.g.WeaklyConnected() {
			t.Errorf("%s: not weakly connected", c.name)
		}
	}
}

func TestRandomConnectedIsConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(40)
		nodes, _ := mkNodes(n)
		g := RandomConnected(nodes, rng.Intn(3*n), rng)
		if !g.WeaklyConnected() {
			t.Fatalf("trial %d: random graph with %d nodes not weakly connected", trial, n)
		}
		if g.NumNodes() != n {
			t.Fatalf("trial %d: node count %d want %d", trial, g.NumNodes(), n)
		}
	}
}

func TestRandomTreeEdgeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nodes, _ := mkNodes(20)
	g := RandomTree(nodes, rng)
	if g.NumEdges() != 19 {
		t.Fatalf("tree edges = %d, want 19", g.NumEdges())
	}
	if !g.WeaklyConnected() {
		t.Fatal("tree not weakly connected")
	}
}

func TestDegreeSequenceHelpers(t *testing.T) {
	nodes, _ := mkNodes(4)
	g := Star(nodes)
	seq := g.degreeSequence()
	want := []int{1, 1, 1, 3}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("degree sequence %v, want %v", seq, want)
		}
	}
}

// TestDegreeCounterMatchesNeighbors drives the O(1) degree counter through
// random add/remove/remove-node sequences and checks it against the
// reference definition (the number of distinct undirected neighbors) for
// every node after every mutation.
func TestDegreeCounterMatchesNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		nodes, _ := mkNodes(6)
		g := New()
		for _, n := range nodes {
			g.AddNode(n)
		}
		for step := 0; step < 200; step++ {
			a, b := nodes[rng.Intn(len(nodes))], nodes[rng.Intn(len(nodes))]
			kind := Explicit
			if rng.Intn(2) == 0 {
				kind = Implicit
			}
			switch rng.Intn(5) {
			case 0, 1, 2:
				g.AddEdge(a, b, kind)
			case 3:
				g.RemoveEdge(a, b, kind)
			case 4:
				if rng.Intn(4) == 0 { // node removal is rarer, like exits
					g.RemoveNode(a)
					g.AddNode(a) // keep the node set stable for the check
				} else {
					g.RemoveEdge(a, b, kind)
				}
			}
			for _, n := range nodes {
				if got, want := g.Degree(n), len(g.UndirectedNeighbors(n)); got != want {
					t.Fatalf("trial %d step %d: Degree(%v) = %d, want %d (graph %v)",
						trial, step, n, got, want, g)
				}
			}
		}
	}
}

// TestSubgraphDegreeAndPredQueries checks the allocation-free induced-
// subgraph queries against the materialized InducedSubgraph.
func TestSubgraphDegreeAndPredQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		nodes, _ := mkNodes(7)
		g := New()
		for _, n := range nodes {
			g.AddNode(n)
		}
		for e := 0; e < 2+rng.Intn(20); e++ {
			kind := Explicit
			if rng.Intn(2) == 0 {
				kind = Implicit
			}
			g.AddEdge(nodes[rng.Intn(len(nodes))], nodes[rng.Intn(len(nodes))], kind)
		}
		keep := ref.NewSet()
		for _, n := range nodes {
			if rng.Intn(3) != 0 {
				keep.Add(n)
			}
		}
		sub := g.InducedSubgraph(keep)
		for _, n := range nodes {
			if !keep.Has(n) {
				continue
			}
			if got, want := g.UndirectedDegreeIn(n, keep), sub.Degree(n); got != want {
				t.Fatalf("trial %d: UndirectedDegreeIn(%v) = %d, want %d", trial, n, got, want)
			}
			if got, want := g.HasPredIn(n, keep), len(sub.Pred(n)) > 0; got != want {
				t.Fatalf("trial %d: HasPredIn(%v) = %v, want %v", trial, n, got, want)
			}
		}
	}
}
