package graph

import (
	"fdp/internal/ref"
)

// WeaklyConnected reports whether the graph is weakly connected: for any two
// nodes u, v there is a (not necessarily directed) path between them. The
// empty graph and singleton graphs are weakly connected.
func (g *Graph) WeaklyConnected() bool {
	return len(g.WeaklyConnectedComponents()) <= 1
}

// WeaklyConnectedComponents returns the partition of the nodes into weakly
// connected components, each sorted, with components ordered by their
// smallest member.
func (g *Graph) WeaklyConnectedComponents() [][]ref.Ref {
	visited := ref.NewSet()
	var comps [][]ref.Ref
	for _, start := range g.sortedNodes() {
		if visited.Has(start) {
			continue
		}
		comp := g.undirectedReach(start)
		for n := range comp {
			visited.Add(n)
		}
		comps = append(comps, comp.Sorted())
	}
	return comps
}

// undirectedReach returns the set of nodes reachable from start ignoring
// edge directions.
func (g *Graph) undirectedReach(start ref.Ref) ref.Set {
	seen := ref.NewSet(start)
	stack := []ref.Ref{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for b := range g.out[n] {
			if g.out[n][b].total() > 0 && !seen.Has(b) {
				seen.Add(b)
				stack = append(stack, b)
			}
		}
		if preds := g.in[n]; preds != nil {
			for a := range preds {
				if !seen.Has(a) {
					seen.Add(a)
					stack = append(stack, a)
				}
			}
		}
	}
	return seen
}

// UndirectedReach returns the set of nodes reachable from start ignoring
// edge directions, including start, or nil if start is not a node. One
// traversal answers same-component queries for any number of peers —
// callers checking a whole member list against one anchor must use this
// instead of per-pair SameWeakComponent calls, which repeat the BFS per
// query and turn a linear check quadratic.
func (g *Graph) UndirectedReach(start ref.Ref) ref.Set {
	if !g.nodes.Has(start) {
		return nil
	}
	return g.undirectedReach(start)
}

// SameWeakComponent reports whether u and v lie in the same weakly connected
// component. A node is in the same component as itself.
func (g *Graph) SameWeakComponent(u, v ref.Ref) bool {
	if u == v {
		return g.nodes.Has(u)
	}
	if !g.nodes.Has(u) || !g.nodes.Has(v) {
		return false
	}
	return g.undirectedReach(u).Has(v)
}

// Reachable reports whether there is a directed path from u to v (v == u
// counts as reachable when u is a node).
func (g *Graph) Reachable(u, v ref.Ref) bool {
	if !g.nodes.Has(u) || !g.nodes.Has(v) {
		return false
	}
	return g.ForwardReach(u).Has(v)
}

// ForwardReach returns all nodes reachable from start by directed paths,
// including start.
func (g *Graph) ForwardReach(start ref.Ref) ref.Set {
	seen := ref.NewSet(start)
	stack := []ref.Ref{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for b := range g.out[n] {
			if g.out[n][b].total() > 0 && !seen.Has(b) {
				seen.Add(b)
				stack = append(stack, b)
			}
		}
	}
	return seen
}

// ForwardReachAll returns all nodes reachable from any node of starts by
// directed paths, including the starts themselves. Used by the hibernation
// test: p is hibernating iff p is asleep with an empty channel and no awake
// or message-holding process has a directed path to p.
func (g *Graph) ForwardReachAll(starts []ref.Ref) ref.Set {
	seen := ref.NewSet()
	var stack []ref.Ref
	for _, s := range starts {
		if g.nodes.Has(s) && !seen.Has(s) {
			seen.Add(s)
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for b := range g.out[n] {
			if g.out[n][b].total() > 0 && !seen.Has(b) {
				seen.Add(b)
				stack = append(stack, b)
			}
		}
	}
	return seen
}

// StronglyConnected reports whether the graph is strongly connected. Graphs
// with fewer than two nodes are strongly connected.
func (g *Graph) StronglyConnected() bool {
	return len(g.StronglyConnectedComponents()) <= 1
}

// StronglyConnectedComponents returns the strongly connected components
// using Tarjan's algorithm (iterative). Components are sorted internally and
// ordered by smallest member.
func (g *Graph) StronglyConnectedComponents() [][]ref.Ref {
	index := make(map[ref.Ref]int)
	low := make(map[ref.Ref]int)
	onStack := ref.NewSet()
	var stack []ref.Ref
	var comps [][]ref.Ref
	next := 0

	type frame struct {
		node  ref.Ref
		succs []ref.Ref
		i     int
	}

	for _, root := range g.sortedNodes() {
		if _, seen := index[root]; seen {
			continue
		}
		var call []frame
		push := func(n ref.Ref) {
			index[n] = next
			low[n] = next
			next++
			stack = append(stack, n)
			onStack.Add(n)
			call = append(call, frame{node: n, succs: g.Succ(n)})
		}
		push(root)
		for len(call) > 0 {
			f := &call[len(call)-1]
			if f.i < len(f.succs) {
				w := f.succs[f.i]
				f.i++
				if _, seen := index[w]; !seen {
					push(w)
				} else if onStack.Has(w) {
					if index[w] < low[f.node] {
						low[f.node] = index[w]
					}
				}
				continue
			}
			// All successors processed: maybe emit a component.
			n := f.node
			if low[n] == index[n] {
				var comp []ref.Ref
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack.Remove(w)
					comp = append(comp, w)
					if w == n {
						break
					}
				}
				ref.Sort(comp)
				comps = append(comps, comp)
			}
			call = call[:len(call)-1]
			if len(call) > 0 {
				parent := call[len(call)-1].node
				if low[n] < low[parent] {
					low[parent] = low[n]
				}
			}
		}
	}
	// Order components by smallest member for determinism.
	for i := 1; i < len(comps); i++ {
		for j := i; j > 0 && ref.Less(comps[j][0], comps[j-1][0]); j-- {
			comps[j], comps[j-1] = comps[j-1], comps[j]
		}
	}
	return comps
}

// ShortestPath returns a shortest directed path from u to v (inclusive), or
// nil if v is unreachable from u. BFS with deterministic neighbor order.
func (g *Graph) ShortestPath(u, v ref.Ref) []ref.Ref {
	if !g.nodes.Has(u) || !g.nodes.Has(v) {
		return nil
	}
	if u == v {
		return []ref.Ref{u}
	}
	prev := map[ref.Ref]ref.Ref{u: u}
	queue := []ref.Ref{u}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, b := range g.Succ(n) {
			if _, seen := prev[b]; seen {
				continue
			}
			prev[b] = n
			if b == v {
				var path []ref.Ref
				for cur := v; ; cur = prev[cur] {
					path = append(path, cur)
					if cur == u {
						break
					}
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, b)
		}
	}
	return nil
}

// Diameter returns the longest shortest undirected path length between any
// node pair, or -1 if the graph is not weakly connected or empty.
func (g *Graph) Diameter() int {
	nodes := g.sortedNodes()
	if len(nodes) == 0 {
		return -1
	}
	diam := 0
	for _, s := range nodes {
		dist := map[ref.Ref]int{s: 0}
		queue := []ref.Ref{s}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, b := range g.undirectedSucc(n) {
				if _, seen := dist[b]; !seen {
					dist[b] = dist[n] + 1
					if dist[b] > diam {
						diam = dist[b]
					}
					queue = append(queue, b)
				}
			}
		}
		if len(dist) != len(nodes) {
			return -1
		}
	}
	return diam
}

func (g *Graph) undirectedSucc(n ref.Ref) []ref.Ref {
	return g.UndirectedNeighbors(n)
}

// ArticulationPoints returns nodes whose removal (with incident edges)
// increases the number of weakly connected components of the undirected
// view. These are the dangerous processes for the departure problem: a
// leaving articulation point must not exit early.
func (g *Graph) ArticulationPoints() []ref.Ref {
	base := len(g.WeaklyConnectedComponents())
	var points []ref.Ref
	for _, n := range g.sortedNodes() {
		h := g.Clone()
		h.RemoveNode(n)
		if h.NumNodes() > 0 && len(h.WeaklyConnectedComponents()) > base {
			points = append(points, n)
		}
	}
	return points
}

// BidirectedExtension returns the graph G” of the Theorem 1 proof: for each
// edge (u,v) of g, both (u,v) and (v,u) are present (once, explicit).
func (g *Graph) BidirectedExtension() *Graph {
	h := New()
	for n := range g.nodes {
		h.AddNode(n)
	}
	for a, row := range g.out {
		for b, m := range row {
			if m.total() == 0 {
				continue
			}
			if !h.HasEdge(a, b) {
				h.AddEdge(a, b, Explicit)
			}
			if !h.HasEdge(b, a) {
				h.AddEdge(b, a, Explicit)
			}
		}
	}
	return h
}
