package graph

import (
	"math/rand"
	"testing"

	"fdp/internal/ref"
)

// The fuzzer draws topologies at arbitrary sizes, so every generator must
// yield a weakly connected graph containing all its nodes at every n it
// accepts — including the degenerate n=1..3 range.
func TestGeneratorsConnectedAtAllSmallSizes(t *testing.T) {
	gens := map[string]func([]ref.Ref, *rand.Rand) *Graph{
		"line":          func(ns []ref.Ref, _ *rand.Rand) *Graph { return Line(ns) },
		"directed-line": func(ns []ref.Ref, _ *rand.Rand) *Graph { return DirectedLine(ns) },
		"ring":          func(ns []ref.Ref, _ *rand.Rand) *Graph { return Ring(ns) },
		"star":          func(ns []ref.Ref, _ *rand.Rand) *Graph { return Star(ns) },
		"tree":          func(ns []ref.Ref, _ *rand.Rand) *Graph { return BinaryTree(ns) },
		"clique":        func(ns []ref.Ref, _ *rand.Rand) *Graph { return Clique(ns) },
		"skip-graph":    func(ns []ref.Ref, _ *rand.Rand) *Graph { return SkipGraph(ns) },
		"de-bruijn":     func(ns []ref.Ref, _ *rand.Rand) *Graph { return DeBruijn(ns) },
		"random":        func(ns []ref.Ref, rng *rand.Rand) *Graph { return RandomConnected(ns, len(ns)/2, rng) },
		"random-regular": func(ns []ref.Ref, rng *rand.Rand) *Graph {
			return RandomRegular(ns, 3, rng)
		},
	}
	for name, gen := range gens {
		for _, n := range []int{1, 2, 3, 4, 5, 8, 17, 33} {
			for seed := int64(0); seed < 5; seed++ {
				s := ref.NewSpace()
				nodes := s.NewN(n)
				g := gen(nodes, rand.New(rand.NewSource(seed)))
				if g.NumNodes() != n {
					t.Fatalf("%s n=%d seed=%d: %d nodes in graph", name, n, seed, g.NumNodes())
				}
				for _, v := range nodes {
					if !g.HasNode(v) {
						t.Fatalf("%s n=%d seed=%d: node %v missing", name, n, seed, v)
					}
				}
				if !g.WeaklyConnected() {
					t.Fatalf("%s n=%d seed=%d: not weakly connected:\n%s", name, n, seed, g.String())
				}
			}
		}
	}
}

// Hypercube is only defined on powers of two; at those sizes it must be
// connected and d-regular.
func TestHypercubePowersOfTwo(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		s := ref.NewSpace()
		nodes := s.NewN(n)
		g := Hypercube(nodes)
		if !g.WeaklyConnected() {
			t.Fatalf("hypercube n=%d not connected", n)
		}
	}
}

func TestDeBruijnDegreesBounded(t *testing.T) {
	s := ref.NewSpace()
	nodes := s.NewN(16)
	g := DeBruijn(nodes)
	for _, v := range nodes {
		// Out-degree at most 2 by construction.
		if d := len(g.Succ(v)); d > 2 {
			t.Fatalf("de Bruijn out-degree of %v is %d", v, d)
		}
	}
}
