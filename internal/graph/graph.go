// Package graph implements the directed process (multi-)graph PG of the
// paper and the connectivity machinery its proofs rely on.
//
// An edge (a,b) exists when process a stores a reference of b (an explicit
// edge, drawn solid in the paper) or a's channel holds a message carrying a
// reference of b (an implicit edge, drawn dashed). PG is a multigraph: the
// same (a,b) pair may be present several times, e.g. once explicitly and
// twice implicitly; Fusion removes one superfluous copy at a time.
package graph

import (
	"fmt"
	"sort"
	"strings"

	"fdp/internal/ref"
)

// EdgeKind distinguishes explicit from implicit edges.
type EdgeKind uint8

const (
	// Explicit edges come from references stored in process variables.
	Explicit EdgeKind = iota
	// Implicit edges come from references travelling in channel messages.
	Implicit
)

// String returns "explicit" or "implicit".
func (k EdgeKind) String() string {
	if k == Explicit {
		return "explicit"
	}
	return "implicit"
}

// Edge is one directed edge of the process multigraph.
type Edge struct {
	From, To ref.Ref
	Kind     EdgeKind
}

// String renders the edge as "a->b" or "a-->b" (dashed for implicit).
func (e Edge) String() string {
	arrow := "->"
	if e.Kind == Implicit {
		arrow = "-->"
	}
	return fmt.Sprintf("%v%s%v", e.From, arrow, e.To)
}

// Graph is a directed multigraph over process references. The zero value is
// not usable; call New.
type Graph struct {
	nodes ref.Set
	// out[a][b] counts parallel edges a->b per kind.
	out map[ref.Ref]map[ref.Ref]*multiplicity
	in  map[ref.Ref]ref.Set // reverse adjacency (existence only)
	// deg counts the distinct undirected neighbors per node, maintained on
	// every edge mutation so Degree is O(1). Nodes with degree 0 are absent.
	deg map[ref.Ref]int
}

type multiplicity struct {
	explicit int
	implicit int
}

func (m *multiplicity) total() int { return m.explicit + m.implicit }

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes: ref.NewSet(),
		out:   make(map[ref.Ref]map[ref.Ref]*multiplicity),
		in:    make(map[ref.Ref]ref.Set),
		deg:   make(map[ref.Ref]int),
	}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New()
	for n := range g.nodes {
		c.AddNode(n)
	}
	for a, row := range g.out {
		for b, m := range row {
			for i := 0; i < m.explicit; i++ {
				c.AddEdge(a, b, Explicit)
			}
			for i := 0; i < m.implicit; i++ {
				c.AddEdge(a, b, Implicit)
			}
		}
	}
	return c
}

// AddNode registers a process with no edges. Adding an existing node is a
// no-op. Adding ⊥ is a no-op.
func (g *Graph) AddNode(n ref.Ref) {
	if n.IsNil() {
		return
	}
	g.nodes.Add(n)
}

// HasNode reports whether n is a node of the graph.
func (g *Graph) HasNode(n ref.Ref) bool { return g.nodes.Has(n) }

// Nodes returns all nodes in deterministic order.
func (g *Graph) Nodes() []ref.Ref { return g.nodes.Sorted() }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return g.nodes.Len() }

// AddEdge inserts one directed edge a->b of the given kind, implicitly
// registering both endpoints. Self-loops and edges touching ⊥ are ignored:
// the paper's primitives assume pairwise distinct processes and ⊥ is not a
// process.
func (g *Graph) AddEdge(a, b ref.Ref, kind EdgeKind) {
	if a.IsNil() || b.IsNil() || a == b {
		return
	}
	g.AddNode(a)
	g.AddNode(b)
	if !g.adjacent(a, b) {
		g.deg[a]++
		g.deg[b]++
	}
	row := g.out[a]
	if row == nil {
		row = make(map[ref.Ref]*multiplicity)
		g.out[a] = row
	}
	m := row[b]
	if m == nil {
		m = &multiplicity{}
		row[b] = m
	}
	if kind == Explicit {
		m.explicit++
	} else {
		m.implicit++
	}
	set := g.in[b]
	if set == nil {
		set = ref.NewSet()
		g.in[b] = set
	}
	set.Add(a)
}

// RemoveEdge removes one copy of the edge a->b of the given kind. It reports
// whether such an edge existed.
func (g *Graph) RemoveEdge(a, b ref.Ref, kind EdgeKind) bool {
	m := g.mult(a, b)
	if m == nil {
		return false
	}
	switch kind {
	case Explicit:
		if m.explicit == 0 {
			return false
		}
		m.explicit--
	case Implicit:
		if m.implicit == 0 {
			return false
		}
		m.implicit--
	}
	if m.total() == 0 {
		delete(g.out[a], b)
		if len(g.out[a]) == 0 {
			delete(g.out, a)
		}
		g.in[b].Remove(a)
		if !g.adjacent(a, b) {
			g.decDeg(a)
			g.decDeg(b)
		}
	}
	return true
}

// adjacent reports whether a and b share at least one edge in either
// direction — the undirected adjacency Degree counts.
func (g *Graph) adjacent(a, b ref.Ref) bool {
	if m := g.mult(a, b); m != nil && m.total() > 0 {
		return true
	}
	m := g.mult(b, a)
	return m != nil && m.total() > 0
}

func (g *Graph) decDeg(n ref.Ref) {
	if g.deg[n]--; g.deg[n] == 0 {
		delete(g.deg, n)
	}
}

// RemoveNode deletes n and all its incident edges, mirroring a process that
// executed exit.
func (g *Graph) RemoveNode(n ref.Ref) {
	if !g.nodes.Has(n) {
		return
	}
	// Every distinct undirected neighbor loses exactly one neighbor: n.
	for b := range g.out[n] {
		g.decDeg(b)
	}
	if preds, ok := g.in[n]; ok {
		for a := range preds {
			if m := g.mult(n, a); m == nil || m.total() == 0 {
				g.decDeg(a) // not already counted via out[n]
			}
		}
	}
	delete(g.deg, n)
	for b := range g.out[n] {
		g.in[b].Remove(n)
	}
	delete(g.out, n)
	if preds, ok := g.in[n]; ok {
		for a := range preds {
			delete(g.out[a], n)
			if len(g.out[a]) == 0 {
				delete(g.out, a)
			}
		}
		delete(g.in, n)
	}
	g.nodes.Remove(n)
}

func (g *Graph) mult(a, b ref.Ref) *multiplicity {
	row := g.out[a]
	if row == nil {
		return nil
	}
	return row[b]
}

// HasEdge reports whether at least one a->b edge of any kind exists.
func (g *Graph) HasEdge(a, b ref.Ref) bool {
	m := g.mult(a, b)
	return m != nil && m.total() > 0
}

// HasEdgeKind reports whether at least one a->b edge of the given kind
// exists.
func (g *Graph) HasEdgeKind(a, b ref.Ref, kind EdgeKind) bool {
	m := g.mult(a, b)
	if m == nil {
		return false
	}
	if kind == Explicit {
		return m.explicit > 0
	}
	return m.implicit > 0
}

// EdgeCount returns the multiplicity of a->b (all kinds).
func (g *Graph) EdgeCount(a, b ref.Ref) int {
	m := g.mult(a, b)
	if m == nil {
		return 0
	}
	return m.total()
}

// NumEdges returns the total number of edges counting multiplicity.
func (g *Graph) NumEdges() int {
	total := 0
	for _, row := range g.out {
		for _, m := range row {
			total += m.total()
		}
	}
	return total
}

// Edges returns every edge (with multiplicity) in deterministic order.
func (g *Graph) Edges() []Edge {
	var edges []Edge
	for _, a := range g.nodes.Sorted() {
		row := g.out[a]
		if row == nil {
			continue
		}
		tos := make([]ref.Ref, 0, len(row))
		for b := range row {
			tos = append(tos, b)
		}
		ref.Sort(tos)
		for _, b := range tos {
			m := row[b]
			for i := 0; i < m.explicit; i++ {
				edges = append(edges, Edge{a, b, Explicit})
			}
			for i := 0; i < m.implicit; i++ {
				edges = append(edges, Edge{a, b, Implicit})
			}
		}
	}
	return edges
}

// Succ returns the distinct successors of a in deterministic order.
func (g *Graph) Succ(a ref.Ref) []ref.Ref {
	row := g.out[a]
	out := make([]ref.Ref, 0, len(row))
	for b := range row {
		if row[b].total() > 0 {
			out = append(out, b)
		}
	}
	ref.Sort(out)
	return out
}

// Pred returns the distinct predecessors of a in deterministic order.
func (g *Graph) Pred(a ref.Ref) []ref.Ref {
	set := g.in[a]
	if set == nil {
		return nil
	}
	return set.Sorted()
}

// UndirectedNeighbors returns every node connected to a by an edge in either
// direction — the notion SINGLE quantifies over ("u has edges with at most
// one other relevant process").
func (g *Graph) UndirectedNeighbors(a ref.Ref) []ref.Ref {
	set := ref.NewSet()
	for _, b := range g.Succ(a) {
		set.Add(b)
	}
	for _, b := range g.Pred(a) {
		set.Add(b)
	}
	return set.Sorted()
}

// Degree returns the number of distinct undirected neighbors of a. It is
// O(1): the count is maintained incrementally on every edge mutation.
func (g *Graph) Degree(a ref.Ref) int { return g.deg[a] }

// UndirectedDegreeIn returns the number of distinct undirected neighbors of
// a that lie in keep — the degree a would have in InducedSubgraph(keep) —
// without materializing the subgraph or any neighbor slice. O(deg(a)).
func (g *Graph) UndirectedDegreeIn(a ref.Ref, keep ref.Set) int {
	n := 0
	row := g.out[a]
	for b, m := range row {
		if m.total() > 0 && keep.Has(b) {
			n++
		}
	}
	if preds, ok := g.in[a]; ok {
		for p := range preds {
			if !keep.Has(p) {
				continue
			}
			if m := row[p]; m != nil && m.total() > 0 {
				continue // already counted as a successor
			}
			n++
		}
	}
	return n
}

// HasPredIn reports whether a has at least one predecessor in keep, without
// materializing the predecessor slice.
func (g *Graph) HasPredIn(a ref.Ref, keep ref.Set) bool {
	if preds, ok := g.in[a]; ok {
		for p := range preds {
			if keep.Has(p) {
				return true
			}
		}
	}
	return false
}

// InducedSubgraph returns the subgraph on the node set keep, dropping all
// edges with an endpoint outside keep. This is PG restricted to relevant
// processes.
func (g *Graph) InducedSubgraph(keep ref.Set) *Graph {
	s := New()
	for n := range g.nodes {
		if keep.Has(n) {
			s.AddNode(n)
		}
	}
	for a, row := range g.out {
		if !keep.Has(a) {
			continue
		}
		for b, m := range row {
			if !keep.Has(b) {
				continue
			}
			for i := 0; i < m.explicit; i++ {
				s.AddEdge(a, b, Explicit)
			}
			for i := 0; i < m.implicit; i++ {
				s.AddEdge(a, b, Implicit)
			}
		}
	}
	return s
}

// Equal reports whether g and h have the same nodes and the same edge
// multiset (kind-sensitive).
func (g *Graph) Equal(h *Graph) bool {
	if !g.nodes.Equal(h.nodes) {
		return false
	}
	for a := range g.nodes {
		grow, hrow := g.out[a], h.out[a]
		for b, m := range grow {
			hm := hrow[b]
			if m.total() == 0 {
				if hm != nil && hm.total() != 0 {
					return false
				}
				continue
			}
			if hm == nil || hm.explicit != m.explicit || hm.implicit != m.implicit {
				return false
			}
		}
		for b, hm := range hrow {
			if hm.total() == 0 {
				continue
			}
			if gm := grow[b]; gm == nil || gm.total() == 0 {
				return false
			}
		}
	}
	return true
}

// SameSimpleDigraph reports whether g and h have the same nodes and the same
// set of directed edges ignoring multiplicity and kind. This is the notion
// of "reaching topology G′" used by Theorem 1: a protocol cannot control
// whether an edge is momentarily implicit.
func (g *Graph) SameSimpleDigraph(h *Graph) bool {
	if !g.nodes.Equal(h.nodes) {
		return false
	}
	for a := range g.nodes {
		for b := range g.out[a] {
			if g.out[a][b].total() > 0 && !h.HasEdge(a, b) {
				return false
			}
		}
		for b := range h.out[a] {
			if h.out[a][b].total() > 0 && !g.HasEdge(a, b) {
				return false
			}
		}
	}
	return true
}

// String renders a compact description, for debugging and test failures.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph{n=%d", g.NumNodes())
	for _, e := range g.Edges() {
		b.WriteString(" ")
		b.WriteString(e.String())
	}
	b.WriteString("}")
	return b.String()
}

// DOT renders the graph in Graphviz format. Explicit edges are solid,
// implicit edges dashed, matching the paper's figures.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	for _, n := range g.Nodes() {
		fmt.Fprintf(&b, "  %q;\n", n.String())
	}
	for _, e := range g.Edges() {
		style := "solid"
		if e.Kind == Implicit {
			style = "dashed"
		}
		fmt.Fprintf(&b, "  %q -> %q [style=%s];\n", e.From.String(), e.To.String(), style)
	}
	b.WriteString("}\n")
	return b.String()
}

// sortedNodes is a helper for deterministic traversals.
func (g *Graph) sortedNodes() []ref.Ref { return g.nodes.Sorted() }

// degreeSequence returns the sorted undirected degree sequence, used by
// tests comparing generated topologies.
func (g *Graph) degreeSequence() []int {
	seq := make([]int, 0, g.NumNodes())
	for n := range g.nodes {
		seq = append(seq, g.Degree(n))
	}
	sort.Ints(seq)
	return seq
}
