package churn

import (
	"errors"
	"testing"

	"fdp/internal/core"
	"fdp/internal/oracle"
	"fdp/internal/sim"
)

func TestBuildBasics(t *testing.T) {
	s := Build(Config{N: 10, Topology: TopoRing, LeaveFraction: 0.5,
		Pattern: LeaveRandom, Oracle: oracle.Single{}, Seed: 1})
	if len(s.Nodes) != 10 || len(s.Procs) != 10 {
		t.Fatal("wrong node count")
	}
	if s.Leaving.Len() != 5 {
		t.Fatalf("leavers = %d, want 5", s.Leaving.Len())
	}
	if len(s.StayingNodes())+len(s.LeavingNodes()) != 10 {
		t.Fatal("partition broken")
	}
	for _, r := range s.LeavingNodes() {
		if s.World.ModeOf(r) != sim.Leaving {
			t.Fatal("mode not applied")
		}
	}
	if s.World.InitialComponents() == nil {
		t.Fatal("initial state not sealed")
	}
}

func TestBuildCleanStateIsValid(t *testing.T) {
	s := Build(Config{N: 12, Topology: TopoRandom, LeaveFraction: 0.4,
		Pattern: LeaveRandom, Seed: 3})
	if phi := core.Phi(s.World); phi != 0 {
		t.Fatalf("clean build must have Φ = 0, got %d", phi)
	}
}

func TestBuildCorruptionProducesInvalidInfo(t *testing.T) {
	s := Build(Config{N: 12, Topology: TopoRandom, LeaveFraction: 0.4,
		Pattern: LeaveRandom, Seed: 3,
		Corrupt: Corruption{FlipBeliefs: 1.0, RandomAnchors: 1.0, JunkMessages: 20}})
	if phi := core.Phi(s.World); phi == 0 {
		t.Fatal("fully corrupted build must have Φ > 0")
	}
}

func TestBuildLeaveCap(t *testing.T) {
	// Fraction 1.0 must be capped to n-1: at least one staying process.
	s := Build(Config{N: 8, Topology: TopoLine, LeaveFraction: 1.0,
		Pattern: LeaveRandom, Seed: 5})
	if s.Leaving.Len() != 7 {
		t.Fatalf("leavers = %d, want 7 (capped)", s.Leaving.Len())
	}
	if len(s.StayingNodes()) != 1 {
		t.Fatal("one staying process must remain")
	}
}

func TestBuildAllButOne(t *testing.T) {
	s := Build(Config{N: 6, Topology: TopoClique, Pattern: LeaveAllButOne, Seed: 2})
	if s.Leaving.Len() != 5 {
		t.Fatalf("leavers = %d, want 5", s.Leaving.Len())
	}
}

func TestBuildArticulationTargetsCutVertices(t *testing.T) {
	s := Build(Config{N: 9, Topology: TopoStar, LeaveFraction: 0.12,
		Pattern: LeaveArticulation, Seed: 4})
	// The star hub is the only articulation point; with k=1 it must be it.
	if !s.Leaving.Has(s.Nodes[0]) {
		t.Fatal("articulation pattern must pick the star hub first")
	}
}

func TestBuildBlockIsContiguous(t *testing.T) {
	s := Build(Config{N: 10, Topology: TopoLine, LeaveFraction: 0.3,
		Pattern: LeaveBlock, Seed: 6})
	first, last := -1, -1
	for i, r := range s.Nodes {
		if s.Leaving.Has(r) {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 || last-first+1 != s.Leaving.Len() {
		t.Fatalf("block not contiguous: first=%d last=%d len=%d", first, last, s.Leaving.Len())
	}
}

func TestBuildDeterministic(t *testing.T) {
	cfg := Config{N: 15, Topology: TopoRandom, LeaveFraction: 0.5,
		Pattern: LeaveRandom, Seed: 9,
		Corrupt: Corruption{FlipBeliefs: 0.5, RandomAnchors: 0.5, JunkMessages: 10}}
	a, b := Build(cfg), Build(cfg)
	if !a.Leaving.Equal(b.Leaving) {
		t.Fatal("leaver choice nondeterministic")
	}
	if core.Phi(a.World) != core.Phi(b.World) {
		t.Fatal("corruption nondeterministic")
	}
	if !a.Initial.Equal(b.Initial) {
		t.Fatal("topology nondeterministic")
	}
}

func TestBuildInitialStateConstraints(t *testing.T) {
	// Section 1.2: initial PG weakly connected per component (here: one
	// component), all references belong to live processes.
	for topo := TopoLine; topo <= TopoRandom; topo++ {
		s := Build(Config{N: 8, Topology: topo, LeaveFraction: 0.5,
			Pattern: LeaveRandom, Seed: int64(topo),
			Corrupt: Corruption{JunkMessages: 10}})
		if !s.World.PG().WeaklyConnected() {
			t.Fatalf("%v: initial PG not weakly connected", topo)
		}
		if got := len(s.World.InitialComponents()); got != 1 {
			t.Fatalf("%v: components = %d", topo, got)
		}
	}
}

func TestTopologyAndPatternNames(t *testing.T) {
	names := []string{}
	for topo := TopoLine; topo <= TopoRandom; topo++ {
		names = append(names, topo.String())
	}
	want := []string{"line", "directed-line", "ring", "star", "tree", "clique", "hypercube", "random"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("topology name %d = %q, want %q", i, names[i], want[i])
		}
	}
	if LeaveRandom.String() != "random" || LeaveArticulation.String() != "articulation" ||
		LeaveBlock.String() != "block" || LeaveAllButOne.String() != "all-but-one" {
		t.Fatal("pattern names wrong")
	}
}

// Every topology × n∈{1,2,3,5} must either build a valid connected scenario
// or fail with the typed *BuildError — never panic, never hand back a
// disconnected or partial graph. (Found by the small-n fuzz sweep: the
// hypercube silently degenerated off powers of two, and TryBuild previously
// did not exist so nonsense configs panicked deep inside generators.)
func TestSmallNTopologyTable(t *testing.T) {
	for _, topo := range Topologies() {
		for _, n := range []int{1, 2, 3, 5} {
			for seed := int64(0); seed < 3; seed++ {
				s, err := TryBuild(Config{N: n, Topology: topo, LeaveFraction: 0.5,
					Pattern: LeaveRandom, Seed: seed})
				if err != nil {
					var be *BuildError
					if !errors.As(err, &be) {
						t.Fatalf("%v n=%d: error is %T (%v), want *BuildError", topo, n, err, err)
					}
					if topo != TopoHypercube || n&(n-1) == 0 {
						t.Fatalf("%v n=%d: unexpected build error %v", topo, n, err)
					}
					continue
				}
				if topo == TopoHypercube && n&(n-1) != 0 {
					t.Fatalf("hypercube n=%d: want *BuildError, built fine", n)
				}
				if got := s.Initial.NumNodes(); got != n {
					t.Fatalf("%v n=%d: initial graph has %d nodes", topo, n, got)
				}
				if !s.Initial.WeaklyConnected() {
					t.Fatalf("%v n=%d seed=%d: initial graph disconnected:\n%s", topo, n, seed, s.Initial.String())
				}
				if len(s.StayingNodes()) < 1 {
					t.Fatalf("%v n=%d: no staying process", topo, n)
				}
			}
		}
	}
}

func TestExplicitLeaverIndices(t *testing.T) {
	s, err := TryBuild(Config{N: 6, Topology: TopoRing, Seed: 1,
		LeaverIndices: []int{0, 2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 2, 4} {
		if !s.Leaving.Has(s.Nodes[i]) {
			t.Fatalf("node %d not leaving", i)
		}
	}
	if got := s.LeaverIndexes(); len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("LeaverIndexes = %v", got)
	}
	// All nodes leaving violates the one-staying-per-component invariant.
	if _, err := TryBuild(Config{N: 3, Topology: TopoRing, Seed: 1,
		LeaverIndices: []int{0, 1, 2}}); err == nil {
		t.Fatal("want invariant violation error")
	}
	// Out-of-range index is a typed config error.
	if _, err := TryBuild(Config{N: 3, Topology: TopoRing, Seed: 1,
		LeaverIndices: []int{7}}); err == nil {
		t.Fatal("want out-of-range error")
	}
}

func TestBuildZeroNodesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("N=0 must panic")
		}
	}()
	Build(Config{N: 0})
}

func TestBuildMultiComponent(t *testing.T) {
	s := Build(Config{N: 12, Topology: TopoRing, LeaveFraction: 0.5,
		Pattern: LeaveRandom, Components: 3, Seed: 8})
	if got := len(s.World.InitialComponents()); got != 3 {
		t.Fatalf("components = %d, want 3", got)
	}
	// Each component keeps at least one staying process.
	for _, comp := range s.World.InitialComponents() {
		staying := 0
		for _, r := range comp {
			if !s.Leaving.Has(r) {
				staying++
			}
		}
		if staying == 0 {
			t.Fatal("component with no staying process")
		}
	}
}

func TestBuildMultiComponentConverges(t *testing.T) {
	s := Build(Config{N: 12, Topology: TopoLine, LeaveFraction: 0.4,
		Pattern: LeaveRandom, Components: 2, Seed: 9,
		Corrupt: Corruption{FlipBeliefs: 0.4, JunkMessages: 6},
		Oracle:  oracle.Single{}})
	res := sim.Run(s.World, sim.NewRandomScheduler(9, 256), sim.RunOptions{
		Variant: sim.FDP, MaxSteps: 400000, CheckSafety: true,
	})
	if res.SafetyViolation != nil || !res.Converged {
		t.Fatalf("multi-component run failed: %+v", res)
	}
	// Components must not have merged: per initial component, staying
	// processes connected within it and no cross-component path.
	comps := s.World.InitialComponents()
	pg := s.World.PG()
	for _, a := range comps[0] {
		if s.World.LifeOf(a) == sim.Gone {
			continue
		}
		for _, b := range comps[1] {
			if s.World.LifeOf(b) == sim.Gone {
				continue
			}
			if pg.SameWeakComponent(a, b) {
				t.Fatal("components merged")
			}
		}
	}
}
