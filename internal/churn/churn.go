// Package churn builds simulation scenarios: an initial topology, a choice
// of leaving processes, and optional corruption of the initial state
// (invalid mode beliefs, stale anchors, junk in-flight messages) — the
// "arbitrary initial states" the self-stabilizing protocol must recover
// from.
//
// The builder enforces the paper's constraints on initial states (Section
// 1.2 and the Section 1.5 note): every process is relevant, only finitely
// many action-triggering messages exist, every reference belongs to a live
// process, and at least one staying process exists per weakly connected
// component.
package churn

import (
	"fmt"
	"math/rand"

	"fdp/internal/core"
	"fdp/internal/graph"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// Topology selects the initial overlay shape.
type Topology uint8

// Topology kinds.
const (
	TopoLine Topology = iota
	TopoDirectedLine
	TopoRing
	TopoStar
	TopoTree
	TopoClique
	TopoHypercube
	TopoRandom
)

// String names the topology.
func (t Topology) String() string {
	switch t {
	case TopoLine:
		return "line"
	case TopoDirectedLine:
		return "directed-line"
	case TopoRing:
		return "ring"
	case TopoStar:
		return "star"
	case TopoTree:
		return "tree"
	case TopoClique:
		return "clique"
	case TopoHypercube:
		return "hypercube"
	default:
		return "random"
	}
}

// Build the initial graph for a topology.
func (t Topology) Build(nodes []ref.Ref, rng *rand.Rand) *graph.Graph {
	switch t {
	case TopoLine:
		return graph.Line(nodes)
	case TopoDirectedLine:
		return graph.DirectedLine(nodes)
	case TopoRing:
		return graph.Ring(nodes)
	case TopoStar:
		return graph.Star(nodes)
	case TopoTree:
		return graph.BinaryTree(nodes)
	case TopoClique:
		return graph.Clique(nodes)
	case TopoHypercube:
		return graph.Hypercube(nodes)
	default:
		return graph.RandomConnected(nodes, len(nodes)/2, rng)
	}
}

// LeavePattern selects which processes want to leave.
type LeavePattern uint8

// Leave patterns.
const (
	// LeaveRandom picks a uniform random subset of the requested size.
	LeaveRandom LeavePattern = iota
	// LeaveArticulation prefers articulation points — the adversarial
	// placement, since those are exactly the processes whose naive removal
	// disconnects the overlay.
	LeaveArticulation
	// LeaveBlock picks a contiguous block of the node list (burst churn in
	// one region).
	LeaveBlock
	// LeaveAllButOne marks every process but one as leaving — the extreme
	// case still permitted by the one-staying-process-per-component rule.
	LeaveAllButOne
)

// String names the pattern.
func (p LeavePattern) String() string {
	switch p {
	case LeaveRandom:
		return "random"
	case LeaveArticulation:
		return "articulation"
	case LeaveBlock:
		return "block"
	default:
		return "all-but-one"
	}
}

// Corruption configures how far the initial state deviates from a valid
// one. Zero value = clean start.
type Corruption struct {
	// FlipBeliefs is the probability that each stored mode belief is
	// flipped to the wrong value.
	FlipBeliefs float64
	// RandomAnchors is the probability that each process starts with a
	// random anchor (staying processes should have none; leaving processes
	// may get one pointing at a leaving process — both invalid).
	RandomAnchors float64
	// JunkMessages injects this many random present/forward messages with
	// random references and random (often wrong) mode claims.
	JunkMessages int
	// AsleepLeavers (FSP only) starts this fraction of leaving processes
	// asleep... the model only allows initial states where processes are
	// relevant; an asleep process with a pending message is relevant, so
	// the builder pairs each asleep start with a wake-up message.
	// (Unused in FDP, where sleep does not exist.)
	AsleepLeavers float64
}

// Config describes a scenario.
type Config struct {
	N             int
	Topology      Topology
	LeaveFraction float64 // fraction of processes leaving (capped so each component keeps one staying process)
	Pattern       LeavePattern
	Corrupt       Corruption
	Variant       core.Variant
	Oracle        sim.Oracle
	Seed          int64
	// Components splits the N processes into this many disjoint overlay
	// components (0/1 = a single component). Legitimacy condition (iii) is
	// per initial component, and the protocol must neither merge nor
	// disconnect them.
	Components int
}

// Scenario is a built world ready to run.
type Scenario struct {
	Config  Config
	Space   *ref.Space
	Nodes   []ref.Ref
	World   *sim.World
	Procs   map[ref.Ref]*core.Proc
	Leaving ref.Set
	Initial *graph.Graph
	// parts is the component partition; corruption stays within a part so
	// components are never accidentally merged.
	parts [][]ref.Ref
}

// partOf returns the component slice containing r.
func (s *Scenario) partOf(r ref.Ref) []ref.Ref {
	for _, p := range s.parts {
		for _, x := range p {
			if x == r {
				return p
			}
		}
	}
	return s.Nodes
}

// Build constructs the scenario. It panics on nonsensical configs (N < 1);
// scenario construction errors are programming errors.
func Build(cfg Config) *Scenario {
	if cfg.N < 1 {
		panic(fmt.Sprintf("churn: N = %d", cfg.N))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	space := ref.NewSpace()
	nodes := space.NewN(cfg.N)

	comps := cfg.Components
	if comps < 1 {
		comps = 1
	}
	if comps > cfg.N {
		comps = cfg.N
	}
	// Build each component's topology separately and take the union, then
	// pick leavers per component (so every component keeps one staying
	// process, the Section 1.5 requirement).
	g := graph.New()
	leaving := ref.NewSet()
	var parts [][]ref.Ref
	per := cfg.N / comps
	for c := 0; c < comps; c++ {
		lo := c * per
		hi := lo + per
		if c == comps-1 {
			hi = cfg.N
		}
		part := nodes[lo:hi]
		parts = append(parts, part)
		sub := cfg.Topology.Build(part, rng)
		for _, e := range sub.Edges() {
			g.AddEdge(e.From, e.To, e.Kind)
		}
		for _, n := range part {
			g.AddNode(n)
		}
		subCfg := cfg
		subCfg.N = len(part)
		for _, r := range pickLeavers(sub, part, subCfg, rng).Sorted() {
			leaving.Add(r)
		}
	}

	w := sim.NewWorld(cfg.Oracle)
	procs := make(map[ref.Ref]*core.Proc, cfg.N)
	for _, r := range nodes {
		p := core.New(cfg.Variant)
		procs[r] = p
		mode := sim.Staying
		if leaving.Has(r) {
			mode = sim.Leaving
		}
		w.AddProcess(r, mode, p)
	}
	trueMode := func(r ref.Ref) sim.Mode {
		if leaving.Has(r) {
			return sim.Leaving
		}
		return sim.Staying
	}

	// Install the topology's explicit edges with (initially valid) beliefs.
	for _, e := range g.Edges() {
		procs[e.From].SetNeighbor(e.To, trueMode(e.To))
	}

	s := &Scenario{
		Config: cfg, Space: space, Nodes: nodes, World: w,
		Procs: procs, Leaving: leaving, Initial: g, parts: parts,
	}
	s.corrupt(rng)
	w.SealInitialState()
	return s
}

func pickLeavers(g *graph.Graph, nodes []ref.Ref, cfg Config, rng *rand.Rand) ref.Set {
	n := len(nodes)
	k := int(cfg.LeaveFraction*float64(n) + 0.5)
	if cfg.Pattern == LeaveAllButOne {
		k = n - 1
	}
	if k > n-1 {
		k = n - 1 // at least one staying process per (connected) component
	}
	if k < 0 {
		k = 0
	}
	leaving := ref.NewSet()
	switch cfg.Pattern {
	case LeaveArticulation:
		for _, a := range g.ArticulationPoints() {
			if leaving.Len() >= k {
				break
			}
			leaving.Add(a)
		}
		for _, i := range rng.Perm(n) {
			if leaving.Len() >= k {
				break
			}
			leaving.Add(nodes[i])
		}
	case LeaveBlock:
		start := 0
		if n > k {
			start = rng.Intn(n - k)
		}
		for i := start; i < start+k; i++ {
			leaving.Add(nodes[i])
		}
	case LeaveAllButOne:
		keep := rng.Intn(n)
		for i, r := range nodes {
			if i != keep {
				leaving.Add(r)
			}
		}
	default: // LeaveRandom
		for _, i := range rng.Perm(n)[:k] {
			leaving.Add(nodes[i])
		}
	}
	return leaving
}

// corrupt applies the configured initial-state corruption.
func (s *Scenario) corrupt(rng *rand.Rand) {
	c := s.Config.Corrupt
	flip := func(m sim.Mode) sim.Mode {
		if m == sim.Staying {
			return sim.Leaving
		}
		return sim.Staying
	}
	for _, r := range s.Nodes {
		p := s.Procs[r]
		if c.FlipBeliefs > 0 {
			beliefs := p.Neighbors()
			for _, v := range p.NeighborRefs() { // deterministic order
				if rng.Float64() < c.FlipBeliefs {
					p.SetNeighbor(v, flip(beliefs[v]))
				}
			}
		}
		if c.RandomAnchors > 0 && rng.Float64() < c.RandomAnchors {
			part := s.partOf(r)
			a := part[rng.Intn(len(part))]
			if a != r {
				// A random belief, frequently wrong.
				belief := sim.Staying
				if rng.Intn(2) == 0 {
					belief = sim.Leaving
				}
				p.SetAnchor(a, belief)
			}
		}
	}
	for i := 0; i < c.JunkMessages; i++ {
		to := s.Nodes[rng.Intn(len(s.Nodes))]
		part := s.partOf(to)
		carried := part[rng.Intn(len(part))]
		claim := sim.Staying
		if rng.Intn(2) == 0 {
			claim = sim.Leaving
		}
		label := core.LabelPresent
		if rng.Intn(2) == 0 {
			label = core.LabelForward
		}
		s.World.Enqueue(to, sim.NewMessage(label, sim.RefInfo{Ref: carried, Mode: claim}))
	}
}

// StayingNodes returns the staying processes in deterministic order.
func (s *Scenario) StayingNodes() []ref.Ref {
	var out []ref.Ref
	for _, r := range s.Nodes {
		if !s.Leaving.Has(r) {
			out = append(out, r)
		}
	}
	return out
}

// LeavingNodes returns the leaving processes in deterministic order.
func (s *Scenario) LeavingNodes() []ref.Ref {
	var out []ref.Ref
	for _, r := range s.Nodes {
		if s.Leaving.Has(r) {
			out = append(out, r)
		}
	}
	return out
}
