// Package churn builds simulation scenarios: an initial topology, a choice
// of leaving processes, and optional corruption of the initial state
// (invalid mode beliefs, stale anchors, junk in-flight messages) — the
// "arbitrary initial states" the self-stabilizing protocol must recover
// from.
//
// The builder enforces the paper's constraints on initial states (Section
// 1.2 and the Section 1.5 note): every process is relevant, only finitely
// many action-triggering messages exist, every reference belongs to a live
// process, and at least one staying process exists per weakly connected
// component.
//
//fdp:decomposable
package churn

import (
	"fmt"
	"math/rand"

	"fdp/internal/core"
	"fdp/internal/graph"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// Topology selects the initial overlay shape.
type Topology uint8

// Topology kinds.
const (
	TopoLine Topology = iota
	TopoDirectedLine
	TopoRing
	TopoStar
	TopoTree
	TopoClique
	TopoHypercube
	TopoRandom
	TopoSkipGraph
	TopoDeBruijn
	TopoRandomRegular
)

// Topologies lists every topology kind, in declaration order. Name lookups
// and the fuzzer's generator iterate it instead of hard-coding the enum
// bounds.
func Topologies() []Topology {
	return []Topology{
		TopoLine, TopoDirectedLine, TopoRing, TopoStar, TopoTree,
		TopoClique, TopoHypercube, TopoRandom, TopoSkipGraph,
		TopoDeBruijn, TopoRandomRegular,
	}
}

// String names the topology.
func (t Topology) String() string {
	switch t {
	case TopoLine:
		return "line"
	case TopoDirectedLine:
		return "directed-line"
	case TopoRing:
		return "ring"
	case TopoStar:
		return "star"
	case TopoTree:
		return "tree"
	case TopoClique:
		return "clique"
	case TopoHypercube:
		return "hypercube"
	case TopoSkipGraph:
		return "skip-graph"
	case TopoDeBruijn:
		return "de-bruijn"
	case TopoRandomRegular:
		return "random-regular"
	default:
		return "random"
	}
}

// BuildError is the typed error Topology.Build returns when a topology
// cannot be realized on the given node count — a hypercube on a non-power-
// of-two, or any topology on zero nodes. Scenario builders surface it
// instead of panicking or silently degenerating.
type BuildError struct {
	Topology Topology
	N        int
	Reason   string
}

// Error implements error.
func (e *BuildError) Error() string {
	return fmt.Sprintf("churn: cannot build %s topology on %d node(s): %s", e.Topology, e.N, e.Reason)
}

// Build constructs the initial graph for a topology. The result is always a
// valid weakly connected graph over exactly the given nodes; node counts the
// topology cannot host yield a *BuildError instead.
func (t Topology) Build(nodes []ref.Ref, rng *rand.Rand) (*graph.Graph, error) {
	n := len(nodes)
	if n < 1 {
		return nil, &BuildError{Topology: t, N: n, Reason: "need at least one node"}
	}
	var g *graph.Graph
	switch t {
	case TopoLine:
		g = graph.Line(nodes)
	case TopoDirectedLine:
		g = graph.DirectedLine(nodes)
	case TopoRing:
		g = graph.Ring(nodes)
	case TopoStar:
		g = graph.Star(nodes)
	case TopoTree:
		g = graph.BinaryTree(nodes)
	case TopoClique:
		g = graph.Clique(nodes)
	case TopoHypercube:
		if n&(n-1) != 0 {
			return nil, &BuildError{Topology: t, N: n, Reason: "hypercube needs a power-of-two node count"}
		}
		g = graph.Hypercube(nodes)
	case TopoSkipGraph:
		g = graph.SkipGraph(nodes)
	case TopoDeBruijn:
		g = graph.DeBruijn(nodes)
	case TopoRandomRegular:
		g = graph.RandomRegular(nodes, 3, rng)
	default:
		g = graph.RandomConnected(nodes, n/2, rng)
	}
	// Every generator is connected by construction; verify anyway so a
	// future generator bug surfaces here as a typed error, not as a spurious
	// Lemma 2 violation deep inside a run.
	if g.NumNodes() != n || !g.WeaklyConnected() {
		return nil, &BuildError{Topology: t, N: n, Reason: "generator produced a disconnected graph"}
	}
	return g, nil
}

// LeavePattern selects which processes want to leave.
type LeavePattern uint8

// Leave patterns.
const (
	// LeaveRandom picks a uniform random subset of the requested size.
	LeaveRandom LeavePattern = iota
	// LeaveArticulation prefers articulation points — the adversarial
	// placement, since those are exactly the processes whose naive removal
	// disconnects the overlay.
	LeaveArticulation
	// LeaveBlock picks a contiguous block of the node list (burst churn in
	// one region).
	LeaveBlock
	// LeaveAllButOne marks every process but one as leaving — the extreme
	// case still permitted by the one-staying-process-per-component rule.
	LeaveAllButOne
	// LeaveNeighborhood marks all but one member of one process's closed
	// undirected neighborhood as leaving: the targeted burst that leaves a
	// single survivor responsible for re-stitching the hole around it.
	// LeaveFraction is ignored.
	LeaveNeighborhood
)

// Patterns lists every leave pattern, in declaration order.
func Patterns() []LeavePattern {
	return []LeavePattern{
		LeaveRandom, LeaveArticulation, LeaveBlock, LeaveAllButOne,
		LeaveNeighborhood,
	}
}

// String names the pattern.
func (p LeavePattern) String() string {
	switch p {
	case LeaveRandom:
		return "random"
	case LeaveArticulation:
		return "articulation"
	case LeaveBlock:
		return "block"
	case LeaveNeighborhood:
		return "neighborhood"
	default:
		return "all-but-one"
	}
}

// Corruption configures how far the initial state deviates from a valid
// one. Zero value = clean start.
type Corruption struct {
	// FlipBeliefs is the probability that each stored mode belief is
	// flipped to the wrong value.
	FlipBeliefs float64
	// RandomAnchors is the probability that each process starts with a
	// random anchor (staying processes should have none; leaving processes
	// may get one pointing at a leaving process — both invalid).
	RandomAnchors float64
	// JunkMessages injects this many random present/forward messages with
	// random references and random (often wrong) mode claims.
	JunkMessages int
	// AsleepLeavers (FSP only) starts this fraction of leaving processes
	// asleep... the model only allows initial states where processes are
	// relevant; an asleep process with a pending message is relevant, so
	// the builder pairs each asleep start with a wake-up message.
	// (Unused in FDP, where sleep does not exist.)
	AsleepLeavers float64
}

// Config describes a scenario.
type Config struct {
	N             int
	Topology      Topology
	LeaveFraction float64 // fraction of processes leaving (capped so each component keeps one staying process)
	Pattern       LeavePattern
	Corrupt       Corruption
	Variant       core.Variant
	Oracle        sim.Oracle
	Seed          int64
	// Components splits the N processes into this many disjoint overlay
	// components (0/1 = a single component). Legitimacy condition (iii) is
	// per initial component, and the protocol must neither merge nor
	// disconnect them.
	Components int
	// LeaverIndices, when non-empty, names the leaving processes explicitly
	// by node index and overrides Pattern/LeaveFraction entirely (no rng
	// draws are consumed picking leavers). The fuzzer's shrinker uses it to
	// drop leavers one at a time from a failing scenario while keeping the
	// rest of the construction identical; journals serialize it so shrunk
	// scenarios stay replayable.
	LeaverIndices []int
}

// Scenario is a built world ready to run.
type Scenario struct {
	Config  Config
	Space   *ref.Space
	Nodes   []ref.Ref
	World   *sim.World
	Procs   map[ref.Ref]*core.Proc
	Leaving ref.Set
	Initial *graph.Graph
	// parts is the component partition; corruption stays within a part so
	// components are never accidentally merged.
	parts [][]ref.Ref
}

// partOf returns the component slice containing r.
func (s *Scenario) partOf(r ref.Ref) []ref.Ref {
	for _, p := range s.parts {
		for _, x := range p {
			if x == r {
				return p
			}
		}
	}
	return s.Nodes
}

// Build constructs the scenario. It panics on invalid configs (N < 1, a
// topology that cannot host its component size, an explicit leaver set that
// violates the builder invariant); callers that handle arbitrary configs —
// the fuzzer, journal replay — use TryBuild instead.
func Build(cfg Config) *Scenario {
	s, err := TryBuild(cfg)
	if err != nil {
		panic(err.Error())
	}
	return s
}

// ConfigError is the typed error TryBuild returns for invalid scenario
// configurations that are not topology build failures.
type ConfigError struct {
	Field  string
	Reason string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("churn: invalid config %s: %s", e.Field, e.Reason)
}

// TryBuild constructs the scenario, returning a typed error (*BuildError or
// *ConfigError) for configurations that cannot produce a valid initial
// state: N < 1, a topology undefined at the component size, out-of-range
// explicit leaver indices, or a leaver set that strips some weak component
// of its last staying process (the Section 1.5 invariant).
//fdp:primitive init
func TryBuild(cfg Config) (*Scenario, error) {
	if cfg.N < 1 {
		return nil, &ConfigError{Field: "N", Reason: fmt.Sprintf("N = %d", cfg.N)}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	space := ref.NewSpace()
	nodes := space.NewN(cfg.N)

	comps := cfg.Components
	if comps < 1 {
		comps = 1
	}
	if comps > cfg.N {
		comps = cfg.N
	}
	// Build each component's topology separately and take the union, then
	// pick leavers per component (so every component keeps one staying
	// process, the Section 1.5 requirement).
	g := graph.New()
	leaving := ref.NewSet()
	var parts [][]ref.Ref
	per := cfg.N / comps
	for c := 0; c < comps; c++ {
		lo := c * per
		hi := lo + per
		if c == comps-1 {
			hi = cfg.N
		}
		part := nodes[lo:hi]
		parts = append(parts, part)
		sub, err := cfg.Topology.Build(part, rng)
		if err != nil {
			return nil, err
		}
		for _, e := range sub.Edges() {
			g.AddEdge(e.From, e.To, e.Kind)
		}
		for _, n := range part {
			g.AddNode(n)
		}
		if len(cfg.LeaverIndices) == 0 {
			subCfg := cfg
			subCfg.N = len(part)
			for _, r := range pickLeavers(sub, part, subCfg, rng).Sorted() {
				leaving.Add(r)
			}
		}
	}
	if len(cfg.LeaverIndices) > 0 {
		for _, i := range cfg.LeaverIndices {
			if i < 0 || i >= cfg.N {
				return nil, &ConfigError{Field: "LeaverIndices",
					Reason: fmt.Sprintf("index %d out of range [0,%d)", i, cfg.N)}
			}
			leaving.Add(nodes[i])
		}
	}
	// Builder invariant: every weakly connected component keeps at least one
	// staying process. Pattern-based picking guarantees it per part; an
	// explicit leaver set must be validated.
	for _, comp := range g.WeaklyConnectedComponents() {
		stays := false
		for _, r := range comp {
			if !leaving.Has(r) {
				stays = true
				break
			}
		}
		if !stays {
			return nil, &ConfigError{Field: "LeaverIndices",
				Reason: "a weak component has no staying process"}
		}
	}

	w := sim.NewWorld(cfg.Oracle)
	procs := make(map[ref.Ref]*core.Proc, cfg.N)
	for _, r := range nodes {
		p := core.New(cfg.Variant)
		procs[r] = p
		mode := sim.Staying
		if leaving.Has(r) {
			mode = sim.Leaving
		}
		w.AddProcess(r, mode, p)
	}
	trueMode := func(r ref.Ref) sim.Mode {
		if leaving.Has(r) {
			return sim.Leaving
		}
		return sim.Staying
	}

	// Install the topology's explicit edges with (initially valid) beliefs.
	for _, e := range g.Edges() {
		procs[e.From].SetNeighbor(e.To, trueMode(e.To))
	}

	s := &Scenario{
		Config: cfg, Space: space, Nodes: nodes, World: w,
		Procs: procs, Leaving: leaving, Initial: g, parts: parts,
	}
	s.corrupt(rng)
	w.SealInitialState()
	return s, nil
}

// LeaverIndexes returns the node indices of the leaving processes in
// ascending order — the explicit-leaver image of this scenario's choice,
// usable as Config.LeaverIndices to pin (and then shrink) the leaver set.
func (s *Scenario) LeaverIndexes() []int {
	var out []int
	for i, r := range s.Nodes {
		if s.Leaving.Has(r) {
			out = append(out, i)
		}
	}
	return out
}

func pickLeavers(g *graph.Graph, nodes []ref.Ref, cfg Config, rng *rand.Rand) ref.Set {
	n := len(nodes)
	k := int(cfg.LeaveFraction*float64(n) + 0.5)
	if cfg.Pattern == LeaveAllButOne {
		k = n - 1
	}
	if k > n-1 {
		k = n - 1 // at least one staying process per (connected) component
	}
	if k < 0 {
		k = 0
	}
	leaving := ref.NewSet()
	switch cfg.Pattern {
	case LeaveArticulation:
		for _, a := range g.ArticulationPoints() {
			if leaving.Len() >= k {
				break
			}
			leaving.Add(a)
		}
		for _, i := range rng.Perm(n) {
			if leaving.Len() >= k {
				break
			}
			leaving.Add(nodes[i])
		}
	case LeaveBlock:
		start := 0
		if n > k {
			start = rng.Intn(n - k)
		}
		for i := start; i < start+k; i++ {
			leaving.Add(nodes[i])
		}
	case LeaveAllButOne:
		keep := rng.Intn(n)
		for i, r := range nodes {
			if i != keep {
				leaving.Add(r)
			}
		}
	case LeaveNeighborhood:
		// The closed undirected neighborhood of one random process leaves,
		// except for one random member kept staying. The component invariant
		// holds: the kept member stays, and so does every process outside the
		// neighborhood.
		center := nodes[rng.Intn(n)]
		nbhd := append([]ref.Ref{center}, g.UndirectedNeighbors(center)...)
		ref.Sort(nbhd)
		keep := nbhd[rng.Intn(len(nbhd))]
		for _, r := range nbhd {
			if r != keep {
				leaving.Add(r)
			}
		}
	default: // LeaveRandom
		for _, i := range rng.Perm(n)[:k] {
			leaving.Add(nodes[i])
		}
	}
	return leaving
}

// corrupt applies the configured initial-state corruption.
func (s *Scenario) corrupt(rng *rand.Rand) {
	c := s.Config.Corrupt
	flip := func(m sim.Mode) sim.Mode {
		if m == sim.Staying {
			return sim.Leaving
		}
		return sim.Staying
	}
	for _, r := range s.Nodes {
		p := s.Procs[r]
		if c.FlipBeliefs > 0 {
			beliefs := p.Neighbors()
			for _, v := range p.NeighborRefs() { // deterministic order
				if rng.Float64() < c.FlipBeliefs {
					p.SetNeighbor(v, flip(beliefs[v]))
				}
			}
		}
		if c.RandomAnchors > 0 && rng.Float64() < c.RandomAnchors {
			part := s.partOf(r)
			a := part[rng.Intn(len(part))]
			if a != r {
				// A random belief, frequently wrong.
				belief := sim.Staying
				if rng.Intn(2) == 0 {
					belief = sim.Leaving
				}
				p.SetAnchor(a, belief)
			}
		}
	}
	for i := 0; i < c.JunkMessages; i++ {
		to := s.Nodes[rng.Intn(len(s.Nodes))]
		part := s.partOf(to)
		carried := part[rng.Intn(len(part))]
		claim := sim.Staying
		if rng.Intn(2) == 0 {
			claim = sim.Leaving
		}
		label := core.LabelPresent
		if rng.Intn(2) == 0 {
			label = core.LabelForward
		}
		s.World.Enqueue(to, sim.NewMessage(label, sim.RefInfo{Ref: carried, Mode: claim}))
	}
}

// StayingNodes returns the staying processes in deterministic order.
func (s *Scenario) StayingNodes() []ref.Ref {
	var out []ref.Ref
	for _, r := range s.Nodes {
		if !s.Leaving.Has(r) {
			out = append(out, r)
		}
	}
	return out
}

// LeavingNodes returns the leaving processes in deterministic order.
func (s *Scenario) LeavingNodes() []ref.Ref {
	var out []ref.Ref
	for _, r := range s.Nodes {
		if s.Leaving.Has(r) {
			out = append(out, r)
		}
	}
	return out
}
