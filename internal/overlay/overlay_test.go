package overlay

import (
	"math"
	"math/rand"
	"testing"

	"fdp/internal/graph"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

// buildWorld installs one Standalone overlay process per node with edges of
// g as the initial neighborhoods, everyone staying.
func buildWorld(g *graph.Graph, mk func(r ref.Ref) Protocol) (*sim.World, []ref.Ref) {
	nodes := g.Nodes()
	w := sim.NewWorld(nil)
	protos := make(map[ref.Ref]Protocol, len(nodes))
	for _, r := range nodes {
		p := mk(r)
		protos[r] = p
		w.AddProcess(r, sim.Staying, &Standalone{P: p})
	}
	type seeder interface{ AddNeighbor(ref.Ref) }
	for _, e := range g.Edges() {
		protos[e.From].(seeder).AddNeighbor(e.To)
	}
	w.SealInitialState()
	return w, nodes
}

// runToTarget drives the world until the overlay target topology is reached.
func runToTarget(t *testing.T, w *sim.World, nodes []ref.Ref, sched sim.Scheduler, maxSteps int) int {
	t.Helper()
	check := len(nodes)
	for w.Steps() < maxSteps {
		if w.Steps()%check == 0 && CheckTarget(w, nodes) {
			return w.Steps()
		}
		a, ok := sched.Next(w)
		if !ok {
			break
		}
		w.Execute(a)
		if !w.PG().WeaklyConnected() {
			t.Fatalf("overlay protocol disconnected PG at step %d", w.Steps())
		}
	}
	if CheckTarget(w, nodes) {
		return w.Steps()
	}
	t.Fatalf("target not reached in %d steps", w.Steps())
	return 0
}

func mkKeys(nodes []ref.Ref) Keys {
	k := make(Keys, len(nodes))
	for i, r := range nodes {
		k[r] = i
	}
	return k
}

func TestKeysOrdering(t *testing.T) {
	nodes := ref.NewSpace().NewN(5)
	k := mkKeys(nodes)
	if !k.Less(nodes[0], nodes[4]) || k.Less(nodes[3], nodes[1]) {
		t.Fatal("Less wrong")
	}
	shuffled := []ref.Ref{nodes[4], nodes[0], nodes[2]}
	k.SortAsc(shuffled)
	if shuffled[0] != nodes[0] || shuffled[2] != nodes[4] {
		t.Fatal("SortAsc wrong")
	}
}

func TestLinearizeSides(t *testing.T) {
	nodes := ref.NewSpace().NewN(5)
	k := mkKeys(nodes)
	l := NewLinearize(k)
	l.AddNeighbor(nodes[0])
	l.AddNeighbor(nodes[1])
	l.AddNeighbor(nodes[3])
	l.AddNeighbor(nodes[4])
	left, right := l.sides(nodes[2])
	if len(left) != 2 || left[0] != nodes[1] || left[1] != nodes[0] {
		t.Fatalf("left = %v (want closest first)", left)
	}
	if len(right) != 2 || right[0] != nodes[3] || right[1] != nodes[4] {
		t.Fatalf("right = %v", right)
	}
}

func TestLinearizeConvergesFromRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 6; trial++ {
		n := 4 + rng.Intn(12)
		nodes := ref.NewSpace().NewN(n)
		g := graph.RandomConnected(nodes, rng.Intn(2*n), rng)
		keys := mkKeys(nodes)
		w, members := buildWorld(g, func(ref.Ref) Protocol { return NewLinearize(keys) })
		runToTarget(t, w, members, sim.NewRandomScheduler(int64(trial), 256), 400000)
	}
}

func TestLinearizeConvergesFromLineReversed(t *testing.T) {
	// Worst case for linearization: the line in inverted key order.
	nodes := ref.NewSpace().NewN(10)
	keys := make(Keys, len(nodes))
	for i, r := range nodes {
		keys[r] = len(nodes) - i // inverted
	}
	g := graph.Line(nodes)
	w, members := buildWorld(g, func(ref.Ref) Protocol { return NewLinearize(keys) })
	runToTarget(t, w, members, sim.NewRoundScheduler(), 400000)
}

func TestLinearizeIgnoresJunkAndSelf(t *testing.T) {
	nodes := ref.NewSpace().NewN(2)
	keys := mkKeys(nodes)
	l := NewLinearize(keys)
	ctx := &recCtx{self: nodes[0]}
	l.Deliver(ctx, "bogus", []ref.Ref{nodes[1]}, nil)
	l.Deliver(ctx, LabelLink, []ref.Ref{nodes[0]}, nil) // self
	l.Deliver(ctx, LabelLink, nil, nil)                 // malformed
	if len(l.Refs()) != 0 {
		t.Fatal("junk messages must be ignored")
	}
	l.Reintegrate(ctx, nodes[1])
	l.Reintegrate(ctx, nodes[0])
	if len(l.Refs()) != 1 {
		t.Fatal("reintegrate must add non-self refs only")
	}
}

type recCtx struct {
	self ref.Ref
	sent []struct {
		to    ref.Ref
		label string
		refs  []ref.Ref
	}
}

func (c *recCtx) Self() ref.Ref { return c.self }
func (c *recCtx) Send(to ref.Ref, label string, refs []ref.Ref, payload any) {
	c.sent = append(c.sent, struct {
		to    ref.Ref
		label string
		refs  []ref.Ref
	}{to, label, refs})
}

func TestSortRingConvergesFromRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		n := 4 + rng.Intn(9)
		nodes := ref.NewSpace().NewN(n)
		g := graph.RandomConnected(nodes, rng.Intn(n), rng)
		keys := mkKeys(nodes)
		w, members := buildWorld(g, func(ref.Ref) Protocol { return NewSortRing(keys) })
		runToTarget(t, w, members, sim.NewRandomScheduler(int64(trial), 256), 600000)
		// Inspect the wrap edges explicitly.
		minP := w.ProtocolOf(members[0]).(*Standalone).P.(*SortRing)
		maxP := w.ProtocolOf(members[len(members)-1]).(*Standalone).P.(*SortRing)
		if minP.Wrap() != members[len(members)-1] || maxP.Wrap() != members[0] {
			t.Fatal("ring wrap edges wrong")
		}
	}
}

func TestSortRingInteriorDropsStaleWrap(t *testing.T) {
	nodes := ref.NewSpace().NewN(5)
	keys := mkKeys(nodes)
	s := NewSortRing(keys)
	s.AddNeighbor(nodes[1])
	s.AddNeighbor(nodes[3])
	s.setWrap(nodes[2], nodes[4]) // stale wrap at interior node
	ctx := &recCtx{self: nodes[2]}
	s.Timeout(ctx)
	if !s.Wrap().IsNil() {
		t.Fatal("interior node must drop its wrap")
	}
	// The reference is preserved in the ordinary neighborhood or delegated,
	// never deleted outright.
	found := s.lin.n.Has(nodes[4])
	for _, m := range ctx.sent {
		for _, r := range m.refs {
			if r == nodes[4] {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("stale wrap reference was lost")
	}
}

func TestSortRingSeekDelegatedRightwards(t *testing.T) {
	nodes := ref.NewSpace().NewN(4)
	keys := mkKeys(nodes)
	s := NewSortRing(keys)
	s.AddNeighbor(nodes[1])
	s.AddNeighbor(nodes[3])
	ctx := &recCtx{self: nodes[2]}
	s.Deliver(ctx, LabelSeek, []ref.Ref{nodes[0]}, nil)
	if len(ctx.sent) != 1 || ctx.sent[0].to != nodes[3] || ctx.sent[0].label != LabelSeek {
		t.Fatalf("seek must be delegated to the closest right neighbor, got %v", ctx.sent)
	}
	if !s.Wrap().IsNil() {
		t.Fatal("non-maximum must not adopt the seeker")
	}
}

func TestSortRingMaxAnswersSeek(t *testing.T) {
	nodes := ref.NewSpace().NewN(3)
	keys := mkKeys(nodes)
	s := NewSortRing(keys)
	s.AddNeighbor(nodes[1]) // only left neighbors: I am the maximum
	ctx := &recCtx{self: nodes[2]}
	s.Deliver(ctx, LabelSeek, []ref.Ref{nodes[0]}, nil)
	if s.Wrap() != nodes[0] {
		t.Fatal("maximum must adopt the seeker as wrap")
	}
	if len(ctx.sent) != 1 || ctx.sent[0].to != nodes[0] || ctx.sent[0].label != LabelWrap {
		t.Fatal("maximum must answer with owrap")
	}
}

func TestCliqueConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 4; trial++ {
		n := 4 + rng.Intn(8)
		nodes := ref.NewSpace().NewN(n)
		g := graph.RandomConnected(nodes, 0, rng)
		w, members := buildWorld(g, func(ref.Ref) Protocol { return NewCliqueTC() })
		runToTarget(t, w, members, sim.NewRandomScheduler(int64(trial), 256), 400000)
	}
}

func TestCliqueLogRounds(t *testing.T) {
	// Under the round scheduler, clique formation from a directed line
	// takes O(log n) rounds.
	for _, n := range []int{4, 8, 16, 32} {
		nodes := ref.NewSpace().NewN(n)
		g := graph.DirectedLine(nodes)
		w, members := buildWorld(g, func(ref.Ref) Protocol { return NewCliqueTC() })
		sched := sim.NewRoundScheduler()
		for w.Steps() < 4000000 && !CheckTarget(w, members) {
			a, ok := sched.Next(w)
			if !ok {
				break
			}
			w.Execute(a)
		}
		if !CheckTarget(w, members) {
			t.Fatalf("n=%d: clique not reached", n)
		}
		bound := 2*int(math.Ceil(math.Log2(float64(n)))) + 4
		if sched.Rounds() > bound {
			t.Fatalf("n=%d: %d rounds exceeds O(log n) bound %d", n, sched.Rounds(), bound)
		}
	}
}

func TestStandaloneAdapterRefs(t *testing.T) {
	nodes := ref.NewSpace().NewN(2)
	l := NewCliqueTC()
	l.AddNeighbor(nodes[1])
	s := &Standalone{P: l}
	if len(s.Refs()) != 1 || s.Refs()[0] != nodes[1] {
		t.Fatal("Standalone must expose overlay refs")
	}
}

func TestCheckTargetPanicsOnNonOverlay(t *testing.T) {
	nodes := ref.NewSpace().NewN(1)
	w := sim.NewWorld(nil)
	w.AddProcess(nodes[0], sim.Staying, nonOverlay{})
	defer func() {
		if recover() == nil {
			t.Fatal("CheckTarget must panic for non-overlay processes")
		}
	}()
	CheckTarget(w, nodes)
}

type nonOverlay struct{}

func (nonOverlay) Timeout(sim.Context)              {}
func (nonOverlay) Deliver(sim.Context, sim.Message) {}
func (nonOverlay) Refs() []ref.Ref                  { return nil }

func TestProtocolNamesAndAccessors(t *testing.T) {
	nodes := ref.NewSpace().NewN(4)
	keys := mkKeys(nodes)
	lin := NewLinearize(keys)
	ring := NewSortRing(keys)
	skip := NewSkipList(keys)
	cl := NewCliqueTC()
	if lin.Name() != "linearize" || ring.Name() != "sortring" ||
		skip.Name() != "skiplist" || cl.Name() != "clique" {
		t.Fatal("protocol names wrong")
	}
	lin.AddNeighbor(nodes[1])
	if !lin.Neighbors().Has(nodes[1]) {
		t.Fatal("Neighbors accessor wrong")
	}
	if AsLinearize(lin) != lin || AsLinearize(ring) == nil || AsLinearize(skip) == nil {
		t.Fatal("AsLinearize must resolve embedders")
	}
	if AsLinearize(cl) != nil {
		t.Fatal("clique has no linearization state")
	}
	if lin.Lin() != lin || ring.Lin() == nil || skip.Lin() == nil {
		t.Fatal("Lin accessors wrong")
	}
}

func TestReintegrateAndExcludeAcrossProtocols(t *testing.T) {
	nodes := ref.NewSpace().NewN(3)
	keys := mkKeys(nodes)
	ctx := &recCtx{self: nodes[0]}
	protos := []Protocol{NewLinearize(keys), NewSortRing(keys), NewSkipList(keys), NewCliqueTC()}
	for _, p := range protos {
		p.Reintegrate(ctx, nodes[1])
		if len(p.Refs()) != 1 {
			t.Fatalf("%s: reintegrate broken", p.Name())
		}
		p.Reintegrate(ctx, nodes[0]) // self must be ignored
		if len(p.Refs()) != 1 {
			t.Fatalf("%s: reintegrated self", p.Name())
		}
		p.Exclude(nodes[1])
		if len(p.Refs()) != 0 {
			t.Fatalf("%s: exclude broken", p.Name())
		}
	}
}
