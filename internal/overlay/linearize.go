package overlay

import (
	"fdp/internal/ref"
)

// LabelLink is the single message label of the linearization protocol: a
// link(v) message introduces or delegates the reference v to the receiver.
const LabelLink = "olink"

// Linearize is the list linearization protocol: from any weakly connected
// initial graph it stabilizes to the doubly-linked sorted list. Its actions
// decompose into the four primitives: keeping the closest neighbor on each
// side (fusion of duplicates), delegating every farther neighbor to the
// closest one on that side (delegation), and periodically self-introducing
// to both kept neighbors (introduction).
type Linearize struct {
	keys Keys
	n    ref.Set
}

var _ Protocol = (*Linearize)(nil)
var _ TargetChecker = (*Linearize)(nil)

// NewLinearize returns a linearization process using the given key order.
func NewLinearize(keys Keys) *Linearize {
	return &Linearize{keys: keys, n: ref.NewSet()}
}

// Name implements Protocol.
func (l *Linearize) Name() string { return "linearize" }

// AddNeighbor seeds the initial neighborhood — scenario construction only.
//fdp:primitive init
func (l *Linearize) AddNeighbor(v ref.Ref) { l.n.Add(v) }

// Refs implements Protocol.
func (l *Linearize) Refs() []ref.Ref { return l.n.Sorted() }

// Neighbors returns a copy of the stored neighborhood.
func (l *Linearize) Neighbors() ref.Set { return l.n.Clone() }

// sides splits the neighborhood into left (smaller key) and right (larger
// key) of self, each sorted by distance from self (closest first).
func (l *Linearize) sides(self ref.Ref) (left, right []ref.Ref) {
	for r := range l.n {
		if l.keys.Less(r, self) {
			left = append(left, r)
		} else if l.keys.Less(self, r) {
			right = append(right, r)
		}
	}
	l.keys.SortAsc(left)
	// left closest-first means descending keys.
	for i, j := 0, len(left)-1; i < j; i, j = i+1, j-1 {
		left[i], left[j] = left[j], left[i]
	}
	l.keys.SortAsc(right)
	return left, right
}

// Timeout implements Protocol: the linearization step plus periodic
// self-introduction (the Section 4.1 requirement).
func (l *Linearize) Timeout(ctx Context) {
	u := ctx.Self()
	left, right := l.sides(u)
	if len(left) > 0 {
		closest := left[0]
		for _, v := range left[1:] {
			// Delegation ♥: hand the farther-left reference to the closest
			// left neighbor and forget it.
			l.n.Remove(v) // ♥
			ctx.Send(closest, LabelLink, []ref.Ref{v}, nil) // ♥
		}
		// Introduction ♦: periodic self-introduction.
		ctx.Send(closest, LabelLink, []ref.Ref{u}, nil)
	}
	if len(right) > 0 {
		closest := right[0]
		for _, v := range right[1:] {
			l.n.Remove(v) // ♥
			ctx.Send(closest, LabelLink, []ref.Ref{v}, nil)
		}
		ctx.Send(closest, LabelLink, []ref.Ref{u}, nil) // ♦ self-introduction
	}
}

// Deliver implements Protocol.
func (l *Linearize) Deliver(ctx Context, label string, refs []ref.Ref, payload any) {
	if label != LabelLink || len(refs) != 1 {
		return
	}
	v := refs[0]
	if v == ctx.Self() {
		return // self-references carry no information
	}
	l.n.Add(v) // Fusion ♠ by set semantics when already known
}

// Reintegrate implements Protocol: an undeliverable reference is simply a
// new neighbor candidate, linearized away on the next timeout.
//fdp:primitive fusion
func (l *Linearize) Reintegrate(ctx Context, r ref.Ref) {
	if r != ctx.Self() {
		l.n.Add(r)
	}
}

// AsLinearize extracts the linearization state from a protocol that is or
// embeds Linearize (nil if neither).
func AsLinearize(p Protocol) *Linearize {
	switch v := p.(type) {
	case *Linearize:
		return v
	case interface{ Lin() *Linearize }:
		return v.Lin()
	}
	return nil
}

// Lin exposes the linearization state for embedding protocols.
func (l *Linearize) Lin() *Linearize { return l }

// InTarget implements TargetChecker: the stored neighborhoods form exactly
// the doubly-linked sorted list over members.
func (l *Linearize) InTarget(members []ref.Ref, lookup func(ref.Ref) Protocol) bool {
	if len(members) == 0 {
		return true
	}
	sorted := append([]ref.Ref(nil), members...)
	l.keys.SortAsc(sorted)
	for i, m := range sorted {
		p := AsLinearize(lookup(m))
		if p == nil {
			return false
		}
		want := ref.NewSet()
		if i > 0 {
			want.Add(sorted[i-1])
		}
		if i+1 < len(sorted) {
			want.Add(sorted[i+1])
		}
		if !p.n.Equal(want) {
			return false
		}
	}
	return true
}

// Exclude implements Protocol: remove every stored occurrence of r.
//fdp:primitive reversal
func (l *Linearize) Exclude(r ref.Ref) { l.n.Remove(r) }
