package overlay

import (
	"math/rand"
	"testing"

	"fdp/internal/graph"
	"fdp/internal/ref"
	"fdp/internal/sim"
)

func TestSkipListConvergesFromLine(t *testing.T) {
	nodes := ref.NewSpace().NewN(9)
	keys := mkKeys(nodes)
	g := graph.Line(nodes)
	w, members := buildWorld(g, func(ref.Ref) Protocol { return NewSkipList(keys) })
	runToTarget(t, w, members, sim.NewRandomScheduler(1, 256), 600000)
	// Inspect a level-1 edge explicitly: node 0 and node 2 are even
	// neighbors at level 1.
	p0 := w.ProtocolOf(members[0]).(*Standalone).P.(*SkipList)
	if !p0.Level1().Has(members[2]) {
		t.Fatal("level-1 edge 0-2 missing")
	}
}

func TestSkipListConvergesFromRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		n := 5 + rng.Intn(7)
		nodes := ref.NewSpace().NewN(n)
		keys := mkKeys(nodes)
		g := graph.RandomConnected(nodes, rng.Intn(n), rng)
		w, members := buildWorld(g, func(ref.Ref) Protocol { return NewSkipList(keys) })
		runToTarget(t, w, members, sim.NewRandomScheduler(int64(trial), 256), 600000)
	}
}

func TestSkipListDrainsGarbageLevel1(t *testing.T) {
	// Odd nodes with level-1 garbage and even nodes holding odd-key level-1
	// refs must both clean up without losing references.
	nodes := ref.NewSpace().NewN(6)
	keys := mkKeys(nodes)
	g := graph.Line(nodes)
	w, members := buildWorld(g, func(ref.Ref) Protocol { return NewSkipList(keys) })
	p1 := w.ProtocolOf(members[1]).(*Standalone).P.(*SkipList) // odd
	p2 := w.ProtocolOf(members[2]).(*Standalone).P.(*SkipList) // even
	p1.AddLevel1(members[4])
	p2.AddLevel1(members[3]) // odd-key ref at level 1: garbage
	runToTarget(t, w, members, sim.NewRandomScheduler(2, 256), 600000)
	if p1.Level1().Len() != 0 {
		t.Fatal("odd node kept level-1 state")
	}
	for r := range p2.Level1() {
		if keys[r]%2 != 0 {
			t.Fatal("even node kept odd-key level-1 ref")
		}
	}
}

func TestSkipListSingleEven(t *testing.T) {
	// Two nodes: one even, one odd — the even one's level 1 stays empty.
	nodes := ref.NewSpace().NewN(2)
	keys := mkKeys(nodes)
	g := graph.Line(nodes)
	w, members := buildWorld(g, func(ref.Ref) Protocol { return NewSkipList(keys) })
	runToTarget(t, w, members, sim.NewRoundScheduler(), 200000)
	_ = members
}

func TestSkipListProbeForwarding(t *testing.T) {
	nodes := ref.NewSpace().NewN(5)
	keys := mkKeys(nodes)
	s := NewSkipList(keys) // node 1 (odd)
	s.AddNeighbor(nodes[0])
	s.AddNeighbor(nodes[2])
	ctx := &recCtx{self: nodes[1]}
	s.Deliver(ctx, LabelProbe, []ref.Ref{nodes[0]}, nil)
	if len(ctx.sent) != 1 || ctx.sent[0].to != nodes[2] || ctx.sent[0].label != LabelProbe {
		t.Fatalf("odd node must forward the probe rightwards: %+v", ctx.sent)
	}
	// Even node adopts and answers.
	s2 := NewSkipList(keys) // pretend self = nodes[2] (even)
	ctx2 := &recCtx{self: nodes[2]}
	s2.Deliver(ctx2, LabelProbe, []ref.Ref{nodes[0]}, nil)
	if !s2.Level1().Has(nodes[0]) {
		t.Fatal("even node must adopt the prober")
	}
	if len(ctx2.sent) != 1 || ctx2.sent[0].to != nodes[0] || ctx2.sent[0].label != LabelLvl1 {
		t.Fatal("even node must answer with its own reference")
	}
}

func TestSkipListExclude(t *testing.T) {
	nodes := ref.NewSpace().NewN(4)
	keys := mkKeys(nodes)
	s := NewSkipList(keys)
	s.AddNeighbor(nodes[1])
	s.AddLevel1(nodes[2])
	s.Exclude(nodes[2])
	s.Exclude(nodes[1])
	if len(s.Refs()) != 0 {
		t.Fatal("exclude must clear both levels")
	}
}
