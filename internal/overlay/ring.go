package overlay

import (
	"fdp/internal/ref"
)

// Message labels of the sorted-ring protocol. oseek(m) travels rightwards
// carrying the reference of a node that believes it is the minimum; owrap(x)
// travels back from the maximum to close the ring.
const (
	LabelSeek = "oseek"
	LabelWrap = "owrap"
)

// SortRing stabilizes to the sorted ring: the doubly-linked sorted list
// plus a wrap edge between minimum and maximum in both directions (a
// simplified Re-Chord base ring). It extends the linearization protocol
// with endpoint discovery: the node with no left neighbor periodically
// launches a seek that is delegated rightwards until the node with no right
// neighbor stores it and answers with its own reference.
type SortRing struct {
	lin  *Linearize
	keys Keys
	// wrap is the ring-closing reference, meaningful only at the two
	// endpoints; ⊥ elsewhere.
	wrap ref.Ref
}

var _ Protocol = (*SortRing)(nil)
var _ TargetChecker = (*SortRing)(nil)

// NewSortRing returns a sorted-ring process using the given key order.
func NewSortRing(keys Keys) *SortRing {
	return &SortRing{lin: NewLinearize(keys), keys: keys}
}

// Name implements Protocol.
func (s *SortRing) Name() string { return "sortring" }

// AddNeighbor seeds the initial neighborhood — scenario construction only.
//fdp:primitive init
func (s *SortRing) AddNeighbor(v ref.Ref) { s.lin.AddNeighbor(v) }

// Wrap returns the ring-closing reference (⊥ if none).
func (s *SortRing) Wrap() ref.Ref { return s.wrap }

// Refs implements Protocol.
func (s *SortRing) Refs() []ref.Ref {
	out := s.lin.Refs()
	if !s.wrap.IsNil() {
		out = append(out, s.wrap)
	}
	return out
}

// setWrap replaces the wrap reference; the old one is not deleted (that
// would risk disconnection) but moved into the ordinary neighborhood, where
// linearization delegates it away safely.
//fdp:primitive fusion
func (s *SortRing) setWrap(self, v ref.Ref) {
	if v == self || v == s.wrap {
		return
	}
	if !s.wrap.IsNil() {
		s.lin.n.Add(s.wrap)
	}
	s.wrap = v
}

// dropWrap moves the wrap reference into the ordinary neighborhood.
//fdp:primitive fusion
func (s *SortRing) dropWrap() {
	if !s.wrap.IsNil() {
		s.lin.n.Add(s.wrap)
		s.wrap = ref.Nil
	}
}

// Timeout implements Protocol: linearize, then run endpoint discovery.
func (s *SortRing) Timeout(ctx Context) {
	u := ctx.Self()
	s.lin.Timeout(ctx)
	left, right := s.lin.sides(u)
	switch {
	case len(left) == 0 && len(right) > 0:
		// I believe I am the minimum: launch a seek rightwards.
		ctx.Send(right[0], LabelSeek, []ref.Ref{u}, nil) // ♦ carries u's own reference
		// A stale wrap pointing left of the maximum is re-linearized; a
		// correct one is re-confirmed by the seek, so keeping it is safe.
	case len(left) > 0 && len(right) > 0:
		// Interior node: endpoints are the only wrap holders.
		s.dropWrap()
	}
}

// Deliver implements Protocol.
func (s *SortRing) Deliver(ctx Context, label string, refs []ref.Ref, payload any) {
	u := ctx.Self()
	switch label {
	case LabelSeek:
		if len(refs) != 1 || refs[0] == u {
			return
		}
		m := refs[0]
		_, right := s.lin.sides(u)
		if len(right) > 0 {
			// Delegation ♥: pass the seeker rightwards.
			ctx.Send(right[0], LabelSeek, []ref.Ref{m}, nil)
			return
		}
		// I believe I am the maximum: adopt the seeker as my wrap and
		// answer with my own reference (introduction ♦).
		s.setWrap(u, m)
		ctx.Send(m, LabelWrap, []ref.Ref{u}, nil) // ♦
	case LabelWrap:
		if len(refs) != 1 || refs[0] == u {
			return
		}
		s.setWrap(u, refs[0])
	default:
		s.lin.Deliver(ctx, label, refs, payload)
	}
}

// Reintegrate implements Protocol.
//fdp:primitive fusion
func (s *SortRing) Reintegrate(ctx Context, r ref.Ref) {
	s.lin.Reintegrate(ctx, r)
}

// InTarget implements TargetChecker: the sorted list plus mutual wrap
// references between minimum and maximum (for fewer than three members the
// wrap edges coincide with list edges and only the list is required).
func (s *SortRing) InTarget(members []ref.Ref, lookup func(ref.Ref) Protocol) bool {
	if len(members) == 0 {
		return true
	}
	sorted := append([]ref.Ref(nil), members...)
	s.keys.SortAsc(sorted)
	linLookup := func(r ref.Ref) Protocol {
		return lookup(r).(*SortRing).lin
	}
	if !s.lin.InTarget(members, linLookup) {
		return false
	}
	if len(sorted) < 3 {
		return true
	}
	min := lookup(sorted[0]).(*SortRing)
	max := lookup(sorted[len(sorted)-1]).(*SortRing)
	if min.wrap != sorted[len(sorted)-1] || max.wrap != sorted[0] {
		return false
	}
	for _, m := range sorted[1 : len(sorted)-1] {
		if !lookup(m).(*SortRing).wrap.IsNil() {
			return false
		}
	}
	return true
}

// Exclude implements Protocol: remove every stored occurrence of r,
// including the wrap reference.
//fdp:primitive reversal
func (s *SortRing) Exclude(r ref.Ref) {
	s.lin.Exclude(r)
	if s.wrap == r {
		s.wrap = ref.Nil
	}
}

// Lin exposes the underlying linearization state (for overlay.AsLinearize).
func (s *SortRing) Lin() *Linearize { return s.lin }
