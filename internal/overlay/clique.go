package overlay

import (
	"fdp/internal/ref"
)

// LabelIntro is the single message label of the clique protocol.
const LabelIntro = "ointro"

// CliqueTC stabilizes to the complete graph by transitive closure (in the
// spirit of Berns et al. [7]): every process periodically introduces all of
// its neighbors to each other and itself to all of them. Only Introduction
// and Fusion are used, so the protocol trivially belongs to 𝒫.
type CliqueTC struct {
	n ref.Set
}

var _ Protocol = (*CliqueTC)(nil)
var _ TargetChecker = (*CliqueTC)(nil)

// NewCliqueTC returns a clique-formation process.
func NewCliqueTC() *CliqueTC { return &CliqueTC{n: ref.NewSet()} }

// Name implements Protocol.
func (c *CliqueTC) Name() string { return "clique" }

// AddNeighbor seeds the initial neighborhood — scenario construction only.
//fdp:primitive init
func (c *CliqueTC) AddNeighbor(v ref.Ref) { c.n.Add(v) }

// Refs implements Protocol.
func (c *CliqueTC) Refs() []ref.Ref { return c.n.Sorted() }

// Timeout implements Protocol: all-pairs introduction plus
// self-introduction.
func (c *CliqueTC) Timeout(ctx Context) {
	u := ctx.Self()
	members := c.n.Sorted()
	for _, v := range members {
		ctx.Send(v, LabelIntro, []ref.Ref{u}, nil) // ♦ self-introduction
		for _, w := range members {
			if w != v {
				ctx.Send(v, LabelIntro, []ref.Ref{w}, nil) // ♦
			}
		}
	}
}

// Deliver implements Protocol.
func (c *CliqueTC) Deliver(ctx Context, label string, refs []ref.Ref, payload any) {
	if label != LabelIntro || len(refs) != 1 {
		return
	}
	if refs[0] != ctx.Self() {
		c.n.Add(refs[0]) // ♠ fusion by set semantics
	}
}

// Reintegrate implements Protocol.
//fdp:primitive fusion
func (c *CliqueTC) Reintegrate(ctx Context, r ref.Ref) {
	if r != ctx.Self() {
		c.n.Add(r)
	}
}

// InTarget implements TargetChecker: every member stores exactly all other
// members.
func (c *CliqueTC) InTarget(members []ref.Ref, lookup func(ref.Ref) Protocol) bool {
	all := ref.NewSet(members...)
	for _, m := range members {
		p, ok := lookup(m).(*CliqueTC)
		if !ok {
			return false
		}
		want := all.Clone()
		want.Remove(m)
		if !p.n.Equal(want) {
			return false
		}
	}
	return true
}

// Exclude implements Protocol: remove every stored occurrence of r.
//fdp:primitive reversal
func (c *CliqueTC) Exclude(r ref.Ref) { c.n.Remove(r) }
