package overlay

import (
	"fdp/internal/ref"
)

// Message labels of the skip-list protocol (on top of the linearization
// label). A probe travels rightwards along level 0 until it reaches the
// next even-rank node; lvl1 carries a level-1 reference.
const (
	LabelProbe = "ol1probe"
	LabelLvl1  = "olvl1"
)

// SkipList stabilizes to a two-level skip list in the spirit of Tiara
// (Clouser, Nesterenko, Scheideler): level 0 is the doubly-linked sorted
// list over all nodes; level 1 is the doubly-linked sorted list over the
// nodes with even keys, giving lookups their shortcut hops. All actions
// decompose into the four primitives — probes delegate references along
// level 0, adoption stores them, and duplicates fuse.
type SkipList struct {
	lin  *Linearize
	keys Keys
	// l1 is the level-1 neighborhood (even-key nodes only; drained into
	// level 0 at odd nodes, where any content is initial-state garbage).
	l1 ref.Set
}

var _ Protocol = (*SkipList)(nil)
var _ TargetChecker = (*SkipList)(nil)

// NewSkipList returns a skip-list process using the given key order.
func NewSkipList(keys Keys) *SkipList {
	return &SkipList{lin: NewLinearize(keys), keys: keys, l1: ref.NewSet()}
}

// Name implements Protocol.
func (s *SkipList) Name() string { return "skiplist" }

// AddNeighbor seeds the level-0 neighborhood — scenario construction only.
//fdp:primitive init
func (s *SkipList) AddNeighbor(v ref.Ref) { s.lin.AddNeighbor(v) }

// AddLevel1 seeds the level-1 neighborhood — scenario construction only
// (possibly deliberately wrong, for stabilization tests).
//fdp:primitive init
func (s *SkipList) AddLevel1(v ref.Ref) { s.l1.Add(v) }

// Level1 returns a copy of the level-1 neighborhood.
func (s *SkipList) Level1() ref.Set { return s.l1.Clone() }

// Refs implements Protocol.
func (s *SkipList) Refs() []ref.Ref {
	out := ref.NewSet(s.lin.Refs()...)
	for r := range s.l1 {
		out.Add(r)
	}
	return out.Sorted()
}

func (s *SkipList) even(r ref.Ref) bool { return s.keys[r]%2 == 0 }

// Timeout implements Protocol: linearize level 0; even nodes additionally
// linearize level 1 among even nodes and probe rightwards for their level-1
// successor; odd nodes drain any level-1 garbage into level 0.
func (s *SkipList) Timeout(ctx Context) {
	u := ctx.Self()
	s.lin.Timeout(ctx)
	if !s.even(u) {
		// Initial-state garbage: an odd node has no level 1; the refs are
		// kept by handing them to level 0 (local move, no edge change). ♠
		for r := range s.l1 {
			s.lin.n.Add(r)
		}
		s.l1 = ref.NewSet() // ♠ refs kept at level 0 above
		return
	}
	// Drop any odd-key refs from level 1 into level 0 (local move). ♠
	for r := range s.l1 {
		if !s.even(r) {
			s.lin.n.Add(r)
			s.l1.Remove(r)
		}
	}
	// Linearize level 1 among even nodes: keep the closest even neighbor
	// per side, delegate farther ones toward it.
	left, right := s.l1Sides(u)
	if len(left) > 0 {
		for _, v := range left[1:] {
			s.l1.Remove(v) // ♥
			ctx.Send(left[0], LabelLvl1, []ref.Ref{v}, nil) // ♥
		}
		ctx.Send(left[0], LabelLvl1, []ref.Ref{u}, nil) // ♦ self-introduction
	}
	if len(right) > 0 {
		for _, v := range right[1:] {
			s.l1.Remove(v) // ♥
			ctx.Send(right[0], LabelLvl1, []ref.Ref{v}, nil)
		}
		ctx.Send(right[0], LabelLvl1, []ref.Ref{u}, nil) // ♦ self-introduction
	}
	// Probe rightwards along level 0 for the next even node, so level 1
	// gets discovered even from a bare list.
	if _, l0Right := s.lin.sides(u); len(l0Right) > 0 {
		ctx.Send(l0Right[0], LabelProbe, []ref.Ref{u}, nil) // ♦/♥ chain
	}
}

// l1Sides splits the level-1 neighborhood, closest first.
func (s *SkipList) l1Sides(self ref.Ref) (left, right []ref.Ref) {
	for r := range s.l1 {
		if s.keys.Less(r, self) {
			left = append(left, r)
		} else if s.keys.Less(self, r) {
			right = append(right, r)
		}
	}
	s.keys.SortAsc(left)
	for i, j := 0, len(left)-1; i < j; i, j = i+1, j-1 {
		left[i], left[j] = left[j], left[i]
	}
	s.keys.SortAsc(right)
	return left, right
}

// Deliver implements Protocol.
func (s *SkipList) Deliver(ctx Context, label string, refs []ref.Ref, payload any) {
	u := ctx.Self()
	switch label {
	case LabelProbe:
		if len(refs) != 1 || refs[0] == u {
			return
		}
		m := refs[0]
		if s.even(u) {
			// The probe found its level-1 successor: adopt and answer. ♠/♦
			s.l1.Add(m)
			ctx.Send(m, LabelLvl1, []ref.Ref{u}, nil) // ♦
			return
		}
		// Odd node: pass the probe rightwards along level 0. ♥
		if _, right := s.lin.sides(u); len(right) > 0 {
			ctx.Send(right[0], LabelProbe, []ref.Ref{m}, nil)
			return
		}
		// No right neighbor (list end): keep the reference at level 0. ♠
		s.lin.n.Add(m)
	case LabelLvl1:
		if len(refs) != 1 || refs[0] == u {
			return
		}
		if s.even(u) && s.even(refs[0]) {
			s.l1.Add(refs[0]) // ♠
		} else {
			s.lin.n.Add(refs[0]) // garbage flows back to level 0 ♠
		}
	default:
		s.lin.Deliver(ctx, label, refs, payload)
	}
}

// Reintegrate implements Protocol.
//fdp:primitive fusion
func (s *SkipList) Reintegrate(ctx Context, r ref.Ref) {
	s.lin.Reintegrate(ctx, r)
}

// Exclude implements Protocol.
//fdp:primitive reversal
func (s *SkipList) Exclude(r ref.Ref) {
	s.lin.Exclude(r)
	s.l1.Remove(r)
}

// InTarget implements TargetChecker: level 0 is the sorted list over all
// members, level 1 the doubly-linked sorted list over the even-key members
// (single even members hold an empty level 1), and odd members hold no
// level-1 state.
func (s *SkipList) InTarget(members []ref.Ref, lookup func(ref.Ref) Protocol) bool {
	if len(members) == 0 {
		return true
	}
	linLookup := func(r ref.Ref) Protocol { return lookup(r).(*SkipList).lin }
	if !s.lin.InTarget(members, linLookup) {
		return false
	}
	var evens []ref.Ref
	for _, m := range members {
		if s.even(m) {
			evens = append(evens, m)
		} else if lookup(m).(*SkipList).l1.Len() != 0 {
			return false
		}
	}
	s.keys.SortAsc(evens)
	for i, m := range evens {
		want := ref.NewSet()
		if i > 0 {
			want.Add(evens[i-1])
		}
		if i+1 < len(evens) {
			want.Add(evens[i+1])
		}
		if !lookup(m).(*SkipList).l1.Equal(want) {
			return false
		}
	}
	return true
}

// Lin exposes the level-0 linearization state (for overlay.AsLinearize).
func (s *SkipList) Lin() *Linearize { return s.lin }
