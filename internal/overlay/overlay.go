// Package overlay implements overlay-maintenance protocols of the class 𝒫
// defined in Section 2: distributed protocols whose interactions decompose
// into the four primitives (and hence preserve weak connectivity), with the
// two additional algorithmic requirements of Section 4.1 — periodic
// self-introduction in their timeout action, and a postprocess hook able to
// reintegrate references from undeliverable messages.
//
// Three members of 𝒫 are provided, matching the families the paper cites:
//
//   - Linearize — topological self-stabilization to the sorted list
//     (Gall et al. [16], Onus–Richa–Scheideler linearization);
//   - SortRing  — the sorted ring (a simplified Re-Chord [22] base ring);
//   - CliqueTC  — clique formation by transitive closure (Berns et al. [7]).
//
// Overlay protocols are allowed something the departure protocol itself
// must not use: a fixed total order on processes. Keys models that order
// (think of it as the name/identifier baked into a process's address). The
// departure protocol of internal/core never touches keys.
//
//fdp:decomposable
package overlay

import (
	"fmt"

	"fdp/internal/ref"
	"fdp/internal/sim"
)

// Keys is the global, immutable total order on processes that overlay
// protocols may consult (the paper's "fixed total order on the nodes").
type Keys map[ref.Ref]int

// Less compares two references by key.
func (k Keys) Less(a, b ref.Ref) bool { return k[a] < k[b] }

// SortAsc sorts refs ascending by key, in place.
func (k Keys) SortAsc(refs []ref.Ref) {
	for i := 1; i < len(refs); i++ {
		for j := i; j > 0 && k.Less(refs[j], refs[j-1]); j-- {
			refs[j], refs[j-1] = refs[j-1], refs[j]
		}
	}
}

// Context is the overlay protocol's interface to the system. In standalone
// operation it maps directly onto the simulator; inside the Section 4
// framework P′ every Send is intercepted by preprocess.
type Context interface {
	// Self returns the executing process's reference.
	Self() ref.Ref
	// Send asks the process referenced by to to execute the overlay action
	// label with the given reference parameters and extra payload.
	Send(to ref.Ref, label string, refs []ref.Ref, payload any)
}

// Protocol is one process's overlay-maintenance state: a member of 𝒫 with
// the Section 4 requirements.
type Protocol interface {
	// Name identifies the protocol family in reports.
	Name() string
	// Timeout is the P-timeout action; it must perform periodic
	// self-introduction to the whole neighborhood.
	Timeout(ctx Context)
	// Deliver executes the overlay action label. Unknown labels are
	// ignored.
	Deliver(ctx Context, label string, refs []ref.Ref, payload any)
	// Refs enumerates all stored references (explicit edges).
	Refs() []ref.Ref
	// Reintegrate is the postprocess hook: it re-absorbs a (staying)
	// reference extracted from a message that could not be delivered as
	// intended.
	Reintegrate(ctx Context, r ref.Ref)
	// Exclude removes every stored occurrence of r — the postprocess hook
	// for references of leaving processes. The caller is responsible for
	// keeping the overlay connected (it hands r's process the caller's own
	// reference, a Reversal).
	Exclude(r ref.Ref)
}

// TargetChecker is implemented by protocols that can recognize their own
// target topology given the full member list (used by tests and benches;
// this is the experimenter's bird's-eye view, not protocol knowledge).
type TargetChecker interface {
	// InTarget reports whether the stored neighborhoods of all members
	// form the protocol's target topology. members must be every relevant
	// process running this protocol, and lookup resolves each member's
	// protocol instance.
	InTarget(members []ref.Ref, lookup func(ref.Ref) Protocol) bool
}

// --- Standalone adapter ---------------------------------------------------

// Standalone adapts an overlay Protocol to sim.Protocol, for running an
// overlay without the departure framework (everybody staying). Reference
// parameters travel with a Staying claim, which is correct in that setting.
type Standalone struct {
	P Protocol
}

var _ sim.Protocol = (*Standalone)(nil)

// Timeout implements sim.Protocol.
func (s *Standalone) Timeout(ctx sim.Context) {
	s.P.Timeout(&standaloneCtx{ctx})
}

// Deliver implements sim.Protocol.
func (s *Standalone) Deliver(ctx sim.Context, msg sim.Message) {
	refs := make([]ref.Ref, len(msg.Refs))
	for i, ri := range msg.Refs {
		refs[i] = ri.Ref
	}
	s.P.Deliver(&standaloneCtx{ctx}, msg.Label, refs, msg.Payload)
}

// Refs implements sim.Protocol.
func (s *Standalone) Refs() []ref.Ref { return s.P.Refs() }

type standaloneCtx struct{ inner sim.Context }

func (c *standaloneCtx) Self() ref.Ref { return c.inner.Self() }

func (c *standaloneCtx) Send(to ref.Ref, label string, refs []ref.Ref, payload any) {
	ris := make([]sim.RefInfo, len(refs))
	for i, r := range refs {
		ris[i] = sim.RefInfo{Ref: r, Mode: sim.Staying}
	}
	c.inner.Send(to, sim.Message{Label: label, Refs: ris, Payload: payload}) // transport only: the caller's overlay-level Send is the audited move (fdp:primitive)
}

// CheckTarget is a convenience wrapper resolving Standalone instances in a
// world and asking the protocol's TargetChecker.
func CheckTarget(w *sim.World, members []ref.Ref) bool {
	if len(members) == 0 {
		return true
	}
	lookup := func(r ref.Ref) Protocol {
		switch p := w.ProtocolOf(r).(type) {
		case *Standalone:
			return p.P
		case interface{ Overlay() Protocol }:
			return p.Overlay()
		default:
			panic(fmt.Sprintf("overlay: process %v runs no overlay protocol", r))
		}
	}
	first := lookup(members[0])
	tc, ok := first.(TargetChecker)
	if !ok {
		panic(fmt.Sprintf("overlay: protocol %s has no target checker", first.Name()))
	}
	return tc.InTarget(members, lookup)
}
