package primitives

import (
	"fmt"
	"strings"

	"fdp/internal/graph"
	"fdp/internal/ref"
)

// This file makes Theorem 2 ("Introduction, Delegation, Fusion and Reversal
// are necessary for universality") executable: for each primitive it
// provides a small start/target pair such that the target is reachable with
// all four primitives but provably unreachable when that primitive is
// removed. Unreachability is established by exhaustive breadth-first search
// over the full (multiplicity-capped) state space of the small instance;
// the accompanying tests additionally check the paper's invariant argument
// (e.g. without Introduction the edge count never grows) on random
// instances, which justifies the cap.

// SearchResult reports a reachability search outcome.
type SearchResult struct {
	Reachable      bool
	Ops            []Op // a witness sequence when reachable
	StatesExplored int
}

// multiplicityCap bounds parallel edges during the search; the witness
// instances need at most two parallel edges, so a cap of three is ample.
const multiplicityCap = 3

// Reachable performs an exhaustive BFS from start over all states reachable
// with the allowed primitive kinds (nil = all four), deciding whether some
// state equals target as a simple digraph with all references absorbed.
// maxStates bounds the exploration (0 = 1<<20).
func Reachable(start, target *graph.Graph, allowed map[Kind]bool, maxStates int) SearchResult {
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	canonTarget := canonicalKey(normalized(target))
	type node struct {
		g    *graph.Graph
		ops  []Op
		key  string
		prev *node
	}
	startG := normalized(start)
	startKey := canonicalKey(startG)
	res := SearchResult{}
	if startKey == canonTarget {
		res.Reachable = true
		return res
	}
	seen := map[string]bool{startKey: true}
	queue := []node{{g: startG, key: startKey}}
	for len(queue) > 0 && res.StatesExplored < maxStates {
		cur := queue[0]
		queue = queue[1:]
		res.StatesExplored++
		for _, op := range EnabledOps(cur.g, allowed) {
			if op.Kind == AbsorbStep {
				continue // states are kept fully absorbed
			}
			next := cur.g.Clone()
			if err := Apply(next, op); err != nil {
				continue
			}
			nextN := normalized(next)
			if exceedsCap(nextN) {
				continue
			}
			key := canonicalKey(nextN)
			if seen[key] {
				continue
			}
			seen[key] = true
			ops := append(append([]Op{}, cur.ops...), op)
			if key == canonTarget {
				res.Reachable = true
				res.Ops = ops
				return res
			}
			queue = append(queue, node{g: nextN, ops: ops, key: key})
		}
	}
	return res
}

// normalized returns a copy with every implicit edge absorbed — search
// states are "all messages processed" states, which is sufficient because
// absorbing never disables a primitive.
func normalized(g *graph.Graph) *graph.Graph {
	c := g.Clone()
	AbsorbAll(c)
	return c
}

func exceedsCap(g *graph.Graph) bool {
	for _, u := range g.Nodes() {
		for _, v := range g.Succ(u) {
			if g.EdgeCount(u, v) > multiplicityCap {
				return true
			}
		}
	}
	return false
}

func canonicalKey(g *graph.Graph) string {
	var b strings.Builder
	for _, u := range g.Nodes() {
		fmt.Fprintf(&b, "%v;", u)
	}
	b.WriteString("|")
	for _, u := range g.Nodes() {
		for _, v := range g.Succ(u) {
			fmt.Fprintf(&b, "%v>%v*%d;", u, v, g.EdgeCount(u, v))
		}
	}
	return b.String()
}

// NecessityWitness is one instance of the Theorem 2 proof: Target is
// reachable from Start with all four primitives but not without Missing.
type NecessityWitness struct {
	Missing     Kind
	Description string
	Nodes       int
	Start       func(nodes []ref.Ref) *graph.Graph
	Target      func(nodes []ref.Ref) *graph.Graph
}

// Witnesses returns the four witness instances used in the Theorem 2 proof.
func Witnesses() []NecessityWitness {
	return []NecessityWitness{
		{
			Missing:     Introduction,
			Description: "only Introduction creates new edges: |E'| > |E| is unreachable without it",
			Nodes:       2,
			Start: func(n []ref.Ref) *graph.Graph {
				g := graph.New()
				g.AddEdge(n[0], n[1], graph.Explicit)
				return g
			},
			Target: func(n []ref.Ref) *graph.Graph {
				g := graph.New()
				g.AddEdge(n[0], n[1], graph.Explicit)
				g.AddEdge(n[1], n[0], graph.Explicit)
				return g
			},
		},
		{
			Missing:     Fusion,
			Description: "only Fusion reduces the number of edges: |E'| < |E| is unreachable without it",
			Nodes:       2,
			Start: func(n []ref.Ref) *graph.Graph {
				g := graph.New()
				g.AddEdge(n[0], n[1], graph.Explicit)
				g.AddEdge(n[1], n[0], graph.Explicit)
				return g
			},
			Target: func(n []ref.Ref) *graph.Graph {
				g := graph.New()
				g.AddEdge(n[0], n[1], graph.Explicit)
				return g
			},
		},
		{
			Missing:     Delegation,
			Description: "without Delegation two adjacent processes can never be locally disconnected",
			Nodes:       3,
			Start: func(n []ref.Ref) *graph.Graph {
				g := graph.New()
				g.AddEdge(n[0], n[1], graph.Explicit)
				g.AddEdge(n[1], n[2], graph.Explicit)
				return g
			},
			Target: func(n []ref.Ref) *graph.Graph {
				g := graph.New()
				g.AddEdge(n[0], n[2], graph.Explicit)
				g.AddEdge(n[2], n[1], graph.Explicit)
				return g
			},
		},
		{
			Missing:     Reversal,
			Description: "G = {(u,v)} to G' = {(v,u)} needs Reversal",
			Nodes:       2,
			Start: func(n []ref.Ref) *graph.Graph {
				g := graph.New()
				g.AddEdge(n[0], n[1], graph.Explicit)
				return g
			},
			Target: func(n []ref.Ref) *graph.Graph {
				g := graph.New()
				g.AddEdge(n[1], n[0], graph.Explicit)
				return g
			},
		},
	}
}

// AllKinds returns the full primitive set for search configuration.
func AllKinds() map[Kind]bool {
	return map[Kind]bool{Introduction: true, Delegation: true, Fusion: true, Reversal: true}
}

// Without returns the full set minus k.
func Without(k Kind) map[Kind]bool {
	m := AllKinds()
	m[k] = false
	return m
}
