package primitives

import (
	"errors"
	"math/rand"
	"testing"

	"fdp/internal/graph"
	"fdp/internal/ref"
)

func mkNodes(n int) []ref.Ref {
	return ref.NewSpace().NewN(n)
}

func TestIntroduceBasics(t *testing.T) {
	n := mkNodes(3)
	g := graph.New()
	g.AddEdge(n[0], n[1], graph.Explicit)
	g.AddEdge(n[0], n[2], graph.Explicit)
	if err := Introduce(g, n[0], n[1], n[2]); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdgeKind(n[1], n[2], graph.Implicit) {
		t.Fatal("introduction must create an implicit edge (v,w)")
	}
	if !g.HasEdge(n[0], n[2]) {
		t.Fatal("introduction must keep (u,w)")
	}
}

func TestIntroducePreconditions(t *testing.T) {
	n := mkNodes(3)
	g := graph.New()
	g.AddEdge(n[0], n[1], graph.Explicit)
	if err := Introduce(g, n[0], n[1], n[2]); !errors.Is(err, ErrPrecondition) {
		t.Fatal("introducing an unknown reference must fail")
	}
	if err := Introduce(g, n[0], n[2], n[1]); !errors.Is(err, ErrPrecondition) {
		t.Fatal("introducing to an unknown process must fail")
	}
}

func TestSelfIntroduce(t *testing.T) {
	n := mkNodes(2)
	g := graph.New()
	g.AddEdge(n[0], n[1], graph.Explicit)
	if err := SelfIntroduce(g, n[0], n[1]); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdgeKind(n[1], n[0], graph.Implicit) {
		t.Fatal("self-introduction must create (v,u)")
	}
	if !g.HasEdge(n[0], n[1]) {
		t.Fatal("self-introduction must keep (u,v)")
	}
}

func TestDelegateBasics(t *testing.T) {
	n := mkNodes(3)
	g := graph.New()
	g.AddEdge(n[0], n[1], graph.Explicit)
	g.AddEdge(n[0], n[2], graph.Explicit)
	if err := Delegate(g, n[0], n[1], n[2]); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(n[0], n[2]) {
		t.Fatal("delegation must delete (u,w)")
	}
	if !g.HasEdgeKind(n[1], n[2], graph.Implicit) {
		t.Fatal("delegation must create implicit (v,w)")
	}
}

func TestDelegateRequiresDistinct(t *testing.T) {
	n := mkNodes(2)
	g := graph.New()
	g.AddEdge(n[0], n[1], graph.Explicit)
	if err := Delegate(g, n[0], n[1], n[1]); !errors.Is(err, ErrPrecondition) {
		t.Fatal("delegation with v == w must fail")
	}
}

func TestFuseBasics(t *testing.T) {
	n := mkNodes(2)
	g := graph.New()
	g.AddEdge(n[0], n[1], graph.Explicit)
	if err := Fuse(g, n[0], n[1]); !errors.Is(err, ErrPrecondition) {
		t.Fatal("fusing a single reference must fail")
	}
	g.AddEdge(n[0], n[1], graph.Implicit)
	if err := Fuse(g, n[0], n[1]); err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount(n[0], n[1]) != 1 {
		t.Fatal("fusion must remove exactly one copy")
	}
}

func TestReverseBasics(t *testing.T) {
	n := mkNodes(2)
	g := graph.New()
	g.AddEdge(n[0], n[1], graph.Explicit)
	if err := Reverse(g, n[0], n[1]); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(n[0], n[1]) {
		t.Fatal("reversal must delete (u,v)")
	}
	if !g.HasEdgeKind(n[1], n[0], graph.Implicit) {
		t.Fatal("reversal must create implicit (v,u)")
	}
}

func TestAbsorb(t *testing.T) {
	n := mkNodes(2)
	g := graph.New()
	g.AddEdge(n[0], n[1], graph.Implicit)
	if err := Absorb(g, n[0], n[1]); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdgeKind(n[0], n[1], graph.Explicit) || g.HasEdgeKind(n[0], n[1], graph.Implicit) {
		t.Fatal("absorb must convert implicit to explicit")
	}
	if err := Absorb(g, n[0], n[1]); !errors.Is(err, ErrPrecondition) {
		t.Fatal("absorbing without implicit edge must fail")
	}
}

// Lemma 1: the four primitives preserve weak connectivity. Randomized
// check: from random weakly connected graphs, apply long random sequences
// of enabled primitives and verify connectivity after every step.
func TestLemma1PrimitivesPreserveWeakConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(2015))
	for trial := 0; trial < 25; trial++ {
		nodes := mkNodes(3 + rng.Intn(10))
		g := graph.RandomConnected(nodes, rng.Intn(len(nodes)*2), rng)
		for step := 0; step < 400; step++ {
			ops := EnabledOps(g, nil)
			if len(ops) == 0 {
				break
			}
			op := ops[rng.Intn(len(ops))]
			if err := Apply(g, op); err != nil {
				t.Fatalf("trial %d step %d: enabled op %v failed: %v", trial, step, op, err)
			}
			if !g.WeaklyConnected() {
				t.Fatalf("trial %d step %d: %v disconnected the graph", trial, step, op)
			}
		}
	}
}

// Section 2 remark: Introduction, Delegation and Fusion even preserve
// directed reachability (strong-connectivity-style). Reversal does not.
func TestFirstThreePreserveDirectedReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	allowed := Without(Reversal)
	for trial := 0; trial < 20; trial++ {
		nodes := mkNodes(3 + rng.Intn(8))
		g := graph.RandomConnected(nodes, rng.Intn(len(nodes)*2), rng)
		// Record all reachable ordered pairs.
		type pair struct{ a, b ref.Ref }
		reach := map[pair]bool{}
		for _, a := range nodes {
			for _, b := range nodes {
				if a != b && g.Reachable(a, b) {
					reach[pair{a, b}] = true
				}
			}
		}
		for step := 0; step < 300; step++ {
			ops := EnabledOps(g, allowed)
			if len(ops) == 0 {
				break
			}
			if err := Apply(g, ops[rng.Intn(len(ops))]); err != nil {
				t.Fatal(err)
			}
		}
		for p := range reach {
			if !g.Reachable(p.a, p.b) {
				t.Fatalf("trial %d: directed reachability %v->%v lost without Reversal", trial, p.a, p.b)
			}
		}
	}
}

func TestEnabledOpsAllApplicable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nodes := mkNodes(6)
	g := graph.RandomConnected(nodes, 6, rng)
	g.AddEdge(nodes[0], nodes[1], graph.Implicit) // ensure absorb/fuse candidates
	for _, op := range EnabledOps(g, nil) {
		h := g.Clone()
		if err := Apply(h, op); err != nil {
			t.Fatalf("enabled op %v not applicable: %v", op, err)
		}
	}
}

func TestApplyUnknownKind(t *testing.T) {
	g := graph.New()
	if err := Apply(g, Op{Kind: Kind(99)}); !errors.Is(err, ErrPrecondition) {
		t.Fatal("unknown op must fail")
	}
}

func TestKindStrings(t *testing.T) {
	names := map[Kind]string{
		Introduction: "introduction♦",
		Delegation:   "delegation♥",
		Fusion:       "fusion♠",
		Reversal:     "reversal♣",
		AbsorbStep:   "absorb",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
