// Package primitives implements the four safe edge-manipulation primitives
// of Section 2 — Introduction, Delegation, Fusion, Reversal — together with
// the constructive universality transformation of Theorem 1 and executable
// necessity witnesses for Theorem 2.
//
// The primitives are modelled as checked operations on the process graph.
// Introduction, Delegation and Reversal place the transported reference into
// the target's channel, i.e. they create an *implicit* edge; the companion
// operation Absorb models the receiver processing that message and storing
// the reference (implicit -> explicit). Absorb is not a primitive — it is
// part of the model and trivially preserves connectivity.
package primitives

import (
	"errors"
	"fmt"

	"fdp/internal/graph"
	"fdp/internal/ref"
)

// ErrPrecondition is wrapped by all precondition failures.
var ErrPrecondition = errors.New("primitive precondition violated")

func precondErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrPrecondition, fmt.Sprintf(format, args...))
}

// Kind enumerates the four primitives (plus the model's Absorb step).
type Kind uint8

// Primitive kinds. The paper annotates its pseudocode with suit symbols;
// the same convention is used here: ♦ Introduction, ♥ Delegation, ♠ Fusion,
// ♣ Reversal.
const (
	Introduction Kind = iota
	Delegation
	Fusion
	Reversal
	AbsorbStep
)

// String names the primitive (with the paper's suit symbol).
func (k Kind) String() string {
	switch k {
	case Introduction:
		return "introduction♦"
	case Delegation:
		return "delegation♥"
	case Fusion:
		return "fusion♠"
	case Reversal:
		return "reversal♣"
	default:
		return "absorb"
	}
}

// Op records one applied operation, for traces and ablation counting.
type Op struct {
	Kind    Kind
	U, V, W ref.Ref // roles as in the paper's definitions (W unused where n/a)
}

// String renders the op.
func (o Op) String() string {
	if o.W.IsNil() {
		return fmt.Sprintf("%v(%v,%v)", o.Kind, o.U, o.V)
	}
	return fmt.Sprintf("%v(%v,%v,%v)", o.Kind, o.U, o.V, o.W)
}

// Introduce applies the Introduction primitive: process u, holding
// references to v and w, sends a message with w's reference to v while
// keeping its own reference to w. Self-introduction (w == u) is the allowed
// special case; otherwise u, v, w must be pairwise distinct.
func Introduce(g *graph.Graph, u, v, w ref.Ref) error {
	if err := checkHolds(g, u, v); err != nil {
		return err
	}
	if w != u { // self-introduction needs no (u,u) edge
		if err := checkHolds(g, u, w); err != nil {
			return err
		}
		if v == w {
			return precondErr("introduction requires v != w (got %v)", v)
		}
	}
	if u == v {
		return precondErr("introduction requires u != v")
	}
	if v != w {
		g.AddEdge(v, w, graph.Implicit)
	}
	return nil
}

// SelfIntroduce applies the self-introduction special case: u sends its own
// reference to v, keeping (u,v).
func SelfIntroduce(g *graph.Graph, u, v ref.Ref) error {
	return Introduce(g, u, v, u)
}

// Delegate applies the Delegation primitive: u, holding references to v and
// w, sends w's reference to v and deletes its own reference to w. The
// deleted reference must be explicit (a stored variable); u, v, w must be
// pairwise distinct.
func Delegate(g *graph.Graph, u, v, w ref.Ref) error {
	if u == v || u == w || v == w {
		return precondErr("delegation requires pairwise distinct u,v,w")
	}
	if err := checkHolds(g, u, v); err != nil {
		return err
	}
	if !g.HasEdgeKind(u, w, graph.Explicit) {
		return precondErr("delegation: %v holds no explicit reference of %v", u, w)
	}
	g.RemoveEdge(u, w, graph.Explicit)
	g.AddEdge(v, w, graph.Implicit)
	return nil
}

// Fuse applies the Fusion primitive: u holds two references v and w with
// v = w and keeps only one of them. In graph terms the multiplicity of
// (u,v) must be at least two; one explicit copy is removed (if none is
// explicit, an implicit copy is removed, modelling u discarding a duplicate
// as it processes the carrying message).
func Fuse(g *graph.Graph, u, v ref.Ref) error {
	if g.EdgeCount(u, v) < 2 {
		return precondErr("fusion: %v holds fewer than two references of %v", u, v)
	}
	if g.HasEdgeKind(u, v, graph.Explicit) {
		g.RemoveEdge(u, v, graph.Explicit)
	} else {
		g.RemoveEdge(u, v, graph.Implicit)
	}
	return nil
}

// Reverse applies the Reversal primitive: u, holding a reference of v, sends
// its own reference to v and deletes its reference of v.
func Reverse(g *graph.Graph, u, v ref.Ref) error {
	if u == v {
		return precondErr("reversal requires u != v")
	}
	if !g.HasEdgeKind(u, v, graph.Explicit) {
		return precondErr("reversal: %v holds no explicit reference of %v", u, v)
	}
	g.RemoveEdge(u, v, graph.Explicit)
	g.AddEdge(v, u, graph.Implicit)
	return nil
}

// Absorb models the receiver storing a reference it received: one implicit
// edge (u,v) becomes explicit. Not a primitive; preserves the edge set.
func Absorb(g *graph.Graph, u, v ref.Ref) error {
	if !g.HasEdgeKind(u, v, graph.Implicit) {
		return precondErr("absorb: no message carrying %v in %v's channel", v, u)
	}
	g.RemoveEdge(u, v, graph.Implicit)
	g.AddEdge(u, v, graph.Explicit)
	return nil
}

// AbsorbAll converts every implicit edge to an explicit one.
func AbsorbAll(g *graph.Graph) {
	for _, e := range g.Edges() {
		if e.Kind == graph.Implicit {
			_ = Absorb(g, e.From, e.To)
		}
	}
}

func checkHolds(g *graph.Graph, u, v ref.Ref) error {
	if !g.HasEdge(u, v) {
		return precondErr("%v holds no reference of %v", u, v)
	}
	return nil
}

// Apply dispatches an Op onto g, returning any precondition error.
func Apply(g *graph.Graph, op Op) error {
	switch op.Kind {
	case Introduction:
		return Introduce(g, op.U, op.V, op.W)
	case Delegation:
		return Delegate(g, op.U, op.V, op.W)
	case Fusion:
		return Fuse(g, op.U, op.V)
	case Reversal:
		return Reverse(g, op.U, op.V)
	case AbsorbStep:
		return Absorb(g, op.U, op.V)
	default:
		return precondErr("unknown primitive %d", op.Kind)
	}
}

// EnabledOps enumerates every applicable primitive instance in the current
// graph (used by the necessity search and by randomized safety testing).
// Absorb steps are included so searches can move references into local
// memory. The enumeration is deterministic.
func EnabledOps(g *graph.Graph, allowed map[Kind]bool) []Op {
	var ops []Op
	nodes := g.Nodes()
	allow := func(k Kind) bool { return allowed == nil || allowed[k] }
	for _, u := range nodes {
		succ := g.Succ(u)
		for _, v := range succ {
			if allow(Introduction) {
				// self-introduction
				ops = append(ops, Op{Kind: Introduction, U: u, V: v, W: u})
				for _, w := range succ {
					if w != v && w != u {
						ops = append(ops, Op{Kind: Introduction, U: u, V: v, W: w})
					}
				}
			}
			if allow(Delegation) && g.HasEdgeKind(u, v, graph.Explicit) {
				// v is the deleted reference here: delegate w:=v to some
				// other neighbor t.
				for _, t := range succ {
					if t != v && t != u {
						ops = append(ops, Op{Kind: Delegation, U: u, V: t, W: v})
					}
				}
			}
			if allow(Fusion) && g.EdgeCount(u, v) >= 2 {
				ops = append(ops, Op{Kind: Fusion, U: u, V: v})
			}
			if allow(Reversal) && g.HasEdgeKind(u, v, graph.Explicit) {
				ops = append(ops, Op{Kind: Reversal, U: u, V: v})
			}
			if g.HasEdgeKind(u, v, graph.Implicit) {
				ops = append(ops, Op{Kind: AbsorbStep, U: u, V: v})
			}
		}
	}
	return ops
}
