package primitives

import (
	"math"
	"math/rand"
	"testing"

	"fdp/internal/graph"
	"fdp/internal/ref"
)

func transformCase(t *testing.T, start, target *graph.Graph) TransformStats {
	t.Helper()
	g := start.Clone()
	stats, err := Transform(g, target, TransformOptions{Verify: true})
	if err != nil {
		t.Fatalf("transform failed: %v", err)
	}
	if !g.SameSimpleDigraph(target) {
		t.Fatalf("did not reach target:\n got %v\nwant %v", g, target)
	}
	return stats
}

// Theorem 1: any weakly connected graph can be transformed into any other
// weakly connected graph on the same nodes, with connectivity verified
// after every primitive.
func TestTheorem1NamedTopologies(t *testing.T) {
	nodes := mkNodes(8)
	shapes := map[string]*graph.Graph{
		"line":     graph.Line(nodes),
		"dirline":  graph.DirectedLine(nodes),
		"ring":     graph.Ring(nodes),
		"star":     graph.Star(nodes),
		"tree":     graph.BinaryTree(nodes),
		"clique":   graph.Clique(nodes),
		"hypercub": graph.Hypercube(nodes),
	}
	for fromName, from := range shapes {
		for toName, to := range shapes {
			stats := transformCase(t, from, to)
			if stats.TotalPrimitives() == 0 && !from.SameSimpleDigraph(to) {
				t.Fatalf("%s->%s: zero ops but graphs differ", fromName, toName)
			}
		}
	}
}

func TestTheorem1RandomPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(12)
		nodes := mkNodes(n)
		from := graph.RandomConnected(nodes, rng.Intn(2*n), rng)
		to := graph.RandomConnected(nodes, rng.Intn(2*n), rng)
		transformCase(t, from, to)
	}
}

func TestTransformRejectsDifferentNodeSets(t *testing.T) {
	a := mkNodes(3)
	b := mkNodes(4)
	if _, err := Transform(graph.Line(a), graph.Line(b), TransformOptions{}); err == nil {
		t.Fatal("different node sets must be rejected")
	}
}

func TestTransformRejectsDisconnected(t *testing.T) {
	nodes := mkNodes(3)
	g := graph.New()
	for _, n := range nodes {
		g.AddNode(n)
	}
	if _, err := Transform(g, graph.Line(nodes), TransformOptions{}); err == nil {
		t.Fatal("disconnected start must be rejected")
	}
	if _, err := Transform(graph.Line(nodes), g, TransformOptions{}); err == nil {
		t.Fatal("disconnected target must be rejected")
	}
}

func TestTransformTrivialCases(t *testing.T) {
	one := mkNodes(1)
	g := graph.New()
	g.AddNode(one[0])
	if _, err := Transform(g, g.Clone(), TransformOptions{}); err != nil {
		t.Fatal(err)
	}
	nodes := mkNodes(4)
	ring := graph.Ring(nodes)
	stats := transformCase(t, ring, ring)
	if stats.Delegations != 0 {
		t.Fatal("identity transform onto itself needed no delegations beyond cleanup")
	}
}

// Corollary 1: Introduction, Delegation and Fusion are weakly universal —
// reaching a bidirected (hence strongly connected) target needs no
// Reversal.
func TestCorollary1NoReversalForBidirectedTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(9)
		nodes := mkNodes(n)
		from := graph.RandomConnected(nodes, rng.Intn(2*n), rng)
		to := graph.RandomConnected(nodes, rng.Intn(2*n), rng).BidirectedExtension()
		stats := transformCase(t, from, to)
		if stats.Reversals != 0 {
			t.Fatalf("trial %d: bidirected target needed %d reversals", trial, stats.Reversals)
		}
	}
}

// The proof of Theorem 1 observes cliquification takes O(log n) rounds:
// distances halve each round.
func TestCliquifyLogarithmicRounds(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		nodes := mkNodes(n)
		g := graph.DirectedLine(nodes) // worst case: diameter n-1
		rounds, err := Cliquify(g)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumEdges() != n*(n-1) {
			t.Fatalf("n=%d: not a clique after cliquify", n)
		}
		bound := int(math.Ceil(math.Log2(float64(n)))) + 2
		if rounds > bound {
			t.Fatalf("n=%d: %d rounds exceeds O(log n) bound %d", n, rounds, bound)
		}
	}
}

func TestCliquifyAlreadyClique(t *testing.T) {
	nodes := mkNodes(5)
	g := graph.Clique(nodes)
	rounds, err := Cliquify(g)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 0 {
		t.Fatalf("clique needed %d rounds", rounds)
	}
}

func TestTransformTraceAndCounts(t *testing.T) {
	nodes := mkNodes(5)
	var traced []Op
	g := graph.DirectedLine(nodes)
	stats, err := Transform(g, graph.Ring(nodes), TransformOptions{
		Trace: func(op Op) { traced = append(traced, op) },
	})
	if err != nil {
		t.Fatal(err)
	}
	counted := stats.TotalPrimitives() + stats.Absorbs
	if len(traced) != counted {
		t.Fatalf("trace length %d != counted ops %d", len(traced), counted)
	}
	if stats.Introductions == 0 || stats.Fusions == 0 {
		t.Fatal("a nontrivial transform must introduce and fuse")
	}
}

// Necessity (Theorem 2): each witness target is reachable with all four
// primitives and unreachable without the designated one.
func TestTheorem2Necessity(t *testing.T) {
	for _, w := range Witnesses() {
		nodes := mkNodes(w.Nodes)
		start, target := w.Start(nodes), w.Target(nodes)
		full := Reachable(start, target, AllKinds(), 0)
		if !full.Reachable {
			t.Errorf("%v witness: target must be reachable with all primitives", w.Missing)
		}
		reduced := Reachable(start, target, Without(w.Missing), 0)
		if reduced.Reachable {
			t.Errorf("%v witness: target reachable without %v via %v", w.Missing, w.Missing, reduced.Ops)
		}
		if reduced.StatesExplored == 0 {
			t.Errorf("%v witness: search explored no states", w.Missing)
		}
	}
}

// Invariant arguments behind Theorem 2, checked on random instances (these
// justify the multiplicity cap of the exhaustive search).
func TestTheorem2Invariants(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 15; trial++ {
		nodes := mkNodes(3 + rng.Intn(6))
		base := graph.RandomConnected(nodes, rng.Intn(6), rng)

		// Without Introduction the edge count never increases.
		g := base.Clone()
		for step := 0; step < 150; step++ {
			before := g.NumEdges()
			ops := EnabledOps(g, Without(Introduction))
			if len(ops) == 0 {
				break
			}
			if err := Apply(g, ops[rng.Intn(len(ops))]); err != nil {
				t.Fatal(err)
			}
			if g.NumEdges() > before {
				t.Fatal("edge count grew without Introduction")
			}
		}

		// Without Fusion the edge count never decreases.
		g = base.Clone()
		for step := 0; step < 150; step++ {
			before := g.NumEdges()
			ops := EnabledOps(g, Without(Fusion))
			if len(ops) == 0 {
				break
			}
			if err := Apply(g, ops[rng.Intn(len(ops))]); err != nil {
				t.Fatal(err)
			}
			if g.NumEdges() < before {
				t.Fatal("edge count shrank without Fusion")
			}
		}

		// Without Delegation undirected adjacency between distinct
		// processes is never lost.
		g = base.Clone()
		type pair struct{ a, b ref.Ref }
		adj := map[pair]bool{}
		for _, a := range nodes {
			for _, b := range g.UndirectedNeighbors(a) {
				adj[pair{a, b}] = true
			}
		}
		for step := 0; step < 150; step++ {
			ops := EnabledOps(g, Without(Delegation))
			if len(ops) == 0 {
				break
			}
			if err := Apply(g, ops[rng.Intn(len(ops))]); err != nil {
				t.Fatal(err)
			}
		}
		for p := range adj {
			if !g.HasEdge(p.a, p.b) && !g.HasEdge(p.b, p.a) {
				t.Fatalf("adjacency {%v,%v} lost without Delegation", p.a, p.b)
			}
		}
	}
}

func TestReachableTrivial(t *testing.T) {
	nodes := mkNodes(2)
	g := graph.New()
	g.AddEdge(nodes[0], nodes[1], graph.Explicit)
	res := Reachable(g, g.Clone(), AllKinds(), 0)
	if !res.Reachable || len(res.Ops) != 0 {
		t.Fatal("start == target must be trivially reachable")
	}
}

func TestCliquifyTrivialAndKindString(t *testing.T) {
	one := mkNodes(1)
	g := graph.New()
	g.AddNode(one[0])
	rounds, err := Cliquify(g)
	if err != nil || rounds != 0 {
		t.Fatalf("singleton cliquify: rounds=%d err=%v", rounds, err)
	}
	// Multiplicity normalization inside Cliquify.
	pair := mkNodes(2)
	h := graph.New()
	h.AddEdge(pair[0], pair[1], graph.Explicit)
	h.AddEdge(pair[0], pair[1], graph.Implicit)
	if _, err := Cliquify(h); err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 2 {
		t.Fatalf("2-clique edges = %d, want 2", h.NumEdges())
	}
	op := Op{Kind: Delegation, U: pair[0], V: pair[1], W: pair[0]}
	if op.String() == "" {
		t.Fatal("Op.String empty")
	}
}
