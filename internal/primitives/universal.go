package primitives

import (
	"errors"
	"fmt"

	"fdp/internal/graph"
	"fdp/internal/ref"
)

// TransformStats counts the work done by the Theorem 1 transformation.
type TransformStats struct {
	CliqueRounds  int // introduction rounds until PG was a clique
	Introductions int
	Delegations   int
	Fusions       int
	Reversals     int
	Absorbs       int
}

// TotalPrimitives returns the number of primitive applications (Absorb is
// not a primitive and is excluded).
func (s TransformStats) TotalPrimitives() int {
	return s.Introductions + s.Delegations + s.Fusions + s.Reversals
}

// TransformOptions configures Transform.
type TransformOptions struct {
	// Verify re-checks weak connectivity after every single operation and
	// aborts with an error on violation. Expensive; used by tests of
	// Lemma 1.
	Verify bool
	// Trace, if non-nil, receives every applied operation.
	Trace func(Op)
}

// ErrDisconnected reports a (would-be) connectivity violation during a
// verified transformation. Lemma 1 guarantees it never occurs.
var ErrDisconnected = errors.New("primitives: weak connectivity lost")

// transformer carries shared state across the three phases.
type transformer struct {
	g     *graph.Graph
	stats TransformStats
	opts  TransformOptions
}

func (t *transformer) apply(op Op) error {
	if err := Apply(t.g, op); err != nil {
		return err
	}
	switch op.Kind {
	case Introduction:
		t.stats.Introductions++
	case Delegation:
		t.stats.Delegations++
	case Fusion:
		t.stats.Fusions++
	case Reversal:
		t.stats.Reversals++
	case AbsorbStep:
		t.stats.Absorbs++
	}
	if t.opts.Trace != nil {
		t.opts.Trace(op)
	}
	if t.opts.Verify && !t.g.WeaklyConnected() {
		return fmt.Errorf("%w after %v", ErrDisconnected, op)
	}
	return nil
}

// Transform executes the constructive proof of Theorem 1: it transforms the
// weakly connected graph g in place into the target graph (same node set,
// also weakly connected), using only the four primitives (plus Absorb
// steps). On success, g equals target as a simple digraph.
func Transform(g *graph.Graph, target *graph.Graph, opts TransformOptions) (TransformStats, error) {
	t := &transformer{g: g, opts: opts}
	if !sameNodeSet(g, target) {
		return t.stats, errors.New("primitives: transform requires identical node sets")
	}
	if !g.WeaklyConnected() || !target.WeaklyConnected() {
		return t.stats, errors.New("primitives: both graphs must be weakly connected")
	}
	if g.NumNodes() < 2 {
		return t.stats, nil
	}
	if err := t.normalize(); err != nil {
		return t.stats, err
	}
	if g.SameSimpleDigraph(target) {
		return t.stats, nil
	}
	if err := t.cliquify(); err != nil {
		return t.stats, err
	}
	bidir := target.BidirectedExtension()
	if err := t.reduceTo(bidir); err != nil {
		return t.stats, err
	}
	if err := t.reverseTo(target, bidir); err != nil {
		return t.stats, err
	}
	if !g.SameSimpleDigraph(target) {
		return t.stats, errors.New("primitives: transformation did not reach target (internal bug)")
	}
	return t.stats, nil
}

// normalize absorbs all implicit edges and fuses duplicates so every
// ordered pair has multiplicity at most one.
func (t *transformer) normalize() error {
	AbsorbAll(t.g)
	for _, u := range t.g.Nodes() {
		for _, v := range t.g.Succ(u) {
			for t.g.EdgeCount(u, v) > 1 {
				if err := t.apply(Op{Kind: Fusion, U: u, V: v}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// cliquify runs rounds in which every process introduces all its neighbors
// to each other, including self-introduction; the proof observes that
// distances halve each round, so O(log n) rounds suffice.
func (t *transformer) cliquify() error {
	n := t.g.NumNodes()
	wantEdges := n * (n - 1)
	for t.g.NumEdges() < wantEdges {
		t.stats.CliqueRounds++
		// Snapshot the explicit neighborhoods at round start.
		snapshot := make(map[ref.Ref][]ref.Ref, n)
		for _, u := range t.g.Nodes() {
			snapshot[u] = t.g.Succ(u)
		}
		for _, u := range t.g.Nodes() {
			succ := snapshot[u]
			for _, v := range succ {
				// Self-introduction: v learns about u.
				if !t.g.HasEdge(v, u) {
					if err := t.apply(Op{Kind: Introduction, U: u, V: v, W: u}); err != nil {
						return err
					}
				}
				for _, w := range succ {
					if w != v && w != u && !t.g.HasEdge(v, w) {
						if err := t.apply(Op{Kind: Introduction, U: u, V: v, W: w}); err != nil {
							return err
						}
					}
				}
			}
		}
		AbsorbAll(t.g)
		if t.stats.CliqueRounds > 2*n+4 {
			return errors.New("primitives: cliquify failed to converge (internal bug)")
		}
	}
	return nil
}

// reduceTo removes every edge not in the bidirected extension G” by
// delegating it along a shortest path of G” and fusing at the last hop,
// exactly as in the Theorem 1 proof.
func (t *transformer) reduceTo(bidir *graph.Graph) error {
	for {
		// Pick an edge (u,w) of g that is not in G''.
		var eu, ew ref.Ref
		found := false
		for _, u := range t.g.Nodes() {
			for _, w := range t.g.Succ(u) {
				if !bidir.HasEdge(u, w) {
					eu, ew, found = u, w, true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			// Fuse any residual duplicates of G'' edges.
			return t.normalizeWithin(bidir)
		}
		// Route the reference of ew along the shortest u->w path in G''.
		path := bidir.ShortestPath(eu, ew)
		if path == nil {
			return fmt.Errorf("primitives: no path %v->%v in bidirected target (internal bug)", eu, ew)
		}
		cur := eu
		for i := 1; i < len(path); i++ {
			next := path[i]
			if next == ew {
				// cur is a G''-neighbor of w: fuse cur's extra reference
				// with the kept edge (cur,w) in G''.
				for t.g.EdgeCount(cur, ew) > 1 {
					if err := t.apply(Op{Kind: Fusion, U: cur, V: ew}); err != nil {
						return err
					}
				}
				break
			}
			if err := t.apply(Op{Kind: Delegation, U: cur, V: next, W: ew}); err != nil {
				return err
			}
			if err := t.apply(Op{Kind: AbsorbStep, U: next, V: ew}); err != nil {
				return err
			}
			// next now holds the reference; if it duplicates an existing
			// edge and (next,w) is in G'', stop here by fusing.
			if bidir.HasEdge(next, ew) {
				for t.g.EdgeCount(next, ew) > 1 {
					if err := t.apply(Op{Kind: Fusion, U: next, V: ew}); err != nil {
						return err
					}
				}
				break
			}
			cur = next
		}
	}
}

func (t *transformer) normalizeWithin(bidir *graph.Graph) error {
	for _, u := range t.g.Nodes() {
		for _, v := range t.g.Succ(u) {
			for t.g.EdgeCount(u, v) > 1 {
				if err := t.apply(Op{Kind: Fusion, U: u, V: v}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// reverseTo turns G” into G': every edge in E”\E' is reversed by its
// holder and the resulting duplicate is fused with the kept opposite edge.
func (t *transformer) reverseTo(target, bidir *graph.Graph) error {
	for _, u := range t.g.Nodes() {
		for _, v := range t.g.Succ(u) {
			if target.HasEdge(u, v) {
				continue
			}
			// (u,v) ∈ E''\E'; by construction (v,u) ∈ E'.
			if err := t.apply(Op{Kind: Reversal, U: u, V: v}); err != nil {
				return err
			}
			if err := t.apply(Op{Kind: AbsorbStep, U: v, V: u}); err != nil {
				return err
			}
			for t.g.EdgeCount(v, u) > 1 {
				if err := t.apply(Op{Kind: Fusion, U: v, V: u}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Cliquify runs only the first phase of the transformation on g (in place)
// and returns the number of introduction rounds it took — the O(log n)
// bound experiment E2 plots.
func Cliquify(g *graph.Graph) (rounds int, err error) {
	t := &transformer{g: g}
	if err := t.normalize(); err != nil {
		return 0, err
	}
	if g.NumNodes() < 2 {
		return 0, nil
	}
	if err := t.cliquify(); err != nil {
		return t.stats.CliqueRounds, err
	}
	return t.stats.CliqueRounds, nil
}

func sameNodeSet(a, b *graph.Graph) bool {
	an, bn := a.Nodes(), b.Nodes()
	if len(an) != len(bn) {
		return false
	}
	for i := range an {
		if an[i] != bn[i] {
			return false
		}
	}
	return true
}
