package sim

import (
	"fmt"

	"fdp/internal/ref"
)

// CloneableProtocol is implemented by protocol states that can be deep-
// copied, enabling World.Clone and with it the exhaustive schedule
// exploration of the model checker (internal/check).
type CloneableProtocol interface {
	Protocol
	// CloneProtocol returns a deep copy sharing no mutable state.
	CloneProtocol() Protocol
}

// Clone deep-copies the world: processes, protocol states (which must
// implement CloneableProtocol), channels and counters. The event hook is
// not copied. Initial components are shared (they are immutable after
// SealInitialState).
func (w *World) Clone() *World {
	c := NewWorld(w.oracle)
	c.seq = w.seq
	c.causal = w.causal
	c.curCID = w.curCID
	c.stats = w.Stats()
	c.initialComponents = w.initialComponents
	c.awake = 0
	for _, p := range w.procs {
		if p == nil {
			continue
		}
		cp, ok := p.proto.(CloneableProtocol)
		if !ok {
			panic(fmt.Sprintf("sim: protocol of %v is not cloneable", p.id))
		}
		np := &process{
			id:          p.id,
			mode:        p.mode,
			life:        p.life,
			proto:       cp.CloneProtocol(),
			lastTimeout: p.lastTimeout,
			clock:       p.clock,
		}
		np.ch = make([]Message, len(p.ch))
		copy(np.ch, p.ch)
		c.byRef[p.id] = np
		idx := ref.Index(p.id)
		for len(c.procs) <= idx {
			c.procs = append(c.procs, nil)
		}
		c.procs[idx] = np
		if np.life == Awake {
			c.awake++
		} else if np.life == Asleep {
			c.asleep++
		}
	}
	// The incremental PG is not copied; the clone reseeds it lazily on its
	// first graph query.
	return c
}

// Fingerprint returns a canonical string identifying the protocol-relevant
// state: per process its lifecycle, stored references (via a
// FingerprintableProtocol if implemented, else Refs), and the multiset of
// channel messages. Two worlds with equal fingerprints behave identically
// under any scheduler, which is what lets the model checker prune.
func (w *World) Fingerprint() string {
	var b []byte
	for _, p := range w.procs {
		if p == nil {
			continue
		}
		b = append(b, fmt.Sprintf("%v/%d/%d{", p.id, p.mode, p.life)...)
		if fp, ok := p.proto.(FingerprintableProtocol); ok {
			b = append(b, fp.FingerprintState()...)
		} else {
			for _, r := range p.proto.Refs() {
				b = append(b, fmt.Sprintf("%v,", r)...)
			}
		}
		b = append(b, '|')
		// Channel contents as a sorted multiset (delivery order is up to
		// the scheduler, so order must not distinguish states).
		msgs := make([]string, 0, len(p.ch))
		for _, m := range p.ch {
			s := m.Label + "("
			for _, ri := range m.Refs {
				s += ri.String() + ","
			}
			s += ")"
			msgs = append(msgs, s)
		}
		sortStrings(msgs)
		for _, s := range msgs {
			b = append(b, s...)
			b = append(b, ';')
		}
		b = append(b, '}')
	}
	return string(b)
}

// FingerprintableProtocol lets protocol states contribute their full
// variable assignment (not just stored references) to the state
// fingerprint. The departure protocol implements it, distinguishing mode
// beliefs and the anchor variable.
type FingerprintableProtocol interface {
	FingerprintState() string
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
