package sim

import (
	"testing"

	"fdp/internal/ref"
)

func TestEnumStrings(t *testing.T) {
	if Staying.String() != "staying" || Leaving.String() != "leaving" ||
		Unknown.String() != "unknown" || Absent.String() != "absent" {
		t.Fatal("Mode strings wrong")
	}
	if Awake.String() != "awake" || Asleep.String() != "asleep" || Gone.String() != "gone" {
		t.Fatal("Life strings wrong")
	}
	if FDP.String() != "FDP" || FSP.String() != "FSP" {
		t.Fatal("Variant strings wrong")
	}
	kinds := []EventKind{EvTimeout, EvDeliver, EvSend, EvDrop, EvExit, EvSleep, EvWake}
	names := []string{"timeout", "deliver", "send", "drop", "exit", "sleep", "wake"}
	for i, k := range kinds {
		if k.String() != names[i] {
			t.Fatalf("EventKind %d = %q, want %q", i, k.String(), names[i])
		}
	}
}

func TestSchedulerNames(t *testing.T) {
	if NewRandomScheduler(1, 0).Name() != "random" ||
		NewRoundScheduler().Name() != "rounds" ||
		NewAdversarialScheduler(1, 0).Name() != "adversarial" ||
		NewFIFOScheduler().Name() != "fifo" ||
		NewReplayScheduler(nil, nil).Name() != "replay" {
		t.Fatal("scheduler names wrong")
	}
}

func TestRefInfoAndMessageAccessors(t *testing.T) {
	space := ref.NewSpace()
	a, b := space.New(), space.New()
	ri := RefInfo{Ref: a, Mode: Leaving}
	if ri.String() != a.String()+":leaving" {
		t.Fatalf("RefInfo.String = %q", ri.String())
	}
	w := NewWorld(nil)
	fa, fb := newFixture(), newFixture()
	w.AddProcess(a, Staying, fa)
	w.AddProcess(b, Staying, fb)
	fa.onTimeout = func(ctx Context, f *fixtureProto) { ctx.Send(b, NewMessage("x")) }
	w.Execute(Action{Proc: a, IsTimeout: true})
	msg := w.ChannelSnapshot(b)[0]
	if msg.From() != a {
		t.Fatal("From accessor wrong")
	}
	if msg.Seq() == 0 {
		t.Fatal("Seq accessor wrong")
	}
}

func TestWorldHasAndCounters(t *testing.T) {
	space := ref.NewSpace()
	a, b := space.New(), space.New()
	w := NewWorld(nil)
	w.AddProcess(a, Staying, newFixture())
	if !w.Has(a) || w.Has(b) {
		t.Fatal("Has wrong")
	}
	lp := newFixture()
	lp.onTimeout = func(ctx Context, f *fixtureProto) { ctx.Exit() }
	w.AddProcess(b, Leaving, lp)
	if w.LeavingRemaining() != 1 {
		t.Fatal("LeavingRemaining wrong")
	}
	w.Execute(Action{Proc: b, IsTimeout: true})
	if w.LeavingRemaining() != 0 {
		t.Fatal("LeavingRemaining after exit wrong")
	}
}

func TestRelevantPGAndGraphString(t *testing.T) {
	space := ref.NewSpace()
	a, b := space.New(), space.New()
	w := NewWorld(nil)
	fa := newFixture()
	fa.refs.Add(b)
	w.AddProcess(a, Staying, fa)
	sleeper := newFixture()
	sleeper.onTimeout = func(ctx Context, f *fixtureProto) { ctx.Sleep() }
	w.AddProcess(b, Leaving, sleeper)
	pg := w.RelevantPG()
	if !pg.HasEdge(a, b) {
		t.Fatal("relevant PG missing edge to relevant (non-hibernating) process")
	}
	if pg.String() == "" {
		t.Fatal("graph String empty")
	}
	// b sleeps but is still reachable from awake a => relevant.
	w.Execute(Action{Proc: b, IsTimeout: true})
	if !w.RelevantPG().HasNode(b) {
		t.Fatal("reachable sleeper is relevant")
	}
	// After a drops the ref, b hibernates and leaves the relevant PG. The
	// removal happens outside an atomic action, so the incremental graph
	// must be invalidated explicitly.
	fa.refs.Remove(b)
	w.InvalidatePG()
	if w.RelevantPG().HasNode(b) {
		t.Fatal("hibernating process must not be in the relevant PG")
	}
}

func TestCloneAndFingerprintWithinSim(t *testing.T) {
	// Exercise Clone/Fingerprint via a CloneableProtocol defined here.
	space := ref.NewSpace()
	a, b := space.New(), space.New()
	w := NewWorld(nil)
	w.AddProcess(a, Staying, &cloneableFixture{refs: ref.NewSet(b)})
	w.AddProcess(b, Staying, &cloneableFixture{refs: ref.NewSet()})
	w.Enqueue(b, NewMessage("m", RefInfo{Ref: a, Mode: Staying}))
	w.SealInitialState()
	c := w.Clone()
	if c.Fingerprint() != w.Fingerprint() {
		t.Fatal("clone fingerprint differs")
	}
	// Mutating the clone's channel changes its fingerprint only.
	c.Enqueue(a, NewMessage("extra"))
	if c.Fingerprint() == w.Fingerprint() {
		t.Fatal("fingerprint insensitive to channel contents")
	}
}

type cloneableFixture struct{ refs ref.Set }

func (c *cloneableFixture) Timeout(Context)          {}
func (c *cloneableFixture) Deliver(Context, Message) {}
func (c *cloneableFixture) Refs() []ref.Ref          { return c.refs.Sorted() }
func (c *cloneableFixture) CloneProtocol() Protocol {
	return &cloneableFixture{refs: c.refs.Clone()}
}

func TestCloneRejectsNonCloneable(t *testing.T) {
	space := ref.NewSpace()
	a := space.New()
	w := NewWorld(nil)
	w.AddProcess(a, Staying, newFixture())
	defer func() {
		if recover() == nil {
			t.Fatal("Clone of non-cloneable protocol must panic")
		}
	}()
	w.Clone()
}
