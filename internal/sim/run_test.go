package sim

import (
	"errors"
	"testing"

	"fdp/internal/ref"
)

// exitWhenToldProto exits on its k-th timeout; staying fixtures idle.
type exitAfterProto struct {
	fixtureProto
	after int
}

func (e *exitAfterProto) Timeout(ctx Context) {
	e.after--
	if e.after <= 0 {
		ctx.Exit()
	}
}

// buildRunWorld: one staying idle process and one leaving process that
// exits after k timeouts.
func buildRunWorld(k int) (*World, ref.Ref, ref.Ref) {
	space := ref.NewSpace()
	stay, leave := space.New(), space.New()
	w := NewWorld(nil)
	w.AddProcess(stay, Staying, newFixture())
	w.AddProcess(leave, Leaving, &exitAfterProto{after: k})
	w.SealInitialState()
	return w, stay, leave
}

func TestRunConvergesToLegitimacy(t *testing.T) {
	w, _, _ := buildRunWorld(3)
	res := Run(w, NewRoundScheduler(), RunOptions{Variant: FDP, MaxSteps: 1000})
	if !res.Converged {
		t.Fatalf("run did not converge: %+v", res)
	}
	if res.Stats.Exits != 1 {
		t.Fatal("exit not recorded")
	}
	if res.Rounds == 0 {
		t.Fatal("rounds not reported for the round scheduler")
	}
}

func TestRunRespectsMaxSteps(t *testing.T) {
	w, _, _ := buildRunWorld(1 << 30) // never exits
	res := Run(w, NewRandomScheduler(1, 64), RunOptions{Variant: FDP, MaxSteps: 500})
	if res.Converged {
		t.Fatal("must not converge")
	}
	if res.Steps != 500 {
		t.Fatalf("steps = %d, want exactly 500", res.Steps)
	}
}

func TestRunImmediateLegitimacy(t *testing.T) {
	// No leavers: state is legitimate before any step.
	space := ref.NewSpace()
	a := space.New()
	w := NewWorld(nil)
	w.AddProcess(a, Staying, newFixture())
	w.SealInitialState()
	res := Run(w, NewRandomScheduler(1, 64), RunOptions{Variant: FDP, MaxSteps: 100})
	if !res.Converged || res.Steps != 0 {
		t.Fatalf("immediate legitimacy not detected: %+v", res)
	}
}

func TestRunSealsAutomatically(t *testing.T) {
	space := ref.NewSpace()
	a := space.New()
	w := NewWorld(nil)
	w.AddProcess(a, Staying, newFixture())
	// No SealInitialState call: Run must do it.
	res := Run(w, NewRandomScheduler(1, 64), RunOptions{Variant: FDP, MaxSteps: 10})
	if !res.Converged {
		t.Fatal("auto-seal failed")
	}
	if w.InitialComponents() == nil {
		t.Fatal("initial components not sealed")
	}
}

func TestRunPotentialSeries(t *testing.T) {
	w, _, _ := buildRunWorld(5)
	countdown := 10
	res := Run(w, NewRoundScheduler(), RunOptions{
		Variant: FDP, MaxSteps: 1000, CheckEvery: 1,
		Potential: func(*World) int { countdown--; return countdown },
	})
	if len(res.PotentialSteps) == 0 || len(res.PotentialValues) != len(res.PotentialSteps) {
		t.Fatalf("potential series missing: %+v", res)
	}
}

// disconnectingProto deletes its only reference outright — a protocol
// outside the four primitives, used to check the safety detector.
type disconnectingProto struct {
	refs ref.Set
	drop bool
}

func (d *disconnectingProto) Timeout(ctx Context) {
	if d.drop {
		d.refs = ref.NewSet()
	}
}
func (d *disconnectingProto) Deliver(Context, Message) {}
func (d *disconnectingProto) Refs() []ref.Ref          { return d.refs.Sorted() }

func TestRunDetectsSafetyViolation(t *testing.T) {
	space := ref.NewSpace()
	a, b := space.New(), space.New()
	w := NewWorld(nil)
	pa := &disconnectingProto{refs: ref.NewSet(b), drop: true}
	w.AddProcess(a, Staying, pa)
	// b is leaving (and never exits), so the initial state is not
	// legitimate and the run actually executes steps.
	w.AddProcess(b, Leaving, &disconnectingProto{refs: ref.NewSet()})
	w.SealInitialState()
	res := Run(w, NewRoundScheduler(), RunOptions{
		Variant: FDP, MaxSteps: 100, SafetyEveryStep: true,
	})
	if res.SafetyViolation == nil {
		t.Fatal("reference deletion must be flagged as a safety violation")
	}
	if !errors.Is(res.SafetyViolation, ErrSafety) {
		t.Fatal("violation must wrap ErrSafety")
	}
	if res.Converged {
		t.Fatal("violated runs must not report convergence")
	}
}

func TestPickEnabledMatchesEnumeration(t *testing.T) {
	space := ref.NewSpace()
	a, b := space.New(), space.New()
	w := NewWorld(nil)
	fa := newFixture()
	w.AddProcess(a, Staying, fa)
	w.AddProcess(b, Staying, newFixture())
	w.Enqueue(a, NewMessage("m1"))
	w.Enqueue(b, NewMessage("m2"))
	w.Enqueue(b, NewMessage("m3"))
	actions := w.EnabledActions()
	if w.EnabledCount() != len(actions) {
		t.Fatalf("EnabledCount=%d, enumeration=%d", w.EnabledCount(), len(actions))
	}
	for k, want := range actions {
		got := w.PickEnabled(k)
		if got.Proc != want.Proc || got.IsTimeout != want.IsTimeout || got.MsgSeq != want.MsgSeq {
			t.Fatalf("PickEnabled(%d) = %+v, want %+v", k, got, want)
		}
	}
}

func TestValidateActionStaleness(t *testing.T) {
	space := ref.NewSpace()
	a := space.New()
	w := NewWorld(nil)
	fa := newFixture()
	w.AddProcess(a, Staying, fa)
	w.Enqueue(a, NewMessage("x"))
	act := w.EnabledActions()[1] // the delivery
	if !w.ValidateAction(&act) {
		t.Fatal("live action must validate")
	}
	w.Execute(act) // consume it
	if w.ValidateAction(&act) {
		t.Fatal("consumed message must not validate")
	}
	timeout := Action{Proc: a, IsTimeout: true}
	if !w.ValidateAction(&timeout) {
		t.Fatal("timeout of awake process must validate")
	}
	fa.onTimeout = func(ctx Context, f *fixtureProto) { ctx.Exit() }
	w.Execute(timeout)
	if w.ValidateAction(&timeout) {
		t.Fatal("gone process's timeout must not validate")
	}
}
