package sim

import (
	"errors"
	"testing"

	"fdp/internal/ref"
)

// exitWhenToldProto exits on its k-th timeout; staying fixtures idle.
type exitAfterProto struct {
	fixtureProto
	after int
}

func (e *exitAfterProto) Timeout(ctx Context) {
	e.after--
	if e.after <= 0 {
		ctx.Exit()
	}
}

// buildRunWorld: one staying idle process and one leaving process that
// exits after k timeouts.
func buildRunWorld(k int) (*World, ref.Ref, ref.Ref) {
	space := ref.NewSpace()
	stay, leave := space.New(), space.New()
	w := NewWorld(nil)
	w.AddProcess(stay, Staying, newFixture())
	w.AddProcess(leave, Leaving, &exitAfterProto{after: k})
	w.SealInitialState()
	return w, stay, leave
}

func TestRunConvergesToLegitimacy(t *testing.T) {
	w, _, _ := buildRunWorld(3)
	res := Run(w, NewRoundScheduler(), RunOptions{Variant: FDP, MaxSteps: 1000})
	if !res.Converged {
		t.Fatalf("run did not converge: %+v", res)
	}
	if res.Stats.Exits != 1 {
		t.Fatal("exit not recorded")
	}
	if res.Rounds == 0 {
		t.Fatal("rounds not reported for the round scheduler")
	}
}

func TestRunRespectsMaxSteps(t *testing.T) {
	w, _, _ := buildRunWorld(1 << 30) // never exits
	res := Run(w, NewRandomScheduler(1, 64), RunOptions{Variant: FDP, MaxSteps: 500})
	if res.Converged {
		t.Fatal("must not converge")
	}
	if res.Steps != 500 {
		t.Fatalf("steps = %d, want exactly 500", res.Steps)
	}
}

func TestRunImmediateLegitimacy(t *testing.T) {
	// No leavers: state is legitimate before any step.
	space := ref.NewSpace()
	a := space.New()
	w := NewWorld(nil)
	w.AddProcess(a, Staying, newFixture())
	w.SealInitialState()
	res := Run(w, NewRandomScheduler(1, 64), RunOptions{Variant: FDP, MaxSteps: 100})
	if !res.Converged || res.Steps != 0 {
		t.Fatalf("immediate legitimacy not detected: %+v", res)
	}
}

func TestRunSealsAutomatically(t *testing.T) {
	space := ref.NewSpace()
	a := space.New()
	w := NewWorld(nil)
	w.AddProcess(a, Staying, newFixture())
	// No SealInitialState call: Run must do it.
	res := Run(w, NewRandomScheduler(1, 64), RunOptions{Variant: FDP, MaxSteps: 10})
	if !res.Converged {
		t.Fatal("auto-seal failed")
	}
	if w.InitialComponents() == nil {
		t.Fatal("initial components not sealed")
	}
}

func TestRunPotentialSeries(t *testing.T) {
	w, _, _ := buildRunWorld(5)
	countdown := 10
	res := Run(w, NewRoundScheduler(), RunOptions{
		Variant: FDP, MaxSteps: 1000, CheckEvery: 1,
		Potential: func(*World) int { countdown--; return countdown },
	})
	if len(res.PotentialSteps) == 0 || len(res.PotentialValues) != len(res.PotentialSteps) {
		t.Fatalf("potential series missing: %+v", res)
	}
}

// disconnectingProto deletes its only reference outright — a protocol
// outside the four primitives, used to check the safety detector.
type disconnectingProto struct {
	refs ref.Set
	drop bool
}

func (d *disconnectingProto) Timeout(ctx Context) {
	if d.drop {
		d.refs = ref.NewSet()
	}
}
func (d *disconnectingProto) Deliver(Context, Message) {}
func (d *disconnectingProto) Refs() []ref.Ref          { return d.refs.Sorted() }

func TestRunDetectsSafetyViolation(t *testing.T) {
	space := ref.NewSpace()
	a, b := space.New(), space.New()
	w := NewWorld(nil)
	pa := &disconnectingProto{refs: ref.NewSet(b), drop: true}
	w.AddProcess(a, Staying, pa)
	// b is leaving (and never exits), so the initial state is not
	// legitimate and the run actually executes steps.
	w.AddProcess(b, Leaving, &disconnectingProto{refs: ref.NewSet()})
	w.SealInitialState()
	res := Run(w, NewRoundScheduler(), RunOptions{
		Variant: FDP, MaxSteps: 100, SafetyEveryStep: true,
	})
	if res.SafetyViolation == nil {
		t.Fatal("reference deletion must be flagged as a safety violation")
	}
	if !errors.Is(res.SafetyViolation, ErrSafety) {
		t.Fatal("violation must wrap ErrSafety")
	}
	if res.Converged {
		t.Fatal("violated runs must not report convergence")
	}
}

// dropRefsProto stores a fixed reference list until its first timeout, which
// discards every stored reference — the smallest action that can disconnect
// the process graph.
type dropRefsProto struct{ refs []ref.Ref }

func (d *dropRefsProto) Timeout(Context)          { d.refs = nil }
func (d *dropRefsProto) Deliver(Context, Message) {}
func (d *dropRefsProto) Refs() []ref.Ref          { return d.refs }

// giveUpScheduler executes a fixed plan and then reports no enabled action.
// The Scheduler contract only promises "ok is false iff no action is
// chosen"; a budgeted or adversarial scheduler may stop before true
// quiescence, so the run driver must not equate !ok with safety.
type giveUpScheduler struct {
	plan []Action
	pos  int
}

func (s *giveUpScheduler) Name() string { return "give-up" }

func (s *giveUpScheduler) Next(w *World) (Action, bool) {
	if s.pos >= len(s.plan) {
		return Action{}, false
	}
	a := s.plan[s.pos]
	s.pos++
	return a, true
}

// A run that stops with the relevant processes disconnected must report the
// Lemma 2 violation even when the stop comes from the scheduler's !ok path
// rather than a periodic check. Before the fix, that branch of Run evaluated
// legitimacy once more but skipped CheckSafety entirely, so the caller could
// not distinguish "did not converge" from "safety broken".
func TestRunQuiescentPathChecksSafety(t *testing.T) {
	space := ref.NewSpace()
	a, b, c := space.New(), space.New(), space.New()
	w := NewWorld(nil)
	w.AddProcess(a, Staying, &dropRefsProto{})
	w.AddProcess(b, Staying, &dropRefsProto{refs: []ref.Ref{a, c}})
	// c is leaving and never exits, so the initial state is not legitimate
	// and the run proceeds past the entry sample.
	w.AddProcess(c, Leaving, &dropRefsProto{})
	w.SealInitialState() // one component: b -> a, b -> c

	// b's timeout drops both references, isolating all three awake
	// processes; the scheduler then gives up before the periodic check
	// (checkEvery defaults to 3 = the process count) can fire.
	sched := &giveUpScheduler{plan: []Action{{Proc: b, IsTimeout: true}}}
	res := Run(w, sched, RunOptions{Variant: FDP, CheckSafety: true})

	if res.Converged {
		t.Fatal("disconnected state must not count as converged")
	}
	if res.SafetyViolation == nil {
		t.Fatal("quiescent stop in a disconnected state must report the safety violation")
	}
	if !errors.Is(res.SafetyViolation, ErrSafety) {
		t.Fatalf("violation must wrap ErrSafety, got %v", res.SafetyViolation)
	}
}

// The quiescent path must not invent violations or eat convergence: a world
// that becomes legitimate on the very step after which the scheduler stops
// still reports success.
func TestRunQuiescentPathStillConverges(t *testing.T) {
	w, _, _ := buildRunWorld(1) // leaver exits on its first timeout
	_, leave := func() (ref.Ref, ref.Ref) {
		refs := w.Refs()
		return refs[0], refs[1]
	}()
	sched := &giveUpScheduler{plan: []Action{{Proc: leave, IsTimeout: true}}}
	res := Run(w, sched, RunOptions{Variant: FDP, CheckSafety: true})
	if !res.Converged || res.SafetyViolation != nil {
		t.Fatalf("legitimate quiescent state misreported: %+v", res)
	}
}

func TestPickEnabledMatchesEnumeration(t *testing.T) {
	space := ref.NewSpace()
	a, b := space.New(), space.New()
	w := NewWorld(nil)
	fa := newFixture()
	w.AddProcess(a, Staying, fa)
	w.AddProcess(b, Staying, newFixture())
	w.Enqueue(a, NewMessage("m1"))
	w.Enqueue(b, NewMessage("m2"))
	w.Enqueue(b, NewMessage("m3"))
	actions := w.EnabledActions()
	if w.EnabledCount() != len(actions) {
		t.Fatalf("EnabledCount=%d, enumeration=%d", w.EnabledCount(), len(actions))
	}
	for k, want := range actions {
		got := w.PickEnabled(k)
		if got.Proc != want.Proc || got.IsTimeout != want.IsTimeout || got.MsgSeq != want.MsgSeq {
			t.Fatalf("PickEnabled(%d) = %+v, want %+v", k, got, want)
		}
	}
}

func TestValidateActionStaleness(t *testing.T) {
	space := ref.NewSpace()
	a := space.New()
	w := NewWorld(nil)
	fa := newFixture()
	w.AddProcess(a, Staying, fa)
	w.Enqueue(a, NewMessage("x"))
	act := w.EnabledActions()[1] // the delivery
	if !w.ValidateAction(&act) {
		t.Fatal("live action must validate")
	}
	w.Execute(act) // consume it
	if w.ValidateAction(&act) {
		t.Fatal("consumed message must not validate")
	}
	timeout := Action{Proc: a, IsTimeout: true}
	if !w.ValidateAction(&timeout) {
		t.Fatal("timeout of awake process must validate")
	}
	fa.onTimeout = func(ctx Context, f *fixtureProto) { ctx.Exit() }
	w.Execute(timeout)
	if w.ValidateAction(&timeout) {
		t.Fatal("gone process's timeout must not validate")
	}
}
