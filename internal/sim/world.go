package sim

import (
	"fmt"

	"fdp/internal/graph"
	"fdp/internal/ref"
)

// Oracle is a predicate O: PG × P -> {true,false} over the current process
// graph of relevant processes and the calling process (Section 1.3).
type Oracle interface {
	Name() string
	// Evaluate is called with the world (providing the relevant process
	// graph) and the calling process.
	Evaluate(w *World, u ref.Ref) bool
}

// Event is a trace event emitted by the world.
type Event struct {
	Step    int
	Kind    EventKind
	Proc    ref.Ref
	Peer    ref.Ref // message target / source where applicable
	Label   string  // message label where applicable
	Message string  // free-form detail
	// Age is, on EvDeliver, the number of steps the message spent in the
	// channel (delivery step minus enqueue step) — the "message age at
	// delivery" series of the obs layer.
	Age int
	// Depth is the channel length after the operation: the target's queue
	// after an EvSend, the receiver's queue after an EvDeliver.
	Depth int

	// CID is the unique causal identity of this event within its engine
	// run, drawn from the engine's causal counter. Every emitted event gets
	// a fresh CID; messages share the CID of their EvSend (initial-state
	// messages get a CID without an event).
	CID uint64
	// Parent is the CID of this event's causal parent: for EvSend/EvDrop
	// the action event (timeout or delivery) being executed when the send
	// happened; for EvDeliver/EvWake the CID of the message being delivered
	// (i.e. of its send); for EvExit/EvSleep the triggering action event.
	// 0 means "no recorded parent" (a timeout, or an initial-state message).
	Parent uint64
	// MsgID is, on EvSend/EvDeliver/EvDrop, the unique causal identity of
	// the message itself (equal to the CID of its send event).
	MsgID uint64
	// MsgSeq is, on EvSend/EvDeliver, the message's arrival sequence number
	// — the identity ReplayScheduler re-resolves actions by, which is what
	// makes a journal's schedule re-executable.
	MsgSeq uint64
	// Clock is the executing process's Lamport clock at emission: bumped on
	// every action start, merged with the message's SendClock on delivery.
	// Events ordered by happens-before always have increasing clocks, on
	// both engines.
	Clock uint64
}

// EventKind enumerates trace event types.
type EventKind uint8

// Trace event kinds.
const (
	EvTimeout EventKind = iota
	EvDeliver
	EvSend
	EvDrop
	EvExit
	EvSleep
	EvWake
)

// NumEventKinds is the number of EventKind values, sized for dense
// per-kind counter arrays (the concurrent runtime keeps one atomic counter
// per kind).
const NumEventKinds = int(EvWake) + 1

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvTimeout:
		return "timeout"
	case EvDeliver:
		return "deliver"
	case EvSend:
		return "send"
	case EvDrop:
		return "drop"
	case EvExit:
		return "exit"
	case EvSleep:
		return "sleep"
	default:
		return "wake"
	}
}

// Stats aggregates counters over a run.
type Stats struct {
	Steps        int
	Timeouts     uint64
	Deliveries   uint64
	Sent         uint64
	Dropped      uint64 // sends to gone processes
	Exits        int
	Sleeps       uint64
	Wakes        uint64
	SentByLabel  map[string]uint64
	MaxChannel   int // high-water mark of any single channel
	TotalInQueue int // current in-flight messages (maintained incrementally)
}

func newStats() Stats { return Stats{SentByLabel: make(map[string]uint64)} }

type process struct {
	id    ref.Ref
	mode  Mode
	life  Life
	ch    []Message
	proto Protocol

	lastTimeout int // step index of last timeout execution, for fairness aging

	// clock is the process's Lamport clock: incremented at every action it
	// executes, merged (max) with the sender's clock on every delivery.
	clock uint64

	// pgRefs is the copy of proto.Refs() the incremental process graph was
	// last synced against (see pg.go). nil until the graph is seeded.
	pgRefs []ref.Ref
}

// World holds the full system state: every process, its channel, and the
// configured oracle. It executes atomic actions one at a time.
type World struct {
	procs  []*process // dense, indexed by ref.Index
	byRef  map[ref.Ref]*process
	oracle Oracle
	stats  Stats
	seq    uint64

	// causal is the causal-ID counter: every emitted event and every
	// message draws a fresh CID from it. curCID is the CID of the current
	// atomic action's trigger event (the timeout or delivery), the causal
	// parent of every send the action performs.
	causal uint64
	curCID uint64

	// initialComponents is the weakly-connected-component partition of the
	// initial PG, captured by SealInitialState; legitimacy condition (iii)
	// is judged against it.
	initialComponents [][]ref.Ref

	onEvent []func(Event) // optional trace hooks, fanned out in attach order

	// onOracle, when installed, observes every OracleSays verdict — the
	// grant/denial stream the liveness watchdog (internal/obs) classifies
	// stalls from. It runs inside the asking process's atomic action and
	// must not mutate the world.
	onOracle func(ref.Ref, bool)

	// router, when installed, is consulted for sends whose target is not a
	// process of this world — the outbound hook the wire transport hangs the
	// multi-node deployment on (see SetRouter).
	router func(to ref.Ref, msg Message) bool

	// awake counts processes in the Awake state, for O(1) EnabledCount.
	awake int
	// asleep counts processes in the Asleep state; when it is zero no
	// process can be hibernating, which lets Hibernating skip the
	// reachability sweep entirely (the common case in FDP runs).
	asleep int

	// sleepRequested defers the sleep transition to the end of the current
	// atomic action, as the model requires action execution to be atomic.
	current        *process
	sleepRequested bool
	exitRequested  bool

	// Incrementally maintained process graph and generation-stamped caches
	// of the derived views; see pg.go. pg is nil until first seeded by a
	// graph query — worlds that never ask for PG pay nothing.
	pg         *graph.Graph
	gen        uint64 // bumped on every mutation that can change a view
	hibGen     uint64
	hibCache   ref.Set
	relGen     uint64
	relCache   ref.Set
	relPGGen   uint64
	relPGCache *graph.Graph
	refScratch map[ref.Ref]int // reusable diff buffer for pgSyncRefs
}

// NewWorld returns an empty world using the given oracle (nil = no oracle;
// OracleSays always false).
func NewWorld(oracle Oracle) *World {
	return &World{
		byRef:  make(map[ref.Ref]*process),
		oracle: oracle,
		stats:  newStats(),
	}
}

// SetEventHook replaces ALL installed trace callbacks with fn (nil
// disables tracing). Use AddEventHook to attach a consumer without
// displacing the ones already installed.
func (w *World) SetEventHook(fn func(Event)) {
	if fn == nil {
		w.onEvent = nil
		return
	}
	w.onEvent = []func(Event){fn}
}

// SetOracleHook installs fn as an observer of every OracleSays verdict
// (nil clears). fn runs inside the asking process's atomic action, after
// the oracle evaluated, and must not mutate the world — the liveness
// watchdog's hook only touches atomics.
func (w *World) SetOracleHook(fn func(ref.Ref, bool)) { w.onOracle = fn }

// AddEventHook attaches one more trace callback; every installed hook
// receives every emitted event, in attach order. This is the fan-out that
// lets a world feed the viz recorder and the obs registry at once.
func (w *World) AddEventHook(fn func(Event)) {
	if fn == nil {
		return
	}
	w.onEvent = append(w.onEvent, fn)
}

func (w *World) emit(e Event) {
	if len(w.onEvent) == 0 {
		return
	}
	e.Step = w.stats.Steps
	for _, fn := range w.onEvent {
		fn(e)
	}
}

// AddProcess registers a process with the given mode and protocol instance.
// It panics on duplicate registration — scenario construction bugs should
// fail loudly.
func (w *World) AddProcess(r ref.Ref, mode Mode, proto Protocol) {
	if r.IsNil() {
		panic("sim: cannot add process with nil reference")
	}
	if _, dup := w.byRef[r]; dup {
		panic(fmt.Sprintf("sim: duplicate process %v", r))
	}
	p := &process{id: r, mode: mode, life: Awake, proto: proto}
	w.byRef[r] = p
	w.awake++
	idx := ref.Index(r)
	for len(w.procs) <= idx {
		w.procs = append(w.procs, nil)
	}
	w.procs[idx] = p
	// A new node can legitimize edges other processes already hold toward
	// it; rather than scanning everyone, drop the incremental graph and let
	// the next query reseed it (process addition is a construction-time or
	// rare join-time event, not a hot-path one).
	if w.pg != nil {
		w.InvalidatePG()
	} else {
		w.gen++
	}
}

// Enqueue places a message directly into to's channel, used to set up
// arbitrary initial states (in-flight messages) and by the parallel runtime.
// Messages to unknown or gone processes are dropped.
func (w *World) Enqueue(to ref.Ref, msg Message) {
	p := w.byRef[to]
	if p == nil || p.life == Gone {
		w.stats.Dropped++
		return
	}
	w.seq++
	msg.seq = w.seq
	msg.enqStep = w.stats.Steps
	// Initial-state messages (and runtime-snapshot reconstructions) get a
	// fresh causal identity with no parent: nothing in the trace caused them.
	w.causal++
	msg.cid = w.causal
	msg.parent = 0
	msg.lclock = 0
	p.ch = append(p.ch, msg)
	w.stats.TotalInQueue++
	if len(p.ch) > w.stats.MaxChannel {
		w.stats.MaxChannel = len(p.ch)
	}
	w.pgEnqueue(p.id, &msg)
}

// SetRouter installs the outbound transport hook. When a process sends to a
// reference that names no process of this world, the router is offered the
// fully causal-stamped message; returning true means the transport accepted
// it for (possibly asynchronous) remote delivery and the send is recorded as
// a normal EvSend. Returning false — no route, link known dead — falls
// through to the model's drop path, including the sender's synchronous
// Undeliverable callback. Worlds without a router behave exactly as before:
// sends to unknown references drop.
//
// The hook runs inside the sending process's atomic action, on the world's
// goroutine; implementations must not call back into the world.
func (w *World) SetRouter(fn func(to ref.Ref, msg Message) bool) { w.router = fn }

// Inject places a remotely sent message into to's channel, preserving the
// causal identity stamped by the sending engine: CID, parent and Lamport
// clock survive the wire, which is what lets per-node journals join into one
// causal trace. Callers guarantee cross-engine CID uniqueness (the node
// harness namespaces each engine's counter via SeedCausal); unlike Enqueue,
// Inject does not advance the local causal counter past foreign CIDs —
// foreign namespaces must not bleed into ours. Messages without a causal
// identity get a fresh local one. Returns false — without enqueueing — when
// the target is unknown or gone, so the transport can bounce the message to
// its sender.
func (w *World) Inject(to ref.Ref, msg Message) bool {
	p := w.byRef[to]
	if p == nil || p.life == Gone {
		w.stats.Dropped++
		return false
	}
	if msg.cid == 0 {
		w.causal++
		msg.cid = w.causal
	}
	w.seq++
	msg.seq = w.seq
	msg.enqStep = w.stats.Steps
	p.ch = append(p.ch, msg)
	w.stats.TotalInQueue++
	if len(p.ch) > w.stats.MaxChannel {
		w.stats.MaxChannel = len(p.ch)
	}
	w.pgEnqueue(p.id, &msg)
	return true
}

// SeedCausal raises the causal-ID counter to base so every identity this
// world assigns afterwards is > base. The node harness gives each node a
// disjoint namespace (node i seeds (i+1)<<40) so CIDs stay globally unique
// across a multi-node run without coordination. No-op when the counter is
// already past base.
func (w *World) SeedCausal(base uint64) {
	if base > w.causal {
		w.causal = base
	}
}

// Bounce runs from's Undeliverable handler as its own pseudo-action: the
// asynchronous analogue of the drop path in Send, used when a remote bounce
// arrives long after the original send's atomic action finished. It emits an
// EvDrop with a fresh CID whose parent is the bounced message (the send
// already has its own record), wakes an asleep sender like any incoming
// notification would, and applies the usual post-action lifecycle. No-op if
// the sender is unknown or gone, or handles no undeliverables.
func (w *World) Bounce(from, to ref.Ref, msg Message) {
	p := w.byRef[from]
	if p == nil || p.life == Gone {
		return
	}
	h, ok := p.proto.(UndeliverableHandler)
	if !ok {
		return
	}
	w.stats.Steps++
	w.stats.Dropped++
	w.current = p
	w.sleepRequested = false
	w.exitRequested = false
	if msg.lclock > p.clock {
		p.clock = msg.lclock
	}
	p.clock++
	if p.life == Asleep {
		p.life = Awake
		w.awake++
		w.asleep--
		w.stats.Wakes++
		w.causal++
		w.emit(Event{Kind: EvWake, Proc: p.id, CID: w.causal, Parent: msg.cid, Clock: p.clock})
	}
	w.causal++
	w.curCID = w.causal
	w.emit(Event{Kind: EvDrop, Proc: p.id, Peer: to, Label: msg.Label,
		CID: w.curCID, Parent: msg.cid, MsgID: msg.cid, Clock: p.clock})
	h.Undeliverable(&procCtx{w: w, p: p}, to, msg)

	if w.exitRequested {
		if p.life == Awake {
			w.awake--
		} else if p.life == Asleep {
			w.asleep--
		}
		p.life = Gone
		w.stats.Exits++
		w.stats.TotalInQueue -= len(p.ch)
		p.ch = nil
		w.pgExit(p)
		w.causal++
		w.emit(Event{Kind: EvExit, Proc: p.id, CID: w.causal, Parent: w.curCID, Clock: p.clock})
	} else {
		w.pgSyncRefs(p)
		if w.sleepRequested {
			if p.life == Awake {
				w.awake--
				w.asleep++
			}
			p.life = Asleep
			w.stats.Sleeps++
			w.gen++
			w.causal++
			w.emit(Event{Kind: EvSleep, Proc: p.id, CID: w.causal, Parent: w.curCID, Clock: p.clock})
		}
	}
	w.current = nil
}

// SealInitialState captures the weakly-connected-component partition of the
// current PG. Call it after scenario construction, before the first step.
func (w *World) SealInitialState() {
	w.initialComponents = w.PG().WeaklyConnectedComponents()
}

// InitialComponents returns the sealed initial component partition.
func (w *World) InitialComponents() [][]ref.Ref { return w.initialComponents }

// SetInitialComponents installs an externally captured initial-component
// partition instead of sealing the current PG. The parallel runtime uses it
// so that frozen snapshots judge safety (Lemma 2) and legitimacy condition
// (iii) against the components captured at Start time — re-sealing a
// snapshot's own PG would silently adopt any disconnection that already
// happened as the new reference point, hiding exactly the violations the
// check exists to find. Components may mention references unknown to this
// world (e.g. processes that exited before the snapshot); consumers filter
// membership before use. The caller must not mutate comps afterwards.
func (w *World) SetInitialComponents(comps [][]ref.Ref) { w.initialComponents = comps }

// Refs returns the references of all registered processes, gone or not.
func (w *World) Refs() []ref.Ref {
	out := make([]ref.Ref, 0, len(w.byRef))
	for r := range w.byRef {
		out = append(out, r)
	}
	ref.Sort(out)
	return out
}

// Has reports whether r names a registered process of this world. Snapshot
// worlds built by the parallel runtime omit gone processes entirely, so
// predicates should check Has before ModeOf/LifeOf when handling stored
// references of unknown provenance.
func (w *World) Has(r ref.Ref) bool {
	_, ok := w.byRef[r]
	return ok
}

// ModeOf returns the true mode of r. Panics on unknown references.
func (w *World) ModeOf(r ref.Ref) Mode { return w.mustProc(r).mode }

// LifeOf returns the lifecycle state of r.
func (w *World) LifeOf(r ref.Ref) Life { return w.mustProc(r).life }

// ChannelLen returns the number of messages in r's channel.
func (w *World) ChannelLen(r ref.Ref) int { return len(w.mustProc(r).ch) }

// ChannelSnapshot returns a copy of r's channel contents.
func (w *World) ChannelSnapshot(r ref.Ref) []Message {
	p := w.mustProc(r)
	out := make([]Message, len(p.ch))
	copy(out, p.ch)
	return out
}

// ProtocolOf returns the protocol instance of r, for inspection by
// experiment code and the potential function.
func (w *World) ProtocolOf(r ref.Ref) Protocol { return w.mustProc(r).proto }

// ForceAsleep puts a process directly into the asleep state. It exists for
// snapshot reconstruction (the parallel runtime mirrors its live state into
// a World) and for tests that need to start from arbitrary lifecycle
// states; the protocol-driven way to sleep is Context.Sleep.
func (w *World) ForceAsleep(r ref.Ref) {
	p := w.mustProc(r)
	if p.life == Gone {
		panic(fmt.Sprintf("sim: ForceAsleep on gone process %v", r))
	}
	if p.life == Awake {
		w.awake--
		w.asleep++
	}
	p.life = Asleep
	w.gen++
}

// MarkGone removes a process from the world outside any action: the process
// becomes gone, its channel contents vanish and PG drops the node with every
// incident edge, exactly as the deferred exit in Execute — but without
// emitting an EvExit event. It exists for snapshot bookkeeping: the parallel
// runtime validates a batch of exit requests against one sealed frozen world
// and must fold each committed exit into that snapshot so later requests in
// the same batch are judged against the post-commit state (arbitrary oracles
// are not monotone under departures). Idempotent on gone processes.
func (w *World) MarkGone(r ref.Ref) {
	p := w.mustProc(r)
	if p.life == Gone {
		return
	}
	if p.life == Awake {
		w.awake--
	} else {
		w.asleep--
	}
	p.life = Gone
	w.stats.Exits++
	w.stats.TotalInQueue -= len(p.ch)
	p.ch = nil
	w.pgExit(p)
}

// Stats returns a copy of the run counters.
func (w *World) Stats() Stats {
	s := w.stats
	s.SentByLabel = make(map[string]uint64, len(w.stats.SentByLabel))
	for k, v := range w.stats.SentByLabel {
		s.SentByLabel[k] = v
	}
	return s
}

// Steps returns the number of atomic actions executed so far.
func (w *World) Steps() int { return w.stats.Steps }

// CausalIDs returns how many causal identities (events and messages) the
// world has assigned so far — the high-water mark of Event.CID.
func (w *World) CausalIDs() uint64 { return w.causal }

func (w *World) mustProc(r ref.Ref) *process {
	p := w.byRef[r]
	if p == nil {
		panic(fmt.Sprintf("sim: unknown process %v", r))
	}
	return p
}

// --- Action enumeration and execution ---------------------------------

// Action identifies one enabled action: a timeout of an awake process or the
// delivery of one channel message to an awake or asleep process.
type Action struct {
	Proc      ref.Ref
	IsTimeout bool
	MsgIndex  int    // valid when !IsTimeout
	MsgSeq    uint64 // stable identity of the message (for debugging)
	MsgStep   int    // step at which the message was enqueued, for aging
}

// EnabledCount returns the number of enabled actions without materializing
// them: one timeout per awake process plus every queued message of non-gone
// processes.
func (w *World) EnabledCount() int {
	return w.awake + w.stats.TotalInQueue
}

// PickEnabled returns the k-th enabled action in the canonical order used
// by EnabledActions, without allocating the full list. k must be in
// [0, EnabledCount()).
func (w *World) PickEnabled(k int) Action {
	for _, p := range w.procs {
		if p == nil || p.life == Gone {
			continue
		}
		if p.life == Awake {
			if k == 0 {
				return Action{Proc: p.id, IsTimeout: true}
			}
			k--
		}
		if k < len(p.ch) {
			return Action{Proc: p.id, MsgIndex: k, MsgSeq: p.ch[k].seq, MsgStep: p.ch[k].enqStep}
		}
		k -= len(p.ch)
	}
	panic("sim: PickEnabled index out of range")
}

// ValidateAction re-checks that a previously enumerated action is still
// enabled, re-resolving a message's index by its sequence number. It
// returns false for actions that became stale (process gone or asleep,
// message already delivered).
func (w *World) ValidateAction(a *Action) bool {
	p := w.byRef[a.Proc]
	if p == nil || p.life == Gone {
		return false
	}
	if a.IsTimeout {
		return p.life == Awake
	}
	for i, m := range p.ch {
		if m.seq == a.MsgSeq {
			a.MsgIndex = i
			return true
		}
	}
	return false
}

// EnabledActions lists every action enabled in the current state, in
// deterministic order.
func (w *World) EnabledActions() []Action {
	var out []Action
	for _, p := range w.procs {
		if p == nil || p.life == Gone {
			continue
		}
		if p.life == Awake {
			out = append(out, Action{Proc: p.id, IsTimeout: true})
		}
		for i, m := range p.ch {
			out = append(out, Action{Proc: p.id, MsgIndex: i, MsgSeq: m.seq, MsgStep: m.enqStep})
		}
	}
	return out
}

// Quiescent reports whether no action is enabled: every process is gone or
// asleep and all channels of non-gone processes are empty.
func (w *World) Quiescent() bool {
	for _, p := range w.procs {
		if p == nil || p.life == Gone {
			continue
		}
		if p.life == Awake || len(p.ch) > 0 {
			return false
		}
	}
	return true
}

// Execute runs one enabled action atomically. It panics if the action is not
// enabled (scheduler bug).
func (w *World) Execute(a Action) {
	p := w.mustProc(a.Proc)
	if p.life == Gone {
		panic(fmt.Sprintf("sim: action on gone process %v", a.Proc))
	}
	w.stats.Steps++
	w.current = p
	w.sleepRequested = false
	w.exitRequested = false
	ctx := &procCtx{w: w, p: p}

	if a.IsTimeout {
		if p.life != Awake {
			panic(fmt.Sprintf("sim: timeout on non-awake process %v", a.Proc))
		}
		w.stats.Timeouts++
		p.lastTimeout = w.stats.Steps
		p.clock++
		w.causal++
		w.curCID = w.causal
		w.emit(Event{Kind: EvTimeout, Proc: p.id, CID: w.curCID, Clock: p.clock})
		p.proto.Timeout(ctx)
	} else {
		if a.MsgIndex < 0 || a.MsgIndex >= len(p.ch) {
			panic(fmt.Sprintf("sim: bad message index %d for %v", a.MsgIndex, a.Proc))
		}
		msg := p.ch[a.MsgIndex]
		// Remove the message from the channel (processed exactly once).
		p.ch = append(p.ch[:a.MsgIndex], p.ch[a.MsgIndex+1:]...)
		w.stats.TotalInQueue--
		w.pgDequeue(p.id, &msg)
		// Lamport merge: the delivery happens after the send.
		if msg.lclock > p.clock {
			p.clock = msg.lclock
		}
		p.clock++
		if p.life == Asleep {
			p.life = Awake
			w.awake++
			w.asleep--
			w.stats.Wakes++
			w.causal++
			w.emit(Event{Kind: EvWake, Proc: p.id, CID: w.causal, Parent: msg.cid, Clock: p.clock})
		}
		w.stats.Deliveries++
		w.causal++
		w.curCID = w.causal
		w.emit(Event{Kind: EvDeliver, Proc: p.id, Peer: msg.from, Label: msg.Label,
			Age: w.stats.Steps - msg.enqStep, Depth: len(p.ch),
			CID: w.curCID, Parent: msg.cid, MsgID: msg.cid, MsgSeq: msg.seq, Clock: p.clock})
		p.proto.Deliver(ctx, msg)
	}

	// Apply deferred lifecycle transitions after the atomic action.
	if w.exitRequested {
		if p.life == Awake {
			w.awake--
		} else if p.life == Asleep {
			w.asleep--
		}
		p.life = Gone
		w.stats.Exits++
		// A gone process's channel contents can never be processed and are
		// no longer part of PG (the process is removed with its edges).
		w.stats.TotalInQueue -= len(p.ch)
		p.ch = nil
		w.pgExit(p)
		w.causal++
		w.emit(Event{Kind: EvExit, Proc: p.id, CID: w.causal, Parent: w.curCID, Clock: p.clock})
	} else {
		// Only the acting process's stored refs can change during an atomic
		// action: fold its explicit-edge delta into the incremental PG.
		w.pgSyncRefs(p)
		if w.sleepRequested {
			if p.life == Awake {
				w.awake--
				w.asleep++
			}
			p.life = Asleep
			w.stats.Sleeps++
			w.gen++
			w.causal++
			w.emit(Event{Kind: EvSleep, Proc: p.id, CID: w.causal, Parent: w.curCID, Clock: p.clock})
		}
	}
	w.current = nil
}

type procCtx struct {
	w *World
	p *process
}

func (c *procCtx) Self() ref.Ref { return c.p.id }
func (c *procCtx) Mode() Mode    { return c.p.mode }

func (c *procCtx) Send(to ref.Ref, msg Message) {
	if to.IsNil() {
		return
	}
	msg.from = c.p.id
	// Causal stamp: the message's identity is a fresh CID, its parent the
	// action event being executed, its clock the sender's Lamport time.
	// Stamped before the drop check so even vanished sends are identified
	// in the trace.
	c.w.causal++
	msg.cid = c.w.causal
	msg.parent = c.w.curCID
	msg.lclock = c.p.clock
	target := c.w.byRef[to]
	c.w.stats.Sent++
	c.w.stats.SentByLabel[msg.Label]++
	if target == nil && c.w.router != nil && c.w.router(to, msg) {
		// The transport accepted the message for remote delivery. Depth and
		// MsgSeq are unknowable here (the receiving engine assigns them); the
		// causal fields are what cross-node joins align on.
		c.w.emit(Event{Kind: EvSend, Proc: c.p.id, Peer: to, Label: msg.Label,
			CID: msg.cid, Parent: msg.parent, MsgID: msg.cid, Clock: c.p.clock})
		return
	}
	if target == nil || target.life == Gone {
		c.w.stats.Dropped++
		c.w.emit(Event{Kind: EvDrop, Proc: c.p.id, Peer: to, Label: msg.Label,
			CID: msg.cid, Parent: msg.parent, MsgID: msg.cid, Clock: c.p.clock})
		if h, ok := c.p.proto.(UndeliverableHandler); ok {
			h.Undeliverable(c, to, msg)
		}
		return
	}
	c.w.seq++
	msg.seq = c.w.seq
	msg.enqStep = c.w.stats.Steps
	target.ch = append(target.ch, msg)
	c.w.stats.TotalInQueue++
	if len(target.ch) > c.w.stats.MaxChannel {
		c.w.stats.MaxChannel = len(target.ch)
	}
	c.w.pgEnqueue(target.id, &msg)
	c.w.emit(Event{Kind: EvSend, Proc: c.p.id, Peer: to, Label: msg.Label, Depth: len(target.ch),
		CID: msg.cid, Parent: msg.parent, MsgID: msg.cid, MsgSeq: msg.seq, Clock: c.p.clock})
}

func (c *procCtx) Exit() { c.w.exitRequested = true }

func (c *procCtx) Sleep() { c.w.sleepRequested = true }

func (c *procCtx) OracleSays() bool {
	if c.w.oracle == nil {
		return false
	}
	ok := c.w.oracle.Evaluate(c.w, c.p.id)
	if c.w.onOracle != nil {
		c.w.onOracle(c.p.id, ok)
	}
	return ok
}
