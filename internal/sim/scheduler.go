package sim

import (
	"math/rand"
)

// Scheduler picks the next enabled action. All schedulers in this package
// are fair: every continuously enabled timeout runs infinitely often and
// every message is eventually delivered, as the model's computations
// require. Beyond fairness they differ in how adversarially they reorder
// messages and starve timeouts, which is how we probe self-stabilization
// from many schedules.
type Scheduler interface {
	Name() string
	// Next picks an enabled action; ok is false iff no action is enabled.
	Next(w *World) (a Action, ok bool)
}

// --- Random scheduler ---------------------------------------------------

// RandomScheduler picks uniformly among all enabled actions, with an aging
// bound that mechanically guarantees fairness: periodic sweeps collect any
// message older than AgingBound steps and any awake process whose timeout
// has not run for AgingBound steps into a backlog that is served first.
// Picks cost O(#processes); sweeps cost O(#messages) but run only every
// AgingBound/2 steps, keeping the amortized per-step cost low.
type RandomScheduler struct {
	rng        *rand.Rand
	AgingBound int

	lastSweep int
	backlog   []Action
}

// NewRandomScheduler returns a seeded random scheduler with the given aging
// bound (<= 0 selects a default of 512).
func NewRandomScheduler(seed int64, agingBound int) *RandomScheduler {
	if agingBound <= 0 {
		agingBound = 512
	}
	return &RandomScheduler{rng: rand.New(rand.NewSource(seed)), AgingBound: agingBound}
}

// Name identifies the scheduler in reports.
func (s *RandomScheduler) Name() string { return "random" }

// Next implements Scheduler.
func (s *RandomScheduler) Next(w *World) (Action, bool) {
	// Serve overdue work first to guarantee fairness deterministically.
	for len(s.backlog) > 0 {
		a := s.backlog[0]
		s.backlog = s.backlog[1:]
		if w.ValidateAction(&a) {
			return a, true
		}
	}
	if w.Steps()-s.lastSweep >= s.AgingBound/2 {
		s.sweep(w)
		s.lastSweep = w.Steps()
		if len(s.backlog) > 0 {
			return s.Next(w)
		}
	}
	total := w.EnabledCount()
	if total == 0 {
		return Action{}, false
	}
	return w.PickEnabled(s.rng.Intn(total)), true
}

// sweep collects every action that exceeded the aging bound: timeouts by
// the step they last ran, messages by the step they were enqueued. It scans
// process state directly rather than materializing EnabledActions.
func (s *RandomScheduler) sweep(w *World) {
	step := w.Steps()
	for _, p := range w.procs {
		if p == nil || p.life == Gone {
			continue
		}
		if p.life == Awake && step-p.lastTimeout > s.AgingBound {
			s.backlog = append(s.backlog, Action{Proc: p.id, IsTimeout: true})
		}
		for i := range p.ch {
			if step-p.ch[i].enqStep > s.AgingBound {
				s.backlog = append(s.backlog, Action{
					Proc: p.id, MsgIndex: i, MsgSeq: p.ch[i].seq, MsgStep: p.ch[i].enqStep,
				})
			}
		}
	}
}

// --- Round scheduler ----------------------------------------------------

// RoundScheduler executes canonical asynchronous rounds: in each round,
// every process (in deterministic order) first processes all messages that
// were in its channel at the start of the round, then executes its timeout
// if awake. This is trivially fair and provides the "rounds to convergence"
// metric used by the experiments.
type RoundScheduler struct {
	plan   []Action // reused round plan buffer
	pos    int      // cursor into plan, so the buffer keeps its capacity
	rounds int
}

// NewRoundScheduler returns a fresh round scheduler.
func NewRoundScheduler() *RoundScheduler { return &RoundScheduler{} }

// Name identifies the scheduler in reports.
func (s *RoundScheduler) Name() string { return "rounds" }

// Rounds returns the number of completed rounds.
func (s *RoundScheduler) Rounds() int { return s.rounds }

// Next implements Scheduler. The per-round plan snapshots message sequence
// numbers at round start; messages arriving during the round wait for the
// next round, which models arbitrary (but fair) delivery delay.
func (s *RoundScheduler) Next(w *World) (Action, bool) {
	for {
		for s.pos < len(s.plan) {
			a := s.plan[s.pos]
			s.pos++
			if !s.stillEnabled(w, &a) {
				continue
			}
			return a, true
		}
		if w.Quiescent() {
			return Action{}, false
		}
		s.buildRound(w)
		s.pos = 0
		s.rounds++
	}
}

// buildRound snapshots the message seqs present at round start. It iterates
// the dense process slice in place (already in deterministic ref order) and
// reads channels directly — no per-round ref sort or channel copy.
func (s *RoundScheduler) buildRound(w *World) {
	s.plan = s.plan[:0]
	for _, p := range w.procs {
		if p == nil || p.life == Gone {
			continue
		}
		for i := range p.ch {
			s.plan = append(s.plan, Action{Proc: p.id, MsgSeq: p.ch[i].seq, MsgStep: p.ch[i].enqStep})
		}
		s.plan = append(s.plan, Action{Proc: p.id, IsTimeout: true})
	}
}

// stillEnabled revalidates a planned action against the live state and, for
// message deliveries, resolves the current index of the message by its
// sequence number.
func (s *RoundScheduler) stillEnabled(w *World, a *Action) bool {
	p := w.byRef[a.Proc]
	if p == nil || p.life == Gone {
		return false
	}
	if a.IsTimeout {
		return p.life == Awake
	}
	for i, m := range p.ch {
		if m.seq == a.MsgSeq {
			a.MsgIndex = i
			return true
		}
	}
	return false
}

// --- Adversarial scheduler ----------------------------------------------

// AdversarialScheduler tries to break stabilization within the fairness
// constraints: it delivers the newest messages first (LIFO, maximal
// reordering), starves timeouts for as long as the fairness bound allows,
// and sometimes targets a single process's backlog to create hot spots.
type AdversarialScheduler struct {
	rng   *rand.Rand
	Bound int // fairness bound, in steps

	timeouts []Action // scratch buffer reused across picks
}

// NewAdversarialScheduler returns a seeded adversarial scheduler with the
// given fairness bound (<= 0 selects 256).
func NewAdversarialScheduler(seed int64, bound int) *AdversarialScheduler {
	if bound <= 0 {
		bound = 256
	}
	return &AdversarialScheduler{rng: rand.New(rand.NewSource(seed)), Bound: bound}
}

// Name identifies the scheduler in reports.
func (s *AdversarialScheduler) Name() string { return "adversarial" }

// Next implements Scheduler. It scans process state directly in one pass —
// no per-pick EnabledActions materialization.
func (s *AdversarialScheduler) Next(w *World) (Action, bool) {
	step := w.Steps()
	var best Action // newest message (max seq) — worst-case reordering
	bestSeq := uint64(0)
	haveMsg := false
	s.timeouts = s.timeouts[:0]
	for _, p := range w.procs {
		if p == nil || p.life == Gone {
			continue
		}
		if p.life == Awake {
			// Obey fairness first: overdue timeouts must run.
			if step-p.lastTimeout > s.Bound {
				return Action{Proc: p.id, IsTimeout: true}, true
			}
			s.timeouts = append(s.timeouts, Action{Proc: p.id, IsTimeout: true})
		}
		for i := range p.ch {
			m := &p.ch[i]
			// Overdue messages must run, aged by their enqueue step.
			if step-m.enqStep > s.Bound {
				return Action{Proc: p.id, MsgIndex: i, MsgSeq: m.seq, MsgStep: m.enqStep}, true
			}
			if m.seq >= bestSeq {
				best = Action{Proc: p.id, MsgIndex: i, MsgSeq: m.seq, MsgStep: m.enqStep}
				bestSeq, haveMsg = m.seq, true
			}
		}
	}
	if !haveMsg && len(s.timeouts) == 0 {
		return Action{}, false
	}
	if haveMsg && s.rng.Intn(8) != 0 {
		return best, true
	}
	// Occasionally run a random timeout so guards stay live.
	if len(s.timeouts) > 0 {
		return s.timeouts[s.rng.Intn(len(s.timeouts))], true
	}
	return best, true
}

// --- FIFO scheduler -------------------------------------------------------

// FIFOScheduler delivers the globally oldest message first and interleaves
// one timeout per process between deliveries. Although the model allows
// non-FIFO channels, FIFO order is a legal schedule and a useful baseline.
type FIFOScheduler struct {
	rr int

	timeouts []Action // scratch buffer reused across picks
}

// NewFIFOScheduler returns a FIFO scheduler.
func NewFIFOScheduler() *FIFOScheduler { return &FIFOScheduler{} }

// Name identifies the scheduler in reports.
func (s *FIFOScheduler) Name() string { return "fifo" }

// Next implements Scheduler. It scans process state directly in one pass —
// no per-pick EnabledActions materialization.
func (s *FIFOScheduler) Next(w *World) (Action, bool) {
	var best Action
	bestSeq := ^uint64(0)
	haveMsg := false
	s.timeouts = s.timeouts[:0]
	for _, p := range w.procs {
		if p == nil || p.life == Gone {
			continue
		}
		if p.life == Awake {
			s.timeouts = append(s.timeouts, Action{Proc: p.id, IsTimeout: true})
		}
		for i := range p.ch {
			m := &p.ch[i]
			if m.seq < bestSeq {
				best = Action{Proc: p.id, MsgIndex: i, MsgSeq: m.seq, MsgStep: m.enqStep}
				bestSeq, haveMsg = m.seq, true
			}
		}
	}
	timeouts := s.timeouts
	if !haveMsg && len(timeouts) == 0 {
		return Action{}, false
	}
	s.rr++
	// Alternate: every third pick runs a timeout (round-robin) so guards
	// stay live even under a constant message stream.
	if len(timeouts) > 0 && (!haveMsg || s.rr%3 == 0) {
		return timeouts[s.rr/3%len(timeouts)], true
	}
	if haveMsg {
		return best, true
	}
	return timeouts[s.rr%len(timeouts)], true
}
