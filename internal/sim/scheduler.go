package sim

import (
	"math/rand"
)

// Scheduler picks the next enabled action. All schedulers in this package
// are fair: every continuously enabled timeout runs infinitely often and
// every message is eventually delivered, as the model's computations
// require. Beyond fairness they differ in how adversarially they reorder
// messages and starve timeouts, which is how we probe self-stabilization
// from many schedules.
type Scheduler interface {
	Name() string
	// Next picks an enabled action; ok is false iff no action is enabled.
	Next(w *World) (a Action, ok bool)
}

// --- Random scheduler ---------------------------------------------------

// RandomScheduler picks uniformly among all enabled actions, with an aging
// bound that mechanically guarantees fairness: periodic sweeps collect any
// message older than AgingBound steps and any awake process whose timeout
// has not run for AgingBound steps into a backlog that is served first.
// Picks cost O(#processes); sweeps cost O(#messages) but run only every
// AgingBound/2 steps, keeping the amortized per-step cost low.
type RandomScheduler struct {
	rng        *rand.Rand
	AgingBound int

	lastSweep int
	backlog   []Action
}

// NewRandomScheduler returns a seeded random scheduler with the given aging
// bound (<= 0 selects a default of 512).
func NewRandomScheduler(seed int64, agingBound int) *RandomScheduler {
	if agingBound <= 0 {
		agingBound = 512
	}
	return &RandomScheduler{rng: rand.New(rand.NewSource(seed)), AgingBound: agingBound}
}

// Name identifies the scheduler in reports.
func (s *RandomScheduler) Name() string { return "random" }

// Next implements Scheduler.
func (s *RandomScheduler) Next(w *World) (Action, bool) {
	// Serve overdue work first to guarantee fairness deterministically.
	for len(s.backlog) > 0 {
		a := s.backlog[0]
		s.backlog = s.backlog[1:]
		if w.ValidateAction(&a) {
			return a, true
		}
	}
	if w.Steps()-s.lastSweep >= s.AgingBound/2 {
		s.sweep(w)
		s.lastSweep = w.Steps()
		if len(s.backlog) > 0 {
			return s.Next(w)
		}
	}
	total := w.EnabledCount()
	if total == 0 {
		return Action{}, false
	}
	return w.PickEnabled(s.rng.Intn(total)), true
}

// sweep collects every action that exceeded the aging bound: timeouts by
// the step they last ran, messages by the step they were enqueued. It scans
// process state directly rather than materializing EnabledActions.
func (s *RandomScheduler) sweep(w *World) {
	step := w.Steps()
	for _, p := range w.procs {
		if p == nil || p.life == Gone {
			continue
		}
		if p.life == Awake && step-p.lastTimeout > s.AgingBound {
			s.backlog = append(s.backlog, Action{Proc: p.id, IsTimeout: true})
		}
		for i := range p.ch {
			if step-p.ch[i].enqStep > s.AgingBound {
				s.backlog = append(s.backlog, Action{
					Proc: p.id, MsgIndex: i, MsgSeq: p.ch[i].seq, MsgStep: p.ch[i].enqStep,
				})
			}
		}
	}
}

// --- Round scheduler ----------------------------------------------------

// RoundScheduler executes canonical synchronous rounds in two global
// phases: first every process (in deterministic order) processes all
// messages that were in its channel at the start of the round, then every
// awake process executes its timeout. This is trivially fair and provides
// the "rounds to convergence" metric used by the experiments.
//
// The phase split matters for oracle-guarded exits: a timeout's oracle
// query sees a round boundary where every message from the previous round
// has been consumed. Interleaving timeouts between deliveries instead can
// starve guards that depend on in-flight state forever — a leaver
// re-verifying its anchor sends one self-introduction per round, and if its
// timeout always runs before the anchor's delivery, NIDEC's no-incoming-
// edges condition is false at every single query even though the schedule
// is fair (found by the churn fuzzer as a sequential-only livelock).
type RoundScheduler struct {
	plan   []Action // reused round plan buffer
	pos    int      // cursor into plan, so the buffer keeps its capacity
	rounds int
}

// NewRoundScheduler returns a fresh round scheduler.
func NewRoundScheduler() *RoundScheduler { return &RoundScheduler{} }

// Name identifies the scheduler in reports.
func (s *RoundScheduler) Name() string { return "rounds" }

// Rounds returns the number of completed rounds.
func (s *RoundScheduler) Rounds() int { return s.rounds }

// Next implements Scheduler. The per-round plan snapshots message sequence
// numbers at round start; messages arriving during the round wait for the
// next round, which models arbitrary (but fair) delivery delay.
func (s *RoundScheduler) Next(w *World) (Action, bool) {
	for {
		for s.pos < len(s.plan) {
			a := s.plan[s.pos]
			s.pos++
			if !s.stillEnabled(w, &a) {
				continue
			}
			return a, true
		}
		if w.Quiescent() {
			return Action{}, false
		}
		s.buildRound(w)
		s.pos = 0
		s.rounds++
	}
}

// buildRound snapshots the message seqs present at round start: the
// delivery phase first (every process's round-start messages), then the
// timeout phase. It iterates the dense process slice in place (already in
// deterministic ref order) and reads channels directly — no per-round ref
// sort or channel copy.
func (s *RoundScheduler) buildRound(w *World) {
	s.plan = s.plan[:0]
	for _, p := range w.procs {
		if p == nil || p.life == Gone {
			continue
		}
		for i := range p.ch {
			s.plan = append(s.plan, Action{Proc: p.id, MsgSeq: p.ch[i].seq, MsgStep: p.ch[i].enqStep})
		}
	}
	for _, p := range w.procs {
		if p == nil || p.life == Gone {
			continue
		}
		s.plan = append(s.plan, Action{Proc: p.id, IsTimeout: true})
	}
}

// stillEnabled revalidates a planned action against the live state and, for
// message deliveries, resolves the current index of the message by its
// sequence number.
func (s *RoundScheduler) stillEnabled(w *World, a *Action) bool {
	p := w.byRef[a.Proc]
	if p == nil || p.life == Gone {
		return false
	}
	if a.IsTimeout {
		return p.life == Awake
	}
	for i, m := range p.ch {
		if m.seq == a.MsgSeq {
			a.MsgIndex = i
			return true
		}
	}
	return false
}

// --- Adversarial scheduler ----------------------------------------------

// AdversarialScheduler tries to break stabilization within the fairness
// constraints: it delivers the newest messages first (LIFO, maximal
// reordering), starves timeouts for as long as the fairness bound allows,
// and sometimes targets a single process's backlog to create hot spots.
type AdversarialScheduler struct {
	rng   *rand.Rand
	Bound int // fairness bound, in steps

	timeouts []Action // scratch buffer reused across picks
}

// NewAdversarialScheduler returns a seeded adversarial scheduler with the
// given fairness bound (<= 0 selects 256).
func NewAdversarialScheduler(seed int64, bound int) *AdversarialScheduler {
	if bound <= 0 {
		bound = 256
	}
	return &AdversarialScheduler{rng: rand.New(rand.NewSource(seed)), Bound: bound}
}

// Name identifies the scheduler in reports.
func (s *AdversarialScheduler) Name() string { return "adversarial" }

// Next implements Scheduler. It scans process state directly in one pass —
// no per-pick EnabledActions materialization.
func (s *AdversarialScheduler) Next(w *World) (Action, bool) {
	step := w.Steps()
	var best Action // newest message (max seq) — worst-case reordering
	bestSeq := uint64(0)
	haveMsg := false
	s.timeouts = s.timeouts[:0]
	for _, p := range w.procs {
		if p == nil || p.life == Gone {
			continue
		}
		if p.life == Awake {
			// Obey fairness first: overdue timeouts must run.
			if step-p.lastTimeout > s.Bound {
				return Action{Proc: p.id, IsTimeout: true}, true
			}
			s.timeouts = append(s.timeouts, Action{Proc: p.id, IsTimeout: true})
		}
		for i := range p.ch {
			m := &p.ch[i]
			// Overdue messages must run, aged by their enqueue step.
			if step-m.enqStep > s.Bound {
				return Action{Proc: p.id, MsgIndex: i, MsgSeq: m.seq, MsgStep: m.enqStep}, true
			}
			if m.seq >= bestSeq {
				best = Action{Proc: p.id, MsgIndex: i, MsgSeq: m.seq, MsgStep: m.enqStep}
				bestSeq, haveMsg = m.seq, true
			}
		}
	}
	if !haveMsg && len(s.timeouts) == 0 {
		return Action{}, false
	}
	if haveMsg && s.rng.Intn(8) != 0 {
		return best, true
	}
	// Occasionally run a random timeout so guards stay live.
	if len(s.timeouts) > 0 {
		return s.timeouts[s.rng.Intn(len(s.timeouts))], true
	}
	return best, true
}

// --- FIFO scheduler -------------------------------------------------------

// FIFOScheduler delivers the globally oldest message first, in drain-paced
// phases: all messages enqueued before the current phase are delivered (in
// global seq order), then every awake process executes one timeout, then
// the next phase begins. Although the model allows non-FIFO channels, FIFO
// order is a legal schedule and a useful baseline.
//
// The drain pacing matters. An earlier version interleaved one timeout per
// three picks at a fixed ratio; the churn fuzzer found that on dense
// graphs (junk-densified scenarios reach average degree > 2) the periodic
// self-introductions produced by timeouts then outpace the two deliveries
// per timeout, channels grow without bound, and a leaver's oracle
// re-verification message spends ever longer in flight — an incoming
// implicit edge at almost every NIDEC query, livelocking exits the
// concurrent engine performs easily (the nidec-fifo-flood fixture).
// Draining everything the previous phase produced before the next timeout
// pass keeps queues bounded by one phase's production while remaining fair
// and globally FIFO.
type FIFOScheduler struct {
	threshold uint64 // deliver messages with seq <= threshold before the next timeout pass

	timeouts []Action // pending timeout pass, served one action per pick
	tpos     int
}

// NewFIFOScheduler returns a FIFO scheduler.
func NewFIFOScheduler() *FIFOScheduler { return &FIFOScheduler{} }

// Name identifies the scheduler in reports.
func (s *FIFOScheduler) Name() string { return "fifo" }

// Next implements Scheduler. It scans process state directly in one pass —
// no per-pick EnabledActions materialization.
func (s *FIFOScheduler) Next(w *World) (Action, bool) {
	for {
		// Serve the pending timeout pass first, one action per pick.
		for s.tpos < len(s.timeouts) {
			a := s.timeouts[s.tpos]
			s.tpos++
			if p := w.byRef[a.Proc]; p != nil && p.life == Awake {
				return a, true
			}
		}
		// Drain phase: the globally oldest message among those enqueued
		// before the phase started.
		var best Action
		bestSeq := ^uint64(0)
		haveMsg, anyMsg := false, false
		maxSeq := uint64(0)
		s.timeouts = s.timeouts[:0]
		for _, p := range w.procs {
			if p == nil || p.life == Gone {
				continue
			}
			if p.life == Awake {
				s.timeouts = append(s.timeouts, Action{Proc: p.id, IsTimeout: true})
			}
			for i := range p.ch {
				m := &p.ch[i]
				anyMsg = true
				if m.seq > maxSeq {
					maxSeq = m.seq
				}
				if m.seq <= s.threshold && m.seq < bestSeq {
					best = Action{Proc: p.id, MsgIndex: i, MsgSeq: m.seq, MsgStep: m.enqStep}
					bestSeq, haveMsg = m.seq, true
				}
			}
		}
		if haveMsg {
			s.timeouts = s.timeouts[:0] // not this pick's pass; rebuilt at phase end
			return best, true
		}
		if !anyMsg && len(s.timeouts) == 0 {
			return Action{}, false
		}
		// Phase boundary: everything at or below the threshold is consumed.
		// The next drain phase covers all messages produced so far; the
		// timeout pass built above runs first (possibly empty when every
		// process is asleep, in which case the raised threshold lets the
		// loop deliver the wake-up messages).
		s.threshold = maxSeq
		s.tpos = 0
	}
}
