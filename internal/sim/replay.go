package sim

// ReplayScheduler replays a recorded schedule action by action — the
// companion of the model checker: a violation's schedule can be replayed on
// a fresh world to reproduce and inspect the failure deterministically.
//
// Message actions are re-resolved by sequence number, so the schedule must
// come from a world with the same construction order (clones and identical
// rebuilds qualify). When the recorded schedule is exhausted (or an action
// no longer validates), Next falls back to the wrapped scheduler, or stops
// if none is configured.
type ReplayScheduler struct {
	schedule []Action
	pos      int
	fallback Scheduler
	stalled  bool
}

// NewReplayScheduler replays schedule, then hands over to fallback (nil =
// stop when the schedule ends).
func NewReplayScheduler(schedule []Action, fallback Scheduler) *ReplayScheduler {
	return &ReplayScheduler{schedule: schedule, fallback: fallback}
}

// Name identifies the scheduler in reports.
func (s *ReplayScheduler) Name() string { return "replay" }

// Remaining returns how many recorded actions are left to replay.
func (s *ReplayScheduler) Remaining() int { return len(s.schedule) - s.pos }

// Stalled reports whether a recorded action failed to validate against the
// world (divergence between the recording and this run).
func (s *ReplayScheduler) Stalled() bool { return s.stalled }

// Next implements Scheduler.
func (s *ReplayScheduler) Next(w *World) (Action, bool) {
	for s.pos < len(s.schedule) {
		a := s.schedule[s.pos]
		s.pos++
		if w.ValidateAction(&a) {
			return a, true
		}
		s.stalled = true
	}
	if s.fallback != nil {
		return s.fallback.Next(w)
	}
	return Action{}, false
}
