package sim

import (
	"testing"

	"fdp/internal/graph"
	"fdp/internal/ref"
)

// fixtureProto is a minimal protocol for engine tests: it stores a set of
// references, can be scripted to send/exit/sleep on timeout or delivery.
type fixtureProto struct {
	refs      ref.Set
	onTimeout func(ctx Context, f *fixtureProto)
	onDeliver func(ctx Context, f *fixtureProto, m Message)
	delivered []Message
	timeouts  int
}

func newFixture() *fixtureProto { return &fixtureProto{refs: ref.NewSet()} }

func (f *fixtureProto) Timeout(ctx Context) {
	f.timeouts++
	if f.onTimeout != nil {
		f.onTimeout(ctx, f)
	}
}

func (f *fixtureProto) Deliver(ctx Context, m Message) {
	f.delivered = append(f.delivered, m)
	if f.onDeliver != nil {
		f.onDeliver(ctx, f, m)
	}
}

func (f *fixtureProto) Refs() []ref.Ref { return f.refs.Sorted() }

func twoProcWorld(t *testing.T) (*World, ref.Ref, ref.Ref, *fixtureProto, *fixtureProto) {
	t.Helper()
	space := ref.NewSpace()
	a, b := space.New(), space.New()
	w := NewWorld(nil)
	fa, fb := newFixture(), newFixture()
	w.AddProcess(a, Staying, fa)
	w.AddProcess(b, Staying, fb)
	return w, a, b, fa, fb
}

func TestAddProcessDuplicatePanics(t *testing.T) {
	space := ref.NewSpace()
	a := space.New()
	w := NewWorld(nil)
	w.AddProcess(a, Staying, newFixture())
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddProcess must panic")
		}
	}()
	w.AddProcess(a, Staying, newFixture())
}

func TestTimeoutOnlyWhenAwake(t *testing.T) {
	w, a, _, fa, _ := twoProcWorld(t)
	fa.onTimeout = func(ctx Context, f *fixtureProto) { ctx.Sleep() }
	acts := w.EnabledActions()
	// Two awake processes, no messages: exactly two timeout actions.
	if len(acts) != 2 {
		t.Fatalf("enabled = %d, want 2", len(acts))
	}
	w.Execute(Action{Proc: a, IsTimeout: true})
	if w.LifeOf(a) != Asleep {
		t.Fatal("sleep not applied")
	}
	for _, act := range w.EnabledActions() {
		if act.Proc == a && act.IsTimeout {
			t.Fatal("asleep process must have no enabled timeout")
		}
	}
}

func TestSleepIsDeferredToEndOfAction(t *testing.T) {
	w, a, b, fa, _ := twoProcWorld(t)
	var lifeDuring Life
	fa.onTimeout = func(ctx Context, f *fixtureProto) {
		ctx.Sleep()
		lifeDuring = w.LifeOf(a)        // still awake inside the atomic action
		ctx.Send(b, NewMessage("ping")) // sends still work after Sleep()
	}
	w.Execute(Action{Proc: a, IsTimeout: true})
	if lifeDuring != Awake {
		t.Fatal("sleep must take effect only after the atomic action")
	}
	if w.LifeOf(a) != Asleep || w.ChannelLen(b) != 1 {
		t.Fatal("post-action state wrong")
	}
}

func TestMessageWakesAsleepProcess(t *testing.T) {
	w, a, _, fa, _ := twoProcWorld(t)
	fa.onTimeout = func(ctx Context, f *fixtureProto) { ctx.Sleep() }
	w.Execute(Action{Proc: a, IsTimeout: true})
	w.Enqueue(a, NewMessage("wakeup"))
	// The delivery must be enabled for the asleep process.
	var act Action
	found := false
	for _, c := range w.EnabledActions() {
		if c.Proc == a && !c.IsTimeout {
			act, found = c, true
		}
	}
	if !found {
		t.Fatal("delivery to asleep process not enabled")
	}
	w.Execute(act)
	if w.LifeOf(a) != Awake {
		t.Fatal("process must wake on message processing")
	}
	if len(fa.delivered) != 1 || fa.delivered[0].Label != "wakeup" {
		t.Fatal("message not delivered")
	}
	if w.Stats().Wakes != 1 {
		t.Fatal("wake not counted")
	}
}

func TestExitDropsChannelAndBlocksSends(t *testing.T) {
	w, a, b, fa, _ := twoProcWorld(t)
	w.Enqueue(a, NewMessage("stale"))
	fa.onTimeout = func(ctx Context, f *fixtureProto) { ctx.Exit() }
	w.Execute(Action{Proc: a, IsTimeout: true})
	if w.LifeOf(a) != Gone {
		t.Fatal("exit not applied")
	}
	if w.ChannelLen(a) != 0 {
		t.Fatal("gone process's channel must be cleared")
	}
	if w.Stats().TotalInQueue != 0 {
		t.Fatalf("in-queue accounting wrong: %d", w.Stats().TotalInQueue)
	}
	// Sends to gone processes vanish.
	fb := w.ProtocolOf(b).(*fixtureProto)
	fb.onTimeout = func(ctx Context, f *fixtureProto) { ctx.Send(a, NewMessage("dead")) }
	w.Execute(Action{Proc: b, IsTimeout: true})
	if w.ChannelLen(a) != 0 {
		t.Fatal("message reached gone process")
	}
	if w.Stats().Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", w.Stats().Dropped)
	}
	// Gone processes never act.
	for _, act := range w.EnabledActions() {
		if act.Proc == a {
			t.Fatal("gone process has enabled actions")
		}
	}
}

func TestSendToNilIsNoop(t *testing.T) {
	w, a, _, fa, _ := twoProcWorld(t)
	fa.onTimeout = func(ctx Context, f *fixtureProto) { ctx.Send(ref.Nil, NewMessage("x")) }
	w.Execute(Action{Proc: a, IsTimeout: true})
	if w.Stats().Sent != 0 {
		t.Fatal("send to ⊥ must be a no-op")
	}
}

func TestPGExplicitAndImplicitEdges(t *testing.T) {
	w, a, b, fa, _ := twoProcWorld(t)
	fa.refs.Add(b)
	pg := w.PG()
	if !pg.HasEdgeKind(a, b, graph.Explicit) {
		t.Fatal("stored reference must be an explicit edge")
	}
	w.Enqueue(b, NewMessage("carry", RefInfo{Ref: a, Mode: Staying}))
	pg = w.PG()
	if !pg.HasEdgeKind(b, a, graph.Implicit) {
		t.Fatal("in-flight reference must be an implicit edge from the channel owner")
	}
}

func TestPGExcludesGone(t *testing.T) {
	w, a, b, fa, fb := twoProcWorld(t)
	fa.refs.Add(b)
	fb.refs.Add(a)
	fb.onTimeout = func(ctx Context, f *fixtureProto) { ctx.Exit() }
	w.Execute(Action{Proc: b, IsTimeout: true})
	pg := w.PG()
	if pg.HasNode(b) {
		t.Fatal("gone process must be removed from PG")
	}
	if pg.NumEdges() != 0 {
		t.Fatal("edges incident to gone processes must be removed")
	}
	_ = a
}

func TestOracleSaysWithoutOracle(t *testing.T) {
	w, a, _, fa, _ := twoProcWorld(t)
	got := true
	fa.onTimeout = func(ctx Context, f *fixtureProto) { got = ctx.OracleSays() }
	w.Execute(Action{Proc: a, IsTimeout: true})
	if got {
		t.Fatal("nil oracle must answer false")
	}
}

type constOracle bool

func (o constOracle) Name() string                  { return "const" }
func (o constOracle) Evaluate(*World, ref.Ref) bool { return bool(o) }

func TestOracleSaysWithOracle(t *testing.T) {
	space := ref.NewSpace()
	a := space.New()
	w := NewWorld(constOracle(true))
	fa := newFixture()
	got := false
	fa.onTimeout = func(ctx Context, f *fixtureProto) { got = ctx.OracleSays() }
	w.AddProcess(a, Leaving, fa)
	w.Execute(Action{Proc: a, IsTimeout: true})
	if !got {
		t.Fatal("oracle answer not forwarded")
	}
}

func TestHibernationDetection(t *testing.T) {
	space := ref.NewSpace()
	a, b, c := space.New(), space.New(), space.New()
	w := NewWorld(nil)
	fa, fb, fc := newFixture(), newFixture(), newFixture()
	w.AddProcess(a, Leaving, fa)
	w.AddProcess(b, Leaving, fb)
	w.AddProcess(c, Staying, fc)
	// a -> b: b cannot hibernate while a is awake, even if b sleeps.
	fa.refs.Add(b)
	sleepNow := func(ctx Context, f *fixtureProto) { ctx.Sleep() }
	fb.onTimeout = sleepNow
	w.Execute(Action{Proc: b, IsTimeout: true})
	if w.Hibernating().Has(b) {
		t.Fatal("b has an awake predecessor; not hibernating")
	}
	// Put a to sleep too; b still has predecessor a, but a is asleep with
	// empty channel, and c has no path to either => both hibernate.
	fa.onTimeout = sleepNow
	w.Execute(Action{Proc: a, IsTimeout: true})
	hib := w.Hibernating()
	if !hib.Has(a) || !hib.Has(b) {
		t.Fatalf("a and b should hibernate, got %v", hib.Sorted())
	}
	if hib.Has(c) {
		t.Fatal("awake process can never hibernate")
	}
	// A message in a's channel breaks hibernation of both a and b.
	w.Enqueue(a, NewMessage("poke"))
	hib = w.Hibernating()
	if hib.Has(a) || hib.Has(b) {
		t.Fatal("pending message must break hibernation downstream")
	}
}

func TestRelevantExcludesGoneAndHibernating(t *testing.T) {
	space := ref.NewSpace()
	a, b := space.New(), space.New()
	w := NewWorld(nil)
	fa, fb := newFixture(), newFixture()
	w.AddProcess(a, Leaving, fa)
	w.AddProcess(b, Staying, fb)
	fa.onTimeout = func(ctx Context, f *fixtureProto) { ctx.Sleep() }
	w.Execute(Action{Proc: a, IsTimeout: true})
	rel := w.Relevant()
	if rel.Has(a) || !rel.Has(b) {
		t.Fatalf("relevant set wrong: %v", rel.Sorted())
	}
}

func TestLegitimacyFDP(t *testing.T) {
	space := ref.NewSpace()
	a, b, c := space.New(), space.New(), space.New()
	w := NewWorld(nil)
	fa, fb, fc := newFixture(), newFixture(), newFixture()
	w.AddProcess(a, Staying, fa)
	w.AddProcess(b, Leaving, fb)
	w.AddProcess(c, Staying, fc)
	// a - b - c: b is a cut vertex between the staying processes.
	fa.refs.Add(b)
	fb.refs.Add(c)
	w.SealInitialState()
	if w.Legitimate(FDP) {
		t.Fatal("leaving process still awake: not legitimate")
	}
	// b exits: staying processes a and c become disconnected -> still not
	// legitimate (condition iii violated).
	fb.onTimeout = func(ctx Context, f *fixtureProto) { ctx.Exit() }
	w.Execute(Action{Proc: b, IsTimeout: true})
	if w.Legitimate(FDP) {
		t.Fatal("disconnected staying processes: must not be legitimate")
	}
	if w.RelevantComponentsIntact() {
		t.Fatal("safety invariant must detect the disconnection")
	}
	// Reconnect a -> c (outside an atomic action): now legitimate.
	fa.refs.Add(c)
	w.InvalidatePG()
	if !w.Legitimate(FDP) {
		t.Fatal("state should be legitimate now")
	}
}

func TestLegitimacyFSP(t *testing.T) {
	space := ref.NewSpace()
	a, b := space.New(), space.New()
	w := NewWorld(nil)
	fa, fb := newFixture(), newFixture()
	w.AddProcess(a, Staying, fa)
	w.AddProcess(b, Leaving, fb)
	fa.refs.Add(b)
	w.SealInitialState()
	fb.onTimeout = func(ctx Context, f *fixtureProto) { ctx.Sleep() }
	w.Execute(Action{Proc: b, IsTimeout: true})
	// a still stores a reference to b and is awake => b not hibernating.
	if w.Legitimate(FSP) {
		t.Fatal("b is reachable from awake a: not hibernating")
	}
	fa.refs.Remove(b) // outside an atomic action
	w.InvalidatePG()
	if !w.Legitimate(FSP) {
		t.Fatal("b asleep, unreachable, channel empty: legitimate FSP state")
	}
	if w.Legitimate(FDP) {
		t.Fatal("FSP-legitimate state must not be FDP-legitimate (b not gone)")
	}
}

func TestCountsAndSnapshots(t *testing.T) {
	w, a, b, fa, _ := twoProcWorld(t)
	fa.onTimeout = func(ctx Context, f *fixtureProto) {
		ctx.Send(b, NewMessage("m1"))
		ctx.Send(b, NewMessage("m2"))
	}
	w.Execute(Action{Proc: a, IsTimeout: true})
	if w.ChannelLen(b) != 2 {
		t.Fatal("channel length wrong")
	}
	snap := w.ChannelSnapshot(b)
	if len(snap) != 2 || snap[0].Label != "m1" || snap[1].Label != "m2" {
		t.Fatal("snapshot wrong")
	}
	st := w.Stats()
	if st.Sent != 2 || st.SentByLabel["m1"] != 1 || st.MaxChannel != 2 {
		t.Fatalf("stats wrong: %+v", st)
	}
	if w.AwakeCount() != 2 || w.GoneCount() != 0 {
		t.Fatal("process counts wrong")
	}
	_ = a
}

func TestEventHook(t *testing.T) {
	w, a, b, fa, _ := twoProcWorld(t)
	var events []Event
	w.SetEventHook(func(e Event) { events = append(events, e) })
	fa.onTimeout = func(ctx Context, f *fixtureProto) { ctx.Send(b, NewMessage("hello")) }
	w.Execute(Action{Proc: a, IsTimeout: true})
	w.Execute(Action{Proc: b, MsgIndex: 0})
	kinds := map[EventKind]int{}
	for _, e := range events {
		kinds[e.Kind]++
	}
	if kinds[EvTimeout] != 1 || kinds[EvSend] != 1 || kinds[EvDeliver] != 1 {
		t.Fatalf("event kinds wrong: %v", kinds)
	}
}

func TestQuiescent(t *testing.T) {
	w, a, b, fa, fb := twoProcWorld(t)
	if w.Quiescent() {
		t.Fatal("awake processes: not quiescent")
	}
	sleepNow := func(ctx Context, f *fixtureProto) { ctx.Sleep() }
	fa.onTimeout = sleepNow
	fb.onTimeout = sleepNow
	w.Execute(Action{Proc: a, IsTimeout: true})
	w.Execute(Action{Proc: b, IsTimeout: true})
	if !w.Quiescent() {
		t.Fatal("all asleep, empty channels: quiescent")
	}
	w.Enqueue(a, NewMessage("x"))
	if w.Quiescent() {
		t.Fatal("pending message: not quiescent")
	}
}
