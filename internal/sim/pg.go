package sim

// Incremental process-graph maintenance. The from-scratch construction of
// PG costs O(processes + stored refs + in-flight messages); rebuilding it on
// every oracle call made the oracle *the* hot path of FDP runs. Instead the
// world keeps one persistent graph.Graph and applies O(Δ) deltas at every
// mutation point:
//
//   - message enqueue (Enqueue / Context.Send): one implicit edge per live
//     reference the message carries;
//   - message removal in Execute: the same implicit edges dropped;
//   - end of an atomic action: the acting process's stored refs re-diffed
//     against the copy cached at the previous sync — sound because an
//     atomic action can only mutate the acting process's variables;
//   - exit: the node removed with all incident edges.
//
// Edges whose target is gone are filtered at *addition* time (matching the
// isLiveTarget filter of the from-scratch build); removals are applied
// unconditionally and no-op when RemoveNode already dropped the edge.
//
// The graph is seeded lazily by the first query, so worlds that never ask
// for PG pay nothing, and scenario construction (which mutates protocol
// state freely before the first query) needs no hooks. Code that mutates
// protocol variables outside an atomic action after the graph was seeded
// (fault injectors, surgical tests) must call InvalidatePG.
//
// Derived views (Hibernating, Relevant, RelevantPG) are cached and stamped
// with w.gen, which is bumped on every mutation that can change them, so
// repeated reads between mutations are free. TestIncrementalPGMatchesRebuild
// asserts step-for-step equality with RebuildPG under randomized schedules.

import (
	"fdp/internal/graph"
	"fdp/internal/ref"
)

// pgView returns the incrementally maintained process graph, seeding it on
// first use. Mid-action it first folds in any not-yet-synced ref changes of
// the acting process, so oracle calls made from inside Timeout/Deliver see
// the exact current state.
func (w *World) pgView() *graph.Graph {
	if w.pg == nil {
		w.seedPG()
	} else if w.current != nil {
		w.pgSyncRefs(w.current)
	}
	return w.pg
}

// seedPG builds the graph from scratch and records, per process, the refs
// snapshot future diffs are computed against.
func (w *World) seedPG() {
	w.gen++
	w.pg = graph.New()
	for _, p := range w.procs {
		if p == nil || p.life == Gone {
			continue
		}
		w.pg.AddNode(p.id)
		rs := p.proto.Refs()
		p.pgRefs = append(p.pgRefs[:0], rs...)
	}
	for _, p := range w.procs {
		if p == nil || p.life == Gone {
			continue
		}
		for _, r := range p.pgRefs {
			if w.isLiveTarget(r) {
				w.pg.AddEdge(p.id, r, graph.Explicit)
			}
		}
		for i := range p.ch {
			for _, ri := range p.ch[i].Refs {
				if w.isLiveTarget(ri.Ref) {
					w.pg.AddEdge(p.id, ri.Ref, graph.Implicit)
				}
			}
		}
	}
}

// InvalidatePG discards the incremental process graph and every derived
// cache; the next query reseeds from scratch. Must be called by any code
// that mutates protocol variables (stored references) outside an atomic
// action after the graph has been seeded — fault injectors and tests that
// reach into protocol state directly.
func (w *World) InvalidatePG() {
	w.gen++
	w.pg = nil
	w.hibCache = nil
	w.relCache = nil
	w.relPGCache = nil
	for _, p := range w.procs {
		if p != nil {
			p.pgRefs = nil
		}
	}
}

// pgEnqueue records the implicit edges of a message just placed in to's
// channel.
func (w *World) pgEnqueue(to ref.Ref, msg *Message) {
	w.gen++
	if w.pg == nil {
		return
	}
	for _, ri := range msg.Refs {
		if w.isLiveTarget(ri.Ref) {
			w.pg.AddEdge(to, ri.Ref, graph.Implicit)
		}
	}
}

// pgDequeue drops the implicit edges of a message just removed from from's
// channel. Edges to targets that exited since the enqueue were already
// dropped by RemoveNode; those removals no-op.
func (w *World) pgDequeue(from ref.Ref, msg *Message) {
	w.gen++
	if w.pg == nil {
		return
	}
	for _, ri := range msg.Refs {
		w.pg.RemoveEdge(from, ri.Ref, graph.Implicit)
	}
}

// pgExit removes an exiting process: the node disappears with every
// incident edge — its stored refs, its channel's implicit edges, and all
// edges other processes hold toward it.
func (w *World) pgExit(p *process) {
	w.gen++
	p.pgRefs = nil
	if w.pg == nil {
		return
	}
	w.pg.RemoveNode(p.id)
}

// pgSyncRefs re-diffs p's stored references against the snapshot taken at
// the last sync and applies the explicit-edge delta. Only the acting
// process can have changed, so this is O(|refs(p)|) per action. The diff is
// multiset-aware: a protocol storing the same reference twice contributes
// explicit multiplicity 2, exactly as the from-scratch build does.
func (w *World) pgSyncRefs(p *process) {
	if w.pg == nil || p.life == Gone {
		return
	}
	cur := p.proto.Refs()
	if refsEqual(cur, p.pgRefs) {
		return
	}
	w.gen++
	if w.refScratch == nil {
		w.refScratch = make(map[ref.Ref]int, len(cur)+len(p.pgRefs))
	}
	d := w.refScratch
	for _, r := range p.pgRefs {
		d[r]--
	}
	for _, r := range cur {
		d[r]++
	}
	//fdplint:ignore detiter edge-count deltas commute — each key touches a disjoint (p.id,r) multiplicity, so the final graph is order-independent
	for r, c := range d {
		delete(d, r)
		if c > 0 && w.isLiveTarget(r) {
			for i := 0; i < c; i++ {
				w.pg.AddEdge(p.id, r, graph.Explicit)
			}
		} else if c < 0 {
			for i := 0; i < -c; i++ {
				w.pg.RemoveEdge(p.id, r, graph.Explicit)
			}
		}
	}
	p.pgRefs = append(p.pgRefs[:0], cur...)
}

// refsEqual is an order-sensitive slice comparison; protocols are required
// to enumerate Refs deterministically, so an unchanged state yields an
// identical slice and the diff is skipped entirely.
func refsEqual(a, b []ref.Ref) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
