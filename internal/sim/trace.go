package sim

import (
	"fmt"
	"strings"
)

// Recorder is a bounded ring buffer of trace events, attachable to a world
// via SetEventHook. It keeps the most recent Cap events, which is the right
// tool for post-mortem inspection of non-converging runs.
type Recorder struct {
	cap    int
	events []Event
	start  int
	total  uint64
	filter map[EventKind]bool // nil = record everything
}

// NewRecorder returns a recorder keeping the most recent cap events
// (cap <= 0 selects 4096).
func NewRecorder(cap int) *Recorder {
	if cap <= 0 {
		cap = 4096
	}
	return &Recorder{cap: cap}
}

// Only restricts recording to the given event kinds.
func (r *Recorder) Only(kinds ...EventKind) *Recorder {
	r.filter = make(map[EventKind]bool, len(kinds))
	for _, k := range kinds {
		r.filter[k] = true
	}
	return r
}

// Attach installs the recorder on w (replacing any existing hook).
func (r *Recorder) Attach(w *World) { w.SetEventHook(r.Record) }

// Record stores one event; usable directly as an event hook.
func (r *Recorder) Record(e Event) {
	if r.filter != nil && !r.filter[e.Kind] {
		return
	}
	r.total++
	if len(r.events) < r.cap {
		r.events = append(r.events, e)
		return
	}
	r.events[r.start] = e
	r.start = (r.start + 1) % r.cap
}

// Total returns how many events were recorded (including evicted ones).
func (r *Recorder) Total() uint64 { return r.total }

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.start:]...)
	out = append(out, r.events[:r.start]...)
	return out
}

// Dump renders the retained events, one per line.
func (r *Recorder) Dump() string {
	var b strings.Builder
	for _, e := range r.Events() {
		fmt.Fprintf(&b, "%7d %-8s %v", e.Step, e.Kind, e.Proc)
		if !e.Peer.IsNil() {
			fmt.Fprintf(&b, " peer=%v", e.Peer)
		}
		if e.Label != "" {
			fmt.Fprintf(&b, " label=%s", e.Label)
		}
		if e.Message != "" {
			fmt.Fprintf(&b, " %s", e.Message)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CountByKind tallies retained events per kind.
func (r *Recorder) CountByKind() map[EventKind]int {
	out := make(map[EventKind]int)
	for _, e := range r.Events() {
		out[e.Kind]++
	}
	return out
}
