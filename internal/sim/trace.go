package sim

import (
	"fmt"
	"strings"
)

// Recorder is a bounded ring buffer of trace events, attachable to a world
// via SetEventHook. It keeps the most recent Cap events, which is the right
// tool for post-mortem inspection of non-converging runs.
type Recorder struct {
	cap    int
	events []Event
	start  int
	total  uint64
	filter map[EventKind]bool // nil = record everything
}

// NewRecorder returns a recorder keeping the most recent cap events
// (cap <= 0 selects 4096).
func NewRecorder(cap int) *Recorder {
	if cap <= 0 {
		cap = 4096
	}
	return &Recorder{cap: cap}
}

// Only restricts recording to the given event kinds. Calling it with no
// kinds means "record everything": it clears any filter instead of
// installing an empty one (an earlier revision installed the empty non-nil
// map, which silently dropped every event).
func (r *Recorder) Only(kinds ...EventKind) *Recorder {
	if len(kinds) == 0 {
		r.filter = nil
		return r
	}
	r.filter = make(map[EventKind]bool, len(kinds))
	for _, k := range kinds {
		r.filter[k] = true
	}
	return r
}

// Attach installs the recorder on w alongside any hooks already installed:
// it goes through the world's hook fan-out, so attaching a recorder no
// longer silently replaces a consumer installed via SetEventHook (or an
// earlier Attach).
func (r *Recorder) Attach(w *World) { w.AddEventHook(r.Record) }

// Record stores one event; usable directly as an event hook.
func (r *Recorder) Record(e Event) {
	if r.filter != nil && !r.filter[e.Kind] {
		return
	}
	r.total++
	if len(r.events) < r.cap {
		r.events = append(r.events, e)
		return
	}
	r.events[r.start] = e
	r.start = (r.start + 1) % r.cap
}

// Total returns how many events were recorded (including evicted ones).
func (r *Recorder) Total() uint64 { return r.total }

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.start:]...)
	out = append(out, r.events[:r.start]...)
	return out
}

// Dump renders the retained events, one per line.
func (r *Recorder) Dump() string { return FormatEvents(r.Events()) }

// FormatEvents renders events one per line, the format Dump uses. It is
// shared with the concurrent runtime's trace (internal/diffval dumps both
// engines' last-K events in this format on any verdict disagreement).
func FormatEvents(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		fmt.Fprintf(&b, "%7d %-8s %v", e.Step, e.Kind, e.Proc)
		if !e.Peer.IsNil() {
			fmt.Fprintf(&b, " peer=%v", e.Peer)
		}
		if e.Label != "" {
			fmt.Fprintf(&b, " label=%s", e.Label)
		}
		// The causal coordinates make two engines' dumps joinable: initial
		// messages carry identical CIDs on both sides, so a cross-engine
		// disagreement can be aligned event by event instead of eyeballed.
		if e.CID != 0 {
			fmt.Fprintf(&b, " cid=%d", e.CID)
			if e.Parent != 0 {
				fmt.Fprintf(&b, " parent=%d", e.Parent)
			}
			if e.MsgID != 0 {
				fmt.Fprintf(&b, " msg=%d", e.MsgID)
			}
			fmt.Fprintf(&b, " clock=%d", e.Clock)
		}
		if e.Message != "" {
			fmt.Fprintf(&b, " %s", e.Message)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CountByKind tallies retained events per kind.
func (r *Recorder) CountByKind() map[EventKind]int {
	out := make(map[EventKind]int)
	for _, e := range r.Events() {
		out[e.Kind]++
	}
	return out
}
