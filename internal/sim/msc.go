package sim

import (
	"fmt"
	"strings"

	"fdp/internal/ref"
)

// MSC renders recorded events as a textual message sequence chart — one
// column per process, one row per event — for inspecting protocol
// interactions (who introduced whom to whom, which bounce triggered which
// delegation).
//
//	step        p1           p2           p3
//	----        --           --           --
//	   1     timeout          .            .
//	   2        ●---present-->            .
//	   3        .          deliver        .
func MSC(events []Event, procs []ref.Ref) string {
	const colWidth = 14
	ref.Sort(procs)
	col := make(map[ref.Ref]int, len(procs))
	for i, p := range procs {
		col[p] = i
	}
	var b strings.Builder
	// Header.
	fmt.Fprintf(&b, "%6s", "step")
	for _, p := range procs {
		fmt.Fprintf(&b, "%*s", colWidth, p.String())
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%6s", "----")
	for range procs {
		fmt.Fprintf(&b, "%*s", colWidth, "--")
	}
	b.WriteString("\n")

	cell := func(cells []string, idx int, s string) {
		if idx >= 0 && idx < len(cells) {
			cells[idx] = s
		}
	}
	for _, e := range events {
		cells := make([]string, len(procs))
		for i := range cells {
			cells[i] = "."
		}
		from, okFrom := col[e.Proc]
		to, okTo := col[e.Peer]
		switch e.Kind {
		case EvSend:
			if okFrom {
				cell(cells, from, "send:"+e.Label)
			}
			if okTo {
				cell(cells, to, "<--"+e.Label)
			}
		case EvDeliver:
			if okFrom {
				cell(cells, from, "recv:"+e.Label)
			}
		case EvDrop:
			if okFrom {
				cell(cells, from, "drop:"+e.Label)
			}
		default:
			if okFrom {
				cell(cells, from, e.Kind.String())
			}
		}
		fmt.Fprintf(&b, "%6d", e.Step)
		for _, c := range cells {
			if len(c) > colWidth-1 {
				c = c[:colWidth-1]
			}
			fmt.Fprintf(&b, "%*s", colWidth, c)
		}
		b.WriteString("\n")
	}
	return b.String()
}
