package sim

import (
	"fdp/internal/graph"
	"fdp/internal/ref"
)

// PG builds the current process graph: one node per non-gone process, an
// explicit edge (a,b) for every reference of b stored in a's variables, and
// an implicit edge (a,b) for every reference of b carried by a message in
// a.Ch. Gone processes are removed from PG together with their incident
// edges, so edges to gone processes are omitted.
func (w *World) PG() *graph.Graph {
	g := graph.New()
	for _, p := range w.procs {
		if p == nil || p.life == Gone {
			continue
		}
		g.AddNode(p.id)
	}
	for _, p := range w.procs {
		if p == nil || p.life == Gone {
			continue
		}
		for _, r := range p.proto.Refs() {
			if w.isLiveTarget(r) {
				g.AddEdge(p.id, r, graph.Explicit)
			}
		}
		for _, m := range p.ch {
			for _, ri := range m.Refs {
				if w.isLiveTarget(ri.Ref) {
					g.AddEdge(p.id, ri.Ref, graph.Implicit)
				}
			}
		}
	}
	return g
}

func (w *World) isLiveTarget(r ref.Ref) bool {
	if r.IsNil() {
		return false
	}
	p := w.byRef[r]
	return p != nil && p.life != Gone
}

// Hibernating returns the set of hibernating processes: p is hibernating if
// p is asleep, p.Ch is empty, and all processes q with a directed path to p
// in PG are also asleep with empty channels. By the claim of Foreback et
// al. quoted in Section 1.1, a hibernating process is permanently asleep
// under any copy-store-send protocol.
func (w *World) Hibernating() ref.Set {
	pg := w.PG()
	// S: the "active" processes — awake, or asleep with a nonempty channel.
	var active []ref.Ref
	for _, p := range w.procs {
		if p == nil || p.life == Gone {
			continue
		}
		if p.life == Awake || len(p.ch) > 0 {
			active = append(active, p.id)
		}
	}
	tainted := pg.ForwardReachAll(active)
	out := ref.NewSet()
	for _, p := range w.procs {
		if p == nil || p.life != Asleep || len(p.ch) > 0 {
			continue
		}
		if !tainted.Has(p.id) {
			out.Add(p.id)
		}
	}
	return out
}

// Relevant returns the set of relevant processes: neither gone nor
// hibernating (Section 1.2).
func (w *World) Relevant() ref.Set {
	hib := w.Hibernating()
	out := ref.NewSet()
	for _, p := range w.procs {
		if p == nil || p.life == Gone {
			continue
		}
		if !hib.Has(p.id) {
			out.Add(p.id)
		}
	}
	return out
}

// RelevantPG returns PG restricted to relevant processes — the graph oracles
// are defined over.
func (w *World) RelevantPG() *graph.Graph {
	return w.PG().InducedSubgraph(w.Relevant())
}

// Variant selects the problem being solved: FDP (exit available) or FSP
// (sleep available).
type Variant uint8

const (
	// FDP is the Finite Departure Problem: leaving processes must end gone.
	FDP Variant = iota
	// FSP is the Finite Sleep Problem: leaving processes must end
	// hibernating.
	FSP
)

// String names the variant.
func (v Variant) String() string {
	if v == FDP {
		return "FDP"
	}
	return "FSP"
}

// Legitimate reports whether the current state is legitimate per Section
// 1.2: (i) every staying process is awake, (ii) every leaving process is
// gone (FDP) or hibernating (FSP), and (iii) for each weakly connected
// component of the initial process graph, the staying processes of that
// component still form a weakly connected component. SealInitialState must
// have been called.
func (w *World) Legitimate(v Variant) bool {
	var hib ref.Set
	for _, p := range w.procs {
		if p == nil {
			continue
		}
		switch p.mode {
		case Staying:
			if p.life != Awake {
				return false
			}
		case Leaving:
			switch v {
			case FDP:
				if p.life != Gone {
					return false
				}
			case FSP:
				if p.life == Gone {
					return false
				}
				if hib == nil {
					hib = w.Hibernating()
				}
				if !hib.Has(p.id) {
					return false
				}
			}
		}
	}
	return w.StayingComponentsPreserved()
}

// StayingComponentsPreserved checks legitimacy condition (iii): per initial
// component, the staying processes are still weakly connected in the current
// PG (paths may only use staying processes, since in a legitimate state all
// other processes are excluded from the overlay).
func (w *World) StayingComponentsPreserved() bool {
	staying := ref.NewSet()
	for _, p := range w.procs {
		if p != nil && p.mode == Staying {
			staying.Add(p.id)
		}
	}
	pg := w.PG().InducedSubgraph(staying)
	for _, comp := range w.initialComponents {
		var members []ref.Ref
		for _, r := range comp {
			if staying.Has(r) {
				members = append(members, r)
			}
		}
		for i := 1; i < len(members); i++ {
			if !pg.SameWeakComponent(members[0], members[i]) {
				return false
			}
		}
	}
	return true
}

// RelevantComponentsIntact checks the Lemma 2 safety invariant during a run:
// relevant processes that started in the same initial component are still
// weakly connected in the subgraph of PG induced by relevant processes. This
// is strictly stronger than condition (iii) and must hold in *every* state
// of a computation of a safe protocol.
func (w *World) RelevantComponentsIntact() bool {
	relevant := w.Relevant()
	pg := w.PG().InducedSubgraph(relevant)
	for _, comp := range w.initialComponents {
		var members []ref.Ref
		for _, r := range comp {
			if relevant.Has(r) {
				members = append(members, r)
			}
		}
		for i := 1; i < len(members); i++ {
			if !pg.SameWeakComponent(members[0], members[i]) {
				return false
			}
		}
	}
	return true
}

// AwakeCount returns the number of awake processes.
func (w *World) AwakeCount() int {
	n := 0
	for _, p := range w.procs {
		if p != nil && p.life == Awake {
			n++
		}
	}
	return n
}

// GoneCount returns the number of gone processes.
func (w *World) GoneCount() int {
	n := 0
	for _, p := range w.procs {
		if p != nil && p.life == Gone {
			n++
		}
	}
	return n
}

// LeavingRemaining returns the number of leaving processes not yet gone.
func (w *World) LeavingRemaining() int {
	n := 0
	for _, p := range w.procs {
		if p != nil && p.mode == Leaving && p.life != Gone {
			n++
		}
	}
	return n
}
